// Command streambench measures the streaming front-ends (stm.Pipeline
// and shard.ShardedPipeline) under a closed-loop load: a set of client
// goroutines each submits a transaction, waits for its ticket to
// commit, and immediately submits the next — the standard way to
// measure a long-lived transaction service's sustained throughput and
// commit latency together, as opposed to the open-loop batch numbers
// microbench reports.
//
// With -shards 0 (the default) it drives a single stm.Pipeline. With
// -shards S >= 1 it drives a shard.ShardedPipeline over S partitions:
// accounts are laid out partition-locally, each client transacts
// within a random partition, and -cross sets the fraction of
// transactions that deliberately span two partitions (declared via
// stm.Access and executed through the fence/rendezvous protocol).
// With -batch B > 1 each client submits B transactions per round
// through SubmitBatch and waits for all of them, exercising the
// amortized producer path.
//
// It also verifies the memory-discipline story two ways: heap
// occupancy is sampled across the run (an unbounded stream that leaked
// engine metadata per transaction would show monotonic growth), and
// allocator/GC counters are differenced across the run so the -json
// report carries allocs_per_tx, bytes_per_tx and gc_pauses_us — the
// machine-checkable form of the zero-alloc hot-path claim. The client
// machinery reuses its transaction bodies and index scratch, so those
// metrics measure the Submit→commit path, not the benchmark harness.
//
// Examples:
//
//	streambench -alg OUL -workers 8 -clients 16 -txns 100000
//	streambench -alg OUL -batch 32 -json >> BENCH_stream.json
//	streambench -alg OUL -shards 4 -cross 0.05 -json >> BENCH_stream.json
//	streambench -alg OUL -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/obs"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

// waiter is the common ticket surface of both front-ends.
type waiter interface{ Wait() error }

// txnState is one in-flight transaction's reusable parameter block.
// Each client owns -batch of them and rewrites them between rounds, so
// steady-state submission allocates nothing beyond the ticket itself:
// the body closure, the extra-read scratch and the access declaration
// are all reused. Rewriting is safe because the client only mutates a
// state after the previous submission using it has resolved (bodies
// may re-execute speculatively, but never after their ticket commits).
type txnState struct {
	accounts []stm.Var
	from, to int
	extra    []int // indices folded in as extra reads
	body     stm.Body
	vars     []*stm.Var // declared access set (sharded mode)
	pl       txnPayload // reusable durable payload (wal mode)
	wire     []byte     // recycled encode buffer (wal mode)

	// Typed mode (-typed): the same transfer over TVar[uint64]
	// accounts as a value-returning Func; handles are the cached
	// per-account word handles for access declarations.
	tacc    []stm.TVar[uint64]
	handles []*stm.Var
	fnT     stm.Func[uint64]
}

func newTxnState(accounts []stm.Var, ops int) *txnState {
	st := &txnState{accounts: accounts, extra: make([]int, 0, ops), vars: make([]*stm.Var, 0, ops+2)}
	st.body = func(tx stm.Tx, age int) {
		b := tx.Read(&st.accounts[st.from])
		for _, i := range st.extra {
			b += tx.Read(&st.accounts[i])
		}
		amt := b % 7
		cur := tx.Read(&st.accounts[st.from])
		if cur >= amt {
			tx.Write(&st.accounts[st.from], cur-amt)
			tx.Write(&st.accounts[st.to], tx.Read(&st.accounts[st.to])+amt)
		}
	}
	return st
}

// newTypedTxnState mirrors newTxnState over the typed pool: one
// reusable Func per state, returning the sender's post-transfer
// balance (the typed path must carry a real result to exercise the
// value latch, not just run).
func newTypedTxnState(tacc []stm.TVar[uint64], handles []*stm.Var, ops int) *txnState {
	st := &txnState{tacc: tacc, handles: handles, extra: make([]int, 0, ops), vars: make([]*stm.Var, 0, ops+2)}
	st.fnT = func(tx stm.Tx, age int) uint64 {
		b := stm.ReadT(tx, &st.tacc[st.from])
		for _, i := range st.extra {
			b += stm.ReadT(tx, &st.tacc[i])
		}
		amt := b % 7
		cur := stm.ReadT(tx, &st.tacc[st.from])
		if cur >= amt {
			stm.WriteT(tx, &st.tacc[st.from], cur-amt)
			stm.WriteT(tx, &st.tacc[st.to], stm.ReadT(tx, &st.tacc[st.to])+amt)
			return cur - amt
		}
		return cur
	}
	return st
}

// scratch is one client's reusable batch-submission buffers, so the
// batched path allocates no harness slices per round either.
type scratch struct {
	bodies   []stm.Body
	reqs     []shard.Request
	payloads []any
}

// fillExtra rewrites the extra-read indices: ops-2 neighbors of
// position fi, walking the given index set (or the whole pool when idx
// is nil).
func (st *txnState) fillExtra(fi, ops, n int, idx []int) {
	st.extra = st.extra[:0]
	for k := 1; k < ops-1; k++ {
		if idx == nil {
			st.extra = append(st.extra, (fi+k)%n)
		} else {
			st.extra = append(st.extra, idx[(fi+k)%n])
		}
	}
}

// payload rewrites the durable submission payload from the current
// indices. The struct and its index scratch are reused across rounds
// (Encode runs synchronously inside SubmitPayload, and the state is
// only rewritten after the previous submission resolved), so durable
// submission allocates just the wire bytes and the decoded body.
func (st *txnState) payload() *txnPayload {
	st.pl.op, st.pl.from, st.pl.to = opTransfer, uint32(st.from), uint32(st.to)
	st.pl.extra = st.pl.extra[:0]
	for _, e := range st.extra {
		st.pl.extra = append(st.pl.extra, uint32(e))
	}
	return &st.pl
}

// encodeWire frames the current indices into the state's recycled
// buffer for SubmitEncoded: the pipeline releases the bytes when the
// ticket resolves, and this closed-loop client reuses a state only
// after its previous submission resolved, so the durable submit path
// allocates nothing beyond the decoded body.
func (st *txnState) encodeWire() []byte {
	st.wire = appendTransfer(st.wire[:0], *st.payload())
	return st.wire
}

// declare rewrites the access declaration from the current indices.
func (st *txnState) declare() stm.Access {
	st.vars = st.vars[:0]
	st.vars = append(st.vars, &st.accounts[st.from], &st.accounts[st.to])
	for _, i := range st.extra {
		st.vars = append(st.vars, &st.accounts[i])
	}
	return stm.Touches(st.vars...)
}

// declareTyped is declare over the typed pool's cached word handles.
func (st *txnState) declareTyped() stm.Access {
	st.vars = st.vars[:0]
	st.vars = append(st.vars, st.handles[st.from], st.handles[st.to])
	for _, i := range st.extra {
		st.vars = append(st.vars, st.handles[i])
	}
	return stm.Touches(st.vars...)
}

func main() {
	var (
		alg      = stm.OUL
		workers  = flag.Int("workers", 8, "engine worker goroutines (per shard when -shards > 0)")
		clients  = flag.Int("clients", 16, "closed-loop client goroutines")
		txns     = flag.Int("txns", 100000, "total transactions to stream")
		pool     = flag.Int("pool", 1<<16, "shared word-pool size (accounts)")
		ops      = flag.Int("ops", 4, "reads+writes per transaction")
		capF     = flag.Int("capacity", 0, "pipeline capacity (0 = default)")
		window   = flag.Int("window", 0, "run-ahead window (0 = default)")
		epoch    = flag.Int("epoch", 1<<14, "commits per recycling epoch")
		batch    = flag.Int("batch", 1, "transactions submitted per client round (>1 uses SubmitBatch)")
		typed    = flag.Bool("typed", false, "drive the typed API (TVar[uint64] + SubmitFunc / SubmitPayloadT) instead of the word API")
		fresh    = flag.Bool("fresh", false, "disable descriptor recycling (one fresh descriptor per attempt)")
		shardsF  = flag.Int("shards", 0, "partitions for sharded execution (0 = unsharded stm.Pipeline)")
		crossF   = flag.Float64("cross", 0, "fraction of transactions spanning two shards (sharded mode)")
		walDir   = flag.String("wal", "", "write-ahead log directory (durable mode; empty = no WAL)")
		syncF    = flag.String("sync", "none", "WAL sync policy: none | N (fsync every N commits) | duration (fsync interval) | adaptive (size groups to fsync latency)")
		syncDep  = flag.Int("sync-depth", 0, "max in-flight fsyncs (pipelined group commit depth; 0 = default)")
		ckptEv   = flag.Uint64("checkpoint-every", 0, "checkpoint every N commits: snapshot the pool, truncate redundant log history (requires -wal)")
		waitDur  = flag.Bool("waitdurable", false, "resolve tickets only once their age is durable (requires -wal)")
		recoverF = flag.Bool("recover", false, "recover the -wal log: truncate torn tail, replay, verify against the sequential oracle, report")
		faultsF  = flag.String("faults", "", "chaos mode: seed:N runs a seeded fault-injection pass instead of the benchmark and reports the safety verdicts")
		onFailF  = flag.String("onfail", "failstop", "WAL terminal-failure policy in chaos mode: failstop | degrade")
		obsOn    = flag.Bool("obs", true, "attach the observability registry (latency histograms, abort breakdown, /metrics families); -obs=false measures the uninstrumented hot path")
		metrAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and pprof on this address during the run (requires -obs)")
		jsonF    = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		memEvery = flag.Int("memevery", 8, "heap samples across the run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	// Algorithm implements encoding.TextMarshaler/TextUnmarshaler, so
	// the flag package parses paper-style names directly — no
	// hand-rolled switch.
	flag.TextVar(&alg, "alg", stm.OUL, "algorithm (paper-style name, e.g. OUL, OWB, Ordered-TL2)")
	flag.Parse()
	if *faultsF != "" {
		runChaos(*faultsF, alg, *shardsF, *workers, *txns, *onFailF, *walDir, *jsonF)
		return
	}
	if *recoverF {
		if *walDir == "" {
			fatal(fmt.Errorf("-recover requires -wal"))
		}
		runRecovery(*walDir, alg, *shardsF, *workers, *pool, *jsonF)
		return
	}
	if *waitDur && *walDir == "" {
		fatal(fmt.Errorf("-waitdurable requires -wal"))
	}
	if *batch < 1 {
		*batch = 1
	}
	if *walDir != "" && *batch > 1 && *shardsF > 0 {
		fatal(fmt.Errorf("-batch > 1 with -wal is unsupported in sharded mode"))
	}
	if *typed && *batch > 1 {
		fatal(fmt.Errorf("-typed has no batched submission path; use -batch 1"))
	}
	if *typed && *walDir != "" && *shardsF > 0 {
		fatal(fmt.Errorf("-typed with -wal is unsupported in sharded mode"))
	}
	if *ckptEv > 0 && *walDir == "" {
		fatal(fmt.Errorf("-checkpoint-every requires -wal"))
	}
	if *ckptEv > 0 && *typed {
		fatal(fmt.Errorf("-checkpoint-every snapshots the word pool; use the word API (-typed off)"))
	}
	if *metrAddr != "" && !*obsOn {
		fatal(fmt.Errorf("-metrics-addr requires -obs"))
	}
	var reg *obs.Registry
	if *obsOn {
		reg = obs.NewRegistry()
	}
	pcfg := stm.Config{
		Algorithm:        alg,
		Workers:          *workers,
		Window:           *window,
		Capacity:         *capF,
		EpochAges:        *epoch,
		FreshDescriptors: *fresh,
	}

	accounts := stm.NewVars(*pool)
	for i := range accounts {
		accounts[i].Store(1000)
	}
	// Typed mode state: a TVar pool with the same layout and initial
	// balances, plus cached word handles for sharded declarations.
	var tAccounts []stm.TVar[uint64]
	var tHandles []*stm.Var
	if *typed {
		tAccounts = stm.NewTVars[uint64](*pool)
		tHandles = make([]*stm.Var, *pool)
		for i := range tAccounts {
			tAccounts[i].Store(1000)
			tHandles[i] = tAccounts[i].Vars()[0]
		}
	}

	// Durable mode: create the log up front; the selected front-end
	// appends each committed age's payload and the run reports the
	// durability columns below.
	var walw *wal.Writer
	var snapper stm.Snapshotter
	if *walDir != "" {
		opts, err := parseSyncPolicy(*syncF)
		if err != nil {
			fatal(err)
		}
		opts.MaxInFlightSyncs = *syncDep
		opts.Obs = reg
		if *waitDur && opts.SyncEveryN == 0 && opts.SyncInterval == 0 && !opts.Adaptive {
			// Policy "none" has no background sync points, so tickets
			// deferred to durability would wait forever.
			fatal(fmt.Errorf("-waitdurable requires a sync policy (-sync N, duration, or adaptive — not none)"))
		}
		if walw, err = wal.Create(*walDir, 0, opts); err != nil {
			fatal(err)
		}
		if *ckptEv > 0 {
			snapper = stm.SnapshotterFuncs{
				SnapshotFunc: func() ([]byte, error) { return stm.SnapshotVars(accounts), nil },
				RestoreFunc:  func(data []byte) error { return stm.RestoreVars(accounts, data) },
			}
		}
	}

	// prepare rewrites one txnState for the next submission; submitOne
	// and submitMany route it through the selected front-end; warmup
	// runs before the measured window (see below).
	var warmup func()
	var prepare func(r *rng.Rand, st *txnState)
	var submitOne func(st *txnState) (waiter, error)
	var submitMany func(sts []*txnState, ws []waiter, sc *scratch) ([]waiter, error)
	var closeSvc func() error
	var committed func() uint64
	var epochs func() uint64
	var stats func() (commits, aborts, retries uint64)
	var breakdown func() map[string]float64
	var perShard func() []shardStats
	var crossCount func() uint64
	var ckptStats func() (n, age uint64)
	var effCapacity, effWindow int

	if *shardsF == 0 {
		pcfg.Obs = reg
		if walw != nil {
			pcfg.WAL = walw
			if *typed {
				pcfg.Codec = typedBenchCodec(tAccounts)
			} else {
				pcfg.Codec = benchCodec{accounts: accounts}
			}
			pcfg.WaitDurable = *waitDur
			pcfg.CheckpointEvery = *ckptEv
			pcfg.Snapshotter = snapper
		}
		p, err := stm.NewPipeline(pcfg)
		if err != nil {
			fatal(err)
		}
		ckptStats = func() (uint64, uint64) { return p.Checkpoints(), p.CheckpointAge() }
		prepare = func(r *rng.Rand, st *txnState) {
			st.from, st.to = r.Intn(*pool), r.Intn(*pool)
			st.fillExtra(st.from, *ops, *pool, nil)
		}
		switch {
		case *typed && walw != nil:
			submitOne = func(st *txnState) (waiter, error) {
				return stm.SubmitPayloadT[*txnPayload, uint64](p, st.payload())
			}
		case *typed:
			submitOne = func(st *txnState) (waiter, error) { return stm.SubmitFunc(p, st.fnT) }
		case walw != nil:
			submitOne = func(st *txnState) (waiter, error) { return p.SubmitEncoded(st.encodeWire()) }
		default:
			submitOne = func(st *txnState) (waiter, error) { return p.Submit(st.body) }
		}
		warmup = func() {
			var tk waiter
			var err error
			switch {
			case *typed && walw != nil:
				tk, err = stm.SubmitPayloadT[*txnPayload, uint64](p, &txnPayload{op: opWarmAll})
			case *typed:
				tk, err = stm.SubmitFunc(p, func(tx stm.Tx, _ int) uint64 {
					for i := range tAccounts {
						stm.ReadT(tx, &tAccounts[i])
					}
					return 0
				})
			case walw != nil:
				tk, err = p.SubmitPayload(txnPayload{op: opWarmAll})
			default:
				tk, err = p.Submit(func(tx stm.Tx, _ int) {
					for i := range accounts {
						tx.Read(&accounts[i])
					}
				})
			}
			if err == nil {
				err = tk.Wait()
			}
			if err != nil {
				fatal(err)
			}
		}
		submitMany = func(sts []*txnState, ws []waiter, sc *scratch) ([]waiter, error) {
			var tks []*stm.Ticket
			var err error
			if walw != nil {
				sc.payloads = sc.payloads[:0]
				for _, st := range sts {
					sc.payloads = append(sc.payloads, st.payload())
				}
				tks, err = p.SubmitPayloadBatch(sc.payloads)
			} else {
				sc.bodies = sc.bodies[:0]
				for _, st := range sts {
					sc.bodies = append(sc.bodies, st.body)
				}
				tks, err = p.SubmitBatch(sc.bodies)
			}
			for _, tk := range tks {
				ws = append(ws, tk)
			}
			return ws, err
		}
		closeSvc = p.Close
		committed = p.Committed
		epochs = p.Epochs
		stats = func() (uint64, uint64, uint64) {
			sv := p.Stats()
			return sv.Commits, sv.TotalAborts(), sv.Retries
		}
		breakdown = func() map[string]float64 { return p.Stats().Breakdown() }
		perShard = func() []shardStats { return nil }
		crossCount = func() uint64 { return 0 }
		effCapacity, effWindow = p.Config().Capacity, p.Config().Window
	} else {
		// Partition-local account layout: bucket indices by owning
		// shard (the stable mapping, computable before the router
		// exists — the durable codec needs it at construction). Typed
		// mode buckets by the TVar pool's word handles instead.
		buckets := make([][]int, *shardsF)
		for i := range accounts {
			h := &accounts[i]
			if *typed {
				h = tHandles[i]
			}
			s := shard.Of(h, *shardsF)
			buckets[s] = append(buckets[s], i)
		}
		scfg := shard.Config{Shards: *shardsF, Pipeline: pcfg, Obs: reg}
		if walw != nil {
			scfg.WAL = walw
			scfg.Codec = shardCodec{accounts: accounts, buckets: buckets}
			scfg.WaitDurable = *waitDur
			scfg.CheckpointEvery = *ckptEv
			scfg.Snapshotter = snapper
		}
		sp, err := shard.New(scfg)
		if err != nil {
			fatal(err)
		}
		ckptStats = func() (uint64, uint64) { return sp.Checkpoints(), sp.CheckpointAge() }
		for s, b := range buckets {
			if len(b) < 2 {
				fatal(fmt.Errorf("shard %d owns %d accounts; raise -pool", s, len(b)))
			}
		}
		nshards := *shardsF
		crossPPM := int(*crossF * 1e6) // per-million threshold; rng has no Float64
		prepare = func(r *rng.Rand, st *txnState) {
			if nshards > 1 && r.Intn(1_000_000) < crossPPM {
				// Cross-shard transfer between two partitions.
				sa := r.Intn(nshards)
				sb := (sa + 1 + r.Intn(nshards-1)) % nshards
				st.from = buckets[sa][r.Intn(len(buckets[sa]))]
				st.to = buckets[sb][r.Intn(len(buckets[sb]))]
				st.extra = st.extra[:0]
				return
			}
			// Single-shard transaction confined to one partition.
			s := r.Intn(nshards)
			bk := buckets[s]
			fi := r.Intn(len(bk))
			st.from, st.to = bk[fi], bk[r.Intn(len(bk))]
			st.fillExtra(fi, *ops, len(bk), bk)
		}
		switch {
		case *typed:
			submitOne = func(st *txnState) (waiter, error) {
				return shard.SubmitFunc(sp, st.declareTyped(), st.fnT)
			}
		case walw != nil:
			submitOne = func(st *txnState) (waiter, error) {
				return sp.SubmitEncoded(st.encodeWire())
			}
		default:
			submitOne = func(st *txnState) (waiter, error) {
				return sp.Submit(st.declare(), st.body)
			}
		}
		warmup = func() {
			for s := range buckets {
				var tk waiter
				var err error
				switch {
				case *typed:
					bk := buckets[s]
					vs := make([]*stm.Var, len(bk))
					for i, idx := range bk {
						vs[i] = tHandles[idx]
					}
					tk, err = shard.SubmitFunc(sp, stm.Touches(vs...), func(tx stm.Tx, _ int) uint64 {
						for _, idx := range bk {
							stm.ReadT(tx, &tAccounts[idx])
						}
						return 0
					})
				case walw != nil:
					tk, err = sp.SubmitPayload(txnPayload{op: opWarmShard, shard: uint16(s)})
				default:
					bk := buckets[s]
					vs := make([]*stm.Var, len(bk))
					for i, idx := range bk {
						vs[i] = &accounts[idx]
					}
					tk, err = sp.Submit(stm.Touches(vs...), func(tx stm.Tx, _ int) {
						for _, v := range vs {
							tx.Read(v)
						}
					})
				}
				if err == nil {
					err = tk.Wait()
				}
				if err != nil {
					fatal(err)
				}
			}
		}
		submitMany = func(sts []*txnState, ws []waiter, sc *scratch) ([]waiter, error) {
			sc.reqs = sc.reqs[:0]
			for _, st := range sts {
				sc.reqs = append(sc.reqs, shard.Request{Access: st.declare(), Body: st.body})
			}
			tks, err := sp.SubmitBatch(sc.reqs)
			for _, tk := range tks {
				if tk != nil {
					ws = append(ws, tk)
				}
			}
			return ws, err
		}
		closeSvc = sp.Close
		committed = sp.Submitted // every accepted txn commits on a clean run
		epochs = func() uint64 { return 0 }
		stats = func() (uint64, uint64, uint64) {
			sv := sp.Stats()
			return sv.Commits, sv.TotalAborts(), sv.Retries
		}
		breakdown = func() map[string]float64 { return sp.Stats().Breakdown() }
		perShard = func() []shardStats {
			out := make([]shardStats, 0, nshards)
			for s, sv := range sp.ShardStats() {
				out = append(out, shardStats{
					Shard:    s,
					Commits:  sv.Commits,
					Aborts:   sv.TotalAborts(),
					Retries:  sv.Retries,
					Quiesces: sv.Quiesces,
				})
			}
			return out
		}
		crossCount = sp.CrossShard
		effCapacity, effWindow = sp.PipelineConfig().Capacity, sp.PipelineConfig().Window
	}

	// Metrics endpoint: live during the measured window, so a scrape can
	// watch frontier lag, abort breakdown and fsync latency mid-run.
	if *metrAddr != "" {
		srv, err := obs.Serve(*metrAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		if !*jsonF {
			fmt.Printf("metrics on http://%s/metrics\n", srv.Addr)
		}
	}

	// Frontier lag is a gauge: sample it across the run and report the
	// worst value seen (steady-state lag ≈ in-flight depth under load).
	var lagMax float64
	lagStop := make(chan struct{})
	lagDone := make(chan struct{})
	if reg != nil {
		go func() {
			defer close(lagDone)
			tick := time.NewTicker(100 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-lagStop:
					return
				case <-tick.C:
					if v, ok := reg.Sum("ostm_frontier_lag"); ok && v > lagMax {
						lagMax = v
					}
				}
			}
		}()
	} else {
		close(lagDone)
	}

	heapSamples := make([]uint64, 0, *memEvery+2)
	var heapMu sync.Mutex
	// The endpoint samples force a collection so first-vs-last compares
	// live bytes (the leak signal); mid-run samples are taken raw to
	// avoid injecting GC pauses into the measured latencies.
	sampleHeap := func(forceGC bool) {
		if forceGC {
			runtime.GC()
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapMu.Lock()
		heapSamples = append(heapSamples, ms.HeapAlloc)
		heapMu.Unlock()
	}
	// Warm the engine before the measured window: one read-everything
	// transaction (per shard) materializes every lazily-allocated
	// reader-slot array the workload will ever touch, so allocs_per_tx
	// reports the steady state of a long-lived service rather than
	// first-touch warmup — exactly the regime the zero-alloc claim is
	// about (and the heap baseline below then reflects it too).
	warmup()
	warmed := committed() // exclude warmup from the reported txn count
	sampleHeap(true)

	if *clients > *txns {
		*clients = *txns // fewer transactions than clients: shrink the loop
	}
	if *clients < 1 {
		fatal(fmt.Errorf("need at least 1 transaction (got -txns %d)", *txns))
	}
	perClient := *txns / *clients
	if *batch > perClient {
		*batch = perClient
	}
	if *memEvery < 1 {
		*memEvery = 1
	}
	sampleEvery := perClient / *memEvery
	if sampleEvery == 0 {
		sampleEvery = 1
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// Allocator/GC counters are differenced across the measured run:
	// allocs_per_tx is total heap objects allocated (anywhere in the
	// process) divided by transactions, the before/after number the
	// zero-alloc hot path is judged by.
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(uint64(c)*0x9E3779B97F4A7C15 + 1)
			states := make([]*txnState, *batch)
			for i := range states {
				if *typed {
					states[i] = newTypedTxnState(tAccounts, tHandles, *ops)
				} else {
					states[i] = newTxnState(accounts, *ops)
				}
			}
			ws := make([]waiter, 0, *batch)
			sc := &scratch{
				bodies: make([]stm.Body, 0, *batch),
				reqs:   make([]shard.Request, 0, *batch),
			}
			for done := 0; done < perClient; {
				n := *batch
				if rem := perClient - done; n > rem {
					n = rem
				}
				if n == 1 {
					prepare(r, states[0])
					tk, err := submitOne(states[0])
					if err != nil {
						fatal(err)
					}
					if err := tk.Wait(); err != nil {
						fatal(err)
					}
				} else {
					for i := 0; i < n; i++ {
						prepare(r, states[i])
					}
					var err error
					ws, err = submitMany(states[:n], ws[:0], sc)
					if err != nil {
						fatal(err)
					}
					for _, w := range ws {
						if err := w.Wait(); err != nil {
							fatal(err)
						}
					}
				}
				done += n
				if c == 0 && done%sampleEvery < n {
					sampleHeap(false)
				}
			}
		}(c)
	}
	wg.Wait()
	close(lagStop)
	<-lagDone
	ncommitted := committed() - warmed
	elapsed := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if err := closeSvc(); err != nil {
		fatal(err)
	}
	var durableTxns, fsyncs, walBytes, syncDepthMax, overlapped, ckptN, ckptAge uint64
	var syncPolicy string
	if walw != nil {
		durableTxns = walw.Durable() // frontier == durable age count (warmup included)
		fsyncs = walw.Fsyncs()
		walBytes = walw.Bytes()
		syncDepthMax = uint64(walw.SyncDepthMax())
		overlapped = walw.OverlappedSyncs()
		syncPolicy = walw.Policy()
		ckptN, ckptAge = ckptStats()
		if err := walw.Close(); err != nil {
			fatal(err)
		}
	}
	sampleHeap(true)
	commits, aborts, retries := stats()

	ntx := float64(ncommitted)
	if ntx == 0 {
		ntx = 1
	}
	rep := report{
		Bench:           "stream-closed-loop",
		Algorithm:       alg.String(),
		Workers:         *workers,
		Clients:         *clients,
		Shards:          *shardsF,
		Batch:           *batch,
		Typed:           *typed,
		Fresh:           *fresh,
		Obs:             reg != nil,
		Txns:            int(ncommitted),
		CrossTxns:       crossCount(),
		Capacity:        effCapacity,
		Window:          effWindow,
		ElapsedS:        elapsed.Seconds(),
		TxPerSec:        stm.Throughput(ncommitted, elapsed),
		LatencyUS:       latencyFrom(reg),
		FrontierLag:     lagMax,
		Epochs:          epochs(),
		Commits:         commits,
		Aborts:          aborts,
		Retries:         retries,
		AbortBreakdown:  breakdown(),
		AllocsPerTx:     float64(m1.Mallocs-m0.Mallocs) / ntx,
		BytesPerTx:      float64(m1.TotalAlloc-m0.TotalAlloc) / ntx,
		GCPausesUS:      float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e3,
		NumGC:           m1.NumGC - m0.NumGC,
		WAL:             syncPolicy,
		WaitDurable:     *waitDur,
		DurableTxns:     durableTxns,
		Fsyncs:          fsyncs,
		WALBytes:        walBytes,
		SyncDepthMax:    syncDepthMax,
		OverlappedSyncs: overlapped,
		CheckpointEvery: *ckptEv,
		Checkpoints:     ckptN,
		CheckpointAge:   ckptAge,
		PerShard:        perShard(),
		HeapBytes:       heapSamples,
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *jsonF {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	api := "word"
	if rep.Typed {
		api = "typed"
	}
	if rep.Shards > 0 {
		fmt.Printf("%s  shards=%d workers=%d/shard clients=%d batch=%d cross=%d api=%s\n",
			rep.Algorithm, rep.Shards, rep.Workers, rep.Clients, rep.Batch, rep.CrossTxns, api)
	} else {
		fmt.Printf("%s  workers=%d clients=%d batch=%d api=%s\n", rep.Algorithm, rep.Workers, rep.Clients, rep.Batch, api)
	}
	fmt.Printf("  %d txns in %.3fs  →  %.0f tx/s\n", rep.Txns, rep.ElapsedS, rep.TxPerSec)
	if reg != nil {
		fmt.Printf("  resolve latency  p50=%.1fµs  p95=%.1fµs  p99=%.1fµs  p999=%.1fµs  max=%.1fµs\n",
			rep.LatencyUS["p50"], rep.LatencyUS["p95"], rep.LatencyUS["p99"], rep.LatencyUS["p999"], rep.LatencyUS["max"])
		fmt.Printf("  frontier lag (max sampled)=%.0f\n", rep.FrontierLag)
	}
	fmt.Printf("  aborts=%d retries=%d epochs=%d\n", rep.Aborts, rep.Retries, rep.Epochs)
	if rep.Aborts > 0 {
		fmt.Printf("  abort breakdown: %v\n", rep.AbortBreakdown)
	}
	fmt.Printf("  allocs/tx=%.2f bytes/tx=%.1f gc=%d pauses=%.0fµs\n",
		rep.AllocsPerTx, rep.BytesPerTx, rep.NumGC, rep.GCPausesUS)
	if rep.WAL != "" {
		fmt.Printf("  wal: sync=%s waitdurable=%v durable=%d fsyncs=%d bytes=%d depth_max=%d overlapped=%d\n",
			rep.WAL, rep.WaitDurable, rep.DurableTxns, rep.Fsyncs, rep.WALBytes, rep.SyncDepthMax, rep.OverlappedSyncs)
		if rep.CheckpointEvery > 0 {
			fmt.Printf("  checkpoints: every=%d taken=%d newest_age=%d\n", rep.CheckpointEvery, rep.Checkpoints, rep.CheckpointAge)
		}
	}
	for _, s := range rep.PerShard {
		fmt.Printf("    shard %d: commits=%d aborts=%d retries=%d\n", s.Shard, s.Commits, s.Aborts, s.Retries)
	}
	if n := len(heapSamples); n >= 2 {
		fmt.Printf("  live heap: start=%dKiB end=%dKiB (flat ⇒ bounded engine state; raw mid-run peak=%dKiB)\n",
			heapSamples[0]/1024, heapSamples[n-1]/1024, maxOf(heapSamples[1:n-1])/1024)
	}
}

// shardStats is the per-shard engine counter breakdown in -json mode.
type shardStats struct {
	Shard    int    `json:"shard"`
	Commits  uint64 `json:"commits"`
	Aborts   uint64 `json:"aborts"`
	Retries  uint64 `json:"retries"`
	Quiesces uint64 `json:"quiesces"`
}

// report is the -json document; one line per run appended to a
// BENCH_*.json file tracks the perf trajectory across PRs.
type report struct {
	Bench           string             `json:"bench"`
	Algorithm       string             `json:"algorithm"`
	Workers         int                `json:"workers"`
	Clients         int                `json:"clients"`
	Shards          int                `json:"shards"`
	Batch           int                `json:"batch"`
	Typed           bool               `json:"typed,omitempty"`
	Fresh           bool               `json:"fresh,omitempty"`
	Obs             bool               `json:"obs"`
	Txns            int                `json:"txns"`
	CrossTxns       uint64             `json:"cross_txns"`
	Capacity        int                `json:"capacity"`
	Window          int                `json:"window"`
	ElapsedS        float64            `json:"elapsed_s"`
	TxPerSec        float64            `json:"tx_per_s"`
	LatencyUS       map[string]float64 `json:"latency_us"`
	FrontierLag     float64            `json:"frontier_lag"`
	Epochs          uint64             `json:"epochs"`
	Commits         uint64             `json:"commits"`
	Aborts          uint64             `json:"aborts"`
	Retries         uint64             `json:"retries"`
	AbortBreakdown  map[string]float64 `json:"abort_breakdown,omitempty"`
	AllocsPerTx     float64            `json:"allocs_per_tx"`
	BytesPerTx      float64            `json:"bytes_per_tx"`
	GCPausesUS      float64            `json:"gc_pauses_us"`
	NumGC           uint32             `json:"num_gc"`
	WAL             string             `json:"wal,omitempty"` // sync policy when logging
	WaitDurable     bool               `json:"wait_durable,omitempty"`
	DurableTxns     uint64             `json:"durable_txns,omitempty"`
	Fsyncs          uint64             `json:"fsyncs,omitempty"`
	WALBytes        uint64             `json:"wal_bytes,omitempty"`
	SyncDepthMax    uint64             `json:"sync_depth_max,omitempty"`
	OverlappedSyncs uint64             `json:"overlapped_syncs,omitempty"`
	CheckpointEvery uint64             `json:"checkpoint_every,omitempty"`
	Checkpoints     uint64             `json:"checkpoints,omitempty"`
	CheckpointAge   uint64             `json:"checkpoint_age,omitempty"`
	PerShard        []shardStats       `json:"per_shard,omitempty"`
	HeapBytes       []uint64           `json:"heap_bytes"`
}

// latencyFrom derives the commit-latency percentiles (µs) from the
// registry's resolve-latency histogram — the same data /metrics
// exposes, so the report and a scrape can never disagree. Resolution
// latency spans age assignment to ticket resolution (durability
// included under -waitdurable); when it is empty (nothing resolved
// through the instrumented path) the commit histogram stands in. With
// -obs=false the map carries zeros: the uninstrumented run measures
// throughput only.
func latencyFrom(reg *obs.Registry) map[string]float64 {
	out := map[string]float64{"p50": 0, "p90": 0, "p95": 0, "p99": 0, "p999": 0, "max": 0}
	if reg == nil {
		return out
	}
	h, ok := reg.Hist("ostm_resolve_seconds")
	if !ok || h.Count == 0 {
		if h, ok = reg.Hist("ostm_commit_seconds"); !ok || h.Count == 0 {
			return out
		}
	}
	us := func(ns float64) float64 { return ns / 1e3 }
	out["p50"] = us(h.Quantile(0.50))
	out["p90"] = us(h.Quantile(0.90))
	out["p95"] = us(h.Quantile(0.95))
	out["p99"] = us(h.Quantile(0.99))
	out["p999"] = us(h.Quantile(0.999))
	out["max"] = us(h.Max())
	return out
}

func maxOf(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streambench:", err)
	os.Exit(1)
}
