// Command streambench measures the streaming front-ends (stm.Pipeline
// and shard.ShardedPipeline) under a closed-loop load: a set of client
// goroutines each submits a transaction, waits for its ticket to
// commit, and immediately submits the next — the standard way to
// measure a long-lived transaction service's sustained throughput and
// commit latency together, as opposed to the open-loop batch numbers
// microbench reports.
//
// With -shards 0 (the default) it drives a single stm.Pipeline. With
// -shards S >= 1 it drives a shard.ShardedPipeline over S partitions:
// accounts are laid out partition-locally, each client transacts
// within a random partition, and -cross sets the fraction of
// transactions that deliberately span two partitions (declared via
// stm.Access and executed through the fence/rendezvous protocol).
//
// It also verifies the epoch-recycling story: heap occupancy is
// sampled across the run so an unbounded stream that leaked engine
// metadata per transaction would show up as monotonic growth.
//
// Examples:
//
//	streambench -alg OUL -workers 8 -clients 16 -txns 100000
//	streambench -alg OUL -shards 4 -cross 0.05 -json >> BENCH_stream.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
)

// waiter is the common ticket surface of both front-ends.
type waiter interface{ Wait() error }

func main() {
	var (
		algF     = flag.String("alg", "OUL", "algorithm (paper-style name, see stm.ParseAlgorithm)")
		workers  = flag.Int("workers", 8, "engine worker goroutines (per shard when -shards > 0)")
		clients  = flag.Int("clients", 16, "closed-loop client goroutines")
		txns     = flag.Int("txns", 100000, "total transactions to stream")
		pool     = flag.Int("pool", 1<<16, "shared word-pool size (accounts)")
		ops      = flag.Int("ops", 4, "reads+writes per transaction")
		capF     = flag.Int("capacity", 0, "pipeline capacity (0 = default)")
		window   = flag.Int("window", 0, "run-ahead window (0 = default)")
		epoch    = flag.Int("epoch", 1<<14, "commits per recycling epoch")
		shardsF  = flag.Int("shards", 0, "partitions for sharded execution (0 = unsharded stm.Pipeline)")
		crossF   = flag.Float64("cross", 0, "fraction of transactions spanning two shards (sharded mode)")
		jsonF    = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		memEvery = flag.Int("memevery", 8, "heap samples across the run")
	)
	flag.Parse()
	alg, err := stm.ParseAlgorithm(*algF)
	if err != nil {
		fatal(err)
	}
	pcfg := stm.Config{
		Algorithm: alg,
		Workers:   *workers,
		Window:    *window,
		Capacity:  *capF,
		EpochAges: *epoch,
	}

	accounts := stm.NewVars(*pool)
	for i := range accounts {
		accounts[i].Store(1000)
	}

	// submit runs one closed-loop client step; the two front-ends plug
	// their own routing in here.
	var submit func(r *rng.Rand) (waiter, error)
	var closeSvc func() error
	var committed func() uint64
	var epochs func() uint64
	var stats func() (commits, aborts, retries uint64)
	var perShard func() []shardStats
	var crossCount func() uint64
	var effCapacity, effWindow int

	if *shardsF == 0 {
		p, err := stm.NewPipeline(pcfg)
		if err != nil {
			fatal(err)
		}
		submit = func(r *rng.Rand) (waiter, error) {
			from, to := r.Intn(*pool), r.Intn(*pool)
			return p.Submit(transferBody(accounts, from, to, extraReads(from, *ops, *pool, nil)))
		}
		closeSvc = p.Close
		committed = p.Committed
		epochs = p.Epochs
		stats = func() (uint64, uint64, uint64) {
			sv := p.Stats()
			return sv.Commits, sv.TotalAborts(), sv.Retries
		}
		perShard = func() []shardStats { return nil }
		crossCount = func() uint64 { return 0 }
		effCapacity, effWindow = p.Config().Capacity, p.Config().Window
	} else {
		sp, err := shard.New(shard.Config{Shards: *shardsF, Pipeline: pcfg})
		if err != nil {
			fatal(err)
		}
		// Partition-local account layout: bucket indices by owning shard.
		buckets := make([][]int, *shardsF)
		for i := range accounts {
			s := sp.ShardOf(&accounts[i])
			buckets[s] = append(buckets[s], i)
		}
		for s, b := range buckets {
			if len(b) < 2 {
				fatal(fmt.Errorf("shard %d owns %d accounts; raise -pool", s, len(b)))
			}
		}
		nshards := *shardsF
		crossPPM := int(*crossF * 1e6) // per-million threshold; rng has no Float64
		submit = func(r *rng.Rand) (waiter, error) {
			if nshards > 1 && r.Intn(1_000_000) < crossPPM {
				// Cross-shard transfer between two partitions.
				sa := r.Intn(nshards)
				sb := (sa + 1 + r.Intn(nshards-1)) % nshards
				from := buckets[sa][r.Intn(len(buckets[sa]))]
				to := buckets[sb][r.Intn(len(buckets[sb]))]
				return sp.Submit(
					stm.Touches(&accounts[from], &accounts[to]),
					transferBody(accounts, from, to, nil),
				)
			}
			// Single-shard transaction confined to one partition.
			s := r.Intn(nshards)
			bk := buckets[s]
			fi := r.Intn(len(bk))
			from, to := bk[fi], bk[r.Intn(len(bk))]
			extra := extraReads(fi, *ops, len(bk), bk)
			vs := make([]*stm.Var, 0, *ops+1)
			vs = append(vs, &accounts[from], &accounts[to])
			for _, i := range extra {
				vs = append(vs, &accounts[i])
			}
			return sp.Submit(stm.Touches(vs...), transferBody(accounts, from, to, extra))
		}
		closeSvc = sp.Close
		committed = sp.Submitted // every accepted txn commits on a clean run
		epochs = func() uint64 { return 0 }
		stats = func() (uint64, uint64, uint64) {
			sv := sp.Stats()
			return sv.Commits, sv.TotalAborts(), sv.Retries
		}
		perShard = func() []shardStats {
			out := make([]shardStats, 0, nshards)
			for s, sv := range sp.ShardStats() {
				out = append(out, shardStats{
					Shard:    s,
					Commits:  sv.Commits,
					Aborts:   sv.TotalAborts(),
					Retries:  sv.Retries,
					Quiesces: sv.Quiesces,
				})
			}
			return out
		}
		crossCount = sp.CrossShard
		effCapacity, effWindow = sp.PipelineConfig().Capacity, sp.PipelineConfig().Window
	}

	latencies := make([][]time.Duration, *clients)
	heapSamples := make([]uint64, 0, *memEvery+2)
	var heapMu sync.Mutex
	// The endpoint samples force a collection so first-vs-last compares
	// live bytes (the leak signal); mid-run samples are taken raw to
	// avoid injecting GC pauses into the measured latencies.
	sampleHeap := func(forceGC bool) {
		if forceGC {
			runtime.GC()
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapMu.Lock()
		heapSamples = append(heapSamples, ms.HeapAlloc)
		heapMu.Unlock()
	}
	sampleHeap(true)

	if *clients > *txns {
		*clients = *txns // fewer transactions than clients: shrink the loop
	}
	if *clients < 1 {
		fatal(fmt.Errorf("need at least 1 transaction (got -txns %d)", *txns))
	}
	perClient := *txns / *clients
	if *memEvery < 1 {
		*memEvery = 1
	}
	sampleEvery := perClient / *memEvery
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perClient)
			r := rng.New(uint64(c)*0x9E3779B97F4A7C15 + 1)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				tk, err := submit(r)
				if err != nil {
					fatal(err)
				}
				if err := tk.Wait(); err != nil {
					fatal(err)
				}
				lat = append(lat, time.Since(t0))
				if c == 0 && i%sampleEvery == sampleEvery-1 {
					sampleHeap(false)
				}
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	ncommitted := committed()
	if err := closeSvc(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	sampleHeap(true)

	all := make([]time.Duration, 0, *txns)
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	commits, aborts, retries := stats()

	rep := report{
		Bench:     "stream-closed-loop",
		Algorithm: alg.String(),
		Workers:   *workers,
		Clients:   *clients,
		Shards:    *shardsF,
		Txns:      int(ncommitted),
		CrossTxns: crossCount(),
		Capacity:  effCapacity,
		Window:    effWindow,
		ElapsedS:  elapsed.Seconds(),
		TxPerSec:  stm.Throughput(ncommitted, elapsed),
		LatencyUS: percentiles(all),
		Epochs:    epochs(),
		Commits:   commits,
		Aborts:    aborts,
		Retries:   retries,
		PerShard:  perShard(),
		HeapBytes: heapSamples,
	}
	if *jsonF {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	if rep.Shards > 0 {
		fmt.Printf("%s  shards=%d workers=%d/shard clients=%d cross=%d\n",
			rep.Algorithm, rep.Shards, rep.Workers, rep.Clients, rep.CrossTxns)
	} else {
		fmt.Printf("%s  workers=%d clients=%d\n", rep.Algorithm, rep.Workers, rep.Clients)
	}
	fmt.Printf("  %d txns in %.3fs  →  %.0f tx/s\n", rep.Txns, rep.ElapsedS, rep.TxPerSec)
	fmt.Printf("  commit latency  p50=%.1fµs  p95=%.1fµs  p99=%.1fµs  max=%.1fµs\n",
		rep.LatencyUS["p50"], rep.LatencyUS["p95"], rep.LatencyUS["p99"], rep.LatencyUS["max"])
	fmt.Printf("  aborts=%d retries=%d epochs=%d\n", rep.Aborts, rep.Retries, rep.Epochs)
	for _, s := range rep.PerShard {
		fmt.Printf("    shard %d: commits=%d aborts=%d retries=%d\n", s.Shard, s.Commits, s.Aborts, s.Retries)
	}
	if n := len(heapSamples); n >= 2 {
		fmt.Printf("  live heap: start=%dKiB end=%dKiB (flat ⇒ epoch recycling holds; raw mid-run peak=%dKiB)\n",
			heapSamples[0]/1024, heapSamples[n-1]/1024, maxOf(heapSamples[1:n-1])/1024)
	}
}

// extraReads lists the account indices a transaction folds in beyond
// its from/to pair: ops-2 neighbors of position fi, walking the given
// index set (or the whole pool when idx is nil).
func extraReads(fi, ops, n int, idx []int) []int {
	if ops <= 2 {
		return nil
	}
	out := make([]int, 0, ops-2)
	for k := 1; k < ops-1; k++ {
		if idx == nil {
			out = append(out, (fi+k)%n)
		} else {
			out = append(out, idx[(fi+k)%n])
		}
	}
	return out
}

// transferBody builds the standard bank-transfer body: fold the
// extra reads, then conditionally move a small amount from from to
// to. Deterministic in (age, memory) as the library requires.
func transferBody(accounts []stm.Var, from, to int, extra []int) stm.Body {
	return func(tx stm.Tx, age int) {
		b := tx.Read(&accounts[from])
		for _, i := range extra {
			b += tx.Read(&accounts[i])
		}
		amt := b % 7
		cur := tx.Read(&accounts[from])
		if cur >= amt {
			tx.Write(&accounts[from], cur-amt)
			tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
		}
	}
}

// shardStats is the per-shard engine counter breakdown in -json mode.
type shardStats struct {
	Shard    int    `json:"shard"`
	Commits  uint64 `json:"commits"`
	Aborts   uint64 `json:"aborts"`
	Retries  uint64 `json:"retries"`
	Quiesces uint64 `json:"quiesces"`
}

// report is the -json document; one line per run appended to a
// BENCH_*.json file tracks the perf trajectory across PRs.
type report struct {
	Bench     string             `json:"bench"`
	Algorithm string             `json:"algorithm"`
	Workers   int                `json:"workers"`
	Clients   int                `json:"clients"`
	Shards    int                `json:"shards"`
	Txns      int                `json:"txns"`
	CrossTxns uint64             `json:"cross_txns"`
	Capacity  int                `json:"capacity"`
	Window    int                `json:"window"`
	ElapsedS  float64            `json:"elapsed_s"`
	TxPerSec  float64            `json:"tx_per_s"`
	LatencyUS map[string]float64 `json:"latency_us"`
	Epochs    uint64             `json:"epochs"`
	Commits   uint64             `json:"commits"`
	Aborts    uint64             `json:"aborts"`
	Retries   uint64             `json:"retries"`
	PerShard  []shardStats       `json:"per_shard,omitempty"`
	HeapBytes []uint64           `json:"heap_bytes"`
}

func percentiles(sorted []time.Duration) map[string]float64 {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	out := map[string]float64{"p50": 0, "p95": 0, "p99": 0, "max": 0}
	if len(sorted) == 0 {
		return out
	}
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	out["p50"] = us(at(0.50))
	out["p95"] = us(at(0.95))
	out["p99"] = us(at(0.99))
	out["max"] = us(sorted[len(sorted)-1])
	return out
}

func maxOf(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streambench:", err)
	os.Exit(1)
}
