// Command streambench measures the streaming front-end (stm.Pipeline)
// under a closed-loop load: a set of client goroutines each submits a
// transaction, waits for its ticket to commit, and immediately submits
// the next — the standard way to measure a long-lived transaction
// service's sustained throughput and commit latency together, as
// opposed to the open-loop batch numbers microbench reports.
//
// It also verifies the epoch-recycling story: heap occupancy is
// sampled across the run so an unbounded stream that leaked engine
// metadata per transaction would show up as monotonic growth.
//
// Examples:
//
//	streambench -alg OUL -workers 8 -clients 16 -txns 100000
//	streambench -alg OWB -json >> BENCH_stream.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

func main() {
	var (
		algF     = flag.String("alg", "OUL", "algorithm (paper-style name, see stm.ParseAlgorithm)")
		workers  = flag.Int("workers", 8, "engine worker goroutines")
		clients  = flag.Int("clients", 16, "closed-loop client goroutines")
		txns     = flag.Int("txns", 100000, "total transactions to stream")
		pool     = flag.Int("pool", 1<<16, "shared word-pool size (accounts)")
		ops      = flag.Int("ops", 4, "reads+writes per transaction")
		capF     = flag.Int("capacity", 0, "pipeline capacity (0 = default)")
		window   = flag.Int("window", 0, "run-ahead window (0 = default)")
		epoch    = flag.Int("epoch", 1<<14, "commits per recycling epoch")
		jsonF    = flag.Bool("json", false, "emit machine-readable JSON instead of text")
		memEvery = flag.Int("memevery", 8, "heap samples across the run")
	)
	flag.Parse()
	alg, err := stm.ParseAlgorithm(*algF)
	if err != nil {
		fatal(err)
	}
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: alg,
		Workers:   *workers,
		Window:    *window,
		Capacity:  *capF,
		EpochAges: *epoch,
	})
	if err != nil {
		fatal(err)
	}
	accounts := stm.NewVars(*pool)
	for i := range accounts {
		accounts[i].Store(1000)
	}

	latencies := make([][]time.Duration, *clients)
	heapSamples := make([]uint64, 0, *memEvery+2)
	var heapMu sync.Mutex
	// The endpoint samples force a collection so first-vs-last compares
	// live bytes (the leak signal); mid-run samples are taken raw to
	// avoid injecting GC pauses into the measured latencies.
	sampleHeap := func(forceGC bool) {
		if forceGC {
			runtime.GC()
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapMu.Lock()
		heapSamples = append(heapSamples, ms.HeapAlloc)
		heapMu.Unlock()
	}
	sampleHeap(true)

	if *clients > *txns {
		*clients = *txns // fewer transactions than clients: shrink the loop
	}
	if *clients < 1 {
		fatal(fmt.Errorf("need at least 1 transaction (got -txns %d)", *txns))
	}
	perClient := *txns / *clients
	if *memEvery < 1 {
		*memEvery = 1
	}
	sampleEvery := perClient / *memEvery
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat := make([]time.Duration, 0, perClient)
			r := rng.New(uint64(c)*0x9E3779B97F4A7C15 + 1)
			for i := 0; i < perClient; i++ {
				from := r.Intn(*pool)
				to := r.Intn(*pool)
				ops := *ops
				t0 := time.Now()
				tk, err := p.Submit(func(tx stm.Tx, age int) {
					b := tx.Read(&accounts[from])
					for k := 1; k < ops-1; k++ {
						b += tx.Read(&accounts[(from+k)%len(accounts)])
					}
					amt := b % 7
					cur := tx.Read(&accounts[from])
					if cur >= amt {
						tx.Write(&accounts[from], cur-amt)
						tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
					}
				})
				if err != nil {
					fatal(err)
				}
				if err := tk.Wait(); err != nil {
					fatal(err)
				}
				lat = append(lat, time.Since(t0))
				if c == 0 && i%sampleEvery == sampleEvery-1 {
					sampleHeap(false)
				}
			}
			latencies[c] = lat
		}(c)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	sampleHeap(true)

	committed := p.Committed()
	all := make([]time.Duration, 0, *txns)
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sv := p.Stats()

	rep := report{
		Bench:     "stream-closed-loop",
		Algorithm: alg.String(),
		Workers:   *workers,
		Clients:   *clients,
		Txns:      int(committed),
		Capacity:  p.Config().Capacity,
		Window:    p.Config().Window,
		ElapsedS:  elapsed.Seconds(),
		TxPerSec:  stm.Throughput(committed, elapsed),
		LatencyUS: percentiles(all),
		Epochs:    p.Epochs(),
		Commits:   sv.Commits,
		Aborts:    sv.TotalAborts(),
		Retries:   sv.Retries,
		HeapBytes: heapSamples,
	}
	if *jsonF {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s  workers=%d clients=%d\n", rep.Algorithm, rep.Workers, rep.Clients)
	fmt.Printf("  %d txns in %.3fs  →  %.0f tx/s\n", rep.Txns, rep.ElapsedS, rep.TxPerSec)
	fmt.Printf("  commit latency  p50=%.1fµs  p95=%.1fµs  p99=%.1fµs  max=%.1fµs\n",
		rep.LatencyUS["p50"], rep.LatencyUS["p95"], rep.LatencyUS["p99"], rep.LatencyUS["max"])
	fmt.Printf("  aborts=%d retries=%d epochs=%d\n", rep.Aborts, rep.Retries, rep.Epochs)
	if n := len(heapSamples); n >= 2 {
		fmt.Printf("  live heap: start=%dKiB end=%dKiB (flat ⇒ epoch recycling holds; raw mid-run peak=%dKiB)\n",
			heapSamples[0]/1024, heapSamples[n-1]/1024, maxOf(heapSamples[1:n-1])/1024)
	}
}

// report is the -json document; one line per run appended to a
// BENCH_*.json file tracks the perf trajectory across PRs.
type report struct {
	Bench     string             `json:"bench"`
	Algorithm string             `json:"algorithm"`
	Workers   int                `json:"workers"`
	Clients   int                `json:"clients"`
	Txns      int                `json:"txns"`
	Capacity  int                `json:"capacity"`
	Window    int                `json:"window"`
	ElapsedS  float64            `json:"elapsed_s"`
	TxPerSec  float64            `json:"tx_per_s"`
	LatencyUS map[string]float64 `json:"latency_us"`
	Epochs    uint64             `json:"epochs"`
	Commits   uint64             `json:"commits"`
	Aborts    uint64             `json:"aborts"`
	Retries   uint64             `json:"retries"`
	HeapBytes []uint64           `json:"heap_bytes"`
}

func percentiles(sorted []time.Duration) map[string]float64 {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	out := map[string]float64{"p50": 0, "p95": 0, "p99": 0, "max": 0}
	if len(sorted) == 0 {
		return out
	}
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	out["p50"] = us(at(0.50))
	out["p95"] = us(at(0.95))
	out["p99"] = us(at(0.99))
	out["max"] = us(sorted[len(sorted)-1])
	return out
}

func maxOf(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streambench:", err)
	os.Exit(1)
}
