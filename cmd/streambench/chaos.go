package main

// Chaos mode: -faults seed:N replaces the closed-loop benchmark with a
// seeded fault-injection run (internal/harness/chaos) and reports the
// two safety verdicts — no_phantom_durable and state_match — the CI
// smoke gates on. The process exits non-zero when either fails, so the
// jq check and the exit code can never disagree.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/orderedstm/ostm/internal/harness/chaos"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/wal"
)

// parseFaultSpec parses -faults. The only form today is "seed:N";
// keeping it prefixed leaves room for explicit schedules later.
func parseFaultSpec(s string) (uint64, error) {
	rest, ok := strings.CutPrefix(s, "seed:")
	if !ok {
		return 0, fmt.Errorf("streambench: -faults must be seed:N (got %q)", s)
	}
	seed, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("streambench: -faults seed %q: %v", rest, err)
	}
	return seed, nil
}

func parseFailPolicy(s string) (wal.FailPolicy, error) {
	switch strings.ToLower(s) {
	case "", "failstop", "fail-stop":
		return wal.FailStop, nil
	case "degrade":
		return wal.Degrade, nil
	default:
		return wal.FailStop, fmt.Errorf("streambench: -onfail must be failstop or degrade (got %q)", s)
	}
}

// runChaos executes one chaos run. dir is the WAL directory (-wal);
// empty means a throwaway temp directory.
func runChaos(spec string, alg stm.Algorithm, shards, workers, txns int, onFail, dir string, jsonOut bool) {
	seed, err := parseFaultSpec(spec)
	if err != nil {
		fatal(err)
	}
	policy, err := parseFailPolicy(onFail)
	if err != nil {
		fatal(err)
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "streambench-chaos-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	res, err := chaos.Run(chaos.Config{
		Seed:    seed,
		Alg:     alg,
		Shards:  shards,
		Txns:    txns,
		Workers: workers,
		OnFail:  policy,
		Dir:     dir,
	})
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("chaos  alg=%s shards=%d onfail=%s seed=%d\n", res.Alg, res.Shards, res.OnFail, res.Seed)
		fmt.Printf("  %d submitted: %d acked durable, %d failed tickets; %d recovered (degraded=%v)\n",
			res.Txns, res.AckedDurable, res.FailedTickets, res.RecoveredTxns, res.Degraded)
		fmt.Printf("  injected %d faults\n", res.Injected)
		for _, l := range res.FaultLog {
			fmt.Printf("    %s\n", l)
		}
		if res.CloseErr != "" {
			fmt.Printf("  close: %s\n", res.CloseErr)
		}
		fmt.Printf("  no_phantom_durable=%v state_match=%v\n", res.NoPhantomDurable, res.StateMatch)
	}
	if !res.Ok() {
		os.Exit(1)
	}
}
