package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

// The durable payload wire format (bench-local; the library only sees
// opaque bytes through its Codec):
//
//	u8  op (0 transfer, 1 warm-all, 2 warm-shard)
//	transfer:   u32 from | u32 to | u16 n | n × u32 extra
//	warm-shard: u16 shard
const (
	opTransfer  = 0
	opWarmAll   = 1
	opWarmShard = 2
)

// txnPayload is the application-level payload handed to SubmitPayload.
type txnPayload struct {
	op       byte
	from, to uint32
	extra    []uint32
	shard    uint16
}

func encodePayload(p txnPayload) ([]byte, error) {
	switch p.op {
	case opTransfer:
		return appendTransfer(make([]byte, 0, 11+4*len(p.extra)), p), nil
	case opWarmAll:
		return []byte{opWarmAll}, nil
	case opWarmShard:
		return binary.LittleEndian.AppendUint16([]byte{opWarmShard}, p.shard), nil
	default:
		return nil, fmt.Errorf("streambench: unknown payload op %d", p.op)
	}
}

// appendTransfer frames a transfer payload into dst (append-style, so
// a closed-loop client can recycle its wire buffer — SubmitEncoded
// releases the bytes when the ticket resolves).
func appendTransfer(dst []byte, p txnPayload) []byte {
	dst = append(dst, opTransfer)
	dst = binary.LittleEndian.AppendUint32(dst, p.from)
	dst = binary.LittleEndian.AppendUint32(dst, p.to)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.extra)))
	for _, e := range p.extra {
		dst = binary.LittleEndian.AppendUint32(dst, e)
	}
	return dst
}

func decodePayload(data []byte) (txnPayload, error) {
	if len(data) == 0 {
		return txnPayload{}, fmt.Errorf("streambench: empty payload")
	}
	switch data[0] {
	case opTransfer:
		if len(data) < 11 {
			return txnPayload{}, fmt.Errorf("streambench: short transfer payload")
		}
		p := txnPayload{
			op:   opTransfer,
			from: binary.LittleEndian.Uint32(data[1:5]),
			to:   binary.LittleEndian.Uint32(data[5:9]),
		}
		n := int(binary.LittleEndian.Uint16(data[9:11]))
		if len(data) != 11+4*n {
			return txnPayload{}, fmt.Errorf("streambench: transfer payload length %d != %d", len(data), 11+4*n)
		}
		for k := 0; k < n; k++ {
			p.extra = append(p.extra, binary.LittleEndian.Uint32(data[11+4*k:15+4*k]))
		}
		return p, nil
	case opWarmAll:
		return txnPayload{op: opWarmAll}, nil
	case opWarmShard:
		if len(data) != 3 {
			return txnPayload{}, fmt.Errorf("streambench: short warm-shard payload")
		}
		return txnPayload{op: opWarmShard, shard: binary.LittleEndian.Uint16(data[1:3])}, nil
	default:
		return txnPayload{}, fmt.Errorf("streambench: unknown payload op %d", data[0])
	}
}

// checkTransfer validates a transfer's frame and indices against the
// pool without materializing an index slice.
func checkTransfer(accounts []stm.Var, data []byte) error {
	if len(data) < 11 || data[0] != opTransfer {
		return fmt.Errorf("streambench: malformed transfer payload")
	}
	from := binary.LittleEndian.Uint32(data[1:5])
	to := binary.LittleEndian.Uint32(data[5:9])
	n := int(binary.LittleEndian.Uint16(data[9:11]))
	if len(data) != 11+4*n {
		return fmt.Errorf("streambench: transfer payload length %d != %d", len(data), 11+4*n)
	}
	if int(from) >= len(accounts) || int(to) >= len(accounts) {
		return fmt.Errorf("streambench: transfer %d→%d outside pool %d (recover with the original -pool)", from, to, len(accounts))
	}
	for k := 0; k < n; k++ {
		if e := binary.LittleEndian.Uint32(data[11+4*k:]); int(e) >= len(accounts) {
			return fmt.Errorf("streambench: extra read %d outside pool %d", e, len(accounts))
		}
	}
	return nil
}

// transferBody builds the canonical transfer body over the account
// pool — with a WAL attached, both live execution and recovery replay
// run exactly this decoded code path. The body parses the validated
// wire form in place on each execution instead of materializing an
// index slice: the decode path runs once per live submission, so it
// stays lean — one closure, no scratch allocations.
func transferBody(accounts []stm.Var, data []byte) (stm.Body, error) {
	if err := checkTransfer(accounts, data); err != nil {
		return nil, err
	}
	from := binary.LittleEndian.Uint32(data[1:5])
	to := binary.LittleEndian.Uint32(data[5:9])
	n := int(binary.LittleEndian.Uint16(data[9:11]))
	return func(tx stm.Tx, age int) {
		b := tx.Read(&accounts[from])
		for k := 0; k < n; k++ {
			b += tx.Read(&accounts[binary.LittleEndian.Uint32(data[11+4*k:])])
		}
		amt := b % 7
		cur := tx.Read(&accounts[from])
		if cur >= amt {
			tx.Write(&accounts[from], cur-amt)
			tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
		}
	}, nil
}

// typedBenchCodec builds the -typed -wal bridge: the same wire format
// as benchCodec (so -recover drives either run's log), decoded into
// typed transfer Funcs over the TVar pool whose results the latched
// tickets report.
func typedBenchCodec(tacc []stm.TVar[uint64]) *stm.TypedCodec[*txnPayload, uint64] {
	return stm.CodecOf(
		func(p *txnPayload) ([]byte, error) { return encodePayload(*p) },
		func(data []byte) (*txnPayload, error) {
			p, err := decodePayload(data)
			if err != nil {
				return nil, err
			}
			if p.op == opTransfer {
				if int(p.from) >= len(tacc) || int(p.to) >= len(tacc) {
					return nil, fmt.Errorf("streambench: transfer %d→%d outside pool %d", p.from, p.to, len(tacc))
				}
				for _, e := range p.extra {
					if int(e) >= len(tacc) {
						return nil, fmt.Errorf("streambench: extra read %d outside pool %d", e, len(tacc))
					}
				}
			}
			return &p, nil
		},
		func(p *txnPayload) stm.Func[uint64] {
			if p.op != opTransfer { // warm ops: read-only, state-neutral
				return func(tx stm.Tx, _ int) uint64 {
					for i := range tacc {
						stm.ReadT(tx, &tacc[i])
					}
					return 0
				}
			}
			from, to, extra := p.from, p.to, p.extra
			return func(tx stm.Tx, _ int) uint64 {
				b := stm.ReadT(tx, &tacc[from])
				for _, e := range extra {
					b += stm.ReadT(tx, &tacc[e])
				}
				amt := b % 7
				cur := stm.ReadT(tx, &tacc[from])
				if cur >= amt {
					stm.WriteT(tx, &tacc[from], cur-amt)
					stm.WriteT(tx, &tacc[to], stm.ReadT(tx, &tacc[to])+amt)
					return cur - amt
				}
				return cur
			}
		},
	)
}

// benchCodec is the unsharded stm.Codec over the account pool.
type benchCodec struct{ accounts []stm.Var }

// encodeAny accepts both payload shapes the bench submits (pointer on
// the hot path — it avoids interface boxing — and plain value).
func encodeAny(payload any) ([]byte, error) {
	switch p := payload.(type) {
	case *txnPayload:
		return encodePayload(*p)
	case txnPayload:
		return encodePayload(p)
	default:
		return nil, fmt.Errorf("streambench: unexpected payload %T", payload)
	}
}

func (c benchCodec) Encode(payload any) ([]byte, error) { return encodeAny(payload) }

func (c benchCodec) Decode(data []byte) (stm.Body, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("streambench: empty payload")
	}
	switch data[0] {
	case opTransfer:
		return transferBody(c.accounts, data)
	case opWarmAll, opWarmShard: // warm ops: read-only, state-neutral
		accounts := c.accounts
		return func(tx stm.Tx, _ int) {
			for i := range accounts {
				tx.Read(&accounts[i])
			}
		}, nil
	default:
		return nil, fmt.Errorf("streambench: unknown payload op %d", data[0])
	}
}

// shardCodec is the sharded shard.Codec: it also reconstructs the
// access declaration, using the live router's partition layout for
// the warm-shard op.
type shardCodec struct {
	accounts []stm.Var
	buckets  [][]int // account indices per owning shard
}

func (c shardCodec) Encode(payload any) ([]byte, error) { return encodeAny(payload) }

func (c shardCodec) Decode(data []byte) (stm.Access, stm.Body, error) {
	if len(data) == 0 {
		return stm.Access{}, nil, fmt.Errorf("streambench: empty payload")
	}
	switch data[0] {
	case opTransfer:
		// One parse: transferBody validates the frame in place, and
		// the access list is read straight off the same bytes.
		body, err := transferBody(c.accounts, data)
		if err != nil {
			return stm.Access{}, nil, err
		}
		n := int(binary.LittleEndian.Uint16(data[9:11]))
		vars := make([]*stm.Var, 0, 2+n)
		vars = append(vars,
			&c.accounts[binary.LittleEndian.Uint32(data[1:5])],
			&c.accounts[binary.LittleEndian.Uint32(data[5:9])])
		for k := 0; k < n; k++ {
			vars = append(vars, &c.accounts[binary.LittleEndian.Uint32(data[11+4*k:])])
		}
		return stm.Touches(vars...), body, nil
	case opWarmShard:
		p, err := decodePayload(data)
		if err != nil {
			return stm.Access{}, nil, err
		}
		if int(p.shard) >= len(c.buckets) {
			return stm.Access{}, nil, fmt.Errorf("streambench: warm-shard %d outside %d shards (recover with the original -shards)", p.shard, len(c.buckets))
		}
		bk := c.buckets[p.shard]
		accounts := c.accounts
		vars := make([]*stm.Var, len(bk))
		for i, idx := range bk {
			vars[i] = &accounts[idx]
		}
		return stm.Touches(vars...), func(tx stm.Tx, _ int) {
			for _, v := range vars {
				tx.Read(v)
			}
		}, nil
	case opWarmAll:
		accounts := c.accounts
		return stm.TouchesAll(), func(tx stm.Tx, _ int) {
			for i := range accounts {
				tx.Read(&accounts[i])
			}
		}, nil
	default:
		return stm.Access{}, nil, fmt.Errorf("streambench: unknown payload op %d", data[0])
	}
}

// parseSyncPolicy maps the -sync flag to wal.Options: "none", an
// integer N (fsync every N commits), a duration (fsync at least that
// often while dirty), or "adaptive" (pipelined groups sized to the
// storage's observed fsync latency).
func parseSyncPolicy(s string) (wal.Options, error) {
	if s == "" || s == "none" {
		return wal.Options{}, nil
	}
	if s == "adaptive" {
		return wal.Options{Adaptive: true}, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return wal.Options{}, fmt.Errorf("streambench: -sync %d must be positive", n)
		}
		return wal.Options{SyncEveryN: n}, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d <= 0 {
			return wal.Options{}, fmt.Errorf("streambench: -sync %v must be positive", d)
		}
		return wal.Options{SyncInterval: d}, nil
	}
	return wal.Options{}, fmt.Errorf("streambench: -sync must be none, adaptive, an integer, or a duration (got %q)", s)
}

// recoveryReport is the -recover JSON document the CI crash smoke
// jq-verifies. replayed_txns counts only the log suffix actually
// replayed (above the checkpoint, when one was loaded); recovered_txns
// is its legacy alias. recovery_ms is the end-to-end restart cost —
// log scan + checkpoint restore + suffix replay — the number the
// checkpoint interval bounds.
type recoveryReport struct {
	Bench         string  `json:"bench"`
	Algorithm     string  `json:"algorithm"`
	Shards        int     `json:"shards"`
	Pool          int     `json:"pool"`
	RecoveredTxns int     `json:"recovered_txns"`
	ReplayedTxns  int     `json:"replayed_txns"`
	FirstAge      uint64  `json:"first_age"`
	NextAge       uint64  `json:"next_age"`
	Truncated     bool    `json:"truncated"`
	HasCheckpoint bool    `json:"has_checkpoint"`
	CheckpointAge uint64  `json:"checkpoint_age"`
	SkippedTxns   int     `json:"skipped_txns"`
	SkippedBytes  uint64  `json:"skipped_bytes"`
	StateMatch    bool    `json:"state_match"`
	RecoveryMS    float64 `json:"recovery_ms"`
	ReplayS       float64 `json:"replay_s"`
	ReplayTxPerS  float64 `json:"replay_tx_per_s"`
}

// runRecovery is streambench's crash-recovery driver: open the log,
// truncate any torn tail, replay the surviving prefix through the
// selected front-end (the same -alg/-shards/-pool as the crashed
// run), and verify the rebuilt state against a plain sequential fold
// of the recorded payloads. state_match=true is the machine-checkable
// form of "recovery ≡ replay ≡ sequential execution of the durable
// prefix".
func runRecovery(dir string, alg stm.Algorithm, shards, workers, pool int, emitJSON bool) {
	recoverStart := time.Now()
	rec, err := wal.Recover(dir)
	if err != nil {
		fatal(err)
	}
	accounts := stm.NewVars(pool)
	for i := range accounts {
		accounts[i].Store(1000)
	}
	// Checkpoint-seeded restart: restore the snapshot into the pool
	// (and, sharded, recover the per-shard local-age watermarks), then
	// replay only the suffix the checkpoint does not cover.
	var localFirst []uint64
	if rec.HasCheckpoint() {
		app := rec.CheckpointState()
		if shards > 0 {
			ln, a, err := shard.DecodeCheckpoint(app)
			if err != nil {
				fatal(err)
			}
			localFirst, app = ln, a
		}
		if err := stm.RestoreVars(accounts, app); err != nil {
			fatal(fmt.Errorf("%w (recover with the original -pool and -shards)", err))
		}
	}
	// Reopen the log so the replay flows through a fully durable
	// pipeline exactly as a live restart would; re-appends of
	// recovered ages are no-ops, so verification leaves the log
	// untouched.
	w, err := rec.Writer(wal.Options{})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	if shards == 0 {
		p, err := stm.NewPipeline(stm.Config{
			Algorithm: alg,
			Workers:   workers,
			Codec:     benchCodec{accounts: accounts},
			WAL:       w,
			FirstAge:  rec.First(),
		})
		if err != nil {
			fatal(err)
		}
		if err := rec.Replay(func(age uint64, payload []byte) error {
			_, err := p.SubmitEncoded(payload)
			return err
		}); err != nil {
			fatal(err)
		}
		if err := p.Close(); err != nil {
			fatal(err)
		}
	} else {
		sp, err := shard.New(shard.Config{
			Shards:         shards,
			Pipeline:       stm.Config{Algorithm: alg, Workers: workers, FirstAge: rec.First()},
			WAL:            w,
			Codec:          newShardCodec(nil, accounts, shards),
			LocalFirstAges: localFirst,
		})
		if err != nil {
			fatal(err)
		}
		if err := rec.Replay(func(age uint64, payload []byte) error {
			_, err := sp.SubmitEncoded(payload)
			return err
		}); err != nil {
			fatal(err)
		}
		if err := sp.Close(); err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start)
	total := time.Since(recoverStart)
	if err := w.Close(); err != nil {
		fatal(err)
	}

	// Sequential oracle: fold the recorded payload semantics over
	// plain integers in age order — seeded from the checkpoint
	// snapshot when one was loaded, since the folded prefix below it
	// is gone from the log.
	model := make([]uint64, pool)
	for i := range model {
		model[i] = 1000
	}
	if rec.HasCheckpoint() {
		app := rec.CheckpointState()
		if shards > 0 {
			_, app, _ = shard.DecodeCheckpoint(app)
		}
		for i := range model {
			model[i] = binary.LittleEndian.Uint64(app[8*i:])
		}
	}
	for _, r := range rec.Records() {
		p, err := decodePayload(r.Payload)
		if err != nil {
			fatal(err)
		}
		if p.op != opTransfer {
			continue // warm ops are read-only
		}
		b := model[p.from]
		for _, e := range p.extra {
			b += model[e]
		}
		amt := b % 7
		if model[p.from] >= amt {
			model[p.from] -= amt
			model[p.to] += amt
		}
	}
	match := true
	for i := range model {
		if accounts[i].Load() != model[i] {
			match = false
			if !emitJSON {
				fmt.Printf("  MISMATCH account %d: replayed=%d model=%d\n", i, accounts[i].Load(), model[i])
			}
		}
	}

	skippedN, skippedB := rec.Skipped()
	rep := recoveryReport{
		Bench:         "stream-recovery",
		Algorithm:     alg.String(),
		Shards:        shards,
		Pool:          pool,
		RecoveredTxns: rec.Count(),
		ReplayedTxns:  rec.Count(),
		FirstAge:      rec.First(),
		NextAge:       rec.Next(),
		Truncated:     rec.Truncated(),
		HasCheckpoint: rec.HasCheckpoint(),
		CheckpointAge: rec.CheckpointAge(),
		SkippedTxns:   skippedN,
		SkippedBytes:  skippedB,
		StateMatch:    match,
		RecoveryMS:    float64(total.Nanoseconds()) / 1e6,
		ReplayS:       elapsed.Seconds(),
		ReplayTxPerS:  stm.Throughput(uint64(rec.Count()), elapsed),
	}
	if emitJSON {
		if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("%s recovery  shards=%d\n", rep.Algorithm, rep.Shards)
		fmt.Printf("  %d records (ages %d..%d, torn tail: %v) replayed in %.3fs → %.0f tx/s\n",
			rep.RecoveredTxns, rep.FirstAge, rep.NextAge, rep.Truncated, rep.ReplayS, rep.ReplayTxPerS)
		if rep.HasCheckpoint {
			fmt.Printf("  checkpoint at age %d restored; %d prefix records (%d bytes) skipped\n",
				rep.CheckpointAge, rep.SkippedTxns, rep.SkippedBytes)
		}
		fmt.Printf("  total recovery %.1fms; state match vs sequential fold: %v\n", rep.RecoveryMS, rep.StateMatch)
	}
	if !match {
		os.Exit(1)
	}
}

// newShardCodec builds the sharded codec; buckets are derived from
// the pool layout under the given shard count (sp may be nil before
// the router exists — the mapping is the stable meta.ShardOf).
func newShardCodec(buckets [][]int, accounts []stm.Var, shards int) shardCodec {
	if buckets == nil {
		buckets = make([][]int, shards)
		for i := range accounts {
			s := shard.Of(&accounts[i], shards)
			buckets[s] = append(buckets[s], i)
		}
	}
	return shardCodec{accounts: accounts, buckets: buckets}
}
