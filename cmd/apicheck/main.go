// Command apicheck guards the public API surface: it extracts every
// exported declaration of the library's public packages into a
// canonical text form and diffs it against the committed baseline
// (.github/api-baseline.txt). Removing or changing a baseline line is
// a breaking API change and fails the check (exit 1); additions are
// compatible but still fail (exit 2) until the baseline is
// regenerated and committed alongside them, so the baseline always
// equals the shipped surface.
//
// It deliberately uses only the standard library's go/ast parser (no
// golang.org/x/exp/apidiff dependency), so the CI job — and a
// developer running it locally — needs nothing beyond the toolchain:
//
//	go run ./cmd/apicheck            # check against the baseline
//	go run ./cmd/apicheck -write     # regenerate the baseline
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// packages lists the public surface; internal/ is exempt by
// construction.
var packages = []string{".", "stm", "stm/obs", "stm/repl", "stm/serve", "stm/shard", "stm/wal"}

const baselinePath = ".github/api-baseline.txt"

func main() {
	write := flag.Bool("write", false, "regenerate the baseline instead of checking against it")
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	current, err := surface(*root)
	if err != nil {
		fatal(err)
	}
	basefile := filepath.Join(*root, baselinePath)
	if *write {
		if err := os.WriteFile(basefile, []byte(strings.Join(current, "\n")+"\n"), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("apicheck: wrote %d declarations to %s\n", len(current), baselinePath)
		return
	}

	raw, err := os.ReadFile(basefile)
	if err != nil {
		fatal(fmt.Errorf("%w (run `go run ./cmd/apicheck -write` to create the baseline)", err))
	}
	baseline := nonEmptyLines(string(raw))
	curSet := toSet(current)
	baseSet := toSet(baseline)

	var removed, added []string
	for _, l := range baseline {
		if !curSet[l] {
			removed = append(removed, l)
		}
	}
	for _, l := range current {
		if !baseSet[l] {
			added = append(added, l)
		}
	}
	for _, l := range added {
		fmt.Printf("apicheck: new API: %s\n", l)
	}
	if len(added) > 0 {
		fmt.Printf("apicheck: %d addition(s); regenerate the baseline with `go run ./cmd/apicheck -write` and commit it\n", len(added))
	}
	if len(removed) > 0 {
		for _, l := range removed {
			fmt.Printf("apicheck: BREAKING: removed or changed: %s\n", l)
		}
		fmt.Printf("apicheck: %d breaking change(s) against %s\n", len(removed), baselinePath)
		os.Exit(1)
	}
	if len(added) > 0 {
		// Additions are compatible but must be captured, or the next
		// PR could silently drop them again.
		os.Exit(2)
	}
	fmt.Printf("apicheck: OK (%d declarations)\n", len(current))
}

// surface renders every exported declaration of the public packages,
// one canonical line each, sorted.
func surface(root string) ([]string, error) {
	var out []string
	for _, pkg := range packages {
		lines, err := packageSurface(root, pkg)
		if err != nil {
			return nil, err
		}
		out = append(out, lines...)
	}
	sort.Strings(out)
	return out, nil
}

func packageSurface(root, pkg string) ([]string, error) {
	dir := filepath.Join(root, pkg)
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, p := range pkgs {
		if strings.HasSuffix(p.Name, "_test") || p.Name == "main" {
			continue
		}
		prefix := pkg
		if pkg == "." {
			prefix = p.Name
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				out = append(out, declLines(fset, prefix, decl)...)
			}
		}
	}
	return out, nil
}

// declLines renders the exported pieces of one top-level declaration.
func declLines(fset *token.FileSet, pkg string, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil
		}
		fn := &ast.FuncDecl{Recv: d.Recv, Name: d.Name, Type: d.Type}
		return []string{pkg + ": " + render(fset, fn)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				out = append(out, typeLines(fset, pkg, s)...)
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					line := fmt.Sprintf("%s: %s %s", pkg, kind, name.Name)
					if s.Type != nil {
						line += " " + render(fset, s.Type)
					} else if d.Tok == token.CONST && len(s.Values) == 0 {
						line += " (iota)"
					}
					out = append(out, line)
				}
			}
		}
		return out
	}
	return nil
}

// typeLines renders an exported type: one line for the type's shape
// plus one line per exported struct field or interface method, so a
// removed field/method shows up as a removed line.
func typeLines(fset *token.FileSet, pkg string, s *ast.TypeSpec) []string {
	name := s.Name.Name
	tp := ""
	if s.TypeParams != nil {
		tp = "[" + fieldList(fset, s.TypeParams) + "]"
	}
	var out []string
	switch t := s.Type.(type) {
	case *ast.StructType:
		out = append(out, fmt.Sprintf("%s: type %s%s struct", pkg, name, tp))
		for _, f := range t.Fields.List {
			ft := render(fset, f.Type)
			if len(f.Names) == 0 {
				out = append(out, fmt.Sprintf("%s: field %s%s.%s (embedded)", pkg, name, tp, ft))
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					out = append(out, fmt.Sprintf("%s: field %s%s.%s %s", pkg, name, tp, fn.Name, ft))
				}
			}
		}
	case *ast.InterfaceType:
		out = append(out, fmt.Sprintf("%s: type %s%s interface", pkg, name, tp))
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				out = append(out, fmt.Sprintf("%s: ifacemethod %s%s.%s (embedded)", pkg, name, tp, render(fset, m.Type)))
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					out = append(out, fmt.Sprintf("%s: ifacemethod %s%s.%s%s", pkg, name, tp, mn.Name, render(fset, m.Type)))
				}
			}
		}
	default:
		kind := "type"
		if s.Assign != token.NoPos {
			kind = "type alias"
		}
		out = append(out, fmt.Sprintf("%s: %s %s%s = %s", pkg, kind, name, tp, render(fset, s.Type)))
	}
	return out
}

func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func fieldList(fset *token.FileSet, fl *ast.FieldList) string {
	var parts []string
	for _, f := range fl.List {
		var names []string
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
		parts = append(parts, strings.Join(names, ", ")+" "+render(fset, f.Type))
	}
	return strings.Join(parts, ", ")
}

// render prints an AST node on one line.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

func toSet(ls []string) map[string]bool {
	m := make(map[string]bool, len(ls))
	for _, l := range ls {
		m[l] = true
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apicheck:", err)
	os.Exit(1)
}
