// Command ordersvc runs an ordered-transaction pipeline as a network
// service: an h2c streaming front-end (stm/serve) over an unsharded
// or sharded engine, with WAL durability, startup recovery, periodic
// checkpoints, /metrics + pprof on the same listener, and a graceful
// SIGTERM drain (stop accepting, drain in flight, final checkpoint,
// close the log, exit 0).
//
// The same binary doubles as the closed-loop load generator
// (-loadgen): N connections × K in-flight × B-frame bursts against a
// running server, with a state_match verdict folding the observed
// (age, payload) pairs against GET /state.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/obs"
	"github.com/orderedstm/ostm/stm/repl"
	"github.com/orderedstm/ostm/stm/serve"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

// parseSyncPolicy maps the -sync flag to wal.Options: "none", an
// integer N (fsync every N commits), a duration (fsync at least that
// often while dirty), or "adaptive" (groups sized to the storage's
// observed fsync latency).
func parseSyncPolicy(s string) (wal.Options, error) {
	if s == "" || s == "none" {
		return wal.Options{}, nil
	}
	if s == "adaptive" {
		return wal.Options{Adaptive: true}, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n <= 0 {
			return wal.Options{}, fmt.Errorf("ordersvc: -sync %d must be positive", n)
		}
		return wal.Options{SyncEveryN: n}, nil
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d <= 0 {
			return wal.Options{}, fmt.Errorf("ordersvc: -sync %v must be positive", d)
		}
		return wal.Options{SyncInterval: d}, nil
	}
	return wal.Options{}, fmt.Errorf("ordersvc: -sync must be none, adaptive, an integer, or a duration (got %q)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ordersvc:", err)
	os.Exit(1)
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7171", "listen address (server) / target address (-loadgen)")
		workers = flag.Int("workers", 4, "engine worker goroutines (per shard when -shards > 0)")
		shardsF = flag.Int("shards", 0, "partitions for sharded execution (0 = unsharded stm.Pipeline)")
		pool    = flag.Int("pool", 1<<13, "account pool size (server and loadgen must agree)")
		capF    = flag.Int("capacity", 0, "pipeline capacity (0 = default)")
		walDir  = flag.String("wal", "", "write-ahead log directory (durable mode; recovered at startup when non-empty)")
		syncF   = flag.String("sync", "none", "WAL sync policy: none | N | duration | adaptive")
		syncDep = flag.Int("sync-depth", 0, "max in-flight fsyncs (0 = default)")
		waitDur = flag.Bool("waitdurable", false, "resolve responses only once durable (requires -wal)")
		ckptEv  = flag.Uint64("checkpoint-every", 0, "checkpoint every N appended ages (requires -wal)")
		obsOn   = flag.Bool("obs", true, "attach the observability registry and mount /metrics + pprof on the listener")
		jsonF   = flag.Bool("json", false, "emit machine-readable JSON lines")
		follow  = flag.String("follow", "", "run as a hot-standby follower of this leader address (requires -wal; SIGHUP promotes)")

		loadgen  = flag.Bool("loadgen", false, "run as load generator against -addr instead of serving")
		conns    = flag.Int("conns", 4, "loadgen: concurrent connections")
		inflight = flag.Int("inflight", 16, "loadgen: in-flight requests per connection")
		batchF   = flag.Int("batch", 1, "loadgen: frames per submission burst (>1 exercises server-side ingress batching)")
		txns     = flag.Int("txns", 100000, "loadgen: total transactions across all connections")
		follVrfy = flag.String("follower", "", "loadgen: follower address to verify after the run (catch-up, lag, state match)")
	)
	var alg stm.Algorithm
	flag.TextVar(&alg, "alg", stm.OUL, "algorithm (paper-style name, e.g. OUL, OWB, Ordered-TL2)")
	flag.Parse()

	if *loadgen {
		runLoadgen(*addr, *conns, *inflight, *batchF, *txns, *pool, *jsonF, *follVrfy)
		return
	}
	runServer(serverConfig{
		addr: *addr, alg: alg, workers: *workers, shards: *shardsF,
		pool: *pool, capacity: *capF, walDir: *walDir, sync: *syncF,
		syncDepth: *syncDep, waitDurable: *waitDur, ckptEvery: *ckptEv,
		obsOn: *obsOn, json: *jsonF, follow: *follow,
	})
}

type serverConfig struct {
	addr        string
	alg         stm.Algorithm
	workers     int
	shards      int
	pool        int
	capacity    int
	walDir      string
	sync        string
	syncDepth   int
	waitDurable bool
	ckptEvery   uint64
	obsOn       bool
	json        bool
	follow      string
}

// event emits one structured log line.
func event(jsonMode bool, kind string, kv map[string]any) {
	if jsonMode {
		m := map[string]any{"event": kind}
		for k, v := range kv {
			m[k] = v
		}
		b, _ := json.Marshal(m)
		fmt.Println(string(b))
		return
	}
	fmt.Printf("ordersvc: %s", kind)
	for k, v := range kv {
		fmt.Printf(" %s=%v", k, v)
	}
	fmt.Println()
}

func runServer(cfg serverConfig) {
	accounts := stm.NewVars(cfg.pool)
	for i := range accounts {
		accounts[i].Store(1000)
	}
	snapshotter := stm.SnapshotterFuncs{
		SnapshotFunc: func() ([]byte, error) { return stm.SnapshotVars(accounts), nil },
		RestoreFunc:  func(data []byte) error { return stm.RestoreVars(accounts, data) },
	}

	var reg *obs.Registry
	if cfg.obsOn {
		reg = obs.NewRegistry()
	}

	if cfg.follow != "" {
		runFollower(cfg, accounts, snapshotter, reg)
		return
	}

	// Durable startup: recover whatever the directory holds (empty is
	// a fresh start), restore the newest checkpoint, and replay the
	// surviving suffix through the same SubmitEncoded path live
	// traffic uses before the listener opens.
	var (
		w          *wal.Writer
		rec        *wal.Recovery
		localFirst []uint64
		firstAge   uint64
	)
	if cfg.walDir != "" {
		if err := os.MkdirAll(cfg.walDir, 0o755); err != nil {
			fatal(err)
		}
		opts, err := parseSyncPolicy(cfg.sync)
		if err != nil {
			fatal(err)
		}
		opts.MaxInFlightSyncs = cfg.syncDepth
		r, err := wal.Recover(cfg.walDir)
		if err != nil {
			fatal(fmt.Errorf("recover %s: %w", cfg.walDir, err))
		}
		rec = r
		firstAge = rec.First()
		if rec.HasCheckpoint() {
			app := rec.CheckpointState()
			if cfg.shards > 0 {
				ln, a, err := shard.DecodeCheckpoint(app)
				if err != nil {
					fatal(err)
				}
				localFirst, app = ln, a
			}
			if err := stm.RestoreVars(accounts, app); err != nil {
				fatal(fmt.Errorf("%w (restart with the original -pool and -shards)", err))
			}
		}
		w, err = rec.Writer(opts)
		if err != nil {
			fatal(err)
		}
	}

	var (
		p   *stm.Pipeline
		sp  *shard.ShardedPipeline
		err error
	)
	scfg := serve.Config{Obs: reg}
	if cfg.shards == 0 {
		pc := stm.Config{
			Algorithm: cfg.alg,
			Workers:   cfg.workers,
			Capacity:  cfg.capacity,
			Codec:     bankCodec{accounts},
			Obs:       reg,
			FirstAge:  firstAge,
		}
		if w != nil {
			pc.WAL = w
			pc.WaitDurable = cfg.waitDurable
			pc.CheckpointEvery = cfg.ckptEvery
			pc.Snapshotter = snapshotter
		}
		p, err = stm.NewPipeline(pc)
		if err != nil {
			fatal(err)
		}
		scfg.Pipeline = p
		scfg.State = func() ([]byte, error) {
			p.WaitStable()
			return stm.SnapshotVars(accounts), nil
		}
	} else {
		sc := shard.Config{
			Shards:         cfg.shards,
			Pipeline:       stm.Config{Algorithm: cfg.alg, Workers: cfg.workers, Capacity: cfg.capacity, FirstAge: firstAge},
			Obs:            reg,
			LocalFirstAges: localFirst,
		}
		if w != nil {
			sc.WAL = w
			sc.Codec = bankShardCodec{accounts}
			sc.WaitDurable = cfg.waitDurable
			sc.CheckpointEvery = cfg.ckptEvery
			sc.Snapshotter = snapshotter
		} else {
			fatal(fmt.Errorf("-shards without -wal is not servable: the sharded router only accepts encoded submissions through its WAL path"))
		}
		sp, err = shard.New(sc)
		if err != nil {
			fatal(err)
		}
		scfg.Sharded = sp
		scfg.State = func() ([]byte, error) { return stm.SnapshotVars(accounts), nil }
	}

	replayed := 0
	if rec != nil && rec.Count() > 0 {
		start := time.Now()
		err := rec.Replay(func(_ uint64, payload []byte) error {
			var err error
			if sp != nil {
				_, err = sp.SubmitEncoded(payload)
			} else {
				_, err = p.SubmitEncoded(payload)
			}
			return err
		})
		if err != nil {
			fatal(fmt.Errorf("replay: %w", err))
		}
		if sp != nil {
			err = sp.Drain()
		} else {
			err = p.Drain()
		}
		if err != nil {
			fatal(fmt.Errorf("replay drain: %w", err))
		}
		replayed = rec.Count()
		event(cfg.json, "recovered", map[string]any{
			"records":    replayed,
			"first_age":  rec.First(),
			"next_age":   rec.Next(),
			"truncated":  rec.Truncated(),
			"checkpoint": rec.HasCheckpoint(),
			"elapsed_ms": float64(time.Since(start).Microseconds()) / 1e3,
		})
	}

	// A durable leader ships its log: any follower can attach to
	// /repl/stream on the same listener the submit wire uses.
	if w != nil {
		ship := repl.NewShipper(w, repl.ShipperOptions{Obs: reg})
		scfg.Handlers = map[string]http.Handler{
			"/repl/stream": ship.Handler(),
			"/repl/status": statusHandler(nil, ship, w),
		}
	}

	srv, err := serve.NewServer(scfg)
	if err != nil {
		fatal(err)
	}
	if err := srv.Start(cfg.addr); err != nil {
		fatal(err)
	}
	event(cfg.json, "listening", map[string]any{
		"addr":     srv.Addr().String(),
		"alg":      cfg.alg.String(),
		"shards":   cfg.shards,
		"pool":     cfg.pool,
		"wal":      cfg.walDir != "",
		"replayed": replayed,
	})
	serveUntilSignal(cfg, srv, p, sp, w, nil)
}

// serveUntilSignal owns the process's signal protocol. SIGHUP promotes
// a follower in place (ignored otherwise). SIGTERM/SIGINT run the
// drain sequence the wire contract promises — refuse new streams, let
// in-flight streams finish, stop the replication stream if one is
// running, drain the engine, cut a final checkpoint (so the next start
// replays nothing), then close pipeline and log.
func serveUntilSignal(cfg serverConfig, srv *serve.Server, p *stm.Pipeline, sp *shard.ShardedPipeline, w *wal.Writer, f *repl.Follower) {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT, syscall.SIGHUP)
	var s os.Signal
	for s = range sig {
		if s != syscall.SIGHUP {
			break
		}
		if f == nil || f.Promoted() {
			continue
		}
		if err := f.Promote(); err != nil {
			fatal(fmt.Errorf("promote: %w", err))
		}
		event(cfg.json, "promoted", map[string]any{
			"frontier":   f.Frontier(),
			"old_leader": cfg.follow,
		})
	}
	event(cfg.json, "draining", map[string]any{"signal": s.String()})
	if f != nil {
		if err := f.Close(); err != nil {
			event(cfg.json, "stream_error", map[string]any{"err": err.Error()})
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	var drainErr error
	if sp != nil {
		drainErr = sp.Drain()
	} else {
		drainErr = p.Drain()
	}
	if drainErr != nil {
		fatal(fmt.Errorf("drain: %w", drainErr))
	}
	var ckptAge uint64
	if w != nil {
		var err error
		if sp != nil {
			ckptAge, err = sp.Checkpoint()
		} else {
			ckptAge, err = p.Checkpoint()
		}
		if err != nil {
			fatal(fmt.Errorf("final checkpoint: %w", err))
		}
	}
	var closeErr error
	if sp != nil {
		closeErr = sp.Close()
	} else {
		closeErr = p.Close()
	}
	if closeErr != nil {
		fatal(fmt.Errorf("close: %w", closeErr))
	}
	if w != nil {
		if err := w.Close(); err != nil {
			fatal(fmt.Errorf("wal close: %w", err))
		}
	}
	kv := map[string]any{}
	if sp != nil {
		kv["submitted"] = sp.Submitted()
		kv["cross_shard"] = sp.CrossShard()
	} else {
		kv["submitted"] = p.Submitted()
	}
	if w != nil {
		kv["checkpoint_age"] = ckptAge
		kv["fsyncs"] = w.Fsyncs()
		kv["wal_bytes"] = w.Bytes()
	}
	event(cfg.json, "drained", kv)
}
