package main

import (
	"encoding/binary"
	"fmt"

	"github.com/orderedstm/ostm/stm"
)

// The service's payload wire format (service-local; the library only
// sees opaque bytes through its Codec):
//
//	u32 from | u32 to   (little-endian)
//
// The decoded body moves amt = age%5+1 from `from` to `to` when the
// balance covers it — a deterministic function of (age, memory), so
// the WAL's input-replay property holds and a plain sequential fold
// over the recorded (age, payload) pairs is the state oracle. The
// same semantics as the repo's durability test workload, which keeps
// every oracle in the tree interchangeable.

func appendTransfer(dst []byte, from, to uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, from)
	return binary.LittleEndian.AppendUint32(dst, to)
}

func decodeTransfer(data []byte, pool int) (from, to uint32, err error) {
	if len(data) != 8 {
		return 0, 0, fmt.Errorf("ordersvc: bad payload length %d", len(data))
	}
	from = binary.LittleEndian.Uint32(data[0:4])
	to = binary.LittleEndian.Uint32(data[4:8])
	if int(from) >= pool || int(to) >= pool {
		return 0, 0, fmt.Errorf("ordersvc: transfer %d→%d outside pool of %d", from, to, pool)
	}
	return from, to, nil
}

func transferBody(accounts []stm.Var, from, to uint32) stm.Body {
	return func(tx stm.Tx, age int) {
		amt := uint64(age%5) + 1
		bf := tx.Read(&accounts[from])
		if bf >= amt && from != to {
			tx.Write(&accounts[from], bf-amt)
			tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
		}
	}
}

// bankCodec is the unsharded pipeline codec.
type bankCodec struct{ accounts []stm.Var }

func (c bankCodec) Encode(payload any) ([]byte, error) {
	data, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("ordersvc: unexpected payload %T", payload)
	}
	return data, nil
}

func (c bankCodec) Decode(data []byte) (stm.Body, error) {
	from, to, err := decodeTransfer(data, len(c.accounts))
	if err != nil {
		return nil, err
	}
	return transferBody(c.accounts, from, to), nil
}

// bankShardCodec adds the access declaration the router partitions on.
type bankShardCodec struct{ accounts []stm.Var }

func (c bankShardCodec) Encode(payload any) ([]byte, error) {
	return bankCodec{c.accounts}.Encode(payload)
}

func (c bankShardCodec) Decode(data []byte) (stm.Access, stm.Body, error) {
	from, to, err := decodeTransfer(data, len(c.accounts))
	if err != nil {
		return stm.Access{}, nil, err
	}
	return stm.Touches(&c.accounts[from], &c.accounts[to]), transferBody(c.accounts, from, to), nil
}

// applyTransfer folds one recorded payload onto a plain balance
// slice — the sequential oracle shared by the load generator's
// state_match verdict.
func applyTransfer(balances []uint64, age uint64, payload []byte) {
	if len(payload) != 8 {
		return
	}
	from := binary.LittleEndian.Uint32(payload[0:4])
	to := binary.LittleEndian.Uint32(payload[4:8])
	if int(from) >= len(balances) || int(to) >= len(balances) {
		return
	}
	amt := uint64(age%5) + 1
	if balances[from] >= amt && from != to {
		balances[from] -= amt
		balances[to] += amt
	}
}
