package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/orderedstm/ostm/stm/serve"
)

// wireReport is the -loadgen JSON document CI jq-verifies — the
// over-the-wire counterpart of streambench's report: same tx_per_s /
// latency_us / state_match vocabulary, plus the wire-only knobs
// (conns × inflight × batch) and the commit-order violation count.
type wireReport struct {
	Bench           string    `json:"bench"`
	Conns           int       `json:"conns"`
	Inflight        int       `json:"inflight"`
	Batch           int       `json:"batch"`
	Pool            int       `json:"pool"`
	Txns            int       `json:"txns"`
	ElapsedS        float64   `json:"elapsed_s"`
	TxPerS          float64   `json:"tx_per_s"`
	LatencyUS       latencyUS `json:"latency_us"`
	StateMatch      bool      `json:"state_match"`
	OrderViolations int       `json:"order_violations"`
	Errors          int       `json:"errors"`

	// Follower verification (-follower): the replication lag observed
	// the moment the load stopped, how long the follower took to catch
	// up to the last acknowledged age, and whether its state then
	// matched the same fold the leader was verified against.
	Follower           string   `json:"follower,omitempty"`
	ReplicationLagAges *uint64  `json:"replication_lag_ages,omitempty"`
	CatchupMS          *float64 `json:"catchup_ms,omitempty"`
	FollowerStateMatch *bool    `json:"follower_state_match,omitempty"`
}

type latencyUS struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// record is one acknowledged transaction: the age the server assigned
// and the payload we sent. The fold of all records in age order onto
// the pre-run state snapshot is the state_match oracle — valid
// because the transaction semantics are a pure function of
// (age, payload, memory) and this loadgen is the only writer.
type record struct {
	age     uint64
	payload []byte
}

func fetchState(addr string) ([]byte, error) {
	tr := &http.Transport{}
	tr.Protocols = new(http.Protocols)
	tr.Protocols.SetUnencryptedHTTP2(true)
	defer tr.CloseIdleConnections()
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/state", nil)
	if err != nil {
		return nil, err
	}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /state: %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func decodeBalances(state []byte) []uint64 {
	out := make([]uint64, len(state)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(state[i*8:])
	}
	return out
}

func balancesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fetchReplStatus polls GET /repl/status on a replication-enabled
// server.
func fetchReplStatus(addr string) (replStatus, error) {
	tr := &http.Transport{}
	tr.Protocols = new(http.Protocols)
	tr.Protocols.SetUnencryptedHTTP2(true)
	defer tr.CloseIdleConnections()
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/repl/status", nil)
	if err != nil {
		return replStatus{}, err
	}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		return replStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return replStatus{}, fmt.Errorf("GET /repl/status: %s", resp.Status)
	}
	var st replStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return replStatus{}, err
	}
	return st, nil
}

// verifyFollower measures and verifies a hot standby right after the
// load stopped: the lag at that instant, the time to catch up to the
// last acknowledged age, and a state comparison against the leader's
// fold. The follower may keep applying while we compare (its /state
// races its apply loop under shards), so the comparison polls until
// match or deadline.
func verifyFollower(addr string, nextAge uint64, want []uint64) (lag uint64, catchup float64, match bool, err error) {
	st, err := fetchReplStatus(addr)
	if err != nil {
		return 0, 0, false, err
	}
	if st.Frontier < nextAge {
		lag = nextAge - st.Frontier
	}
	t0 := time.Now()
	deadline := t0.Add(60 * time.Second)
	for st.Frontier < nextAge {
		if time.Now().After(deadline) {
			return lag, 0, false, fmt.Errorf("follower stuck at frontier %d, want %d", st.Frontier, nextAge)
		}
		time.Sleep(5 * time.Millisecond)
		if st, err = fetchReplStatus(addr); err != nil {
			return lag, 0, false, err
		}
	}
	catchup = float64(time.Since(t0).Microseconds()) / 1e3
	for {
		s1, err := fetchState(addr)
		if err != nil {
			return lag, catchup, false, err
		}
		if balancesEqual(want, decodeBalances(s1)) {
			return lag, catchup, true, nil
		}
		if time.Now().After(deadline) {
			return lag, catchup, false, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func runLoadgen(addr string, conns, inflight, batch, txns, pool int, emitJSON bool, follower string) {
	if conns <= 0 || inflight <= 0 || batch <= 0 || txns <= 0 {
		fatal(fmt.Errorf("-conns, -inflight, -batch and -txns must be positive"))
	}
	if batch > inflight {
		inflight = batch
	}

	// Pre-run snapshot: the fold base. Starting from the server's own
	// state (not an assumed fresh 1000-per-account image) keeps the
	// verdict valid against a server that recovered history from its
	// WAL before we arrived.
	s0, err := fetchState(addr)
	if err != nil {
		fatal(fmt.Errorf("loadgen: pre-run state: %w", err))
	}
	if len(s0) != 8*pool {
		fatal(fmt.Errorf("loadgen: server state is %d accounts, -pool says %d (restart loadgen with the server's pool)", len(s0)/8, pool))
	}
	balances := decodeBalances(s0)

	perConn := txns / conns
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		records    []record
		durs       []time.Duration
		violations int
		errCount   atomic.Int64
	)
	start := time.Now()
	for cn := 0; cn < conns; cn++ {
		n := perConn
		if cn == conns-1 {
			n = txns - perConn*(conns-1) // remainder rides the last connection
		}
		wg.Add(1)
		go func(seed int64, n int) {
			defer wg.Done()
			c, err := serve.Dial(context.Background(), addr)
			if err != nil {
				errCount.Add(int64(n))
				fmt.Fprintln(os.Stderr, "ordersvc: loadgen dial:", err)
				return
			}
			rng := rand.New(rand.NewSource(seed))
			recs := make([]record, 0, n)
			ds := make([]time.Duration, 0, n)
			// Closed loop: at most `inflight` unacknowledged calls per
			// connection; submissions go out in bursts of `batch`
			// frames so the server's ingress batcher sees them
			// together.
			type pend struct {
				call *serve.Call
				pl   []byte
				t0   time.Time
			}
			window := make([]pend, 0, inflight)
			reap := func(min int) {
				for len(window) > min {
					p := window[0]
					window = window[1:]
					age, err := p.call.Wait()
					if err != nil {
						errCount.Add(1)
						continue
					}
					recs = append(recs, record{age, p.pl})
					ds = append(ds, time.Since(p.t0))
				}
			}
			payloads := make([][]byte, 0, batch)
			for sent := 0; sent < n; {
				payloads = payloads[:0]
				for b := 0; b < batch && sent+len(payloads) < n; b++ {
					from := uint32(rng.Intn(pool))
					to := uint32(rng.Intn(pool))
					payloads = append(payloads, appendTransfer(make([]byte, 0, 8), from, to))
				}
				t0 := time.Now()
				calls, err := c.SubmitMany(payloads)
				if err != nil {
					errCount.Add(int64(n - sent))
					break
				}
				for i, call := range calls {
					window = append(window, pend{call, payloads[i], t0})
				}
				sent += len(payloads)
				reap(inflight - batch)
			}
			reap(0)
			v := c.OrderViolations()
			c.Close()
			mu.Lock()
			records = append(records, recs...)
			durs = append(durs, ds...)
			violations += v
			mu.Unlock()
		}(int64(cn)*7919+1, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// state_match: fold every acknowledged (age, payload) onto the
	// pre-run snapshot in age order, then compare against the server's
	// post-run state.
	sort.Slice(records, func(i, j int) bool { return records[i].age < records[j].age })
	for i := 1; i < len(records); i++ {
		if records[i].age == records[i-1].age {
			fatal(fmt.Errorf("loadgen: duplicate age %d across connections", records[i].age))
		}
	}
	for _, r := range records {
		applyTransfer(balances, r.age, r.payload)
	}
	s1, err := fetchState(addr)
	if err != nil {
		fatal(fmt.Errorf("loadgen: post-run state: %w", err))
	}
	match := balancesEqual(balances, decodeBalances(s1))

	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) float64 {
		if len(durs) == 0 {
			return 0
		}
		i := int(p * float64(len(durs)-1))
		return float64(durs[i].Microseconds())
	}
	rep := wireReport{
		Bench:    "ordersvc-wire",
		Conns:    conns,
		Inflight: inflight,
		Batch:    batch,
		Pool:     pool,
		Txns:     len(records),
		ElapsedS: elapsed.Seconds(),
		TxPerS:   float64(len(records)) / elapsed.Seconds(),
		LatencyUS: latencyUS{
			P50: pct(0.50), P95: pct(0.95), P99: pct(0.99), Max: pct(1.0),
		},
		StateMatch:      match,
		OrderViolations: violations,
		Errors:          int(errCount.Load()),
	}
	fmatch := true
	if follower != "" && len(records) > 0 {
		nextAge := records[len(records)-1].age + 1
		lag, catchup, fm, err := verifyFollower(follower, nextAge, balances)
		if err != nil {
			fatal(fmt.Errorf("loadgen: follower %s: %w", follower, err))
		}
		fmatch = fm
		rep.Follower = follower
		rep.ReplicationLagAges = &lag
		rep.CatchupMS = &catchup
		rep.FollowerStateMatch = &fm
	}
	if emitJSON {
		b, _ := json.Marshal(rep)
		fmt.Println(string(b))
	} else {
		fmt.Printf("ordersvc-wire: conns=%d inflight=%d batch=%d txns=%d %.0f tx/s p50=%.0fµs p99=%.0fµs state_match=%v order_violations=%d errors=%d\n",
			conns, inflight, batch, rep.Txns, rep.TxPerS, rep.LatencyUS.P50, rep.LatencyUS.P99, match, violations, rep.Errors)
	}
	if !match || !fmatch || violations > 0 {
		os.Exit(1)
	}
}
