package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/obs"
	"github.com/orderedstm/ostm/stm/repl"
	"github.com/orderedstm/ostm/stm/serve"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

// replStatus is the GET /repl/status document, served by leaders and
// followers alike (the loadgen's -follower verification and the CI
// smoke job poll it).
type replStatus struct {
	Role           string `json:"role"`
	Promoted       bool   `json:"promoted,omitempty"`
	Frontier       uint64 `json:"frontier"` // next age: durable (leader) or apply (follower)
	LeaderFrontier uint64 `json:"leader_frontier,omitempty"`
	LagAges        uint64 `json:"lag_ages"`
	LagBytes       uint64 `json:"lag_bytes"`
	LagBytesOK     bool   `json:"lag_bytes_ok"`
	Reconnects     uint64 `json:"reconnects,omitempty"`
	Followers      int    `json:"followers"`
}

// statusHandler serves the replication status document. f is nil on a
// process that started as a leader.
func statusHandler(f *repl.Follower, ship *repl.Shipper, w *wal.Writer) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		st := replStatus{Role: "leader", Frontier: w.Durable(), Followers: ship.Followers()}
		if f != nil {
			st.Promoted = f.Promoted()
			if !st.Promoted {
				st.Role = "follower"
				st.Frontier = f.Frontier()
				st.LeaderFrontier = f.LeaderFrontier()
				st.LagAges = f.LagAges()
				st.LagBytes, st.LagBytesOK = f.LagBytes()
				st.Reconnects = f.Reconnects()
			}
		}
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(st)
	})
}

// runFollower starts the process as a hot standby of cfg.follow: the
// engine boots by recovery (possibly seeded from the leader's shipped
// checkpoint), the leader's stream is applied continuously, the
// listener serves reads and replication but refuses writes with
// NotLeader, and SIGHUP promotes in place.
func runFollower(cfg serverConfig, accounts []stm.Var, snapshotter stm.Snapshotter, reg *obs.Registry) {
	if cfg.walDir == "" {
		fatal(fmt.Errorf("-follow requires -wal: a follower IS its local log"))
	}
	if err := os.MkdirAll(cfg.walDir, 0o755); err != nil {
		fatal(err)
	}
	opts, err := parseSyncPolicy(cfg.sync)
	if err != nil {
		fatal(err)
	}
	opts.MaxInFlightSyncs = cfg.syncDepth

	var (
		p  *stm.Pipeline
		sp *shard.ShardedPipeline
		w  *wal.Writer
	)
	f, err := repl.StartFollower(repl.FollowerConfig{
		Dir:    cfg.walDir,
		Leader: cfg.follow,
		WAL:    opts,
		Obs:    reg,
		Boot: func(b repl.Boot) (repl.Runtime, error) {
			w = b.Writer
			app := b.Snapshot
			var localFirst []uint64
			if app != nil && cfg.shards > 0 {
				var derr error
				if localFirst, app, derr = shard.DecodeCheckpoint(app); derr != nil {
					return repl.Runtime{}, derr
				}
			}
			if app != nil {
				if err := stm.RestoreVars(accounts, app); err != nil {
					return repl.Runtime{}, fmt.Errorf("%w (restart with the leader's -pool and -shards)", err)
				}
			}
			if cfg.shards == 0 {
				var perr error
				p, perr = stm.NewPipeline(stm.Config{
					Algorithm:       cfg.alg,
					Workers:         cfg.workers,
					Capacity:        cfg.capacity,
					Codec:           bankCodec{accounts},
					Obs:             reg,
					FirstAge:        b.FirstAge,
					WAL:             b.Writer,
					WaitDurable:     cfg.waitDurable,
					CheckpointEvery: cfg.ckptEvery,
					Snapshotter:     snapshotter,
				})
				if perr != nil {
					return repl.Runtime{}, perr
				}
			} else {
				var serr error
				sp, serr = shard.New(shard.Config{
					Shards:          cfg.shards,
					Pipeline:        stm.Config{Algorithm: cfg.alg, Workers: cfg.workers, Capacity: cfg.capacity, FirstAge: b.FirstAge},
					Obs:             reg,
					LocalFirstAges:  localFirst,
					WAL:             b.Writer,
					Codec:           bankShardCodec{accounts},
					WaitDurable:     cfg.waitDurable,
					CheckpointEvery: cfg.ckptEvery,
					Snapshotter:     snapshotter,
				})
				if serr != nil {
					return repl.Runtime{}, serr
				}
			}
			submit := func(pl []byte) error {
				var err error
				if sp != nil {
					_, err = sp.SubmitEncoded(pl)
				} else {
					_, err = p.SubmitEncoded(pl)
				}
				return err
			}
			drain := func() error {
				if sp != nil {
					return sp.Drain()
				}
				return p.Drain()
			}
			start := time.Now()
			for _, r := range b.Records {
				if err := submit(r.Payload); err != nil {
					return repl.Runtime{}, fmt.Errorf("replay: %w", err)
				}
			}
			if err := drain(); err != nil {
				return repl.Runtime{}, fmt.Errorf("replay drain: %w", err)
			}
			event(cfg.json, "recovered", map[string]any{
				"records":      len(b.Records),
				"first_age":    b.FirstAge,
				"next_age":     b.Writer.Next(),
				"from_leader":  b.FromLeader,
				"snapshot_age": b.SnapshotAge,
				"elapsed_ms":   float64(time.Since(start).Microseconds()) / 1e3,
			})
			return repl.Runtime{Submit: submit, Drain: drain}, nil
		},
	})
	if err != nil {
		fatal(fmt.Errorf("follow %s: %w", cfg.follow, err))
	}

	// The follower serves its own shipper too: a promoted leader keeps
	// shipping to the next standby with no restart, and chained
	// replication (follower of a follower) falls out for free.
	ship := repl.NewShipper(w, repl.ShipperOptions{Obs: reg})
	scfg := serve.Config{
		Obs:  reg,
		Gate: f.Gate(),
		Handlers: map[string]http.Handler{
			"/repl/stream": ship.Handler(),
			"/repl/status": statusHandler(f, ship, w),
		},
	}
	if sp != nil {
		scfg.Sharded = sp
		scfg.State = func() ([]byte, error) { return stm.SnapshotVars(accounts), nil }
	} else {
		scfg.Pipeline = p
		scfg.State = func() ([]byte, error) {
			p.WaitStable()
			return stm.SnapshotVars(accounts), nil
		}
	}
	srv, err := serve.NewServer(scfg)
	if err != nil {
		fatal(err)
	}
	if err := srv.Start(cfg.addr); err != nil {
		fatal(err)
	}
	event(cfg.json, "listening", map[string]any{
		"addr":   srv.Addr().String(),
		"role":   "follower",
		"leader": cfg.follow,
		"alg":    cfg.alg.String(),
		"shards": cfg.shards,
		"pool":   cfg.pool,
	})
	serveUntilSignal(cfg, srv, p, sp, w, f)
}
