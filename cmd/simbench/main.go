// Command simbench regenerates the thread-scaling *shape* of the
// paper's micro-benchmark figures in virtual time on the simulated
// P-core machine (internal/simcpu). On multi-core hosts microbench
// measures the same series in wall-clock time; on the single-core
// evaluation host of this reproduction, simbench is the substitute
// for the scaling dimension (DESIGN.md §1).
//
// Examples:
//
//	simbench -bench RWN -length Short -cores 1,2,4,6,8,12,16,20
//	simbench -bench Disjoint -length Long
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/orderedstm/ostm/internal/harness"
	"github.com/orderedstm/ostm/internal/micro"
	"github.com/orderedstm/ostm/internal/simcpu"
)

func main() {
	var (
		benchF  = flag.String("bench", "", "bench (Disjoint, RNW1, RWN, MCAS; default all)")
		lengthF = flag.String("length", "", "length class (Short, Long, Heavy; default all)")
		coresF  = flag.String("cores", "1,2,4,6,8,12,16,20", "comma-separated simulated core counts")
		txns    = flag.Int("txns", 20000, "transactions per simulation")
		pool    = flag.Int("pool", 1<<16, "address-pool size")
		seed    = flag.Uint64("seed", 7, "trace seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	benches := micro.Benches()
	if *benchF != "" {
		b, err := micro.ParseBench(*benchF)
		if err != nil {
			fatal(err)
		}
		benches = []micro.Bench{b}
	}
	lengths := micro.Lengths()
	if *lengthF != "" {
		l, err := micro.ParseLength(*lengthF)
		if err != nil {
			fatal(err)
		}
		lengths = []micro.Length{l}
	}
	cores, err := parseInts(*coresF)
	if err != nil {
		fatal(err)
	}
	algos := simcpu.Algos()
	for _, b := range benches {
		for _, l := range lengths {
			traces := simcpu.GenTraces(b, l, *txns, *pool, *seed)
			seq := simcpu.Simulate(simcpu.Sequential, traces, 1, simcpu.DefaultParams())
			thr := harness.NewTable(
				fmt.Sprintf("%v-%v — simulated throughput (commits / k cycles) vs cores [sequential: %.2f]",
					b, l, seq.ThroughputPerKCycle()),
				append([]string{"cores"}, names(algos)...)...)
			ab := harness.NewTable(
				fmt.Sprintf("%v-%v — simulated aborts %% vs cores", b, l),
				append([]string{"cores"}, names(algos)...)...)
			for _, c := range cores {
				trow := []string{harness.I(c)}
				arow := []string{harness.I(c)}
				for _, a := range algos {
					res := simcpu.Simulate(a, traces, c, simcpu.DefaultParams())
					trow = append(trow, fmt.Sprintf("%.2f", res.ThroughputPerKCycle()))
					arow = append(arow, fmt.Sprintf("%.1f", 100*res.AbortRatio()))
				}
				thr.Add(trow...)
				ab.Add(arow...)
			}
			if *csv {
				thr.WriteCSV(os.Stdout)
				ab.WriteCSV(os.Stdout)
			} else {
				thr.Render(os.Stdout)
				fmt.Println()
				if b != micro.Disjoint {
					ab.Render(os.Stdout)
					fmt.Println()
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad core count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func names(as []simcpu.Algo) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return out
}
