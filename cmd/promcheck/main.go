// Command promcheck validates a Prometheus text-format exposition read
// from stdin: HELP/TYPE syntax, metric and label naming, histogram
// bucket ordering and cumulative-count invariants. CI pipes a scraped
// /metrics page through it so a malformed exposition fails the build
// instead of silently breaking whoever scrapes the real thing.
//
//	curl -s localhost:9464/metrics | promcheck
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/orderedstm/ostm/stm/obs"
)

func main() {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: read stdin:", err)
		os.Exit(1)
	}
	if len(data) == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: empty input")
		os.Exit(1)
	}
	if err := obs.ValidateExposition(data); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck:", err)
		os.Exit(1)
	}
	fmt.Println("promcheck: OK")
}
