// Command appbench regenerates the paper's PARSEC and SPEC2000 figure
// (Figure 7a–d): execution time of blackscholes, swaptions,
// fluidanimate and equake across algorithms and thread counts, with
// post-run verification.
//
// Example:
//
//	appbench -app swaptions -threads 1,2,4,8,16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/harness"
	"github.com/orderedstm/ostm/internal/parsec/blackscholes"
	"github.com/orderedstm/ostm/internal/parsec/fluidanimate"
	"github.com/orderedstm/ostm/internal/parsec/swaptions"
	"github.com/orderedstm/ostm/internal/spec/equake"
	"github.com/orderedstm/ostm/stm"
)

type app interface {
	Run(r apps.Runner) (stm.Result, error)
	Verify() error
}

var builders = map[string]func(yield bool) app{
	"blackscholes": func(y bool) app { return blackscholes.New(blackscholes.Config{Yield: y}) },
	"swaptions":    func(y bool) app { return swaptions.New(swaptions.Config{Yield: y}) },
	"fluidanimate": func(y bool) app { return fluidanimate.New(fluidanimate.Config{Yield: y}) },
	"equake":       func(y bool) app { return equake.New(equake.Config{Yield: y}) },
}

var figure7Order = []string{"blackscholes", "swaptions", "fluidanimate", "equake"}

func main() {
	var (
		appF    = flag.String("app", "all", "application ("+strings.Join(figure7Order, ", ")+" or all)")
		threads = flag.String("threads", "1,2,4,8", "comma-separated worker counts")
		algosF  = flag.String("algos", "", "comma-separated algorithms (default: ordered set + Sequential)")
		yield   = flag.Bool("yield", false, "insert scheduler yields (single-core hosts)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	names := figure7Order
	if *appF != "all" {
		if _, ok := builders[*appF]; !ok {
			fatal(fmt.Errorf("unknown app %q", *appF))
		}
		names = []string{*appF}
	}
	workerList, err := parseInts(*threads)
	if err != nil {
		fatal(err)
	}
	algos := append(stm.OrderedAlgorithms(), stm.Sequential)
	if *algosF != "" {
		algos = nil
		for _, part := range strings.Split(*algosF, ",") {
			a, err := stm.ParseAlgorithm(strings.TrimSpace(part))
			if err != nil {
				fatal(err)
			}
			algos = append(algos, a)
		}
	}
	for _, name := range names {
		tab := harness.NewTable(
			fmt.Sprintf("Figure 7 — %s execution time (seconds) vs threads", name),
			append([]string{"threads"}, algoNames(algos)...)...)
		for _, wk := range workerList {
			row := []string{harness.I(wk)}
			for _, alg := range algos {
				a := builders[name](*yield)
				res, err := a.Run(apps.Runner{Alg: alg, Workers: wk})
				if err != nil {
					fatal(fmt.Errorf("%s under %v: %w", name, alg, err))
				}
				if err := a.Verify(); err != nil {
					fatal(fmt.Errorf("%s under %v failed verification: %w", name, alg, err))
				}
				row = append(row, harness.Seconds(res))
			}
			tab.Add(row...)
		}
		if *csv {
			tab.WriteCSV(os.Stdout)
		} else {
			tab.Render(os.Stdout)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "appbench:", err)
	os.Exit(1)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func algoNames(as []stm.Algorithm) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return out
}
