// Command stampbench regenerates the paper's STAMP figure (Figure
// 6a–h): execution time of kmeans (low/high contention), genome,
// ssca2, vacation (low/high), labyrinth and intruder across
// algorithms and thread counts, with post-run verification of each
// application's invariants.
//
// Examples:
//
//	stampbench -app kmeans-high -threads 1,2,4,8
//	stampbench -app all -algos OUL,OWB,Sequential
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/harness"
	"github.com/orderedstm/ostm/internal/stamp/genome"
	"github.com/orderedstm/ostm/internal/stamp/intruder"
	"github.com/orderedstm/ostm/internal/stamp/kmeans"
	"github.com/orderedstm/ostm/internal/stamp/labyrinth"
	"github.com/orderedstm/ostm/internal/stamp/ssca2"
	"github.com/orderedstm/ostm/internal/stamp/vacation"
	"github.com/orderedstm/ostm/stm"
)

// app is the uniform application driver: construct fresh state, run,
// verify.
type app interface {
	Run(r apps.Runner) (stm.Result, error)
	Verify() error
}

// builders construct a fresh instance per run (fresh shared state).
var builders = map[string]func(yield bool) app{
	"kmeans-low": func(y bool) app {
		cfg := kmeans.LowContention()
		cfg.Yield = y
		return kmeans.New(cfg)
	},
	"kmeans-high": func(y bool) app {
		cfg := kmeans.HighContention()
		cfg.Yield = y
		return kmeans.New(cfg)
	},
	"genome": func(y bool) app { return genome.New(genome.Config{Yield: y}) },
	"ssca2":  func(y bool) app { return ssca2.New(ssca2.Config{Yield: y}) },
	"vacation-low": func(y bool) app {
		cfg := vacation.LowContention()
		cfg.Yield = y
		return vacation.New(cfg)
	},
	"vacation-high": func(y bool) app {
		cfg := vacation.HighContention()
		cfg.Yield = y
		return vacation.New(cfg)
	},
	"labyrinth": func(y bool) app { return labyrinth.New(labyrinth.Config{Yield: y}) },
	"intruder":  func(y bool) app { return intruder.New(intruder.Config{Yield: y}) },
}

// figure6Order is the presentation order of Figure 6.
var figure6Order = []string{
	"kmeans-low", "kmeans-high", "genome", "ssca2",
	"vacation-low", "vacation-high", "labyrinth", "intruder",
}

func main() {
	var (
		appF    = flag.String("app", "all", "application ("+strings.Join(figure6Order, ", ")+" or all)")
		threads = flag.String("threads", "1,2,4,8", "comma-separated worker counts")
		algosF  = flag.String("algos", "", "comma-separated algorithms (default: ordered set + Sequential)")
		yield   = flag.Bool("yield", false, "insert scheduler yields (single-core hosts)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	names := figure6Order
	if *appF != "all" {
		if _, ok := builders[*appF]; !ok {
			fatal(fmt.Errorf("unknown app %q", *appF))
		}
		names = []string{*appF}
	}
	workerList, err := parseInts(*threads)
	if err != nil {
		fatal(err)
	}
	algos := append(stm.OrderedAlgorithms(), stm.Sequential)
	if *algosF != "" {
		algos = nil
		for _, part := range strings.Split(*algosF, ",") {
			a, err := stm.ParseAlgorithm(strings.TrimSpace(part))
			if err != nil {
				fatal(err)
			}
			algos = append(algos, a)
		}
	}
	for _, name := range names {
		tab := harness.NewTable(
			fmt.Sprintf("Figure 6 — %s execution time (seconds) vs threads", name),
			append([]string{"threads"}, algoNames(algos)...)...)
		for _, wk := range workerList {
			row := []string{harness.I(wk)}
			for _, alg := range algos {
				a := builders[name](*yield)
				res, err := a.Run(apps.Runner{Alg: alg, Workers: wk})
				if err != nil {
					fatal(fmt.Errorf("%s under %v: %w", name, alg, err))
				}
				if err := a.Verify(); err != nil {
					fatal(fmt.Errorf("%s under %v failed verification: %w", name, alg, err))
				}
				row = append(row, harness.Seconds(res))
			}
			tab.Add(row...)
		}
		if *csv {
			tab.WriteCSV(os.Stdout)
		} else {
			tab.Render(os.Stdout)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stampbench:", err)
	os.Exit(1)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func algoNames(as []stm.Algorithm) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return out
}
