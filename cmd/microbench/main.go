// Command microbench regenerates the paper's micro-benchmark figures
// (Figures 2–5) on the real engines: throughput and abort series for
// DisjointBench, ReadNWrite1, ReadWriteN and MCASBench across
// algorithms and thread counts, plus the abort-cause breakdown.
//
// Examples:
//
//	microbench -figure 2 -txns 100000
//	microbench -figure 3 -bench Disjoint -threads 1,2,4,8
//	microbench -figure 5
//
// Note: on a single-hardware-thread host the wall-clock series cannot
// show parallel speedup; use simbench for the thread-scaling shape in
// virtual time (see DESIGN.md §1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/orderedstm/ostm/internal/harness"
	"github.com/orderedstm/ostm/internal/micro"
	"github.com/orderedstm/ostm/stm"
)

func main() {
	var (
		figure  = flag.Int("figure", 2, "paper figure to regenerate (2, 3, 4 or 5)")
		benchF  = flag.String("bench", "", "restrict to one bench (Disjoint, RNW1, RWN, MCAS)")
		lengthF = flag.String("length", "", "restrict to one length class (Short, Long, Heavy)")
		threads = flag.String("threads", "1,2,4,8", "comma-separated worker counts")
		txns    = flag.Int("txns", 50000, "transactions per run (the paper uses 500000)")
		pool    = flag.Int("pool", 1<<18, "shared word-pool size")
		algosF  = flag.String("algos", "", "comma-separated algorithms (default: figure's set)")
		yield   = flag.Int("yield", 0, "insert a scheduler yield every N accesses (single-core hosts)")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonF   = flag.Bool("json", false, "emit machine-readable JSON (one object per table; overrides -csv)")
	)
	flag.Parse()
	format := formatTable
	if *csv {
		format = formatCSV
	}
	if *jsonF {
		format = formatJSON
	}
	workerList, err := parseInts(*threads)
	if err != nil {
		fatal(err)
	}
	benches, lengths, err := selection(*benchF, *lengthF)
	if err != nil {
		fatal(err)
	}
	switch *figure {
	case 2:
		figure2(benches, lengths, workerList, *txns, *pool, *algosF, *yield, format)
	case 3, 4:
		if *benchF == "" {
			if *figure == 3 {
				benches = []micro.Bench{micro.Disjoint, micro.RNW1}
			} else {
				benches = []micro.Bench{micro.RWN, micro.MCAS}
			}
		}
		figure34(benches, lengths, workerList, *txns, *pool, *algosF, *yield, format)
	case 5:
		figure5(workerList, *txns, *pool, *yield, format)
	default:
		fatal(fmt.Errorf("unknown figure %d", *figure))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "microbench:", err)
	os.Exit(1)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func selection(benchF, lengthF string) ([]micro.Bench, []micro.Length, error) {
	benches := micro.Benches()
	if benchF != "" {
		b, err := micro.ParseBench(benchF)
		if err != nil {
			return nil, nil, err
		}
		benches = []micro.Bench{b}
	}
	lengths := micro.Lengths()
	if lengthF != "" {
		l, err := micro.ParseLength(lengthF)
		if err != nil {
			return nil, nil, err
		}
		lengths = []micro.Length{l}
	}
	return benches, lengths, nil
}

func parseAlgos(s string, def []stm.Algorithm) ([]stm.Algorithm, error) {
	if s == "" {
		return def, nil
	}
	var out []stm.Algorithm
	for _, part := range strings.Split(s, ",") {
		a, err := stm.ParseAlgorithm(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// figure2Algos is the full competitor set of Figure 2 (ordered,
// unordered and sequential).
func figure2Algos() []stm.Algorithm {
	return []stm.Algorithm{
		stm.TL2, stm.OrderedTL2, stm.NOrec, stm.OrderedNOrec,
		stm.UndoLogVis, stm.OrderedUndoLogVis, stm.UndoLogInvis, stm.OrderedUndoLogInvis,
		stm.OUL, stm.OULSteal, stm.OWB, stm.STMLite, stm.Sequential,
	}
}

func runOne(alg stm.Algorithm, workers int, w *micro.Workload) (stm.Result, error) {
	w.Reset()
	return harness.Exec(alg, workers, w.Txns(), w.Body(), nil)
}

// format selects the output encoding shared by every figure.
type format int

const (
	formatTable format = iota
	formatCSV
	formatJSON
)

func emit(t *harness.Table, f format) {
	switch f {
	case formatCSV:
		t.WriteCSV(os.Stdout)
		fmt.Println()
	case formatJSON:
		if err := t.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		t.Render(os.Stdout)
		fmt.Println()
	}
}

// figure2 prints peak throughput (over the thread sweep) for every
// competitor, one table per length class (Figure 2a–c).
func figure2(benches []micro.Bench, lengths []micro.Length, workers []int, txns, pool int, algosF string, yield int, f format) {
	algos, err := parseAlgos(algosF, figure2Algos())
	if err != nil {
		fatal(err)
	}
	for _, l := range lengths {
		tab := harness.NewTable(
			fmt.Sprintf("Figure 2 — peak throughput (Tx/ms), %v transactions", l),
			append([]string{"algorithm"}, benchNames(benches)...)...)
		for _, alg := range algos {
			row := []string{alg.String()}
			for _, b := range benches {
				w := micro.New(micro.Config{Bench: b, Length: l, Txns: txns, PoolSize: pool, YieldEvery: yield})
				best := 0.0
				for _, wk := range workers {
					if alg == stm.Sequential && wk > 1 {
						continue
					}
					res, err := runOne(alg, wk, w)
					if err != nil {
						fatal(err)
					}
					if th := res.Throughput() / 1000; th > best {
						best = th
					}
				}
				row = append(row, fmt.Sprintf("%.1f", best))
			}
			tab.Add(row...)
		}
		emit(tab, f)
	}
}

func benchNames(bs []micro.Bench) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.String()
	}
	return out
}

// figure34 prints throughput-vs-threads and abort%-vs-threads tables
// (Figures 3 and 4).
func figure34(benches []micro.Bench, lengths []micro.Length, workers []int, txns, pool int, algosF string, yield int, f format) {
	ordered := append(stm.OrderedAlgorithms(), stm.Sequential)
	algos, err := parseAlgos(algosF, ordered)
	if err != nil {
		fatal(err)
	}
	for _, b := range benches {
		for _, l := range lengths {
			thr := harness.NewTable(
				fmt.Sprintf("%v-%v — throughput (k Tx/sec) vs threads", b, l),
				append([]string{"threads"}, algoNames(algos)...)...)
			ab := harness.NewTable(
				fmt.Sprintf("%v-%v — aborts %% vs threads", b, l),
				append([]string{"threads"}, algoNames(algos)...)...)
			for _, wk := range workers {
				trow := []string{harness.I(wk)}
				arow := []string{harness.I(wk)}
				for _, alg := range algos {
					w := micro.New(micro.Config{Bench: b, Length: l, Txns: txns, PoolSize: pool, YieldEvery: yield})
					res, err := runOne(alg, wk, w)
					if err != nil {
						fatal(err)
					}
					trow = append(trow, harness.KTxPerSec(res))
					arow = append(arow, harness.AbortPct(res))
				}
				thr.Add(trow...)
				ab.Add(arow...)
			}
			emit(thr, f)
			if b != micro.Disjoint {
				emit(ab, f)
			}
		}
	}
}

func algoNames(as []stm.Algorithm) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return out
}

// figure5 prints the abort-cause breakdown for OWB, OUL and OUL-Steal
// (Figure 5a–c) and total abort percentages (Figure 5d).
func figure5(workers []int, txns, pool int, yield int, f format) {
	if yield == 0 {
		yield = 4 // single-core hosts need interleaving for any aborts
	}
	peak := workers[len(workers)-1]
	cats := []string{"read-after-write", "write-after-write", "cascade", "locked-write", "validation", "other"}
	combos := []struct {
		b micro.Bench
		l micro.Length
	}{
		{micro.RNW1, micro.Short}, {micro.RNW1, micro.Long},
		{micro.RWN, micro.Short}, {micro.RWN, micro.Long},
		{micro.MCAS, micro.Short}, {micro.MCAS, micro.Long},
	}
	totals := harness.NewTable("Figure 5d — aborts % at peak threads",
		"workload", "OWB", "OUL", "OUL-Steal")
	totalRows := map[string][]string{}
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal} {
		tab := harness.NewTable(
			fmt.Sprintf("Figure 5 — abort breakdown, %v at %d threads", alg, peak),
			append([]string{"workload"}, cats...)...)
		for _, c := range combos {
			w := micro.New(micro.Config{Bench: c.b, Length: c.l, Txns: txns, PoolSize: pool, YieldEvery: yield})
			res, err := runOne(alg, peak, w)
			if err != nil {
				fatal(err)
			}
			bd := res.Stats.Breakdown()
			name := fmt.Sprintf("%v-%v", c.b, c.l)
			row := []string{name}
			for _, cat := range cats {
				row = append(row, fmt.Sprintf("%.2f", bd[cat]))
			}
			tab.Add(row...)
			totalRows[name] = append(totalRows[name], harness.AbortPct(res))
		}
		emit(tab, f)
	}
	for _, c := range combos {
		name := fmt.Sprintf("%v-%v", c.b, c.l)
		totals.Add(append([]string{name}, totalRows[name]...)...)
	}
	emit(totals, f)
}
