module github.com/orderedstm/ostm

go 1.24
