// Command repl demonstrates WAL-shipping replication and leader
// hand-off, all in one process: a durable ordered-commit leader
// serves clients over h2c while a Shipper streams its log — closed
// segments and the live tail — to a hot-standby Follower that applies
// every record through its own pipeline into its own local WAL. The
// leader's listener is then torn down mid-flight (the in-process
// equivalent of a SIGKILL on its network face) and the follower is
// promoted: the promoted state must equal the sequential fold of
// exactly the ages the leader acknowledged — no lost committed
// transaction, no phantom the leader never acked — and a client with
// redial enabled chases the NotLeader hand-off to a commit without
// the application noticing.
//
// The point being demonstrated: with a predefined commit order, the
// replication stream IS the state-machine — a follower is a recovery
// replay that never ends, so fail-over is just "stop replaying, start
// accepting" at a log position both sides agree on.
//
//	go run ./examples/repl
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/repl"
	"github.com/orderedstm/ostm/stm/serve"
	"github.com/orderedstm/ostm/stm/wal"
)

const (
	accounts = 32
	balance  = 1_000
	txns     = 2_000
)

// codec decodes the 8-byte (from, to) wire form into the usual
// conditional transfer: amount = age%5+1, applied only when the
// source covers it — age-dependent, so any replay divergence between
// leader and follower shows up in the balances.
type codec struct{ pool []stm.Var }

func (c codec) Encode(payload any) ([]byte, error) { return payload.([]byte), nil }
func (c codec) Decode(data []byte) (stm.Body, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("bad payload length %d", len(data))
	}
	from := binary.LittleEndian.Uint32(data[0:4])
	to := binary.LittleEndian.Uint32(data[4:8])
	if int(from) >= len(c.pool) || int(to) >= len(c.pool) {
		return nil, fmt.Errorf("transfer %d→%d out of range", from, to)
	}
	return func(tx stm.Tx, age int) {
		amt := uint64(age%5) + 1
		b := tx.Read(&c.pool[from])
		if b >= amt && from != to {
			tx.Write(&c.pool[from], b-amt)
			tx.Write(&c.pool[to], tx.Read(&c.pool[to])+amt)
		}
	}, nil
}

func transferPayload(from, to uint32) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], from)
	binary.LittleEndian.PutUint32(b[4:8], to)
	return b[:]
}

func newPool() []stm.Var {
	pool := stm.NewVars(accounts)
	for i := range pool {
		pool[i].Store(balance)
	}
	return pool
}

func waitFor(what string, d time.Duration, cond func() bool) {
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "repl: timed out waiting for", what)
			os.Exit(1)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func main() {
	ldir, err := os.MkdirTemp("", "ostm-repl-leader-*")
	check(err)
	defer os.RemoveAll(ldir)
	fdir, err := os.MkdirTemp("", "ostm-repl-follower-*")
	check(err)
	defer os.RemoveAll(fdir)
	opts := wal.Options{SyncEveryN: 16, SegmentBytes: 16 << 10}

	fmt.Println("phase 1: start a durable leader with the shipper mounted on its listener")
	lpool := newPool()
	lw, err := wal.Create(ldir, 0, opts)
	check(err)
	lp, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     4,
		WAL:         lw,
		Codec:       codec{lpool},
		WaitDurable: true, // acks only after the group commit — only durable ages ever ship
	})
	check(err)
	ship := repl.NewShipper(lw, repl.ShipperOptions{Heartbeat: 25 * time.Millisecond})
	lsrv, err := serve.NewServer(serve.Config{
		Pipeline: lp,
		Handlers: map[string]http.Handler{"/repl/stream": ship.Handler()},
	})
	check(err)
	check(lsrv.Start("127.0.0.1:0"))
	laddr := lsrv.Addr().String()
	fmt.Printf("  leader listening on %s (submit wire + /repl/stream on one listener)\n", laddr)

	fmt.Println("phase 2: start a hot standby — a recovery replay that never ends")
	fpool := newPool()
	var (
		fw *wal.Writer
		fp *stm.Pipeline
	)
	f, err := repl.StartFollower(repl.FollowerConfig{
		Dir:    fdir,
		Leader: laddr,
		WAL:    opts,
		Boot: func(b repl.Boot) (repl.Runtime, error) {
			// Boot is ordinary recovery: restore the snapshot if the
			// stream began with one, build the engine with the local log
			// attached, replay what the disk already holds. From then on
			// every applied record commits AND appends locally, so the
			// follower's log is always a durable prefix of the leader's.
			fw = b.Writer
			if b.Snapshot != nil {
				if err := stm.RestoreVars(fpool, b.Snapshot); err != nil {
					return repl.Runtime{}, err
				}
			}
			var err error
			fp, err = stm.NewPipeline(stm.Config{
				Algorithm:   stm.OUL,
				Workers:     4,
				FirstAge:    b.FirstAge,
				WAL:         b.Writer,
				Codec:       codec{fpool},
				WaitDurable: true,
			})
			if err != nil {
				return repl.Runtime{}, err
			}
			for _, r := range b.Records {
				if _, err := fp.SubmitEncoded(r.Payload); err != nil {
					return repl.Runtime{}, err
				}
			}
			if err := fp.Drain(); err != nil {
				return repl.Runtime{}, err
			}
			return repl.Runtime{
				Submit: func(pl []byte) error { _, err := fp.SubmitEncoded(pl); return err },
				Drain:  func() error { return fp.Drain() },
			}, nil
		},
	})
	check(err)
	fsrv, err := serve.NewServer(serve.Config{
		Pipeline: fp,
		Gate:     f.Gate(), // refuse writes with NotLeader until promoted
	})
	check(err)
	check(fsrv.Start("127.0.0.1:0"))
	faddr := fsrv.Addr().String()
	fmt.Printf("  follower listening on %s, streaming from the leader\n", faddr)

	fmt.Println("phase 3: drive the leader over the wire; the follower replicates live")
	c, err := serve.Dial(context.Background(), laddr)
	check(err)
	byAge := make(map[uint64][]byte, txns)
	calls := make([]*serve.Call, 0, txns)
	payloads := make([][]byte, 0, txns)
	start := time.Now()
	for i := 0; i < txns; i++ {
		pl := transferPayload(uint32((i*7)%accounts), uint32((i*13+1)%accounts))
		call, err := c.Submit(pl)
		check(err)
		calls = append(calls, call)
		payloads = append(payloads, pl)
	}
	for i, call := range calls {
		age, err := call.Wait()
		check(err)
		byAge[age] = payloads[i]
	}
	c.Close()
	fmt.Printf("  %d transfers acknowledged durable in %v\n", txns, time.Since(start))

	waitFor("follower catch-up", 10*time.Second, func() bool { return f.Frontier() == txns })
	rec, bytes := f.Applied()
	fmt.Printf("  follower caught up: frontier %d, applied %d records (%d bytes), age lag %d\n",
		f.Frontier(), rec, bytes, f.LagAges())

	fmt.Println("phase 4: kill the leader's listener — submit streams and the replication stream die together")
	killCtx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = lsrv.Shutdown(killCtx)
	fmt.Printf("  leader gone from the network (follower will retry %s and find nobody)\n", laddr)

	fmt.Println("phase 5: before promotion the follower refuses writes with a typed NotLeader")
	c0, err := serve.Dial(context.Background(), faddr)
	check(err)
	call0, err := c0.Submit(transferPayload(0, 1))
	check(err)
	if _, err := call0.Wait(); !errors.Is(err, serve.ErrNotLeader) {
		fmt.Fprintf(os.Stderr, "repl: pre-promotion submit got %v, want NotLeader\n", err)
		os.Exit(1)
	} else if hint, ok := serve.LeaderHint(err); ok {
		fmt.Printf("  refused with NotLeader, hint names the (dead) leader: %s\n", hint)
	}
	c0.Close()

	fmt.Println("phase 6: a redial-enabled client submits during the hand-off, then the follower promotes")
	c1, err := serve.Dial(context.Background(), faddr, serve.WithNotLeaderRedial())
	check(err)
	extra := transferPayload(2, 3)
	call1, err := c1.Submit(extra)
	check(err)
	waitFor("redial to begin", 5*time.Second, func() bool { return c1.Redials() >= 1 })
	check(f.Promote()) // stop the stream, drain the apply pipeline, open the write gate
	age1, err := call1.Wait()
	check(err)
	byAge[age1] = extra
	fmt.Printf("  promoted at frontier %d; the redialed submit committed at age %d after %d redials\n",
		f.Frontier(), age1, c1.Redials())
	c1.Close()

	fmt.Println("phase 7: verify the promoted state against a sequential fold of the acknowledged history")
	check(fp.Drain())
	if next := fw.Next(); next != age1+1 {
		fmt.Fprintf(os.Stderr, "repl: promoted log next age %d, want %d (phantom durables?)\n", next, age1+1)
		os.Exit(1)
	}
	model := make([]uint64, accounts)
	for i := range model {
		model[i] = balance
	}
	for age := uint64(0); age <= age1; age++ {
		pl, ok := byAge[age]
		if !ok {
			fmt.Fprintf(os.Stderr, "repl: promoted log holds age %d the old leader never acked\n", age)
			os.Exit(1)
		}
		from := binary.LittleEndian.Uint32(pl[0:4])
		to := binary.LittleEndian.Uint32(pl[4:8])
		amt := age%5 + 1
		if model[from] >= amt && from != to {
			model[from] -= amt
			model[to] += amt
		}
	}
	var total uint64
	for i := range fpool {
		if got := fpool[i].Load(); got != model[i] {
			fmt.Fprintf(os.Stderr, "repl: account %d: promoted %d, model %d\n", i, got, model[i])
			os.Exit(1)
		} else {
			total += got
		}
	}
	fmt.Printf("  all %d accounts match the fold of ages 0..%d (total conserved: %d)\n",
		accounts, age1, total)

	fmt.Println("phase 8: the promoted leader keeps serving — a plain client commits the next age")
	c2, err := serve.Dial(context.Background(), faddr)
	check(err)
	call2, err := c2.Submit(transferPayload(4, 5))
	check(err)
	age2, err := call2.Wait()
	check(err)
	fmt.Printf("  committed at age %d — hand-off complete, history contiguous\n", age2)
	c2.Close()

	f.Close()
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	_ = fsrv.Shutdown(shutCtx)
	check(fp.Close())
	check(fw.Close())
	check(lp.Close())
	check(lw.Close())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repl:", err)
		os.Exit(1)
	}
}
