// Replica: the state-machine-replication use case from the paper's
// introduction. A consensus layer (Paxos/Raft) has already assigned
// every command a slot number; each replica must apply commands so
// the result is equivalent to slot order, or replicas diverge. The
// predefined commit order (age = slot) lets a replica apply commands
// speculatively in parallel while guaranteeing the sequential-order
// result — two simulated replicas with different worker counts end up
// byte-identical.
package main

import (
	"fmt"
	"log"

	"github.com/orderedstm/ostm/stm"
)

const (
	keys  = 128
	slots = 20000
)

// command is a consensus-ordered KV operation.
type command struct {
	op  byte // 'P' put, 'I' increment, 'M' move
	k1  int
	k2  int
	arg uint64
}

func genLog() []command {
	cmds := make([]command, slots)
	h := uint64(42)
	next := func() uint64 { h = h*6364136223846793005 + 1442695040888963407; return h >> 16 }
	for i := range cmds {
		switch next() % 3 {
		case 0:
			cmds[i] = command{op: 'P', k1: int(next() % keys), arg: next() % 1000}
		case 1:
			cmds[i] = command{op: 'I', k1: int(next() % keys), arg: next() % 10}
		default:
			cmds[i] = command{op: 'M', k1: int(next() % keys), k2: int(next() % keys)}
		}
	}
	return cmds
}

// replica applies the command log on its own store with its own
// parallelism level.
func replica(name string, alg stm.Algorithm, workers int, cmds []command) []uint64 {
	store := stm.NewVars(keys)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: alg, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ex.Run(len(cmds), func(tx stm.Tx, slot int) {
		c := cmds[slot]
		switch c.op {
		case 'P':
			tx.Write(&store[c.k1], c.arg)
		case 'I':
			tx.Write(&store[c.k1], tx.Read(&store[c.k1])+c.arg)
		case 'M':
			v := tx.Read(&store[c.k1])
			tx.Write(&store[c.k1], 0)
			tx.Write(&store[c.k2], tx.Read(&store[c.k2])+v)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %v workers=%-2d  %8.0f cmds/s  aborts=%d\n",
		name, alg, workers, res.Throughput(), res.Stats.TotalAborts())
	out := make([]uint64, keys)
	for i := range store {
		out[i] = store[i].Load()
	}
	return out
}

func main() {
	cmds := genLog()
	// The "leader" applies sequentially; two replicas apply the same
	// log speculatively with different parallelism and algorithms.
	ref := replica("leader", stm.Sequential, 1, cmds)
	r1 := replica("replica-1", stm.OUL, 4, cmds)
	r2 := replica("replica-2", stm.OWB, 12, cmds)
	for i := range ref {
		if r1[i] != ref[i] || r2[i] != ref[i] {
			log.Fatalf("replica divergence at key %d: %d / %d / %d", i, ref[i], r1[i], r2[i])
		}
	}
	fmt.Println("\nall replicas converged to the leader's exact state")
}
