// Loopparallel: speculative parallelization of a sequential loop with
// loop-carried dependencies — the paper's primary motivation (Lerna,
// HydraVM). The loop below computes a running digest over a table
// while updating a small histogram; iteration i reads what iteration
// i-1 wrote, so naive parallelization is impossible. Transactions +
// a predefined commit order (the loop index) recover the exact
// sequential semantics while extracting speculative parallelism.
package main

import (
	"fmt"
	"log"

	"github.com/orderedstm/ostm/stm"
)

const (
	iterations = 30000
	buckets    = 16
)

func main() {
	data := make([]uint64, iterations)
	for i := range data {
		data[i] = uint64(i)*2654435761 + 12345
	}

	hist := stm.NewVars(buckets)
	digest := stm.NewVar(0) // the loop-carried dependency

	loopBody := func(tx stm.Tx, i int) {
		d := tx.Read(digest)
		x := data[i] ^ d // depends on the previous iteration's digest
		b := &hist[x%buckets]
		tx.Write(b, tx.Read(b)+1)
		tx.Write(digest, d*31+x)
	}

	run := func(alg stm.Algorithm, workers int) (uint64, []uint64) {
		digest.Store(0)
		for i := range hist {
			hist[i].Store(0)
		}
		ex, err := stm.NewExecutor(stm.Config{Algorithm: alg, Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ex.Run(iterations, loopBody)
		if err != nil {
			log.Fatal(err)
		}
		h := make([]uint64, buckets)
		for i := range hist {
			h[i] = hist[i].Load()
		}
		fmt.Printf("%-12s workers=%d  %8.0f iters/s  aborts=%d\n",
			alg, workers, res.Throughput(), res.Stats.TotalAborts())
		return digest.Load(), h
	}

	wantDigest, wantHist := run(stm.Sequential, 1)
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal} {
		gotDigest, gotHist := run(alg, 8)
		if gotDigest != wantDigest {
			log.Fatalf("%v: digest %#x != sequential %#x", alg, gotDigest, wantDigest)
		}
		for b := range gotHist {
			if gotHist[b] != wantHist[b] {
				log.Fatalf("%v: histogram bucket %d differs", alg, b)
			}
		}
	}
	fmt.Printf("\nall parallel runs reproduced the sequential digest %#x exactly\n", wantDigest)
}
