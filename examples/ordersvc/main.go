// Ordersvc client: speak to a running cmd/ordersvc over the wire.
// Where every other example embeds the engine, this one is a pure
// network client — serve.Dial opens one h2c stream, Submit pipelines
// transfers up it, and the responses come back in commit order, each
// carrying the transaction's global age and a typed error that still
// matches the engine's sentinels through errors.Is.
//
// Run a server first, then this client:
//
//	go run ./cmd/ordersvc -addr 127.0.0.1:7171 -shards 2 -wal /tmp/osvc-wal &
//	go run ./examples/ordersvc -addr 127.0.0.1:7171
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/serve"
)

func transfer(from, to uint32) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint32(b[0:4], from)
	binary.LittleEndian.PutUint32(b[4:8], to)
	return b
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7171", "ordersvc address")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := serve.Dial(ctx, *addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Pipelined submission: fire all requests, then collect. Responses
	// resolve in commit order — the ages printed below are strictly
	// increasing because they all share one connection.
	var calls []*serve.Call
	for i := 0; i < 8; i++ {
		call, err := c.Submit(transfer(uint32(i), uint32(i+1)))
		if err != nil {
			log.Fatal(err)
		}
		calls = append(calls, call)
	}
	for i, call := range calls {
		age, err := call.Wait()
		if err != nil {
			log.Fatalf("transfer %d: %v", i, err)
		}
		fmt.Printf("transfer %d committed as global age %d\n", i, age)
	}

	// A burst: SubmitMany writes the frames contiguously so the server
	// coalesces them into one batched submission — the returned ages
	// are consecutive.
	burst := make([][]byte, 4)
	for i := range burst {
		burst[i] = transfer(uint32(10+i), uint32(20+i))
	}
	bcalls, err := c.SubmitMany(burst)
	if err != nil {
		log.Fatal(err)
	}
	for i, call := range bcalls {
		age, err := call.Wait()
		if err != nil {
			log.Fatalf("burst %d: %v", i, err)
		}
		fmt.Printf("burst %d committed as global age %d\n", i, age)
	}

	// A deadline rides the frame header: if the commit takes longer,
	// the response resolves early with an error matching
	// stm.ErrCanceled — the wait was abandoned, not the transaction.
	call, err := c.SubmitTimeout(transfer(1, 2), 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := call.Wait(); errors.Is(err, stm.ErrCanceled) {
		fmt.Println("deadline expired before commit (wait abandoned)")
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("deadline transfer committed as age %d\n", call.Age())
	}

	if v := c.OrderViolations(); v != 0 {
		log.Fatalf("commit-order contract violated %d times", v)
	}
	fmt.Println("all responses arrived in commit order")
}
