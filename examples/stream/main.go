// Stream: the state-machine-replication use case as a *live* pipeline.
// Where examples/replica applies a prerecorded command log as one
// batch, this replica receives commands one at a time from a consensus
// layer (simulated as a goroutine emitting slot-ordered commands on a
// channel) and feeds them straight into an stm.Pipeline: Submit
// assigns each command its consensus slot as the age, a pool of
// workers applies them speculatively in parallel, and each command's
// Ticket resolves exactly when its slot commits — so the replica can
// acknowledge clients in slot order while execution runs ahead.
//
// At the end the speculative replica's store is compared against a
// sequential apply of the same log: byte-identical, per the predefined
// commit order guarantee.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/orderedstm/ostm/stm"
)

const (
	keys  = 128
	slots = 30000
)

// command is a consensus-ordered KV operation.
type command struct {
	op  byte // 'P' put, 'I' increment, 'M' move
	k1  int
	k2  int
	arg uint64
}

func genCommand(h *uint64) command {
	next := func() uint64 { *h = *h*6364136223846793005 + 1442695040888963407; return *h >> 16 }
	switch next() % 3 {
	case 0:
		return command{op: 'P', k1: int(next() % keys), arg: next() % 1000}
	case 1:
		return command{op: 'I', k1: int(next() % keys), arg: next() % 10}
	default:
		return command{op: 'M', k1: int(next() % keys), k2: int(next() % keys)}
	}
}

// apply builds the transaction body for one command over a store.
func apply(c command, store []stm.Var) stm.Body {
	return func(tx stm.Tx, _ int) {
		switch c.op {
		case 'P':
			tx.Write(&store[c.k1], c.arg)
		case 'I':
			tx.Write(&store[c.k1], tx.Read(&store[c.k1])+c.arg)
		case 'M':
			v := tx.Read(&store[c.k1])
			tx.Write(&store[c.k1], 0)
			tx.Write(&store[c.k2], tx.Read(&store[c.k2])+v)
		}
	}
}

func main() {
	// The "consensus layer": an unbounded stream of slot-ordered
	// commands. The replica does not know how many will ever arrive.
	consensus := make(chan command, 64)
	go func() {
		h := uint64(42)
		for i := 0; i < slots; i++ {
			consensus <- genCommand(&h)
		}
		close(consensus)
	}()

	store := stm.NewVars(keys)
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}

	// The acknowledgement path: a goroutine awaits each ticket in slot
	// order, as a replica would acknowledge clients.
	var ack sync.WaitGroup
	tickets := make(chan *stm.Ticket, 256)
	var acked uint64
	ack.Add(1)
	go func() {
		defer ack.Done()
		for tk := range tickets {
			if err := tk.Wait(); err != nil {
				log.Fatalf("slot %d failed: %v", tk.Age(), err)
			}
			acked++
		}
	}()

	// The apply loop: submit each command as it arrives, remember the
	// log for the sequential cross-check.
	var cmds []command
	start := time.Now()
	for c := range consensus {
		cmds = append(cmds, c)
		tk, err := p.Submit(apply(c, store))
		if err != nil {
			log.Fatal(err)
		}
		tickets <- tk
	}
	close(tickets)
	ack.Wait()
	if err := p.Close(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("replica applied %d slots in %v (%.0f cmds/s, %d aborts, %d epochs)\n",
		acked, elapsed.Round(time.Millisecond),
		stm.Throughput(p.Committed(), elapsed), p.Stats().TotalAborts(), p.Epochs())

	// Cross-check against a sequential leader applying the same log.
	leader := stm.NewVars(keys)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ex.Run(len(cmds), func(tx stm.Tx, slot int) {
		apply(cmds[slot], leader)(tx, slot)
	}); err != nil {
		log.Fatal(err)
	}
	for i := range leader {
		if store[i].Load() != leader[i].Load() {
			log.Fatalf("divergence at key %d: replica %d, leader %d",
				i, store[i].Load(), leader[i].Load())
		}
	}
	fmt.Println("replica state is byte-identical to the sequential leader")
}
