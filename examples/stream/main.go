// Stream: the state-machine-replication use case as a *live* typed
// pipeline. Where examples/replica applies a prerecorded command log
// as one batch, this replica receives commands one at a time from a
// consensus layer (simulated as a goroutine emitting slot-ordered
// commands on a channel) and feeds them straight into an
// stm.Pipeline through the typed API: SubmitFunc assigns each command
// its consensus slot as the age, a pool of workers applies them
// speculatively in parallel, and each command's TicketOf resolves
// exactly when its slot commits — carrying the command's typed reply
// (the value the client would be answered with), which is the
// committing attempt's result and never a speculative one. The
// acknowledgement loop waits with a context deadline (WaitCtx), as a
// real server would.
//
// At the end the speculative replica's store and every reply are
// compared against a sequential apply of the same log: byte-identical,
// per the predefined commit order guarantee.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/obs"
)

// metricsLine renders one live summary line from a registry snapshot:
// cumulative commits, the last second's rate, the commit frontier's
// lag behind submissions, and the engine abort ratio.
func metricsLine(reg *obs.Registry, lastCommitted *float64) string {
	committed, _ := reg.Sum("ostm_committed_total")
	lag, _ := reg.Sum("ostm_frontier_lag")
	commits, _ := reg.Sum("ostm_commits_total")
	aborts, _ := reg.Sum("ostm_aborts_total")
	rate := committed - *lastCommitted
	*lastCommitted = committed
	ratio := 0.0
	if commits > 0 {
		ratio = aborts / commits
	}
	return fmt.Sprintf("  [obs] committed=%.0f tx/s=%.0f frontier_lag=%.0f abort_ratio=%.3f",
		committed, rate, lag, ratio)
}

const (
	keys  = 128
	slots = 30000
)

// command is a consensus-ordered KV operation.
type command struct {
	op  byte // 'P' put, 'I' increment, 'M' move
	k1  int
	k2  int
	arg uint64
}

func genCommand(h *uint64) command {
	next := func() uint64 { *h = *h*6364136223846793005 + 1442695040888963407; return *h >> 16 }
	switch next() % 3 {
	case 0:
		return command{op: 'P', k1: int(next() % keys), arg: next() % 1000}
	case 1:
		return command{op: 'I', k1: int(next() % keys), arg: next() % 10}
	default:
		return command{op: 'M', k1: int(next() % keys), k2: int(next() % keys)}
	}
}

// apply builds the typed transaction for one command over a store;
// the returned value is the command's reply (the key's new value).
func apply(c command, store []stm.TVar[uint64]) stm.Func[uint64] {
	return func(tx stm.Tx, _ int) uint64 {
		switch c.op {
		case 'P':
			stm.WriteT(tx, &store[c.k1], c.arg)
			return c.arg
		case 'I':
			nv := stm.ReadT(tx, &store[c.k1]) + c.arg
			stm.WriteT(tx, &store[c.k1], nv)
			return nv
		default: // 'M'
			v := stm.ReadT(tx, &store[c.k1])
			stm.WriteT(tx, &store[c.k1], 0)
			nv := stm.ReadT(tx, &store[c.k2]) + v
			stm.WriteT(tx, &store[c.k2], nv)
			return nv
		}
	}
}

func main() {
	// The "consensus layer": an unbounded stream of slot-ordered
	// commands. The replica does not know how many will ever arrive.
	consensus := make(chan command, 64)
	go func() {
		h := uint64(42)
		for i := 0; i < slots; i++ {
			consensus <- genCommand(&h)
		}
		close(consensus)
	}()

	store := stm.NewTVars[uint64](keys)
	reg := obs.NewRegistry()
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 8, Obs: reg})
	if err != nil {
		log.Fatal(err)
	}

	// Live metrics: one summary line per second straight from the
	// registry snapshot — the same numbers a /metrics scrape would see.
	var lastCommitted float64
	obsStop := make(chan struct{})
	var obsWG sync.WaitGroup
	obsWG.Add(1)
	go func() {
		defer obsWG.Done()
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-obsStop:
				return
			case <-tick.C:
				fmt.Println(metricsLine(reg, &lastCommitted))
			}
		}
	}()

	// The acknowledgement path: a goroutine awaits each ticket in slot
	// order with a deadline, as a replica answering clients would. A
	// deadline miss abandons only the wait — the slot still commits,
	// so the replica retries the wait rather than losing the slot.
	var ack sync.WaitGroup
	tickets := make(chan *stm.TicketOf[uint64], 256)
	replies := make([]uint64, 0, slots)
	ack.Add(1)
	go func() {
		defer ack.Done()
		for tk := range tickets {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			v, err := tk.ValueCtx(ctx)
			cancel()
			if errors.Is(err, stm.ErrCanceled) {
				v, err = tk.Value() // deadline missed; the slot is still ours
			}
			if err != nil {
				log.Fatalf("slot %d failed: %v", tk.Age(), err)
			}
			replies = append(replies, v)
		}
	}()

	// The apply loop: submit each command as it arrives, remember the
	// log for the sequential cross-check.
	var cmds []command
	start := time.Now()
	for c := range consensus {
		cmds = append(cmds, c)
		tk, err := stm.SubmitFunc(p, apply(c, store))
		if err != nil {
			log.Fatal(err)
		}
		tickets <- tk
	}
	close(tickets)
	ack.Wait()
	close(obsStop)
	obsWG.Wait()
	fmt.Println(metricsLine(reg, &lastCommitted)) // final snapshot (short runs may beat the first tick)
	if err := p.Close(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("replica applied %d slots in %v (%.0f cmds/s, %d aborts, %d epochs)\n",
		len(replies), elapsed.Round(time.Millisecond),
		stm.Throughput(p.Committed(), elapsed), p.Stats().TotalAborts(), p.Epochs())

	// Cross-check against a sequential leader applying the same log:
	// final store AND every reply must match.
	leader := stm.NewTVars[uint64](keys)
	seq, err := stm.NewPipeline(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		log.Fatal(err)
	}
	for slot, c := range cmds {
		tk, err := stm.SubmitFunc(seq, apply(c, leader))
		if err != nil {
			log.Fatal(err)
		}
		want, err := tk.Value()
		if err != nil {
			log.Fatal(err)
		}
		if want != replies[slot] {
			log.Fatalf("reply divergence at slot %d: replica %d, leader %d", slot, replies[slot], want)
		}
	}
	if err := seq.Close(); err != nil {
		log.Fatal(err)
	}
	for i := range leader {
		if store[i].Load() != leader[i].Load() {
			log.Fatalf("divergence at key %d: replica %d, leader %d",
				i, store[i].Load(), leader[i].Load())
		}
	}
	fmt.Println("replica state and every typed reply are identical to the sequential leader")
}
