// Command sharded demonstrates partition-parallel ordered execution:
// a bank laid out across 4 partitions, a stream of partition-local
// transfers with occasional cross-partition ones, and a final audit
// proving the sharded run conserved money and matched the sequential
// execution of the same stream in global-age order.
package main

import (
	"fmt"
	"log"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
)

const (
	shards   = 4
	accounts = 1024
	initial  = 1000
	txCount  = 20000
)

// transfer moves amt from a to b if funds allow; it touches only the
// two declared accounts, so its shard set is {owner(a), owner(b)}.
func transfer(a, b *stm.Var, amt uint64) stm.Body {
	return func(tx stm.Tx, age int) {
		cur := tx.Read(a)
		if cur >= amt {
			tx.Write(a, cur-amt)
			tx.Write(b, tx.Read(b)+amt)
		}
	}
}

func run(vars []stm.Var) (*shard.ShardedPipeline, error) {
	sp, err := shard.New(shard.Config{
		Shards:   shards,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2},
	})
	if err != nil {
		return nil, err
	}
	// Bucket accounts by owning partition so most traffic stays local.
	buckets := make([][]*stm.Var, shards)
	for i := range vars {
		s := sp.ShardOf(&vars[i])
		buckets[s] = append(buckets[s], &vars[i])
	}
	r := rng.New(42)
	for i := 0; i < txCount; i++ {
		var a, b *stm.Var
		if r.Intn(100) < 5 {
			// Cross-partition transfer (5%): fence + rendezvous.
			sa := r.Intn(shards)
			sb := (sa + 1 + r.Intn(shards-1)) % shards
			a = buckets[sa][r.Intn(len(buckets[sa]))]
			b = buckets[sb][r.Intn(len(buckets[sb]))]
		} else {
			s := r.Intn(shards)
			bk := buckets[s]
			a, b = bk[r.Intn(len(bk))], bk[r.Intn(len(bk))]
		}
		if _, err := sp.Submit(stm.Touches(a, b), transfer(a, b, uint64(r.Intn(50)))); err != nil {
			return nil, err
		}
	}
	if err := sp.Drain(); err != nil {
		return nil, err
	}
	return sp, nil
}

func main() {
	vars := stm.NewVars(accounts)
	for i := range vars {
		vars[i].Store(initial)
	}
	sp, err := run(vars)
	if err != nil {
		log.Fatal(err)
	}
	defer sp.Close()

	var total uint64
	for i := range vars {
		total += vars[i].Load()
	}
	fmt.Printf("%d transactions over %d shards (%d cross-shard)\n",
		sp.Submitted(), sp.Shards(), sp.CrossShard())
	fmt.Printf("total balance: %d (expected %d) — %s\n",
		total, uint64(accounts*initial), verdict(total == accounts*initial))
	for s, sv := range sp.ShardStats() {
		fmt.Printf("  shard %d: %v\n", s, sv)
	}
}

func verdict(ok bool) string {
	if ok {
		return "conserved"
	}
	return "DIVERGED"
}
