// Bank: concurrent money transfers with a conservation invariant,
// executed under every ordered algorithm of the library. Demonstrates
// choosing algorithms, reading per-cause abort statistics, and that
// the ordered engines agree bit-for-bit on the final state.
package main

import (
	"fmt"
	"log"

	"github.com/orderedstm/ostm/stm"
)

const (
	accounts = 64
	initial  = 1_000
	nTx      = 20000
)

func main() {
	balances := stm.NewVars(accounts)

	transfer := func(tx stm.Tx, age int) {
		// Deterministic pseudo-random source/destination per age: the
		// body may be re-executed and must replay identically.
		h := uint64(age) * 0x9E3779B97F4A7C15
		from := int(h % accounts)
		to := int((h >> 20) % accounts)
		amount := h >> 58 // 0..63
		b := tx.Read(&balances[from])
		if b >= amount {
			tx.Write(&balances[from], b-amount)
			tx.Write(&balances[to], tx.Read(&balances[to])+amount)
		}
	}

	var reference []uint64
	for _, alg := range append([]stm.Algorithm{stm.Sequential}, stm.OrderedAlgorithms()...) {
		for i := range balances {
			balances[i].Store(initial)
		}
		ex, err := stm.NewExecutor(stm.Config{Algorithm: alg, Workers: 8})
		if err != nil {
			log.Fatal(err)
		}
		res, err := ex.Run(nTx, transfer)
		if err != nil {
			log.Fatal(err)
		}
		var total uint64
		state := make([]uint64, accounts)
		for i := range balances {
			state[i] = balances[i].Load()
			total += state[i]
		}
		if total != accounts*initial {
			log.Fatalf("%v: money not conserved: %d", alg, total)
		}
		match := "reference"
		if reference == nil {
			reference = state
		} else {
			match = "MATCH"
			for i := range state {
				if state[i] != reference[i] {
					match = "MISMATCH"
				}
			}
		}
		fmt.Printf("%-22s  %8.0f tx/s  aborts=%-6d  state=%s\n",
			alg, res.Throughput(), res.Stats.TotalAborts(), match)
	}
}
