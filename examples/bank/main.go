// Bank: concurrent money transfers with a conservation invariant on
// typed accounts, executed under every ordered algorithm of the
// library. Each transfer is a value-returning transaction (the typed
// API): it returns the amount actually moved, and the per-algorithm
// sums of those returned values must agree — demonstrating choosing
// algorithms, reading per-cause abort statistics, the TVar[uint64]
// account type, and that the ordered engines agree bit-for-bit on
// both final state and per-transaction results.
package main

import (
	"fmt"
	"log"

	"github.com/orderedstm/ostm/stm"
)

const (
	accounts = 64
	initial  = 1_000
	nTx      = 20000
)

// transferFn builds the deterministic transfer for one age and
// returns the moved amount (0 when the balance is insufficient).
func transferFn(balances []stm.TVar[uint64], age int) stm.Func[uint64] {
	return func(tx stm.Tx, _ int) uint64 {
		h := uint64(age) * 0x9E3779B97F4A7C15
		from := int(h % accounts)
		to := int((h >> 20) % accounts)
		amount := h >> 58 // 0..63
		b := stm.ReadT(tx, &balances[from])
		if b < amount {
			return 0
		}
		stm.WriteT(tx, &balances[from], b-amount)
		stm.WriteT(tx, &balances[to], stm.ReadT(tx, &balances[to])+amount)
		return amount
	}
}

func main() {
	balances := stm.NewTVars[uint64](accounts)

	var refState []uint64
	var refMoved uint64
	for _, alg := range append([]stm.Algorithm{stm.Sequential}, stm.OrderedAlgorithms()...) {
		for i := range balances {
			balances[i].Store(initial)
		}
		p, err := stm.NewPipeline(stm.Config{Algorithm: alg, Workers: 8})
		if err != nil {
			log.Fatal(err)
		}
		tickets := make([]*stm.TicketOf[uint64], nTx)
		for age := 0; age < nTx; age++ {
			if tickets[age], err = stm.SubmitFunc(p, transferFn(balances, age)); err != nil {
				log.Fatal(err)
			}
		}
		var moved uint64
		for _, t := range tickets {
			amt, err := t.Value()
			if err != nil {
				log.Fatal(err)
			}
			moved += amt
		}
		stats := p.Stats()
		if err := p.Close(); err != nil {
			log.Fatal(err)
		}

		var total uint64
		state := make([]uint64, accounts)
		for i := range balances {
			state[i] = balances[i].Load()
			total += state[i]
		}
		if total != accounts*initial {
			log.Fatalf("%v: money not conserved: %d", alg, total)
		}
		match := "reference"
		if refState == nil {
			refState, refMoved = state, moved
		} else {
			match = "MATCH"
			if moved != refMoved {
				match = "MISMATCH(results)"
			}
			for i := range state {
				if state[i] != refState[i] {
					match = "MISMATCH(state)"
				}
			}
		}
		fmt.Printf("%-22s  moved=%-8d aborts=%-6d  %s\n",
			alg, moved, stats.TotalAborts(), match)
	}
}
