// Command recovery demonstrates the *typed* durable ordered-commit
// pipeline surviving a real crash: the program re-executes itself as
// a child process that streams typed bank-transfer requests into a
// WAL-backed pipeline (stm.CodecOf + SubmitPayloadT — each
// acknowledged request carries a typed reply, the sender's new
// balance) and is killed mid-stream (os.Exit — no flushing, no
// goodbye). The parent then recovers the log, truncates the torn
// tail, replays the surviving prefix through SubmitEncodedT of a
// fresh pipeline — re-deriving the same typed replies — and verifies
// the rebuilt state against an independent sequential fold of the
// same records.
//
// The point being demonstrated: with a predefined commit order and
// deterministic bodies, the log of committed inputs IS the state —
// recovery is nothing but replay, and even the typed results come
// back.
//
//	go run ./examples/recovery
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/obs"
	"github.com/orderedstm/ostm/stm/wal"
)

// metricsLine renders a live one-line summary from the registry: the
// commit frontier's lag behind submissions, the last interval's commit
// rate, the abort ratio, and the WAL's group-commit pipelining depth.
func metricsLine(reg *obs.Registry, lastCommitted *float64) string {
	committed, _ := reg.Sum("ostm_committed_total")
	lag, _ := reg.Sum("ostm_frontier_lag")
	commits, _ := reg.Sum("ostm_commits_total")
	aborts, _ := reg.Sum("ostm_aborts_total")
	depth, _ := reg.Sum("ostm_wal_sync_depth_max")
	rate := committed - *lastCommitted
	*lastCommitted = committed
	ratio := 0.0
	if commits > 0 {
		ratio = aborts / commits
	}
	return fmt.Sprintf("  [obs] committed=%.0f tx/s=%.0f frontier_lag=%.0f abort_ratio=%.3f wal_sync_depth_max=%.0f",
		committed, rate, lag, ratio, depth)
}

const (
	accounts = 64
	balance  = 1_000
)

// request is one transfer command: the typed durable input from which
// the transaction is decoded, both live and at recovery.
type request struct{ from, to uint32 }

// codec builds the application's typed codec: an 8-byte wire form,
// decoded into a deterministic transfer whose typed result is the
// sender's post-transfer balance.
func codec(pool []stm.TVar[uint64]) *stm.TypedCodec[request, uint64] {
	return stm.CodecOf(
		func(r request) ([]byte, error) {
			var b [8]byte
			binary.LittleEndian.PutUint32(b[0:4], r.from)
			binary.LittleEndian.PutUint32(b[4:8], r.to)
			return b[:], nil
		},
		func(data []byte) (request, error) {
			if len(data) != 8 {
				return request{}, fmt.Errorf("bad payload length %d", len(data))
			}
			r := request{
				from: binary.LittleEndian.Uint32(data[0:4]),
				to:   binary.LittleEndian.Uint32(data[4:8]),
			}
			if int(r.from) >= len(pool) || int(r.to) >= len(pool) {
				return request{}, fmt.Errorf("transfer %d→%d out of range", r.from, r.to)
			}
			return r, nil
		},
		func(r request) stm.Func[uint64] {
			return func(tx stm.Tx, age int) uint64 {
				amt := uint64(age%5) + 1
				b := stm.ReadT(tx, &pool[r.from])
				if b >= amt && r.from != r.to {
					stm.WriteT(tx, &pool[r.from], b-amt)
					stm.WriteT(tx, &pool[r.to], stm.ReadT(tx, &pool[r.to])+amt)
					return b - amt
				}
				return b
			}
		},
	)
}

// poolSnapshotter captures/restores the whole pool as 8 bytes per
// account — the state a checkpoint freezes at a stable frontier.
func poolSnapshotter(pool []stm.TVar[uint64]) stm.Snapshotter {
	return stm.SnapshotterFuncs{
		SnapshotFunc: func() ([]byte, error) {
			b := make([]byte, 8*len(pool))
			for i := range pool {
				binary.LittleEndian.PutUint64(b[8*i:], pool[i].Load())
			}
			return b, nil
		},
		RestoreFunc: func(data []byte) error {
			if len(data) != 8*len(pool) {
				return fmt.Errorf("snapshot holds %d bytes, want %d", len(data), 8*len(pool))
			}
			for i := range pool {
				pool[i].Store(binary.LittleEndian.Uint64(data[8*i:]))
			}
			return nil
		},
	}
}

func countSegments(dir string) int {
	segs, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	return len(segs)
}

func newPool() []stm.TVar[uint64] {
	pool := stm.NewTVars[uint64](accounts)
	for i := range pool {
		pool[i].Store(balance)
	}
	return pool
}

func transferFor(age uint64) request {
	return request{from: uint32(age * 7 % accounts), to: uint32((age*13 + 1) % accounts)}
}

// child streams typed transfers through a durable pipeline and dies
// without warning partway through.
func child(dir string) {
	pool := newPool()
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 32})
	check(err)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     4,
		WAL:         w,
		Codec:       codec(pool),
		WaitDurable: true, // tickets resolve only once their age is on disk
	})
	check(err)
	for age := uint64(0); ; age++ {
		tk, err := stm.SubmitPayloadT[request, uint64](p, transferFor(age))
		check(err)
		if age == 3_000 {
			// An acknowledged transfer is durable — and its typed reply
			// is the committed one. Report it, then crash: no Close, no
			// Sync; whatever the group commits already flushed is all
			// that survives, and the acknowledged prefix is guaranteed
			// to be part of it.
			reply, err := tk.Value()
			check(err)
			fmt.Printf("  child: age %d acknowledged durable (reply=%d, frontier %d) — crashing now\n",
				age, reply, p.Durable())
			os.Exit(0)
		}
	}
}

func main() {
	if len(os.Args) == 3 && os.Args[1] == "-child" {
		child(os.Args[2])
		return
	}
	dir, err := os.MkdirTemp("", "ostm-recovery-*")
	check(err)
	defer os.RemoveAll(dir)

	fmt.Println("phase 1: run a typed durable pipeline in a child process and kill it mid-stream")
	cmd := exec.Command(os.Args[0], "-child", dir)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	check(cmd.Run())

	fmt.Println("phase 2: recover the log")
	rec, err := wal.Recover(dir)
	check(err)
	fmt.Printf("  recovered %d records (ages %d..%d), torn tail truncated: %v\n",
		rec.Count(), rec.First(), rec.Next(), rec.Truncated())

	fmt.Println("phase 3: replay the prefix through SubmitEncodedT (recovery ≡ replay, typed results included)")
	pool := newPool()
	// Small segments so the continued log rolls over several files —
	// phase 6's checkpoint then has history to truncate. The registry
	// observes pipeline and WAL together: one scrape surface for the
	// whole durable stack.
	reg := obs.NewRegistry()
	w, err := rec.Writer(wal.Options{SyncEveryN: 32, SegmentBytes: 4096, Obs: reg})
	check(err)
	start := time.Now()
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     4,
		WAL:         w, // re-appends of recovered ages are no-ops
		Codec:       codec(pool),
		FirstAge:    rec.First(),
		Snapshotter: poolSnapshotter(pool), // enables Checkpoint()
		Obs:         reg,
	})
	check(err)
	var lastCommitted float64
	obsStop := make(chan struct{})
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-obsStop:
				return
			case <-tick.C:
				fmt.Println(metricsLine(reg, &lastCommitted))
			}
		}
	}()
	replies := make([]uint64, 0, rec.Count())
	tks := make([]*stm.TicketOf[uint64], 0, rec.Count())
	check(rec.Replay(func(age uint64, data []byte) error {
		tk, err := stm.SubmitEncodedT[request, uint64](p, data)
		if err == nil {
			tks = append(tks, tk)
		}
		return err
	}))
	for _, tk := range tks {
		v, err := tk.Value()
		check(err)
		replies = append(replies, v)
	}
	fmt.Printf("  replayed in %v; pipeline resumes at age %d\n", time.Since(start), rec.Next())

	fmt.Println("phase 4: verify state AND typed replies against a sequential fold of the recovered inputs")
	model := make([]uint64, accounts)
	for i := range model {
		model[i] = balance
	}
	for i, r := range rec.Records() {
		from := binary.LittleEndian.Uint32(r.Payload[0:4])
		to := binary.LittleEndian.Uint32(r.Payload[4:8])
		amt := r.Age%5 + 1
		if model[from] >= amt && from != to {
			model[from] -= amt
			model[to] += amt
		}
		if replies[i] != model[from] {
			fmt.Printf("  MISMATCH reply at age %d: replayed %d, model %d\n", r.Age, replies[i], model[from])
			os.Exit(1)
		}
	}
	var total uint64
	for i := range pool {
		if got := pool[i].Load(); got != model[i] {
			fmt.Printf("  MISMATCH account %d: replayed %d, model %d\n", i, got, model[i])
			os.Exit(1)
		} else {
			total += got
		}
	}
	fmt.Printf("  all %d accounts and %d typed replies match the sequential model (total conserved: %d)\n",
		accounts, len(replies), total)

	fmt.Println("phase 5: the recovered pipeline keeps serving — submit new typed work")
	tk, err := stm.SubmitPayloadT[request, uint64](p, transferFor(rec.Next()))
	check(err)
	reply, err := tk.Value()
	check(err)
	fmt.Printf("  new transfer committed at age %d (reply=%d); log now holds %d ages\n", tk.Age(), reply, w.Next())

	fmt.Println("phase 6: checkpoint — freeze a snapshot at the frontier and truncate the log below it")
	var last *stm.TicketOf[uint64]
	for i := 0; i < 3_000; i++ {
		last, err = stm.SubmitPayloadT[request, uint64](p, transferFor(w.Next()+uint64(i)))
		check(err)
	}
	_, err = last.Value() // drain: the checkpoint should cover the whole stream
	check(err)
	segsBefore := countSegments(dir)
	ckptAge, err := p.Checkpoint()
	check(err)
	fmt.Printf("  checkpoint committed at frontier age %d; segments %d -> %d (history below the checkpoint removed)\n",
		ckptAge, segsBefore, countSegments(dir))
	close(obsStop)
	<-obsDone
	fmt.Println(metricsLine(reg, &lastCommitted)) // final snapshot (short runs may beat the first tick)
	check(p.Close())
	check(w.Close())
	liveTotal := make([]uint64, accounts)
	for i := range pool {
		liveTotal[i] = pool[i].Load()
	}

	fmt.Println("phase 7: recover from the checkpoint — restore the snapshot, skip everything below it")
	rec2, err := wal.Recover(dir)
	check(err)
	skippedN, skippedB := rec2.Skipped()
	fmt.Printf("  newest checkpoint at age %d; recovery skips %d logged records (%d bytes) below it, %d left to replay\n",
		rec2.CheckpointAge(), skippedN, skippedB, rec2.Count())
	pool2 := newPool()
	check(poolSnapshotter(pool2).(stm.SnapshotterFuncs).RestoreFunc(rec2.CheckpointState()))
	for i := range pool2 {
		if got := pool2[i].Load(); got != liveTotal[i] {
			fmt.Printf("  MISMATCH account %d: snapshot %d, live %d\n", i, got, liveTotal[i])
			os.Exit(1)
		}
	}
	fmt.Printf("  snapshot restore alone rebuilt all %d accounts — a clean checkpointed close restarts replay-free\n",
		accounts)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "recovery:", err)
		os.Exit(1)
	}
}
