// Command recovery demonstrates the durable ordered-commit pipeline
// surviving a real crash: the program re-executes itself as a child
// process that streams bank transfers into a WAL-backed pipeline and
// is killed mid-stream (os.Exit — no flushing, no goodbye), then the
// parent recovers the log, truncates the torn tail, replays the
// surviving prefix through a fresh pipeline, and verifies the rebuilt
// state against an independent sequential fold of the same records.
//
// The point being demonstrated: with a predefined commit order and
// deterministic bodies, the log of committed inputs IS the state —
// recovery is nothing but replay.
//
//	go run ./examples/recovery
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/wal"
)

const (
	accounts = 64
	balance  = 1_000
)

// payload is one transfer command: the durable input from which the
// transaction body is decoded, both live and at recovery.
type payload struct{ from, to uint32 }

// codec is the application's stm.Codec: 8-byte wire form, decoded
// into a deterministic transfer body over the shared account pool.
type codec struct{ pool []stm.Var }

func (c codec) Encode(p any) ([]byte, error) {
	t := p.(payload)
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], t.from)
	binary.LittleEndian.PutUint32(b[4:8], t.to)
	return b[:], nil
}

func (c codec) Decode(data []byte) (stm.Body, error) {
	if len(data) != 8 {
		return nil, fmt.Errorf("bad payload length %d", len(data))
	}
	from := binary.LittleEndian.Uint32(data[0:4])
	to := binary.LittleEndian.Uint32(data[4:8])
	pool := c.pool
	return func(tx stm.Tx, age int) {
		amt := uint64(age%5) + 1
		b := tx.Read(&pool[from])
		if b >= amt && from != to {
			tx.Write(&pool[from], b-amt)
			tx.Write(&pool[to], tx.Read(&pool[to])+amt)
		}
	}, nil
}

func newPool() []stm.Var {
	pool := stm.NewVars(accounts)
	for i := range pool {
		pool[i].Store(balance)
	}
	return pool
}

func transferFor(age uint64) payload {
	return payload{from: uint32(age * 7 % accounts), to: uint32((age*13 + 1) % accounts)}
}

// child streams transfers through a durable pipeline and dies without
// warning partway through.
func child(dir string) {
	pool := newPool()
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 32})
	check(err)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     4,
		WAL:         w,
		Codec:       codec{pool: pool},
		WaitDurable: true, // tickets resolve only once their age is on disk
	})
	check(err)
	for age := uint64(0); ; age++ {
		tk, err := p.SubmitPayload(transferFor(age))
		check(err)
		if age == 3_000 {
			// An acknowledged transfer is durable: wait for this one,
			// then crash. No Close, no Sync — whatever the group
			// commits already flushed is all that survives, and the
			// acknowledged prefix is guaranteed to be part of it.
			check(tk.Wait())
			fmt.Printf("  child: age %d acknowledged durable (frontier %d) — crashing now\n",
				age, p.Durable())
			os.Exit(0)
		}
	}
}

func main() {
	if len(os.Args) == 3 && os.Args[1] == "-child" {
		child(os.Args[2])
		return
	}
	dir, err := os.MkdirTemp("", "ostm-recovery-*")
	check(err)
	defer os.RemoveAll(dir)

	fmt.Println("phase 1: run a durable pipeline in a child process and kill it mid-stream")
	cmd := exec.Command(os.Args[0], "-child", dir)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	check(cmd.Run())

	fmt.Println("phase 2: recover the log")
	rec, err := wal.Recover(dir)
	check(err)
	fmt.Printf("  recovered %d records (ages %d..%d), torn tail truncated: %v\n",
		rec.Count(), rec.First(), rec.Next(), rec.Truncated())

	fmt.Println("phase 3: replay the prefix through a fresh pipeline (recovery ≡ replay)")
	pool := newPool()
	w, err := rec.Writer(wal.Options{SyncEveryN: 32})
	check(err)
	start := time.Now()
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: stm.OUL,
		Workers:   4,
		WAL:       w, // re-appends of recovered ages are no-ops
		Codec:     codec{pool: pool},
		FirstAge:  rec.First(),
	})
	check(err)
	check(rec.Replay(func(age uint64, data []byte) error {
		_, err := p.SubmitEncoded(data)
		return err
	}))
	check(p.Drain())
	fmt.Printf("  replayed in %v; pipeline resumes at age %d\n", time.Since(start), rec.Next())

	fmt.Println("phase 4: verify against a sequential fold of the recovered inputs")
	model := make([]uint64, accounts)
	for i := range model {
		model[i] = balance
	}
	for _, r := range rec.Records() {
		from := binary.LittleEndian.Uint32(r.Payload[0:4])
		to := binary.LittleEndian.Uint32(r.Payload[4:8])
		amt := r.Age%5 + 1
		if model[from] >= amt && from != to {
			model[from] -= amt
			model[to] += amt
		}
	}
	var total uint64
	for i := range pool {
		if got := pool[i].Load(); got != model[i] {
			fmt.Printf("  MISMATCH account %d: replayed %d, model %d\n", i, got, model[i])
			os.Exit(1)
		} else {
			total += got
		}
	}
	fmt.Printf("  all %d accounts match the sequential model (total conserved: %d)\n", accounts, total)

	fmt.Println("phase 5: the recovered pipeline keeps serving — submit new work")
	tk, err := p.SubmitPayload(transferFor(rec.Next()))
	check(err)
	check(tk.Wait())
	fmt.Printf("  new transfer committed at age %d; log now holds %d ages\n", tk.Age(), w.Next())
	check(p.Close())
	check(w.Close())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "recovery:", err)
		os.Exit(1)
	}
}
