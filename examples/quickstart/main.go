// Quickstart: run ordered transactions against shared counters and
// observe that the parallel speculative execution is externally
// identical to running the loop sequentially.
package main

import (
	"fmt"
	"log"

	"github.com/orderedstm/ostm/stm"
)

func main() {
	// Shared state: a row of counters and a running weighted sum whose
	// value depends on the exact commit order.
	counters := stm.NewVars(8)
	orderSensitive := stm.NewVar(0)

	body := func(tx stm.Tx, age int) {
		slot := &counters[age%len(counters)]
		tx.Write(slot, tx.Read(slot)+1)
		// Multiply-then-add makes the result depend on commit order:
		// only an execution equivalent to ages 0,1,2,... yields the
		// sequential answer.
		tx.Write(orderSensitive, tx.Read(orderSensitive)*3+uint64(age))
	}

	const n = 10000

	// Reference: non-instrumented sequential execution.
	seq, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := seq.Run(n, body); err != nil {
		log.Fatal(err)
	}
	want := orderSensitive.Load()

	// Parallel speculative execution with a predefined commit order
	// (OUL, the paper's best performer), 8 workers.
	orderSensitive.Store(0)
	for i := range counters {
		counters[i].Store(0)
	}
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OUL, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	res, err := ex.Run(n, body)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm:      %v (%d workers)\n", res.Algorithm, res.Workers)
	fmt.Printf("committed:      %d transactions in %v (%.0f tx/s)\n",
		res.N, res.Elapsed, res.Throughput())
	fmt.Printf("aborts:         %d (%s)\n", res.Stats.TotalAborts(), res.Stats)
	fmt.Printf("order-sensitive result: %#x\n", orderSensitive.Load())
	fmt.Printf("sequential reference:   %#x\n", want)
	if orderSensitive.Load() == want {
		fmt.Println("MATCH — the parallel run is equivalent to the sequential order")
	} else {
		log.Fatal("MISMATCH — commit order was violated")
	}
}
