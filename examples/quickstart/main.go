// Quickstart: the typed API v2 in one file — typed transactional
// variables (TVar), value-returning transactions (SubmitFunc), and
// tickets that resolve in the predefined commit order. The parallel
// speculative execution is externally identical to running the
// submissions sequentially in age order, and each ticket's value is
// the committing attempt's result (speculative attempts are
// discarded).
package main

import (
	"fmt"
	"log"

	"github.com/orderedstm/ostm/stm"
)

func main() {
	// Shared typed state: a row of counters and a running weighted sum
	// whose value depends on the exact commit order.
	counters := stm.NewTVars[uint64](8)
	orderSensitive := stm.NewTVar[uint64](0)

	// Each submission is a value-returning transaction: it folds its
	// age into the order-sensitive accumulator and returns the new
	// value. Multiply-then-add makes the result depend on commit
	// order — only an execution equivalent to ages 0,1,2,... yields
	// the sequential answers.
	fnFor := func(age int) stm.Func[uint64] {
		return func(tx stm.Tx, _ int) uint64 {
			slot := &counters[age%len(counters)]
			stm.WriteT(tx, slot, stm.ReadT(tx, slot)+1)
			nv := stm.ReadT(tx, orderSensitive)*3 + uint64(age)
			stm.WriteT(tx, orderSensitive, nv)
			return nv
		}
	}

	const n = 10000

	// Reference: the same transactions executed sequentially.
	seq, err := stm.NewPipeline(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		log.Fatal(err)
	}
	want := make([]uint64, n)
	for age := 0; age < n; age++ {
		t, err := stm.SubmitFunc(seq, fnFor(age))
		if err != nil {
			log.Fatal(err)
		}
		if want[age], err = t.Value(); err != nil {
			log.Fatal(err)
		}
	}
	if err := seq.Close(); err != nil {
		log.Fatal(err)
	}
	wantFinal := orderSensitive.Load()

	// Parallel speculative execution with a predefined commit order
	// (OUL, the paper's best performer), 8 workers: submit the same
	// stream, then check every ticket's typed value against the
	// sequential run.
	orderSensitive.Store(0)
	for i := range counters {
		counters[i].Store(0)
	}
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	tickets := make([]*stm.TicketOf[uint64], n)
	for age := 0; age < n; age++ {
		if tickets[age], err = stm.SubmitFunc(p, fnFor(age)); err != nil {
			log.Fatal(err)
		}
	}
	for age, t := range tickets {
		got, err := t.Value()
		if err != nil {
			log.Fatal(err)
		}
		if got != want[age] {
			log.Fatalf("MISMATCH at age %d: parallel %#x, sequential %#x", age, got, want[age])
		}
	}
	stats := p.Stats()
	if err := p.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("committed:      %d value-returning transactions (%d aborts retried)\n",
		n, stats.TotalAborts())
	fmt.Printf("order-sensitive result: %#x\n", orderSensitive.Load())
	fmt.Printf("sequential reference:   %#x\n", wantFinal)
	if orderSensitive.Load() == wantFinal {
		fmt.Println("MATCH — every ticket value and the final state equal the sequential order")
	} else {
		log.Fatal("MISMATCH — commit order was violated")
	}
}
