package tl2

import (
	"testing"

	"github.com/orderedstm/ostm/internal/meta"
)

func cfg() meta.EngineConfig { return meta.EngineConfig{TableBits: 10}.Normalize() }

func catchAbort(f func()) (aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := meta.AbortCause(r); !ok {
				panic(r)
			}
			aborted = true
		}
	}()
	f()
	return false
}

func TestLockWordSample(t *testing.T) {
	var l tl2Lock
	if v, locked := l.sample(); v != 0 || locked {
		t.Fatal("fresh lock wrong")
	}
	l.word.Store(42 | lockedBit)
	if v, locked := l.sample(); v != 42 || !locked {
		t.Fatalf("sample = %d,%v", v, locked)
	}
}

func TestReadWriteCommitPublishes(t *testing.T) {
	e := New(cfg())
	v := meta.NewVar(5)
	tx := e.NewTxn(0).(*Txn)
	if tx.Read(v) != 5 {
		t.Fatal("read")
	}
	tx.Write(v, 6)
	if tx.Read(v) != 6 {
		t.Fatal("read-own-write")
	}
	if v.Load() != 5 {
		t.Fatal("write-back leaked before commit")
	}
	if !tx.TryCommit() {
		t.Fatal("commit failed")
	}
	if v.Load() != 6 {
		t.Fatal("commit did not publish")
	}
	if ver, locked := e.locks.Of(v).sample(); locked || ver == 0 {
		t.Fatalf("lock state after commit: %d,%v", ver, locked)
	}
}

func TestStaleSnapshotAborts(t *testing.T) {
	e := New(cfg())
	v := meta.NewVar(0)
	old := e.NewTxn(0).(*Txn) // rv taken now
	// A writer commits, advancing the stripe version past old's rv.
	w := e.NewTxn(1).(*Txn)
	w.Write(v, 1)
	if !w.TryCommit() {
		t.Fatal("writer commit failed")
	}
	if !catchAbort(func() { old.Read(v) }) {
		t.Fatal("stale read did not abort")
	}
	if old.ReadSetValid() {
		// read set is empty, so it is trivially valid; but a fresh
		// transaction must read fine
		tx := e.NewTxn(2).(*Txn)
		if tx.Read(v) != 1 {
			t.Fatal("fresh read wrong")
		}
	}
}

func TestCommitValidationFails(t *testing.T) {
	e := New(cfg())
	v := meta.NewVar(0)
	u := meta.NewVar(0)
	r := e.NewTxn(0).(*Txn)
	_ = r.Read(v)
	r.Write(u, 1)
	// Concurrent writer commits over v between r's read and commit.
	w := e.NewTxn(1).(*Txn)
	w.Write(v, 9)
	if !w.TryCommit() {
		t.Fatal("writer commit failed")
	}
	if r.TryCommit() {
		t.Fatal("stale read-set survived commit validation")
	}
	if !r.ReadSetValid() == false {
		_ = r
	}
	if u.Load() != 0 {
		t.Fatal("failed commit leaked writes")
	}
}

func TestReadOnlyCommitsWithoutLocks(t *testing.T) {
	e := New(cfg())
	v := meta.NewVar(3)
	tx := e.NewTxn(0).(*Txn)
	_ = tx.Read(v)
	if !tx.TryCommit() {
		t.Fatal("read-only commit failed")
	}
}

func TestOrderedWaitsForTurn(t *testing.T) {
	e := NewOrdered(cfg())
	v := meta.NewVar(0)
	t0 := e.NewTxn(0).(*Txn)
	t1 := e.NewTxn(1).(*Txn)
	t1.Write(v, 1)
	done := make(chan bool)
	go func() { done <- t1.TryCommit() }()
	// t1 must not commit before t0.
	select {
	case <-done:
		t.Fatal("age 1 committed before age 0")
	default:
	}
	t0.Write(v, 2)
	if !t0.TryCommit() {
		t.Fatal("t0 commit failed")
	}
	if !<-done {
		t.Fatal("t1 commit failed after its turn")
	}
	if v.Load() != 1 {
		t.Fatalf("final value %d, want 1 (t1 commits after t0)", v.Load())
	}
	if e.Name() != "Ordered-TL2" || e.Mode() != meta.ModeBlocked {
		t.Fatal("ordered identity wrong")
	}
}

func TestCleanupAndAbandon(t *testing.T) {
	e := New(cfg())
	v := meta.NewVar(0)
	tx := e.NewTxn(0).(*Txn)
	tx.Write(v, 1)
	tx.AbandonAttempt() // no shared state to clean
	if v.Load() != 0 {
		t.Fatal("abandon leaked")
	}
	tx2 := e.NewTxn(1).(*Txn)
	_ = tx2.Read(v)
	tx2.Cleanup()
	if tx2.Doomed() {
		t.Fatal("TL2 transactions are never doomed")
	}
}
