// Package tl2 implements the TL2 algorithm of Dice, Shalev and Shavit
// (DISC 2006) in its unordered form and the ordered variant used as a
// baseline in the paper (§8): "transactions are allowed to enter the
// commit phase only when all transactions with lower age have been
// committed".
//
// TL2 is a commit-time write-back STM with a global version clock and
// per-stripe versioned write locks: reads post-validate against the
// transaction's read version, writes are buffered and published under
// locks stamped with a new clock value.
package tl2

import (
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
)

// lockedBit marks a stripe as write-locked; the remaining bits are the
// stripe's version.
const lockedBit = uint64(1) << 63

// tl2Lock is one versioned-lock stripe.
type tl2Lock struct{ word atomic.Uint64 }

func (l *tl2Lock) sample() (ver uint64, locked bool) {
	w := l.word.Load()
	return w &^ lockedBit, w&lockedBit != 0
}

// Engine implements meta.Engine for TL2 and Ordered TL2.
type Engine struct {
	cfg     meta.EngineConfig
	locks   *meta.Table[tl2Lock]
	clock   atomic.Uint64
	ordered bool
	depot   meta.Depot[Txn]
}

// New returns a fresh unordered TL2 engine for one run.
func New(cfg meta.EngineConfig) *Engine {
	cfg = cfg.Normalize()
	return &Engine{cfg: cfg, locks: meta.NewTable[tl2Lock](cfg.TableBits)}
}

// NewOrdered returns a fresh Ordered TL2 engine for one run.
func NewOrdered(cfg meta.EngineConfig) *Engine {
	e := New(cfg)
	e.ordered = true
	return e
}

// Name implements meta.Engine.
func (e *Engine) Name() string {
	if e.ordered {
		return "Ordered-TL2"
	}
	return "TL2"
}

// Mode implements meta.Engine.
func (e *Engine) Mode() meta.Mode {
	if e.ordered {
		return meta.ModeBlocked
	}
	return meta.ModeUnordered
}

// Stats implements meta.Engine.
func (e *Engine) Stats() *meta.Stats { return e.cfg.Stats }

// NewTxn implements meta.Engine.
func (e *Engine) NewTxn(age uint64) meta.Txn {
	return &Txn{eng: e, cell: e.cfg.Stats.DefaultCell(), age: age, rv: e.clock.Load()}
}

// NewPool implements meta.PoolEngine. TL2 descriptors are never
// published to shared metadata (locks are versioned words, not
// descriptor references), so recycling needs no generation checks:
// the pool just reuses the reads/writes backing arrays and resamples
// the read version.
func (e *Engine) NewPool() meta.TxnPool {
	return &pool{eng: e, cache: meta.NewCache(&e.depot), cell: e.cfg.Stats.NewCell()}
}

type pool struct {
	eng   *Engine
	cache *meta.Cache[Txn]
	cell  *meta.StatsCell
}

// NewTxn implements meta.TxnPool.
func (p *pool) NewTxn(age uint64) meta.Txn {
	t := p.cache.Get()
	if t == nil {
		return &Txn{eng: p.eng, cell: p.cell, age: age, rv: p.eng.clock.Load()}
	}
	t.age = age
	t.rv = p.eng.clock.Load()
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	return t
}

// Retire implements meta.TxnPool.
func (p *pool) Retire(x meta.Txn) {
	if t, ok := x.(*Txn); ok && t.eng == p.eng {
		p.cache.Put(t)
	}
}

type writeEntry struct {
	v    *meta.Var
	lock *tl2Lock
	val  uint64
}

// Txn is one TL2 transaction attempt.
type Txn struct {
	eng      *Engine
	cell     *meta.StatsCell
	age      uint64
	rv       uint64 // read version sampled at start
	reads    []*tl2Lock
	writes   []writeEntry
	acquired []*tl2Lock // commit-time lock scratch, reused across lives
}

// Age implements meta.Txn.
func (t *Txn) Age() uint64 { return t.age }

// Doomed implements meta.Txn: TL2 has no cross-transaction aborts.
func (t *Txn) Doomed() bool { return false }

// Read implements the TL2 read protocol: sample the stripe, load the
// value, re-sample; the stripe must be unlocked with version ≤ rv.
func (t *Txn) Read(v *meta.Var) uint64 {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].v == v {
			return t.writes[i].val
		}
	}
	lk := t.eng.locks.Of(v)
	for spin := 0; ; spin++ {
		ver, locked := lk.sample()
		val := v.Load()
		ver2, locked2 := lk.sample()
		if !locked && !locked2 && ver == ver2 && ver <= t.rv {
			t.reads = append(t.reads, lk)
			return val
		}
		if (locked || locked2) && spin < t.eng.cfg.SpinBudget {
			meta.Pause(spin) // a committer holds the stripe; brief wait
			continue
		}
		// Stale snapshot (stripe advanced past rv): abort and retry
		// with a fresh read version.
		t.cell.Abort(meta.CauseValidation)
		meta.PanicAbort(meta.CauseValidation)
	}
}

// Write buffers the update.
func (t *Txn) Write(v *meta.Var, x uint64) {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].v == v {
			t.writes[i].val = x
			return
		}
	}
	t.writes = append(t.writes, writeEntry{v: v, lock: t.eng.locks.Of(v), val: x})
}

// ReadSetValid implements meta.Revalidator for the sandbox.
func (t *Txn) ReadSetValid() bool {
	for _, lk := range t.reads {
		ver, locked := lk.sample()
		if locked || ver > t.rv {
			return false
		}
	}
	return true
}

// holds reports whether the stripe is among the first n distinct locks
// this transaction acquired at commit.
func (t *Txn) holds(lk *tl2Lock, acquired []*tl2Lock) bool {
	for _, h := range acquired {
		if h == lk {
			return true
		}
	}
	return false
}

// TryCommit performs the full TL2 commit. The ordered variant first
// waits for its turn in the predefined commit order; at its turn it is
// the only committer in the system, so lock acquisition cannot contend
// and a validation failure (stale snapshot) is repaired by the
// executor re-executing the transaction, which then commits for sure.
func (t *Txn) TryCommit() bool {
	if t.eng.ordered {
		if !t.eng.cfg.Order.WaitTurn(t.age, nil) {
			// The order halted (the run stopped on a fault): our turn
			// will never come, so abandon instead of parking forever.
			t.cell.Abort(meta.CauseOrder)
			return false
		}
	}
	ok := t.commitInner()
	if ok && t.eng.ordered {
		t.eng.cfg.Order.Complete(t.age)
	}
	return ok
}

func (t *Txn) commitInner() bool {
	if len(t.writes) == 0 {
		// Read-only transactions are consistent by construction
		// (every read post-validated against rv).
		return true
	}
	acquired := t.acquired[:0]
	for i := range t.writes {
		lk := t.writes[i].lock
		if t.holds(lk, acquired) {
			continue
		}
		got := false
		for spin := 0; spin < t.eng.cfg.SpinBudget; spin++ {
			w := lk.word.Load()
			if w&lockedBit == 0 && lk.word.CompareAndSwap(w, w|lockedBit) {
				got = true
				break
			}
			meta.Pause(spin)
		}
		if !got {
			t.release(acquired, 0)
			t.acquired = acquired[:0]
			t.cell.Abort(meta.CauseLockedWrite)
			return false
		}
		acquired = append(acquired, lk)
	}
	wv := t.eng.clock.Add(1)
	if wv != t.rv+1 {
		// Validate the read-set: unlocked (or locked by us) with
		// version ≤ rv.
		for _, lk := range t.reads {
			ver, locked := lk.sample()
			if ver > t.rv || (locked && !t.holds(lk, acquired)) {
				t.release(acquired, 0)
				t.acquired = acquired[:0]
				t.cell.Abort(meta.CauseValidation)
				return false
			}
		}
	}
	for i := range t.writes {
		t.writes[i].v.Store(t.writes[i].val)
	}
	t.release(acquired, wv)
	t.acquired = acquired[:0]
	return true
}

// release unlocks the acquired stripes, stamping version wv (wv==0
// restores the pre-lock version).
func (t *Txn) release(acquired []*tl2Lock, wv uint64) {
	for _, lk := range acquired {
		if wv == 0 {
			lk.word.Store(lk.word.Load() &^ lockedBit)
		} else {
			lk.word.Store(wv &^ lockedBit)
		}
	}
}

// Commit implements meta.Txn (no separate finalize step for TL2).
func (t *Txn) Commit() bool { return true }

// Cleanup implements meta.Txn. Backing arrays are kept for reuse.
func (t *Txn) Cleanup() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
}

// AbandonAttempt implements meta.Txn: nothing is shared before commit.
func (t *Txn) AbandonAttempt() {}
