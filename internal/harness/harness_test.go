package harness

import (
	"strings"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
)

func TestExecRunsWorkload(t *testing.T) {
	v := stm.NewVar(0)
	res, err := Exec(stm.OUL, 2, 100, func(tx stm.Tx, age int) {
		tx.Write(v, tx.Read(v)+1)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 100 || v.Load() != 100 {
		t.Fatalf("res=%+v v=%d", res, v.Load())
	}
}

func TestExecMutateApplies(t *testing.T) {
	var seen stm.Config
	_, err := Exec(stm.OWB, 3, 1, func(tx stm.Tx, age int) {}, func(c *stm.Config) {
		c.TableBits = 7
		seen = *c
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen.TableBits != 7 || seen.Algorithm != stm.OWB || seen.Workers != 3 {
		t.Fatalf("mutate saw %+v", seen)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.Add("alpha", "1")
	tab.Add("beta-long-name", "22")
	out := tab.String()
	if !strings.Contains(out, "## Demo") || !strings.Contains(out, "beta-long-name") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	var csv strings.Builder
	tab.WriteCSV(&csv)
	if !strings.HasPrefix(csv.String(), "name,value\n") {
		t.Fatalf("csv header wrong: %q", csv.String())
	}
	if !strings.Contains(csv.String(), "alpha,1") {
		t.Fatalf("csv rows wrong: %q", csv.String())
	}
}

func TestFormatters(t *testing.T) {
	res := stm.Result{N: 5000, Elapsed: time.Second}
	if KTxPerSec(res) != "5.0" {
		t.Fatalf("KTxPerSec = %q", KTxPerSec(res))
	}
	if TxPerMSec(res) != "5.0" {
		t.Fatalf("TxPerMSec = %q", TxPerMSec(res))
	}
	if Seconds(res) != "1.000" {
		t.Fatalf("Seconds = %q", Seconds(res))
	}
	if AbortPct(res) != "0.00" {
		t.Fatalf("AbortPct = %q", AbortPct(res))
	}
	if I(42) != "42" || F(3.14159) != "3.14" {
		t.Fatalf("I/F formatting: %q %q", I(42), F(3.14159))
	}
}
