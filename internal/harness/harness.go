// Package harness runs experiments and renders the paper-style tables
// the cmd tools and benchmarks print: throughput/time series across
// thread counts and algorithms, abort percentages, and abort-cause
// breakdowns.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/orderedstm/ostm/stm"
)

// Exec runs n transactions of body under the given algorithm and
// worker count, with optional config tweaks applied through mutate.
func Exec(alg stm.Algorithm, workers, n int, body stm.Body, mutate func(*stm.Config)) (stm.Result, error) {
	cfg := stm.Config{Algorithm: alg, Workers: workers}
	if mutate != nil {
		mutate(&cfg)
	}
	ex, err := stm.NewExecutor(cfg)
	if err != nil {
		return stm.Result{}, err
	}
	return ex.Run(n, body)
}

// Table is a simple aligned-text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable returns a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteCSV renders the table as CSV (no quoting needed for our cells).
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// WriteJSON renders the table as one machine-readable JSON object per
// line ({"title", "header", "rows"}), the format the cmd tools emit
// behind their -json flags so successive benchmark runs can be
// archived (BENCH_*.json) and diffed across PRs.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{Title: t.Title, Header: t.Header, Rows: t.Rows})
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// KTxPerSec formats a result's throughput in the paper's "k Tx/Sec"
// unit.
func KTxPerSec(r stm.Result) string {
	return fmt.Sprintf("%.1f", r.Throughput()/1000)
}

// TxPerMSec formats throughput in the paper's Figure 2 "Tx/mSec" unit.
func TxPerMSec(r stm.Result) string {
	return fmt.Sprintf("%.1f", r.Throughput()/1000)
}

// AbortPct formats the abort percentage (aborts per commit × 100; can
// exceed 100 as in the paper's log-scale abort plots).
func AbortPct(r stm.Result) string {
	return fmt.Sprintf("%.2f", 100*r.Stats.AbortRatio())
}

// Seconds formats elapsed time in seconds.
func Seconds(r stm.Result) string {
	return fmt.Sprintf("%.3f", r.Elapsed.Seconds())
}

// F formats a float compactly.
func F(x float64) string { return fmt.Sprintf("%.3g", x) }

// I formats an int.
func I(x int) string { return fmt.Sprintf("%d", x) }
