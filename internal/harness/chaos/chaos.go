// Package chaos is the fault-injection harness: it drives a durable
// ordered engine (unsharded or sharded) over a seeded faultfs
// schedule and checks the two safety properties the failure model
// promises, whatever the disk does:
//
//   - no phantom durables: every transaction whose WaitDurable ticket
//     resolved nil is inside the recovered log;
//   - state match: replaying the recovered log through a fresh engine
//     produces exactly the sequential fold of its records — recovery
//     ≡ replay ≡ sequential execution of the acknowledged prefix.
//
// Both the workload and the fault schedule are deterministic in the
// seed, so a failing (seed, config) pair replays exactly.
package chaos

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/orderedstm/ostm/internal/faultfs"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

// Config parameterizes one chaos run.
type Config struct {
	// Seed derives both the fault schedule (faultfs.FromSeed) and the
	// deterministic transfer stream. Seed 0 means a clean disk: the
	// injector is installed but given no schedule, so the run doubles
	// as the harness's own baseline.
	Seed uint64
	// Alg is the engine; it must enforce the predefined commit order.
	Alg stm.Algorithm
	// Shards: 0 runs the unsharded Pipeline; >= 2 runs a sharded
	// router with a cross-heavy stream (every second transaction spans
	// two shards).
	Shards int
	// Txns is the stream length (default 2000).
	Txns int
	// Accounts is the Var pool size (default 64).
	Accounts int
	// Workers per engine (default 4).
	Workers int
	// OnFail is the WAL's terminal-failure policy under test.
	OnFail wal.FailPolicy
	// Dir is the WAL directory (required, must exist and be empty).
	Dir string
}

// Result is one run's outcome, shaped for JSON emission (streambench
// -faults) and jq gating in CI.
type Result struct {
	Seed     uint64 `json:"seed"`
	Alg      string `json:"alg"`
	Shards   int    `json:"shards"`
	OnFail   string `json:"onfail"`
	Txns     int    `json:"txns"`
	Injected uint64 `json:"injected"` // faults the schedule actually fired
	Degraded bool   `json:"degraded"` // writer detached (Degrade policy)

	AckedDurable  int `json:"acked_durable"`  // tickets resolved nil
	FailedTickets int `json:"failed_tickets"` // tickets resolved with an error
	RecoveredTxns int `json:"recovered_txns"` // records in the recovered log

	NoPhantomDurable bool `json:"no_phantom_durable"`
	StateMatch       bool `json:"state_match"`

	CloseErr string   `json:"close_error,omitempty"`
	FaultLog []string `json:"fault_log,omitempty"`
}

// Ok reports whether both safety properties held.
func (r Result) Ok() bool { return r.NoPhantomDurable && r.StateMatch }

const (
	defaultTxns     = 2000
	defaultAccounts = 64
	defaultWorkers  = 4
	initialBalance  = 1000
	// waitBudget bounds every ticket wait: after Close all tickets are
	// resolved, so a hit means a lost resolution — report it instead
	// of hanging the harness.
	waitBudget = 60 * time.Second
)

// The wire format: u32 from | u32 to. The body moves age%5+1 from
// `from` to `to` when the balance covers it — the same conditional
// transfer the stm durability tests fold.
func encodeTransfer(from, to uint32) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], from)
	binary.LittleEndian.PutUint32(b[4:8], to)
	return b[:]
}

func decodeTransfer(data []byte) (from, to uint32, err error) {
	if len(data) != 8 {
		return 0, 0, fmt.Errorf("chaos: bad transfer payload length %d", len(data))
	}
	return binary.LittleEndian.Uint32(data[0:4]), binary.LittleEndian.Uint32(data[4:8]), nil
}

func transferBody(accounts []stm.Var, from, to uint32) stm.Body {
	return func(tx stm.Tx, age int) {
		amt := uint64(age%5) + 1
		bf := tx.Read(&accounts[from])
		if bf >= amt && from != to {
			tx.Write(&accounts[from], bf-amt)
			tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
		}
	}
}

// codec is the unsharded stm.Codec over the pool.
type codec struct{ accounts []stm.Var }

func (c codec) Encode(payload any) ([]byte, error) {
	p, ok := payload.([]byte)
	if !ok {
		return nil, fmt.Errorf("chaos: unexpected payload %T", payload)
	}
	return p, nil
}

func (c codec) Decode(data []byte) (stm.Body, error) {
	from, to, err := decodeTransfer(data)
	if err != nil {
		return nil, err
	}
	if int(from) >= len(c.accounts) || int(to) >= len(c.accounts) {
		return nil, fmt.Errorf("chaos: transfer %d→%d outside pool %d", from, to, len(c.accounts))
	}
	return transferBody(c.accounts, from, to), nil
}

// shardCodec adds the access declaration for the sharded router.
type shardCodec struct{ accounts []stm.Var }

func (c shardCodec) Encode(payload any) ([]byte, error) {
	return codec{c.accounts}.Encode(payload)
}

func (c shardCodec) Decode(data []byte) (stm.Access, stm.Body, error) {
	from, to, err := decodeTransfer(data)
	if err != nil {
		return stm.Access{}, nil, err
	}
	if int(from) >= len(c.accounts) || int(to) >= len(c.accounts) {
		return stm.Access{}, nil, fmt.Errorf("chaos: transfer %d→%d outside pool %d", from, to, len(c.accounts))
	}
	return stm.Touches(&c.accounts[from], &c.accounts[to]),
		transferBody(c.accounts, from, to), nil
}

// stream derives the deterministic transfer for global age g. In
// sharded mode every second transaction pairs accounts from two
// different partitions (cross-heavy); the rest stay partition-local.
type stream struct {
	accounts []stm.Var
	shards   int
	buckets  [][]int // pool indices per owning shard (sharded only)
}

func newStream(accounts []stm.Var, shards int) *stream {
	st := &stream{accounts: accounts, shards: shards}
	if shards > 1 {
		st.buckets = make([][]int, shards)
		for i := range accounts {
			s := shard.Of(&accounts[i], shards)
			st.buckets[s] = append(st.buckets[s], i)
		}
	}
	return st
}

func (st *stream) transferFor(g uint64) (from, to uint32) {
	if st.shards > 1 {
		a := int(g) % st.shards
		b := a // same shard: single-partition
		if g%2 == 0 {
			b = (a + 1) % st.shards // cross-shard
		}
		bka, bkb := st.buckets[a], st.buckets[b]
		from = uint32(bka[int(g*7)%len(bka)])
		to = uint32(bkb[int(g*13+1)%len(bkb)])
		return from, to
	}
	n := uint64(len(st.accounts))
	return uint32((g * 7) % n), uint32((g*13 + 1) % n)
}

// ticket is the subset of stm/shard ticket behavior the harness needs.
type ticket interface {
	Done() <-chan struct{}
	Err() (error, bool)
}

// Run executes one chaos run and evaluates the safety properties.
// The returned error reports harness-level breakage (bad config, an
// unresolved ticket); injected faults land in the Result.
func Run(cfg Config) (Result, error) {
	if cfg.Txns <= 0 {
		cfg.Txns = defaultTxns
	}
	if cfg.Accounts <= 0 {
		cfg.Accounts = defaultAccounts
	}
	if cfg.Workers <= 0 {
		cfg.Workers = defaultWorkers
	}
	if cfg.Dir == "" {
		return Result{}, errors.New("chaos: Config.Dir required")
	}
	if !cfg.Alg.Ordered() {
		return Result{}, fmt.Errorf("chaos: %v does not enforce the predefined commit order", cfg.Alg)
	}
	res := Result{
		Seed:   cfg.Seed,
		Alg:    cfg.Alg.String(),
		Shards: cfg.Shards,
		OnFail: cfg.OnFail.String(),
		Txns:   cfg.Txns,
	}

	fs := faultfs.New(nil) // seed 0: clean disk
	if cfg.Seed != 0 {
		fs = faultfs.FromSeed(nil, cfg.Seed)
	}
	w, err := wal.Create(cfg.Dir, 0, wal.Options{
		FS:           fs,
		SyncEveryN:   8,
		SegmentBytes: 4 << 10, // frequent rolls so open/rename faults get a target
		Retry:        wal.RetryPolicy{Max: 2},
		OnFail:       cfg.OnFail,
	})
	if err != nil {
		// The schedule can kill the log before it exists (open #1..#4
		// ENOSPC). Nothing was acknowledged, so the properties hold
		// vacuously.
		res.Injected = fs.Injected()
		res.FaultLog = fs.Log()
		res.NoPhantomDurable = true
		res.StateMatch = true
		res.CloseErr = err.Error()
		return res, nil
	}

	accounts := stm.NewVars(cfg.Accounts)
	for i := range accounts {
		accounts[i].Store(initialBalance)
	}
	st := newStream(accounts, cfg.Shards)

	// Submit the stream and collect WaitDurable tickets. Submission
	// errors (a fault stopping the engine) end the stream early — the
	// accepted prefix is still checked. Every paceEvery submissions the
	// driver blocks on the latest ticket: an unpaced submitter lets the
	// group-commit machinery coalesce the whole run into a handful of
	// flushes and fsyncs, which would leave most fault schedules
	// without a target op to land on.
	const paceEvery = 64
	type sub struct {
		g  uint64
		tk ticket
	}
	var subs []sub
	var closeErr error
	pace := func(g uint64, tk ticket) bool {
		if (g+1)%paceEvery != 0 {
			return true
		}
		select {
		case <-tk.Done():
			return true
		case <-time.After(waitBudget):
			return false
		}
	}
	if cfg.Shards > 1 {
		sp, err := shard.New(shard.Config{
			Shards:       cfg.Shards,
			Pipeline:     stm.Config{Algorithm: cfg.Alg, Workers: cfg.Workers},
			WAL:          w,
			Codec:        shardCodec{accounts},
			WaitDurable:  true,
			FenceTimeout: 30 * time.Second, // backstop: a wedged rendezvous fails, not hangs
		})
		if err != nil {
			w.Close()
			return res, err
		}
		for g := uint64(0); g < uint64(cfg.Txns); g++ {
			from, to := st.transferFor(g)
			tk, err := sp.SubmitPayload(encodeTransfer(from, to))
			if err != nil {
				break
			}
			subs = append(subs, sub{g: g, tk: tk})
			if !pace(g, tk) {
				break
			}
		}
		closeErr = sp.Close()
	} else {
		p, err := stm.NewPipeline(stm.Config{
			Algorithm:   cfg.Alg,
			Workers:     cfg.Workers,
			WAL:         w,
			Codec:       codec{accounts},
			WaitDurable: true,
		})
		if err != nil {
			w.Close()
			return res, err
		}
		for g := uint64(0); g < uint64(cfg.Txns); g++ {
			from, to := st.transferFor(g)
			tk, err := p.SubmitPayload(encodeTransfer(from, to))
			if err != nil {
				break
			}
			subs = append(subs, sub{g: g, tk: tk})
			if !pace(g, tk) {
				break
			}
		}
		closeErr = p.Close()
	}
	if closeErr != nil {
		res.CloseErr = closeErr.Error()
	}
	res.Degraded = w.Degraded()
	w.Close()
	res.Injected = fs.Injected()
	res.FaultLog = fs.Log()

	// Classify every ticket. After Close all of them are resolved;
	// an unresolved one is a harness-level bug.
	deadline := time.After(waitBudget)
	var acked []uint64
	for _, s := range subs {
		select {
		case <-s.tk.Done():
		case <-deadline:
			return res, fmt.Errorf("chaos: ticket for age %d never resolved", s.g)
		}
		if err, _ := s.tk.Err(); err == nil {
			acked = append(acked, s.g)
		} else {
			res.FailedTickets++
		}
	}
	res.AckedDurable = len(acked)

	// Recovery reads the surviving log with the real filesystem — the
	// injector only ever targeted the live writer.
	rec, err := wal.Recover(cfg.Dir)
	if err != nil {
		// An unrecoverable log with acknowledged transactions is a
		// phantom-durable failure; without acks it is merely a dead
		// disk that never promised anything.
		res.NoPhantomDurable = len(acked) == 0
		res.StateMatch = len(acked) == 0
		res.CloseErr = joinErr(res.CloseErr, err)
		return res, nil
	}
	res.RecoveredTxns = rec.Count()

	// No phantom durables: every acknowledged age is in the log.
	res.NoPhantomDurable = true
	for _, g := range acked {
		if g < rec.First() || g >= rec.Next() {
			res.NoPhantomDurable = false
			break
		}
	}

	// State match: a fresh engine replaying the recovered records in
	// age order reaches exactly the integer-model fold of the same
	// records.
	match, err := replayMatches(cfg, rec)
	if err != nil {
		return res, err
	}
	res.StateMatch = match
	return res, nil
}

// replayMatches rebuilds state from the recovered records through a
// fresh (volatile) engine and compares it to the sequential fold.
func replayMatches(cfg Config, rec *wal.Recovery) (bool, error) {
	accounts := stm.NewVars(cfg.Accounts)
	model := make([]uint64, cfg.Accounts)
	for i := range accounts {
		accounts[i].Store(initialBalance)
		model[i] = initialBalance
	}
	for _, r := range rec.Records() {
		from, to, err := decodeTransfer(r.Payload)
		if err != nil {
			return false, err
		}
		amt := r.Age%5 + 1
		if model[from] >= amt && from != to {
			model[from] -= amt
			model[to] += amt
		}
	}
	var replayErr error
	if cfg.Shards > 1 {
		sp, err := shard.New(shard.Config{
			Shards:   cfg.Shards,
			Pipeline: stm.Config{Algorithm: cfg.Alg, Workers: cfg.Workers},
		})
		if err != nil {
			return false, err
		}
		sc := shardCodec{accounts}
		replayErr = rec.Replay(func(age uint64, payload []byte) error {
			access, body, err := sc.Decode(payload)
			if err != nil {
				return err
			}
			_, err = sp.Submit(access, body)
			return err
		})
		if err := sp.Close(); err != nil && replayErr == nil {
			replayErr = err
		}
	} else {
		p, err := stm.NewPipeline(stm.Config{
			Algorithm: cfg.Alg,
			Workers:   cfg.Workers,
			FirstAge:  rec.First(),
		})
		if err != nil {
			return false, err
		}
		c := codec{accounts}
		replayErr = rec.Replay(func(age uint64, payload []byte) error {
			body, err := c.Decode(payload)
			if err != nil {
				return err
			}
			_, err = p.Submit(body)
			return err
		})
		if err := p.Close(); err != nil && replayErr == nil {
			replayErr = err
		}
	}
	if replayErr != nil {
		return false, replayErr
	}
	for i := range accounts {
		if accounts[i].Load() != model[i] {
			return false, nil
		}
	}
	return true, nil
}

func joinErr(prev string, err error) string {
	if prev == "" {
		return err.Error()
	}
	return prev + "; " + err.Error()
}
