package chaos

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/wal"
)

// TestChaosMatrix drives every ordered engine through seeded fault
// schedules, unsharded and sharded (cross-heavy), under both terminal
// failure policies, and checks the two safety properties on each run.
func TestChaosMatrix(t *testing.T) {
	// Seeds chosen to produce live schedules (write, sync, and open
	// faults); a rename-only seed would pass vacuously since the
	// harness never checkpoints. The counter guards that choice.
	seeds := []uint64{1, 5, 8}
	if testing.Short() {
		seeds = seeds[:1]
	}
	var totalInjected atomic.Uint64
	t.Cleanup(func() { // runs after every parallel subtest finished
		if !t.Failed() && totalInjected.Load() == 0 {
			t.Errorf("no run injected a fault — the seed set went vacuous")
		}
	})
	for _, alg := range stm.OrderedAlgorithms() {
		for _, shards := range []int{0, 2} {
			for _, onFail := range []wal.FailPolicy{wal.FailStop, wal.Degrade} {
				alg, shards, onFail := alg, shards, onFail
				name := fmt.Sprintf("%s/shards=%d/%s", alg, shards, onFail)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					for _, seed := range seeds {
						txns := 800
						if shards > 0 {
							txns = 300 // cross-heavy rendezvous traffic is slower
						}
						res, err := Run(Config{
							Seed:   seed,
							Alg:    alg,
							Shards: shards,
							Txns:   txns,
							OnFail: onFail,
							Dir:    t.TempDir(),
						})
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						totalInjected.Add(res.Injected)
						if !res.NoPhantomDurable {
							t.Errorf("seed %d: phantom durable — %d acked, log recovered to %d (injected=%d, faults=%v)",
								seed, res.AckedDurable, res.RecoveredTxns, res.Injected, res.FaultLog)
						}
						if !res.StateMatch {
							t.Errorf("seed %d: recovered state diverged from the sequential fold (injected=%d, faults=%v)",
								seed, res.Injected, res.FaultLog)
						}
					}
				})
			}
		}
	}
}

// TestChaosCleanDisk: seed 0 produces an empty fault schedule, so a
// chaos run is just a durable run — everything acks, everything
// recovers, nothing degrades.
func TestChaosCleanDisk(t *testing.T) {
	res, err := Run(Config{
		Seed:   0,
		Alg:    stm.OUL,
		Txns:   500,
		OnFail: wal.FailStop,
		Dir:    t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected != 0 {
		t.Fatalf("clean-disk run injected %d faults: %v", res.Injected, res.FaultLog)
	}
	if res.Degraded {
		t.Fatal("clean-disk run degraded")
	}
	if res.AckedDurable != 500 || res.RecoveredTxns != 500 {
		t.Fatalf("acked=%d recovered=%d, want 500/500", res.AckedDurable, res.RecoveredTxns)
	}
	if !res.Ok() {
		t.Fatalf("clean-disk run failed safety checks: %+v", res)
	}
}

// TestChaosRejectsUnorderedAlgorithm guards the harness precondition:
// the safety argument depends on the predefined commit order.
func TestChaosRejectsUnorderedAlgorithm(t *testing.T) {
	if _, err := Run(Config{Alg: stm.TL2, Dir: t.TempDir()}); err == nil {
		t.Fatal("unordered algorithm accepted")
	}
}
