package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(54321)
	same := 0
	a2 := New(12345)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds too similar: %d collisions", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 with seed 0 (from the published
	// reference implementation).
	s := NewSplitMix64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("SplitMix64 value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64NonTrivial(t *testing.T) {
	if Mix64(0) == 0 || Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 looks broken")
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nCoversRange(t *testing.T) {
	r := New(7)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Uint64n(10)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d of 10 values seen", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range out of bounds: %d", v)
		}
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("mean = %v", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed).Perm(30)
		seen := make([]bool, 30)
		for _, x := range p {
			if x < 0 || x >= 30 || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffle(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r := New(9)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 8)
	for _, x := range xs {
		seen[x] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}

func TestZeroStateAvoided(t *testing.T) {
	// xoshiro from an all-zero state emits zeros forever; the seeding
	// path must avoid it for every seed.
	r := New(0)
	allZero := true
	for i := 0; i < 8; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("generator stuck at zero")
	}
}
