// Package rng provides small, fast, deterministic random number
// generators (SplitMix64 and xoshiro256**). Workloads seed one
// generator per (run seed, transaction age) so that a re-executed
// transaction attempt replays exactly the same operation sequence —
// a requirement of the speculative execution model, and what makes
// the repository's determinism oracles exact.
package rng

import "math"

// SplitMix64 is Steele, Lea & Flood's SplitMix64: a tiny generator
// mainly used here for seeding and hashing.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 hashes x through the SplitMix64 finalizer (stateless).
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Rand is xoshiro256**, a fast all-purpose generator.
type Rand struct{ s [4]uint64 }

// New returns a xoshiro256** generator seeded from seed via SplitMix64
// (the recommended seeding procedure).
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n(0)")
	}
	// Lemire's nearly-divisionless bounded generation (rejection-free
	// fast path).
	for {
		x := r.Uint64()
		hi, lo := mul64(x, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + (t >> 32) + ((t&mask32 + aLo*bHi) >> 32)
	return hi, lo
}

// Intn returns a uniform int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Range returns a uniform int in [lo, hi). hi must exceed lo.
func (r *Rand) Range(lo, hi int) int {
	if hi <= lo {
		panic("rng: empty range")
	}
	return lo + r.Intn(hi-lo)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar
// method); deterministic given the stream position.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
