package sig

import (
	"testing"
	"testing/quick"

	"github.com/orderedstm/ostm/internal/rng"
)

func TestNoFalseNegatives(t *testing.T) {
	f := func(ids []uint64) bool {
		flt := New(64)
		for _, id := range ids {
			flt.Add(id)
		}
		for _, id := range ids {
			if !flt.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectsDetectsSharedElement(t *testing.T) {
	f := func(a, b []uint64, shared uint64) bool {
		fa, fb := New(256), New(256)
		for _, id := range a {
			fa.Add(id)
		}
		for _, id := range b {
			fb.Add(id)
		}
		fa.Add(shared)
		fb.Add(shared)
		return fa.Intersects(fb) && fb.Intersects(fa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFiltersNeverIntersect(t *testing.T) {
	a, b := New(64), New(64)
	if a.Intersects(b) {
		t.Fatal("empty filters intersect")
	}
	if !a.Empty() || a.Len() != 0 {
		t.Fatal("fresh filter not empty")
	}
}

func TestReset(t *testing.T) {
	f := New(64)
	f.Add(1234)
	if f.Empty() {
		t.Fatal("filter empty after Add")
	}
	f.Reset()
	if !f.Empty() || f.FillRatio() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSizing(t *testing.T) {
	if New(1).Bits() != 64 {
		t.Fatalf("minimum size not enforced: %d", New(1).Bits())
	}
	if New(65).Bits() != 128 {
		t.Fatalf("rounding up failed: %d", New(65).Bits())
	}
	if New(256).Bits() != 256 {
		t.Fatalf("power of two changed: %d", New(256).Bits())
	}
}

func TestMismatchedSizesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(64).Intersects(New(128))
}

// TestFalsePositiveRateOrderOfMagnitude: with 15 elements in 64 bits
// (paper-like micro-transaction sizes), false conflicts must occur but
// not dominate; with 1024 bits they must be rare. This pins the
// mechanism behind STMLite's high-thread degradation.
func TestFalsePositiveRateOrderOfMagnitude(t *testing.T) {
	measure := func(bits uint, inserts int) float64 {
		r := rng.New(42)
		trials, fp := 3000, 0
		for i := 0; i < trials; i++ {
			f := New(bits)
			for j := 0; j < inserts; j++ {
				f.Add(r.Uint64())
			}
			if f.Contains(r.Uint64()) {
				fp++
			}
		}
		return float64(fp) / float64(trials)
	}
	small := measure(64, 15)
	large := measure(1024, 15)
	if small < 0.02 {
		t.Fatalf("64-bit filter with 15 elements should show false positives, got %.4f", small)
	}
	if large > small/4 {
		t.Fatalf("1024-bit filter should be far cleaner: small=%.4f large=%.4f", small, large)
	}
}

func TestFillRatio(t *testing.T) {
	f := New(64)
	f.Add(1)
	got := f.FillRatio()
	if got <= 0 || got > 2.0/64+1e-9 {
		t.Fatalf("fill ratio = %v", got)
	}
}
