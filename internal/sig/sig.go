// Package sig provides the Bloom-filter signatures STMLite uses to
// summarize transaction read- and write-sets (§8: "STMLite ... replaces
// the need for constructing a read-set by leveraging signatures (Bloom
// Filters) ... we used a signature of size 64").
//
// A signature never yields false negatives: if an element was added,
// every query and intersection involving it reports it. False
// positives (and therefore false conflicts) occur with a probability
// that grows as signatures fill — the source of STMLite's degradation
// at high thread counts that the paper observes.
package sig

import "math/bits"

// Filter is a fixed-size Bloom filter over 64-bit identities, using
// two independent SplitMix64-derived probes.
type Filter struct {
	words []uint64
	mask  uint64 // bit-index mask (size-1)
	n     int    // elements added
}

// MinBits is the smallest supported filter size.
const MinBits = 64

// New returns a filter with the given number of bits (rounded up to a
// power of two, at least MinBits).
func New(bitsize uint) *Filter {
	if bitsize < MinBits {
		bitsize = MinBits
	}
	// round up to a power of two
	if bitsize&(bitsize-1) != 0 {
		bitsize = 1 << bits.Len(bitsize)
	}
	return &Filter{words: make([]uint64, bitsize/64), mask: uint64(bitsize - 1)}
}

// splitmix64 is the SplitMix64 finalizer, a strong 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (f *Filter) probes(id uint64) (uint64, uint64) {
	h := splitmix64(id)
	return h & f.mask, (h >> 32) & f.mask
}

// Add inserts id.
func (f *Filter) Add(id uint64) {
	b1, b2 := f.probes(id)
	f.words[b1/64] |= 1 << (b1 % 64)
	f.words[b2/64] |= 1 << (b2 % 64)
	f.n++
}

// Contains reports whether id may have been added (false positives
// possible, false negatives impossible).
func (f *Filter) Contains(id uint64) bool {
	b1, b2 := f.probes(id)
	return f.words[b1/64]&(1<<(b1%64)) != 0 && f.words[b2/64]&(1<<(b2%64)) != 0
}

// Intersects reports whether the two filters share any set bit — the
// conflict test STMLite's commit manager applies between a read
// signature and a committed write signature.
func (f *Filter) Intersects(g *Filter) bool {
	if len(f.words) != len(g.words) {
		panic("sig: mismatched filter sizes")
	}
	for i := range f.words {
		if f.words[i]&g.words[i] != 0 {
			return true
		}
	}
	return false
}

// Empty reports whether nothing was added.
func (f *Filter) Empty() bool { return f.n == 0 }

// Len returns the number of elements added.
func (f *Filter) Len() int { return f.n }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint { return uint(len(f.words) * 64) }

// Reset clears the filter.
func (f *Filter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.n = 0
}

// FillRatio returns the fraction of set bits (diagnostics and tests).
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.words {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(f.words)*64)
}
