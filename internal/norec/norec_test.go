package norec

import (
	"testing"

	"github.com/orderedstm/ostm/internal/meta"
)

func cfg() meta.EngineConfig { return meta.EngineConfig{}.Normalize() }

func TestCommitPublishesAndBumpsSeq(t *testing.T) {
	e := New(cfg())
	v := meta.NewVar(1)
	tx := e.NewTxn(0).(*Txn)
	if tx.Read(v) != 1 {
		t.Fatal("read")
	}
	tx.Write(v, 2)
	if tx.Read(v) != 2 {
		t.Fatal("read-own-write")
	}
	if !tx.TryCommit() {
		t.Fatal("commit")
	}
	if v.Load() != 2 {
		t.Fatal("publish")
	}
	if e.seq.Load() == 0 || e.seq.Load()%2 != 0 {
		t.Fatalf("sequence lock ended odd: %d", e.seq.Load())
	}
}

func TestValueValidationTolaratesSameValue(t *testing.T) {
	// NOrec's value-based validation: a concurrent commit that writes
	// the SAME value to a read location does not abort the reader —
	// the property behind its Labyrinth win (§8).
	e := New(cfg())
	v := meta.NewVar(7)
	u := meta.NewVar(0)
	r := e.NewTxn(0).(*Txn)
	if r.Read(v) != 7 {
		t.Fatal("read")
	}
	w := e.NewTxn(1).(*Txn)
	w.Write(v, 7) // same value
	if !w.TryCommit() {
		t.Fatal("writer commit")
	}
	r.Write(u, 1)
	if !r.TryCommit() {
		t.Fatal("same-value overwrite aborted the reader (value validation broken)")
	}
}

func TestValueValidationCatchesChange(t *testing.T) {
	e := New(cfg())
	v := meta.NewVar(7)
	u := meta.NewVar(0)
	r := e.NewTxn(0).(*Txn)
	_ = r.Read(v)
	w := e.NewTxn(1).(*Txn)
	w.Write(v, 8) // different value
	if !w.TryCommit() {
		t.Fatal("writer commit")
	}
	r.Write(u, 1)
	if r.TryCommit() {
		t.Fatal("changed value survived commit validation")
	}
	if !r.ReadSetValid() {
		// expected: the read set is genuinely stale
	} else {
		t.Fatal("ReadSetValid claims a stale set is valid")
	}
	if u.Load() != 0 {
		t.Fatal("failed commit leaked")
	}
}

func TestReadOnlyNeverAcquiresSeq(t *testing.T) {
	e := New(cfg())
	v := meta.NewVar(3)
	before := e.seq.Load()
	tx := e.NewTxn(0).(*Txn)
	_ = tx.Read(v)
	if !tx.TryCommit() {
		t.Fatal("read-only commit")
	}
	if e.seq.Load() != before {
		t.Fatal("read-only commit moved the global clock")
	}
}

func TestOrderedTurnHandoff(t *testing.T) {
	e := NewOrdered(cfg())
	if e.Name() != "Ordered-NOrec" || e.Mode() != meta.ModeBlocked {
		t.Fatal("identity wrong")
	}
	v := meta.NewVar(0)
	t1 := e.NewTxn(1).(*Txn)
	t1.Write(v, 11)
	done := make(chan bool)
	go func() { done <- t1.TryCommit() }()
	t0 := e.NewTxn(0).(*Txn)
	t0.Write(v, 10)
	if !t0.TryCommit() {
		t.Fatal("t0 commit")
	}
	if !<-done {
		t.Fatal("t1 commit after turn")
	}
	if v.Load() != 11 {
		t.Fatalf("final = %d", v.Load())
	}
}
