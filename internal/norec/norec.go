// Package norec implements NOrec (Dalessandro, Spear, Scott, PPoPP
// 2010) in its unordered form and the ordered variant used as a
// baseline in the paper (§8).
//
// NOrec has no ownership records at all: a single global sequence lock
// serializes commits and readers revalidate their read-set *by value*
// whenever the global clock moves. Value-based validation is what lets
// NOrec win on Labyrinth-style workloads (two transactions writing the
// same value to the same location do not conflict) and what removes
// lock-aliasing false conflicts entirely.
package norec

import (
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
)

// Engine implements meta.Engine for NOrec and Ordered NOrec.
type Engine struct {
	cfg     meta.EngineConfig
	seq     atomic.Uint64 // global sequence lock: odd = committer active
	ordered bool
	depot   meta.Depot[Txn]
}

// New returns a fresh unordered NOrec engine for one run.
func New(cfg meta.EngineConfig) *Engine {
	return &Engine{cfg: cfg.Normalize()}
}

// NewOrdered returns a fresh Ordered NOrec engine for one run.
func NewOrdered(cfg meta.EngineConfig) *Engine {
	e := New(cfg)
	e.ordered = true
	return e
}

// Name implements meta.Engine.
func (e *Engine) Name() string {
	if e.ordered {
		return "Ordered-NOrec"
	}
	return "NOrec"
}

// Mode implements meta.Engine.
func (e *Engine) Mode() meta.Mode {
	if e.ordered {
		return meta.ModeBlocked
	}
	return meta.ModeUnordered
}

// Stats implements meta.Engine.
func (e *Engine) Stats() *meta.Stats { return e.cfg.Stats }

// waitEven spins until the sequence lock is even (no committer) and
// returns it.
func (e *Engine) waitEven() uint64 {
	for spin := 0; ; spin++ {
		s := e.seq.Load()
		if s&1 == 0 {
			return s
		}
		meta.Pause(spin)
	}
}

// NewTxn implements meta.Engine.
func (e *Engine) NewTxn(age uint64) meta.Txn {
	return &Txn{eng: e, cell: e.cfg.Stats.DefaultCell(), age: age, snap: e.waitEven()}
}

// NewPool implements meta.PoolEngine. NOrec has no shared descriptor
// references at all (one global sequence lock, value-based
// validation), so the pool just reuses the reads/writes backing arrays
// and resamples the snapshot.
func (e *Engine) NewPool() meta.TxnPool {
	return &pool{eng: e, cache: meta.NewCache(&e.depot), cell: e.cfg.Stats.NewCell()}
}

type pool struct {
	eng   *Engine
	cache *meta.Cache[Txn]
	cell  *meta.StatsCell
}

// NewTxn implements meta.TxnPool.
func (p *pool) NewTxn(age uint64) meta.Txn {
	t := p.cache.Get()
	if t == nil {
		return &Txn{eng: p.eng, cell: p.cell, age: age, snap: p.eng.waitEven()}
	}
	t.age = age
	t.snap = p.eng.waitEven()
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	return t
}

// Retire implements meta.TxnPool.
func (p *pool) Retire(x meta.Txn) {
	if t, ok := x.(*Txn); ok && t.eng == p.eng {
		p.cache.Put(t)
	}
}

type readEntry struct {
	v   *meta.Var
	val uint64
}

type writeEntry struct {
	v   *meta.Var
	val uint64
}

// Txn is one NOrec transaction attempt.
type Txn struct {
	eng    *Engine
	cell   *meta.StatsCell
	age    uint64
	snap   uint64
	reads  []readEntry
	writes []writeEntry
}

// Age implements meta.Txn.
func (t *Txn) Age() uint64 { return t.age }

// Doomed implements meta.Txn: NOrec has no cross-transaction aborts.
func (t *Txn) Doomed() bool { return false }

// revalidate waits for a quiescent global clock and checks every read
// still returns the recorded value; it reports the new snapshot.
func (t *Txn) revalidate() (uint64, bool) {
	for {
		s := t.eng.waitEven()
		for i := range t.reads {
			if t.reads[i].v.Load() != t.reads[i].val {
				return 0, false
			}
		}
		if t.eng.seq.Load() == s {
			return s, true
		}
	}
}

// ReadSetValid implements meta.Revalidator for the sandbox.
func (t *Txn) ReadSetValid() bool {
	_, ok := t.revalidate()
	return ok
}

// Read implements the NOrec read protocol: load, then extend the
// snapshot by value-revalidating whenever the global clock moved.
func (t *Txn) Read(v *meta.Var) uint64 {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].v == v {
			return t.writes[i].val
		}
	}
	val := v.Load()
	for t.eng.seq.Load() != t.snap {
		snap, ok := t.revalidate()
		if !ok {
			t.cell.Abort(meta.CauseValidation)
			meta.PanicAbort(meta.CauseValidation)
		}
		t.snap = snap
		val = v.Load()
	}
	t.reads = append(t.reads, readEntry{v: v, val: val})
	return val
}

// Write buffers the update.
func (t *Txn) Write(v *meta.Var, x uint64) {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].v == v {
			t.writes[i].val = x
			return
		}
	}
	t.writes = append(t.writes, writeEntry{v: v, val: x})
}

// TryCommit performs the NOrec commit: acquire the global sequence
// lock at the snapshot value (revalidating by value on contention),
// write back, release. The ordered variant first waits for its commit
// turn; at the turn no other committer exists, so a failed validation
// is repaired by one re-execution.
func (t *Txn) TryCommit() bool {
	if t.eng.ordered {
		if !t.eng.cfg.Order.WaitTurn(t.age, nil) {
			// The order halted (the run stopped on a fault): our turn
			// will never come, so abandon instead of parking forever.
			t.cell.Abort(meta.CauseOrder)
			return false
		}
	}
	ok := t.commitInner()
	if ok && t.eng.ordered {
		t.eng.cfg.Order.Complete(t.age)
	}
	return ok
}

func (t *Txn) commitInner() bool {
	if len(t.writes) == 0 {
		return true // read-only: snapshot already consistent
	}
	for !t.eng.seq.CompareAndSwap(t.snap, t.snap+1) {
		snap, ok := t.revalidate()
		if !ok {
			t.cell.Abort(meta.CauseValidation)
			return false
		}
		t.snap = snap
	}
	for i := range t.writes {
		t.writes[i].v.Store(t.writes[i].val)
	}
	t.eng.seq.Store(t.snap + 2)
	return true
}

// Commit implements meta.Txn.
func (t *Txn) Commit() bool { return true }

// Cleanup implements meta.Txn. Backing arrays are kept for reuse.
func (t *Txn) Cleanup() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
}

// AbandonAttempt implements meta.Txn: nothing is shared before commit.
func (t *Txn) AbandonAttempt() {}
