package labyrinth

import (
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{X: 12, Y: 12, Z: 2, Pairs: 16, Seed: 4, Yield: yield}
}

func TestSequentialRoutes(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if a.Routed() == 0 {
		t.Fatal("no pair routed on an empty maze")
	}
}

func TestOrderedEnginesSatisfyInvariants(t *testing.T) {
	// Path planning is snapshot-dependent (as in STAMP), so engines
	// are checked against the structural invariants, not for equality.
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			res, err := a.Run(apps.Runner{Alg: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("%v (stats %v)", err, res.Stats)
			}
			if a.Routed() == 0 {
				t.Fatal("no pair routed")
			}
		})
	}
}

func TestUnroutablePairResolves(t *testing.T) {
	// A 1x1xZ corridor fully claimed by the first path leaves nothing
	// for the second pair; it must resolve as unrouted, not hang.
	a := New(Config{X: 1, Y: 4, Z: 1, Pairs: 2, Seed: 8})
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsGrid(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	for i := range a.grid {
		if a.grid[i].Load() != 0 {
			t.Fatal("grid not cleared")
		}
	}
}
