// Package labyrinth reproduces STAMP's labyrinth for Figure 6g: a
// multi-path maze router over a three-dimensional uniform grid. Each
// transaction routes one (source, destination) pair: it plans a
// shortest path on a privatized snapshot of the grid (plain atomic
// loads, exactly STAMP's grid-copy optimization) and then claims the
// path transactionally, re-planning inside the transaction when a
// claimed cell turns out to be occupied. Transactions conflict when
// their paths overlap.
//
// Path planning depends on the snapshot timing, so — as in the
// original benchmark — the set of routed paths is not deterministic
// across engines; Verify checks the structural invariants instead
// (paths are connected, disjoint, within bounds, and endpoints
// match).
package labyrinth

import (
	"fmt"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the maze.
type Config struct {
	// X, Y, Z are the grid dimensions (default 24×24×3).
	X, Y, Z int
	// Pairs is the number of route requests (default 48).
	Pairs int
	// Seed drives endpoint placement (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

func (c Config) withDefaults() Config {
	if c.X == 0 {
		c.X = 24
	}
	if c.Y == 0 {
		c.Y = 24
	}
	if c.Z == 0 {
		c.Z = 3
	}
	if c.Pairs == 0 {
		c.Pairs = 48
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

type point struct{ x, y, z int }

// App is one maze instance.
type App struct {
	cfg   Config
	grid  []stm.Var // 0 = free, otherwise pathID (= age+1)
	pairs [][2]point
	done  []stm.Var // per pair: 1 = routed, 2 = no path found
}

// New builds the maze and endpoint pairs (endpoints distinct cells).
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	a := &App{
		cfg:   cfg,
		grid:  stm.NewVars(cfg.X * cfg.Y * cfg.Z),
		pairs: make([][2]point, cfg.Pairs),
		done:  stm.NewVars(cfg.Pairs),
	}
	r := rng.New(cfg.Seed)
	used := make(map[point]bool)
	pick := func() point {
		for {
			p := point{r.Intn(cfg.X), r.Intn(cfg.Y), r.Intn(cfg.Z)}
			if !used[p] {
				used[p] = true
				return p
			}
		}
	}
	for i := range a.pairs {
		a.pairs[i] = [2]point{pick(), pick()}
	}
	return a
}

func (a *App) idx(p point) int {
	return (p.z*a.cfg.Y+p.y)*a.cfg.X + p.x
}

func (a *App) neighbors(p point, visit func(point)) {
	if p.x > 0 {
		visit(point{p.x - 1, p.y, p.z})
	}
	if p.x < a.cfg.X-1 {
		visit(point{p.x + 1, p.y, p.z})
	}
	if p.y > 0 {
		visit(point{p.x, p.y - 1, p.z})
	}
	if p.y < a.cfg.Y-1 {
		visit(point{p.x, p.y + 1, p.z})
	}
	if p.z > 0 {
		visit(point{p.x, p.y, p.z - 1})
	}
	if p.z < a.cfg.Z-1 {
		visit(point{p.x, p.y, p.z + 1})
	}
}

// plan runs BFS over the given occupancy view (free predicate),
// returning the path src→dst inclusive, or nil.
func (a *App) plan(src, dst point, free func(point) bool) []point {
	prev := make(map[point]point)
	seen := map[point]bool{src: true}
	queue := []point{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			var path []point
			for p := dst; ; p = prev[p] {
				path = append(path, p)
				if p == src {
					break
				}
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		a.neighbors(cur, func(n point) {
			if !seen[n] && (n == dst || free(n)) {
				seen[n] = true
				prev[n] = cur
				queue = append(queue, n)
			}
		})
	}
	return nil
}

// NumTxns returns the route-request count.
func (a *App) NumTxns() int { return a.cfg.Pairs }

// Run executes the router under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	body := func(tx stm.Tx, age int) {
		src, dst := a.pairs[age][0], a.pairs[age][1]
		id := uint64(age) + 1
		// Plan on a privatized snapshot (plain loads, STAMP's grid
		// copy), then claim transactionally; replan within the
		// transaction if the claim discovers occupied cells.
		for attempt := 0; attempt < 8; attempt++ {
			path := a.plan(src, dst, func(p point) bool {
				return a.grid[a.idx(p)].Load() == 0
			})
			if path == nil {
				tx.Write(&a.done[age], 2)
				return
			}
			ok := true
			for _, p := range path {
				if tx.Read(&a.grid[a.idx(p)]) != 0 {
					ok = false
					break
				}
				if a.cfg.Yield {
					runtime.Gosched()
				}
			}
			if !ok {
				continue // somebody claimed a cell; replan
			}
			for _, p := range path {
				tx.Write(&a.grid[a.idx(p)], id)
			}
			tx.Write(&a.done[age], 1)
			return
		}
		tx.Write(&a.done[age], 2)
	}
	return r.Exec(a.cfg.Pairs, body)
}

// Verify checks the routing invariants.
func (a *App) Verify() error {
	cells := make(map[uint64][]point)
	for z := 0; z < a.cfg.Z; z++ {
		for y := 0; y < a.cfg.Y; y++ {
			for x := 0; x < a.cfg.X; x++ {
				p := point{x, y, z}
				if id := a.grid[a.idx(p)].Load(); id != 0 {
					cells[id] = append(cells[id], p)
				}
			}
		}
	}
	for i := range a.pairs {
		id := uint64(i) + 1
		switch a.done[i].Load() {
		case 1:
			path := cells[id]
			if len(path) == 0 {
				return fmt.Errorf("labyrinth: pair %d marked routed but owns no cells", i)
			}
			if err := a.checkConnected(i, path); err != nil {
				return err
			}
		case 2:
			if len(cells[id]) != 0 {
				return fmt.Errorf("labyrinth: pair %d marked unrouted but owns %d cells", i, len(cells[id]))
			}
		default:
			return fmt.Errorf("labyrinth: pair %d never resolved", i)
		}
	}
	return nil
}

// checkConnected verifies the claimed cells form a path covering both
// endpoints.
func (a *App) checkConnected(i int, path []point) error {
	src, dst := a.pairs[i][0], a.pairs[i][1]
	owned := make(map[point]bool, len(path))
	for _, p := range path {
		owned[p] = true
	}
	if !owned[src] || !owned[dst] {
		return fmt.Errorf("labyrinth: pair %d path misses an endpoint", i)
	}
	// BFS within owned cells from src must reach dst.
	seen := map[point]bool{src: true}
	queue := []point{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			return nil
		}
		a.neighbors(cur, func(n point) {
			if owned[n] && !seen[n] {
				seen[n] = true
				queue = append(queue, n)
			}
		})
	}
	return fmt.Errorf("labyrinth: pair %d cells do not connect its endpoints", i)
}

// Routed returns how many pairs found a path.
func (a *App) Routed() int {
	n := 0
	for i := range a.done {
		if a.done[i].Load() == 1 {
			n++
		}
	}
	return n
}

// Fingerprint folds the grid (only comparable between runs of the
// same engine; see the package comment on nondeterminism).
func (a *App) Fingerprint() uint64 {
	var h uint64
	for i := range a.grid {
		h = rng.Mix64(h ^ a.grid[i].Load())
	}
	return h
}

// Reset clears the maze for another run.
func (a *App) Reset() {
	for i := range a.grid {
		a.grid[i].Store(0)
	}
	for i := range a.done {
		a.done[i].Store(0)
	}
}
