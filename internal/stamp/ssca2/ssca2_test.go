package ssca2

import (
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{Vertices: 128, Edges: 1024, MaxDegree: 64, Batch: 4, Seed: 5, Yield: yield}
}

func TestSequentialVerifies(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedEnginesMatchSequential(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2, stm.OrderedUndoLogInvis, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			if _, err := a.Run(apps.Runner{Alg: alg, Workers: 4}); err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatal(err)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x", got, want)
			}
		})
	}
}

func TestDegreeOverflowCounted(t *testing.T) {
	a := New(Config{Vertices: 4, Edges: 512, MaxDegree: 8, Batch: 2, Seed: 7})
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if a.drops.Load() == 0 {
		t.Fatal("expected drops with tiny degree bound")
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestResetAllowsRerun(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	f := a.Fingerprint()
	a.Reset()
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != f {
		t.Fatal("rerun diverged")
	}
}
