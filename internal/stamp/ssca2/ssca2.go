// Package ssca2 reproduces STAMP's SSCA2 kernel 1 for Figure 6d:
// constructing a directed multigraph's adjacency structure from a
// scalable synthetic edge list. Each transaction appends a batch of
// edges: it reads a vertex's adjacency cursor, writes the target into
// the adjacency slot and bumps the cursor. Contention is low because
// the vertex count is large relative to concurrent insertions, which
// is exactly the paper's observation ("the large number of graph
// nodes leads to infrequent concurrent updates").
package ssca2

import (
	"fmt"
	"runtime"
	"sort"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the kernel.
type Config struct {
	// Vertices is the vertex count (default 1024).
	Vertices int
	// Edges is the edge count (default 8192).
	Edges int
	// MaxDegree bounds per-vertex adjacency storage (default 64;
	// edges beyond it are dropped, counted in overflow).
	MaxDegree int
	// Batch is edges appended per transaction (default 4).
	Batch int
	// Seed drives edge generation (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

func (c Config) withDefaults() Config {
	if c.Vertices == 0 {
		c.Vertices = 1024
	}
	if c.Edges == 0 {
		c.Edges = 8192
	}
	if c.MaxDegree == 0 {
		c.MaxDegree = 64
	}
	if c.Batch == 0 {
		c.Batch = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

type edge struct{ u, v uint32 }

// App is one kernel instance.
type App struct {
	cfg     Config
	edges   []edge
	cursors []stm.Var // per-vertex adjacency length
	adj     []stm.Var // Vertices × MaxDegree slots (target+1)
	drops   stm.Var   // edges dropped by the degree bound
}

// New generates the edge list (R-MAT-flavored skew: a few hub
// vertices attract many edges, driving occasional conflicts).
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	a := &App{
		cfg:     cfg,
		edges:   make([]edge, cfg.Edges),
		cursors: stm.NewVars(cfg.Vertices),
		adj:     stm.NewVars(cfg.Vertices * cfg.MaxDegree),
	}
	hub := cfg.Vertices / 16
	if hub == 0 {
		hub = 1
	}
	for i := range a.edges {
		var u int
		if r.Intn(4) == 0 {
			u = r.Intn(hub) // skewed toward hubs
		} else {
			u = r.Intn(cfg.Vertices)
		}
		a.edges[i] = edge{u: uint32(u), v: uint32(r.Intn(cfg.Vertices))}
	}
	return a
}

// NumTxns returns the transaction count.
func (a *App) NumTxns() int { return (len(a.edges) + a.cfg.Batch - 1) / a.cfg.Batch }

// Run executes the construction under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	cfg := a.cfg
	body := func(tx stm.Tx, age int) {
		lo := age * cfg.Batch
		hi := lo + cfg.Batch
		if hi > len(a.edges) {
			hi = len(a.edges)
		}
		for i := lo; i < hi; i++ {
			e := a.edges[i]
			cur := tx.Read(&a.cursors[e.u])
			if cur >= uint64(cfg.MaxDegree) {
				tx.Write(&a.drops, tx.Read(&a.drops)+1)
				continue
			}
			tx.Write(&a.adj[int(e.u)*cfg.MaxDegree+int(cur)], uint64(e.v)+1)
			tx.Write(&a.cursors[e.u], cur+1)
			if cfg.Yield {
				runtime.Gosched()
			}
		}
	}
	return r.Exec(a.NumTxns(), body)
}

// Verify checks conservation (stored + dropped == edges) and that
// each vertex's adjacency multiset matches the input edge list.
func (a *App) Verify() error {
	var stored uint64
	for v := range a.cursors {
		stored += a.cursors[v].Load()
	}
	if stored+a.drops.Load() != uint64(len(a.edges)) {
		return fmt.Errorf("ssca2: stored %d + dropped %d != edges %d",
			stored, a.drops.Load(), len(a.edges))
	}
	// Per-vertex multiset equality against the input (ignoring order
	// and drops beyond the degree bound when no drops occurred).
	if a.drops.Load() == 0 {
		want := make(map[uint32][]uint32)
		for _, e := range a.edges {
			want[e.u] = append(want[e.u], e.v)
		}
		for u, vs := range want {
			n := int(a.cursors[u].Load())
			if n != len(vs) {
				return fmt.Errorf("ssca2: vertex %d degree %d, want %d", u, n, len(vs))
			}
			got := make([]uint32, 0, n)
			for k := 0; k < n; k++ {
				got = append(got, uint32(a.adj[int(u)*a.cfg.MaxDegree+k].Load()-1))
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			for i := range vs {
				if got[i] != vs[i] {
					return fmt.Errorf("ssca2: vertex %d adjacency differs", u)
				}
			}
		}
	}
	return nil
}

// Fingerprint folds the adjacency structure (order-sensitive, so
// ordered engines must match the sequential run exactly).
func (a *App) Fingerprint() uint64 {
	var h uint64
	for i := range a.adj {
		h = rng.Mix64(h ^ a.adj[i].Load())
	}
	return rng.Mix64(h ^ a.drops.Load())
}

// Reset clears the graph for another run.
func (a *App) Reset() {
	for i := range a.cursors {
		a.cursors[i].Store(0)
	}
	for i := range a.adj {
		a.adj[i].Store(0)
	}
	a.drops.Store(0)
}
