package genome

import (
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{GeneLength: 512, SegmentLength: 12, Duplicates: 128, Seed: 2, Yield: yield}
}

func TestSequentialReconstructs(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedEnginesReconstruct(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedUndoLogVis, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			if _, err := a.Run(apps.Runner{Alg: alg, Workers: 4}); err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatal(err)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x", got, want)
			}
		})
	}
}

func TestResetAllowsRerun(t *testing.T) {
	a := New(small(false))
	for round := 0; round < 2; round++ {
		if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		a.Reset()
	}
}

func TestSegmentStreamCoversGene(t *testing.T) {
	a := New(small(false))
	if len(a.segments) != a.cfg.GeneLength-a.cfg.SegmentLength+1+a.cfg.Duplicates {
		t.Fatalf("segment count = %d", len(a.segments))
	}
	if a.NumTxns() != 2*len(a.segments) {
		t.Fatalf("NumTxns = %d", a.NumTxns())
	}
}
