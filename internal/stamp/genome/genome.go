// Package genome reproduces STAMP's genome assembler for Figure 6c:
// reconstruct a gene from overlapping segments. Phase 1 deduplicates
// segments into a shared hash set while registering each unique
// segment's prefix in a shared hash map; phase 2 links each segment to
// its successor (the unique segment whose prefix equals this segment's
// suffix) through transactional updates; phase 3 walks the links
// sequentially and rebuilds the gene.
//
// Segments are (2-bit packed) k-mers over {A,C,G,T}. The generator
// retries seeds until all (k-1)-mers of the gene are unique, which
// makes the reconstruction exact and the whole computation
// deterministic — the repository's determinism oracle applies.
//
// Contention profile matches the paper ("Genome exhibits a little
// contention"): the hash tables are large, so conflicts arise mostly
// from duplicate segments hitting the same slots.
package genome

import (
	"fmt"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/internal/txds"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the assembly.
type Config struct {
	// GeneLength is the number of bases (default 2048).
	GeneLength int
	// SegmentLength is the k-mer size (default 16; must be ≤ 31).
	SegmentLength int
	// Duplicates is how many extra copies of random segments are mixed
	// in (default GeneLength/4) — they exercise the dedup phase.
	Duplicates int
	// Seed drives gene generation (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

func (c Config) withDefaults() Config {
	if c.GeneLength == 0 {
		c.GeneLength = 2048
	}
	if c.SegmentLength == 0 {
		c.SegmentLength = 16
	}
	if c.Duplicates == 0 {
		c.Duplicates = c.GeneLength / 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// App is one genome instance.
type App struct {
	cfg      Config
	gene     []byte   // bases 0..3
	segments []uint64 // shuffled packed segments (with duplicates)

	unique    *txds.Set     // phase 1: deduplicated segments
	prefixes  *txds.HashMap // prefix key -> packed segment
	successor *txds.HashMap // packed segment -> packed successor

	rebuilt []byte // phase 3 output
}

// New builds the gene and the shuffled segment stream.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	if cfg.SegmentLength > 31 || cfg.SegmentLength < 4 {
		panic("genome: segment length must be in [4,31]")
	}
	a := &App{cfg: cfg}
	for attempt := uint64(0); ; attempt++ {
		a.generate(cfg.Seed + attempt)
		if a.uniquePrefixes() {
			break
		}
	}
	nSeg := len(a.segments)
	a.unique = txds.NewSet(4 * nSeg)
	a.prefixes = txds.NewHashMap(4 * nSeg)
	a.successor = txds.NewHashMap(4 * nSeg)
	return a
}

func (a *App) generate(seed uint64) {
	cfg := a.cfg
	r := rng.New(seed)
	a.gene = make([]byte, cfg.GeneLength)
	for i := range a.gene {
		a.gene[i] = byte(r.Intn(4))
	}
	n := cfg.GeneLength - cfg.SegmentLength + 1
	a.segments = make([]uint64, 0, n+cfg.Duplicates)
	for i := 0; i < n; i++ {
		a.segments = append(a.segments, a.pack(a.gene[i:i+cfg.SegmentLength]))
	}
	for d := 0; d < cfg.Duplicates; d++ {
		a.segments = append(a.segments, a.segments[r.Intn(n)])
	}
	r.Shuffle(len(a.segments), func(i, j int) {
		a.segments[i], a.segments[j] = a.segments[j], a.segments[i]
	})
}

// pack encodes bases as 2 bits each with a leading guard bit so that
// distinct lengths cannot collide and the reserved txds keys (0, ^0)
// are never produced.
func (a *App) pack(bases []byte) uint64 {
	v := uint64(1)
	for _, b := range bases {
		v = v<<2 | uint64(b)
	}
	return v
}

// prefixKey drops the last base; suffixKey drops the first.
func (a *App) prefixKey(seg uint64) uint64 { return seg >> 2 }

func (a *App) suffixKey(seg uint64) uint64 {
	bits := uint(2 * (a.cfg.SegmentLength - 1))
	mask := (uint64(1) << bits) - 1
	return (seg & mask) | 1<<bits
}

// uniquePrefixes reports whether every (k-1)-mer occurs at most once,
// the condition for exact reconstruction.
func (a *App) uniquePrefixes() bool {
	seen := make(map[uint64]bool)
	n := a.cfg.GeneLength - (a.cfg.SegmentLength - 1) + 1
	for i := 0; i < n; i++ {
		k := a.pack(a.gene[i : i+a.cfg.SegmentLength-1])
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// NumTxns returns the total transaction count (both phases).
func (a *App) NumTxns() int { return 2 * len(a.segments) }

// Run executes the assembly under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	segs := a.segments
	yield := a.cfg.Yield
	// Phase 1: deduplicate and register prefixes.
	phase1 := func(tx stm.Tx, age int) {
		seg := segs[age]
		added, ok := a.unique.Add(tx, seg)
		if !ok {
			panic("genome: segment set full")
		}
		if added {
			if !a.prefixes.Put(tx, a.prefixKey(seg)|1<<40, seg) {
				panic("genome: prefix map full")
			}
		}
		if yield {
			runtime.Gosched()
		}
	}
	res1, err := r.Exec(len(segs), phase1)
	if err != nil {
		return res1, err
	}
	// Phase 2: link each unique segment to its successor.
	phase2 := func(tx stm.Tx, age int) {
		seg := segs[age]
		if next, ok := a.prefixes.Get(tx, a.suffixKey(seg)|1<<40); ok {
			a.successor.Put(tx, seg, next)
		}
		if yield {
			runtime.Gosched()
		}
	}
	res2, err := r.Exec(len(segs), phase2)
	if err != nil {
		return apps.Merge(res1, res2), err
	}
	a.rebuild()
	return apps.Merge(res1, res2), nil
}

// rebuild is the sequential phase 3: walk successors from the first
// segment of the gene.
func (a *App) rebuild() {
	succ := a.successor.Snapshot()
	cur := a.pack(a.gene[:a.cfg.SegmentLength])
	out := make([]byte, 0, a.cfg.GeneLength)
	// Unpack the first segment entirely, then one trailing base per
	// following segment.
	for i := a.cfg.SegmentLength - 1; i >= 0; i-- {
		out = append(out, byte(cur>>(2*uint(i)))&3)
	}
	for {
		next, ok := succ[cur]
		if !ok {
			break
		}
		out = append(out, byte(next&3))
		cur = next
	}
	a.rebuilt = out
}

// Verify checks the reconstruction equals the original gene.
func (a *App) Verify() error {
	if len(a.rebuilt) != len(a.gene) {
		return fmt.Errorf("genome: rebuilt %d bases, want %d", len(a.rebuilt), len(a.gene))
	}
	for i := range a.gene {
		if a.rebuilt[i] != a.gene[i] {
			return fmt.Errorf("genome: base %d differs", i)
		}
	}
	return nil
}

// Fingerprint folds the successor table into one value.
func (a *App) Fingerprint() uint64 {
	var h uint64
	for k, v := range a.successor.Snapshot() {
		h ^= rng.Mix64(k*31 + v)
	}
	return h
}

// Reset clears the shared tables for another run.
func (a *App) Reset() {
	n := len(a.segments)
	a.unique = txds.NewSet(4 * n)
	a.prefixes = txds.NewHashMap(4 * n)
	a.successor = txds.NewHashMap(4 * n)
	a.rebuilt = nil
}
