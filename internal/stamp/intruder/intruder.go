// Package intruder reproduces STAMP's intruder for Figure 6h: a
// network intrusion detector. Packets (fragments of flows) arrive in
// a fixed order; each transaction inserts one fragment into the
// shared reassembly state, and the transaction that completes a flow
// decodes it and matches it against an attack-signature dictionary,
// recording the verdict. The shared flow map is the contention point,
// as in the original ("the contention is high").
//
// The fragment that completes a flow is determined by arrival order,
// which the predefined commit order fixes; the set of verdicts is
// therefore deterministic and the determinism oracle applies.
package intruder

import (
	"fmt"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/internal/txds"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the detector.
type Config struct {
	// Flows is the number of packet flows (default 256).
	Flows int
	// FragmentsPerFlow is the flow length (default 8).
	FragmentsPerFlow int
	// FragmentBytes is the payload bytes per fragment (default 16).
	FragmentBytes int
	// Signatures is the attack-dictionary size (default 32).
	Signatures int
	// AttackPct is the percentage of flows carrying an attack
	// signature (default 10).
	AttackPct int
	// Seed drives traffic generation (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

func (c Config) withDefaults() Config {
	if c.Flows == 0 {
		c.Flows = 256
	}
	if c.FragmentsPerFlow == 0 {
		c.FragmentsPerFlow = 8
	}
	if c.FragmentBytes == 0 {
		c.FragmentBytes = 16
	}
	if c.Signatures == 0 {
		c.Signatures = 32
	}
	if c.AttackPct == 0 {
		c.AttackPct = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

type packet struct {
	flow uint32
	frag uint32
}

// App is one detector instance.
type App struct {
	cfg        Config
	packets    []packet // shuffled arrival order
	payloads   [][]byte // flow × fragment payload bytes (read-only)
	signatures [][]byte
	attacked   []bool // ground truth per flow

	seen     *txds.HashMap // flow+1 -> fragments seen
	assembly []stm.Var     // flow × fragment claim markers
	verdicts []stm.Var     // per flow: 1 = clean, 2 = attack
}

// New generates flows, payloads and the signature dictionary.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	a := &App{
		cfg:      cfg,
		payloads: make([][]byte, cfg.Flows),
		attacked: make([]bool, cfg.Flows),
		seen:     txds.NewHashMap(4 * cfg.Flows),
		assembly: stm.NewVars(cfg.Flows * cfg.FragmentsPerFlow),
		verdicts: stm.NewVars(cfg.Flows),
	}
	a.signatures = make([][]byte, cfg.Signatures)
	for s := range a.signatures {
		sig := make([]byte, 6)
		for i := range sig {
			sig[i] = byte(r.Intn(26)) + 'a'
		}
		a.signatures[s] = sig
	}
	total := cfg.Flows * cfg.FragmentsPerFlow
	a.packets = make([]packet, 0, total)
	for f := 0; f < cfg.Flows; f++ {
		payload := make([]byte, cfg.FragmentsPerFlow*cfg.FragmentBytes)
		for i := range payload {
			payload[i] = byte(r.Intn(26)) + 'a'
		}
		if r.Intn(100) < cfg.AttackPct {
			sig := a.signatures[r.Intn(cfg.Signatures)]
			pos := r.Intn(len(payload) - len(sig))
			copy(payload[pos:], sig)
			a.attacked[f] = true
		} else {
			a.attacked[f] = a.scan(payload) // accidental matches count
		}
		a.payloads[f] = payload
		for g := 0; g < cfg.FragmentsPerFlow; g++ {
			a.packets = append(a.packets, packet{flow: uint32(f), frag: uint32(g)})
		}
	}
	r.Shuffle(len(a.packets), func(i, j int) {
		a.packets[i], a.packets[j] = a.packets[j], a.packets[i]
	})
	return a
}

// scan matches the payload against the dictionary (naive substring
// search, the detector's local computation).
func (a *App) scan(payload []byte) bool {
	for _, sig := range a.signatures {
		for i := 0; i+len(sig) <= len(payload); i++ {
			match := true
			for j := range sig {
				if payload[i+j] != sig[j] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
	}
	return false
}

// NumTxns returns the packet count.
func (a *App) NumTxns() int { return len(a.packets) }

// Run executes the detector under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	cfg := a.cfg
	body := func(tx stm.Tx, age int) {
		p := a.packets[age]
		key := uint64(p.flow) + 1
		count, _ := a.seen.Get(tx, key)
		tx.Write(&a.assembly[int(p.flow)*cfg.FragmentsPerFlow+int(p.frag)], uint64(age)+1)
		count++
		a.seen.Put(tx, key, count)
		if cfg.Yield {
			runtime.Gosched()
		}
		if int(count) == cfg.FragmentsPerFlow {
			// This packet completes the flow: decode and detect.
			verdict := uint64(1)
			if a.scan(a.payloads[p.flow]) {
				verdict = 2
			}
			tx.Write(&a.verdicts[p.flow], verdict)
		}
	}
	return r.Exec(len(a.packets), body)
}

// Verify checks every flow was fully reassembled and its verdict
// matches the ground truth.
func (a *App) Verify() error {
	for f := 0; f < a.cfg.Flows; f++ {
		for g := 0; g < a.cfg.FragmentsPerFlow; g++ {
			if a.assembly[f*a.cfg.FragmentsPerFlow+g].Load() == 0 {
				return fmt.Errorf("intruder: flow %d fragment %d never claimed", f, g)
			}
		}
		v := a.verdicts[f].Load()
		if v == 0 {
			return fmt.Errorf("intruder: flow %d never judged", f)
		}
		want := uint64(1)
		if a.attacked[f] {
			want = 2
		}
		if v != want {
			return fmt.Errorf("intruder: flow %d verdict %d, want %d", f, v, want)
		}
	}
	return nil
}

// Fingerprint folds verdicts and claim markers (order-sensitive:
// claim markers record the claiming age, so ordered engines must
// match the sequential run exactly).
func (a *App) Fingerprint() uint64 {
	var h uint64
	for i := range a.assembly {
		h = rng.Mix64(h ^ a.assembly[i].Load())
	}
	for i := range a.verdicts {
		h = rng.Mix64(h ^ a.verdicts[i].Load())
	}
	return h
}

// Reset clears the reassembly state for another run.
func (a *App) Reset() {
	a.seen = txds.NewHashMap(4 * a.cfg.Flows)
	for i := range a.assembly {
		a.assembly[i].Store(0)
	}
	for i := range a.verdicts {
		a.verdicts[i].Store(0)
	}
}
