package intruder

import (
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{Flows: 48, FragmentsPerFlow: 4, FragmentBytes: 12, Signatures: 8, AttackPct: 25, Seed: 6, Yield: yield}
}

func TestSequentialDetects(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	attacks := 0
	for f := range a.attacked {
		if a.attacked[f] {
			attacks++
		}
	}
	if attacks == 0 {
		t.Fatal("traffic generator produced no attacks")
	}
}

func TestOrderedEnginesMatchSequential(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedUndoLogVis, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			res, err := a.Run(apps.Runner{Alg: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("%v (stats %v)", err, res.Stats)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x", got, want)
			}
		})
	}
}

func TestScanFindsPlantedSignature(t *testing.T) {
	a := New(small(false))
	payload := append([]byte("xxxxxxxx"), a.signatures[0]...)
	if !a.scan(payload) {
		t.Fatal("scan missed a planted signature")
	}
	if a.scan([]byte("ABCDEFGH")) {
		t.Fatal("scan matched uppercase noise that cannot contain signatures")
	}
}

func TestResetAllowsRerun(t *testing.T) {
	a := New(small(false))
	for round := 0; round < 2; round++ {
		if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		a.Reset()
	}
}
