package vacation

import (
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{Resources: 32, Customers: 48, Sessions: 400, QuerySpan: 4, ReservePct: 75, Seed: 9, Yield: yield}
}

func TestPackingRoundTrip(t *testing.T) {
	total, used, price := uint64(12), uint64(5), uint64(399)
	gt, gu, gp := unpackRes(packRes(total, used, price))
	if gt != total || gu != used || gp != price {
		t.Fatalf("resource roundtrip: %d %d %d", gt, gu, gp)
	}
	h, k, r, b := unpackCust(packCust(1, 2, 31, 777))
	if h != 1 || k != 2 || r != 31 || b != 777 {
		t.Fatalf("customer roundtrip: %d %d %d %d", h, k, r, b)
	}
}

func TestSequentialVerifies(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedEnginesMatchSequential(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedNOrec, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			res, err := a.Run(apps.Runner{Alg: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("%v (stats %v)", err, res.Stats)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x", got, want)
			}
		})
	}
}

func TestPresetsDiffer(t *testing.T) {
	lo, hi := LowContention(), HighContention()
	if lo.Resources <= hi.Resources {
		t.Fatal("low contention must spread over more resources")
	}
	if lo.QuerySpan >= hi.QuerySpan {
		t.Fatal("high contention must query wider spans")
	}
}

func TestResetRestoresDatabase(t *testing.T) {
	a := New(small(false))
	before := a.Fingerprint()
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	a.Reset()
	if a.Fingerprint() != before {
		t.Fatal("reset did not restore the initial database")
	}
}
