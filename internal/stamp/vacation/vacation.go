// Package vacation reproduces STAMP's vacation for Figure 6e–f: a
// travel reservation system over an in-memory database. Resources
// (cars, rooms, flights) live in transactional hash tables mapping
// resource id → packed (total, used, price) records; each client
// session is one coarse-grained transaction that queries a span of
// resources, reserves the cheapest available one for a customer, or
// cancels the customer's reservation. Coarse transactions make aborts
// expensive, which is what the paper highlights for this benchmark.
//
// The low-contention configuration queries a narrow span over many
// resources; the high-contention one queries wide spans over few
// resources, as in STAMP's -n/-q/-r/-u knobs.
package vacation

import (
	"fmt"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/internal/txds"
	"github.com/orderedstm/ostm/stm"
)

// Resource kinds.
const (
	kindCar = iota
	kindRoom
	kindFlight
	numKinds
)

// Config parameterizes the workload.
type Config struct {
	// Resources is the number of resources per kind (default 256).
	Resources int
	// Customers is the customer count (default 256).
	Customers int
	// Sessions is the number of client sessions = transactions
	// (default 4096).
	Sessions int
	// QuerySpan is how many resources a session inspects (default 4;
	// the high-contention preset uses larger spans on fewer
	// resources).
	QuerySpan int
	// ReservePct is the percentage of sessions that reserve (the rest
	// cancel; default 80).
	ReservePct int
	// Seed drives the generator (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

// LowContention mirrors STAMP's low-contention parameters.
func LowContention() Config {
	return Config{Resources: 256, QuerySpan: 2, ReservePct: 90}
}

// HighContention mirrors STAMP's high-contention parameters.
func HighContention() Config {
	return Config{Resources: 32, QuerySpan: 8, ReservePct: 80}
}

func (c Config) withDefaults() Config {
	if c.Resources == 0 {
		c.Resources = 256
	}
	if c.Customers == 0 {
		c.Customers = 256
	}
	if c.Sessions == 0 {
		c.Sessions = 4096
	}
	if c.QuerySpan == 0 {
		c.QuerySpan = 4
	}
	if c.ReservePct == 0 {
		c.ReservePct = 80
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Packed resource record: total(16) | used(16) | price(32).
func packRes(total, used, price uint64) uint64 {
	return total<<48 | used<<32 | price
}

func unpackRes(v uint64) (total, used, price uint64) {
	return v >> 48, (v >> 32) & 0xFFFF, v & 0xFFFFFFFF
}

// Packed customer record: held(16) | kind(8) | resource id(16) |
// bill(24): one outstanding reservation per customer, as enough for
// the workload's conflict structure.
func packCust(held, kind, res, bill uint64) uint64 {
	return held<<48 | kind<<40 | res<<24 | bill
}

func unpackCust(v uint64) (held, kind, res, bill uint64) {
	return v >> 48, (v >> 40) & 0xFF, (v >> 24) & 0xFFFF, v & 0xFFFFFF
}

// App is one vacation database instance.
type App struct {
	cfg       Config
	tables    [numKinds]*txds.HashMap // resource id+1 -> packed record
	customers *txds.HashMap           // customer id+1 -> packed record
}

// New builds and populates the database.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	a := &App{cfg: cfg}
	r := rng.New(cfg.Seed)
	for k := 0; k < numKinds; k++ {
		a.tables[k] = txds.NewHashMap(4 * cfg.Resources)
	}
	a.customers = txds.NewHashMap(4 * cfg.Customers)
	a.populate(r)
	return a
}

func (a *App) populate(r *rng.Rand) {
	seq, _ := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	_, err := seq.Run(1, func(tx stm.Tx, _ int) {
		for k := 0; k < numKinds; k++ {
			for i := 0; i < a.cfg.Resources; i++ {
				total := uint64(r.Range(4, 16))
				price := uint64(r.Range(50, 500))
				a.tables[k].Put(tx, uint64(i)+1, packRes(total, 0, price))
			}
		}
		for c := 0; c < a.cfg.Customers; c++ {
			a.customers.Put(tx, uint64(c)+1, packCust(0, 0, 0, 0))
		}
	})
	if err != nil {
		panic(err)
	}
}

// NumTxns returns the session count.
func (a *App) NumTxns() int { return a.cfg.Sessions }

// Run executes the sessions under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	cfg := a.cfg
	body := func(tx stm.Tx, age int) {
		rr := rng.New(cfg.Seed ^ rng.Mix64(uint64(age)))
		cust := uint64(rr.Intn(cfg.Customers)) + 1
		crec, _ := a.customers.Get(tx, cust)
		held, hkind, hres, bill := unpackCust(crec)
		if rr.Intn(100) < cfg.ReservePct {
			if held != 0 {
				return // customer already holds a reservation
			}
			kind := rr.Intn(numKinds)
			start := rr.Intn(cfg.Resources)
			bestRes, bestPrice := -1, uint64(1<<62)
			// Query a span of resources, pick the cheapest available.
			for q := 0; q < cfg.QuerySpan; q++ {
				id := uint64((start+q)%cfg.Resources) + 1
				rec, ok := a.tables[kind].Get(tx, id)
				if !ok {
					continue
				}
				total, used, price := unpackRes(rec)
				if used < total && price < bestPrice {
					bestRes, bestPrice = int(id), price
				}
				if cfg.Yield {
					runtime.Gosched()
				}
			}
			if bestRes < 0 {
				return
			}
			rec, _ := a.tables[kind].Get(tx, uint64(bestRes))
			total, used, price := unpackRes(rec)
			a.tables[kind].Put(tx, uint64(bestRes), packRes(total, used+1, price))
			a.customers.Put(tx, cust, packCust(1, uint64(kind), uint64(bestRes), bill+price))
		} else {
			if held == 0 {
				return
			}
			rec, _ := a.tables[hkind].Get(tx, hres)
			total, used, price := unpackRes(rec)
			a.tables[hkind].Put(tx, hres, packRes(total, used-1, price))
			a.customers.Put(tx, cust, packCust(0, 0, 0, bill-price))
		}
	}
	return r.Exec(cfg.Sessions, body)
}

// Verify checks the database invariants: usage within capacity, and
// global usage equals outstanding customer holds.
func (a *App) Verify() error {
	var used uint64
	for k := 0; k < numKinds; k++ {
		for id, rec := range a.tables[k].Snapshot() {
			total, u, _ := unpackRes(rec)
			if u > total {
				return fmt.Errorf("vacation: resource kind=%d id=%d overbooked (%d/%d)", k, id, u, total)
			}
			used += u
		}
	}
	var holds, bills uint64
	for _, rec := range a.customers.Snapshot() {
		h, _, _, b := unpackCust(rec)
		holds += h
		bills += b
	}
	if used != holds {
		return fmt.Errorf("vacation: used %d != customer holds %d", used, holds)
	}
	if holds == 0 && bills != 0 {
		return fmt.Errorf("vacation: bills %d with no holds", bills)
	}
	return nil
}

// Fingerprint folds the full database state (ordered engines must
// match the sequential run exactly).
func (a *App) Fingerprint() uint64 {
	var h uint64
	for k := 0; k < numKinds; k++ {
		for id, rec := range a.tables[k].Snapshot() {
			h ^= rng.Mix64(uint64(k+1)*1315423911 ^ id*31 ^ rec)
		}
	}
	for id, rec := range a.customers.Snapshot() {
		h ^= rng.Mix64(id*131 ^ rec)
	}
	return h
}

// Reset restores the initial database.
func (a *App) Reset() {
	for k := 0; k < numKinds; k++ {
		a.tables[k] = txds.NewHashMap(4 * a.cfg.Resources)
	}
	a.customers = txds.NewHashMap(4 * a.cfg.Customers)
	a.populate(rng.New(a.cfg.Seed))
}
