package kmeans

import (
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{Points: 200, Dims: 4, K: 6, Iterations: 2, Chunk: 4, Seed: 3, Yield: yield}
}

func TestSequentialVerifies(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedEnginesMatchSequential(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2, stm.OrderedNOrec, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			res, err := a.Run(apps.Runner{Alg: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatal(err)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x (stats %v)", got, want, res.Stats)
			}
		})
	}
}

func TestHighContentionPreset(t *testing.T) {
	cfg := HighContention()
	cfg.Points, cfg.Iterations, cfg.Yield = 120, 2, true
	a := New(cfg)
	if _, err := a.Run(apps.Runner{Alg: stm.OUL, Workers: 6}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if LowContention().K <= HighContention().K {
		t.Fatal("low contention must use more clusters than high")
	}
}

func TestResetAllowsRerun(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	f1 := a.Fingerprint()
	a.Reset()
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != f1 {
		t.Fatal("rerun after Reset diverged")
	}
}

func TestNumTxns(t *testing.T) {
	a := New(small(false))
	if a.NumTxns() != 2*((200+3)/4) {
		t.Fatalf("NumTxns = %d", a.NumTxns())
	}
}
