// Package kmeans reproduces STAMP's kmeans for Figure 6a–b: iterative
// clustering where the per-point work (finding the nearest center) is
// local and the shared updates (accumulating the new center sums and
// counts) are transactional. The paper's low- and high-contention
// configurations differ in cluster count: fewer clusters mean more
// transactions collide on the same accumulators.
//
// Each iteration snapshots the centers (read-only for the iteration,
// as in STAMP, which re-reads centers non-transactionally), then runs
// one ordered transaction per chunk of points that folds the chunk
// into the shared accumulators. Ages are chunk indexes, so ordered
// runs accumulate in exactly sequential order and the final centers
// are bit-identical to the sequential execution.
package kmeans

import (
	"fmt"
	"math"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the clustering.
type Config struct {
	// Points is the number of input points (default 2048).
	Points int
	// Dims is the point dimensionality (default 8).
	Dims int
	// K is the cluster count (default 40; the high-contention
	// configuration uses a small K such as 8).
	K int
	// Iterations is the fixed iteration count (default 4; STAMP
	// iterates to convergence, fixed count keeps runs comparable).
	Iterations int
	// Chunk is the number of points folded per transaction
	// (default 4).
	Chunk int
	// Seed drives input generation (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions so runs
	// interleave on single-core hosts.
	Yield bool
}

// LowContention returns the paper's low-contention configuration.
func LowContention() Config { return Config{K: 40} }

// HighContention returns the paper's high-contention configuration.
func HighContention() Config { return Config{K: 8} }

func (c Config) withDefaults() Config {
	if c.Points == 0 {
		c.Points = 2048
	}
	if c.Dims == 0 {
		c.Dims = 8
	}
	if c.K == 0 {
		c.K = 40
	}
	if c.Iterations == 0 {
		c.Iterations = 4
	}
	if c.Chunk == 0 {
		c.Chunk = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// App is one kmeans instance.
type App struct {
	cfg    Config
	points [][]float64 // read-only input
	// Shared accumulators, rebuilt every iteration: per-cluster sums
	// and membership counts.
	sums   []stm.TVar[float64] // K*Dims per-cluster coordinate sums
	counts []stm.Var           // K counts
	// centers is the per-iteration snapshot (plain memory, read-only
	// during the transactional phase, as in STAMP).
	centers [][]float64
}

// New builds the input and shared state.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	a := &App{
		cfg:    cfg,
		points: make([][]float64, cfg.Points),
		sums:   stm.NewTVars[float64](cfg.K * cfg.Dims),
		counts: stm.NewVars(cfg.K),
	}
	for i := range a.points {
		p := make([]float64, cfg.Dims)
		for d := range p {
			p[d] = r.Float64() * 100
		}
		a.points[i] = p
	}
	a.centers = make([][]float64, cfg.K)
	for k := range a.centers {
		a.centers[k] = append([]float64(nil), a.points[k%cfg.Points]...)
	}
	return a
}

// NumTxns returns the total transaction count across iterations.
func (a *App) NumTxns() int {
	chunks := (a.cfg.Points + a.cfg.Chunk - 1) / a.cfg.Chunk
	return chunks * a.cfg.Iterations
}

func (a *App) nearest(p []float64) int {
	best, bestDist := 0, math.MaxFloat64
	for k := range a.centers {
		var d2 float64
		for d := 0; d < a.cfg.Dims; d++ {
			diff := p[d] - a.centers[k][d]
			d2 += diff * diff
		}
		if d2 < bestDist {
			best, bestDist = k, d2
		}
	}
	return best
}

// Run executes the full clustering under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	cfg := a.cfg
	chunks := (cfg.Points + cfg.Chunk - 1) / cfg.Chunk
	var results []stm.Result
	for iter := 0; iter < cfg.Iterations; iter++ {
		for i := range a.sums {
			a.sums[i].Store(0)
		}
		for i := range a.counts {
			a.counts[i].Store(0)
		}
		body := func(tx stm.Tx, age int) {
			lo := age * cfg.Chunk
			hi := lo + cfg.Chunk
			if hi > cfg.Points {
				hi = cfg.Points
			}
			for i := lo; i < hi; i++ {
				p := a.points[i]
				k := a.nearest(p) // local computation on the snapshot
				for d := 0; d < cfg.Dims; d++ {
					stm.AddT(tx, &a.sums[k*cfg.Dims+d], p[d])
				}
				tx.Write(&a.counts[k], tx.Read(&a.counts[k])+1)
				if cfg.Yield {
					runtime.Gosched()
				}
			}
		}
		res, err := r.Exec(chunks, body)
		if err != nil {
			return apps.Merge(results...), err
		}
		results = append(results, res)
		// Sequential reduction: recompute the center snapshot.
		for k := 0; k < cfg.K; k++ {
			n := a.counts[k].Load()
			if n == 0 {
				continue
			}
			for d := 0; d < cfg.Dims; d++ {
				a.centers[k][d] = a.sums[k*cfg.Dims+d].Load() / float64(n)
			}
		}
	}
	return apps.Merge(results...), nil
}

// Verify checks the accumulator invariants after a run: membership
// counts sum to the point count.
func (a *App) Verify() error {
	var total uint64
	for k := range a.counts {
		total += a.counts[k].Load()
	}
	if total != uint64(a.cfg.Points) {
		return fmt.Errorf("kmeans: memberships %d != points %d", total, a.cfg.Points)
	}
	return nil
}

// Fingerprint folds the final centers into one value; ordered engines
// must match the sequential run exactly.
func (a *App) Fingerprint() uint64 {
	var h uint64
	for k := range a.centers {
		for _, x := range a.centers[k] {
			h = rng.Mix64(h ^ math.Float64bits(x))
		}
	}
	return h
}

// Reset restores the initial centers so the app can run again.
func (a *App) Reset() {
	for k := range a.centers {
		copy(a.centers[k], a.points[k%a.cfg.Points])
	}
	for i := range a.sums {
		a.sums[i].Store(0)
	}
	for i := range a.counts {
		a.counts[i].Store(0)
	}
}
