package stmlite

import (
	"testing"

	"github.com/orderedstm/ostm/internal/meta"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(meta.EngineConfig{}.Normalize())
	e.Start()
	t.Cleanup(e.Stop)
	return e
}

func TestGrantInAgeOrder(t *testing.T) {
	e := newEngine(t)
	v := meta.NewVar(0)
	u := meta.NewVar(0)
	t1 := e.NewTxn(1).(*Txn)
	t1.Write(u, 1)
	done := make(chan bool)
	go func() { done <- t1.TryCommit() }()
	select {
	case <-done:
		t.Fatal("age 1 granted before age 0")
	default:
	}
	t0 := e.NewTxn(0).(*Txn)
	t0.Write(v, 1)
	if !t0.TryCommit() {
		t.Fatal("age 0 denied on an empty history")
	}
	if !<-done {
		t.Fatal("age 1 denied after age 0 committed (disjoint sets)")
	}
	if v.Load() != 1 || u.Load() != 1 {
		t.Fatal("write-backs missing")
	}
}

func TestConflictDeniedThenRetrySucceeds(t *testing.T) {
	e := newEngine(t)
	v := meta.NewVar(0)
	// Reader of v starts...
	r := e.NewTxn(1).(*Txn)
	_ = r.Read(v)
	// ...then a lower-age writer of v commits during its execution.
	w := e.NewTxn(0).(*Txn)
	w.Write(v, 7)
	if !w.TryCommit() {
		t.Fatal("writer denied")
	}
	// The reader's submission must be denied (signature conflict with
	// a commit after its start stamp)...
	if r.TryCommit() {
		t.Fatal("stale reader granted")
	}
	// ...and a fresh attempt (new start stamp) must eventually pass.
	ok := false
	for attempt := 0; attempt < 10 && !ok; attempt++ {
		fresh := e.NewTxn(1).(*Txn)
		if fresh.Read(v) != 7 {
			t.Fatal("fresh attempt read stale value")
		}
		ok = fresh.TryCommit()
	}
	if !ok {
		t.Fatal("retries never granted: stable stamp is not advancing")
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	e := newEngine(t)
	v := meta.NewVar(1)
	tx := e.NewTxn(0).(*Txn)
	tx.Write(v, 5)
	if tx.Read(v) != 5 {
		t.Fatal("RYW broken")
	}
	if v.Load() != 1 {
		t.Fatal("write-back escaped before grant")
	}
	if !tx.TryCommit() {
		t.Fatal("commit denied")
	}
	if v.Load() != 5 {
		t.Fatal("write-back missing")
	}
}

func TestIdentity(t *testing.T) {
	e := New(meta.EngineConfig{}.Normalize())
	if e.Name() != "STMLite" || e.Mode() != meta.ModeLite {
		t.Fatal("identity wrong")
	}
	tx := e.NewTxn(3).(*Txn)
	if tx.Age() != 3 || tx.Doomed() {
		t.Fatal("txn identity wrong")
	}
	tx.AbandonAttempt()
	tx.Cleanup()
}
