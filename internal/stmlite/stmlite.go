// Package stmlite re-implements STMLite (Mehrara, Hao, Hsu, Mahlke,
// PLDI 2009), the specialized ordered-commit STM the paper compares
// against (§2, §8). STMLite is a write-back design with no per-address
// locks: workers execute transactions speculatively, summarize their
// read- and write-sets as Bloom-filter signatures, and submit them to
// a Transaction Commit Manager (TCM) running on its own thread. The
// TCM validates a transaction's read signature against the write
// signatures of transactions that committed during its execution and
// grants write-back permission in the predefined commit order, letting
// several transactions with disjoint signatures write back
// concurrently. Workers poll/stall until the TCM answers.
//
// The paper notes the source of STMLite is not public and that the
// authors re-implemented it on their own framework; this package is
// the analogous re-implementation on this repository's substrate.
package stmlite

import (
	"sync"
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/internal/sig"
)

// ringCapacity bounds the TCM's memory of committed write signatures.
// A transaction whose execution outlived the ring is denied
// conservatively and re-executed with a fresh start stamp.
const ringCapacity = 4096

// Engine implements meta.Engine for STMLite.
type Engine struct {
	cfg    meta.EngineConfig
	stamp  atomic.Uint64 // commit stamp: number of granted transactions
	stable atomic.Uint64 // highest stamp whose write-back (and all before it) finished
	subs   chan *submission
	stopc  chan struct{}
	wg     sync.WaitGroup
	depot  meta.Depot[Txn]
}

// New returns a fresh STMLite engine for one run. The executor must
// Start/Stop it (meta.Service) so the TCM thread runs for the
// duration.
func New(cfg meta.EngineConfig) *Engine {
	return &Engine{
		cfg:   cfg.Normalize(),
		subs:  make(chan *submission, 256),
		stopc: make(chan struct{}),
	}
}

// Name implements meta.Engine.
func (e *Engine) Name() string { return "STMLite" }

// Mode implements meta.Engine.
func (e *Engine) Mode() meta.Mode { return meta.ModeLite }

// Stats implements meta.Engine.
func (e *Engine) Stats() *meta.Stats { return e.cfg.Stats }

// Start launches the TCM thread (meta.Service).
func (e *Engine) Start() {
	e.wg.Add(1)
	go e.tcm()
}

// Stop terminates the TCM thread, denying any parked submissions.
func (e *Engine) Stop() {
	close(e.stopc)
	e.wg.Wait()
}

// NewTxn implements meta.Engine. The start stamp is the *stable*
// stamp — the highest commit whose write-back has fully landed in
// memory — not the grant counter: a transaction that starts between a
// grant and its write-back could otherwise read pre-write-back state
// that signature validation would not cover.
func (e *Engine) NewTxn(age uint64) meta.Txn {
	return &Txn{
		eng:      e,
		cell:     e.cfg.Stats.DefaultCell(),
		age:      age,
		start:    e.stable.Load(),
		readSig:  sig.New(e.cfg.SigBits),
		writeSig: sig.New(e.cfg.SigBits),
	}
}

// NewPool implements meta.PoolEngine. The descriptor, its write buffer
// and the read signature are reused; the *write* signature must stay
// immutable after submission (the TCM's committed-signature ring and
// in-flight list retain it), so every attempt gets a fresh one.
func (e *Engine) NewPool() meta.TxnPool {
	return &pool{eng: e, cache: meta.NewCache(&e.depot), cell: e.cfg.Stats.NewCell()}
}

type pool struct {
	eng   *Engine
	cache *meta.Cache[Txn]
	cell  *meta.StatsCell
}

// NewTxn implements meta.TxnPool.
func (p *pool) NewTxn(age uint64) meta.Txn {
	t := p.cache.Get()
	if t == nil {
		return &Txn{
			eng:      p.eng,
			cell:     p.cell,
			age:      age,
			start:    p.eng.stable.Load(),
			readSig:  sig.New(p.eng.cfg.SigBits),
			writeSig: sig.New(p.eng.cfg.SigBits),
		}
	}
	t.age = age
	t.start = p.eng.stable.Load()
	t.readSig.Reset()
	t.writeSig = sig.New(p.eng.cfg.SigBits)
	t.writes = t.writes[:0]
	return t
}

// Retire implements meta.TxnPool.
func (p *pool) Retire(x meta.Txn) {
	if t, ok := x.(*Txn); ok && t.eng == p.eng {
		p.cache.Put(t)
	}
}

type writeEntry struct {
	v   *meta.Var
	val uint64
}

// submission is what a worker hands to the TCM at try-commit.
type submission struct {
	age      uint64
	start    uint64 // stable commit stamp at transaction start
	stamp    uint64 // commit stamp assigned at grant
	readSig  *sig.Filter
	writeSig *sig.Filter
	grant    chan bool
	done     atomic.Bool // write-back finished
}

// Txn is one STMLite transaction attempt.
type Txn struct {
	eng      *Engine
	cell     *meta.StatsCell
	age      uint64
	start    uint64
	readSig  *sig.Filter
	writeSig *sig.Filter
	writes   []writeEntry
}

// Age implements meta.Txn.
func (t *Txn) Age() uint64 { return t.age }

// Doomed implements meta.Txn: STMLite never aborts remotely; conflicts
// surface as TCM denials.
func (t *Txn) Doomed() bool { return false }

// Read loads the value and folds the location into the read signature.
func (t *Txn) Read(v *meta.Var) uint64 {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].v == v {
			return t.writes[i].val
		}
	}
	t.readSig.Add(v.ID())
	return v.Load()
}

// Write buffers the value and folds the location into the write
// signature.
func (t *Txn) Write(v *meta.Var, x uint64) {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].v == v {
			t.writes[i].val = x
			return
		}
	}
	t.writeSig.Add(v.ID())
	t.writes = append(t.writes, writeEntry{v: v, val: x})
}

// WaitStable implements meta.Stabilizer: block until every granted
// write-back has landed in memory. Only meaningful when the caller
// holds the commit frontier (no further grants can intervene, so the
// grant stamp is frozen and the TCM's idle polling drives the stable
// stamp up to it). A halted order is an escape hatch: the TCM stops
// republishing stable once it enters its deny-everything drain, so
// waiting would deadlock teardown — and a halted run discards the
// caller's work anyway (write-backs are never granted after a halt).
func (t *Txn) WaitStable() { t.eng.WaitStable() }

// WaitStable implements meta.Stabilizer at the engine level: block
// until every granted write-back has landed in memory. The pipeline's
// checkpointer calls it after quiescing the claim gate — no further
// grants can arrive, so the grant stamp is frozen and the TCM's idle
// polling drives the stable stamp up to it; the snapshot then reads
// the exact sequential state from the Vars. Same halt escape as the
// attempt-level wait.
func (e *Engine) WaitStable() {
	for spin := 0; e.stable.Load() < e.stamp.Load(); spin++ {
		if e.cfg.Order.Halted() {
			return
		}
		meta.Pause(spin)
	}
}

// ReadSetValid implements meta.Revalidator. Signatures cannot be
// re-validated against values, so a speculative fault is
// conservatively attributed to staleness whenever any transaction
// committed since this one started (which is when stale reads are
// possible).
func (t *Txn) ReadSetValid() bool { return t.eng.stamp.Load() == t.start }

// TryCommit submits the signatures to the TCM, stalls for its verdict
// (the paper's "worker threads poll and stall"), and on grant performs
// the write-back.
func (t *Txn) TryCommit() bool {
	s := &submission{
		age:      t.age,
		start:    t.start,
		readSig:  t.readSig,
		writeSig: t.writeSig,
		grant:    make(chan bool, 1),
	}
	select {
	case t.eng.subs <- s:
	case <-t.eng.stopc:
		return false
	}
	if !<-s.grant {
		t.cell.Abort(meta.CauseValidation)
		// The denial names commits whose write-backs may not have
		// landed yet (start stamps only cover *stable* commits):
		// re-executing before they land reads the same pre-write-back
		// state and gets denied again — and under the tight TCM/worker
		// channel ping-pong of a GOMAXPROCS=1 host that retry loop can
		// monopolize the scheduler, starving the very write-backs it
		// needs (a livelock the streaming pipeline reliably hit).
		// Yield until the grant frontier stabilizes. The wait must be
		// bounded: the TCM republishes stable only while submissions
		// flow, so a quiesced system needs our re-execution to push a
		// submission through before stable can catch up.
		granted := t.eng.stamp.Load()
		for spin := 0; t.eng.stable.Load() < granted && spin < 128; spin++ {
			meta.Pause(spin + 3) // always yield: the TCM must run (DESIGN.md §1)
		}
		return false
	}
	for i := range t.writes {
		t.writes[i].v.Store(t.writes[i].val)
	}
	s.done.Store(true)
	return true
}

// Commit implements meta.Txn.
func (t *Txn) Commit() bool { return true }

// Cleanup implements meta.Txn. The write buffer is kept for reuse.
func (t *Txn) Cleanup() { t.writes = t.writes[:0] }

// AbandonAttempt implements meta.Txn: nothing shared before grant.
func (t *Txn) AbandonAttempt() {}

// ringEntry is one committed write signature with its commit stamp.
type ringEntry struct {
	stamp uint64
	ws    *sig.Filter
}

// tcm is the Transaction Commit Manager loop.
func (e *Engine) tcm() {
	defer e.wg.Done()
	pending := make(map[uint64]*submission)
	var ring []ringEntry
	var inflight []*submission
	for {
		var s *submission
		for spin := 0; s == nil; spin++ {
			// While granted write-backs are outstanding, poll them down
			// between channel checks: the stable stamp must be able to
			// catch up with the grant stamp even if no submission ever
			// arrives again. A worker re-validating its read set after
			// a denial — or the sandbox classifying a fault — waits for
			// exactly that catch-up, and a TCM parked in a blocking
			// receive would leave it spinning forever.
			e.advanceStable(&inflight)
			if len(inflight) > 0 {
				select {
				case s = <-e.subs:
				case <-e.stopc:
					e.denyAll(pending)
					return
				case <-e.cfg.Order.HaltCh():
					e.denyAll(pending)
					e.drainDenying()
					return
				default:
					meta.Pause(spin)
				}
				continue
			}
			select {
			case s = <-e.subs:
			case <-e.stopc:
				e.denyAll(pending)
				return
			case <-e.cfg.Order.HaltCh():
				// The run stopped (a fault halted the order). The age
				// at the commit frontier will never submit, so no
				// parked submission can ever be granted: deny
				// everything now and keep denying until Stop, or
				// workers blocked in TryCommit could never exit and
				// teardown would deadlock.
				e.denyAll(pending)
				e.drainDenying()
				return
			}
		}
		pending[s.age] = s
		if e.cfg.Order.Halted() {
			e.denyAll(pending)
			e.drainDenying()
			return
		}
		// Grant as many consecutive next-to-commit transactions as
		// possible.
		for {
			// Publish write-back progress first: a denied worker's
			// retry must be able to pick up a start stamp that covers
			// every landed commit, or it would be denied forever.
			e.advanceStable(&inflight)
			next := e.cfg.Order.Committed()
			cand, ok := pending[next]
			if !ok {
				break
			}
			// Conflict: read signature vs write signatures committed
			// after the candidate started. If the candidate's
			// execution outlived the signature ring, deny
			// conservatively (a fresh attempt gets a current stamp).
			conflict := false
			if len(ring) > 0 && cand.start+1 < ring[0].stamp {
				conflict = true
			} else {
				for i := len(ring) - 1; i >= 0; i-- {
					if ring[i].stamp <= cand.start {
						break
					}
					if ring[i].ws.Intersects(cand.readSig) {
						conflict = true
						break
					}
				}
			}
			if conflict {
				delete(pending, next)
				cand.grant <- false // worker re-executes and resubmits
				break
			}
			// Concurrent write-backs must not overlap each other's
			// write sets (in-order application of aliased writes):
			// wait for conflicting in-flight write-backs to finish.
			inflight = e.waitInflight(inflight, cand)
			st := e.stamp.Add(1)
			cand.stamp = st
			ring = append(ring, ringEntry{stamp: st, ws: cand.writeSig})
			if len(ring) > ringCapacity {
				ring = append(ring[:0], ring[len(ring)-ringCapacity/2:]...)
			}
			inflight = append(inflight, cand)
			delete(pending, next)
			cand.grant <- true
			e.cfg.Order.Complete(next)
			e.advanceStable(&inflight)
		}
	}
}

// denyAll denies every parked submission.
func (e *Engine) denyAll(pending map[uint64]*submission) {
	for age, p := range pending {
		delete(pending, age)
		p.grant <- false
	}
}

// drainDenying denies every further submission until Stop; it runs
// after a halt, when no grant can ever be issued again.
func (e *Engine) drainDenying() {
	for {
		select {
		case s := <-e.subs:
			s.grant <- false
		case <-e.stopc:
			return
		}
	}
}

// waitInflight prunes finished write-backs and stalls until none of
// the remaining ones overlaps the candidate's signatures.
func (e *Engine) waitInflight(inflight []*submission, cand *submission) []*submission {
	for spin := 0; ; spin++ {
		live := inflight[:0]
		conflict := false
		for _, f := range inflight {
			if f.done.Load() {
				continue
			}
			live = append(live, f)
			if f.writeSig.Intersects(cand.writeSig) || f.writeSig.Intersects(cand.readSig) {
				conflict = true
			}
		}
		inflight = live
		e.advanceStable(&inflight)
		if !conflict {
			return inflight
		}
		meta.Pause(spin)
	}
}

// advanceStable publishes the highest stamp below which every granted
// write-back has completed. Grants are in order, so the stable stamp
// is the stamp just before the oldest unfinished write-back (or the
// grant counter when none is in flight).
func (e *Engine) advanceStable(inflight *[]*submission) {
	live := (*inflight)[:0]
	stable := e.stamp.Load()
	for _, f := range *inflight {
		if f.done.Load() {
			continue
		}
		live = append(live, f)
		if f.stamp-1 < stable {
			stable = f.stamp - 1
		}
	}
	*inflight = live
	if stable > e.stable.Load() {
		e.stable.Store(stable)
	}
}
