// Package fluidanimate reproduces PARSEC's fluidanimate for Figure
// 7c: smoothed-particle-hydrodynamics-style simulation over a uniform
// grid of cells. Per time step, a density phase accumulates each
// particle's density from the particles in its cell and the
// neighboring cells, and a force/advance phase updates velocities and
// positions from the accumulated densities. Transactions process one
// cell each, so neighboring cells' transactions conflict on the
// shared particle accumulators at cell boundaries — the "six levels
// of loop nesting updating a shared array structure" contention the
// paper describes. Because the loop nest makes index-based ordering
// awkward, the original evaluation assigned ages from a global atomic
// integer; here that corresponds to the executor's sequential age
// counter over the flattened (step, phase, cell) iteration space.
//
// The kernel is deterministic: ordered engines must match the
// sequential run bit-for-bit.
package fluidanimate

import (
	"fmt"
	"math"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the simulation.
type Config struct {
	// CellsX, CellsY are the grid dimensions (default 8×8).
	CellsX, CellsY int
	// ParticlesPerCell is the initial particle density (default 4).
	ParticlesPerCell int
	// Steps is the number of time steps (default 3).
	Steps int
	// Seed drives particle placement (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

func (c Config) withDefaults() Config {
	if c.CellsX == 0 {
		c.CellsX = 8
	}
	if c.CellsY == 0 {
		c.CellsY = 8
	}
	if c.ParticlesPerCell == 0 {
		c.ParticlesPerCell = 4
	}
	if c.Steps == 0 {
		c.Steps = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// App is one simulation instance. Particle state lives in shared
// transactional words (positions, velocities, densities); the
// cell→particle assignment is rebuilt sequentially between steps
// (STAMP/PARSEC rebuild the grid in a separate phase).
type App struct {
	cfg Config
	n   int                 // particle count
	px  []stm.TVar[float64] // positions
	py  []stm.TVar[float64]
	vx  []stm.TVar[float64] // velocities
	vy  []stm.TVar[float64]
	rho []stm.TVar[float64] // densities
	// cells[i] lists particle indexes currently in cell i (rebuilt
	// sequentially between steps; read-only during phases).
	cells [][]int
}

// New places particles uniformly.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	n := cfg.CellsX * cfg.CellsY * cfg.ParticlesPerCell
	a := &App{
		cfg: cfg,
		n:   n,
		px:  stm.NewTVars[float64](n),
		py:  stm.NewTVars[float64](n),
		vx:  stm.NewTVars[float64](n),
		vy:  stm.NewTVars[float64](n),
		rho: stm.NewTVars[float64](n),
	}
	r := rng.New(cfg.Seed)
	for i := 0; i < n; i++ {
		a.px[i].Store(r.Float64() * float64(cfg.CellsX))
		a.py[i].Store(r.Float64() * float64(cfg.CellsY))
		a.vx[i].Store((r.Float64() - 0.5) * 0.1)
		a.vy[i].Store((r.Float64() - 0.5) * 0.1)
	}
	a.rebuildCells()
	return a
}

// rebuildCells is the sequential grid-rebuild phase.
func (a *App) rebuildCells() {
	a.cells = make([][]int, a.cfg.CellsX*a.cfg.CellsY)
	for i := 0; i < a.n; i++ {
		x := int(a.px[i].Load())
		y := int(a.py[i].Load())
		x = clamp(x, 0, a.cfg.CellsX-1)
		y = clamp(y, 0, a.cfg.CellsY-1)
		c := y*a.cfg.CellsX + x
		a.cells[c] = append(a.cells[c], i)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// neighborhood visits cell c and its 8 neighbors.
func (a *App) neighborhood(c int, visit func(int)) {
	cx, cy := c%a.cfg.CellsX, c/a.cfg.CellsX
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := cx+dx, cy+dy
			if nx >= 0 && nx < a.cfg.CellsX && ny >= 0 && ny < a.cfg.CellsY {
				visit(ny*a.cfg.CellsX + nx)
			}
		}
	}
}

// NumTxns returns the total transactions across steps and phases.
func (a *App) NumTxns() int {
	return a.cfg.Steps * 2 * a.cfg.CellsX * a.cfg.CellsY
}

const smoothingRadius = 1.2

// Run executes the simulation under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	nCells := a.cfg.CellsX * a.cfg.CellsY
	var results []stm.Result
	for step := 0; step < a.cfg.Steps; step++ {
		// Phase 1 — density: each cell's transaction accumulates the
		// density contributions of neighboring particles into the
		// particles of the cell (boundary particles are touched by
		// several cells' transactions → conflicts).
		density := func(tx stm.Tx, age int) {
			c := age
			for _, i := range a.cells[c] {
				xi := stm.ReadT(tx, &a.px[i])
				yi := stm.ReadT(tx, &a.py[i])
				var rho float64
				a.neighborhood(c, func(nc int) {
					for _, j := range a.cells[nc] {
						xj := stm.ReadT(tx, &a.px[j])
						yj := stm.ReadT(tx, &a.py[j])
						d2 := (xi-xj)*(xi-xj) + (yi-yj)*(yi-yj)
						if d2 < smoothingRadius*smoothingRadius {
							w := smoothingRadius*smoothingRadius - d2
							rho += w * w * w
						}
					}
				})
				stm.WriteT(tx, &a.rho[i], rho)
				if a.cfg.Yield {
					runtime.Gosched()
				}
			}
		}
		res, err := r.Exec(nCells, density)
		if err != nil {
			return apps.Merge(results...), err
		}
		results = append(results, res)
		// Phase 2 — force & advance: velocity from density gradient,
		// then position update.
		advance := func(tx stm.Tx, age int) {
			c := age
			for _, i := range a.cells[c] {
				xi := stm.ReadT(tx, &a.px[i])
				yi := stm.ReadT(tx, &a.py[i])
				ri := stm.ReadT(tx, &a.rho[i])
				var fx, fy float64
				a.neighborhood(c, func(nc int) {
					for _, j := range a.cells[nc] {
						if j == i {
							continue
						}
						xj := stm.ReadT(tx, &a.px[j])
						yj := stm.ReadT(tx, &a.py[j])
						rj := stm.ReadT(tx, &a.rho[j])
						dx, dy := xi-xj, yi-yj
						d2 := dx*dx + dy*dy
						if d2 > 1e-12 && d2 < smoothingRadius*smoothingRadius {
							press := (ri + rj) * 1e-4
							inv := press / math.Sqrt(d2)
							fx += dx * inv
							fy += dy * inv
						}
					}
				})
				const dt = 0.005
				nvx := stm.ReadT(tx, &a.vx[i]) + fx*dt
				nvy := stm.ReadT(tx, &a.vy[i]) + fy*dt
				stm.WriteT(tx, &a.vx[i], nvx)
				stm.WriteT(tx, &a.vy[i], nvy)
				nx := reflect1(xi+nvx*dt, float64(a.cfg.CellsX))
				ny := reflect1(yi+nvy*dt, float64(a.cfg.CellsY))
				stm.WriteT(tx, &a.px[i], nx)
				stm.WriteT(tx, &a.py[i], ny)
				if a.cfg.Yield {
					runtime.Gosched()
				}
			}
		}
		res, err = r.Exec(nCells, advance)
		if err != nil {
			return apps.Merge(results...), err
		}
		results = append(results, res)
		a.rebuildCells()
	}
	return apps.Merge(results...), nil
}

// reflect1 bounces a coordinate off the domain walls.
func reflect1(x, max float64) float64 {
	if x < 0 {
		return -x
	}
	if x > max {
		return 2*max - x
	}
	return x
}

// Verify checks all particles stayed in the domain with finite state.
func (a *App) Verify() error {
	for i := 0; i < a.n; i++ {
		x := a.px[i].Load()
		y := a.py[i].Load()
		if math.IsNaN(x) || math.IsNaN(y) || x < 0 || x > float64(a.cfg.CellsX) || y < 0 || y > float64(a.cfg.CellsY) {
			return fmt.Errorf("fluidanimate: particle %d escaped to (%v, %v)", i, x, y)
		}
		if math.IsNaN(a.rho[i].Load()) {
			return fmt.Errorf("fluidanimate: particle %d density NaN", i)
		}
	}
	return nil
}

// Fingerprint folds the particle state (ordered engines must match
// the sequential run exactly).
func (a *App) Fingerprint() uint64 {
	var h uint64
	for i := 0; i < a.n; i++ {
		h = rng.Mix64(h ^ math.Float64bits(a.px[i].Load()))
		h = rng.Mix64(h ^ math.Float64bits(a.py[i].Load()))
		h = rng.Mix64(h ^ math.Float64bits(a.vx[i].Load()))
		h = rng.Mix64(h ^ math.Float64bits(a.vy[i].Load()))
	}
	return h
}

// Reset re-places the particles for another run.
func (a *App) Reset() {
	r := rng.New(a.cfg.Seed)
	for i := 0; i < a.n; i++ {
		a.px[i].Store(r.Float64() * float64(a.cfg.CellsX))
		a.py[i].Store(r.Float64() * float64(a.cfg.CellsY))
		a.vx[i].Store((r.Float64() - 0.5) * 0.1)
		a.vy[i].Store((r.Float64() - 0.5) * 0.1)
		a.rho[i].Store(0)
	}
	a.rebuildCells()
}
