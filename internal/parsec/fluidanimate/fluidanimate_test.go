package fluidanimate

import (
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{CellsX: 4, CellsY: 4, ParticlesPerCell: 3, Steps: 2, Seed: 4, Yield: yield}
}

func TestSequentialVerifies(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedEnginesMatchSequential(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			res, err := a.Run(apps.Runner{Alg: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatalf("%v (stats %v)", err, res.Stats)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x (stats %v)", got, want, res.Stats)
			}
		})
	}
}

func TestParticlesStayInDomain(t *testing.T) {
	a := New(Config{CellsX: 3, CellsY: 3, ParticlesPerCell: 4, Steps: 5, Seed: 8})
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestResetAllowsRerun(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	f := a.Fingerprint()
	a.Reset()
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != f {
		t.Fatal("rerun diverged")
	}
}
