// Package blackscholes reproduces PARSEC's blackscholes for Figure
// 7a: pricing a portfolio of European options with the Black-Scholes
// closed-form solution. The per-option computation is pure
// floating-point work; each transaction prices a block of options
// ("each transaction involves multiple calculations to reduce the
// overhead of parallelization", §8), writes the per-option results to
// disjoint shared slots and folds them into one shared portfolio
// checksum — the single contention point.
//
// Everything is deterministic: ordered engines must match the
// sequential run bit-for-bit, including the float accumulation order
// into the checksum.
package blackscholes

import (
	"fmt"
	"math"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the portfolio.
type Config struct {
	// Options is the portfolio size (default 4096).
	Options int
	// Block is options priced per transaction (default 16).
	Block int
	// Seed drives portfolio generation (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

func (c Config) withDefaults() Config {
	if c.Options == 0 {
		c.Options = 4096
	}
	if c.Block == 0 {
		c.Block = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

type option struct {
	spot, strike, rate, vol, time float64
	call                          bool
}

// App is one portfolio instance.
type App struct {
	cfg     Config
	options []option
	prices  []stm.TVar[float64] // per-option result slots
	portSum *stm.TVar[float64]  // shared portfolio total (contention point)
}

// New generates the portfolio.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	a := &App{
		cfg:     cfg,
		options: make([]option, cfg.Options),
		prices:  stm.NewTVars[float64](cfg.Options),
		portSum: stm.NewTVar[float64](0),
	}
	for i := range a.options {
		a.options[i] = option{
			spot:   50 + 100*r.Float64(),
			strike: 50 + 100*r.Float64(),
			rate:   0.01 + 0.09*r.Float64(),
			vol:    0.1 + 0.5*r.Float64(),
			time:   0.2 + 2*r.Float64(),
			call:   r.Intn(2) == 0,
		}
	}
	return a
}

// cndf is the cumulative normal distribution function approximation
// used by the PARSEC kernel (Abramowitz & Stegun 26.2.17).
func cndf(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	k := 1 / (1 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	val := 1 - math.Exp(-x*x/2)/math.Sqrt(2*math.Pi)*poly
	if neg {
		return 1 - val
	}
	return val
}

// price evaluates the Black-Scholes formula for one option.
func price(o option) float64 {
	d1 := (math.Log(o.spot/o.strike) + (o.rate+o.vol*o.vol/2)*o.time) / (o.vol * math.Sqrt(o.time))
	d2 := d1 - o.vol*math.Sqrt(o.time)
	if o.call {
		return o.spot*cndf(d1) - o.strike*math.Exp(-o.rate*o.time)*cndf(d2)
	}
	return o.strike*math.Exp(-o.rate*o.time)*cndf(-d2) - o.spot*cndf(-d1)
}

// NumTxns returns the block count.
func (a *App) NumTxns() int { return (len(a.options) + a.cfg.Block - 1) / a.cfg.Block }

// Run executes the pricing under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	cfg := a.cfg
	body := func(tx stm.Tx, age int) {
		lo := age * cfg.Block
		hi := lo + cfg.Block
		if hi > len(a.options) {
			hi = len(a.options)
		}
		var blockSum float64
		for i := lo; i < hi; i++ {
			p := price(a.options[i])
			stm.WriteT(tx, &a.prices[i], p)
			blockSum += p
		}
		if cfg.Yield {
			runtime.Gosched()
		}
		stm.AddT(tx, a.portSum, blockSum)
	}
	return r.Exec(a.NumTxns(), body)
}

// Verify re-prices sequentially and checks every slot plus the
// portfolio sum.
func (a *App) Verify() error {
	var want float64
	for i, o := range a.options {
		p := price(o)
		if got := a.prices[i].Load(); got != p {
			return fmt.Errorf("blackscholes: option %d price %v, want %v", i, got, p)
		}
		_ = p
	}
	// The portfolio sum must equal the block-ordered accumulation.
	for age := 0; age < a.NumTxns(); age++ {
		lo := age * a.cfg.Block
		hi := lo + a.cfg.Block
		if hi > len(a.options) {
			hi = len(a.options)
		}
		var blockSum float64
		for i := lo; i < hi; i++ {
			blockSum += price(a.options[i])
		}
		want += blockSum
	}
	if got := a.portSum.Load(); got != want {
		return fmt.Errorf("blackscholes: portfolio sum %v, want %v", got, want)
	}
	return nil
}

// Fingerprint folds prices and the portfolio sum.
func (a *App) Fingerprint() uint64 {
	var h uint64
	for i := range a.prices {
		h = rng.Mix64(h ^ math.Float64bits(a.prices[i].Load()))
	}
	return rng.Mix64(h ^ math.Float64bits(a.portSum.Load()))
}

// Reset clears the results for another run.
func (a *App) Reset() {
	for i := range a.prices {
		a.prices[i].Store(0)
	}
	a.portSum.Store(0)
}
