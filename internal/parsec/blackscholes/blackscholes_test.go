package blackscholes

import (
	"math"
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{Options: 256, Block: 8, Seed: 2, Yield: yield}
}

func TestCNDFProperties(t *testing.T) {
	if got := cndf(0); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("cndf(0) = %v", got)
	}
	if cndf(5) < 0.999 || cndf(-5) > 0.001 {
		t.Fatal("cndf tails wrong")
	}
	for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
		if s := cndf(x) + cndf(-x); math.Abs(s-1) > 1e-9 {
			t.Fatalf("cndf symmetry broken at %v: %v", x, s)
		}
	}
}

func TestPutCallParity(t *testing.T) {
	o := option{spot: 100, strike: 95, rate: 0.05, vol: 0.25, time: 1}
	call := price(option{o.spot, o.strike, o.rate, o.vol, o.time, true})
	put := price(option{o.spot, o.strike, o.rate, o.vol, o.time, false})
	// C - P = S - K e^{-rT}
	want := o.spot - o.strike*math.Exp(-o.rate*o.time)
	if math.Abs((call-put)-want) > 1e-6 {
		t.Fatalf("put-call parity violated: C-P=%v want %v", call-put, want)
	}
}

func TestSequentialVerifies(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedEnginesMatchSequential(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			if _, err := a.Run(apps.Runner{Alg: alg, Workers: 4}); err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatal(err)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x", got, want)
			}
		})
	}
}

func TestResetAllowsRerun(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	f := a.Fingerprint()
	a.Reset()
	if a.Fingerprint() == f {
		t.Fatal("reset did not clear results")
	}
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != f {
		t.Fatal("rerun diverged")
	}
}
