package swaptions

import (
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{Swaptions: 24, Trials: 16, Steps: 8, Seed: 3, Yield: yield}
}

func TestSimulateDeterministic(t *testing.T) {
	a := New(small(false))
	p1, e1 := a.simulate(5)
	p2, e2 := a.simulate(5)
	if p1 != p2 || e1 != e2 {
		t.Fatal("simulation not deterministic for the same swaption")
	}
	if p1 < 0 || e1 < 0 {
		t.Fatalf("negative price/stderr: %v %v", p1, e1)
	}
	q, _ := a.simulate(6)
	if q == p1 {
		t.Fatal("distinct swaptions produced identical prices (suspicious)")
	}
}

func TestSequentialVerifies(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedEnginesMatchSequential(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedNOrec, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			if _, err := a.Run(apps.Runner{Alg: alg, Workers: 4}); err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatal(err)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x", got, want)
			}
		})
	}
}

func TestResetAllowsRerun(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	f := a.Fingerprint()
	a.Reset()
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != f {
		t.Fatal("rerun diverged")
	}
}
