// Package swaptions reproduces PARSEC's swaptions for Figure 7b:
// pricing a portfolio of swaptions with Monte-Carlo simulation of a
// Heath-Jarrow-Morton forward-rate term structure. Each transaction
// prices one swaption: it simulates per-transaction-seeded rate paths
// (heavy local floating-point work), then writes the price and
// standard error to the swaption's shared result slots and updates a
// shared portfolio aggregate.
//
// Per-swaption RNG streams are seeded by (seed, age), so re-executed
// attempts replay identical paths and ordered runs are exactly
// deterministic.
package swaptions

import (
	"fmt"
	"math"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the portfolio.
type Config struct {
	// Swaptions is the portfolio size (default 64).
	Swaptions int
	// Trials is the Monte-Carlo path count per swaption (default 64).
	Trials int
	// Steps is the number of time steps per path (default 16).
	Steps int
	// Seed drives generation and simulation (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

func (c Config) withDefaults() Config {
	if c.Swaptions == 0 {
		c.Swaptions = 64
	}
	if c.Trials == 0 {
		c.Trials = 64
	}
	if c.Steps == 0 {
		c.Steps = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

type swaption struct {
	strike   float64
	maturity float64
	tenor    float64
	vol      float64
	rate0    float64
}

// App is one portfolio instance.
type App struct {
	cfg    Config
	swapts []swaption
	prices []stm.TVar[float64] // per-swaption price
	errs   []stm.TVar[float64] // per-swaption standard error
	total  *stm.TVar[float64]  // shared portfolio sum (contention point)
}

// New generates the portfolio.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	a := &App{
		cfg:    cfg,
		swapts: make([]swaption, cfg.Swaptions),
		prices: stm.NewTVars[float64](cfg.Swaptions),
		errs:   stm.NewTVars[float64](cfg.Swaptions),
		total:  stm.NewTVar[float64](0),
	}
	for i := range a.swapts {
		a.swapts[i] = swaption{
			strike:   0.02 + 0.06*r.Float64(),
			maturity: 1 + 4*r.Float64(),
			tenor:    1 + 4*r.Float64(),
			vol:      0.05 + 0.3*r.Float64(),
			rate0:    0.01 + 0.05*r.Float64(),
		}
	}
	return a
}

// simulate prices one swaption by Monte Carlo over a single-factor
// HJM-style short-rate evolution; returns (price, standard error).
func (a *App) simulate(idx int) (float64, float64) {
	s := a.swapts[idx]
	r := rng.New(a.cfg.Seed ^ rng.Mix64(uint64(idx)+0x5157))
	dt := s.maturity / float64(a.cfg.Steps)
	var sum, sumsq float64
	for trial := 0; trial < a.cfg.Trials; trial++ {
		rate := s.rate0
		disc := 1.0
		for step := 0; step < a.cfg.Steps; step++ {
			z := r.NormFloat64()
			rate = rate * math.Exp((s.vol*s.vol/2)*dt*(-1)+s.vol*math.Sqrt(dt)*z) // lognormal drift-adjusted step
			if rate < 1e-6 {
				rate = 1e-6
			}
			disc *= math.Exp(-rate * dt)
		}
		// Payoff: value of receiving (rate - strike) over the tenor,
		// floored at zero (payer swaption at exercise).
		payoff := (rate - s.strike) * s.tenor
		if payoff < 0 {
			payoff = 0
		}
		v := disc * payoff
		sum += v
		sumsq += v * v
	}
	n := float64(a.cfg.Trials)
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance / n)
}

// NumTxns returns the swaption count.
func (a *App) NumTxns() int { return a.cfg.Swaptions }

// Run executes the pricing under the runner.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	body := func(tx stm.Tx, age int) {
		price, stderr := a.simulate(age) // heavy local computation
		if a.cfg.Yield {
			runtime.Gosched()
		}
		stm.WriteT(tx, &a.prices[age], price)
		stm.WriteT(tx, &a.errs[age], stderr)
		stm.AddT(tx, a.total, price)
	}
	return r.Exec(a.cfg.Swaptions, body)
}

// Verify recomputes each swaption and the age-ordered portfolio sum.
func (a *App) Verify() error {
	var want float64
	for i := range a.swapts {
		p, e := a.simulate(i)
		if a.prices[i].Load() != p || a.errs[i].Load() != e {
			return fmt.Errorf("swaptions: slot %d differs from recomputation", i)
		}
		want += p
	}
	if got := a.total.Load(); got != want {
		return fmt.Errorf("swaptions: portfolio total %v, want %v", got, want)
	}
	return nil
}

// Fingerprint folds all results.
func (a *App) Fingerprint() uint64 {
	var h uint64
	for i := range a.prices {
		h = rng.Mix64(h ^ math.Float64bits(a.prices[i].Load()))
		h = rng.Mix64(h ^ math.Float64bits(a.errs[i].Load()))
	}
	return rng.Mix64(h ^ math.Float64bits(a.total.Load()))
}

// Reset clears the results for another run.
func (a *App) Reset() {
	for i := range a.prices {
		a.prices[i].Store(0)
		a.errs[i].Store(0)
	}
	a.total.Store(0)
}
