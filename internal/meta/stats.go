package meta

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// StatsCell is one contention-free slice of a Stats instance: a full
// counter set padded out to its own cache lines, so two goroutines
// recording into different cells never bounce a line between cores.
// The run-loop gives every worker (and the validator) its own cell;
// attempt descriptors carry the cell of the pool that allocated them,
// so engine-side events (aborts recorded by whichever goroutine dooms
// the victim) land on a per-worker line too. Any goroutine may record
// into any cell — counters are still atomics — sharding is a
// contention optimization, not an ownership rule.
type StatsCell struct {
	starts   atomic.Uint64
	commits  atomic.Uint64
	retries  atomic.Uint64
	quiesces atomic.Uint64
	aborts   [NumCauses]atomic.Uint64
	_        [statsCellPad]byte
}

// statsCellPad rounds the counter block up to a 64-byte cache-line
// boundary and adds one guard line, so adjacent cells never share a
// line even with unlucky allocator placement.
const statsCellPad = (64-(4+int(NumCauses))*8%64)%64 + 64

// Start counts a fresh attempt beginning execution.
func (c *StatsCell) Start() { c.starts.Add(1) }

// Commit counts a transaction reaching its final commit.
func (c *StatsCell) Commit() { c.commits.Add(1) }

// Retry counts an attempt being re-executed after an abort.
func (c *StatsCell) Retry() { c.retries.Add(1) }

// Quiesce counts liveness-guard activations (executor gating exposes so
// the reachable transaction can win).
func (c *StatsCell) Quiesce() { c.quiesces.Add(1) }

// Abort counts an abort with the given cause.
func (c *StatsCell) Abort(cause Cause) {
	if cause >= NumCauses {
		cause = CauseNone
	}
	c.aborts[cause].Add(1)
}

// view snapshots the cell.
func (c *StatsCell) view() StatsView {
	v := StatsView{
		Starts:   c.starts.Load(),
		Commits:  c.commits.Load(),
		Retries:  c.retries.Load(),
		Quiesces: c.quiesces.Load(),
	}
	for i := range c.aborts {
		v.Aborts[i] = c.aborts[i].Load()
	}
	return v
}

// rotate drains the cell into a delta view, resetting it to zero.
func (c *StatsCell) rotate() StatsView {
	v := StatsView{
		Starts:   c.starts.Swap(0),
		Commits:  c.commits.Swap(0),
		Retries:  c.retries.Swap(0),
		Quiesces: c.quiesces.Swap(0),
	}
	for i := range c.aborts {
		v.Aborts[i] = c.aborts[i].Swap(0)
	}
	return v
}

// Stats aggregates counters for one engine run: a default cell (the
// pre-sharding single-counter behavior, still used by paths without a
// worker identity) plus any number of per-worker cells handed out by
// NewCell. View and Rotate fold across every cell.
type Stats struct {
	def   StatsCell
	mu    sync.Mutex
	cells atomic.Pointer[[]*StatsCell]
}

// DefaultCell returns the built-in cell (used by engine NewTxn outside
// any pool, and by anything recording directly on the Stats).
func (s *Stats) DefaultCell() *StatsCell { return &s.def }

// NewCell registers and returns a fresh padded cell. Called once per
// run-loop goroutine; the registry is copy-on-write so folding reads
// never lock.
func (s *Stats) NewCell() *StatsCell {
	c := &StatsCell{}
	s.mu.Lock()
	var cur []*StatsCell
	if p := s.cells.Load(); p != nil {
		cur = *p
	}
	next := make([]*StatsCell, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = c
	s.cells.Store(&next)
	s.mu.Unlock()
	return c
}

// Start counts a fresh attempt beginning execution.
func (s *Stats) Start() { s.def.Start() }

// Commit counts a transaction reaching its final commit.
func (s *Stats) Commit() { s.def.Commit() }

// Retry counts an attempt being re-executed after an abort.
func (s *Stats) Retry() { s.def.Retry() }

// Quiesce counts liveness-guard activations.
func (s *Stats) Quiesce() { s.def.Quiesce() }

// Abort counts an abort with the given cause.
func (s *Stats) Abort(c Cause) { s.def.Abort(c) }

// Rotate drains the counters of every cell into a delta view and
// resets them to zero, starting a new accounting epoch. Long-lived
// pipelines rotate periodically and fold the deltas into their own
// totals, so the engine-side counters never grow without bound no
// matter how long the stream runs. Individual counters are swapped
// atomically; cross-counter skew with concurrent updates is the same
// (harmless) skew View has always had.
func (s *Stats) Rotate() StatsView {
	v := s.def.rotate()
	if p := s.cells.Load(); p != nil {
		for _, c := range *p {
			v = v.Plus(c.rotate())
		}
	}
	return v
}

// View returns a consistent-enough snapshot for reporting (individual
// counters are read atomically; cross-counter skew is harmless because
// snapshots are taken after the run drains).
func (s *Stats) View() StatsView {
	v := s.def.view()
	if p := s.cells.Load(); p != nil {
		for _, c := range *p {
			v = v.Plus(c.view())
		}
	}
	return v
}

// StatsView is a plain-value snapshot of Stats.
type StatsView struct {
	Starts   uint64
	Commits  uint64
	Retries  uint64
	Quiesces uint64
	Aborts   [NumCauses]uint64
}

// Plus returns the element-wise sum of two views (epoch accounting:
// accumulated past epochs + the live counters of the current one).
func (v StatsView) Plus(w StatsView) StatsView {
	out := StatsView{
		Starts:   v.Starts + w.Starts,
		Commits:  v.Commits + w.Commits,
		Retries:  v.Retries + w.Retries,
		Quiesces: v.Quiesces + w.Quiesces,
	}
	for i := range v.Aborts {
		out.Aborts[i] = v.Aborts[i] + w.Aborts[i]
	}
	return out
}

// TotalAborts sums aborts across causes.
func (v StatsView) TotalAborts() uint64 {
	var t uint64
	for _, a := range v.Aborts {
		t += a
	}
	return t
}

// AbortRatio returns aborts per commit (the paper's "Aborts %" axis is
// this ratio expressed in percent and can exceed 100%).
func (v StatsView) AbortRatio() float64 {
	if v.Commits == 0 {
		return 0
	}
	return float64(v.TotalAborts()) / float64(v.Commits)
}

// Breakdown returns the fraction of total aborts per Figure 5 category:
// read-after-write (RAW + killed-reader), write-after-write, cascade,
// locked-write, validation. Causes outside the five paper categories
// (order kills, busy fallbacks) are reported under "other".
func (v StatsView) Breakdown() map[string]float64 {
	tot := float64(v.TotalAborts())
	m := map[string]float64{
		"read-after-write": 0, "write-after-write": 0, "cascade": 0,
		"locked-write": 0, "validation": 0, "other": 0,
	}
	if tot == 0 {
		return m
	}
	m["read-after-write"] = float64(v.Aborts[CauseRAW]+v.Aborts[CauseKilledReader]) / tot
	m["write-after-write"] = float64(v.Aborts[CauseWAW]) / tot
	m["cascade"] = float64(v.Aborts[CauseCascade]) / tot
	m["locked-write"] = float64(v.Aborts[CauseLockedWrite]) / tot
	m["validation"] = float64(v.Aborts[CauseValidation]) / tot
	m["other"] = float64(v.Aborts[CauseOrder]+v.Aborts[CauseBusy]+v.Aborts[CauseNone]) / tot
	return m
}

// String renders a compact one-line summary.
func (v StatsView) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d aborts=%d (%.1f%%)", v.Commits, v.TotalAborts(), 100*v.AbortRatio())
	for c := Cause(1); c < NumCauses; c++ {
		if v.Aborts[c] > 0 {
			fmt.Fprintf(&b, " %s=%d", c, v.Aborts[c])
		}
	}
	return b.String()
}
