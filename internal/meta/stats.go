package meta

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Stats aggregates counters for one engine run. All fields are updated
// with atomics from every worker; View produces a plain-value snapshot.
type Stats struct {
	starts   atomic.Uint64
	commits  atomic.Uint64
	retries  atomic.Uint64
	quiesces atomic.Uint64
	aborts   [NumCauses]atomic.Uint64
}

// Start counts a fresh attempt beginning execution.
func (s *Stats) Start() { s.starts.Add(1) }

// Commit counts a transaction reaching its final commit.
func (s *Stats) Commit() { s.commits.Add(1) }

// Retry counts an attempt being re-executed after an abort.
func (s *Stats) Retry() { s.retries.Add(1) }

// Quiesce counts liveness-guard activations (executor gating exposes so
// the reachable transaction can win).
func (s *Stats) Quiesce() { s.quiesces.Add(1) }

// Abort counts an abort with the given cause.
func (s *Stats) Abort(c Cause) {
	if c >= NumCauses {
		c = CauseNone
	}
	s.aborts[c].Add(1)
}

// Rotate drains the counters into a delta view and resets them to
// zero, starting a new accounting epoch. Long-lived pipelines rotate
// periodically and fold the deltas into their own totals, so the
// engine-side counters never grow without bound no matter how long the
// stream runs. Individual counters are swapped atomically;
// cross-counter skew with concurrent updates is the same (harmless)
// skew View has always had.
func (s *Stats) Rotate() StatsView {
	v := StatsView{
		Starts:   s.starts.Swap(0),
		Commits:  s.commits.Swap(0),
		Retries:  s.retries.Swap(0),
		Quiesces: s.quiesces.Swap(0),
	}
	for i := range s.aborts {
		v.Aborts[i] = s.aborts[i].Swap(0)
	}
	return v
}

// View returns a consistent-enough snapshot for reporting (individual
// counters are read atomically; cross-counter skew is harmless because
// snapshots are taken after the run drains).
func (s *Stats) View() StatsView {
	v := StatsView{
		Starts:   s.starts.Load(),
		Commits:  s.commits.Load(),
		Retries:  s.retries.Load(),
		Quiesces: s.quiesces.Load(),
	}
	for i := range s.aborts {
		v.Aborts[i] = s.aborts[i].Load()
	}
	return v
}

// StatsView is a plain-value snapshot of Stats.
type StatsView struct {
	Starts   uint64
	Commits  uint64
	Retries  uint64
	Quiesces uint64
	Aborts   [NumCauses]uint64
}

// Plus returns the element-wise sum of two views (epoch accounting:
// accumulated past epochs + the live counters of the current one).
func (v StatsView) Plus(w StatsView) StatsView {
	out := StatsView{
		Starts:   v.Starts + w.Starts,
		Commits:  v.Commits + w.Commits,
		Retries:  v.Retries + w.Retries,
		Quiesces: v.Quiesces + w.Quiesces,
	}
	for i := range v.Aborts {
		out.Aborts[i] = v.Aborts[i] + w.Aborts[i]
	}
	return out
}

// TotalAborts sums aborts across causes.
func (v StatsView) TotalAborts() uint64 {
	var t uint64
	for _, a := range v.Aborts {
		t += a
	}
	return t
}

// AbortRatio returns aborts per commit (the paper's "Aborts %" axis is
// this ratio expressed in percent and can exceed 100%).
func (v StatsView) AbortRatio() float64 {
	if v.Commits == 0 {
		return 0
	}
	return float64(v.TotalAborts()) / float64(v.Commits)
}

// Breakdown returns the fraction of total aborts per Figure 5 category:
// read-after-write (RAW + killed-reader), write-after-write, cascade,
// locked-write, validation. Causes outside the five paper categories
// (order kills, busy fallbacks) are reported under "other".
func (v StatsView) Breakdown() map[string]float64 {
	tot := float64(v.TotalAborts())
	m := map[string]float64{
		"read-after-write": 0, "write-after-write": 0, "cascade": 0,
		"locked-write": 0, "validation": 0, "other": 0,
	}
	if tot == 0 {
		return m
	}
	m["read-after-write"] = float64(v.Aborts[CauseRAW]+v.Aborts[CauseKilledReader]) / tot
	m["write-after-write"] = float64(v.Aborts[CauseWAW]) / tot
	m["cascade"] = float64(v.Aborts[CauseCascade]) / tot
	m["locked-write"] = float64(v.Aborts[CauseLockedWrite]) / tot
	m["validation"] = float64(v.Aborts[CauseValidation]) / tot
	m["other"] = float64(v.Aborts[CauseOrder]+v.Aborts[CauseBusy]+v.Aborts[CauseNone]) / tot
	return m
}

// String renders a compact one-line summary.
func (v StatsView) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d aborts=%d (%.1f%%)", v.Commits, v.TotalAborts(), 100*v.AbortRatio())
	for c := Cause(1); c < NumCauses; c++ {
		if v.Aborts[c] > 0 {
			fmt.Fprintf(&b, " %s=%d", c, v.Aborts[c])
		}
	}
	return b.String()
}
