package meta

// Table is a fixed-size striped lock table. Each engine instantiates it
// with its own lock-record type L; a Var is mapped to a record by
// Fibonacci-hashing its id down to the table's index width. As in the
// paper's implementation ("a single lock might be responsible for
// multiple addresses"), distinct variables may alias to the same
// record, which produces false conflicts; TableBits trades memory for
// aliasing rate.
type Table[L any] struct {
	shift   uint
	entries []L
}

const fibMult = 0x9E3779B97F4A7C15 // 2^64 / golden ratio

// MinTableBits and MaxTableBits bound the configurable table size.
const (
	MinTableBits = 4
	MaxTableBits = 26
)

// NewTable allocates a table with 1<<bits records. Bits outside
// [MinTableBits, MaxTableBits] are clamped.
func NewTable[L any](bits uint) *Table[L] {
	if bits < MinTableBits {
		bits = MinTableBits
	}
	if bits > MaxTableBits {
		bits = MaxTableBits
	}
	return &Table[L]{shift: 64 - bits, entries: make([]L, 1<<bits)}
}

// Of returns the lock record covering v.
func (t *Table[L]) Of(v *Var) *L { return t.OfID(v.ID()) }

// OfID returns the lock record covering a variable id.
func (t *Table[L]) OfID(id uint64) *L {
	return &t.entries[(id*fibMult)>>t.shift]
}

// Index returns the record index covering a variable id (for tests and
// signature hashing).
func (t *Table[L]) Index(id uint64) uint64 { return (id * fibMult) >> t.shift }

// Len returns the number of records.
func (t *Table[L]) Len() int { return len(t.entries) }

// Entry returns the i-th record (cleaner/iteration use).
func (t *Table[L]) Entry(i int) *L { return &t.entries[i] }
