package meta

import "sync/atomic"

// Status is the lifecycle state of a transaction attempt. The values
// mirror the paper's pseudocode (Algorithms 1–4):
//
//	Active    — live, or (OWB) exposed: executing / published but abortable
//	Pending   — commit-pending (OUL: passed TryCommit, awaiting its turn)
//	Transient — descriptor locked: a short critical section during which
//	            the attempt is being exposed, committed or aborted;
//	            other threads spin-wait on Transient
//	Committed — final: effects are permanent (pseudocode INACTIVE)
//	Aborted   — final: effects rolled back; the transaction will be
//	            re-executed with the same age using a fresh descriptor
type Status uint32

const (
	StatusActive Status = iota
	StatusPending
	StatusTransient
	StatusCommitted
	StatusAborted
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusPending:
		return "pending"
	case StatusTransient:
		return "transient"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "invalid"
	}
}

// Final reports whether the status is terminal for the attempt.
func (s Status) Final() bool { return s == StatusCommitted || s == StatusAborted }

// Life is one atomically-read snapshot of a StatusWord: the attempt's
// current status packed with the descriptor's generation. Descriptor
// recycling (per-worker freelists) reuses attempt descriptors across
// lives; the generation is what distinguishes a descriptor's current
// life from a stale reference created during a previous one. Two Life
// values with different generations belong to different attempts even
// though they came from the same descriptor.
type Life uint64

const lifeStatusBits = 8 // status occupies the low byte; gen the rest

// Status returns the snapshot's lifecycle state.
func (l Life) Status() Status { return Status(l & (1<<lifeStatusBits - 1)) }

// Gen returns the snapshot's generation (which life of the descriptor
// this is).
func (l Life) Gen() uint64 { return uint64(l) >> lifeStatusBits }

func packLife(gen uint64, s Status) uint64 {
	return gen<<lifeStatusBits | uint64(s)
}

// StatusWord is an atomically updated (generation, Status) pair. The
// generation advances exactly once per descriptor life (Renew); every
// status transition within a life preserves it. Loading the packed
// Life lets observers holding a generation-stamped reference (meta.Ref)
// decide whether the descriptor they resolved is still the attempt the
// reference was created for.
type StatusWord struct{ w atomic.Uint64 }

// Load returns the current status.
func (s *StatusWord) Load() Status { return Life(s.w.Load()).Status() }

// LoadLife returns the packed (generation, status) snapshot.
func (s *StatusWord) LoadLife() Life { return Life(s.w.Load()) }

// Gen returns the current generation.
func (s *StatusWord) Gen() uint64 { return Life(s.w.Load()).Gen() }

// Store sets the status, preserving the generation. Only the goroutine
// owning the descriptor's current critical section may Store (all
// engines follow this discipline: unconditional status stores happen
// with the descriptor claimed); concurrent readers are fine.
func (s *StatusWord) Store(v Status) {
	s.w.Store(packLife(Life(s.w.Load()).Gen(), v))
}

// CAS atomically replaces old with new within the current life and
// reports success. A concurrent generation change makes it fail, which
// is exactly right: the transition was aimed at a life that ended.
func (s *StatusWord) CAS(old, new Status) bool {
	p := s.w.Load()
	if Life(p).Status() != old {
		return false
	}
	return s.w.CompareAndSwap(p, packLife(Life(p).Gen(), new))
}

// CASLife replaces the exact packed snapshot old with (old.Gen, new).
// Observers that must not cross a life boundary between two status
// reads (OWB's dependency double-check) use it instead of CAS.
func (s *StatusWord) CASLife(old Life, new Status) bool {
	return s.w.CompareAndSwap(uint64(old), packLife(old.Gen(), new))
}

// Renew starts the descriptor's next life: generation+1, status Active.
// It returns the new generation. Only a pool that has established the
// descriptor is unreachable for claims (final status, no pins) may call
// it; stale references resolved concurrently observe the generation
// mismatch and treat the reference as dead.
func (s *StatusWord) Renew() uint64 {
	gen := Life(s.w.Load()).Gen() + 1
	s.w.Store(packLife(gen, StatusActive))
	return gen
}

// Cause identifies why a transaction attempt aborted. The Figure 5
// categories of the paper map onto these as follows:
//
//	"Read After Write"  = CauseRAW + CauseKilledReader
//	"Write After Write" = CauseWAW
//	"Cascade"           = CauseCascade
//	"Locked Write"      = CauseLockedWrite
//	"Validation Fails"  = CauseValidation
//
// CauseOrder (kills needed to let the reachable transaction win) and
// CauseBusy (bounded-spin fallbacks) are implementation details counted
// separately so the five paper categories stay faithful.
type Cause uint32

const (
	CauseNone Cause = iota
	// CauseRAW: a speculative writer was aborted by a lower-age reader,
	// or a reader had to abort because its writer was no longer active
	// (the W2→R1 / read-after-speculative-write conflicts).
	CauseRAW
	// CauseWAW: write-after-write; a higher-age writer aborted because a
	// lower-age transaction holds the write lock (W1→W2).
	CauseWAW
	// CauseLockedWrite: a commit-time lock acquisition found the object
	// locked by a concurrent committer (OWB expose, TL2 commit).
	CauseLockedWrite
	// CauseCascade: aborted because a transaction whose exposed or
	// forwarded data this transaction consumed was itself aborted.
	CauseCascade
	// CauseValidation: read-set (version or value) validation failed.
	CauseValidation
	// CauseKilledReader: a speculative reader was aborted by a lower-age
	// writer (R2→W1).
	CauseKilledReader
	// CauseOrder: killed so that the reachable (lowest uncommitted age)
	// transaction can make progress, or an ACO-ordering kill.
	CauseOrder
	// CauseBusy: self-abort after exhausting a bounded spin (lock or
	// reader-slot acquisition, invisible-reader backoff).
	CauseBusy
	// NumCauses is the number of abort causes (array sizing).
	NumCauses
)

// String returns the cause name.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseRAW:
		return "read-after-write"
	case CauseWAW:
		return "write-after-write"
	case CauseLockedWrite:
		return "locked-write"
	case CauseCascade:
		return "cascade"
	case CauseValidation:
		return "validation"
	case CauseKilledReader:
		return "killed-reader"
	case CauseOrder:
		return "order"
	case CauseBusy:
		return "busy"
	default:
		return "invalid"
	}
}
