package meta

import "sync/atomic"

// Status is the lifecycle state of a transaction attempt. The values
// mirror the paper's pseudocode (Algorithms 1–4):
//
//	Active    — live, or (OWB) exposed: executing / published but abortable
//	Pending   — commit-pending (OUL: passed TryCommit, awaiting its turn)
//	Transient — descriptor locked: a short critical section during which
//	            the attempt is being exposed, committed or aborted;
//	            other threads spin-wait on Transient
//	Committed — final: effects are permanent (pseudocode INACTIVE)
//	Aborted   — final: effects rolled back; the transaction will be
//	            re-executed with the same age using a fresh descriptor
type Status uint32

const (
	StatusActive Status = iota
	StatusPending
	StatusTransient
	StatusCommitted
	StatusAborted
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusPending:
		return "pending"
	case StatusTransient:
		return "transient"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "invalid"
	}
}

// Final reports whether the status is terminal for the attempt.
func (s Status) Final() bool { return s == StatusCommitted || s == StatusAborted }

// StatusWord is an atomically updated Status.
type StatusWord struct{ w atomic.Uint32 }

// Load returns the current status.
func (s *StatusWord) Load() Status { return Status(s.w.Load()) }

// Store unconditionally sets the status.
func (s *StatusWord) Store(v Status) { s.w.Store(uint32(v)) }

// CAS atomically replaces old with new and reports success.
func (s *StatusWord) CAS(old, new Status) bool {
	return s.w.CompareAndSwap(uint32(old), uint32(new))
}

// Cause identifies why a transaction attempt aborted. The Figure 5
// categories of the paper map onto these as follows:
//
//	"Read After Write"  = CauseRAW + CauseKilledReader
//	"Write After Write" = CauseWAW
//	"Cascade"           = CauseCascade
//	"Locked Write"      = CauseLockedWrite
//	"Validation Fails"  = CauseValidation
//
// CauseOrder (kills needed to let the reachable transaction win) and
// CauseBusy (bounded-spin fallbacks) are implementation details counted
// separately so the five paper categories stay faithful.
type Cause uint32

const (
	CauseNone Cause = iota
	// CauseRAW: a speculative writer was aborted by a lower-age reader,
	// or a reader had to abort because its writer was no longer active
	// (the W2→R1 / read-after-speculative-write conflicts).
	CauseRAW
	// CauseWAW: write-after-write; a higher-age writer aborted because a
	// lower-age transaction holds the write lock (W1→W2).
	CauseWAW
	// CauseLockedWrite: a commit-time lock acquisition found the object
	// locked by a concurrent committer (OWB expose, TL2 commit).
	CauseLockedWrite
	// CauseCascade: aborted because a transaction whose exposed or
	// forwarded data this transaction consumed was itself aborted.
	CauseCascade
	// CauseValidation: read-set (version or value) validation failed.
	CauseValidation
	// CauseKilledReader: a speculative reader was aborted by a lower-age
	// writer (R2→W1).
	CauseKilledReader
	// CauseOrder: killed so that the reachable (lowest uncommitted age)
	// transaction can make progress, or an ACO-ordering kill.
	CauseOrder
	// CauseBusy: self-abort after exhausting a bounded spin (lock or
	// reader-slot acquisition, invisible-reader backoff).
	CauseBusy
	// NumCauses is the number of abort causes (array sizing).
	NumCauses
)

// String returns the cause name.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseRAW:
		return "read-after-write"
	case CauseWAW:
		return "write-after-write"
	case CauseLockedWrite:
		return "locked-write"
	case CauseCascade:
		return "cascade"
	case CauseValidation:
		return "validation"
	case CauseKilledReader:
		return "killed-reader"
	case CauseOrder:
		return "order"
	case CauseBusy:
		return "busy"
	default:
		return "invalid"
	}
}
