package meta

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusActive:    "active",
		StatusPending:   "pending",
		StatusTransient: "transient",
		StatusCommitted: "committed",
		StatusAborted:   "aborted",
		Status(99):      "invalid",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if !StatusCommitted.Final() || !StatusAborted.Final() {
		t.Error("committed/aborted must be final")
	}
	if StatusActive.Final() || StatusPending.Final() || StatusTransient.Final() {
		t.Error("active/pending/transient must not be final")
	}
}

func TestStatusWordCAS(t *testing.T) {
	var w StatusWord
	if w.Load() != StatusActive {
		t.Fatalf("zero value = %v, want active", w.Load())
	}
	if !w.CAS(StatusActive, StatusTransient) {
		t.Fatal("CAS active->transient failed")
	}
	if w.CAS(StatusActive, StatusCommitted) {
		t.Fatal("CAS from wrong state succeeded")
	}
	w.Store(StatusCommitted)
	if w.Load() != StatusCommitted {
		t.Fatalf("Load = %v", w.Load())
	}
}

func TestCauseString(t *testing.T) {
	for c := CauseNone; c < NumCauses; c++ {
		if c.String() == "invalid" {
			t.Errorf("cause %d has no name", c)
		}
	}
	if Cause(200).String() != "invalid" {
		t.Error("out-of-range cause should be invalid")
	}
}

func TestVarIdentityAndValues(t *testing.T) {
	a := NewVar(7)
	b := NewVar(9)
	if a.ID() == b.ID() {
		t.Fatal("ids must be unique")
	}
	if a.Load() != 7 || b.Load() != 9 {
		t.Fatal("initial values wrong")
	}
	a.Store(11)
	if a.Load() != 11 {
		t.Fatal("store lost")
	}
	if !a.CAS(11, 12) || a.Load() != 12 {
		t.Fatal("CAS failed")
	}
	if a.CAS(11, 13) {
		t.Fatal("CAS from stale value succeeded")
	}
}

func TestNewVarsUniqueIDs(t *testing.T) {
	vs := NewVars(100)
	seen := make(map[uint64]bool)
	for i := range vs {
		if seen[vs[i].ID()] {
			t.Fatalf("duplicate id %d", vs[i].ID())
		}
		seen[vs[i].ID()] = true
		if vs[i].Load() != 0 {
			t.Fatal("NewVars must zero-init")
		}
	}
}

func TestTableClampAndDeterminism(t *testing.T) {
	small := NewTable[int](1)
	if small.Len() != 1<<MinTableBits {
		t.Fatalf("clamp low: len=%d", small.Len())
	}
	tab := NewTable[int](8)
	if tab.Len() != 256 {
		t.Fatalf("len=%d, want 256", tab.Len())
	}
	v := NewVar(0)
	if tab.Of(v) != tab.Of(v) {
		t.Fatal("mapping must be deterministic")
	}
	// property: index always in range
	f := func(id uint64) bool { return tab.Index(id) < uint64(tab.Len()) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableSpreads(t *testing.T) {
	// Contiguous ids should spread across a table reasonably: with
	// 1024 ids on 256 entries no entry should see > 32 ids under
	// Fibonacci hashing.
	tab := NewTable[int](8)
	counts := make(map[uint64]int)
	for id := uint64(1); id <= 1024; id++ {
		counts[tab.Index(id)]++
	}
	for idx, c := range counts {
		if c > 32 {
			t.Fatalf("entry %d covers %d contiguous ids", idx, c)
		}
	}
}

func TestOrderTurns(t *testing.T) {
	o := NewOrder()
	if o.Committed() != 0 || !o.Reachable(0) || o.Reachable(1) {
		t.Fatal("initial order state wrong")
	}
	const n = 50
	var wg sync.WaitGroup
	out := make([]uint64, 0, n)
	var mu sync.Mutex
	for age := uint64(0); age < n; age++ {
		wg.Add(1)
		go func(a uint64) {
			defer wg.Done()
			o.WaitTurn(a, nil)
			mu.Lock()
			out = append(out, a)
			mu.Unlock()
			o.Complete(a)
		}(age)
	}
	wg.Wait()
	for i := range out {
		if out[i] != uint64(i) {
			t.Fatalf("turns out of order: %v", out)
		}
	}
}

func TestOrderWaitTurnDoomed(t *testing.T) {
	o := NewOrder()
	var doomed bool
	var mu sync.Mutex
	done := make(chan bool)
	go func() {
		done <- o.WaitTurn(5, func() bool { mu.Lock(); defer mu.Unlock(); return doomed })
	}()
	mu.Lock()
	doomed = true
	mu.Unlock()
	o.Kick()
	if got := <-done; got {
		t.Fatal("doomed waiter reported turn acquired")
	}
}

func TestOrderWaitReachableCancel(t *testing.T) {
	o := NewOrder()
	var stop bool
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		o.WaitReachable(10, func() bool { mu.Lock(); defer mu.Unlock(); return stop })
		close(done)
	}()
	mu.Lock()
	stop = true
	mu.Unlock()
	o.Kick()
	<-done // must return
}

func TestOrderCompleteOutOfOrderPanics(t *testing.T) {
	o := NewOrder()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Complete(3)
}

func TestDepListConcurrentPush(t *testing.T) {
	var l DepList[int]
	var wg sync.WaitGroup
	const per, workers = 100, 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Push(base*per + i)
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != per*workers {
		t.Fatalf("len=%d, want %d", l.Len(), per*workers)
	}
	seen := make(map[int]bool)
	l.ForEach(func(x int) { seen[x] = true })
	if len(seen) != per*workers {
		t.Fatalf("distinct=%d, want %d", len(seen), per*workers)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset did not empty the list")
	}
}

func TestLazySlots(t *testing.T) {
	var ls LazySlots[int]
	if ls.Peek() != nil {
		t.Fatal("peek before Get must be nil")
	}
	var wg sync.WaitGroup
	arrs := make([]*SlotArray[int], 16)
	for i := range arrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrs[i] = ls.Get(40)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(arrs); i++ {
		if arrs[i] != arrs[0] {
			t.Fatal("concurrent Get returned different arrays")
		}
	}
	if len(arrs[0].Slots) != 40 {
		t.Fatalf("slots=%d, want 40", len(arrs[0].Slots))
	}
	if ls.Peek() != arrs[0] {
		t.Fatal("peek after Get must return the array")
	}
}

func TestStatsViewAndBreakdown(t *testing.T) {
	var s Stats
	s.Start()
	s.Commit()
	s.Retry()
	s.Quiesce()
	s.Abort(CauseRAW)
	s.Abort(CauseRAW)
	s.Abort(CauseWAW)
	s.Abort(CauseCascade)
	s.Abort(CauseLockedWrite)
	s.Abort(CauseValidation)
	s.Abort(CauseKilledReader)
	s.Abort(CauseOrder)
	s.Abort(Cause(250)) // out of range folds into CauseNone
	v := s.View()
	if v.Starts != 1 || v.Commits != 1 || v.Retries != 1 || v.Quiesces != 1 {
		t.Fatalf("view = %+v", v)
	}
	if v.TotalAborts() != 9 {
		t.Fatalf("total aborts = %d, want 9", v.TotalAborts())
	}
	if v.AbortRatio() != 9 {
		t.Fatalf("ratio = %v", v.AbortRatio())
	}
	b := v.Breakdown()
	if b["read-after-write"] != 3.0/9 {
		t.Fatalf("raw fraction = %v", b["read-after-write"])
	}
	sum := 0.0
	for _, f := range b {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
	if v.String() == "" {
		t.Fatal("empty String()")
	}
	var empty Stats
	if empty.View().AbortRatio() != 0 {
		t.Fatal("empty ratio must be 0")
	}
	eb := empty.View().Breakdown()
	if eb["cascade"] != 0 {
		t.Fatal("empty breakdown must be zeros")
	}
}

func TestAbortSignal(t *testing.T) {
	defer func() {
		c, ok := AbortCause(recover())
		if !ok || c != CauseWAW {
			t.Fatalf("AbortCause = %v, %v", c, ok)
		}
	}()
	PanicAbort(CauseWAW)
}

func TestAbortCauseForeignPanic(t *testing.T) {
	if _, ok := AbortCause("boom"); ok {
		t.Fatal("foreign panic recognized as abort")
	}
	if _, ok := AbortCause(nil); ok {
		t.Fatal("nil recognized as abort")
	}
}

func TestModeString(t *testing.T) {
	modes := []Mode{ModeSequential, ModeCooperative, ModeBlocked, ModeUnordered, ModeLite}
	for _, m := range modes {
		if m.String() == "unknown" {
			t.Errorf("mode %d unnamed", m)
		}
	}
	if Mode(42).String() != "unknown" {
		t.Error("invalid mode must be unknown")
	}
}

func TestEngineConfigNormalize(t *testing.T) {
	c := EngineConfig{}.Normalize()
	if c.TableBits != DefaultTableBits || c.MaxReaders != DefaultMaxReaders ||
		c.SpinBudget != DefaultSpinBudget || c.SigBits != DefaultSigBits {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.Order == nil || c.Stats == nil {
		t.Fatal("order/stats not allocated")
	}
	c2 := EngineConfig{TableBits: 10, MaxReaders: 4, SpinBudget: 2, SigBits: 128}.Normalize()
	if c2.TableBits != 10 || c2.MaxReaders != 4 || c2.SpinBudget != 2 || c2.SigBits != 128 {
		t.Fatalf("explicit values overwritten: %+v", c2)
	}
}

func TestOrderAtBaseAndHalt(t *testing.T) {
	o := NewOrderAt(1000)
	if o.Committed() != 1000 {
		t.Fatalf("base frontier = %d, want 1000", o.Committed())
	}
	if !o.Reachable(1000) || o.Reachable(1001) {
		t.Fatal("reachability at the base frontier is wrong")
	}
	if !o.WaitTurn(1000, nil) {
		t.Fatal("WaitTurn at the frontier must succeed immediately")
	}
	o.Complete(1000)
	if o.Committed() != 1001 {
		t.Fatalf("after Complete frontier = %d, want 1001", o.Committed())
	}

	// Halt cancels parked and future waits.
	var wg sync.WaitGroup
	results := make([]bool, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = o.WaitTurn(uint64(2000+i), nil)
		}(i)
	}
	o.Halt()
	wg.Wait()
	for i, turned := range results {
		if turned {
			t.Fatalf("waiter %d reported its turn after Halt", i)
		}
	}
	if !o.Halted() {
		t.Fatal("Halted() = false after Halt")
	}
	if o.WaitTurn(5000, nil) {
		t.Fatal("WaitTurn after Halt must fail")
	}
	done := make(chan struct{})
	go func() {
		o.WaitReachable(9000, nil) // must return immediately, not park
		close(done)
	}()
	<-done
}

func TestStatsRotateAndPlus(t *testing.T) {
	s := &Stats{}
	for i := 0; i < 5; i++ {
		s.Start()
		s.Commit()
	}
	s.Retry()
	s.Abort(CauseRAW)
	first := s.Rotate()
	if first.Commits != 5 || first.Retries != 1 || first.Aborts[CauseRAW] != 1 {
		t.Fatalf("first epoch delta = %+v", first)
	}
	if after := s.View(); after.Commits != 0 || after.TotalAborts() != 0 {
		t.Fatalf("counters not reset by Rotate: %+v", after)
	}
	for i := 0; i < 3; i++ {
		s.Start()
		s.Commit()
	}
	s.Abort(CauseWAW)
	second := s.Rotate()
	total := first.Plus(second)
	if total.Commits != 8 || total.Starts != 8 {
		t.Fatalf("folded commits = %d starts = %d, want 8/8", total.Commits, total.Starts)
	}
	if total.Aborts[CauseRAW] != 1 || total.Aborts[CauseWAW] != 1 || total.TotalAborts() != 2 {
		t.Fatalf("folded aborts = %+v", total.Aborts)
	}
}
