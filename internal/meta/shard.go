package meta

// Shard-aware variable identity. A sharded executor partitions the Var
// space into S disjoint slices and runs one engine per slice; because
// every engine instance carries its own lock table and commit order,
// the partition function must be a pure function of the Var's identity
// so that router, engines, tests and benchmarks all agree on which
// shard owns a variable.
//
// The id is Fibonacci-mixed before reduction, for the same reason
// Table hashes ids: consecutively allocated variables (NewVars) would
// otherwise all land on the same shard, and a partitioned workload
// wants neighboring variables spread across shards by default.

// ShardOf maps a variable id to one of `shards` partitions. The
// mapping is deterministic and stable for the life of the process:
// the same id always lands on the same shard for a given shard count.
// Any shards <= 1 collapses to a single partition.
func ShardOf(id uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(((id * fibMult) >> 32) % uint64(shards))
}

// Shard returns the partition owning v among `shards` partitions
// (ShardOf of the variable's id).
func (v *Var) Shard(shards int) int { return ShardOf(v.id, shards) }

// ShardTableBits sizes a per-shard lock table: each of `shards`
// engines sees roughly a 1/shards slice of the variable space, so the
// per-engine table can shrink by log2(shards) bits and keep the
// aggregate memory footprint — and the per-variable aliasing rate —
// comparable to a single engine with `bits` bits.
func ShardTableBits(bits uint, shards int) uint {
	for s := 1; s < shards && bits > MinTableBits; s *= 2 {
		bits--
	}
	if bits < MinTableBits {
		bits = MinTableBits
	}
	return bits
}
