package meta

import "sync/atomic"

// SlotArray is a bounded visible-readers array: one slot per concurrent
// reader of a lock record (the paper bounds it at 40). A slot holds a
// pointer to the reader's attempt descriptor; slot reuse is governed by
// the descriptor's status (a slot whose occupant is no longer
// active/pending is considered free), exactly as in Algorithm 2.
type SlotArray[T any] struct {
	Slots []atomic.Pointer[T]
}

// LazySlots defers allocating the reader array until a lock record is
// first read transactionally, keeping the lock table compact (a record
// with an inline 40-slot array would be ~50x larger).
type LazySlots[T any] struct {
	p atomic.Pointer[SlotArray[T]]
}

// Get returns the slot array, allocating it with n slots on first use.
func (l *LazySlots[T]) Get(n int) *SlotArray[T] {
	if a := l.p.Load(); a != nil {
		return a
	}
	a := &SlotArray[T]{Slots: make([]atomic.Pointer[T], n)}
	if l.p.CompareAndSwap(nil, a) {
		return a
	}
	return l.p.Load()
}

// Peek returns the slot array if it has been allocated, else nil.
// Writers use it: if no reader array exists, there are no readers to
// abort.
func (l *LazySlots[T]) Peek() *SlotArray[T] { return l.p.Load() }
