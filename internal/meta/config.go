package meta

// EngineConfig carries the per-run parameters every engine needs. The
// stm package fills in defaults and constructs one fresh instance per
// Executor.Run (engines and their lock tables are never reused across
// runs, so stale lock words from a previous run cannot leak).
type EngineConfig struct {
	// TableBits sizes the striped lock table at 1<<TableBits records.
	TableBits uint
	// MaxReaders bounds the visible-reader slot array per lock record
	// (the paper uses 40).
	MaxReaders int
	// SpinBudget bounds optimistic spinning before a transaction gives
	// up on a busy resource and self-aborts (CauseBusy).
	SpinBudget int
	// Order is the run's commit-order state.
	Order *Order
	// Stats receives the run's counters.
	Stats *Stats
	// SigBits sizes Bloom-filter signatures (STMLite), in bits.
	SigBits uint
}

// Defaults used when the caller leaves fields zero.
const (
	DefaultTableBits  = 16
	DefaultMaxReaders = 40
	DefaultSpinBudget = 64
	DefaultSigBits    = 64
)

// Normalize fills unset fields with defaults.
func (c EngineConfig) Normalize() EngineConfig {
	if c.TableBits == 0 {
		c.TableBits = DefaultTableBits
	}
	if c.MaxReaders <= 0 {
		c.MaxReaders = DefaultMaxReaders
	}
	if c.SpinBudget <= 0 {
		c.SpinBudget = DefaultSpinBudget
	}
	if c.SigBits == 0 {
		c.SigBits = DefaultSigBits
	}
	if c.Order == nil {
		c.Order = NewOrder()
	}
	if c.Stats == nil {
		c.Stats = &Stats{}
	}
	return c
}
