package meta

import (
	"sync"
	"testing"
)

func TestStatusWordLifePacking(t *testing.T) {
	var w StatusWord
	if w.Load() != StatusActive || w.Gen() != 0 {
		t.Fatalf("zero value = (%v, gen %d), want (active, 0)", w.Load(), w.Gen())
	}
	if !w.CAS(StatusActive, StatusPending) {
		t.Fatal("CAS within life failed")
	}
	w.Store(StatusCommitted)
	if w.Load() != StatusCommitted || w.Gen() != 0 {
		t.Fatal("Store must preserve the generation")
	}
	if gen := w.Renew(); gen != 1 {
		t.Fatalf("Renew -> gen %d, want 1", gen)
	}
	if w.Load() != StatusActive || w.Gen() != 1 {
		t.Fatal("Renew must start the next life Active")
	}
	// A CASLife from the previous life's snapshot must fail.
	old := Life(packLife(0, StatusActive))
	if w.CASLife(old, StatusTransient) {
		t.Fatal("CASLife crossed a life boundary")
	}
	cur := w.LoadLife()
	if !w.CASLife(cur, StatusTransient) {
		t.Fatal("CASLife within the current life failed")
	}
	if w.Load() != StatusTransient || w.Gen() != 1 {
		t.Fatal("CASLife must preserve the generation")
	}
}

func TestRefPacking(t *testing.T) {
	if RefNil.IsTxn() || RefBusy.IsTxn() {
		t.Fatal("sentinels must not resolve as descriptors")
	}
	r := MakeRef(0, 0)
	if !r.IsTxn() || r.Idx() != 0 || r.Gen() != 0 {
		t.Fatalf("MakeRef(0,0) roundtrip broken: %v %d %d", r.IsTxn(), r.Idx(), r.Gen())
	}
	r = MakeRef(123456, 987654321)
	if r.Idx() != 123456 || r.Gen() != 987654321 {
		t.Fatalf("roundtrip: idx %d gen %d", r.Idx(), r.Gen())
	}
	if !r.SameLife(Life(packLife(987654321, StatusPending))) {
		t.Fatal("SameLife must match the publishing generation")
	}
	if r.SameLife(Life(packLife(987654322, StatusPending))) {
		t.Fatal("SameLife must reject a later life")
	}
	if MakeRef(1, 5) == MakeRef(1, 6) || MakeRef(1, 5) == MakeRef(2, 5) {
		t.Fatal("distinct (idx, gen) pairs must produce distinct refs")
	}
}

func TestRefWordCASIsGenerationExact(t *testing.T) {
	var w RefWord
	a := MakeRef(7, 1)
	b := MakeRef(7, 2) // same descriptor, next life
	w.Store(a)
	if w.CAS(b, RefNil) {
		t.Fatal("CAS matched across generations")
	}
	if !w.CAS(a, b) || w.Load() != b {
		t.Fatal("value CAS failed")
	}
}

func TestRegistryChunkedGrowth(t *testing.T) {
	var r Registry[int]
	const n = regBlockSize*2 + 17 // force multiple blocks
	vals := make([]*int, n)
	for i := 0; i < n; i++ {
		v := new(int)
		*v = i
		vals[i] = v
		if idx := r.Add(v); idx != uint32(i) {
			t.Fatalf("Add returned %d, want %d", idx, i)
		}
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	for i := 0; i < n; i++ {
		if r.At(uint32(i)) != vals[i] {
			t.Fatalf("At(%d) resolved the wrong descriptor", i)
		}
	}
}

func TestCacheDepotRebalance(t *testing.T) {
	var d Depot[int]
	producer := NewCache(&d)
	consumer := NewCache(&d)
	// A producer-only goroutine must spill to the depot once its local
	// stack fills, and a consumer-only one must refill from there — the
	// validator-retires-what-workers-allocate flow.
	seen := map[*int]bool{}
	for i := 0; i < 10*cacheCap; i++ {
		v := new(int)
		seen[v] = true
		producer.Put(v)
	}
	if d.Len() == 0 {
		t.Fatal("full cache never spilled to the depot")
	}
	got := 0
	for {
		v := consumer.Get()
		if v == nil {
			break
		}
		if !seen[v] {
			t.Fatal("consumer got an item the producer never put")
		}
		got++
	}
	if got == 0 {
		t.Fatal("consumer refilled nothing from the depot")
	}
	if got > 10*cacheCap {
		t.Fatalf("duplicated items: got %d of %d", got, 10*cacheCap)
	}
}

func TestStatsCellsFold(t *testing.T) {
	var s Stats
	s.Commit() // default cell
	c1, c2 := s.NewCell(), s.NewCell()
	var wg sync.WaitGroup
	for _, c := range []*StatsCell{c1, c2} {
		wg.Add(1)
		go func(c *StatsCell) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Start()
				c.Commit()
				c.Abort(CauseRAW)
			}
		}(c)
	}
	wg.Wait()
	v := s.View()
	if v.Commits != 2001 || v.Starts != 2000 || v.Aborts[CauseRAW] != 2000 {
		t.Fatalf("folded view wrong: %+v", v)
	}
	delta := s.Rotate()
	if delta.Commits != 2001 {
		t.Fatalf("rotate delta wrong: %+v", delta)
	}
	if after := s.View(); after.Commits != 0 || after.TotalAborts() != 0 {
		t.Fatalf("rotate did not zero the cells: %+v", after)
	}
}
