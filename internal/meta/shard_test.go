package meta

import "testing"

// TestShardOf: the mapping is stable, in range, consistent between the
// package-level function and the Var method, and spreads consecutively
// allocated variables across shards instead of clustering them.
func TestShardOf(t *testing.T) {
	if ShardOf(12345, 0) != 0 || ShardOf(12345, 1) != 0 || ShardOf(12345, -3) != 0 {
		t.Fatal("degenerate shard counts must collapse to partition 0")
	}
	for _, shards := range []int{2, 3, 4, 7, 16} {
		vs := NewVars(4096)
		counts := make([]int, shards)
		for i := range vs {
			s := vs[i].Shard(shards)
			if s != ShardOf(vs[i].ID(), shards) {
				t.Fatal("Var.Shard disagrees with ShardOf")
			}
			if s != ShardOf(vs[i].ID(), shards) || s < 0 || s >= shards {
				t.Fatalf("shard %d out of range for S=%d", s, shards)
			}
			counts[s]++
		}
		// Fibonacci mixing should spread a contiguous id run roughly
		// evenly: no shard may be empty or hold more than half.
		for s, c := range counts {
			if c == 0 {
				t.Fatalf("S=%d: shard %d owns no variables of a 4096 run", shards, s)
			}
			if c > len(vs)/2 && shards > 2 {
				t.Fatalf("S=%d: shard %d owns %d of %d variables", shards, s, c, len(vs))
			}
		}
	}
}

// TestShardTableBits: per-shard tables shrink by log2(shards), floored
// at the minimum.
func TestShardTableBits(t *testing.T) {
	cases := []struct {
		bits   uint
		shards int
		want   uint
	}{
		{16, 1, 16}, {16, 2, 15}, {16, 4, 14}, {16, 8, 13},
		{16, 3, 14}, {5, 1024, MinTableBits}, {MinTableBits, 4, MinTableBits},
	}
	for _, c := range cases {
		if got := ShardTableBits(c.bits, c.shards); got != c.want {
			t.Fatalf("ShardTableBits(%d, %d) = %d, want %d", c.bits, c.shards, got, c.want)
		}
	}
}

// TestOrderHaltCh: the halt channel closes exactly once, regardless of
// repeated Halt calls.
func TestOrderHaltCh(t *testing.T) {
	o := NewOrder()
	select {
	case <-o.HaltCh():
		t.Fatal("halt channel closed before Halt")
	default:
	}
	o.Halt()
	o.Halt() // must not panic on double close
	select {
	case <-o.HaltCh():
	default:
		t.Fatal("halt channel open after Halt")
	}
}
