package meta

import "sync/atomic"

// Var is a transactional variable holding one 64-bit word. It is the
// unit of concurrency control: every engine maps a Var to a lock-table
// entry through its id (see Table), mirroring the paper's scheme of
// deriving lock addresses from the least-significant bits of the data
// address — including the possibility that several variables alias to
// the same lock.
//
// The value itself always lives in the Var (write-through engines
// update it in place; write-back engines publish it at expose/commit
// time), so non-transactional observers can inspect quiescent state
// with Load.
//
// A Var must not be copied after first use.
type Var struct {
	val atomic.Uint64
	id  uint64
}

// varIDs allocates globally unique Var identities.
var varIDs atomic.Uint64

// NewVar returns a fresh transactional variable initialized to x.
func NewVar(x uint64) *Var {
	v := &Var{id: varIDs.Add(1)}
	v.val.Store(x)
	return v
}

// NewVars returns n fresh transactional variables, all zero, allocated
// contiguously for cache locality. Use &vs[i] as the *Var handle.
func NewVars(n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i].id = varIDs.Add(1)
	}
	return vs
}

// InitVar assigns v a fresh identity and initial value — for Vars
// embedded inside larger structures (the typed layer's inline words)
// rather than allocated by NewVar/NewVars. It must run before the
// Var's first use; re-initializing a live Var is a bug.
func InitVar(v *Var, x uint64) {
	v.id = varIDs.Add(1)
	v.val.Store(x)
}

// ID returns the variable's unique identity (used for lock striping and
// signature hashing).
func (v *Var) ID() uint64 { return v.id }

// Load atomically reads the in-memory value. Outside a transaction it
// is only meaningful on quiescent state (before a run, or after the
// executor has drained); engines use it internally.
func (v *Var) Load() uint64 { return v.val.Load() }

// Store atomically writes the in-memory value. The same quiescence
// caveat as Load applies for non-engine callers.
func (v *Var) Store(x uint64) { v.val.Store(x) }

// CAS atomically compares-and-swaps the in-memory value (engine use).
func (v *Var) CAS(old, new uint64) bool { return v.val.CompareAndSwap(old, new) }
