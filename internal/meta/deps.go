package meta

import "sync/atomic"

// DepList is the thread-safe dependency list kept by an exposed OWB
// transaction: the set of transactions that read its exposed (not yet
// committed) values and therefore must be cascade-aborted if the writer
// aborts. Insertion is a lock-free push; iteration is wait-free over
// the snapshot reachable from head.
//
// The element type is generic so each engine can link its own attempt
// descriptors without interface indirection on the abort path.
type DepList[T any] struct {
	head atomic.Pointer[depNode[T]]
}

type depNode[T any] struct {
	item T
	next *depNode[T]
}

// Push prepends item. Safe for concurrent use.
func (l *DepList[T]) Push(item T) {
	n := &depNode[T]{item: item}
	for {
		h := l.head.Load()
		n.next = h
		if l.head.CompareAndSwap(h, n) {
			return
		}
	}
}

// ForEach visits every item currently in the list (items pushed
// concurrently with the iteration may or may not be visited; OWB's
// double-check-after-register protocol covers that race).
func (l *DepList[T]) ForEach(f func(T)) {
	for n := l.head.Load(); n != nil; n = n.next {
		f(n.item)
	}
}

// Len counts the current items (tests and stats).
func (l *DepList[T]) Len() int {
	c := 0
	for n := l.head.Load(); n != nil; n = n.next {
		c++
	}
	return c
}

// Reset empties the list (cleanup after the attempt is finalized).
func (l *DepList[T]) Reset() { l.head.Store(nil) }
