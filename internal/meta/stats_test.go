package meta

import (
	"sync"
	"testing"
)

// TestBreakdownCategories pins every Figure 5 category to its causes:
// read-after-write folds RAW and killed-reader, "other" absorbs the
// non-paper causes (order kills, busy fallbacks, unattributed), and
// each remaining category maps one-to-one.
func TestBreakdownCategories(t *testing.T) {
	var s Stats
	s.Abort(CauseRAW)          // read-after-write
	s.Abort(CauseKilledReader) // read-after-write
	s.Abort(CauseWAW)          // write-after-write
	s.Abort(CauseCascade)      // cascade
	s.Abort(CauseCascade)      // cascade
	s.Abort(CauseLockedWrite)  // locked-write
	s.Abort(CauseValidation)   // validation
	s.Abort(CauseOrder)        // other
	s.Abort(CauseBusy)         // other
	s.Abort(CauseNone)         // other
	b := s.View().Breakdown()
	want := map[string]float64{
		"read-after-write":  2.0 / 10,
		"write-after-write": 1.0 / 10,
		"cascade":           2.0 / 10,
		"locked-write":      1.0 / 10,
		"validation":        1.0 / 10,
		"other":             3.0 / 10,
	}
	if len(b) != len(want) {
		t.Fatalf("breakdown has %d categories, want %d: %v", len(b), len(want), b)
	}
	for k, w := range want {
		if got := b[k]; got != w {
			t.Errorf("%s = %v, want %v", k, got, w)
		}
	}
}

// TestStatsConcurrentRotate hammers per-worker cells and the default
// cell from many goroutines while another rotates continuously. Run
// under -race it proves the record/rotate paths are data-race free;
// the conservation check proves Rotate's swap-based drain never loses
// or double-counts an event across epoch boundaries.
func TestStatsConcurrentRotate(t *testing.T) {
	const (
		workers = 8
		perG    = 20000
	)
	var s Stats
	var folded StatsView
	var foldMu sync.Mutex
	stop := make(chan struct{})
	var rotWG sync.WaitGroup
	rotWG.Add(1)
	go func() {
		defer rotWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				v := s.Rotate()
				foldMu.Lock()
				folded = folded.Plus(v)
				foldMu.Unlock()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := s.NewCell()
			for i := 0; i < perG; i++ {
				c.Start()
				if i%2 == 0 {
					c.Commit()
				} else {
					c.Abort(Cause(1 + i%int(NumCauses-1)))
					c.Retry()
				}
				if i%64 == 0 {
					s.Quiesce() // default cell, concurrently with the rotator
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	rotWG.Wait()
	foldMu.Lock()
	total := folded.Plus(s.Rotate()) // drain whatever the last epoch left
	foldMu.Unlock()
	if want := uint64(workers * perG); total.Starts != want {
		t.Fatalf("starts = %d, want %d", total.Starts, want)
	}
	if want := uint64(workers * perG / 2); total.Commits != want {
		t.Fatalf("commits = %d, want %d", total.Commits, want)
	}
	if want := uint64(workers * perG / 2); total.TotalAborts() != want || total.Retries != want {
		t.Fatalf("aborts = %d retries = %d, want %d", total.TotalAborts(), total.Retries, want)
	}
}
