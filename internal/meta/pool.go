package meta

import "sync"

// TxnPool is a worker-local descriptor allocator. The run-loop gives
// each of its goroutines (workers and the validator) one pool; NewTxn
// either recycles a retired descriptor — reusing its readRefs/writes
// backing arrays and advancing its generation — or falls back to a
// fresh allocation. Retire hands back a *finalized* attempt; the pool
// may cache it, spill it to the engine-wide depot, or (when shared
// references still pin it) park it until the pins drain. Pools are not
// safe for concurrent use; cross-goroutine balance flows through the
// engine's depot.
type TxnPool interface {
	NewTxn(age uint64) Txn
	Retire(t Txn)
}

// PoolEngine is implemented by engines whose descriptors support
// generation-stamped recycling. Engines that do not implement it run
// exactly as before: one fresh descriptor per attempt, reclaimed by
// the GC.
type PoolEngine interface {
	Engine
	NewPool() TxnPool
}

// cacheCap bounds a worker-local freelist; above it, half the cache
// spills to the shared depot in one batch, so steady-state recycling
// touches the depot lock only once per cacheCap/2 retirements even
// when different goroutines produce and consume descriptors (the
// flat-combining validator retires attempts created by workers).
const cacheCap = 32

// Depot is the engine-wide overflow shared by that engine's worker
// caches. All operations move batches, amortizing the lock.
type Depot[T any] struct {
	mu    sync.Mutex
	items []*T
}

// Grab moves up to n items from the depot into dst and returns the
// extended slice.
func (d *Depot[T]) Grab(dst []*T, n int) []*T {
	d.mu.Lock()
	k := len(d.items)
	if k > n {
		k = n
	}
	dst = append(dst, d.items[len(d.items)-k:]...)
	d.items = d.items[:len(d.items)-k]
	d.mu.Unlock()
	return dst
}

// Put moves items into the depot.
func (d *Depot[T]) Put(items []*T) {
	if len(items) == 0 {
		return
	}
	d.mu.Lock()
	d.items = append(d.items, items...)
	d.mu.Unlock()
}

// Len returns the current depot population (tests).
func (d *Depot[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}

// Cache is the engine-agnostic half of a worker-local freelist: a
// bounded local stack backed by the engine's depot. Engine pools wrap
// it with their descriptor reset/renew logic.
type Cache[T any] struct {
	depot *Depot[T]
	free  []*T
}

// NewCache returns a worker-local cache over the given depot.
func NewCache[T any](d *Depot[T]) *Cache[T] {
	return &Cache[T]{depot: d, free: make([]*T, 0, cacheCap)}
}

// Get pops a recycled descriptor, refilling from the depot when the
// local stack is empty. It returns nil when nothing is available and
// the caller must allocate.
func (c *Cache[T]) Get() *T {
	if len(c.free) == 0 {
		c.free = c.depot.Grab(c.free, cacheCap/2)
		if len(c.free) == 0 {
			return nil
		}
	}
	t := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	return t
}

// Put caches a retired descriptor, spilling half the stack to the
// depot when full.
func (c *Cache[T]) Put(t *T) {
	if len(c.free) >= cacheCap {
		half := len(c.free) / 2
		c.depot.Put(c.free[half:])
		c.free = append(c.free[:half:cap(c.free)], t)
		return
	}
	c.free = append(c.free, t)
}
