package meta

import (
	"sync"
	"sync/atomic"
)

// This file is the generation-stamped reference machinery that makes
// descriptor recycling safe. When every attempt got a brand-new
// descriptor, a stale pointer found in a lock word or reader slot
// always denoted a finalized attempt, so CAS-based claims could never
// suffer ABA. Per-worker freelists break that property: a pointer can
// be compare-and-swapped *after* the descriptor it names has been
// recycled into a live attempt that re-acquired the very same record,
// silently stealing a live lock. No pointer-only protocol closes that
// race, so shared engine metadata stores a Ref instead: the
// descriptor's registry index packed with the generation of the life
// that published it. A claim CAS then compares (index, generation)
// values and cannot cross a life boundary, and a resolver checks the
// referenced descriptor's current generation (StatusWord.LoadLife)
// against the Ref's to detect staleness exactly.

// Ref is a packed generation-stamped descriptor reference: registry
// index in the high bits, the publishing life's generation (truncated)
// in the low bits. Two small values are reserved for the non-reference
// sentinels every engine needs in a lock word.
type Ref uint64

const (
	// RefNil is the empty reference (unlocked / free slot).
	RefNil Ref = 0
	// RefBusy parks a lock word during a short critical section (the
	// BUSY sentinel of Algorithms 2-4); it never resolves.
	RefBusy Ref = 1

	refIdxBits = 22 // up to ~4M live descriptors per engine
	refGenBits = 64 - refIdxBits
	refGenMask = 1<<refGenBits - 1
	// refIdxBias keeps every real reference above the sentinels.
	refIdxBias = 2
)

// MakeRef packs a registry index and a life generation. Generations
// are truncated to refGenBits; a collision needs the same descriptor
// observed 2^42 lives apart, beyond any physical run.
func MakeRef(idx uint32, gen uint64) Ref {
	return Ref((uint64(idx)+refIdxBias)<<refGenBits | gen&refGenMask)
}

// IsTxn reports whether r names a descriptor (not a sentinel).
func (r Ref) IsTxn() bool { return uint64(r)>>refGenBits >= refIdxBias }

// Idx returns the registry index of a descriptor reference.
func (r Ref) Idx() uint32 { return uint32(uint64(r)>>refGenBits) - refIdxBias }

// Gen returns the (truncated) generation the reference was made with.
func (r Ref) Gen() uint64 { return uint64(r) & refGenMask }

// SameLife reports whether the resolved descriptor's current life is
// the one this reference was published in. A false result means the
// reference is stale: the life it named has finalized (recycling
// requires a final status first), so the reference must be treated
// exactly as a reference to a finalized descriptor was treated before
// recycling existed.
func (r Ref) SameLife(l Life) bool { return l.Gen()&refGenMask == r.Gen() }

// RefWord is an atomically updated Ref (a lock word or reader slot).
type RefWord struct{ w atomic.Uint64 }

// Load returns the current reference.
func (w *RefWord) Load() Ref { return Ref(w.w.Load()) }

// Store publishes r unconditionally (owner-side transitions only).
func (w *RefWord) Store(r Ref) { w.w.Store(uint64(r)) }

// CAS replaces old with new and reports success. Because generations
// are part of the compared value, the claim cannot succeed across a
// descriptor recycle (the ABA the stamps exist to prevent).
func (w *RefWord) CAS(old, new Ref) bool {
	return w.w.CompareAndSwap(uint64(old), uint64(new))
}

// Registry resolves Ref indices back to descriptors for one engine.
// Resolution is a lock-free two-level lookup on every hot-path
// dereference; registration appends into fixed-size blocks so only the
// (small) block directory is ever copied — Add stays O(1) even when a
// run opts out of recycling and registers one descriptor per attempt.
type Registry[T any] struct {
	mu   sync.Mutex
	n    uint32 // registered count (guarded by mu)
	snap atomic.Pointer[[]*regBlock[T]]
}

const (
	regBlockBits = 10 // 1024 descriptors per block
	regBlockSize = 1 << regBlockBits
	regBlockMask = regBlockSize - 1
)

type regBlock[T any] struct {
	slots [regBlockSize]atomic.Pointer[T]
}

// Add registers d and returns its stable index. The index space is
// bounded by the Ref packing (refIdxBits); exceeding it would make
// MakeRef alias earlier references — silent descriptor confusion — so
// exhaustion panics instead. Recycling pools register descriptors
// only on allocation (bounded by concurrency); the bound is only
// approachable when recycling is disabled, one descriptor per attempt.
func (r *Registry[T]) Add(d *T) uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.n
	if uint64(idx)+refIdxBias >= 1<<refIdxBits {
		panic("meta: descriptor registry exhausted (Ref index space); " +
			"enable descriptor recycling instead of fresh per-attempt descriptors")
	}
	var dir []*regBlock[T]
	if p := r.snap.Load(); p != nil {
		dir = *p
	}
	if int(idx>>regBlockBits) == len(dir) {
		next := make([]*regBlock[T], len(dir)+1)
		copy(next, dir)
		next[len(dir)] = &regBlock[T]{}
		r.snap.Store(&next)
		dir = next
	}
	dir[idx>>regBlockBits].slots[idx&regBlockMask].Store(d)
	r.n = idx + 1
	return idx
}

// At resolves an index previously returned by Add.
func (r *Registry[T]) At(idx uint32) *T {
	return (*r.snap.Load())[idx>>regBlockBits].slots[idx&regBlockMask].Load()
}

// Len returns the number of registered descriptors (tests, stats).
func (r *Registry[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.n)
}

// RefSlotArray is the generation-stamped counterpart of SlotArray: a
// bounded visible-readers array whose slots hold Refs. A slot is free
// when empty or when its occupant reference is stale or final.
type RefSlotArray struct {
	Slots []RefWord
}

// LazyRefSlots defers allocating the reader array until a lock record
// is first read transactionally (see LazySlots).
type LazyRefSlots struct {
	p atomic.Pointer[RefSlotArray]
}

// Get returns the slot array, allocating it with n slots on first use.
func (l *LazyRefSlots) Get(n int) *RefSlotArray {
	if a := l.p.Load(); a != nil {
		return a
	}
	a := &RefSlotArray{Slots: make([]RefWord, n)}
	if l.p.CompareAndSwap(nil, a) {
		return a
	}
	return l.p.Load()
}

// Peek returns the slot array if it has been allocated, else nil.
func (l *LazyRefSlots) Peek() *RefSlotArray { return l.p.Load() }
