// Package meta holds the substrate shared by every transactional-memory
// engine in this repository: transactional variables, the striped lock
// table, transaction status and abort-cause vocabulary, the engine and
// transaction-attempt interfaces consumed by the ordered executor,
// visible-reader slot arrays, dependency lists for cascading aborts,
// commit-order (turn) control, and abort statistics.
//
// The package is intentionally engine-agnostic: OWB, OUL, OUL-Steal
// (internal/core) and every baseline (internal/tl2, internal/norec,
// internal/undolog, internal/stmlite) build their protocol-specific
// metadata on top of these primitives.
package meta

import "runtime"

// Mode classifies how the executor must drive an engine.
type Mode uint8

const (
	// ModeSequential runs bodies one by one on a single goroutine with
	// no instrumentation beyond atomic loads/stores (the paper's
	// non-transactional "sequential" green line).
	ModeSequential Mode = iota
	// ModeCooperative is the paper's cooperative ordered model
	// (OWB, OUL, OUL-Steal): workers speculatively execute and expose
	// transactions out of order; a flat-combining validator role
	// commits them in age order and re-executes reachable failures.
	ModeCooperative
	// ModeBlocked is the classical blocking approach used for the
	// ordered baselines (Ordered TL2/NOrec/UndoLog): a transaction may
	// enter its commit phase only once every lower-age transaction has
	// committed.
	ModeBlocked
	// ModeUnordered runs a conventional (non-ACO) STM; ages are
	// assigned but ignored by conflict resolution and commit.
	ModeUnordered
	// ModeLite is STMLite's model: workers submit signature summaries
	// to a Transaction Commit Manager which grants in-order
	// (possibly concurrent) write-backs.
	ModeLite
)

// String returns the executor-mode name.
func (m Mode) String() string {
	switch m {
	case ModeSequential:
		return "sequential"
	case ModeCooperative:
		return "cooperative"
	case ModeBlocked:
		return "blocked"
	case ModeUnordered:
		return "unordered"
	case ModeLite:
		return "lite"
	default:
		return "unknown"
	}
}

// Txn is one transaction *attempt*. The executor requests a Txn from
// the engine (or its per-worker TxnPool) for every attempt, including
// validator re-executions. Engines implementing PoolEngine recycle
// finalized descriptors across attempts; a recycled descriptor starts
// a new *life* (StatusWord.Renew), and every shared reference to it —
// lock words, reader slots, dependency registrations — carries the
// generation of the life that published it (meta.Ref), so a stale
// reference is exactly as inert as a pointer to a never-reused
// finalized descriptor used to be. Engines that do not pool still get
// one fresh descriptor per attempt with the GC standing in for
// epoch-based reclamation.
//
// Read and Write may signal an abort by panicking via PanicAbort; the
// executor's sandbox recovers, calls AbandonAttempt, and retries with a
// new descriptor.
type Txn interface {
	// Read returns the current value of v visible to this transaction.
	Read(v *Var) uint64
	// Write stores x into v from this transaction's perspective
	// (buffered or write-through depending on the engine).
	Write(v *Var, x uint64)
	// Age returns the transaction's predefined commit order index.
	Age() uint64

	// TryCommit moves the attempt to its commit-pending / exposed state
	// (cooperative engines), or performs the full ordered/unordered
	// commit (blocked, unordered and lite engines). It returns false if
	// the attempt aborted instead; the attempt must then be abandoned
	// and retried with a fresh descriptor.
	TryCommit() bool
	// Commit finalizes a commit-pending attempt once it is reachable
	// (every lower age committed). Only meaningful for cooperative
	// engines; others return true immediately. A false return means the
	// attempt was aborted while commit-pending and must be re-executed.
	Commit() bool
	// Cleanup releases metadata after the attempt committed and became
	// reachable (the cleaner role of Algorithm 5). It must be called at
	// most once and only after Commit returned true.
	Cleanup()
	// AbandonAttempt rolls back whatever the attempt left behind
	// (locks, write-through values, reader registrations) after an
	// abort. It is idempotent.
	AbandonAttempt()
	// Doomed reports whether some other transaction has marked this
	// attempt for abort.
	Doomed() bool
}

// Engine constructs transaction attempts for one algorithm
// instantiation (one run). Engines are not reusable across runs.
type Engine interface {
	// Name returns the human-readable algorithm name.
	Name() string
	// Mode tells the executor how to drive this engine.
	Mode() Mode
	// NewTxn returns a fresh attempt descriptor for the given age.
	NewTxn(age uint64) Txn
	// Stats returns the engine's shared counters.
	Stats() *Stats
}

// Service is implemented by engines that need a background goroutine
// for the duration of a run (STMLite's Transaction Commit Manager).
type Service interface {
	Start()
	Stop()
}

// Recycler is implemented by engines that can scrub stale finalized
// descriptors out of their long-lived metadata. Cleanup reclaims what
// a committed, reachable transaction held, but some references survive
// it: reader slots keep pointing at aborted attempts until a later
// reader happens to reuse the slot, and lock words can retain the last
// committed writer of a cold record. In a one-shot batch that garbage
// dies with the engine; a long-lived pipeline instead calls Recycle at
// epoch boundaries so the retained descriptor set stays proportional
// to the in-flight window rather than to the history of the stream.
//
// Recycle runs concurrently with live transactions and must only
// perform transitions those transactions already tolerate (clearing a
// finalized occupant is exactly what slot reuse does).
type Recycler interface {
	Recycle()
}

// Stabilizer is implemented by attempts whose engine can leave a gap
// between a commit entering the order (the frontier advancing) and its
// effects being fully applied to memory: STMLite's commit manager
// grants write-back permission in age order, but the write-back itself
// runs on the granted worker afterwards. WaitStable blocks until every
// granted commit has landed in memory. Frontier-exact readers (the
// shard fence protocol) call it after reaching the commit frontier and
// before reading; engines that publish writes before advancing the
// order never implement it.
type Stabilizer interface {
	WaitStable()
}

// Revalidator is implemented by attempts that can check their read-set
// consistency on demand. The executor's sandbox uses it to distinguish
// a genuine application fault from a fault induced by an inconsistent
// speculative snapshot (engines with invisible reads and no per-read
// validation — TL2, NOrec, invisible-reader undo log — can observe
// stale state without being doomed).
type Revalidator interface {
	ReadSetValid() bool
}

// abortSignal is the panic payload used to unwind a transaction body
// when its attempt must abort.
type abortSignal struct{ cause Cause }

// PanicAbort unwinds the current transaction body with the given abort
// cause. It must only be called beneath the executor's sandbox.
func PanicAbort(c Cause) {
	panic(abortSignal{cause: c})
}

// AbortSignal returns the panic payload PanicAbort would throw, for
// coordinators that must hand an abort to another goroutine to
// re-raise under its own sandbox (the cross-shard rendezvous killing a
// round's surviving participants).
func AbortSignal(c Cause) any { return abortSignal{cause: c} }

// AbortCause reports whether a recovered panic value is an abort signal
// and, if so, its cause.
func AbortCause(r any) (Cause, bool) {
	s, ok := r.(abortSignal)
	if !ok {
		return CauseNone, false
	}
	return s.cause, true
}

// spinYieldThreshold is the number of tight-loop iterations before a
// spinner starts yielding to the scheduler. On a single-hardware-thread
// host (the evaluation environment of this reproduction) yielding
// immediately is essential for progress, so the threshold is tiny.
const spinYieldThreshold = 2

// Pause is the backoff primitive used inside every spin loop: cheap for
// the first iterations, then it yields the processor so the goroutine
// being waited on can run even with GOMAXPROCS=1.
func Pause(i int) {
	if i > spinYieldThreshold {
		runtime.Gosched()
	}
}
