package meta

import (
	"sync"
	"sync/atomic"
)

// Order tracks the Age-based Commit Order (ACO) progress of one engine
// instantiation: how many transactions have committed so far, which
// equals the age of the next transaction allowed to commit. Blocked
// engines wait on it for their turn; cooperative engines use it to
// decide reachability; the executor uses it to throttle run-ahead
// (Algorithm 5's MAX/MIN window).
//
// The frontier is open-ended: nothing in Order assumes a batch size, so
// the same state serves a one-shot Executor.Run and an unbounded
// stm.Pipeline. The committed count is an atomic for cheap reads on hot
// paths; a condition variable provides sleeping waits so that
// turn-waiting does not burn the (single) CPU.
type Order struct {
	// committed is the hottest word in the system — every reachability
	// check, frontier poll and ring scan loads it — so it gets its own
	// cache lines: the leading pad keeps it off whatever precedes the
	// Order allocation, the trailing pad keeps the halt flag and mutex
	// (written on the slow path) from sharing its line.
	_         [64]byte
	committed atomic.Uint64 // == next age to commit
	_         [56]byte
	halted    atomic.Bool   // run stopped; all waits must return
	haltc     chan struct{} // closed by Halt, for select-based waiters

	mu   sync.Mutex
	cond *sync.Cond
}

// NewOrder returns order state starting at age 0.
func NewOrder() *Order { return NewOrderAt(0) }

// NewOrderAt returns order state whose first committable age is start.
// A pipeline resuming from a snapshot (a replica rejoining at a known
// consensus slot, a loop restarting at an iteration index) seeds the
// frontier here instead of renumbering its transactions from zero.
func NewOrderAt(start uint64) *Order {
	o := &Order{haltc: make(chan struct{})}
	o.committed.Store(start)
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Committed returns the number of committed transactions (== the next
// age that may commit).
func (o *Order) Committed() uint64 { return o.committed.Load() }

// Reachable reports whether every transaction with age lower than age
// has committed.
func (o *Order) Reachable(age uint64) bool { return o.committed.Load() >= age }

// WaitTurn blocks until it is age's turn to commit, the order halts, or
// doomed() becomes true, whichever is first; it returns true iff the
// turn arrived. Aborters that doom a waiting transaction must call Kick
// to wake it.
func (o *Order) WaitTurn(age uint64, doomed func() bool) bool {
	if o.committed.Load() == age {
		// Even at the frontier, a halted order must not report the
		// turn: a fault has already resolved this age's outcome, and
		// committing now would break the "stopped ages did not
		// commit" contract for a whole chain of parked waiters.
		return !o.halted.Load()
	}
	o.mu.Lock()
	for o.committed.Load() != age {
		if o.halted.Load() || (doomed != nil && doomed()) {
			o.mu.Unlock()
			return false
		}
		o.cond.Wait()
	}
	halted := o.halted.Load()
	o.mu.Unlock()
	return !halted
}

// WaitReachable blocks until committed >= age, the order halts, or
// cancel() reports true (used by the executor's run-ahead throttle).
// Cancellers must call Kick to wake waiters.
func (o *Order) WaitReachable(age uint64, cancel func() bool) {
	if o.committed.Load() >= age {
		return
	}
	o.mu.Lock()
	for o.committed.Load() < age {
		if o.halted.Load() || (cancel != nil && cancel()) {
			break
		}
		o.cond.Wait()
	}
	o.mu.Unlock()
}

// Complete marks age as committed (it must be the current turn) and
// wakes every waiter.
func (o *Order) Complete(age uint64) {
	o.mu.Lock()
	if o.committed.Load() != age {
		o.mu.Unlock()
		panic("meta: Order.Complete out of order")
	}
	o.committed.Store(age + 1)
	o.cond.Broadcast()
	o.mu.Unlock()
}

// Kick wakes all waiters so they can re-check their doom flags.
func (o *Order) Kick() {
	o.mu.Lock()
	o.cond.Broadcast()
	o.mu.Unlock()
}

// Halt permanently cancels every current and future wait on the order:
// WaitTurn returns false and WaitReachable returns immediately. The
// executor halts the order when a run stops on a fault, so that no
// worker stays parked waiting for a turn that will never come (ages
// below it were abandoned, not committed).
func (o *Order) Halt() {
	if o.halted.CompareAndSwap(false, true) {
		close(o.haltc)
	}
	o.Kick()
}

// Halted reports whether Halt was called.
func (o *Order) Halted() bool { return o.halted.Load() }

// HaltCh returns a channel closed when the order halts, so goroutines
// multiplexing on channels (the STMLite commit manager) can observe
// the stop without polling the condition variable.
func (o *Order) HaltCh() <-chan struct{} { return o.haltc }
