// Package apps holds the shared plumbing for the STAMP, PARSEC and
// SPEC2000 application reproductions: a Runner that executes the
// phases of an application under one (algorithm, workers)
// configuration and result merging across phases.
//
// Every application package exposes the same shape: New(Config) →
// app with Run(Runner), Verify() error and Fingerprint() uint64; the
// fingerprint of an order-enforcing run must equal the sequential
// one whenever the application is deterministic (all except
// labyrinth, whose path planning is snapshot-dependent by design,
// as in the original STAMP code).
package apps

import (
	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/stm"
)

// Runner executes transaction batches for an application's phases.
type Runner struct {
	// Alg is the concurrency-control algorithm.
	Alg stm.Algorithm
	// Workers is the worker count.
	Workers int
	// Mutate optionally adjusts the executor config (lock table size,
	// spin budget, ...).
	Mutate func(*stm.Config)
}

// Exec runs one phase of n transactions.
func (r Runner) Exec(n int, body stm.Body) (stm.Result, error) {
	cfg := stm.Config{Algorithm: r.Alg, Workers: r.Workers}
	if r.Mutate != nil {
		r.Mutate(&cfg)
	}
	ex, err := stm.NewExecutor(cfg)
	if err != nil {
		return stm.Result{}, err
	}
	return ex.Run(n, body)
}

// Merge combines phase results: durations and counters add up.
func Merge(rs ...stm.Result) stm.Result {
	if len(rs) == 0 {
		return stm.Result{}
	}
	out := rs[0]
	for _, r := range rs[1:] {
		out.N += r.N
		out.Elapsed += r.Elapsed
		out.Stats = addViews(out.Stats, r.Stats)
	}
	return out
}

func addViews(a, b meta.StatsView) meta.StatsView {
	a.Starts += b.Starts
	a.Commits += b.Commits
	a.Retries += b.Retries
	a.Quiesces += b.Quiesces
	for i := range a.Aborts {
		a.Aborts[i] += b.Aborts[i]
	}
	return a
}
