package apps

import (
	"testing"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/stm"
)

func TestRunnerExec(t *testing.T) {
	v := stm.NewVar(0)
	r := Runner{Alg: stm.OWB, Workers: 2}
	res, err := r.Exec(40, func(tx stm.Tx, age int) {
		tx.Write(v, tx.Read(v)+2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 40 || v.Load() != 80 {
		t.Fatalf("res=%+v v=%d", res, v.Load())
	}
}

func TestRunnerMutate(t *testing.T) {
	called := false
	r := Runner{Alg: stm.Sequential, Workers: 1, Mutate: func(c *stm.Config) {
		called = true
		c.SpinBudget = 5
	}}
	if _, err := r.Exec(1, func(tx stm.Tx, age int) {}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("mutate not invoked")
	}
}

func TestMerge(t *testing.T) {
	if got := Merge(); got.N != 0 {
		t.Fatalf("empty merge = %+v", got)
	}
	a := stm.Result{N: 10, Elapsed: time.Second}
	a.Stats.Commits = 10
	a.Stats.Aborts[meta.CauseRAW] = 3
	b := stm.Result{N: 5, Elapsed: 2 * time.Second}
	b.Stats.Commits = 5
	b.Stats.Aborts[meta.CauseWAW] = 2
	m := Merge(a, b)
	if m.N != 15 || m.Elapsed != 3*time.Second {
		t.Fatalf("merge = %+v", m)
	}
	if m.Stats.Commits != 15 || m.Stats.Aborts[meta.CauseRAW] != 3 || m.Stats.Aborts[meta.CauseWAW] != 2 {
		t.Fatalf("stats merge = %+v", m.Stats)
	}
	if m.Stats.TotalAborts() != 5 {
		t.Fatalf("total aborts = %d", m.Stats.TotalAborts())
	}
}
