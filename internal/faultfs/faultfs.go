// Package faultfs is a deterministic fault injector behind the
// wal.FS interface: a seeded, schedule-driven filesystem that fails
// (or delays) selected operations with the error classes a real disk
// produces — transient and persistent EIO, ENOSPC, short writes,
// stuck fdatasyncs, failed renames. Because the schedule is keyed on
// per-class operation counts, a (seed, workload) pair replays the
// same fault sequence on every run — the property the chaos harness
// (internal/harness/chaos) builds its safety assertions on, and the
// same determinism-by-construction that makes the engine's own
// replay exact.
package faultfs

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm/wal"
)

// Op classifies the filesystem operations faults can target.
type Op int

const (
	OpOpen Op = iota
	OpWrite
	OpSync // File.Fdatasync
	OpRename
	OpRemove
	OpTruncate
	OpSyncDir
	numOps
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "fsync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpSyncDir:
		return "dirsync"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Plan is one scheduled fault: starting at the N-th operation of
// class Op (1-based, counted per class), Count consecutive matching
// operations misbehave.
type Plan struct {
	Op  Op
	N   uint64 // fire on the N-th matching op (1-based)
	Err error  // error to inject; nil delays only
	// Count is how many consecutive matching operations fail from N
	// on: 1 models a transient error (the retry succeeds), larger
	// counts outlast bounded retries, and Count < 0 is persistent —
	// the device never recovers for this class.
	Count int
	// Path, when non-empty, restricts the plan to operations whose
	// path contains it (e.g. "CHECKPOINT" to fail only the manifest
	// rename).
	Path string
	// Short, on OpWrite, writes half the buffer through before
	// reporting Err — a short write with real bytes on disk, the
	// torn-record shape recovery must cut.
	Short bool
	// Delay stalls the operation before it (mis)behaves — a stuck
	// fdatasync when combined with nil Err.
	Delay time.Duration
}

// FS implements wal.FS over a base FS, injecting the scheduled
// faults. It is safe for concurrent use.
type FS struct {
	base  wal.FS
	mu    sync.Mutex
	plans []Plan
	count [numOps]uint64 // operations seen, per class
	shots atomic.Uint64  // faults actually injected
	log   []string
}

// New returns an injector over base (nil means wal.OS) executing the
// given plans.
func New(base wal.FS, plans ...Plan) *FS {
	if base == nil {
		base = wal.OS
	}
	return &FS{base: base, plans: plans}
}

// FromSeed derives a deterministic 1–3 fault schedule from seed,
// mixing error classes (EIO, ENOSPC, short writes), transient vs
// persistent shapes, and occasional sync delays. Each plan's trigger
// count N is drawn from a per-class range sized to the op volume a
// few-thousand-transaction group-committed run actually produces —
// one flush write and at most one fsync per sync group, one open per
// segment roll — so schedules land inside the run instead of beyond
// its end.
func FromSeed(base wal.FS, seed uint64) *FS {
	r := rng.New(seed)
	n := 1 + r.Intn(3)
	plans := make([]Plan, 0, n)
	for i := 0; i < n; i++ {
		var p Plan
		var lo, hi int
		switch r.Intn(6) {
		case 0:
			p, lo, hi = Plan{Op: OpWrite, Err: syscall.EIO}, 5, 120
		case 1:
			p, lo, hi = Plan{Op: OpWrite, Err: syscall.EIO, Short: true}, 5, 120
		case 2:
			p, lo, hi = Plan{Op: OpSync, Err: syscall.EIO}, 2, 40
		case 3:
			p, lo, hi = Plan{Op: OpSync, Err: syscall.EIO, Delay: time.Duration(r.Range(1, 10)) * time.Millisecond}, 2, 40
		case 4:
			// Open #1 is the initial segment; later opens are rolls.
			p, lo, hi = Plan{Op: OpOpen, Err: syscall.ENOSPC}, 2, 10
		default:
			p, lo, hi = Plan{Op: OpRename, Err: syscall.EIO}, 1, 3
		}
		p.N = uint64(r.Range(lo, hi))
		switch r.Intn(3) {
		case 0:
			p.Count = 1 // transient: one failure, retry succeeds
		case 1:
			p.Count = r.Range(2, 8) // outlasts small retry budgets
		default:
			p.Count = -1 // persistent
		}
		plans = append(plans, p)
	}
	return New(base, plans...)
}

// Injected returns how many operations were actually failed or
// delayed so far.
func (fs *FS) Injected() uint64 { return fs.shots.Load() }

// Log returns a human-readable record of every injected fault, in
// order.
func (fs *FS) Log() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]string(nil), fs.log...)
}

// check counts one operation of class op against the schedule and
// returns the fault to inject, if any.
func (fs *FS) check(op Op, path string) (delay time.Duration, short bool, err error) {
	fs.mu.Lock()
	fs.count[op]++
	n := fs.count[op]
	for i := range fs.plans {
		p := &fs.plans[i]
		if p.Op != op || n < p.N || p.Count == 0 {
			continue
		}
		if p.Count > 0 && n >= p.N+uint64(p.Count) {
			continue
		}
		if p.Path != "" && !strings.Contains(path, p.Path) {
			continue
		}
		delay, short, err = p.Delay, p.Short, p.Err
		fs.shots.Add(1)
		fs.log = append(fs.log, fmt.Sprintf("%s#%d %s: delay=%v short=%v err=%v",
			op, n, path, delay, short, err))
		break
	}
	fs.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return delay, short, err
}

func (fs *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	if _, _, err := fs.check(OpOpen, name); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := fs.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, name: name, f: f}, nil
}

func (fs *FS) Rename(oldpath, newpath string) error {
	if _, _, err := fs.check(OpRename, newpath); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return fs.base.Rename(oldpath, newpath)
}

func (fs *FS) Remove(name string) error {
	if _, _, err := fs.check(OpRemove, name); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return fs.base.Remove(name)
}

func (fs *FS) Truncate(name string, size int64) error {
	if _, _, err := fs.check(OpTruncate, name); err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: err}
	}
	return fs.base.Truncate(name, size)
}

func (fs *FS) SyncDir(dir string) error {
	if _, _, err := fs.check(OpSyncDir, dir); err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	return fs.base.SyncDir(dir)
}

// file wraps a base file, routing writes and syncs through the
// schedule.
type file struct {
	fs   *FS
	name string
	f    wal.File
}

func (f *file) Write(p []byte) (int, error) {
	_, short, err := f.fs.check(OpWrite, f.name)
	if err != nil {
		if short && len(p) > 1 {
			n, werr := f.f.Write(p[: len(p)/2 : len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, &os.PathError{Op: "write", Path: f.name, Err: err}
		}
		return 0, &os.PathError{Op: "write", Path: f.name, Err: err}
	}
	return f.f.Write(p)
}

func (f *file) Fdatasync() error {
	if _, _, err := f.fs.check(OpSync, f.name); err != nil {
		return &os.PathError{Op: "fdatasync", Path: f.name, Err: err}
	}
	return f.f.Fdatasync()
}

func (f *file) Close() error { return f.f.Close() }
