package simcpu

import (
	"github.com/orderedstm/ostm/internal/micro"
	"github.com/orderedstm/ostm/internal/rng"
)

// GenTraces builds transaction traces mirroring the micro-benchmark
// access patterns (internal/micro) for the simulator: same address
// distributions, access counts and length classes, with the heavy
// class's ALU budget mapped to local cycles.
func GenTraces(b micro.Bench, l micro.Length, n, pool int, seed uint64) []Trace {
	traces := make([]Trace, n)
	for age := 0; age < n; age++ {
		r := rng.New(seed ^ rng.Mix64(uint64(age)))
		var accesses int
		if l == micro.Long {
			accesses = r.Range(30, 61)
		} else {
			accesses = r.Range(10, 21)
		}
		var local int64 = 1
		if l == micro.Heavy {
			local = 100
		}
		var ops []Op
		switch b {
		case micro.Disjoint:
			const stripe = 64
			base := uint32((age * stripe) % (pool - stripe))
			for k := 0; k < accesses; k++ {
				kind := OpRead
				if k%2 == 1 {
					kind = OpWrite
				}
				ops = append(ops, Op{Kind: kind, Addr: base + uint32(k%stripe), Local: local})
			}
		case micro.RNW1:
			for k := 0; k < accesses-1; k++ {
				ops = append(ops, Op{Kind: OpRead, Addr: uint32(r.Intn(pool)), Local: local})
			}
			ops = append(ops, Op{Kind: OpWrite, Addr: uint32(r.Intn(pool)), Local: local})
		case micro.RWN:
			half := accesses / 2
			if half == 0 {
				half = 1
			}
			for k := 0; k < half; k++ {
				ops = append(ops, Op{Kind: OpRead, Addr: uint32(r.Intn(pool)), Local: local})
			}
			for k := 0; k < half; k++ {
				ops = append(ops, Op{Kind: OpWrite, Addr: uint32(r.Intn(pool)), Local: local})
			}
		case micro.MCAS:
			half := accesses / 2
			if half == 0 {
				half = 1
			}
			base := r.Intn(pool - half)
			for k := 0; k < half; k++ {
				addr := uint32(base + k)
				ops = append(ops, Op{Kind: OpRead, Addr: addr, Local: local})
				ops = append(ops, Op{Kind: OpWrite, Addr: addr, Local: local})
			}
		}
		traces[age] = Trace{Ops: ops}
	}
	return traces
}
