package simcpu

import (
	"testing"

	"github.com/orderedstm/ostm/internal/micro"
)

func traces(b micro.Bench, l micro.Length, n int) []Trace {
	return GenTraces(b, l, n, 1<<14, 7)
}

// TestAllAlgosComplete: every algorithm commits every transaction on
// every core count (no lost work, no simulator deadlock).
func TestAllAlgosComplete(t *testing.T) {
	const n = 300
	for _, b := range micro.Benches() {
		tr := traces(b, micro.Short, n)
		for _, a := range Algos() {
			for _, cores := range []int{1, 2, 8} {
				res := Simulate(a, tr, cores, DefaultParams())
				if res.Commits != n {
					t.Fatalf("%v/%v cores=%d: commits=%d want %d (aborts=%d)",
						a, b, cores, res.Commits, n, res.Aborts)
				}
				if res.VirtualTime <= 0 {
					t.Fatalf("%v/%v: zero virtual time", a, b)
				}
			}
		}
	}
}

// TestDeterminism: identical inputs give identical results.
func TestDeterminism(t *testing.T) {
	tr := traces(micro.RWN, micro.Long, 400)
	for _, a := range []Algo{OWB, OUL, OULSteal, OrderedTL2, STMLite} {
		r1 := Simulate(a, tr, 6, DefaultParams())
		r2 := Simulate(a, tr, 6, DefaultParams())
		if r1 != r2 {
			t.Fatalf("%v: nondeterministic results %+v vs %+v", a, r1, r2)
		}
	}
}

// TestDisjointScales: with no conflicts, cooperative engines must
// scale nearly linearly in virtual time.
func TestDisjointScales(t *testing.T) {
	tr := traces(micro.Disjoint, micro.Long, 2000)
	for _, a := range []Algo{OWB, OUL, OULSteal} {
		one := Simulate(a, tr, 1, DefaultParams())
		eight := Simulate(a, tr, 8, DefaultParams())
		speedup := float64(one.VirtualTime) / float64(eight.VirtualTime)
		if speedup < 3 {
			t.Fatalf("%v: disjoint speedup at 8 cores only %.2fx", a, speedup)
		}
	}
}

// TestCooperativeBeatsBlockedUnderContention: the paper's core claim —
// OUL outperforms the ordered blocked baselines on contended
// write-heavy workloads at high core counts.
func TestCooperativeBeatsBlockedUnderContention(t *testing.T) {
	tr := GenTraces(micro.RWN, micro.Short, 1500, 1<<12, 3)
	p := DefaultParams()
	oul := Simulate(OUL, tr, 8, p)
	for _, blocked := range []Algo{OrderedTL2, OrderedNOrec, OrderedUndoLogVis, OrderedUndoLogInvis} {
		b := Simulate(blocked, tr, 8, p)
		if oul.VirtualTime >= b.VirtualTime {
			t.Fatalf("OUL (%d) not faster than %v (%d) on contended RWN",
				oul.VirtualTime, blocked, b.VirtualTime)
		}
	}
}

// TestOrderedGap: enforcing the order must cost throughput relative
// to the unordered variant of the same algorithm (the paper's
// ordered-vs-unordered gap, Figure 2).
func TestOrderedGap(t *testing.T) {
	tr := GenTraces(micro.RWN, micro.Short, 1500, 1<<12, 5)
	p := DefaultParams()
	pairs := [][2]Algo{{TL2, OrderedTL2}, {NOrec, OrderedNOrec}, {UndoLogVis, OrderedUndoLogVis}}
	for _, pair := range pairs {
		un := Simulate(pair[0], tr, 8, p)
		or := Simulate(pair[1], tr, 8, p)
		if un.VirtualTime > or.VirtualTime {
			t.Fatalf("%v (%d) slower than its ordered variant %v (%d)",
				pair[0], un.VirtualTime, pair[1], or.VirtualTime)
		}
	}
}

// TestOULStealReducesAborts: on write-heavy workloads stealing must
// reduce aborts versus plain OUL (Figure 5d's order-of-magnitude
// observation, directionally).
func TestOULStealReducesAborts(t *testing.T) {
	tr := GenTraces(micro.RWN, micro.Short, 2000, 1<<10, 9)
	p := DefaultParams()
	oul := Simulate(OUL, tr, 8, p)
	steal := Simulate(OULSteal, tr, 8, p)
	if oul.Aborts == 0 {
		t.Fatal("expected contention aborts in OUL")
	}
	if steal.Aborts >= oul.Aborts {
		t.Fatalf("OUL-Steal aborts %d not below OUL %d", steal.Aborts, oul.Aborts)
	}
}

// TestSequentialBaseline: virtual time is the plain sum of costs.
func TestSequentialBaseline(t *testing.T) {
	tr := []Trace{{Ops: []Op{{Kind: OpRead, Addr: 1, Local: 10}, {Kind: OpWrite, Addr: 2, Local: 5}}}}
	res := Simulate(Sequential, tr, 4, DefaultParams())
	if res.VirtualTime != 17 { // 10+1 + 5+1
		t.Fatalf("sequential virtual time = %d, want 17", res.VirtualTime)
	}
	if res.Commits != 1 || res.Aborts != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

// TestNamesAndPredicates sanity-checks the enum helpers.
func TestNamesAndPredicates(t *testing.T) {
	for _, a := range Algos() {
		if a.String() == "" {
			t.Fatalf("algo %d unnamed", a)
		}
	}
	if !OUL.cooperative() || OrderedTL2.cooperative() {
		t.Fatal("cooperative predicate wrong")
	}
	if !OrderedTL2.blocked() || OUL.blocked() {
		t.Fatal("blocked predicate wrong")
	}
	if !OUL.writeThrough() || OWB.writeThrough() {
		t.Fatal("write-through predicate wrong")
	}
	if TL2.Ordered() || !OrderedTL2.Ordered() {
		t.Fatal("ordered predicate wrong")
	}
}

// TestThroughputHelpers covers the Result helpers.
func TestThroughputHelpers(t *testing.T) {
	r := Result{Commits: 500, Aborts: 100, VirtualTime: 1000}
	if r.ThroughputPerKCycle() != 500 {
		t.Fatalf("throughput = %v", r.ThroughputPerKCycle())
	}
	if r.AbortRatio() != 0.2 {
		t.Fatalf("abort ratio = %v", r.AbortRatio())
	}
	var zero Result
	if zero.ThroughputPerKCycle() != 0 || zero.AbortRatio() != 0 {
		t.Fatal("zero-value helpers wrong")
	}
}
