package simcpu

import (
	"container/heap"
	"sort"

	"github.com/orderedstm/ostm/internal/rng"
)

// event wakes a core at a virtual time. seq breaks ties
// deterministically and guards against stale wakeups.
type event struct {
	time int64
	seq  uint64
	core int
	csn  uint64 // core sequence number at scheduling time
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type readEnt struct {
	addr uint32
	ver  int64
}

// simTx is one transaction attempt in flight.
type simTx struct {
	age     int
	doomed  bool
	exposed bool // cooperative: published, awaiting ordered commit
	final   bool // committed or fully aborted
	aborted bool
	core    int // core currently running/stalled on it, -1 otherwise

	reads   []readEnt
	writes  []uint32
	deps    []*simTx // cooperative forwarding consumers
	snap    int64    // rv / seq snapshot / TCM start stamp
	expTime int64    // when the attempt exposed/completed
}

// lockSt is the virtual lock/metadata record of one address.
type lockSt struct {
	writer  *simTx
	readers []*simTx
	version int64
}

type coreSt struct {
	seq     uint64 // invalidates stale events
	tx      *simTx
	opIdx   int
	state   int // 0 idle, 1 running, 2 stalled
	halted  bool
	readyAt int64 // the core's own timeline frontier
}

const (
	coreIdle = iota
	coreRunning
	coreStalled
)

// sim is one simulation run.
type sim struct {
	algo   Algo
	p      Params
	traces []Trace
	cores  []coreSt

	clock     int64
	seq       uint64
	events    eventHeap
	locks     map[uint32]*lockSt
	nextAge   int
	committed int   // lastCommitted count == next age to commit
	gclock    int64 // TL2-style global version / NOrec seq / TCM stamp

	exposedAt map[int]*simTx // cooperative: exposed, awaiting commit
	retryLow  []*simTx       // reachable re-executions, by age
	turnWait  map[int]int    // age -> core stalled for its turn
	winWait   []int          // cores stalled on the run-ahead window
	lockWait  map[*simTx][]int
	tcmQueue  map[int]*simTx // STMLite submissions by age
	tcmFree   int64
	valFree   int64 // validator service availability

	commits, aborts int64
	endTime         int64
	tries           map[int]int // per-age attempt counts (backoff escalation)
	r               *rng.Rand
}

// Simulate runs the traces on the given number of cores under the
// algorithm's protocol model.
func Simulate(algo Algo, traces []Trace, cores int, p Params) Result {
	if cores < 1 {
		cores = 1
	}
	if algo == Sequential {
		return simulateSequential(traces, p)
	}
	if algo == STMLite && cores > 1 {
		cores-- // the TCM occupies one of the paper's threads
	}
	s := &sim{
		algo:      algo,
		p:         p,
		traces:    traces,
		cores:     make([]coreSt, cores),
		locks:     make(map[uint32]*lockSt),
		exposedAt: make(map[int]*simTx),
		turnWait:  make(map[int]int),
		lockWait:  make(map[*simTx][]int),
		tcmQueue:  make(map[int]*simTx),
		tries:     make(map[int]int),
		r:         rng.New(0xC0FFEE),
	}
	for c := range s.cores {
		s.wake(c, 0)
	}
	// Safety valve: a protocol-model bug must surface as a panic, not
	// a silent hang.
	budget := uint64(len(traces))*2000 + 10_000_000
	for len(s.events) > 0 {
		if s.seq > budget {
			panic("simcpu: event budget exceeded (livelock in protocol model)")
		}
		ev := heap.Pop(&s.events).(event)
		if ev.csn != s.cores[ev.core].seq {
			continue // stale wakeup
		}
		if ev.time > s.clock {
			s.clock = ev.time
		}
		s.step(ev.core, ev.time)
	}
	return Result{
		Algo:        algo,
		Cores:       len(s.cores),
		Commits:     s.commits,
		Aborts:      s.aborts,
		VirtualTime: s.endTime,
	}
}

func simulateSequential(traces []Trace, p Params) Result {
	var t int64
	for _, tr := range traces {
		for _, op := range tr.Ops {
			t += op.Local + 1
		}
	}
	return Result{Algo: Sequential, Cores: 1, Commits: int64(len(traces)), VirtualTime: t}
}

// wake schedules a (fresh) event for core c at time t.
func (s *sim) wake(c int, t int64) {
	s.cores[c].seq++
	s.seq++
	heap.Push(&s.events, event{time: t, seq: s.seq, core: c, csn: s.cores[c].seq})
}

// resume advances core c's own timeline to t and schedules it. Spurious
// earlier wakeups (doom notifications, turn handoffs racing a restart)
// are deferred to readyAt by step, so an operation is never processed
// before the core's own timeline reaches it.
func (s *sim) resume(c int, t int64) {
	s.cores[c].readyAt = t
	s.wake(c, t)
}

func (s *sim) lock(addr uint32) *lockSt {
	l, ok := s.locks[addr]
	if !ok {
		l = &lockSt{}
		s.locks[addr] = l
	}
	return l
}

func liveTx(t *simTx) bool { return t != nil && !t.final }

// doom marks a victim aborted-to-be. If the victim is stalled on a
// core, the core is woken to process the abort.
func (s *sim) doom(v *simTx, t int64) {
	if v == nil || v.doomed || v.final {
		return
	}
	v.doomed = true
	for _, d := range v.deps {
		s.doom(d, t)
	}
	if v.core >= 0 && s.cores[v.core].state == coreStalled {
		s.wake(v.core, t)
	}
}

// finalizeAbort rolls back a doomed attempt and counts the abort.
// Returns the rollback cost.
func (s *sim) finalizeAbort(tx *simTx, t int64) int64 {
	cost := s.p.AbortBase
	if s.algo.writeThrough() {
		cost += int64(len(tx.writes)) * s.p.LockEntry
		if s.algo == OULSteal {
			cost += int64(len(tx.writes)) * s.p.LockEntry // recursive hand-back (§8: 2–4x)
		}
		for _, a := range tx.writes {
			l := s.lock(a)
			l.version++ // dirty value restored: invisible readers must revalidate
			// abort speculative higher-age readers of the rolled-back
			// value
			for _, rd := range l.readers {
				if liveTx(rd) && rd.age > tx.age {
					s.doom(rd, t)
				}
			}
		}
	} else if tx.exposed {
		cost += int64(len(tx.writes)) * s.p.LockEntry
	}
	s.releaseLocks(tx)
	tx.final = true
	tx.aborted = true
	s.aborts++
	s.wakeLockWaiters(tx, t+cost)
	return cost
}

func (s *sim) releaseLocks(tx *simTx) {
	for _, a := range tx.writes {
		l := s.lock(a)
		if l.writer == tx {
			l.writer = nil
		}
	}
	if s.algo.visibleReaders() {
		for _, e := range tx.reads {
			l := s.lock(e.addr)
			for i, rd := range l.readers {
				if rd == tx {
					l.readers[i] = l.readers[len(l.readers)-1]
					l.readers = l.readers[:len(l.readers)-1]
					break
				}
			}
		}
	}
}

func (s *sim) wakeLockWaiters(tx *simTx, t int64) {
	for _, c := range s.lockWait[tx] {
		s.wake(c, t)
	}
	delete(s.lockWait, tx)
}

// stallOn parks core c until victim finalizes.
func (s *sim) stallOn(c int, victim *simTx) {
	s.cores[c].state = coreStalled
	s.lockWait[victim] = append(s.lockWait[victim], c)
}

// restart resets a doomed attempt for re-execution on the same core.
func (s *sim) restart(c int, t int64) {
	cs := &s.cores[c]
	tx := cs.tx
	if w, ok := s.turnWait[tx.age]; ok && w == c {
		delete(s.turnWait, tx.age)
	}
	cost := s.finalizeAbort(tx, t)
	fresh := &simTx{age: tx.age, core: c, snap: s.gclock}
	cs.tx = fresh
	cs.opIdx = 0
	cs.state = coreRunning
	// Escalating backoff (contention-manager style): repeated retries
	// of the same age spread out so interference chains die down.
	s.tries[tx.age]++
	n := int64(s.tries[tx.age])
	if n > 64 {
		n = 64
	}
	s.resume(c, t+cost+s.p.RetryBackoff*n)
}

// step advances core c at time t.
func (s *sim) step(c int, t int64) {
	cs := &s.cores[c]
	if cs.halted {
		return
	}
	if t < cs.readyAt {
		s.wake(c, cs.readyAt) // early external wakeup: defer
		return
	}
	if cs.tx == nil {
		s.dispatch(c, t)
		return
	}
	tx := cs.tx
	if tx.doomed && !tx.final {
		s.restart(c, t)
		return
	}
	if cs.opIdx >= len(s.traces[tx.age].Ops) {
		s.finish(c, t)
		return
	}
	op := s.traces[tx.age].Ops[cs.opIdx]
	var cost int64
	var stalled bool
	if op.Kind == OpRead {
		cost, stalled = s.doRead(c, tx, op, t)
	} else {
		cost, stalled = s.doWrite(c, tx, op, t)
	}
	if stalled {
		return // parked; will be woken and retry this op
	}
	if tx.doomed {
		s.restart(c, t+cost)
		return
	}
	cs.opIdx++
	cs.state = coreRunning
	s.resume(c, t+op.Local+cost)
}

// dispatch assigns the next work item to an idle core.
func (s *sim) dispatch(c int, t int64) {
	cs := &s.cores[c]
	// Reachable re-executions first (lowest age).
	if len(s.retryLow) > 0 {
		sort.Slice(s.retryLow, func(i, j int) bool { return s.retryLow[i].age < s.retryLow[j].age })
		tx := s.retryLow[0]
		s.retryLow = s.retryLow[1:]
		fresh := &simTx{age: tx.age, core: c, snap: s.gclock}
		cs.tx = fresh
		cs.opIdx = 0
		cs.state = coreRunning
		s.resume(c, t)
		return
	}
	if s.nextAge >= len(s.traces) {
		cs.halted = true
		if t > s.endTime {
			s.endTime = t
		}
		return
	}
	// Run-ahead window (cooperative and lite modes).
	if (s.algo.cooperative() || s.algo == STMLite) && s.nextAge > s.committed+s.p.Window {
		cs.state = coreStalled
		s.winWait = append(s.winWait, c)
		return
	}
	age := s.nextAge
	s.nextAge++
	cs.tx = &simTx{age: age, core: c, snap: s.gclock}
	cs.opIdx = 0
	cs.state = coreRunning
	s.resume(c, t)
}

// doRead applies the per-algorithm read protocol. Returns (cost,
// stalled).
func (s *sim) doRead(c int, tx *simTx, op Op, t int64) (int64, bool) {
	l := s.lock(op.Addr)
	cost := s.p.ReadBase
	switch s.algo {
	case OWB:
		cost += s.p.PerEntryVal * int64(len(tx.reads)) // incremental validation
		if liveTx(l.writer) && l.writer != tx {
			if l.writer.age > tx.age {
				s.doom(l.writer, t) // W2→R1
			} else if l.writer.exposed {
				l.writer.deps = append(l.writer.deps, tx) // forward
			}
		}
		for _, e := range tx.reads {
			if s.lock(e.addr).version != e.ver {
				s.doom(tx, t)
				return cost, false
			}
		}
	case OUL, OULSteal:
		cost += s.p.VisibleReg
		if liveTx(l.writer) && l.writer != tx && l.writer.age > tx.age {
			s.doom(l.writer, t) // W2→R1; forwarding otherwise
		}
		l.readers = append(l.readers, tx)
	case UndoLogVis, OrderedUndoLogVis, UndoLogInvis, OrderedUndoLogInvis:
		if liveTx(l.writer) && l.writer != tx {
			if s.algo.Ordered() && l.writer.age > tx.age {
				s.doom(l.writer, t)
			}
			// No forwarding: wait for the writer to finish its commit
			// or rollback (the key contrast with OUL; the real engines
			// spin until the victim's status is final so version bumps
			// land before the read records its version).
			s.stallOn(c, l.writer)
			return 0, true
		}
		if s.algo.visibleReaders() {
			cost += s.p.VisibleReg
			l.readers = append(l.readers, tx)
		}
	case TL2, OrderedTL2:
		if l.version > tx.snap {
			s.doom(tx, t) // stale snapshot
			return cost, false
		}
	case NOrec, OrderedNOrec:
		if s.gclock != tx.snap {
			cost += s.p.PerEntryVal * int64(len(tx.reads))
			for _, e := range tx.reads {
				if s.lock(e.addr).version != e.ver {
					s.doom(tx, t)
					return cost, false
				}
			}
			tx.snap = s.gclock
		}
	case STMLite:
		cost = s.p.ReadBase / 2 // signature add only
	}
	tx.reads = append(tx.reads, readEnt{addr: op.Addr, ver: l.version})
	return cost, false
}

// doWrite applies the per-algorithm write protocol.
func (s *sim) doWrite(c int, tx *simTx, op Op, t int64) (int64, bool) {
	l := s.lock(op.Addr)
	cost := s.p.WriteBase
	switch s.algo {
	case OUL, OULSteal, UndoLogVis, OrderedUndoLogVis, UndoLogInvis, OrderedUndoLogInvis:
		if liveTx(l.writer) && l.writer != tx {
			w := l.writer
			ordered := s.algo.Ordered()
			switch {
			case ordered && w.age > tx.age && (s.algo == OUL || s.algo == OULSteal):
				s.doom(w, t) // W2→W1: cooperative writers take over at once
			case ordered && w.age > tx.age:
				// Blocked undo logs doom the higher-age holder and wait
				// out its rollback.
				s.doom(w, t)
				s.stallOn(c, w)
				return 0, true
			case ordered && s.algo == OULSteal:
				// W1→W2 lock steal: no abort.
			case ordered && s.algo == OUL:
				s.doom(tx, t) // W1→W2
				return cost, false
			case ordered: // blocked undo logs favor the lower age
				s.stallOn(c, w)
				return 0, true
			default: // unordered undo logs: bounded wait then self-abort
				s.doom(tx, t)
				return cost, false
			}
		}
		cost += s.p.LockEntry
		l.writer = tx
		// Abort conflicting speculative readers (R2→W1).
		if s.algo.visibleReaders() {
			for _, rd := range l.readers {
				if liveTx(rd) && rd != tx && (!s.algo.Ordered() || rd.age > tx.age) {
					s.doom(rd, t)
				}
			}
		}
	default:
		// Write-back engines just buffer.
	}
	tx.writes = append(tx.writes, op.Addr)
	return cost, false
}

// finish handles a transaction completing its trace on core c.
func (s *sim) finish(c int, t int64) {
	switch {
	case s.algo.cooperative():
		s.finishCooperative(c, t)
	case s.algo == STMLite:
		s.finishLite(c, t)
	case s.algo.blocked():
		s.finishBlocked(c, t)
	default:
		s.finishUnordered(c, t)
	}
}
