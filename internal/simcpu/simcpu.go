// Package simcpu is a deterministic discrete-event simulator of a
// P-core machine executing ordered-STM workloads. It exists because
// this reproduction's evaluation host has a single hardware thread:
// real wall-clock runs cannot exhibit parallel speedup, so the
// thread-scaling *shape* of the paper's figures (who wins, by how
// much, where curves peak) is regenerated in virtual time instead
// (see DESIGN.md §1).
//
// The simulator executes the same micro-benchmark transaction traces
// as the real engines (generated from internal/micro's parameters)
// under per-algorithm protocol models:
//
//   - cooperative engines (OWB, OUL, OUL-Steal) expose transactions
//     and move on; commits drain through a serialized validator
//     service in age order, and conflicts are resolved by age with
//     forwarding, visible-reader kills, cascading aborts and (for
//     OUL-Steal) cheaper write-write conflicts but costlier aborts;
//   - blocked engines (Ordered TL2/NOrec/UndoLog) stall their worker
//     core from transaction completion until the commit turn — the
//     utilization loss the paper's cooperative model removes;
//   - STMLite routes commit requests through a TCM server with
//     Bloom-signature false conflicts that grow with signature fill;
//   - unordered baselines commit without turn stalls;
//   - Sequential runs the bare trace on one core with no overheads.
//
// Conflicts are tracked exactly (per-address versions, live writers,
// visible readers); only costs are abstract. Default cost parameters
// reflect the overhead ratios of the paper's C implementation
// (instrumented accesses a small factor over raw ones). The Go
// engines in this repository pay relatively more for visible-reader
// registration (see EXPERIMENTS.md's calibration table); Params lets
// callers re-run the simulation under those ratios instead.
package simcpu

import "fmt"

// Algo names a simulated algorithm.
type Algo int

// The simulated competitors (the paper's Figure 2–4 set).
const (
	Sequential Algo = iota
	OWB
	OUL
	OULSteal
	TL2
	OrderedTL2
	NOrec
	OrderedNOrec
	UndoLogVis
	OrderedUndoLogVis
	UndoLogInvis
	OrderedUndoLogInvis
	STMLite
	numAlgos
)

// Algos lists every simulated algorithm.
func Algos() []Algo {
	out := make([]Algo, 0, numAlgos)
	for a := Sequential; a < numAlgos; a++ {
		out = append(out, a)
	}
	return out
}

// String names the algorithm as in the paper.
func (a Algo) String() string {
	switch a {
	case Sequential:
		return "Sequential"
	case OWB:
		return "OWB"
	case OUL:
		return "OUL"
	case OULSteal:
		return "OUL-Steal"
	case TL2:
		return "TL2"
	case OrderedTL2:
		return "Ordered-TL2"
	case NOrec:
		return "NOrec"
	case OrderedNOrec:
		return "Ordered-NOrec"
	case UndoLogVis:
		return "UndoLog-vis"
	case OrderedUndoLogVis:
		return "Ordered-UndoLog-vis"
	case UndoLogInvis:
		return "UndoLog-invis"
	case OrderedUndoLogInvis:
		return "Ordered-UndoLog-invis"
	case STMLite:
		return "STMLite"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Ordered reports whether the algorithm enforces the commit order.
func (a Algo) Ordered() bool {
	switch a {
	case TL2, NOrec, UndoLogVis, UndoLogInvis:
		return false
	default:
		return true
	}
}

func (a Algo) cooperative() bool { return a == OWB || a == OUL || a == OULSteal }

func (a Algo) writeThrough() bool {
	switch a {
	case OUL, OULSteal, UndoLogVis, OrderedUndoLogVis, UndoLogInvis, OrderedUndoLogInvis:
		return true
	default:
		return false
	}
}

func (a Algo) visibleReaders() bool {
	switch a {
	case OUL, OULSteal, UndoLogVis, OrderedUndoLogVis:
		return true
	default:
		return false
	}
}

// blocked reports whether the worker stalls until its commit turn.
func (a Algo) blocked() bool {
	switch a {
	case OrderedTL2, OrderedNOrec, OrderedUndoLogVis, OrderedUndoLogInvis:
		return true
	default:
		return false
	}
}

// OpKind is a trace operation kind.
type OpKind uint8

// Trace operations.
const (
	OpRead OpKind = iota
	OpWrite
)

// Op is one transactional access plus the local computation that
// precedes it.
type Op struct {
	Kind  OpKind
	Addr  uint32
	Local int64 // local computation cycles before the access
}

// Trace is one transaction's operation list.
type Trace struct {
	Ops []Op
}

// Params is the virtual cost model, in abstract cycles. Defaults
// (DefaultParams) reflect the relative single-thread overheads
// measured on the real engines.
type Params struct {
	ReadBase     int64 // instrumented read
	WriteBase    int64 // instrumented write (buffer or write-through)
	VisibleReg   int64 // visible-reader slot registration
	PerEntryVal  int64 // validation cost per read-set entry
	LockEntry    int64 // lock acquire/release per write-set entry
	CommitBase   int64 // fixed commit latency
	AbortBase    int64 // fixed abort/rollback latency
	TCMService   int64 // STMLite TCM service time per transaction
	SigBits      int   // STMLite signature size in bits
	Window       int   // cooperative run-ahead window (ages)
	RetryBackoff int64 // restart delay after an abort
}

// DefaultParams returns the paper-ratio cost model (see the package
// comment).
func DefaultParams() Params {
	return Params{
		ReadBase:     6,
		WriteBase:    6,
		VisibleReg:   5,
		PerEntryVal:  1,
		LockEntry:    2,
		CommitBase:   15,
		AbortBase:    40,
		TCMService:   25,
		SigBits:      64,
		Window:       256,
		RetryBackoff: 30,
	}
}

// Result summarizes one simulation.
type Result struct {
	Algo        Algo
	Cores       int
	Commits     int64
	Aborts      int64
	VirtualTime int64
}

// ThroughputPerKCycle returns commits per thousand virtual cycles —
// the simulator's throughput unit (higher is better).
func (r Result) ThroughputPerKCycle() float64 {
	if r.VirtualTime == 0 {
		return 0
	}
	return float64(r.Commits) * 1000 / float64(r.VirtualTime)
}

// AbortRatio returns aborts per commit.
func (r Result) AbortRatio() float64 {
	if r.Commits == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(r.Commits)
}
