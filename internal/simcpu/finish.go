package simcpu

import "math"

// finishCooperative exposes a completed OWB/OUL/OUL-Steal transaction
// and frees the core; ordered commits drain through the validator
// service.
func (s *sim) finishCooperative(c int, t int64) {
	cs := &s.cores[c]
	tx := cs.tx
	var cost int64
	if s.algo == OWB {
		// Expose: validate, lock the write-set, publish.
		cost = s.p.PerEntryVal*int64(len(tx.reads)) + s.p.LockEntry*int64(len(tx.writes))
		for _, a := range tx.writes {
			l := s.lock(a)
			if liveTx(l.writer) && l.writer != tx {
				if tx.age < l.writer.age {
					s.doom(l.writer, t) // W2→W1
				} else {
					s.doom(tx, t) // W1→W2
					s.restart(c, t+cost)
					return
				}
			}
		}
		for _, e := range tx.reads {
			l := s.lock(e.addr)
			if l.version != e.ver && l.writer != tx {
				s.doom(tx, t)
				s.restart(c, t+cost)
				return
			}
		}
		for _, a := range tx.writes {
			l := s.lock(a)
			l.version++
			l.writer = tx
		}
	} else {
		cost = 2 // OUL try-commit: one status transition
	}
	if tx.doomed {
		s.restart(c, t+cost)
		return
	}
	tx.exposed = true
	tx.expTime = t + cost
	tx.core = -1
	s.exposedAt[tx.age] = tx
	cs.tx = nil
	cs.state = coreIdle
	s.resume(c, t+cost)
	s.runValidator(t + cost)
}

// runValidator commits exposed transactions in age order through the
// serialized validator service (the flat-combining role of
// Algorithm 5).
func (s *sim) runValidator(t int64) {
	for {
		tx, ok := s.exposedAt[s.committed]
		if !ok {
			return
		}
		start := max64(s.valFree, max64(tx.expTime, t))
		var cost int64
		if s.algo == OWB {
			cost = s.p.CommitBase + s.p.PerEntryVal*int64(len(tx.reads)) + s.p.LockEntry*int64(len(tx.writes))
		} else {
			cost = s.p.CommitBase
		}
		tc := start + cost
		invalid := tx.doomed
		if !invalid && s.algo == OWB {
			for _, e := range tx.reads {
				l := s.lock(e.addr)
				if l.version != e.ver && l.writer != tx {
					invalid = true
					break
				}
			}
		}
		delete(s.exposedAt, tx.age)
		if invalid {
			// Reachable re-execution: the next free core picks it up
			// with priority; the commit frontier stalls meanwhile.
			s.doom(tx, tc)
			s.finalizeAbort(tx, tc)
			s.valFree = tc
			s.retryLow = append(s.retryLow, tx)
			s.wakeDispatchers(tc)
			return
		}
		tx.final = true
		s.releaseLocks(tx)
		s.wakeLockWaiters(tx, tc)
		s.committed++
		s.commits++
		s.valFree = tc
		if tc > s.endTime {
			s.endTime = tc
		}
		s.wakeDispatchers(tc)
	}
}

// finishBlocked handles ordered TL2/NOrec/UndoLog: the worker stalls
// until its commit turn.
func (s *sim) finishBlocked(c int, t int64) {
	cs := &s.cores[c]
	tx := cs.tx
	if s.committed != tx.age {
		cs.state = coreStalled
		s.turnWait[tx.age] = c
		return
	}
	delete(s.turnWait, tx.age)
	cost := s.p.CommitBase + s.p.LockEntry*int64(len(tx.writes))
	invalid := tx.doomed
	if !invalid && (s.algo == OrderedTL2 || s.algo == OrderedNOrec || s.algo == OrderedUndoLogInvis) {
		cost += s.p.PerEntryVal * int64(len(tx.reads))
		for _, e := range tx.reads {
			l := s.lock(e.addr)
			if l.version != e.ver && l.writer != tx {
				invalid = true
				break
			}
		}
	}
	if invalid {
		// Sweep interfering writers off the read-set before
		// re-executing at the turn (their rollbacks bump versions
		// *before* the fresh reads, so validation converges).
		for _, e := range tx.reads {
			l := s.lock(e.addr)
			if liveTx(l.writer) && l.writer != tx {
				s.doom(l.writer, t+cost)
			}
		}
		s.restart(c, t+cost)
		return
	}
	s.commitEffects(tx, t+cost)
	cs.tx = nil
	cs.state = coreIdle
	s.resume(c, t+cost)
	if w, ok := s.turnWait[s.committed]; ok {
		s.wake(w, t+cost)
	}
}

// finishUnordered handles plain TL2/NOrec/UndoLog commits.
func (s *sim) finishUnordered(c int, t int64) {
	cs := &s.cores[c]
	tx := cs.tx
	cost := s.p.CommitBase + s.p.LockEntry*int64(len(tx.writes))
	start := t
	if s.algo == NOrec && len(tx.writes) > 0 {
		// NOrec serializes writers through the global sequence lock.
		start = max64(t, s.valFree)
	}
	invalid := tx.doomed
	if !invalid && (s.algo == TL2 || s.algo == NOrec || s.algo == UndoLogInvis) {
		cost += s.p.PerEntryVal * int64(len(tx.reads))
		for _, e := range tx.reads {
			l := s.lock(e.addr)
			if l.version != e.ver && l.writer != tx {
				invalid = true
				break
			}
		}
	}
	tc := start + cost
	if invalid {
		s.restart(c, tc)
		return
	}
	if s.algo == NOrec && len(tx.writes) > 0 {
		s.valFree = tc
	}
	s.commitEffects(tx, tc)
	cs.tx = nil
	cs.state = coreIdle
	s.resume(c, tc)
}

// commitEffects publishes a committed transaction's writes in virtual
// metadata and advances the order.
func (s *sim) commitEffects(tx *simTx, t int64) {
	s.gclock++
	for _, a := range tx.writes {
		l := s.lock(a)
		l.version = s.gclock
		if l.writer == tx {
			l.writer = nil
		}
	}
	tx.final = true
	s.releaseLocks(tx)
	s.wakeLockWaiters(tx, t)
	if s.algo.Ordered() {
		s.committed++
	}
	s.commits++
	if t > s.endTime {
		s.endTime = t
	}
	s.wakeDispatchers(t)
}

// finishLite submits the transaction to the TCM and stalls the worker
// until the grant (the paper: "worker threads poll and stall").
func (s *sim) finishLite(c int, t int64) {
	cs := &s.cores[c]
	tx := cs.tx
	tx.expTime = t
	s.tcmQueue[tx.age] = tx
	cs.state = coreStalled
	s.runTCM(t)
}

// sigFalseConflictProb estimates the probability that two Bloom
// signatures of r reads and w writes intersect spuriously.
func (s *sim) sigFalseConflictProb(r, w int) float64 {
	bits := float64(s.p.SigBits)
	if bits <= 0 {
		bits = 64
	}
	fw := 1 - math.Pow(1-1/bits, float64(2*w)) // fraction of set bits in the write sig
	return 1 - math.Pow(1-fw, float64(2*r))
}

// runTCM serves submissions in age order.
func (s *sim) runTCM(t int64) {
	for {
		tx, ok := s.tcmQueue[s.committed]
		if !ok {
			return
		}
		delete(s.tcmQueue, tx.age)
		tg := max64(s.tcmFree, max64(tx.expTime, t)) + s.p.TCMService
		s.tcmFree = tg
		conflict := false
		for _, e := range tx.reads {
			if s.lock(e.addr).version != e.ver {
				conflict = true // true conflict
				break
			}
		}
		if !conflict {
			// False conflicts: one signature test per commit that
			// happened during this transaction's execution window.
			window := s.gclock - tx.snap
			p := s.sigFalseConflictProb(len(tx.reads), len(tx.writes))
			for i := int64(0); i < window; i++ {
				if s.r.Float64() < p {
					conflict = true
					break
				}
			}
		}
		c := tx.core
		if conflict {
			tx.doomed = true
			s.finalizeAbort(tx, tg)
			fresh := &simTx{age: tx.age, core: c, snap: s.gclock}
			s.cores[c].tx = fresh
			s.cores[c].opIdx = 0
			s.cores[c].state = coreRunning
			s.resume(c, tg+s.p.RetryBackoff)
			return // frontier stalls until resubmission
		}
		// Grant: worker performs the write-back.
		wb := s.p.LockEntry * int64(len(tx.writes))
		s.commitEffects(tx, tg+wb)
		s.cores[c].tx = nil
		s.cores[c].state = coreIdle
		s.resume(c, tg+wb)
	}
}

// wakeDispatchers releases window-stalled and halted cores so they
// can pick up newly unblocked work (including priority retries).
func (s *sim) wakeDispatchers(t int64) {
	for _, c := range s.winWait {
		s.cores[c].state = coreIdle
		s.wake(c, t)
	}
	s.winWait = s.winWait[:0]
	if len(s.retryLow) > 0 {
		for c := range s.cores {
			if s.cores[c].halted {
				s.cores[c].halted = false
				s.wake(c, t)
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
