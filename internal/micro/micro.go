// Package micro implements the RSTM-style micro-benchmarks of the
// paper's evaluation (§8, Figures 2–5): DisjointBench, ReadNWrite1,
// ReadWriteN and MCASBench, each in three transaction lengths —
// short (10–20 accesses), long (30–60 accesses) and heavy (short's
// access count with 100 ALU operations of local computation between
// accesses).
//
// Transaction programs are deterministic functions of (seed, age), so
// re-executed attempts replay identically and ordered runs are
// byte-comparable with the sequential execution.
package micro

import (
	"fmt"
	"runtime"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Bench selects the access pattern.
type Bench int

const (
	// Disjoint gives every transaction a private address range: zero
	// true conflicts, isolating instrumentation overhead.
	Disjoint Bench = iota
	// RNW1 reads N random locations and writes one (tiny write-set,
	// few aborts).
	RNW1
	// RWN reads N random locations, then writes N other locations
	// (large write-set: stresses undo logs and commit-time locking).
	RWN
	// MCAS reads and writes N consecutive locations (multi-word
	// compare-and-swap shape: large write-set, lower abort probability
	// because each read/write pair touches one location).
	MCAS
	numBenches
)

// Benches lists all access patterns.
func Benches() []Bench { return []Bench{Disjoint, RNW1, RWN, MCAS} }

// String names the pattern as in the paper.
func (b Bench) String() string {
	switch b {
	case Disjoint:
		return "Disjoint"
	case RNW1:
		return "RNW1"
	case RWN:
		return "RWN"
	case MCAS:
		return "MCAS"
	default:
		return fmt.Sprintf("Bench(%d)", int(b))
	}
}

// ParseBench resolves a pattern name (as produced by String).
func ParseBench(s string) (Bench, error) {
	for b := Disjoint; b < numBenches; b++ {
		if b.String() == s {
			return b, nil
		}
	}
	return 0, fmt.Errorf("micro: unknown bench %q", s)
}

// Length selects the transaction length class.
type Length int

const (
	// Short transactions perform 10–20 accesses.
	Short Length = iota
	// Long transactions perform 30–60 accesses.
	Long
	// Heavy transactions perform 10–20 accesses with 100 ALU ops of
	// local computation between them.
	Heavy
	numLengths
)

// Lengths lists all length classes.
func Lengths() []Length { return []Length{Short, Long, Heavy} }

// String names the class as in the paper.
func (l Length) String() string {
	switch l {
	case Short:
		return "Short"
	case Long:
		return "Long"
	case Heavy:
		return "Heavy"
	default:
		return fmt.Sprintf("Length(%d)", int(l))
	}
}

// ParseLength resolves a length-class name.
func ParseLength(s string) (Length, error) {
	for l := Short; l < numLengths; l++ {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("micro: unknown length %q", s)
}

// Config parameterizes one workload instance.
type Config struct {
	// Bench is the access pattern.
	Bench Bench
	// Length is the transaction length class.
	Length Length
	// Txns is the number of transactions (the paper runs 500k;
	// defaults to 500000).
	Txns int
	// PoolSize is the shared-word pool size (default 1<<20).
	PoolSize int
	// Seed makes the workload deterministic (default 1).
	Seed uint64
	// HeavyOps is the local ALU work per access for Heavy (default
	// 100, the paper's setting).
	HeavyOps int
	// YieldEvery inserts a scheduler yield every YieldEvery accesses
	// (0 = never). On multi-core hosts transactions interleave
	// naturally; on a single-hardware-thread host explicit yield
	// points are the only way speculative executions overlap, so tests
	// and single-core benchmarks set this to surface real conflicts.
	YieldEvery int
}

func (c Config) withDefaults() Config {
	if c.Txns == 0 {
		c.Txns = 500000
	}
	if c.PoolSize == 0 {
		c.PoolSize = 1 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HeavyOps == 0 {
		c.HeavyOps = 100
	}
	return c
}

// Workload is an instantiated micro-benchmark over a shared word pool.
type Workload struct {
	cfg  Config
	pool []stm.Var
}

// New allocates the pool and returns the workload.
func New(cfg Config) *Workload {
	cfg = cfg.withDefaults()
	return &Workload{cfg: cfg, pool: stm.NewVars(cfg.PoolSize)}
}

// Config returns the effective configuration.
func (w *Workload) Config() Config { return w.cfg }

// Txns returns the number of transactions to run.
func (w *Workload) Txns() int { return w.cfg.Txns }

// Reset zeroes the pool (between runs of the same workload).
func (w *Workload) Reset() {
	for i := range w.pool {
		w.pool[i].Store(0)
	}
}

// Checksum folds the quiescent pool into one value (determinism
// oracle: ordered runs must produce identical checksums).
func (w *Workload) Checksum() uint64 {
	var h uint64
	for i := range w.pool {
		h = rng.Mix64(h ^ w.pool[i].Load())
	}
	return h
}

// accesses returns the number of accesses for the configured length
// class, using the paper's ranges.
func (w *Workload) accesses(r *rng.Rand) int {
	switch w.cfg.Length {
	case Long:
		return r.Range(30, 61)
	default: // Short and Heavy share the 10–20 range
		return r.Range(10, 21)
	}
}

// localWork burns the heavy class's per-access ALU budget; the result
// feeds back into written values so it cannot be optimized away.
func localWork(acc uint64, ops int) uint64 {
	for i := 0; i < ops; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}

// Body returns the transaction body implementing the configured
// pattern.
func (w *Workload) Body() stm.Body {
	cfg := w.cfg
	pool := w.pool
	mask := uint64(len(pool) - 1) // PoolSize is a power of two after defaults? enforce below
	if len(pool)&(len(pool)-1) != 0 {
		mask = 0
	}
	pick := func(r *rng.Rand) *stm.Var {
		if mask != 0 {
			return &pool[r.Uint64()&mask]
		}
		return &pool[r.Intn(len(pool))]
	}
	heavy := func(acc uint64) uint64 {
		if cfg.Length == Heavy {
			return localWork(acc, cfg.HeavyOps)
		}
		return acc
	}
	// maybeYield inserts a preemption point after the k-th access of a
	// transaction (k is transaction-local: bodies are shared across
	// workers and must not carry mutable closure state).
	maybeYield := func(k int) {
		if cfg.YieldEvery > 0 && (k+1)%cfg.YieldEvery == 0 {
			runtime.Gosched()
		}
	}
	switch cfg.Bench {
	case Disjoint:
		// A private stripe of the pool per transaction: concurrent
		// transactions (which are within the executor's window of each
		// other) never overlap.
		const stripe = 64
		return func(tx stm.Tx, age int) {
			r := rng.New(cfg.Seed ^ rng.Mix64(uint64(age)))
			n := w.accesses(r)
			base := (uint64(age) * stripe) % uint64(len(pool)-stripe)
			acc := uint64(age)
			for k := 0; k < n; k++ {
				v := &pool[base+uint64(k%stripe)]
				if k%2 == 0 {
					acc += tx.Read(v)
					acc = heavy(acc)
				} else {
					tx.Write(v, heavy(acc^uint64(k)))
				}
				maybeYield(k)
			}
		}
	case RNW1:
		return func(tx stm.Tx, age int) {
			r := rng.New(cfg.Seed ^ rng.Mix64(uint64(age)))
			n := w.accesses(r)
			acc := uint64(age)
			for k := 0; k < n-1; k++ {
				acc += tx.Read(pick(r))
				acc = heavy(acc)
				maybeYield(k)
			}
			tx.Write(pick(r), acc)
		}
	case RWN:
		return func(tx stm.Tx, age int) {
			r := rng.New(cfg.Seed ^ rng.Mix64(uint64(age)))
			n := w.accesses(r) / 2
			if n == 0 {
				n = 1
			}
			acc := uint64(age)
			for k := 0; k < n; k++ {
				acc += tx.Read(pick(r))
				acc = heavy(acc)
				maybeYield(k)
			}
			for k := 0; k < n; k++ {
				tx.Write(pick(r), heavy(acc^uint64(k)))
				maybeYield(n + k)
			}
		}
	case MCAS:
		return func(tx stm.Tx, age int) {
			r := rng.New(cfg.Seed ^ rng.Mix64(uint64(age)))
			n := w.accesses(r) / 2
			if n == 0 {
				n = 1
			}
			base := r.Intn(len(pool) - n)
			acc := uint64(age)
			for k := 0; k < n; k++ {
				v := &pool[base+k]
				x := tx.Read(v)
				acc = heavy(acc + x)
				tx.Write(v, x+1) // the multi-word CAS: swap each word
				maybeYield(k)
			}
			_ = acc
		}
	default:
		panic("micro: unknown bench")
	}
}
