package micro

import (
	"testing"

	"github.com/orderedstm/ostm/stm"
)

func run(t *testing.T, w *Workload, alg stm.Algorithm, workers int) stm.Result {
	t.Helper()
	ex, err := stm.NewExecutor(stm.Config{Algorithm: alg, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.Run(w.Txns(), w.Body())
	if err != nil {
		t.Fatalf("%v: %v", alg, err)
	}
	return res
}

// TestDeterminismAcrossOrderedEngines: every ordered engine must leave
// the pool with the same checksum as the sequential run, for every
// bench × length combination.
func TestDeterminismAcrossOrderedEngines(t *testing.T) {
	for _, b := range Benches() {
		for _, l := range []Length{Short, Long} {
			w := New(Config{Bench: b, Length: l, Txns: 200, PoolSize: 1 << 10, Seed: 3})
			w.Reset()
			run(t, w, stm.Sequential, 1)
			want := w.Checksum()
			for _, alg := range stm.OrderedAlgorithms() {
				w.Reset()
				run(t, w, alg, 4)
				if got := w.Checksum(); got != want {
					t.Errorf("%v/%v under %v: checksum %#x, want %#x", b, l, alg, got, want)
				}
			}
		}
	}
}

// TestHeavyClassDoesMoreWork sanity-checks the heavy class plumbs the
// ALU budget through (same accesses as short, deterministic).
func TestHeavyClassDoesMoreWork(t *testing.T) {
	w := New(Config{Bench: RNW1, Length: Heavy, Txns: 50, PoolSize: 256, Seed: 5})
	w.Reset()
	run(t, w, stm.Sequential, 1)
	first := w.Checksum()
	w.Reset()
	run(t, w, stm.OUL, 4)
	if w.Checksum() != first {
		t.Fatal("heavy class not deterministic across engines")
	}
}

// TestDisjointHasNoTrueConflicts: under OUL, the disjoint bench must
// produce (nearly) zero aborts — only lock-table aliasing may cause a
// handful.
func TestDisjointHasNoTrueConflicts(t *testing.T) {
	w := New(Config{Bench: Disjoint, Length: Short, Txns: 500, PoolSize: 1 << 16, Seed: 9})
	w.Reset()
	res := run(t, w, stm.OUL, 8)
	if ratio := res.Stats.AbortRatio(); ratio > 0.05 {
		t.Fatalf("disjoint abort ratio %.3f too high (stats %v)", ratio, res.Stats)
	}
}

// TestContendedBenchAborts: RWN over a tiny pool must produce aborts
// under optimistic engines (sanity for the abort-measurement plumbing).
func TestContendedBenchAborts(t *testing.T) {
	w := New(Config{Bench: RWN, Length: Short, Txns: 400, PoolSize: 64, Seed: 11, YieldEvery: 2})
	w.Reset()
	res := run(t, w, stm.OUL, 8)
	if res.Stats.TotalAborts() == 0 {
		t.Fatal("expected aborts on a 64-word pool with write-heavy transactions")
	}
}

func TestParseHelpers(t *testing.T) {
	for _, b := range Benches() {
		got, err := ParseBench(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBench(%v) = %v, %v", b, got, err)
		}
	}
	for _, l := range Lengths() {
		got, err := ParseLength(l.String())
		if err != nil || got != l {
			t.Fatalf("ParseLength(%v) = %v, %v", l, got, err)
		}
	}
	if _, err := ParseBench("nope"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseLength("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestConfigDefaults(t *testing.T) {
	w := New(Config{})
	cfg := w.Config()
	if cfg.Txns != 500000 || cfg.PoolSize != 1<<20 || cfg.Seed != 1 || cfg.HeavyOps != 100 {
		t.Fatalf("defaults = %+v", cfg)
	}
}
