package txds

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// seqApply runs f as a single transaction on the sequential engine.
func seqApply(t *testing.T, f func(tx stm.Tx)) {
	t.Helper()
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(1, func(tx stm.Tx, age int) { f(tx) }); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapBasic(t *testing.T) {
	m := NewHashMap(64)
	seqApply(t, func(tx stm.Tx) {
		if _, ok := m.Get(tx, 5); ok {
			t.Error("found missing key")
		}
		if !m.Put(tx, 5, 50) {
			t.Error("put failed")
		}
		if v, ok := m.Get(tx, 5); !ok || v != 50 {
			t.Errorf("get = %d,%v", v, ok)
		}
		if !m.Put(tx, 5, 51) {
			t.Error("overwrite failed")
		}
		if v, _ := m.Get(tx, 5); v != 51 {
			t.Errorf("overwrite lost: %d", v)
		}
		if !m.Delete(tx, 5) {
			t.Error("delete failed")
		}
		if m.Delete(tx, 5) {
			t.Error("double delete succeeded")
		}
		if _, ok := m.Get(tx, 5); ok {
			t.Error("deleted key still present")
		}
	})
}

func TestHashMapReservedKeysPanic(t *testing.T) {
	// Reserved keys panic inside the transaction; the executor surfaces
	// that as a *stm.Fault.
	m := NewHashMap(8)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []uint64{EmptyKey, TombKey} {
		_, err := ex.Run(1, func(tx stm.Tx, age int) { m.Get(tx, key) })
		var f *stm.Fault
		if !errors.As(err, &f) {
			t.Errorf("key %#x: expected fault, got %v", key, err)
		}
	}
}

// TestHashMapOracle replays a random op sequence against Go's map.
func TestHashMapOracle(t *testing.T) {
	f := func(seed uint64) bool {
		m := NewHashMap(256)
		oracle := make(map[uint64]uint64)
		r := rng.New(seed)
		good := true
		seqApply(t, func(tx stm.Tx) {
			for op := 0; op < 500; op++ {
				key := uint64(r.Intn(100) + 1)
				switch r.Intn(3) {
				case 0:
					val := r.Uint64()
					m.Put(tx, key, val)
					oracle[key] = val
				case 1:
					got, ok := m.Get(tx, key)
					want, wok := oracle[key]
					if ok != wok || (ok && got != want) {
						good = false
					}
				case 2:
					if m.Delete(tx, key) != (func() bool { _, ok := oracle[key]; return ok })() {
						good = false
					}
					delete(oracle, key)
				}
			}
		})
		if !good {
			return false
		}
		snap := m.Snapshot()
		if len(snap) != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if snap[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHashMapFull(t *testing.T) {
	m := NewHashMap(8) // rounds to 8 slots
	seqApply(t, func(tx stm.Tx) {
		for k := uint64(1); k <= 8; k++ {
			if !m.Put(tx, k, k) {
				t.Fatalf("put %d failed before capacity", k)
			}
		}
		if m.Put(tx, 100, 1) {
			t.Error("put into full map succeeded")
		}
		if _, _, ok := m.PutIfAbsent(tx, 101, 1); ok {
			t.Error("PutIfAbsent into full map succeeded")
		}
		// Existing keys still updatable.
		if !m.Put(tx, 3, 33) {
			t.Error("overwrite in full map failed")
		}
	})
}

func TestHashMapPutIfAbsent(t *testing.T) {
	m := NewHashMap(32)
	seqApply(t, func(tx stm.Tx) {
		v, inserted, ok := m.PutIfAbsent(tx, 7, 70)
		if !ok || !inserted || v != 70 {
			t.Errorf("first PutIfAbsent = %d,%v,%v", v, inserted, ok)
		}
		v, inserted, ok = m.PutIfAbsent(tx, 7, 71)
		if !ok || inserted || v != 70 {
			t.Errorf("second PutIfAbsent = %d,%v,%v", v, inserted, ok)
		}
	})
}

func TestHashMapTombstoneReuse(t *testing.T) {
	m := NewHashMap(8)
	seqApply(t, func(tx stm.Tx) {
		for k := uint64(1); k <= 8; k++ {
			m.Put(tx, k, k)
		}
		m.Delete(tx, 4)
		if !m.Put(tx, 200, 9) {
			t.Error("tombstone slot not reused")
		}
		if v, ok := m.Get(tx, 200); !ok || v != 9 {
			t.Errorf("get after reuse = %d,%v", v, ok)
		}
	})
}

func TestSet(t *testing.T) {
	s := NewSet(32)
	seqApply(t, func(tx stm.Tx) {
		added, ok := s.Add(tx, 9)
		if !added || !ok {
			t.Error("first add failed")
		}
		added, ok = s.Add(tx, 9)
		if added || !ok {
			t.Error("duplicate add reported added")
		}
		if !s.Contains(tx, 9) || s.Contains(tx, 10) {
			t.Error("membership wrong")
		}
		if !s.Remove(tx, 9) || s.Remove(tx, 9) {
			t.Error("remove semantics wrong")
		}
	})
	if len(s.Snapshot()) != 0 {
		t.Error("snapshot not empty")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(16)
	seqApply(t, func(tx stm.Tx) {
		if _, ok := q.Dequeue(tx); ok {
			t.Error("dequeue from empty succeeded")
		}
		for i := uint64(1); i <= 16; i++ {
			if !q.Enqueue(tx, i) {
				t.Fatalf("enqueue %d failed", i)
			}
		}
		if q.Enqueue(tx, 99) {
			t.Error("enqueue into full queue succeeded")
		}
		if q.Len(tx) != 16 {
			t.Errorf("len = %d", q.Len(tx))
		}
		for i := uint64(1); i <= 16; i++ {
			v, ok := q.Dequeue(tx)
			if !ok || v != i {
				t.Fatalf("dequeue = %d,%v want %d", v, ok, i)
			}
		}
	})
}

func TestQueueWraparound(t *testing.T) {
	q := NewQueue(8)
	seqApply(t, func(tx stm.Tx) {
		for round := 0; round < 5; round++ {
			for i := uint64(0); i < 6; i++ {
				q.Enqueue(tx, uint64(round)*10+i)
			}
			for i := uint64(0); i < 6; i++ {
				v, ok := q.Dequeue(tx)
				if !ok || v != uint64(round)*10+i {
					t.Fatalf("round %d: dequeue = %d,%v", round, v, ok)
				}
			}
		}
	})
}

func TestListSortedOps(t *testing.T) {
	l := NewList(64)
	seqApply(t, func(tx stm.Tx) {
		for _, k := range []uint64{30, 10, 20, 50, 40} {
			ins, ok := l.Insert(tx, k, k*10)
			if !ins || !ok {
				t.Fatalf("insert %d = %v,%v", k, ins, ok)
			}
		}
		ins, ok := l.Insert(tx, 30, 333)
		if ins || !ok {
			t.Error("duplicate insert reported new")
		}
		if v, found := l.Get(tx, 30); !found || v != 333 {
			t.Errorf("get 30 = %d,%v", v, found)
		}
		if _, found := l.Get(tx, 35); found {
			t.Error("found absent key")
		}
		if !l.Remove(tx, 10) || l.Remove(tx, 10) {
			t.Error("remove semantics wrong")
		}
	})
	snap := l.Snapshot()
	want := []uint64{20, 30, 40, 50}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %v", snap)
	}
	for i, kv := range snap {
		if kv[0] != want[i] {
			t.Fatalf("order wrong: %v", snap)
		}
	}
}

func TestListPoolExhaustionAndReuse(t *testing.T) {
	l := NewList(4)
	seqApply(t, func(tx stm.Tx) {
		for k := uint64(1); k <= 4; k++ {
			if _, ok := l.Insert(tx, k, k); !ok {
				t.Fatalf("insert %d failed early", k)
			}
		}
		if _, ok := l.Insert(tx, 5, 5); ok {
			t.Error("insert past pool capacity succeeded")
		}
		l.Remove(tx, 2)
		if ins, ok := l.Insert(tx, 6, 6); !ins || !ok {
			t.Error("freed node not reusable")
		}
	})
}

// TestListOracle replays random sorted-set ops against Go's map.
func TestListOracle(t *testing.T) {
	f := func(seed uint64) bool {
		l := NewList(128)
		oracle := make(map[uint64]uint64)
		r := rng.New(seed)
		good := true
		seqApply(t, func(tx stm.Tx) {
			for op := 0; op < 300; op++ {
				key := uint64(r.Intn(60) + 1)
				switch r.Intn(3) {
				case 0:
					val := r.Uint64()
					l.Insert(tx, key, val)
					oracle[key] = val
				case 1:
					got, ok := l.Get(tx, key)
					want, wok := oracle[key]
					if ok != wok || (ok && got != want) {
						good = false
					}
				case 2:
					_, wok := oracle[key]
					if l.Remove(tx, key) != wok {
						good = false
					}
					delete(oracle, key)
				}
			}
		})
		if !good {
			return false
		}
		snap := l.Snapshot()
		if len(snap) != len(oracle) {
			return false
		}
		prev := uint64(0)
		for _, kv := range snap {
			if kv[0] <= prev || oracle[kv[0]] != kv[1] {
				return false
			}
			prev = kv[0]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestHashMapConcurrentOrdered inserts disjoint-by-age keys under OUL
// with several workers; the final contents must match exactly.
func TestHashMapConcurrentOrdered(t *testing.T) {
	const n = 300
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2} {
		m := NewHashMap(1024)
		ex, err := stm.NewExecutor(stm.Config{Algorithm: alg, Workers: 6})
		if err != nil {
			t.Fatal(err)
		}
		_, err = ex.Run(n, func(tx stm.Tx, age int) {
			key := uint64(age%50 + 1) // heavy key contention
			v, _ := m.Get(tx, key)
			m.Put(tx, key, v+1)
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		snap := m.Snapshot()
		var total uint64
		for _, v := range snap {
			total += v
		}
		if total != n {
			t.Fatalf("%v: total increments %d, want %d", alg, total, n)
		}
	}
}

// TestQueueConcurrentPipeline: each transaction enqueues its age; the
// queue must drain in exactly age order afterwards (ACO made the
// enqueues appear sequential).
func TestQueueConcurrentPipeline(t *testing.T) {
	const n = 200
	q := NewQueue(n)
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OUL, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(n, func(tx stm.Tx, age int) {
		if !q.Enqueue(tx, uint64(age)) {
			panic("queue full")
		}
	}); err != nil {
		t.Fatal(err)
	}
	seqApply(t, func(tx stm.Tx) {
		for i := uint64(0); i < n; i++ {
			v, ok := q.Dequeue(tx)
			if !ok || v != i {
				t.Fatalf("dequeue %d = %d,%v", i, v, ok)
			}
		}
	})
}
