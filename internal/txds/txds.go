// Package txds provides transactional data structures built purely on
// the public STM API (stm.Var words accessed through stm.Tx): an
// open-addressing hash map, a set, a bounded queue and a sorted linked
// list over a node pool. They are the substrate for the STAMP-style
// applications (genome's segment table, vacation's relation tables,
// intruder's flow map, ...), mirroring the transactional collections
// the original C benchmarks use.
//
// All structures have fixed capacity chosen at construction: resizing
// under speculative execution would serialize every transaction, and
// the STAMP originals pre-size their tables the same way.
//
// Concurrency follows from the STM: every slot access goes through
// tx.Read/tx.Write, so conflicts, aborts and ordering are handled by
// whatever engine runs the enclosing transaction.
package txds

import (
	"fmt"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Reserved hash-map key values.
const (
	// EmptyKey marks a never-used slot (user keys must differ).
	EmptyKey = uint64(0)
	// TombKey marks a deleted slot (user keys must differ).
	TombKey = ^uint64(0)
)

// HashMap is a fixed-capacity open-addressing (linear probing) hash
// map from uint64 keys to uint64 values. Keys 0 and ^0 are reserved.
type HashMap struct {
	mask uint64
	keys []stm.Var
	vals []stm.Var
}

// NewHashMap returns a map with capacity rounded up to a power of two
// (at least 8). The map degrades as it fills; size it generously, as
// the STAMP benchmarks do.
func NewHashMap(capacity int) *HashMap {
	size := 8
	for size < capacity {
		size <<= 1
	}
	return &HashMap{
		mask: uint64(size - 1),
		keys: stm.NewVars(size),
		vals: stm.NewVars(size),
	}
}

// Cap returns the slot count.
func (m *HashMap) Cap() int { return len(m.keys) }

func checkKey(key uint64) {
	if key == EmptyKey || key == TombKey {
		panic(fmt.Sprintf("txds: reserved key %#x", key))
	}
}

// Get returns the value stored under key.
func (m *HashMap) Get(tx stm.Tx, key uint64) (uint64, bool) {
	checkKey(key)
	h := rng.Mix64(key)
	for i := uint64(0); i <= m.mask; i++ {
		slot := (h + i) & m.mask
		k := tx.Read(&m.keys[slot])
		if k == key {
			return tx.Read(&m.vals[slot]), true
		}
		if k == EmptyKey {
			return 0, false
		}
	}
	return 0, false
}

// Put inserts or overwrites key. It returns false when the map is
// full.
func (m *HashMap) Put(tx stm.Tx, key, val uint64) bool {
	checkKey(key)
	h := rng.Mix64(key)
	free := -1
	for i := uint64(0); i <= m.mask; i++ {
		slot := (h + i) & m.mask
		k := tx.Read(&m.keys[slot])
		if k == key {
			tx.Write(&m.vals[slot], val)
			return true
		}
		if k == TombKey && free < 0 {
			free = int(slot)
			continue
		}
		if k == EmptyKey {
			if free < 0 {
				free = int(slot)
			}
			tx.Write(&m.keys[uint64(free)], key)
			tx.Write(&m.vals[uint64(free)], val)
			return true
		}
	}
	if free >= 0 {
		tx.Write(&m.keys[uint64(free)], key)
		tx.Write(&m.vals[uint64(free)], val)
		return true
	}
	return false
}

// PutIfAbsent inserts key only if missing; it returns the value now
// associated with key and whether this call inserted it. ok is false
// when the map is full.
func (m *HashMap) PutIfAbsent(tx stm.Tx, key, val uint64) (cur uint64, inserted, ok bool) {
	checkKey(key)
	h := rng.Mix64(key)
	free := -1
	for i := uint64(0); i <= m.mask; i++ {
		slot := (h + i) & m.mask
		k := tx.Read(&m.keys[slot])
		if k == key {
			return tx.Read(&m.vals[slot]), false, true
		}
		if k == TombKey && free < 0 {
			free = int(slot)
			continue
		}
		if k == EmptyKey {
			if free < 0 {
				free = int(slot)
			}
			tx.Write(&m.keys[uint64(free)], key)
			tx.Write(&m.vals[uint64(free)], val)
			return val, true, true
		}
	}
	if free >= 0 {
		tx.Write(&m.keys[uint64(free)], key)
		tx.Write(&m.vals[uint64(free)], val)
		return val, true, true
	}
	return 0, false, false
}

// Delete removes key, returning whether it was present.
func (m *HashMap) Delete(tx stm.Tx, key uint64) bool {
	checkKey(key)
	h := rng.Mix64(key)
	for i := uint64(0); i <= m.mask; i++ {
		slot := (h + i) & m.mask
		k := tx.Read(&m.keys[slot])
		if k == key {
			tx.Write(&m.keys[slot], TombKey)
			return true
		}
		if k == EmptyKey {
			return false
		}
	}
	return false
}

// Snapshot returns the quiescent contents (outside any run; for
// verification and tests).
func (m *HashMap) Snapshot() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for i := range m.keys {
		k := m.keys[i].Load()
		if k != EmptyKey && k != TombKey {
			out[k] = m.vals[i].Load()
		}
	}
	return out
}

// Set is a hash set over HashMap.
type Set struct{ m *HashMap }

// NewSet returns a set with the given capacity.
func NewSet(capacity int) *Set { return &Set{m: NewHashMap(capacity)} }

// Add inserts key; it reports whether the key was newly added. ok is
// false when the set is full.
func (s *Set) Add(tx stm.Tx, key uint64) (added, ok bool) {
	_, added, ok = s.m.PutIfAbsent(tx, key, 1)
	return added, ok
}

// Contains reports membership.
func (s *Set) Contains(tx stm.Tx, key uint64) bool {
	_, found := s.m.Get(tx, key)
	return found
}

// Remove deletes key, reporting whether it was present.
func (s *Set) Remove(tx stm.Tx, key uint64) bool { return s.m.Delete(tx, key) }

// Snapshot returns the quiescent members.
func (s *Set) Snapshot() map[uint64]bool {
	out := make(map[uint64]bool)
	for k := range s.m.Snapshot() {
		out[k] = true
	}
	return out
}

// Queue is a bounded FIFO ring buffer.
type Queue struct {
	head stm.Var // dequeue position
	tail stm.Var // enqueue position
	buf  []stm.Var
	mask uint64
}

// NewQueue returns a queue with capacity rounded up to a power of two.
func NewQueue(capacity int) *Queue {
	size := 8
	for size < capacity {
		size <<= 1
	}
	q := &Queue{buf: stm.NewVars(size), mask: uint64(size - 1)}
	return q
}

// Enqueue appends x; false when full.
func (q *Queue) Enqueue(tx stm.Tx, x uint64) bool {
	h := tx.Read(&q.head)
	t := tx.Read(&q.tail)
	if t-h > q.mask {
		return false
	}
	tx.Write(&q.buf[t&q.mask], x)
	tx.Write(&q.tail, t+1)
	return true
}

// Dequeue removes the oldest element; false when empty.
func (q *Queue) Dequeue(tx stm.Tx) (uint64, bool) {
	h := tx.Read(&q.head)
	t := tx.Read(&q.tail)
	if h == t {
		return 0, false
	}
	x := tx.Read(&q.buf[h&q.mask])
	tx.Write(&q.head, h+1)
	return x, true
}

// Len returns the current number of elements.
func (q *Queue) Len(tx stm.Tx) int {
	return int(tx.Read(&q.tail) - tx.Read(&q.head))
}

// List is a sorted singly-linked list (ascending unique keys) over a
// fixed node pool, the classic STM list microstructure. Node index 0
// is the nil sentinel.
type List struct {
	head stm.Var // index of first node, 0 if empty
	free stm.Var // head of the free list
	next []stm.Var
	keys []stm.Var
	vals []stm.Var
}

// NewList returns a list with room for capacity nodes.
func NewList(capacity int) *List {
	n := capacity + 1
	l := &List{
		next: stm.NewVars(n),
		keys: stm.NewVars(n),
		vals: stm.NewVars(n),
	}
	// Chain all nodes 1..capacity into the free list (quiescent init).
	for i := 1; i < capacity; i++ {
		l.next[i].Store(uint64(i + 1))
	}
	if capacity >= 1 {
		l.free.Store(1)
	}
	return l
}

func (l *List) alloc(tx stm.Tx) (uint64, bool) {
	n := tx.Read(&l.free)
	if n == 0 {
		return 0, false
	}
	tx.Write(&l.free, tx.Read(&l.next[n]))
	return n, true
}

func (l *List) release(tx stm.Tx, n uint64) {
	tx.Write(&l.next[n], tx.Read(&l.free))
	tx.Write(&l.free, n)
}

// Insert adds key (keeping ascending order); inserted reports whether
// the key was new, ok is false when the pool is exhausted.
func (l *List) Insert(tx stm.Tx, key, val uint64) (inserted, ok bool) {
	prev := uint64(0)
	cur := tx.Read(&l.head)
	for cur != 0 {
		k := tx.Read(&l.keys[cur])
		if k == key {
			tx.Write(&l.vals[cur], val)
			return false, true
		}
		if k > key {
			break
		}
		prev, cur = cur, tx.Read(&l.next[cur])
	}
	n, ok := l.alloc(tx)
	if !ok {
		return false, false
	}
	tx.Write(&l.keys[n], key)
	tx.Write(&l.vals[n], val)
	tx.Write(&l.next[n], cur)
	if prev == 0 {
		tx.Write(&l.head, n)
	} else {
		tx.Write(&l.next[prev], n)
	}
	return true, true
}

// Get returns the value stored under key.
func (l *List) Get(tx stm.Tx, key uint64) (uint64, bool) {
	cur := tx.Read(&l.head)
	for cur != 0 {
		k := tx.Read(&l.keys[cur])
		if k == key {
			return tx.Read(&l.vals[cur]), true
		}
		if k > key {
			return 0, false
		}
		cur = tx.Read(&l.next[cur])
	}
	return 0, false
}

// Remove deletes key, reporting whether it was present.
func (l *List) Remove(tx stm.Tx, key uint64) bool {
	prev := uint64(0)
	cur := tx.Read(&l.head)
	for cur != 0 {
		k := tx.Read(&l.keys[cur])
		if k == key {
			nx := tx.Read(&l.next[cur])
			if prev == 0 {
				tx.Write(&l.head, nx)
			} else {
				tx.Write(&l.next[prev], nx)
			}
			l.release(tx, cur)
			return true
		}
		if k > key {
			return false
		}
		prev, cur = cur, tx.Read(&l.next[cur])
	}
	return false
}

// Snapshot returns the quiescent (key, value) contents in list order.
func (l *List) Snapshot() [][2]uint64 {
	var out [][2]uint64
	for cur := l.head.Load(); cur != 0; cur = l.next[cur].Load() {
		out = append(out, [2]uint64{l.keys[cur].Load(), l.vals[cur].Load()})
	}
	return out
}
