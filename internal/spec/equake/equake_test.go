package equake

import (
	"math"
	"testing"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/stm"
)

func small(yield bool) Config {
	return Config{Nodes: 120, Regions: 8, Steps: 4, Seed: 5, Yield: yield}
}

func TestSequentialVerifies(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestWavePropagates(t *testing.T) {
	a := New(small(false))
	edge0 := a.disp[2].Load()
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	center := a.disp[a.cfg.Nodes/2].Load()
	if center == 1.0 {
		t.Fatal("center displacement never evolved")
	}
	_ = edge0
	var moved bool
	for i := 0; i < a.cfg.Nodes; i++ {
		if math.Abs(a.vel[i].Load()) > 1e-12 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no node gained velocity; stencil inert")
	}
}

func TestOrderedEnginesMatchSequential(t *testing.T) {
	ref := New(small(true))
	if _, err := ref.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal, stm.OrderedTL2, stm.OrderedUndoLogVis, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			a := New(small(true))
			res, err := a.Run(apps.Runner{Alg: alg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(); err != nil {
				t.Fatal(err)
			}
			if got := a.Fingerprint(); got != want {
				t.Fatalf("fingerprint %#x, want %#x (stats %v)", got, want, res.Stats)
			}
		})
	}
}

func TestWrap(t *testing.T) {
	if wrap(-1, 10) != 9 || wrap(10, 10) != 0 || wrap(5, 10) != 5 {
		t.Fatal("wrap arithmetic wrong")
	}
}

func TestResetAllowsRerun(t *testing.T) {
	a := New(small(false))
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	f := a.Fingerprint()
	a.Reset()
	if _, err := a.Run(apps.Runner{Alg: stm.Sequential, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != f {
		t.Fatal("rerun diverged")
	}
}
