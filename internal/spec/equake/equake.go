// Package equake reproduces SPEC2000's equake for Figure 7d:
// simulation of elastic seismic wave propagation. The computation is
// a time-stepped stencil over a mesh of nodes; each step's update of
// a node depends on its neighbors' values from the same sweep, giving
// loop-carried dependencies that force transactions to commit in
// order (§8: "the loop-carried dependencies force the transaction to
// be committed in a specific order"). Nodes are partitioned into
// consecutive regions, one transaction per region per step, "so only
// those in joints may abort" — conflicts arise exactly at region
// boundaries.
//
// The kernel is deterministic: ordered engines must match the
// sequential run bit-for-bit.
package equake

import (
	"fmt"
	"math"
	"runtime"

	"github.com/orderedstm/ostm/internal/apps"
	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// Config parameterizes the simulation.
type Config struct {
	// Nodes is the mesh size (default 500, the paper's input size).
	Nodes int
	// Regions is the number of node partitions = transactions per
	// step (default 25).
	Regions int
	// Steps is the time-step count (default 8).
	Steps int
	// Seed drives initial displacement (default 1).
	Seed uint64
	// Yield inserts scheduler yields inside transactions.
	Yield bool
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 500
	}
	if c.Regions == 0 {
		c.Regions = 25
	}
	if c.Steps == 0 {
		c.Steps = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// App is one simulation instance: displacement values in shared
// transactional words; each step sweeps the mesh in region order,
// updating nodes in place (the in-place update is what creates the
// loop-carried dependency between consecutive regions).
type App struct {
	cfg  Config
	disp []stm.TVar[float64] // displacement
	vel  []stm.TVar[float64] // velocity
	// stiffness is the read-only per-node material coefficient.
	stiffness []float64
}

// New builds the mesh with a localized initial excitation.
func New(cfg Config) *App {
	cfg = cfg.withDefaults()
	a := &App{
		cfg:       cfg,
		disp:      stm.NewTVars[float64](cfg.Nodes),
		vel:       stm.NewTVars[float64](cfg.Nodes),
		stiffness: make([]float64, cfg.Nodes),
	}
	r := rng.New(cfg.Seed)
	for i := range a.stiffness {
		a.stiffness[i] = 0.5 + r.Float64()
	}
	a.excite()
	return a
}

// excite sets the initial displacement pulse at the mesh center.
func (a *App) excite() {
	center := a.cfg.Nodes / 2
	for i := 0; i < a.cfg.Nodes; i++ {
		d := float64(i - center)
		a.disp[i].Store(math.Exp(-d * d / 50))
		a.vel[i].Store(0)
	}
}

// NumTxns returns the total transactions across steps.
func (a *App) NumTxns() int { return a.cfg.Steps * a.cfg.Regions }

// Run executes the simulation under the runner. Ages flatten
// (step, region), preserving the loop-carried order.
func (a *App) Run(r apps.Runner) (stm.Result, error) {
	cfg := a.cfg
	perRegion := (cfg.Nodes + cfg.Regions - 1) / cfg.Regions
	body := func(tx stm.Tx, age int) {
		region := age % cfg.Regions
		lo := region * perRegion
		hi := lo + perRegion
		if hi > cfg.Nodes {
			hi = cfg.Nodes
		}
		const dt = 0.05
		for i := lo; i < hi; i++ {
			left := stm.ReadT(tx, &a.disp[wrap(i-1, cfg.Nodes)])
			right := stm.ReadT(tx, &a.disp[wrap(i+1, cfg.Nodes)])
			u := stm.ReadT(tx, &a.disp[i])
			v := stm.ReadT(tx, &a.vel[i])
			// Wave equation stencil with per-node stiffness; the
			// in-place update makes node i-1's new value feed node i
			// within the same sweep, as in the original loop.
			acc := a.stiffness[i] * (left + right - 2*u)
			v += acc * dt
			u += v * dt
			stm.WriteT(tx, &a.vel[i], v)
			stm.WriteT(tx, &a.disp[i], u)
			if cfg.Yield {
				runtime.Gosched()
			}
		}
	}
	return r.Exec(a.NumTxns(), body)
}

func wrap(i, n int) int {
	if i < 0 {
		return i + n
	}
	if i >= n {
		return i - n
	}
	return i
}

// Verify checks the wave state is finite and energy has not exploded.
func (a *App) Verify() error {
	var energy float64
	for i := 0; i < a.cfg.Nodes; i++ {
		u := a.disp[i].Load()
		v := a.vel[i].Load()
		if math.IsNaN(u) || math.IsInf(u, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("equake: node %d diverged (u=%v v=%v)", i, u, v)
		}
		energy += u*u + v*v
	}
	if energy > 1e6 {
		return fmt.Errorf("equake: energy exploded to %v", energy)
	}
	return nil
}

// Fingerprint folds the final wave state.
func (a *App) Fingerprint() uint64 {
	var h uint64
	for i := 0; i < a.cfg.Nodes; i++ {
		h = rng.Mix64(h ^ math.Float64bits(a.disp[i].Load()))
		h = rng.Mix64(h ^ math.Float64bits(a.vel[i].Load()))
	}
	return h
}

// Reset restores the initial excitation.
func (a *App) Reset() { a.excite() }
