// Package undolog implements the UndoLog baseline of the paper (§8):
// an encounter-time locking, write-through STM in the style of
// TinySTM/Ettersoft write-through designs, in four flavors — visible or
// invisible readers, each unordered or ordered. The ordered variants
// use the paper's age-based contention policy (always favor the
// transaction with the lower age); commit is gated on the predefined
// commit order.
//
// Unlike OUL (internal/core), UndoLog is not cooperative: a reader
// never consumes a live writer's value knowingly — it waits for (or
// aborts) the writer. Rollback is victim-performed: aborters only set
// a doom flag and the victim restores its undo log when it next runs,
// which is the classical design and one reason OUL outperforms it.
package undolog

import (
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
)

// ulLock is one lock-table record: the owning writer (remains set,
// pointing at a finalized transaction, after commit/abort — the status
// of the owner disambiguates), a version counter bumped on every
// release and rollback (invisible readers validate against it), and
// lazily allocated visible-reader slots.
type ulLock struct {
	owner   atomic.Pointer[Txn]
	version atomic.Uint64
	readers meta.LazySlots[Txn]
}

// Engine implements meta.Engine for the four UndoLog variants.
type Engine struct {
	cfg     meta.EngineConfig
	locks   *meta.Table[ulLock]
	visible bool
	ordered bool
}

// New returns a fresh UndoLog engine for one run.
func New(cfg meta.EngineConfig, visible, ordered bool) *Engine {
	cfg = cfg.Normalize()
	return &Engine{cfg: cfg, locks: meta.NewTable[ulLock](cfg.TableBits), visible: visible, ordered: ordered}
}

// Name implements meta.Engine.
func (e *Engine) Name() string {
	n := "UndoLog-invis"
	if e.visible {
		n = "UndoLog-vis"
	}
	if e.ordered {
		return "Ordered-" + n
	}
	return n
}

// Mode implements meta.Engine.
func (e *Engine) Mode() meta.Mode {
	if e.ordered {
		return meta.ModeBlocked
	}
	return meta.ModeUnordered
}

// Stats implements meta.Engine.
func (e *Engine) Stats() *meta.Stats { return e.cfg.Stats }

// NewTxn implements meta.Engine.
func (e *Engine) NewTxn(age uint64) meta.Txn {
	t := &Txn{eng: e, age: age}
	t.status.Store(meta.StatusActive)
	return t
}

type ulWrite struct {
	v    *meta.Var
	lock *ulLock
	old  uint64
}

type ulRead struct {
	lock  *ulLock
	owner *Txn
	ver   uint64
}

type readRef struct {
	arr *meta.SlotArray[Txn]
	idx int
}

// Txn is one UndoLog transaction attempt.
type Txn struct {
	eng    *Engine
	age    uint64
	status meta.StatusWord // Active → Committed | Aborted
	doomed atomic.Bool

	writes   []ulWrite
	reads    []ulRead  // invisible readers
	readRefs []readRef // visible readers
}

// Age implements meta.Txn.
func (t *Txn) Age() uint64 { return t.age }

// Doomed implements meta.Txn.
func (t *Txn) Doomed() bool { return t.doomed.Load() }

// doom marks a victim for abort; the victim rolls itself back at its
// next operation (or wait wake-up). Counts the cause once.
func (t *Txn) doom(c meta.Cause) {
	if t.doomed.CompareAndSwap(false, true) {
		t.eng.cfg.Stats.Abort(c)
	}
	t.eng.cfg.Order.Kick()
}

func (t *Txn) checkDoom() {
	if t.doomed.Load() {
		t.rollback()
		meta.PanicAbort(meta.CauseNone)
	}
}

func (t *Txn) selfAbort(c meta.Cause) {
	if t.doomed.CompareAndSwap(false, true) {
		t.eng.cfg.Stats.Abort(c)
	}
	t.rollback()
	meta.PanicAbort(c)
}

// live reports whether o speculatively owns its locks.
func live(o *Txn) bool {
	return o != nil && o.status.Load() == meta.StatusActive
}

// rollback restores the undo log, bumps versions so invisible readers
// detect the flicker, and finalizes the attempt. Only ever run by the
// victim's own goroutine, so no descriptor locking is needed.
func (t *Txn) rollback() {
	if t.status.Load().Final() {
		return
	}
	for i := len(t.writes) - 1; i >= 0; i-- {
		e := &t.writes[i]
		if e.lock.owner.Load() == t {
			e.v.Store(e.old)
			e.lock.version.Add(1)
		}
	}
	t.status.Store(meta.StatusAborted)
	t.eng.cfg.Order.Kick()
}

// Read dispatches to the visible or invisible protocol.
func (t *Txn) Read(v *meta.Var) uint64 {
	if t.eng.visible {
		return t.readVisible(v)
	}
	return t.readInvisible(v)
}

// readInvisible loads the value and records (owner, version) for
// commit-time validation. A live foreign owner is handled by the
// contention policy: ordered favors the lower age (abort a higher-age
// owner, wait out a lower-age one); unordered retries a bounded number
// of times and then backs off by self-aborting, matching §8.
func (t *Txn) readInvisible(v *meta.Var) uint64 {
	lk := t.eng.locks.Of(v)
	for spin := 0; ; spin++ {
		t.checkDoom()
		o := lk.owner.Load()
		ver := lk.version.Load()
		if o != nil && o != t && live(o) {
			if t.eng.ordered {
				if o.age > t.age {
					o.doom(meta.CauseRAW)
				}
				meta.Pause(spin) // lower age: it commits before us; wait
				continue
			}
			if spin >= t.eng.cfg.SpinBudget {
				t.selfAbort(meta.CauseBusy)
			}
			meta.Pause(spin)
			continue
		}
		val := v.Load()
		if lk.owner.Load() != o || lk.version.Load() != ver {
			meta.Pause(spin)
			continue // torn snapshot
		}
		t.reads = append(t.reads, ulRead{lock: lk, owner: o, ver: ver})
		return val
	}
}

// readVisible registers in the lock's reader slots before loading; the
// writer/reader conflict is resolved at write time (writers abort
// conflicting visible readers), so no commit-time validation is
// needed.
func (t *Txn) readVisible(v *meta.Var) uint64 {
	lk := t.eng.locks.Of(v)
	for spin := 0; ; spin++ {
		t.checkDoom()
		o := lk.owner.Load()
		if o != nil && o != t && live(o) {
			if t.eng.ordered {
				if o.age > t.age {
					o.doom(meta.CauseRAW)
				}
				meta.Pause(spin) // lower-age writer: wait for its commit
				continue
			}
			if spin >= t.eng.cfg.SpinBudget {
				t.selfAbort(meta.CauseBusy)
			}
			meta.Pause(spin)
			continue
		}
		if !t.register(lk) {
			t.rollback()
			meta.PanicAbort(meta.CauseNone)
		}
		if lk.owner.Load() != o {
			meta.Pause(spin)
			continue // writer slipped in while we registered
		}
		return v.Load()
	}
}

// register claims a visible-reader slot (free = empty or final
// occupant). If the array stays full past the spin budget, the reader
// dooms the highest-age occupant above its own age so the bounded
// array can never deadlock the commit frontier. Returns false if
// doomed while waiting for a slot.
func (t *Txn) register(lk *ulLock) bool {
	arr := lk.readers.Get(t.eng.cfg.MaxReaders)
	for spin := 0; ; spin++ {
		for i := range arr.Slots {
			cur := arr.Slots[i].Load()
			if cur == t {
				return true
			}
			if cur == nil || cur.status.Load().Final() {
				if arr.Slots[i].CompareAndSwap(cur, t) {
					t.readRefs = append(t.readRefs, readRef{arr: arr, idx: i})
					return true
				}
			}
		}
		if t.doomed.Load() {
			return false
		}
		if spin > 0 && spin%t.eng.cfg.SpinBudget == 0 {
			var victim *Txn
			for i := range arr.Slots {
				cur := arr.Slots[i].Load()
				if cur != nil && cur != t && cur.age > t.age && !cur.status.Load().Final() {
					if victim == nil || cur.age > victim.age {
						victim = cur
					}
				}
			}
			if victim != nil {
				victim.doom(meta.CauseBusy)
			}
		}
		meta.Pause(spin)
	}
}

// Write acquires the write lock encounter-time, saves the pre-image in
// the undo log and writes through. Write-write conflicts follow the
// age-based policy when ordered (favor lower age) and bounded-spin
// self-abort when unordered. Visible readers conflicting with the
// write are aborted (all of them when unordered — writer priority;
// only higher-age ones when ordered, since a lower-age reader
// serializes before this write under ACO).
func (t *Txn) Write(v *meta.Var, x uint64) {
	lk := t.eng.locks.Of(v)
	for spin := 0; ; spin++ {
		t.checkDoom()
		o := lk.owner.Load()
		if o == t {
			t.appendUndo(v, lk)
			t.killReaders(lk)
			v.Store(x)
			return
		}
		if live(o) {
			if t.eng.ordered {
				if o.age > t.age {
					o.doom(meta.CauseWAW)
				}
				meta.Pause(spin) // wait for victim rollback / lower-age commit
				continue
			}
			if spin >= t.eng.cfg.SpinBudget {
				t.selfAbort(meta.CauseWAW)
			}
			meta.Pause(spin)
			continue
		}
		if !lk.owner.CompareAndSwap(o, t) {
			meta.Pause(spin)
			continue
		}
		t.appendUndo(v, lk)
		t.killReaders(lk)
		v.Store(x)
		return
	}
}

func (t *Txn) appendUndo(v *meta.Var, lk *ulLock) {
	for i := range t.writes {
		if t.writes[i].v == v {
			return
		}
	}
	t.writes = append(t.writes, ulWrite{v: v, lock: lk, old: v.Load()})
}

// killReaders aborts visible readers that conflict with a write to lk.
func (t *Txn) killReaders(lk *ulLock) {
	if !t.eng.visible {
		return
	}
	arr := lk.readers.Peek()
	if arr == nil {
		return
	}
	for i := range arr.Slots {
		r := arr.Slots[i].Load()
		if r == nil || r == t || r.status.Load().Final() {
			continue
		}
		if t.eng.ordered && r.age < t.age {
			continue // its read serializes before us under ACO
		}
		r.doom(meta.CauseKilledReader)
	}
}

// ReadSetValid implements meta.Revalidator (invisible readers only;
// visible readers cannot observe stale state undetected).
func (t *Txn) ReadSetValid() bool {
	if t.eng.visible {
		return !t.doomed.Load()
	}
	for i := range t.reads {
		e := &t.reads[i]
		if e.lock.version.Load() != e.ver || e.lock.owner.Load() != e.owner {
			return false
		}
	}
	return true
}

// TryCommit validates (invisible readers), releases the write locks by
// bumping versions and flipping the status, and — when ordered — does
// all of that only at the transaction's commit turn.
func (t *Txn) TryCommit() bool {
	if t.eng.ordered {
		if !t.eng.cfg.Order.WaitTurn(t.age, t.Doomed) {
			t.rollback()
			return false
		}
	}
	if t.doomed.Load() {
		t.rollback()
		return false
	}
	if !t.eng.visible {
		for i := range t.reads {
			e := &t.reads[i]
			if e.lock.version.Load() != e.ver || (e.lock.owner.Load() != e.owner && e.lock.owner.Load() != t) {
				if t.eng.ordered {
					// Age-based contention policy at commit: any live
					// higher-age writer squatting on our read-set can
					// never commit before us (the order forbids it), so
					// it must be doomed or our turn never validates.
					for j := range t.reads {
						o := t.reads[j].lock.owner.Load()
						if o != nil && o != t && o.age > t.age &&
							o.status.Load() == meta.StatusActive {
							o.doom(meta.CauseRAW)
						}
					}
				}
				t.eng.cfg.Stats.Abort(meta.CauseValidation)
				t.doomed.Store(true)
				t.rollback()
				return false
			}
		}
	}
	for i := range t.writes {
		t.writes[i].lock.version.Add(1)
	}
	t.status.Store(meta.StatusCommitted)
	if t.eng.ordered {
		t.eng.cfg.Order.Complete(t.age)
	}
	return true
}

// Commit implements meta.Txn.
func (t *Txn) Commit() bool { return true }

// Cleanup implements meta.Txn: clear stale back-references.
func (t *Txn) Cleanup() {
	for _, r := range t.readRefs {
		r.arr.Slots[r.idx].CompareAndSwap(t, nil)
	}
	for i := range t.writes {
		t.writes[i].lock.owner.CompareAndSwap(t, nil)
	}
	t.readRefs = nil
	t.reads = nil
	t.writes = nil
}

// AbandonAttempt implements meta.Txn: victim-performed rollback.
func (t *Txn) AbandonAttempt() {
	if !t.status.Load().Final() {
		if t.doomed.CompareAndSwap(false, true) {
			t.eng.cfg.Stats.Abort(meta.CauseNone)
		}
		t.rollback()
	}
}
