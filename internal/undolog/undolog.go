// Package undolog implements the UndoLog baseline of the paper (§8):
// an encounter-time locking, write-through STM in the style of
// TinySTM/Ettersoft write-through designs, in four flavors — visible or
// invisible readers, each unordered or ordered. The ordered variants
// use the paper's age-based contention policy (always favor the
// transaction with the lower age); commit is gated on the predefined
// commit order.
//
// Unlike OUL (internal/core), UndoLog is not cooperative: a reader
// never consumes a live writer's value knowingly — it waits for (or
// aborts) the writer. Rollback is victim-performed: aborters only set
// a doom flag and the victim restores its undo log when it next runs,
// which is the classical design and one reason OUL outperforms it.
//
// Owner words and reader slots hold generation-stamped meta.Refs (see
// internal/meta/ref.go): descriptors are recycled through per-worker
// freelists, and a stale reference to a previous life must be exactly
// as inert as a pointer to a finalized descriptor used to be — in
// particular, an invisible reader that recorded the owner word must
// fail validation when the same descriptor re-acquires the lock in a
// later life, which only a generation-stamped comparison can detect.
package undolog

import (
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
)

// ulLock is one lock-table record: the owning writer's reference (it
// remains set, naming a finalized life, after commit/abort — staleness
// or the owner's status disambiguates), a version counter bumped on
// every release and rollback (invisible readers validate against it),
// and lazily allocated visible-reader slots.
type ulLock struct {
	owner   meta.RefWord
	version atomic.Uint64
	readers meta.LazyRefSlots
}

// Engine implements meta.Engine for the four UndoLog variants.
type Engine struct {
	cfg     meta.EngineConfig
	locks   *meta.Table[ulLock]
	visible bool
	ordered bool
	descs   meta.Registry[Txn]
	depot   meta.Depot[Txn]
}

// New returns a fresh UndoLog engine for one run.
func New(cfg meta.EngineConfig, visible, ordered bool) *Engine {
	cfg = cfg.Normalize()
	return &Engine{cfg: cfg, locks: meta.NewTable[ulLock](cfg.TableBits), visible: visible, ordered: ordered}
}

// Name implements meta.Engine.
func (e *Engine) Name() string {
	n := "UndoLog-invis"
	if e.visible {
		n = "UndoLog-vis"
	}
	if e.ordered {
		return "Ordered-" + n
	}
	return n
}

// Mode implements meta.Engine.
func (e *Engine) Mode() meta.Mode {
	if e.ordered {
		return meta.ModeBlocked
	}
	return meta.ModeUnordered
}

// Stats implements meta.Engine.
func (e *Engine) Stats() *meta.Stats { return e.cfg.Stats }

// alloc registers a brand-new descriptor.
func (e *Engine) alloc(cell *meta.StatsCell) *Txn {
	t := &Txn{eng: e, cell: cell}
	t.idx = e.descs.Add(t)
	return t
}

// at resolves a descriptor reference (any generation).
func (e *Engine) at(r meta.Ref) *Txn { return e.descs.At(r.Idx()) }

// NewTxn implements meta.Engine: a fresh, never-recycled descriptor.
func (e *Engine) NewTxn(age uint64) meta.Txn {
	t := e.alloc(e.cfg.Stats.DefaultCell())
	t.age.Store(age)
	return t
}

// NewPool implements meta.PoolEngine.
func (e *Engine) NewPool() meta.TxnPool {
	return &pool{eng: e, cache: meta.NewCache(&e.depot), cell: e.cfg.Stats.NewCell()}
}

// pool recycles finalized descriptors for one run-loop goroutine,
// reusing the writes/reads/readRefs backing arrays. UndoLog descriptors
// are never read through after finalization (rollback is
// victim-performed and undo logs are private), so no pinning is needed.
type pool struct {
	eng   *Engine
	cache *meta.Cache[Txn]
	cell  *meta.StatsCell
}

// NewTxn implements meta.TxnPool.
func (p *pool) NewTxn(age uint64) meta.Txn {
	t := p.cache.Get()
	if t == nil {
		t = p.eng.alloc(p.cell)
		t.age.Store(age)
		return t
	}
	t.writes = t.writes[:0]
	t.reads = t.reads[:0]
	t.readRefs = t.readRefs[:0]
	t.doomed.Store(false)
	t.age.Store(age)
	t.gen = t.status.Renew()
	return t
}

// Retire implements meta.TxnPool: scrub this life's reader-slot
// registrations (Cleanup is not called for blocked/unordered modes)
// and cache the descriptor.
func (p *pool) Retire(x meta.Txn) {
	t, ok := x.(*Txn)
	if !ok || t.eng != p.eng || !t.status.Load().Final() {
		return
	}
	self := t.ref()
	for i := range t.readRefs {
		rr := &t.readRefs[i]
		rr.arr.Slots[rr.idx].CAS(self, meta.RefNil)
	}
	p.cache.Put(t)
}

type ulWrite struct {
	v    *meta.Var
	lock *ulLock
	old  uint64
}

type ulRead struct {
	lock  *ulLock
	owner meta.Ref
	ver   uint64
}

type readRef struct {
	arr *meta.RefSlotArray
	idx int
}

// Txn is one UndoLog transaction attempt descriptor (one life per
// attempt; see meta.StatusWord).
type Txn struct {
	eng  *Engine
	cell *meta.StatsCell // set once at allocation
	idx  uint32
	gen  uint64 // current life (owner-written mirror of status.Gen)

	age    atomic.Uint64   // atomic: stale-ref observers race renewal
	status meta.StatusWord // Active → Committed | Aborted
	doomed atomic.Bool

	writes   []ulWrite
	reads    []ulRead  // invisible readers
	readRefs []readRef // visible readers
}

// ref returns the reference for this descriptor's current life.
func (t *Txn) ref() meta.Ref { return meta.MakeRef(t.idx, t.gen) }

// Age implements meta.Txn.
func (t *Txn) Age() uint64 { return t.age.Load() }

// Doomed implements meta.Txn.
func (t *Txn) Doomed() bool { return t.doomed.Load() }

// doom marks a victim for abort; the victim rolls itself back at its
// next operation (or wait wake-up). Counts the cause once.
func (t *Txn) doom(c meta.Cause) {
	if t.doomed.CompareAndSwap(false, true) {
		t.cell.Abort(c)
	}
	t.eng.cfg.Order.Kick()
}

func (t *Txn) checkDoom() {
	if t.doomed.Load() {
		t.rollback()
		meta.PanicAbort(meta.CauseNone)
	}
}

func (t *Txn) selfAbort(c meta.Cause) {
	if t.doomed.CompareAndSwap(false, true) {
		t.cell.Abort(c)
	}
	t.rollback()
	meta.PanicAbort(c)
}

// holder resolves an owner-word reference to a live same-life owner,
// or nil when the word is empty, stale (a past life) or final — all of
// which mean the record is claimable.
func (e *Engine) holder(r meta.Ref) *Txn {
	if !r.IsTxn() {
		return nil
	}
	o := e.at(r)
	if life := o.status.LoadLife(); r.SameLife(life) && life.Status() == meta.StatusActive {
		return o
	}
	return nil
}

// rollback restores the undo log, bumps versions so invisible readers
// detect the flicker, and finalizes the attempt. Only ever run by the
// victim's own goroutine, so no descriptor locking is needed.
func (t *Txn) rollback() {
	if t.status.Load().Final() {
		return
	}
	self := t.ref()
	for i := len(t.writes) - 1; i >= 0; i-- {
		e := &t.writes[i]
		if e.lock.owner.Load() == self {
			e.v.Store(e.old)
			e.lock.version.Add(1)
		}
	}
	t.status.Store(meta.StatusAborted)
	t.eng.cfg.Order.Kick()
}

// Read dispatches to the visible or invisible protocol.
func (t *Txn) Read(v *meta.Var) uint64 {
	if t.eng.visible {
		return t.readVisible(v)
	}
	return t.readInvisible(v)
}

// readInvisible loads the value and records (owner, version) for
// commit-time validation. A live foreign owner is handled by the
// contention policy: ordered favors the lower age (abort a higher-age
// owner, wait out a lower-age one); unordered retries a bounded number
// of times and then backs off by self-aborting, matching §8.
func (t *Txn) readInvisible(v *meta.Var) uint64 {
	lk := t.eng.locks.Of(v)
	self := t.ref()
	for spin := 0; ; spin++ {
		t.checkDoom()
		oref := lk.owner.Load()
		ver := lk.version.Load()
		if o := t.eng.holder(oref); o != nil && oref != self {
			if t.eng.ordered {
				if o.age.Load() > t.age.Load() {
					o.doom(meta.CauseRAW)
				}
				meta.Pause(spin) // lower age: it commits before us; wait
				continue
			}
			if spin >= t.eng.cfg.SpinBudget {
				t.selfAbort(meta.CauseBusy)
			}
			meta.Pause(spin)
			continue
		}
		val := v.Load()
		if lk.owner.Load() != oref || lk.version.Load() != ver {
			meta.Pause(spin)
			continue // torn snapshot
		}
		t.reads = append(t.reads, ulRead{lock: lk, owner: oref, ver: ver})
		return val
	}
}

// readVisible registers in the lock's reader slots before loading; the
// writer/reader conflict is resolved at write time (writers abort
// conflicting visible readers), so no commit-time validation is
// needed.
func (t *Txn) readVisible(v *meta.Var) uint64 {
	lk := t.eng.locks.Of(v)
	self := t.ref()
	for spin := 0; ; spin++ {
		t.checkDoom()
		oref := lk.owner.Load()
		if o := t.eng.holder(oref); o != nil && oref != self {
			if t.eng.ordered {
				if o.age.Load() > t.age.Load() {
					o.doom(meta.CauseRAW)
				}
				meta.Pause(spin) // lower-age writer: wait for its commit
				continue
			}
			if spin >= t.eng.cfg.SpinBudget {
				t.selfAbort(meta.CauseBusy)
			}
			meta.Pause(spin)
			continue
		}
		if !t.register(lk) {
			t.rollback()
			meta.PanicAbort(meta.CauseNone)
		}
		if lk.owner.Load() != oref {
			meta.Pause(spin)
			continue // writer slipped in while we registered
		}
		return v.Load()
	}
}

// slotFree reports whether a reader-slot occupant reference is dead
// (stale or final).
func (t *Txn) slotFree(cur meta.Ref) bool {
	if !cur.IsTxn() {
		return cur == meta.RefNil
	}
	r := t.eng.at(cur)
	life := r.status.LoadLife()
	return !cur.SameLife(life) || life.Status().Final()
}

// register claims a visible-reader slot (free = empty, stale or final
// occupant). If the array stays full past the spin budget, the reader
// dooms the highest-age occupant above its own age so the bounded
// array can never deadlock the commit frontier. Returns false if
// doomed while waiting for a slot.
func (t *Txn) register(lk *ulLock) bool {
	arr := lk.readers.Get(t.eng.cfg.MaxReaders)
	self := t.ref()
	for spin := 0; ; spin++ {
		for i := range arr.Slots {
			cur := arr.Slots[i].Load()
			if cur == self {
				return true
			}
			if cur == meta.RefNil || t.slotFree(cur) {
				if arr.Slots[i].CAS(cur, self) {
					t.readRefs = append(t.readRefs, readRef{arr: arr, idx: i})
					return true
				}
			}
		}
		if t.doomed.Load() {
			return false
		}
		if spin > 0 && spin%t.eng.cfg.SpinBudget == 0 {
			var victim *Txn
			var victimAge uint64
			myAge := t.age.Load()
			for i := range arr.Slots {
				cur := arr.Slots[i].Load()
				if !cur.IsTxn() || cur == self {
					continue
				}
				r := t.eng.at(cur)
				life := r.status.LoadLife()
				if !cur.SameLife(life) || life.Status().Final() {
					continue
				}
				if a := r.age.Load(); a > myAge && (victim == nil || a > victimAge) {
					victim, victimAge = r, a
				}
			}
			if victim != nil {
				victim.doom(meta.CauseBusy)
			}
		}
		meta.Pause(spin)
	}
}

// Write acquires the write lock encounter-time, saves the pre-image in
// the undo log and writes through. Write-write conflicts follow the
// age-based policy when ordered (favor lower age) and bounded-spin
// self-abort when unordered. Visible readers conflicting with the
// write are aborted (all of them when unordered — writer priority;
// only higher-age ones when ordered, since a lower-age reader
// serializes before this write under ACO).
func (t *Txn) Write(v *meta.Var, x uint64) {
	lk := t.eng.locks.Of(v)
	self := t.ref()
	for spin := 0; ; spin++ {
		t.checkDoom()
		oref := lk.owner.Load()
		if oref == self {
			t.appendUndo(v, lk)
			t.killReaders(lk)
			v.Store(x)
			return
		}
		if o := t.eng.holder(oref); o != nil {
			if t.eng.ordered {
				if o.age.Load() > t.age.Load() {
					o.doom(meta.CauseWAW)
				}
				meta.Pause(spin) // wait for victim rollback / lower-age commit
				continue
			}
			if spin >= t.eng.cfg.SpinBudget {
				t.selfAbort(meta.CauseWAW)
			}
			meta.Pause(spin)
			continue
		}
		if !lk.owner.CAS(oref, self) {
			meta.Pause(spin)
			continue
		}
		t.appendUndo(v, lk)
		t.killReaders(lk)
		v.Store(x)
		return
	}
}

func (t *Txn) appendUndo(v *meta.Var, lk *ulLock) {
	for i := range t.writes {
		if t.writes[i].v == v {
			return
		}
	}
	t.writes = append(t.writes, ulWrite{v: v, lock: lk, old: v.Load()})
}

// killReaders aborts visible readers that conflict with a write to lk.
// Stale slot registrations (past lives) are skipped.
func (t *Txn) killReaders(lk *ulLock) {
	if !t.eng.visible {
		return
	}
	arr := lk.readers.Peek()
	if arr == nil {
		return
	}
	self := t.ref()
	myAge := t.age.Load()
	for i := range arr.Slots {
		ref := arr.Slots[i].Load()
		if !ref.IsTxn() || ref == self {
			continue
		}
		r := t.eng.at(ref)
		life := r.status.LoadLife()
		if !ref.SameLife(life) || life.Status().Final() {
			continue
		}
		if t.eng.ordered && r.age.Load() < myAge {
			continue // its read serializes before us under ACO
		}
		r.doom(meta.CauseKilledReader)
	}
}

// ReadSetValid implements meta.Revalidator (invisible readers only;
// visible readers cannot observe stale state undetected).
func (t *Txn) ReadSetValid() bool {
	if t.eng.visible {
		return !t.doomed.Load()
	}
	for i := range t.reads {
		e := &t.reads[i]
		if e.lock.version.Load() != e.ver || e.lock.owner.Load() != e.owner {
			return false
		}
	}
	return true
}

// TryCommit validates (invisible readers), releases the write locks by
// bumping versions and flipping the status, and — when ordered — does
// all of that only at the transaction's commit turn.
func (t *Txn) TryCommit() bool {
	if t.eng.ordered {
		if !t.eng.cfg.Order.WaitTurn(t.age.Load(), t.Doomed) {
			t.rollback()
			return false
		}
	}
	if t.doomed.Load() {
		t.rollback()
		return false
	}
	if !t.eng.visible {
		self := t.ref()
		for i := range t.reads {
			e := &t.reads[i]
			if e.lock.version.Load() != e.ver || (e.lock.owner.Load() != e.owner && e.lock.owner.Load() != self) {
				if t.eng.ordered {
					// Age-based contention policy at commit: any live
					// higher-age writer squatting on our read-set can
					// never commit before us (the order forbids it), so
					// it must be doomed or our turn never validates.
					myAge := t.age.Load()
					for j := range t.reads {
						o := t.eng.holder(t.reads[j].lock.owner.Load())
						if o != nil && o != t && o.age.Load() > myAge {
							o.doom(meta.CauseRAW)
						}
					}
				}
				t.cell.Abort(meta.CauseValidation)
				t.doomed.Store(true)
				t.rollback()
				return false
			}
		}
	}
	for i := range t.writes {
		t.writes[i].lock.version.Add(1)
	}
	t.status.Store(meta.StatusCommitted)
	if t.eng.ordered {
		t.eng.cfg.Order.Complete(t.age.Load())
	}
	return true
}

// Commit implements meta.Txn.
func (t *Txn) Commit() bool { return true }

// Cleanup implements meta.Txn: clear stale back-references. Backing
// arrays are kept for the descriptor's next life.
func (t *Txn) Cleanup() {
	self := t.ref()
	for i := range t.readRefs {
		rr := &t.readRefs[i]
		rr.arr.Slots[rr.idx].CAS(self, meta.RefNil)
	}
	for i := range t.writes {
		t.writes[i].lock.owner.CAS(self, meta.RefNil)
	}
	t.readRefs = t.readRefs[:0]
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
}

// AbandonAttempt implements meta.Txn: victim-performed rollback.
func (t *Txn) AbandonAttempt() {
	if !t.status.Load().Final() {
		if t.doomed.CompareAndSwap(false, true) {
			t.cell.Abort(meta.CauseNone)
		}
		t.rollback()
	}
}
