package undolog

import (
	"testing"

	"github.com/orderedstm/ostm/internal/meta"
)

func cfg() meta.EngineConfig { return meta.EngineConfig{TableBits: 10}.Normalize() }

func catchAbort(f func()) (aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := meta.AbortCause(r); !ok {
				panic(r)
			}
			aborted = true
		}
	}()
	f()
	return false
}

func TestNames(t *testing.T) {
	cases := map[string]*Engine{
		"UndoLog-vis":           New(cfg(), true, false),
		"Ordered-UndoLog-vis":   New(cfg(), true, true),
		"UndoLog-invis":         New(cfg(), false, false),
		"Ordered-UndoLog-invis": New(cfg(), false, true),
	}
	for want, e := range cases {
		if e.Name() != want {
			t.Fatalf("Name = %q, want %q", e.Name(), want)
		}
	}
	if New(cfg(), true, true).Mode() != meta.ModeBlocked {
		t.Fatal("ordered mode wrong")
	}
	if New(cfg(), true, false).Mode() != meta.ModeUnordered {
		t.Fatal("unordered mode wrong")
	}
}

func TestWriteThroughAndRollback(t *testing.T) {
	e := New(cfg(), false, false)
	v := meta.NewVar(10)
	tx := e.NewTxn(0).(*Txn)
	tx.Write(v, 20)
	if v.Load() != 20 {
		t.Fatal("write-through did not publish")
	}
	lk := e.locks.Of(v)
	verBefore := lk.version.Load()
	tx.AbandonAttempt()
	if v.Load() != 10 {
		t.Fatal("rollback did not restore")
	}
	if lk.version.Load() == verBefore {
		t.Fatal("rollback did not bump the version (invisible readers would miss it)")
	}
}

func TestInvisibleValidationCatchesConcurrentCommit(t *testing.T) {
	e := New(cfg(), false, false)
	v := meta.NewVar(0)
	u := meta.NewVar(0)
	r := e.NewTxn(0).(*Txn)
	_ = r.Read(v)
	w := e.NewTxn(1).(*Txn)
	w.Write(v, 5)
	if !w.TryCommit() {
		t.Fatal("writer commit")
	}
	r.Write(u, 1)
	if r.TryCommit() {
		t.Fatal("stale invisible read survived validation")
	}
	if u.Load() != 0 {
		t.Fatal("failed commit leaked (undo rollback broken)")
	}
}

func TestVisibleWriterKillsReaders(t *testing.T) {
	e := New(cfg(), true, false)
	v := meta.NewVar(0)
	r := e.NewTxn(3).(*Txn)
	_ = r.Read(v)
	w := e.NewTxn(1).(*Txn)
	w.Write(v, 1) // unordered visible: writer priority kills all readers
	if !r.Doomed() {
		t.Fatal("visible reader survived a conflicting write")
	}
	if !catchAbort(func() { r.Read(v) }) {
		t.Fatal("doomed reader did not unwind")
	}
}

func TestOrderedVisibleSparesLowerAgeReaders(t *testing.T) {
	e := New(cfg(), true, true)
	v := meta.NewVar(0)
	older := e.NewTxn(0).(*Txn)
	younger := e.NewTxn(9).(*Txn)
	_ = older.Read(v)
	_ = younger.Read(v)
	w := e.NewTxn(4).(*Txn)
	w.Write(v, 1)
	if older.Doomed() {
		t.Fatal("lower-age reader killed (its read serializes first under ACO)")
	}
	if !younger.Doomed() {
		t.Fatal("higher-age speculative reader survived")
	}
}

func TestOrderedWAWFavorsLowerAge(t *testing.T) {
	e := New(cfg(), false, true)
	v := meta.NewVar(0)
	hi := e.NewTxn(8).(*Txn)
	hi.Write(v, 8)
	lo := e.NewTxn(2).(*Txn)
	// The lower-age writer dooms the higher-age holder, waits for its
	// rollback, then acquires. The victim rolls back at its next
	// operation; simulate by running it in a goroutine.
	go func() {
		for !hi.Doomed() {
		}
		hi.AbandonAttempt()
	}()
	lo.Write(v, 2)
	if v.Load() != 2 {
		t.Fatalf("value = %d, want 2", v.Load())
	}
	if !hi.Doomed() {
		t.Fatal("higher-age holder not doomed")
	}
}

func TestCommitReleasesAndBumps(t *testing.T) {
	e := New(cfg(), false, false)
	v := meta.NewVar(0)
	tx := e.NewTxn(0).(*Txn)
	tx.Write(v, 3)
	lk := e.locks.Of(v)
	before := lk.version.Load()
	if !tx.TryCommit() {
		t.Fatal("commit")
	}
	if lk.version.Load() == before {
		t.Fatal("commit did not bump version")
	}
	// Lock owner is final: a new writer can acquire freely.
	tx2 := e.NewTxn(1).(*Txn)
	tx2.Write(v, 4)
	if v.Load() != 4 {
		t.Fatal("post-commit acquisition failed")
	}
	tx.Cleanup()
}
