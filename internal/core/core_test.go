package core

import (
	"testing"

	"github.com/orderedstm/ostm/internal/meta"
)

func cfg() meta.EngineConfig {
	return meta.EngineConfig{TableBits: 12}.Normalize()
}

// catchAbort runs f and reports whether it unwound with an abort
// signal.
func catchAbort(f func()) (aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := meta.AbortCause(r); !ok {
				panic(r)
			}
			aborted = true
		}
	}()
	f()
	return false
}

// --- OWB protocol ---

func TestOWBForwardingAndCascadeAbort(t *testing.T) {
	eng := NewOWB(cfg())
	v := meta.NewVar(10)
	t0 := eng.NewTxn(0).(*OWBTxn)
	t0.Write(v, 42)
	if !t0.TryCommit() {
		t.Fatal("t0 expose failed")
	}
	if v.Load() != 42 {
		t.Fatal("expose did not publish the value")
	}
	// A higher-age reader consumes the exposed (uncommitted) value and
	// registers as a dependent.
	t1 := eng.NewTxn(1).(*OWBTxn)
	if got := t1.Read(v); got != 42 {
		t.Fatalf("forwarded read = %d, want 42", got)
	}
	if t0.deps.Len() == 0 {
		t.Fatal("reader did not register in the writer's dependency list")
	}
	// Aborting the exposed writer cascades to the reader and restores
	// the old value.
	if !t0.abort(meta.CauseRAW) {
		t.Fatal("abort of exposed writer failed")
	}
	if !t1.Doomed() {
		t.Fatal("cascade did not doom the dependent reader")
	}
	if v.Load() != 10 {
		t.Fatalf("abort did not restore the value: %d", v.Load())
	}
	if eng.locks.Of(v).writer.Load() != nil {
		t.Fatal("abort did not release the lock")
	}
}

func TestOWBExposeAgeConflict(t *testing.T) {
	eng := NewOWB(cfg())
	v := meta.NewVar(0)
	// Higher age exposes first.
	t1 := eng.NewTxn(5).(*OWBTxn)
	t1.Write(v, 5)
	if !t1.TryCommit() {
		t.Fatal("t1 expose failed")
	}
	// Lower age exposing the same object must win (W2→W1): abort the
	// holder and acquire.
	t0 := eng.NewTxn(2).(*OWBTxn)
	t0.Write(v, 2)
	if !t0.TryCommit() {
		t.Fatal("t0 expose failed against higher-age holder")
	}
	if t1.status.Load() != meta.StatusAborted {
		t.Fatalf("higher-age holder not aborted: %v", t1.status.Load())
	}
	if v.Load() != 2 {
		t.Fatalf("value = %d, want 2", v.Load())
	}
	// And the reverse: a higher age encountering a lower-age holder
	// aborts itself.
	t3 := eng.NewTxn(7).(*OWBTxn)
	t3.Write(v, 7)
	if t3.TryCommit() {
		t.Fatal("higher age exposed over a lower-age lock holder")
	}
	if t3.status.Load() != meta.StatusAborted {
		t.Fatal("failed expose must finalize aborted")
	}
}

func TestOWBCommitLifecycle(t *testing.T) {
	eng := NewOWB(cfg())
	v := meta.NewVar(1)
	tx := eng.NewTxn(0).(*OWBTxn)
	if got := tx.Read(v); got != 1 {
		t.Fatalf("read = %d", got)
	}
	tx.Write(v, 9)
	if got := tx.Read(v); got != 9 {
		t.Fatalf("read-own-write = %d", got)
	}
	if !tx.TryCommit() || !tx.Commit() {
		t.Fatal("commit path failed")
	}
	if v.Load() != 9 || eng.locks.Of(v).writer.Load() != nil {
		t.Fatal("commit did not publish and release")
	}
	tx.Cleanup()
	// Committed transactions cannot be aborted.
	if tx.abort(meta.CauseRAW) {
		t.Fatal("abort of committed transaction succeeded")
	}
}

func TestOWBValidationAbortsStaleReader(t *testing.T) {
	eng := NewOWB(cfg())
	v := meta.NewVar(0)
	u := meta.NewVar(0)
	tr := eng.NewTxn(3).(*OWBTxn)
	if tr.Read(v) != 0 {
		t.Fatal("unexpected value")
	}
	// A lower-age writer exposes and commits over v.
	tw := eng.NewTxn(1).(*OWBTxn)
	tw.Write(v, 8)
	if !tw.TryCommit() || !tw.Commit() {
		t.Fatal("writer commit failed")
	}
	// The reader's next read must fail incremental validation.
	if !catchAbort(func() { tr.Read(u) }) {
		t.Fatal("stale read-set survived incremental validation")
	}
	if tr.status.Load() != meta.StatusAborted {
		t.Fatal("reader not finalized aborted")
	}
}

// --- OUL protocol ---

func TestOULForwardingVisibleReaders(t *testing.T) {
	eng := NewOUL(cfg())
	v := meta.NewVar(10)
	t0 := eng.NewTxn(0).(*OULTxn)
	t0.Write(v, 42) // write-through: value immediately visible
	if v.Load() != 42 {
		t.Fatal("write-through did not publish")
	}
	t1 := eng.NewTxn(1).(*OULTxn)
	if got := t1.Read(v); got != 42 {
		t.Fatalf("forwarded read = %d, want 42", got)
	}
	// The reader is visible in the lock's slot array.
	arr := eng.locks.Of(v).readers.Peek()
	if arr == nil {
		t.Fatal("no reader slots allocated")
	}
	found := false
	for i := range arr.Slots {
		if arr.Slots[i].Load() == t1.ref() {
			found = true
		}
	}
	if !found {
		t.Fatal("reader not visible")
	}
	// Rolling back the writer kills the speculative reader and
	// restores the value.
	t0.abort(meta.CauseWAW)
	if !t1.Doomed() {
		t.Fatal("speculative reader survived the writer's rollback")
	}
	if v.Load() != 10 {
		t.Fatalf("rollback restored %d, want 10", v.Load())
	}
}

func TestOULWriterKillsOnlyHigherAgeReaders(t *testing.T) {
	eng := NewOUL(cfg())
	v := meta.NewVar(0)
	older := eng.NewTxn(1).(*OULTxn)
	younger := eng.NewTxn(9).(*OULTxn)
	older.Read(v)
	younger.Read(v)
	w := eng.NewTxn(5).(*OULTxn)
	w.Write(v, 1) // R2→W1: only the age-9 reader conflicts
	if older.Doomed() {
		t.Fatal("lower-age reader wrongly killed")
	}
	if !younger.Doomed() {
		t.Fatal("higher-age speculative reader survived")
	}
}

func TestOULWAWAbortsSelfWithoutSteal(t *testing.T) {
	eng := NewOUL(cfg())
	v := meta.NewVar(0)
	t0 := eng.NewTxn(0).(*OULTxn)
	t0.Write(v, 1)
	t1 := eng.NewTxn(4).(*OULTxn)
	if !catchAbort(func() { t1.Write(v, 2) }) {
		t.Fatal("W1→W2 did not abort the higher-age writer in plain OUL")
	}
	if v.Load() != 1 {
		t.Fatal("failed write leaked a value")
	}
	// Reverse direction: a lower-age writer aborts the higher-age
	// holder (W2→W1) and acquires the lock.
	u := meta.NewVar(0)
	t5 := eng.NewTxn(5).(*OULTxn)
	t5.Write(u, 5)
	t2 := eng.NewTxn(2).(*OULTxn)
	t2.Write(u, 3)
	if t5.status.Load() != meta.StatusAborted {
		t.Fatal("higher-age holder not aborted by the lower-age writer")
	}
	if u.Load() != 3 {
		t.Fatalf("u = %d, want 3", u.Load())
	}
	if t0.status.Load() == meta.StatusAborted {
		t.Fatal("t0 should still be live")
	}
}

func TestOULCommitIsSingleStep(t *testing.T) {
	eng := NewOUL(cfg())
	v := meta.NewVar(0)
	t0 := eng.NewTxn(0).(*OULTxn)
	t0.Write(v, 7)
	if !t0.TryCommit() {
		t.Fatal("try-commit failed")
	}
	if !t0.Commit() {
		t.Fatal("commit failed")
	}
	// The lock still references t0, but a committed owner means free:
	// a later writer acquires without aborting anyone.
	t1 := eng.NewTxn(1).(*OULTxn)
	t1.Write(v, 8)
	if v.Load() != 8 {
		t.Fatal("acquisition after commit failed")
	}
	t0.Cleanup()
}

// --- OUL-Steal protocol ---

func TestStealTakesLockAndReturnsOnAbort(t *testing.T) {
	eng := NewOULSteal(cfg())
	v := meta.NewVar(0)
	t0 := eng.NewTxn(0).(*OULTxn)
	t0.Write(v, 1)
	t1 := eng.NewTxn(3).(*OULTxn)
	t1.Write(v, 2) // W1→W2: steals instead of aborting
	if v.Load() != 2 {
		t.Fatal("steal did not write through")
	}
	if eng.locks.Of(v).writer.Load() != t1.ref() {
		t.Fatal("lock not owned by the stealer")
	}
	if t0.Doomed() {
		t.Fatal("steal must not abort the original writer")
	}
	// Aborting the stealer hands the lock back to the live original
	// owner with its value.
	t1.abort(meta.CauseRAW)
	if eng.locks.Of(v).writer.Load() != t0.ref() {
		t.Fatal("lock not returned to the original owner")
	}
	if v.Load() != 1 {
		t.Fatalf("stealer rollback restored %d, want 1", v.Load())
	}
	// Now aborting the original owner restores the initial value.
	t0.abort(meta.CauseRAW)
	if v.Load() != 0 {
		t.Fatalf("original rollback restored %d, want 0", v.Load())
	}
}

func TestStealChainWalkAppliesAbortedOwnersUndo(t *testing.T) {
	eng := NewOULSteal(cfg())
	v := meta.NewVar(100)
	t0 := eng.NewTxn(0).(*OULTxn)
	t0.Write(v, 1)
	t1 := eng.NewTxn(1).(*OULTxn)
	t1.Write(v, 2) // steals from t0
	// The original owner aborts while its lock is stolen: it keeps the
	// undo entry and takes no action (the stealer owns the lock).
	t0.abort(meta.CauseWAW)
	if v.Load() != 2 {
		t.Fatal("aborting a stolen-from owner must not revert the stealer's value")
	}
	// When the stealer aborts, the owner-chain walk applies t0's undo
	// image, landing back at the pre-t0 value with a free lock.
	t1.abort(meta.CauseWAW)
	if v.Load() != 100 {
		t.Fatalf("chain walk restored %d, want 100", v.Load())
	}
	wref := eng.locks.Of(v).writer.Load()
	if wref.IsTxn() {
		w := eng.at(wref)
		if wref.SameLife(w.status.LoadLife()) && !w.status.Load().Final() {
			t.Fatal("lock not free after chain rollback")
		}
	}
}

func TestStealMidAgeReaderAbortsStealer(t *testing.T) {
	eng := NewOULSteal(cfg())
	v := meta.NewVar(0)
	t0 := eng.NewTxn(0).(*OULTxn)
	t0.Write(v, 1)
	t5 := eng.NewTxn(5).(*OULTxn)
	t5.Write(v, 5) // steals from t0
	// A mid-age reader (0 < 3 < 5) needs t0's value: it must abort the
	// higher-age stealer (W2→R1) and then read t0's value.
	t3 := eng.NewTxn(3).(*OULTxn)
	got := t3.Read(v)
	if t5.status.Load() != meta.StatusAborted {
		t.Fatal("mid-age reader did not abort the stealer")
	}
	if got != 1 {
		t.Fatalf("mid-age read = %d, want the original writer's 1", got)
	}
}

// --- shared descriptor machinery ---

func TestAbandonAttemptIdempotent(t *testing.T) {
	eng := NewOUL(cfg())
	v := meta.NewVar(0)
	tx := eng.NewTxn(0).(*OULTxn)
	tx.Write(v, 3)
	tx.AbandonAttempt()
	tx.AbandonAttempt()
	if v.Load() != 0 {
		t.Fatal("abandon did not roll back")
	}
	if tx.status.Load() != meta.StatusAborted {
		t.Fatal("abandon did not finalize")
	}
	owb := NewOWB(cfg())
	to := owb.NewTxn(0).(*OWBTxn)
	to.Write(v, 4)
	to.AbandonAttempt()
	to.AbandonAttempt()
	if v.Load() != 0 {
		t.Fatal("OWB abandon leaked a buffered write")
	}
}

func TestEngineIdentities(t *testing.T) {
	c := cfg()
	if NewOWB(c).Name() != "OWB" || NewOWB(c).Mode() != meta.ModeCooperative {
		t.Fatal("OWB identity wrong")
	}
	if NewOUL(c).Name() != "OUL" || NewOULSteal(c).Name() != "OUL-Steal" {
		t.Fatal("OUL identities wrong")
	}
	if NewOUL(c).Stats() == nil {
		t.Fatal("stats not wired")
	}
}

func TestDoomedOperationsUnwind(t *testing.T) {
	eng := NewOUL(cfg())
	v := meta.NewVar(0)
	tx := eng.NewTxn(2).(*OULTxn)
	tx.Write(v, 1)
	tx.abort(meta.CauseOrder) // externally doomed
	if !catchAbort(func() { tx.Read(v) }) {
		t.Fatal("doomed transaction's read did not unwind")
	}
	if !catchAbort(func() { tx.Write(v, 2) }) {
		t.Fatal("doomed transaction's write did not unwind")
	}
	if tx.TryCommit() {
		t.Fatal("doomed transaction committed")
	}
}

// --- long-lived metadata recycling ---

// TestOULRecycleScrubsFinalizedDescriptors: after transactions
// finalize, Recycle must clear the references Cleanup cannot reach —
// reader slots left by aborted attempts and committed writers parked
// in cold lock words — without touching live transactions.
func TestOULRecycleScrubsFinalizedDescriptors(t *testing.T) {
	eng := NewOUL(cfg())
	v := meta.NewVar(0)
	lk := eng.locks.Of(v)

	// Register a reader that will be aborted and a live lower-age
	// reader first, so each holds its own slot (registration reuses
	// finalized occupants' slots, and a writer kills higher-age
	// readers — the live reader must dodge both).
	reader := eng.NewTxn(5).(*OULTxn)
	reader.Read(v)
	live := eng.NewTxn(1).(*OULTxn)
	live.Read(v)
	reader.abort(meta.CauseBusy)
	reader.AbandonAttempt()

	// A committed writer whose Cleanup was never run (the cleaner can
	// lose the CAS race or a pipeline can stop caring about a cold
	// record) stays parked in the lock word.
	writer := eng.NewTxn(6).(*OULTxn)
	writer.Write(v, 42)
	if !writer.TryCommit() || !writer.Commit() {
		t.Fatal("writer failed to commit")
	}

	foundReader := false
	arr := lk.readers.Peek()
	for i := range arr.Slots {
		if arr.Slots[i].Load() == reader.ref() {
			foundReader = true
		}
	}
	if !foundReader || lk.writer.Load() != writer.ref() {
		t.Fatal("test setup: stale descriptors not in place")
	}

	eng.Recycle()

	if lk.writer.Load() != meta.RefNil {
		t.Fatal("Recycle left the committed writer in the lock word")
	}
	foundReader, foundLive := false, false
	for i := range arr.Slots {
		switch arr.Slots[i].Load() {
		case reader.ref():
			foundReader = true
		case live.ref():
			foundLive = true
		}
	}
	if foundReader {
		t.Fatal("Recycle left the aborted reader in its slot")
	}
	if !foundLive {
		t.Fatal("Recycle evicted a live reader")
	}
}
