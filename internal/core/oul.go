package core

import (
	"sync"
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
)

// oulLock is one lock-table record for OUL/OUL-Steal: the single writer
// reference (which doubles as "the transaction that committed this
// version" after the writer commits) plus the bounded visible-reader
// slot array, allocated lazily on first transactional read.
//
// Both the writer word and the reader slots hold generation-stamped
// meta.Refs rather than pointers: descriptors are recycled through
// per-worker freelists, and a pointer CAS could otherwise claim a word
// whose descriptor was recycled into a live attempt that legitimately
// re-acquired the very record (descriptor ABA). A Ref carries the
// generation of the life that published it, so stale references are
// detected exactly (Ref.SameLife against the descriptor's packed
// status word) and value CASes cannot cross a life boundary.
type oulLock struct {
	writer  meta.RefWord
	readers meta.LazyRefSlots
}

// OULEngine implements the Ordered Undo Log algorithm (§6) and, with
// steal enabled, the OUL-Steal variant (§6.1).
type OULEngine struct {
	cfg   meta.EngineConfig
	locks *meta.Table[oulLock]
	steal bool
	descs meta.Registry[OULTxn]
	depot meta.Depot[OULTxn]
}

// NewOUL returns a fresh OUL engine for one run.
func NewOUL(cfg meta.EngineConfig) *OULEngine {
	return &OULEngine{cfg: cfg.Normalize(), locks: meta.NewTable[oulLock](cfg.Normalize().TableBits)}
}

// NewOULSteal returns a fresh OUL-Steal engine for one run.
func NewOULSteal(cfg meta.EngineConfig) *OULEngine {
	e := NewOUL(cfg)
	e.steal = true
	return e
}

// Name implements meta.Engine.
func (e *OULEngine) Name() string {
	if e.steal {
		return "OUL-Steal"
	}
	return "OUL"
}

// Mode implements meta.Engine.
func (e *OULEngine) Mode() meta.Mode { return meta.ModeCooperative }

// Stats implements meta.Engine.
func (e *OULEngine) Stats() *meta.Stats { return e.cfg.Stats }

// alloc registers a brand-new descriptor.
func (e *OULEngine) alloc(cell *meta.StatsCell) *OULTxn {
	t := &OULTxn{eng: e, cell: cell}
	t.idx = e.descs.Add(t)
	return t
}

// at resolves a descriptor reference (any generation) to its
// descriptor.
func (e *OULEngine) at(r meta.Ref) *OULTxn { return e.descs.At(r.Idx()) }

// NewTxn implements meta.Engine: a fresh, never-recycled descriptor
// (tests and non-pooled paths; the run-loop allocates through NewPool).
func (e *OULEngine) NewTxn(age uint64) meta.Txn {
	t := e.alloc(e.cfg.Stats.DefaultCell())
	t.age.Store(age)
	return t
}

// NewPool implements meta.PoolEngine: a worker-local freelist backed by
// the engine-wide depot, with its own stats cell.
func (e *OULEngine) NewPool() meta.TxnPool {
	return &oulPool{eng: e, cache: meta.NewCache(&e.depot), cell: e.cfg.Stats.NewCell()}
}

// oulPool recycles finalized descriptors for one run-loop goroutine.
// Descriptors still pinned by steal-chain references (see pins) are
// parked until their pins drain; everything else is renewed in place,
// reusing the writes/readRefs backing arrays.
type oulPool struct {
	eng    *OULEngine
	cache  *meta.Cache[OULTxn]
	parked []*OULTxn
	cell   *meta.StatsCell
}

// NewTxn implements meta.TxnPool.
func (p *oulPool) NewTxn(age uint64) meta.Txn {
	p.sweepParked()
	for {
		t := p.cache.Get()
		if t == nil {
			t = p.eng.alloc(p.cell)
			t.age.Store(age)
			return t
		}
		if t.pins.Load() != 0 {
			// A steal chain still references this life's undo log; it
			// cannot be renewed until the chain holders are themselves
			// recycled. Park it and try another.
			p.parked = append(p.parked, t)
			continue
		}
		// pins == 0 on a final descriptor means no write entry anywhere
		// references it, so no owner-chain walk can reach it: its undo
		// log is dead and its outgoing chain references can be dropped.
		t.unpinChain()
		t.readRefs = t.readRefs[:0]
		t.doomed.Store(false)
		t.aborted.Store(false)
		t.age.Store(age)
		t.gen = t.status.Renew()
		return t
	}
}

// Retire implements meta.TxnPool: cache a finalized attempt for reuse.
// Reader slots still holding this life's registrations are scrubbed
// (aborted attempts never cleared them; for committed ones Cleanup
// already did and the CAS is a no-op).
func (p *oulPool) Retire(x meta.Txn) {
	t, ok := x.(*OULTxn)
	if !ok || t.eng != p.eng || !t.status.Load().Final() {
		return
	}
	r := t.ref()
	for i := range t.readRefs {
		rr := &t.readRefs[i]
		rr.arr.Slots[rr.idx].CAS(r, meta.RefNil)
	}
	p.cache.Put(t)
}

// sweepParked moves descriptors whose pins drained back into the
// cache. The scan is bounded; parked descriptors are rare (aborts that
// lost stolen locks) and unblock as their chain holders recycle.
func (p *oulPool) sweepParked() {
	for i, scanned := 0, 0; i < len(p.parked) && scanned < 2; scanned++ {
		if p.parked[i].pins.Load() == 0 {
			t := p.parked[i]
			last := len(p.parked) - 1
			p.parked[i] = p.parked[last]
			p.parked = p.parked[:last]
			p.cache.Put(t)
			continue
		}
		i++
	}
}

// Recycle implements meta.Recycler: scrub references Cleanup cannot
// reach out of the lock table so cold records do not accumulate them —
// reader slots left by aborted attempts (stale once the descriptor
// renews, final before that) and committed writers parked in writer
// words. Every clear is a transition concurrent transactions already
// perform themselves (slot reuse treats any stale/final occupant as
// free; Cleanup does the same committed-writer CAS), and the
// generation-stamped CAS cannot clear a renewed descriptor's live
// acquisition. Writer words holding stale references are left to
// normal traffic: a stale reference there denotes a finished life and
// is claimed like a committed writer on the next acquisition.
func (e *OULEngine) Recycle() {
	for i := 0; i < e.locks.Len(); i++ {
		lk := e.locks.Entry(i)
		if ref := lk.writer.Load(); ref.IsTxn() {
			w := e.at(ref)
			if life := w.status.LoadLife(); ref.SameLife(life) && life.Status() == meta.StatusCommitted {
				lk.writer.CAS(ref, meta.RefNil)
			}
		}
		arr := lk.readers.Peek()
		if arr == nil {
			continue
		}
		for j := range arr.Slots {
			ref := arr.Slots[j].Load()
			if !ref.IsTxn() {
				continue
			}
			r := e.at(ref)
			if life := r.status.LoadLife(); !ref.SameLife(life) || life.Status().Final() {
				arr.Slots[j].CAS(ref, meta.RefNil)
			}
		}
	}
}

// oulWriteEntry is one undo-log record: the variable, its lock record,
// the value it held just before this transaction's first write to it,
// and (OUL-Steal) the writer the lock was stolen from, so the lock can
// be handed back on abort. prevRef is the stolen-from life's reference
// (what hand-back publishes); prevOwner is the resolved descriptor,
// pinned for the lifetime of this entry so owner-chain walks can read
// its frozen undo log even after it finalizes.
type oulWriteEntry struct {
	v         *meta.Var
	lock      *oulLock
	old       uint64
	prevOwner *OULTxn
	prevRef   meta.Ref
}

type oulReadRef struct {
	arr *meta.RefSlotArray
	idx int
}

// OULTxn is one OUL/OUL-Steal transaction attempt descriptor. With
// per-worker freelists a descriptor serves many attempts over its
// lifetime; each attempt is one *life*, delimited by StatusWord.Renew.
//
// Lifecycle within a life: Active (live, write-through with
// encounter-time locks) → Pending (commit-pending after TryCommit) →
// Committed, with Transient marking an in-progress rollback and
// Aborted final. Commit is O(1): a status flip releases every lock,
// because locks point back at the transaction (§6: "setting the
// transaction status is sufficient to release all the locks ... with a
// single step").
type OULTxn struct {
	eng  *OULEngine
	cell *meta.StatsCell // set once at allocation
	idx  uint32          // registry index (stable across lives)
	gen  uint64          // current life (mirror of status.Gen; owner-written)

	age     atomic.Uint64 // atomic: stale-ref observers race renewal
	status  meta.StatusWord
	doomed  atomic.Bool
	aborted atomic.Bool // pseudocode tx.aborted: set first thing in rollback

	// pins counts write entries (in other descriptors) whose prevOwner
	// references this descriptor's current or a past life. While
	// nonzero, an owner-chain walk may read writes, so the descriptor
	// must not be renewed and its undo log must stay intact.
	pins atomic.Int64

	mu       sync.Mutex // guards writes against aborter-performed rollback
	writes   []oulWriteEntry
	readRefs []oulReadRef
}

// ref returns the reference for this descriptor's current life.
func (t *OULTxn) ref() meta.Ref { return meta.MakeRef(t.idx, t.gen) }

// Age implements meta.Txn.
func (t *OULTxn) Age() uint64 { return t.age.Load() }

// Doomed implements meta.Txn.
func (t *OULTxn) Doomed() bool { return t.doomed.Load() }

func (t *OULTxn) checkDoom() {
	if t.doomed.Load() {
		meta.PanicAbort(meta.CauseNone)
	}
}

// live reports whether a writer still speculatively owns its locks
// (Active or Pending; a Transient writer is mid-rollback).
func oulLive(s meta.Status) bool {
	return s == meta.StatusActive || s == meta.StatusPending
}

// abort dooms a transaction and, if it can claim the descriptor,
// performs the rollback on the caller's thread (the paper's aborter-
// performed rollback). Never blocks.
func (t *OULTxn) abort(c meta.Cause) bool {
	if t.status.Load().Final() {
		return false // already committed or aborted (Algorithm 3 line 58)
	}
	first := t.doomed.CompareAndSwap(false, true)
	if first {
		t.cell.Abort(c)
	}
	for {
		s := t.status.Load()
		if s == meta.StatusCommitted || s == meta.StatusAborted || s == meta.StatusTransient {
			return first
		}
		if t.status.CAS(s, meta.StatusTransient) { // s ∈ {Active, Pending}
			t.rollback()
			t.status.Store(meta.StatusAborted)
			t.eng.cfg.Order.Kick()
			return first
		}
	}
}

func (t *OULTxn) selfAbort(c meta.Cause) {
	t.abort(c)
	meta.PanicAbort(c)
}

// unpinChain releases this descriptor's outgoing steal-chain
// references. Only called when no walk can enter this descriptor
// anymore (pins == 0 on a final life, or Cleanup of a committed one —
// walks only traverse aborted owners).
func (t *OULTxn) unpinChain() {
	for i := range t.writes {
		if po := t.writes[i].prevOwner; po != nil {
			po.pins.Add(-1)
		}
	}
	t.writes = t.writes[:0]
}

// rollback restores this transaction's undo log (Algorithm 3 lines
// 57–75 / Algorithm 4 Rollback). For OUL-Steal, a lock stolen from an
// aborted lower-age writer triggers an iterative walk down the
// previous-owner chain, applying each aborted owner's undo image in
// turn (this replaces the paper's recursive ROLLBACK call; see
// package comment on deadlock avoidance).
func (t *OULTxn) rollback() {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Setting the aborted flag (pseudocode line 59) after acquiring mu
	// guarantees that any owner-chain walker observing aborted==true
	// sees a structurally frozen undo log: appends happen under mu and
	// are rejected once the transaction is doomed.
	t.aborted.Store(true)
	self := t.ref()
	for i := len(t.writes) - 1; i >= 0; i-- {
		e := &t.writes[i]
		if t.lockEntryAfter(i) {
			continue // this lock is handled at its last entry (aliasing)
		}
		if !e.lock.writer.CAS(self, meta.RefBusy) {
			// Lock was stolen from us (OUL-Steal) or already handed
			// over: keep the undo entry; whoever holds it will walk the
			// owner chain back through us.
			continue
		}
		// Restore every variable this transaction wrote under the lock
		// record (several may alias to it).
		for j := len(t.writes) - 1; j >= 0; j-- {
			if t.writes[j].lock == e.lock {
				t.writes[j].v.Store(t.writes[j].old)
			}
		}
		// Hand the lock back along the previous-owner chain, applying
		// each *aborted* owner's undo images for this record — those
		// owners skipped it during their own rollback because the lock
		// was stolen from them (Algorithm 4's recursive ROLLBACK,
		// iteratively: ages strictly decrease, so the walk terminates).
		owner, ownerRef := applyAbortedOwners(e.lock, e.prevOwner, e.prevRef)
		// Abort speculative readers that may have consumed the
		// rolled-back values (higher age than us).
		t.killReaders(e.lock, meta.CauseCascade)
		for {
			e.lock.writer.Store(ownerRef)
			// Double check: the owner may have aborted between our walk
			// and the publish, with its own rollback finding the lock
			// still busy; re-claim and keep unwinding.
			if owner == nil || !owner.aborted.Load() {
				break
			}
			if !e.lock.writer.CAS(ownerRef, meta.RefBusy) {
				break // someone else already took the record over
			}
			owner, ownerRef = applyAbortedOwners(e.lock, owner, ownerRef)
		}
	}
}

// applyAbortedOwners applies the undo images recorded for lk by start
// and every aborted owner below it, returning the first live/committed
// owner and the reference to publish for it (RefNil when the chain
// bottoms out). Aborted owners' undo logs are frozen (the aborted flag
// is set under their descriptor lock) and pinned by their successors'
// entries, so reading them races with nothing.
func applyAbortedOwners(lk *oulLock, start *OULTxn, startRef meta.Ref) (*OULTxn, meta.Ref) {
	owner, ownerRef := start, startRef
	for owner != nil && owner.aborted.Load() {
		var next *OULTxn
		var nextRef meta.Ref
		for k := len(owner.writes) - 1; k >= 0; k-- {
			oe := &owner.writes[k]
			if oe.lock == lk {
				oe.v.Store(oe.old)
				next, nextRef = oe.prevOwner, oe.prevRef
			}
		}
		owner, ownerRef = next, nextRef
	}
	if owner == nil {
		ownerRef = meta.RefNil
	}
	return owner, ownerRef
}

// lockEntryAfter reports whether writes[i].lock appears again at a
// higher index (rollback handles each lock record once, at its last
// entry).
func (t *OULTxn) lockEntryAfter(i int) bool {
	for j := i + 1; j < len(t.writes); j++ {
		if t.writes[j].lock == t.writes[i].lock {
			return true
		}
	}
	return false
}

// killReaders aborts every visible reader of lk with a higher age
// (R2→W1 during writes, cascade during rollback). Stale slot
// references — registrations from lives that already finalized — are
// skipped: the attempt they belonged to is gone, and the descriptor's
// current life never consumed this record through that slot.
func (t *OULTxn) killReaders(lk *oulLock, c meta.Cause) {
	arr := lk.readers.Peek()
	if arr == nil {
		return
	}
	self := t.ref()
	myAge := t.age.Load()
	for i := range arr.Slots {
		ref := arr.Slots[i].Load()
		if !ref.IsTxn() || ref == self {
			continue
		}
		r := t.eng.at(ref)
		life := r.status.LoadLife()
		if ref.SameLife(life) && oulLive(life.Status()) && r.age.Load() > myAge {
			r.abort(c)
		}
	}
}

// Read implements Algorithm 2 lines 1–22: abort a higher-age
// speculative writer (W2→R1), otherwise register as a visible reader
// (claiming a bounded slot), re-check the writer, and read in place —
// which naturally forwards values written by live lower-age writers.
func (t *OULTxn) Read(v *meta.Var) uint64 {
	lk := t.eng.locks.Of(v)
	self := t.ref()
	for spin := 0; ; spin++ {
		t.checkDoom()
		ref := lk.writer.Load()
		if ref == meta.RefBusy {
			meta.Pause(spin)
			continue
		}
		if ref.IsTxn() && ref != self {
			w := t.eng.at(ref)
			life := w.status.LoadLife()
			if ref.SameLife(life) {
				s := life.Status()
				if s == meta.StatusTransient {
					meta.Pause(spin) // rollback in flight: value unstable
					continue
				}
				if oulLive(s) && w.age.Load() > t.age.Load() {
					w.abort(meta.CauseRAW) // W2→R1
					meta.Pause(spin)
					continue
				}
			}
			// Stale or final: that life is over and the in-place value
			// is committed state — read through, like any record whose
			// last writer committed.
		}
		if !t.register(lk) {
			meta.PanicAbort(meta.CauseNone) // doomed while spinning for a slot
		}
		if lk.writer.Load() != ref { // writer changed while registering
			meta.Pause(spin)
			continue
		}
		return v.Load()
	}
}

// register claims a visible-reader slot on lk (Algorithm 2 lines 9–17).
// A slot is free when empty or when its occupant reference is stale or
// final. If every slot stays occupied past the spin budget, the reader
// dooms the highest-age occupant above its own age — the bounded reader
// array must never deadlock the commit frontier (a lower-age reader
// blocked by higher-age occupants that cannot commit before it).
// Returns false only if this transaction is doomed while waiting for a
// slot.
func (t *OULTxn) register(lk *oulLock) bool {
	arr := lk.readers.Get(t.eng.cfg.MaxReaders)
	self := t.ref()
	for spin := 0; ; spin++ {
		for i := range arr.Slots {
			cur := arr.Slots[i].Load()
			if cur == self {
				return true // already visible on this lock (this life)
			}
			if cur == meta.RefNil || t.slotFree(cur) {
				if arr.Slots[i].CAS(cur, self) {
					t.readRefs = append(t.readRefs, oulReadRef{arr: arr, idx: i})
					return true
				}
			}
		}
		if t.doomed.Load() {
			return false
		}
		if spin > 0 && spin%t.eng.cfg.SpinBudget == 0 {
			t.evictSlot(arr)
		}
		meta.Pause(spin)
	}
}

// slotFree reports whether a reader-slot occupant reference is dead:
// stale (its life finalized and the descriptor renewed) or final.
func (t *OULTxn) slotFree(cur meta.Ref) bool {
	if !cur.IsTxn() {
		return cur == meta.RefNil
	}
	r := t.eng.at(cur)
	life := r.status.LoadLife()
	return !cur.SameLife(life) || life.Status().Final()
}

// evictSlot dooms the highest-age live occupant older than t so a
// lower-age reader can always register (age-based slot priority).
func (t *OULTxn) evictSlot(arr *meta.RefSlotArray) {
	self := t.ref()
	myAge := t.age.Load()
	var victim *OULTxn
	var victimAge uint64
	for i := range arr.Slots {
		ref := arr.Slots[i].Load()
		if !ref.IsTxn() || ref == self {
			continue
		}
		cur := t.eng.at(ref)
		life := cur.status.LoadLife()
		if !ref.SameLife(life) || !oulLive(life.Status()) {
			continue
		}
		if a := cur.age.Load(); a > myAge && (victim == nil || a > victimAge) {
			victim, victimAge = cur, a
		}
	}
	if victim != nil {
		victim.abort(meta.CauseBusy)
	}
}

// Write implements Algorithm 2 lines 23–49 (OUL) and Algorithm 4 lines
// 23–50 (OUL-Steal): acquire the write lock resolving conflicts by
// age — aborting a higher-age holder (W2→W1), aborting ourselves on a
// lower-age holder (W1→W2, plain OUL) or stealing the lock from it
// (OUL-Steal) — then abort higher-age visible readers (R2→W1) and
// write through.
func (t *OULTxn) Write(v *meta.Var, x uint64) {
	lk := t.eng.locks.Of(v)
	self := t.ref()
	for spin := 0; ; spin++ {
		t.checkDoom()
		ref := lk.writer.Load()
		if ref == meta.RefBusy {
			meta.Pause(spin)
			continue
		}
		if ref == self {
			// Already own the lock (possibly writing a second variable
			// aliased to it).
			t.mu.Lock()
			if t.doomed.Load() {
				t.mu.Unlock()
				meta.PanicAbort(meta.CauseNone)
			}
			prev, prevRef := t.inheritPrevOwner(lk)
			t.appendUndo(v, lk, prev, prevRef)
			t.killReaders(lk, meta.CauseKilledReader)
			v.Store(x)
			t.mu.Unlock()
			return
		}
		var stolenFrom *OULTxn
		if ref.IsTxn() {
			w := t.eng.at(ref)
			life := w.status.LoadLife()
			if ref.SameLife(life) {
				s := life.Status()
				if s == meta.StatusTransient {
					meta.Pause(spin)
					continue
				}
				if oulLive(s) {
					if w.age.Load() > t.age.Load() {
						w.abort(meta.CauseWAW) // W2→W1
						meta.Pause(spin)
						continue
					}
					if !t.eng.steal {
						t.selfAbort(meta.CauseWAW) // W1→W2: plain OUL aborts self
					}
					stolenFrom = w // W1→W2: OUL-Steal takes the lock over
				}
			}
			// Stale or final occupant: that life is over; claimable.
		}
		if stolenFrom != nil {
			// Pin the robbed owner's undo log before taking the lock,
			// then re-verify its life: a pin that lands after the owner
			// finalized could otherwise race its pool's renewal (the
			// pool checks pins before renewing, not after). Final or
			// renewed ⇒ the steal premise is gone; retry from the top.
			stolenFrom.pins.Add(1)
			life := stolenFrom.status.LoadLife()
			if !ref.SameLife(life) || !oulLive(life.Status()) {
				stolenFrom.pins.Add(-1)
				meta.Pause(spin)
				continue
			}
		}
		if !lk.writer.CAS(ref, meta.RefBusy) {
			if stolenFrom != nil {
				stolenFrom.pins.Add(-1)
			}
			meta.Pause(spin)
			continue
		}
		t.mu.Lock()
		if t.doomed.Load() {
			t.mu.Unlock()
			lk.writer.Store(ref) // undo the BUSY parking
			if stolenFrom != nil {
				stolenFrom.pins.Add(-1)
			}
			meta.PanicAbort(meta.CauseNone)
		}
		var stolenRef meta.Ref
		if stolenFrom != nil {
			stolenRef = ref
		}
		t.appendUndo(v, lk, stolenFrom, stolenRef)
		t.killReaders(lk, meta.CauseKilledReader)
		v.Store(x)
		lk.writer.Store(self)
		t.mu.Unlock()
		return
	}
}

// appendUndo records the pre-image of v (once per variable) with the
// lock's previous owner, if this acquisition stole it. The caller has
// already pinned prev (Write's steal path) or inherits an existing
// entry's pin-protected owner (inheritPrevOwner pins again, one pin
// per entry). A duplicate variable entry drops the caller's pin.
func (t *OULTxn) appendUndo(v *meta.Var, lk *oulLock, prev *OULTxn, prevRef meta.Ref) {
	for i := range t.writes {
		if t.writes[i].v == v {
			if prev != nil {
				prev.pins.Add(-1)
			}
			return
		}
	}
	t.writes = append(t.writes, oulWriteEntry{v: v, lock: lk, old: v.Load(), prevOwner: prev, prevRef: prevRef})
}

// inheritPrevOwner finds the previous owner recorded when this
// transaction first acquired lk (a later write to a second variable
// aliased to lk shares the same hand-back target) and takes an
// additional pin for the new entry. The existing entry's pin keeps the
// owner from renewing, so the extra pin cannot race a recycle.
func (t *OULTxn) inheritPrevOwner(lk *oulLock) (*OULTxn, meta.Ref) {
	for i := range t.writes {
		if t.writes[i].lock == lk {
			if po := t.writes[i].prevOwner; po != nil {
				po.pins.Add(1)
			}
			return t.writes[i].prevOwner, t.writes[i].prevRef
		}
	}
	return nil, meta.RefNil
}

// TryCommit implements Algorithm 3 lines 50–52: values are already in
// shared memory, so commit-pending is a single status transition.
func (t *OULTxn) TryCommit() bool {
	if t.status.CAS(meta.StatusActive, meta.StatusPending) {
		if t.doomed.Load() {
			// An aborter doomed us as we went pending; make sure the
			// abort is finalized (it may have lost the status race).
			t.abort(meta.CauseNone)
			t.awaitFinal()
			return false
		}
		return true
	}
	t.awaitFinal()
	return false
}

// Commit implements Algorithm 3 lines 53–56: flip Pending→Committed,
// releasing every lock in one step. Called by the validator once the
// transaction is reachable.
func (t *OULTxn) Commit() bool {
	for spin := 0; ; spin++ {
		if t.status.CAS(meta.StatusPending, meta.StatusCommitted) {
			return true
		}
		s := t.status.Load()
		switch s {
		case meta.StatusCommitted:
			return true
		case meta.StatusAborted:
			return false
		case meta.StatusTransient:
			meta.Pause(spin) // rollback in flight
		default:
			return false // Active: attempt never went pending
		}
	}
}

func (t *OULTxn) awaitFinal() {
	for spin := 0; !t.status.Load().Final(); spin++ {
		meta.Pause(spin)
	}
}

// AbandonAttempt implements meta.Txn.
func (t *OULTxn) AbandonAttempt() {
	if !t.status.Load().Final() {
		t.abort(meta.CauseNone)
	}
	t.awaitFinal()
}

// Cleanup implements meta.Txn: clear reader slots and writer back-
// references so the descriptor can be recycled without leaving claims
// behind (the cleaner role; §6 keeps metadata until the transaction is
// reachable). Only called on committed attempts, whose undo log no
// owner-chain walk will ever read (walks traverse aborted owners), so
// the outgoing steal-chain pins can be released here too.
func (t *OULTxn) Cleanup() {
	self := t.ref()
	for i := range t.readRefs {
		rr := &t.readRefs[i]
		rr.arr.Slots[rr.idx].CAS(self, meta.RefNil)
	}
	for i := range t.writes {
		t.writes[i].lock.writer.CAS(self, meta.RefNil)
	}
	t.readRefs = t.readRefs[:0]
	t.unpinChain()
}
