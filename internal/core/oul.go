package core

import (
	"sync"
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
)

// oulBusy is the BUSY sentinel of Algorithms 2–4: it parks a lock's
// writer word during a short update so concurrent operations retry.
// It is compared by pointer identity and never dereferenced.
var oulBusy = &OULTxn{}

// oulLock is one lock-table record for OUL/OUL-Steal: the single writer
// reference (which doubles as "the transaction that committed this
// version" after the writer commits) plus the bounded visible-reader
// slot array, allocated lazily on first transactional read.
type oulLock struct {
	writer  atomic.Pointer[OULTxn]
	readers meta.LazySlots[OULTxn]
}

// OULEngine implements the Ordered Undo Log algorithm (§6) and, with
// steal enabled, the OUL-Steal variant (§6.1).
type OULEngine struct {
	cfg   meta.EngineConfig
	locks *meta.Table[oulLock]
	steal bool
}

// NewOUL returns a fresh OUL engine for one run.
func NewOUL(cfg meta.EngineConfig) *OULEngine {
	return &OULEngine{cfg: cfg.Normalize(), locks: meta.NewTable[oulLock](cfg.Normalize().TableBits)}
}

// NewOULSteal returns a fresh OUL-Steal engine for one run.
func NewOULSteal(cfg meta.EngineConfig) *OULEngine {
	e := NewOUL(cfg)
	e.steal = true
	return e
}

// Name implements meta.Engine.
func (e *OULEngine) Name() string {
	if e.steal {
		return "OUL-Steal"
	}
	return "OUL"
}

// Mode implements meta.Engine.
func (e *OULEngine) Mode() meta.Mode { return meta.ModeCooperative }

// Stats implements meta.Engine.
func (e *OULEngine) Stats() *meta.Stats { return e.cfg.Stats }

// NewTxn implements meta.Engine.
func (e *OULEngine) NewTxn(age uint64) meta.Txn {
	t := &OULTxn{eng: e, age: age}
	t.status.Store(meta.StatusActive)
	return t
}

// Recycle implements meta.Recycler: scrub finalized descriptors out of
// the lock table so a long-lived pipeline does not retain them. Two
// kinds of references outlive Cleanup: a reader slot keeps pointing at
// an *aborted* attempt until some later reader reuses the slot (on a
// cold record that may be never), and a writer word can retain the
// last committed writer of a record nobody touches again. Both
// transitions below are ones concurrent transactions already perform
// themselves — register treats any final occupant as a free slot, and
// Cleanup does the same committed-writer CAS — so racing with live
// traffic is safe: a finalized status never un-finalizes, and every
// clear is a CAS on the exact descriptor observed.
func (e *OULEngine) Recycle() {
	for i := 0; i < e.locks.Len(); i++ {
		lk := e.locks.Entry(i)
		if w := lk.writer.Load(); w != nil && w != oulBusy && w.status.Load() == meta.StatusCommitted {
			lk.writer.CompareAndSwap(w, nil)
		}
		arr := lk.readers.Peek()
		if arr == nil {
			continue
		}
		for j := range arr.Slots {
			if r := arr.Slots[j].Load(); r != nil && r.status.Load().Final() {
				arr.Slots[j].CompareAndSwap(r, nil)
			}
		}
	}
}

// oulWriteEntry is one undo-log record: the variable, its lock record,
// the value it held just before this transaction's first write to it,
// and (OUL-Steal) the writer the lock was stolen from, so the lock can
// be handed back on abort.
type oulWriteEntry struct {
	v         *meta.Var
	lock      *oulLock
	old       uint64
	prevOwner *OULTxn
}

type oulReadRef struct {
	arr *meta.SlotArray[OULTxn]
	idx int
}

// OULTxn is one OUL/OUL-Steal transaction attempt.
//
// Lifecycle: Active (live, write-through with encounter-time locks) →
// Pending (commit-pending after TryCommit) → Committed, with
// Transient marking an in-progress rollback and Aborted final.
// Commit is O(1): a status flip releases every lock, because locks
// point back at the transaction (§6: "setting the transaction status
// is sufficient to release all the locks ... with a single step").
type OULTxn struct {
	eng     *OULEngine
	age     uint64
	status  meta.StatusWord
	doomed  atomic.Bool
	aborted atomic.Bool // pseudocode tx.aborted: set first thing in rollback

	mu       sync.Mutex // guards writes against aborter-performed rollback
	writes   []oulWriteEntry
	readRefs []oulReadRef
}

// Age implements meta.Txn.
func (t *OULTxn) Age() uint64 { return t.age }

// Doomed implements meta.Txn.
func (t *OULTxn) Doomed() bool { return t.doomed.Load() }

func (t *OULTxn) checkDoom() {
	if t.doomed.Load() {
		meta.PanicAbort(meta.CauseNone)
	}
}

// live reports whether a writer still speculatively owns its locks
// (Active or Pending; a Transient writer is mid-rollback).
func oulLive(s meta.Status) bool {
	return s == meta.StatusActive || s == meta.StatusPending
}

// abort dooms a transaction and, if it can claim the descriptor,
// performs the rollback on the caller's thread (the paper's aborter-
// performed rollback). Never blocks.
func (t *OULTxn) abort(c meta.Cause) bool {
	if t.status.Load().Final() {
		return false // already committed or aborted (Algorithm 3 line 58)
	}
	first := t.doomed.CompareAndSwap(false, true)
	if first {
		t.eng.cfg.Stats.Abort(c)
	}
	for {
		s := t.status.Load()
		if s == meta.StatusCommitted || s == meta.StatusAborted || s == meta.StatusTransient {
			return first
		}
		if t.status.CAS(s, meta.StatusTransient) { // s ∈ {Active, Pending}
			t.rollback()
			t.status.Store(meta.StatusAborted)
			t.eng.cfg.Order.Kick()
			return first
		}
	}
}

func (t *OULTxn) selfAbort(c meta.Cause) {
	t.abort(c)
	meta.PanicAbort(c)
}

// rollback restores this transaction's undo log (Algorithm 3 lines
// 57–75 / Algorithm 4 Rollback). For OUL-Steal, a lock stolen from an
// aborted lower-age writer triggers an iterative walk down the
// previous-owner chain, applying each aborted owner's undo image in
// turn (this replaces the paper's recursive ROLLBACK call; see
// package comment on deadlock avoidance).
func (t *OULTxn) rollback() {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Setting the aborted flag (pseudocode line 59) after acquiring mu
	// guarantees that any owner-chain walker observing aborted==true
	// sees a structurally frozen undo log: appends happen under mu and
	// are rejected once the transaction is doomed.
	t.aborted.Store(true)
	for i := len(t.writes) - 1; i >= 0; i-- {
		e := &t.writes[i]
		if t.lockEntryAfter(i) {
			continue // this lock is handled at its last entry (aliasing)
		}
		if !e.lock.writer.CompareAndSwap(t, oulBusy) {
			// Lock was stolen from us (OUL-Steal) or already handed
			// over: keep the undo entry; whoever holds it will walk the
			// owner chain back through us.
			continue
		}
		// Restore every variable this transaction wrote under the lock
		// record (several may alias to it).
		for j := len(t.writes) - 1; j >= 0; j-- {
			if t.writes[j].lock == e.lock {
				t.writes[j].v.Store(t.writes[j].old)
			}
		}
		// Hand the lock back along the previous-owner chain, applying
		// each *aborted* owner's undo images for this record — those
		// owners skipped it during their own rollback because the lock
		// was stolen from them (Algorithm 4's recursive ROLLBACK,
		// iteratively: ages strictly decrease, so the walk terminates).
		owner := applyAbortedOwners(e.lock, e.prevOwner)
		// Abort speculative readers that may have consumed the
		// rolled-back values (higher age than us).
		t.killReaders(e.lock, meta.CauseCascade)
		for {
			e.lock.writer.Store(owner)
			// Double check: the owner may have aborted between our walk
			// and the publish, with its own rollback finding the lock
			// still busy; re-claim and keep unwinding.
			if owner == nil || !owner.aborted.Load() {
				break
			}
			if !e.lock.writer.CompareAndSwap(owner, oulBusy) {
				break // someone else already took the record over
			}
			owner = applyAbortedOwners(e.lock, owner)
		}
	}
}

// applyAbortedOwners applies the undo images recorded for lk by start
// and every aborted owner below it, returning the first live/committed
// owner (or nil). Aborted owners' undo logs are frozen (the aborted
// flag is set under their descriptor lock), so reading them races with
// nothing.
func applyAbortedOwners(lk *oulLock, start *OULTxn) *OULTxn {
	owner := start
	for owner != nil && owner.aborted.Load() {
		var next *OULTxn
		for k := len(owner.writes) - 1; k >= 0; k-- {
			oe := &owner.writes[k]
			if oe.lock == lk {
				oe.v.Store(oe.old)
				next = oe.prevOwner
			}
		}
		owner = next
	}
	return owner
}

// lockEntryAfter reports whether writes[i].lock appears again at a
// higher index (rollback handles each lock record once, at its last
// entry).
func (t *OULTxn) lockEntryAfter(i int) bool {
	for j := i + 1; j < len(t.writes); j++ {
		if t.writes[j].lock == t.writes[i].lock {
			return true
		}
	}
	return false
}

// findUndo returns this transaction's undo entry for v, if any. Called
// on finalized (aborted) transactions during owner-chain walks; the
// writes slice is immutable by then.
func (t *OULTxn) findUndo(v *meta.Var) *oulWriteEntry {
	for i := range t.writes {
		if t.writes[i].v == v {
			return &t.writes[i]
		}
	}
	return nil
}

// killReaders aborts every visible reader of lk with a higher age
// (R2→W1 during writes, cascade during rollback).
func (t *OULTxn) killReaders(lk *oulLock, c meta.Cause) {
	arr := lk.readers.Peek()
	if arr == nil {
		return
	}
	for i := range arr.Slots {
		r := arr.Slots[i].Load()
		if r != nil && r != t && r.age > t.age && oulLive(r.status.Load()) {
			r.abort(c)
		}
	}
}

// Read implements Algorithm 2 lines 1–22: abort a higher-age
// speculative writer (W2→R1), otherwise register as a visible reader
// (claiming a bounded slot), re-check the writer, and read in place —
// which naturally forwards values written by live lower-age writers.
func (t *OULTxn) Read(v *meta.Var) uint64 {
	lk := t.eng.locks.Of(v)
	for spin := 0; ; spin++ {
		t.checkDoom()
		w := lk.writer.Load()
		if w == oulBusy {
			meta.Pause(spin)
			continue
		}
		if w != nil && w != t {
			s := w.status.Load()
			if s == meta.StatusTransient {
				meta.Pause(spin) // rollback in flight: value unstable
				continue
			}
			if oulLive(s) && w.age > t.age {
				w.abort(meta.CauseRAW) // W2→R1
				meta.Pause(spin)
				continue
			}
		}
		if !t.register(lk) {
			meta.PanicAbort(meta.CauseNone) // doomed while spinning for a slot
		}
		if lk.writer.Load() != w { // writer changed while registering
			meta.Pause(spin)
			continue
		}
		return v.Load()
	}
}

// register claims a visible-reader slot on lk (Algorithm 2 lines 9–17).
// A slot is free when empty or when its occupant is final. If every
// slot stays occupied past the spin budget, the reader dooms the
// highest-age occupant above its own age — the bounded reader array
// must never deadlock the commit frontier (a lower-age reader blocked
// by higher-age occupants that cannot commit before it). Returns
// false only if this transaction is doomed while waiting for a slot.
func (t *OULTxn) register(lk *oulLock) bool {
	arr := lk.readers.Get(t.eng.cfg.MaxReaders)
	for spin := 0; ; spin++ {
		for i := range arr.Slots {
			cur := arr.Slots[i].Load()
			if cur == t {
				return true // already visible on this lock
			}
			if cur == nil || cur.status.Load().Final() {
				if arr.Slots[i].CompareAndSwap(cur, t) {
					t.readRefs = append(t.readRefs, oulReadRef{arr: arr, idx: i})
					return true
				}
			}
		}
		if t.doomed.Load() {
			return false
		}
		if spin > 0 && spin%t.eng.cfg.SpinBudget == 0 {
			t.evictSlot(arr)
		}
		meta.Pause(spin)
	}
}

// evictSlot dooms the highest-age live occupant older than t so a
// lower-age reader can always register (age-based slot priority).
func (t *OULTxn) evictSlot(arr *meta.SlotArray[OULTxn]) {
	var victim *OULTxn
	for i := range arr.Slots {
		cur := arr.Slots[i].Load()
		if cur != nil && cur != t && cur.age > t.age && oulLive(cur.status.Load()) {
			if victim == nil || cur.age > victim.age {
				victim = cur
			}
		}
	}
	if victim != nil {
		victim.abort(meta.CauseBusy)
	}
}

// Write implements Algorithm 2 lines 23–49 (OUL) and Algorithm 4 lines
// 23–50 (OUL-Steal): acquire the write lock resolving conflicts by
// age — aborting a higher-age holder (W2→W1), aborting ourselves on a
// lower-age holder (W1→W2, plain OUL) or stealing the lock from it
// (OUL-Steal) — then abort higher-age visible readers (R2→W1) and
// write through.
func (t *OULTxn) Write(v *meta.Var, x uint64) {
	lk := t.eng.locks.Of(v)
	for spin := 0; ; spin++ {
		t.checkDoom()
		w := lk.writer.Load()
		if w == oulBusy {
			meta.Pause(spin)
			continue
		}
		if w == t {
			// Already own the lock (possibly writing a second variable
			// aliased to it).
			t.mu.Lock()
			if t.doomed.Load() {
				t.mu.Unlock()
				meta.PanicAbort(meta.CauseNone)
			}
			t.appendUndo(v, lk, t.inheritPrevOwner(lk))
			t.killReaders(lk, meta.CauseKilledReader)
			v.Store(x)
			t.mu.Unlock()
			return
		}
		var stolenFrom *OULTxn
		if w != nil {
			s := w.status.Load()
			if s == meta.StatusTransient {
				meta.Pause(spin)
				continue
			}
			if oulLive(s) {
				if w.age > t.age {
					w.abort(meta.CauseWAW) // W2→W1
					meta.Pause(spin)
					continue
				}
				if !t.eng.steal {
					t.selfAbort(meta.CauseWAW) // W1→W2: plain OUL aborts self
				}
				stolenFrom = w // W1→W2: OUL-Steal takes the lock over
			}
		}
		if !lk.writer.CompareAndSwap(w, oulBusy) {
			meta.Pause(spin)
			continue
		}
		t.mu.Lock()
		if t.doomed.Load() {
			t.mu.Unlock()
			lk.writer.Store(w) // undo the BUSY parking
			meta.PanicAbort(meta.CauseNone)
		}
		t.appendUndo(v, lk, stolenFrom)
		t.killReaders(lk, meta.CauseKilledReader)
		v.Store(x)
		lk.writer.Store(t)
		t.mu.Unlock()
		return
	}
}

// appendUndo records the pre-image of v (once per variable) with the
// lock's previous owner, if this acquisition stole it.
func (t *OULTxn) appendUndo(v *meta.Var, lk *oulLock, prev *OULTxn) {
	for i := range t.writes {
		if t.writes[i].v == v {
			return
		}
	}
	t.writes = append(t.writes, oulWriteEntry{v: v, lock: lk, old: v.Load(), prevOwner: prev})
}

// inheritPrevOwner finds the previous owner recorded when this
// transaction first acquired lk (a later write to a second variable
// aliased to lk shares the same hand-back target).
func (t *OULTxn) inheritPrevOwner(lk *oulLock) *OULTxn {
	for i := range t.writes {
		if t.writes[i].lock == lk {
			return t.writes[i].prevOwner
		}
	}
	return nil
}

// TryCommit implements Algorithm 3 lines 50–52: values are already in
// shared memory, so commit-pending is a single status transition.
func (t *OULTxn) TryCommit() bool {
	if t.status.CAS(meta.StatusActive, meta.StatusPending) {
		if t.doomed.Load() {
			// An aborter doomed us as we went pending; make sure the
			// abort is finalized (it may have lost the status race).
			t.abort(meta.CauseNone)
			t.awaitFinal()
			return false
		}
		return true
	}
	t.awaitFinal()
	return false
}

// Commit implements Algorithm 3 lines 53–56: flip Pending→Committed,
// releasing every lock in one step. Called by the validator once the
// transaction is reachable.
func (t *OULTxn) Commit() bool {
	for spin := 0; ; spin++ {
		if t.status.CAS(meta.StatusPending, meta.StatusCommitted) {
			return true
		}
		s := t.status.Load()
		switch s {
		case meta.StatusCommitted:
			return true
		case meta.StatusAborted:
			return false
		case meta.StatusTransient:
			meta.Pause(spin) // rollback in flight
		default:
			return false // Active: attempt never went pending
		}
	}
}

func (t *OULTxn) awaitFinal() {
	for spin := 0; !t.status.Load().Final(); spin++ {
		meta.Pause(spin)
	}
}

// AbandonAttempt implements meta.Txn.
func (t *OULTxn) AbandonAttempt() {
	if !t.status.Load().Final() {
		t.abort(meta.CauseNone)
	}
	t.awaitFinal()
}

// Cleanup implements meta.Txn: clear reader slots and writer back-
// references so committed descriptors can be collected (the cleaner
// role; §6 keeps metadata until the transaction is reachable).
func (t *OULTxn) Cleanup() {
	for _, r := range t.readRefs {
		r.arr.Slots[r.idx].CompareAndSwap(t, nil)
	}
	for i := range t.writes {
		t.writes[i].lock.writer.CompareAndSwap(t, nil)
	}
	t.readRefs = nil
	t.writes = nil
}
