package core

import (
	"testing"

	"github.com/orderedstm/ostm/internal/meta"
)

// TestOULStaleSlotRegistrationIgnored: a reader-slot reference from a
// finalized life must be invisible to the protocol once the descriptor
// is renewed — the writer-side kill must not doom the descriptor's new
// life through the dead registration (the reader-side half of the ABA
// the generation stamps prevent), and the slot must be reclaimable.
func TestOULStaleSlotRegistrationIgnored(t *testing.T) {
	eng := NewOUL(cfg())
	v := meta.NewVar(0)
	r1 := eng.NewTxn(5).(*OULTxn)
	if r1.Read(v) != 0 {
		t.Fatal("setup read failed")
	}
	r1.abort(meta.CauseBusy)
	r1.AbandonAttempt()
	// Renew the descriptor in place, deliberately leaving the life-0
	// registration in the slot (the pool normally scrubs at Retire, but
	// a lost CAS or an abort racing the sweep can leave one behind).
	r1.readRefs = r1.readRefs[:0]
	r1.doomed.Store(false)
	r1.aborted.Store(false)
	r1.age.Store(9)
	r1.gen = r1.status.Renew()

	w := eng.NewTxn(1).(*OULTxn)
	w.Write(v, 7) // kills visible readers with age > 1
	if r1.Doomed() {
		t.Fatal("stale slot registration was honored: renewed descriptor doomed")
	}
	// The stale slot is free for a new reader.
	r2 := eng.NewTxn(2).(*OULTxn)
	r2.Read(v)
	arr := eng.locks.Of(v).readers.Peek()
	foundStale, foundNew := false, false
	for i := range arr.Slots {
		switch arr.Slots[i].Load() {
		case meta.MakeRef(r1.idx, 0):
			foundStale = true
		case r2.ref():
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatal("new reader not registered")
	}
	if foundStale && len(arr.Slots) > 1 {
		// With more than one slot the claim may have landed elsewhere;
		// that is fine — the stale ref just must not be load-bearing.
		t.Log("stale ref still parked (unclaimed slot)")
	}
}

// TestOULStealChainPinsDescriptor: a descriptor whose undo log is
// still referenced by a steal chain (pins > 0) must not be renewed by
// the pool until the chain holder itself recycles — renewing earlier
// would let the owner-chain walk read the next life's undo log.
func TestOULStealChainPinsDescriptor(t *testing.T) {
	eng := NewOULSteal(cfg())
	pool := eng.NewPool().(*oulPool)
	v := meta.NewVar(100)

	t0 := pool.NewTxn(0).(*OULTxn)
	t0.Write(v, 1)
	t1 := pool.NewTxn(1).(*OULTxn)
	t1.Write(v, 2) // steals the lock from t0, pinning it
	if got := t0.pins.Load(); got != 1 {
		t.Fatalf("steal must pin the robbed owner: pins = %d", got)
	}

	// The robbed owner aborts while its lock is stolen: it keeps the
	// undo entry (the chain holder is responsible for it).
	t0.abort(meta.CauseWAW)
	t0.AbandonAttempt()
	pool.Retire(t0)

	// The pool must refuse to renew the pinned descriptor.
	x := pool.NewTxn(3).(*OULTxn)
	if x == t0 {
		t.Fatal("pinned descriptor renewed while a steal chain references it")
	}

	// The chain holder aborts, walking t0's undo log back in.
	t1.abort(meta.CauseWAW)
	t1.AbandonAttempt()
	if v.Load() != 100 {
		t.Fatalf("chain walk restored %d, want 100", v.Load())
	}
	pool.Retire(t1)

	// Renewing the chain holder releases its pins…
	y := pool.NewTxn(4).(*OULTxn)
	if y != t1 {
		t.Fatalf("expected the retired chain holder back from the pool")
	}
	if got := t0.pins.Load(); got != 0 {
		t.Fatalf("renewing the holder must unpin the chain: pins = %d", got)
	}
	// …after which the parked descriptor returns to circulation.
	z := pool.NewTxn(5).(*OULTxn)
	if z != t0 {
		t.Fatal("unpinned descriptor did not return from the parked list")
	}
	if z.status.Gen() == 0 || !z.ref().SameLife(z.status.LoadLife()) {
		t.Fatal("returned descriptor not renewed consistently")
	}
}
