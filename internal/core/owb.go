package core

import (
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
)

// owbLock is one lock-table record for OWB: a version counter plus a
// reference to the exposing writer (nil when unlocked). The version is
// incremented once per expose of the record; it never moves backwards,
// including on abort (readers of a reverted value are killed through
// the dependency list, not through versions).
type owbLock struct {
	version atomic.Uint64
	writer  atomic.Pointer[OWBTxn]
}

// OWBEngine implements the Ordered Write Back algorithm (§5).
type OWBEngine struct {
	cfg   meta.EngineConfig
	locks *meta.Table[owbLock]
	depot meta.Depot[OWBTxn]
}

// NewOWB returns a fresh OWB engine for one run.
func NewOWB(cfg meta.EngineConfig) *OWBEngine {
	cfg = cfg.Normalize()
	return &OWBEngine{cfg: cfg, locks: meta.NewTable[owbLock](cfg.TableBits)}
}

// Name implements meta.Engine.
func (e *OWBEngine) Name() string { return "OWB" }

// Mode implements meta.Engine.
func (e *OWBEngine) Mode() meta.Mode { return meta.ModeCooperative }

// Stats implements meta.Engine.
func (e *OWBEngine) Stats() *meta.Stats { return e.cfg.Stats }

// NewTxn implements meta.Engine: a fresh, never-recycled descriptor
// (tests and non-pooled paths; the run-loop allocates through NewPool).
func (e *OWBEngine) NewTxn(age uint64) meta.Txn {
	t := &OWBTxn{eng: e, cell: e.cfg.Stats.DefaultCell()}
	t.age.Store(age)
	return t
}

// NewPool implements meta.PoolEngine: a worker-local freelist backed by
// the engine-wide depot, with its own stats cell.
//
// OWB needs no generation-stamped lock words: its lock claims CAS only
// from nil (conflicting holders are aborted and release their own
// locks), and commit, abort and cleanup all withdraw the descriptor's
// pointer from every lock word before the attempt finalizes — so a
// pointer in a word always names the life that published it. The one
// cross-life hazard is the dependency double-check in Read, which
// compares packed (generation, status) snapshots instead of bare
// statuses (see the forwarding path).
func (e *OWBEngine) NewPool() meta.TxnPool {
	return &owbPool{eng: e, cache: meta.NewCache(&e.depot), cell: e.cfg.Stats.NewCell()}
}

// owbPool recycles finalized descriptors for one run-loop goroutine,
// reusing the reads/writes backing arrays.
type owbPool struct {
	eng   *OWBEngine
	cache *meta.Cache[OWBTxn]
	cell  *meta.StatsCell
}

// NewTxn implements meta.TxnPool.
func (p *owbPool) NewTxn(age uint64) meta.Txn {
	t := p.cache.Get()
	if t == nil {
		t = &OWBTxn{eng: p.eng, cell: p.cell}
		t.age.Store(age)
		return t
	}
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.deps.Reset()
	t.exposed = false
	t.doomed.Store(false)
	t.age.Store(age)
	t.status.Renew()
	return t
}

// Retire implements meta.TxnPool.
func (p *owbPool) Retire(x meta.Txn) {
	t, ok := x.(*OWBTxn)
	if !ok || t.eng != p.eng || !t.status.Load().Final() {
		return
	}
	p.cache.Put(t)
}

type owbReadEntry struct {
	v    *meta.Var
	lock *owbLock
	ver  uint64
}

type owbWriteEntry struct {
	v    *meta.Var
	lock *owbLock
	val  uint64 // new value before expose; swapped with the old value at expose
}

// OWBTxn is one OWB transaction attempt.
//
// Lifecycle: Active (live) → [TryCommit: Transient → Active+exposed]
// → [Commit: Transient → Committed], with Aborted reachable from any
// non-final state. While exposed, the attempt holds the versioned
// locks of its write-set, its new values are published in shared
// memory, and higher-age readers that consume them register in deps.
type OWBTxn struct {
	eng     *OWBEngine
	cell    *meta.StatsCell // set once at allocation
	age     atomic.Uint64   // atomic: stale observers race pool renewal
	status  meta.StatusWord
	doomed  atomic.Bool
	exposed bool // written only while the descriptor is owned (Transient)

	reads  []owbReadEntry
	writes []owbWriteEntry
	deps   meta.DepList[*OWBTxn]
}

// Age implements meta.Txn.
func (t *OWBTxn) Age() uint64 { return t.age.Load() }

// Doomed implements meta.Txn.
func (t *OWBTxn) Doomed() bool { return t.doomed.Load() }

func (t *OWBTxn) checkDoom() {
	if t.doomed.Load() {
		meta.PanicAbort(meta.CauseNone) // cause was counted by the doom setter
	}
}

// selfAbort finalizes the attempt from its own goroutine and unwinds.
func (t *OWBTxn) selfAbort(c meta.Cause) {
	if t.doomed.CompareAndSwap(false, true) {
		t.cell.Abort(c)
	}
	if t.status.CAS(meta.StatusActive, meta.StatusTransient) {
		t.finalizeAbort()
	}
	meta.PanicAbort(c)
}

// abort dooms another attempt (or this one, from commit paths). It
// never blocks: if the victim is inside a critical section the victim
// finalizes its own abort on exit. Returns true if this call was the
// one that doomed the victim.
func (t *OWBTxn) abort(c meta.Cause) bool {
	if t.status.Load().Final() {
		return false // already committed or aborted (Algorithm 1 lines 25–26)
	}
	first := t.doomed.CompareAndSwap(false, true)
	if first {
		t.cell.Abort(c)
	}
	if t.status.CAS(meta.StatusActive, meta.StatusTransient) {
		t.finalizeAbort()
	}
	return first
}

// finalizeAbort runs with the descriptor owned (status Transient):
// cascade to dependents, revert exposed values, release locks.
func (t *OWBTxn) finalizeAbort() {
	t.deps.ForEach(func(d *OWBTxn) { d.abort(meta.CauseCascade) })
	if t.exposed {
		t.revertExposed()
		t.exposed = false
	}
	t.status.Store(meta.StatusAborted)
	t.eng.cfg.Order.Kick()
}

// revertExposed restores the pre-expose values (they were swapped into
// the write entries at expose time) and releases the locks. Values are
// restored for every entry before any lock is released: several
// variables may alias to one lock record, and releasing at the first
// entry would orphan the rest. Versions deliberately stay bumped; see
// owbLock.
func (t *OWBTxn) revertExposed() {
	for i := range t.writes {
		e := &t.writes[i]
		if e.lock.writer.Load() == t {
			old := e.v.Load()
			e.v.Store(e.val)
			e.val = old
		}
	}
	for i := range t.writes {
		t.writes[i].lock.writer.CompareAndSwap(t, nil)
	}
}

// Read implements Algorithm 1 lines 1–20 with the forwarding protocol:
// a value exposed by a lower-age writer may be consumed after
// registering in the writer's dependency list (W1→R2); a higher-age
// exposing writer is aborted (W2→R1).
func (t *OWBTxn) Read(v *meta.Var) uint64 {
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].v == v {
			return t.writes[i].val // read-your-own-write from the buffer
		}
	}
	lk := t.eng.locks.Of(v)
	for spin := 0; ; spin++ {
		t.checkDoom()
		ver := lk.version.Load()
		w := lk.writer.Load()
		if w != nil && w != t {
			if w.age.Load() > t.age.Load() {
				// W2→R1: the speculative writer has a higher age; abort
				// it and wait for the lock to clear.
				w.abort(meta.CauseRAW)
				meta.Pause(spin)
				continue
			}
			// W1→R2: wait out the writer's critical section, then
			// register as a dependent before consuming its value.
			wlife := w.status.LoadLife()
			switch wlife.Status() {
			case meta.StatusTransient:
				meta.Pause(spin)
				continue
			case meta.StatusAborted:
				meta.Pause(spin)
				continue // lock will clear; re-read
			case meta.StatusCommitted:
				// value is final; no dependency needed
			default: // Active (exposed)
				w.deps.Push(t)
				// Double check after registration (Algorithm 1 line 12):
				// the writer may have aborted while we registered. Wait
				// out a Transient window (it may be the writer's own
				// commit); a final Aborted state kills us, and so does a
				// generation change — the life we registered against is
				// over and its outcome (and our dependency node) can no
				// longer be trusted, so treat it as a cascade.
				for dspin := 0; ; dspin++ {
					l := w.status.LoadLife()
					if l.Gen() != wlife.Gen() {
						t.selfAbort(meta.CauseCascade)
					}
					if l.Status() == meta.StatusTransient {
						meta.Pause(dspin)
						continue
					}
					if l.Status() == meta.StatusAborted {
						t.selfAbort(meta.CauseCascade)
					}
					break
				}
			}
		}
		val := v.Load()
		if lk.version.Load() != ver || lk.writer.Load() != w {
			meta.Pause(spin)
			continue // torn (version, writer, value) snapshot; retry
		}
		// Keep the read-set consistent during execution
		// (Algorithm 1 line 17).
		if !t.validateReads() {
			t.selfAbort(meta.CauseValidation)
		}
		t.reads = append(t.reads, owbReadEntry{v: v, lock: lk, ver: ver})
		return val
	}
}

// Write buffers the update (Algorithm 1 lines 21–23).
func (t *OWBTxn) Write(v *meta.Var, x uint64) {
	t.checkDoom()
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].v == v {
			t.writes[i].val = x
			return
		}
	}
	t.writes = append(t.writes, owbWriteEntry{v: v, lock: t.eng.locks.Of(v), val: x})
}

// validateReads is the read-set validation (Algorithm 1 lines 44–52).
// The paper exempts any entry whose lock is currently held; taken
// literally that can mask a committed overwrite behind a higher-age
// holder, so we only exempt locks held by this transaction itself
// (whose own expose bumped the version by exactly one). See DESIGN.md.
func (t *OWBTxn) validateReads() bool {
	for i := range t.reads {
		e := &t.reads[i]
		ver := e.lock.version.Load()
		if ver == e.ver {
			continue
		}
		if e.lock.writer.Load() == t && ver == e.ver+1 {
			continue // bumped by our own expose
		}
		return false
	}
	return true
}

// lockSeen reports whether writes[0:i] already covers writes[i].lock
// (several buffered variables can alias to one lock record; the record
// is locked and version-bumped once).
func (t *OWBTxn) lockSeen(i int) bool {
	for j := 0; j < i; j++ {
		if t.writes[j].lock == t.writes[i].lock {
			return true
		}
	}
	return false
}

// TryCommit is the expose step (Algorithm 1 lines 62–94): validate the
// read-set, acquire the write-set locks (resolving lock conflicts by
// age), publish the buffered values, and re-validate reads that the
// transaction itself holds locked.
func (t *OWBTxn) TryCommit() bool {
	if !t.status.CAS(meta.StatusActive, meta.StatusTransient) {
		t.awaitFinal()
		return false
	}
	if t.doomed.Load() {
		t.finalizeAbort()
		return false
	}
	if !t.validateReads() {
		t.cell.Abort(meta.CauseValidation)
		t.doomed.Store(true)
		t.finalizeAbort()
		return false
	}
	// Acquire write-set locks.
	for i := range t.writes {
		e := &t.writes[i]
		if t.lockSeen(i) {
			continue
		}
		for spin := 0; ; spin++ {
			if t.doomed.Load() {
				t.releaseLocks(i)
				t.finalizeAbort()
				return false
			}
			w := e.lock.writer.Load()
			if w == t {
				break
			}
			if w != nil {
				if t.age.Load() < w.age.Load() {
					// W2→W1: we have priority; abort the holder and wait
					// for the lock to clear.
					w.abort(meta.CauseLockedWrite)
					meta.Pause(spin)
					continue
				}
				// W1→W2: a lower-age transaction holds the lock; abort
				// ourselves (write after write).
				t.cell.Abort(meta.CauseWAW)
				t.doomed.Store(true)
				t.releaseLocks(i)
				t.finalizeAbort()
				return false
			}
			if e.lock.writer.CompareAndSwap(nil, t) {
				break
			}
			meta.Pause(spin)
		}
	}
	// Publish: bump each distinct lock version once, swap values so the
	// entry retains the pre-expose value for rollback.
	for i := range t.writes {
		e := &t.writes[i]
		if !t.lockSeen(i) {
			e.lock.version.Add(1)
		}
		old := e.v.Load()
		e.v.Store(e.val)
		e.val = old
	}
	t.exposed = true
	// Validate reads overlapping our own write-set now that they are
	// locked (Algorithm 1 lines 53–61): their version must be exactly
	// one past the read version, otherwise a concurrent expose/commit
	// slipped in between the read and our lock acquisition.
	for i := range t.reads {
		e := &t.reads[i]
		if e.lock.writer.Load() == t && e.lock.version.Load() != e.ver+1 {
			t.cell.Abort(meta.CauseValidation)
			t.doomed.Store(true)
			t.finalizeAbort()
			return false
		}
	}
	if t.doomed.Load() {
		t.finalizeAbort()
		return false
	}
	t.status.Store(meta.StatusActive) // transaction is now exposed
	return true
}

// releaseLocks releases locks acquired for writes[0:n] during a failed
// acquisition pass (nothing was published yet).
func (t *OWBTxn) releaseLocks(n int) {
	for i := 0; i < n; i++ {
		t.writes[i].lock.writer.CompareAndSwap(t, nil)
	}
}

// Commit finalizes a reachable exposed transaction (Algorithm 1 lines
// 95–108): re-validate the read-set, release locks, become committed.
// Called by the executor's validator role once every lower age has
// committed.
func (t *OWBTxn) Commit() bool {
	for spin := 0; ; spin++ {
		s := t.status.Load()
		switch s {
		case meta.StatusAborted:
			return false
		case meta.StatusCommitted:
			return true
		case meta.StatusTransient:
			meta.Pause(spin) // an aborter owns the descriptor; wait it out
			continue
		}
		if t.status.CAS(meta.StatusActive, meta.StatusTransient) {
			break
		}
	}
	if t.doomed.Load() {
		t.finalizeAbort()
		return false
	}
	if !t.validateReads() {
		t.cell.Abort(meta.CauseValidation)
		t.doomed.Store(true)
		t.finalizeAbort()
		return false
	}
	for i := range t.writes {
		t.writes[i].lock.writer.CompareAndSwap(t, nil)
	}
	t.status.Store(meta.StatusCommitted)
	t.eng.cfg.Order.Kick()
	return true
}

// awaitFinal spins until the attempt reaches a final state (used when
// an operation finds the descriptor claimed by an aborter).
func (t *OWBTxn) awaitFinal() {
	for spin := 0; !t.status.Load().Final(); spin++ {
		meta.Pause(spin)
	}
}

// AbandonAttempt implements meta.Txn: make sure the attempt is rolled
// back and final after an abort unwound the body.
func (t *OWBTxn) AbandonAttempt() {
	if !t.status.Load().Final() {
		if t.doomed.CompareAndSwap(false, true) {
			t.cell.Abort(meta.CauseNone)
		}
		if t.status.CAS(meta.StatusActive, meta.StatusTransient) {
			t.finalizeAbort()
		}
	}
	t.awaitFinal()
}

// Cleanup implements meta.Txn (the cleaner role): drop metadata held by
// a committed, reachable transaction. Backing arrays are kept for the
// descriptor's next life.
func (t *OWBTxn) Cleanup() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	t.deps.Reset()
}
