// Package core implements the paper's three contributions: the Ordered
// Write Back algorithm (OWB, §5), the Ordered Undo Log algorithm
// (OUL, §6) and its lock-stealing variant (OUL-Steal, §6.1).
//
// All three deploy the cooperative ordered execution model of §4:
// transactions may expose uncommitted state to higher-age transactions
// (data forwarding), conflicts are resolved by age (the predefined
// commit order, ACO), and aborts cascade along the chain of consumers
// of exposed data. The executor (package stm) drives them in
// ModeCooperative: workers expose transactions out of order and a
// flat-combining validator role commits them strictly in age order
// (Algorithm 5 of the paper).
//
// # Doom flags instead of blocking aborts
//
// The paper's pseudocode lets an aborter spin while its victim is in a
// TRANSIENT critical section. A direct transcription can deadlock
// (cycles of aborters waiting on each other's critical sections), so
// this implementation uses a sticky per-attempt doom flag: Abort sets
// the flag (counting the abort cause exactly once), then tries to
// claim the descriptor and perform the rollback itself; if the victim
// is inside its own critical section the claim fails and the victim is
// responsible for finalizing its own abort on exit. No abort operation
// ever blocks, which makes the wait-for graph acyclic.
//
// # Descriptor lifetime
//
// One descriptor is allocated per attempt and never reused. Stale
// descriptor pointers left in lock words, reader slots or dependency
// lists therefore always refer to finalized attempts; Go's garbage
// collector plays the role of the epoch-based reclamation scheme a
// C/C++ implementation would need, and ABA on descriptor pointers is
// structurally impossible.
//
// Engines used to be torn down after every batch, which bounded how
// long a stale reference could pin a descriptor. A long-lived
// stm.Pipeline reuses one engine for an unbounded stream, so OUL (the
// only engine whose reader slots and writer words can retain finalized
// descriptors indefinitely on cold records) additionally implements
// meta.Recycler: an epoch sweep clears those references so retained
// memory tracks the in-flight window, not the stream length. OWB needs
// no sweep — its commit, abort and cleanup paths already clear every
// lock word and dependency reference they published.
package core
