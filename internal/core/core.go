// Package core implements the paper's three contributions: the Ordered
// Write Back algorithm (OWB, §5), the Ordered Undo Log algorithm
// (OUL, §6) and its lock-stealing variant (OUL-Steal, §6.1).
//
// All three deploy the cooperative ordered execution model of §4:
// transactions may expose uncommitted state to higher-age transactions
// (data forwarding), conflicts are resolved by age (the predefined
// commit order, ACO), and aborts cascade along the chain of consumers
// of exposed data. The executor (package stm) drives them in
// ModeCooperative: workers expose transactions out of order and a
// flat-combining validator role commits them strictly in age order
// (Algorithm 5 of the paper).
//
// # Doom flags instead of blocking aborts
//
// The paper's pseudocode lets an aborter spin while its victim is in a
// TRANSIENT critical section. A direct transcription can deadlock
// (cycles of aborters waiting on each other's critical sections), so
// this implementation uses a sticky per-attempt doom flag: Abort sets
// the flag (counting the abort cause exactly once), then tries to
// claim the descriptor and perform the rollback itself; if the victim
// is inside its own critical section the claim fails and the victim is
// responsible for finalizing its own abort on exit. No abort operation
// ever blocks, which makes the wait-for graph acyclic.
//
// # Descriptor lifetime
//
// Descriptors are recycled through per-worker freelists
// (meta.TxnPool); one descriptor serves many attempts, each attempt
// being one *life* delimited by meta.StatusWord.Renew. The ABA
// immunity the original one-descriptor-per-attempt scheme provided is
// restored with generation stamps: OUL's lock words and reader slots
// hold packed meta.Refs (registry index + publishing generation), so
// a stale reference from a finished life is detected exactly and a
// claim CAS can never land on a recycled descriptor's new
// acquisition. OUL-Steal's owner-chain walks, which read finalized
// descriptors' undo logs, are protected by pin counts instead: a
// steal pins the robbed owner (pin, then re-verify its life), and a
// descriptor is only renewed once its pins drain. OWB keeps pointer
// lock words — it only claims from nil and withdraws its pointer from
// every word before finalizing — but its dependency double-check
// compares packed (generation, status) snapshots so a reader cannot
// mistake a writer's next life for the one it registered against.
// See DESIGN.md §8.
//
// Engines used to be torn down after every batch, which bounded how
// long a stale reference could park in cold metadata. A long-lived
// stm.Pipeline reuses one engine for an unbounded stream, so OUL
// additionally implements meta.Recycler: an epoch sweep clears
// committed writers and dead reader-slot registrations off cold
// records. OWB needs no sweep — its commit, abort and cleanup paths
// already clear every lock word and dependency reference they
// published.
package core
