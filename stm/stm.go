// Package stm is the public API of the OSTM library: ordered software
// transactional memory, reproducing "Processing Transactions in a
// Predefined Order" (Saad et al., PPoPP 2019).
//
// The library executes a set of transactions whose commit order is
// fixed *before* execution (the Age-based Commit Order, ACO): the
// transaction given age i must appear to execute exactly i-th, as in a
// sequential run, no matter how the speculative parallel execution
// interleaves. This is the execution model needed by speculative loop
// parallelization (each iteration is a transaction, ages are iteration
// indices) and by state-machine replication (ages are consensus slot
// numbers).
//
// # Quick start
//
// The typed API (v2) is the recommended surface: typed variables
// (TVar), value-returning transactions (Func, SubmitFunc, TicketOf)
// and context-aware waits, all compiled down to the word-level core.
//
//	balance := stm.NewTVar[uint64](100)
//	p, _ := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 8})
//	t, _ := stm.SubmitFunc(p, func(tx stm.Tx, age int) uint64 {
//	    b := stm.ReadT(tx, balance) + 1
//	    stm.WriteT(tx, balance, b)
//	    return b // latched at commit; speculative attempts are discarded
//	})
//	newBalance, err := t.Value() // resolves in commit order
//	...
//	err = p.Close()
//
// Batch (one-shot, one shared body — the paper's model):
//
//	counter := stm.NewVar(0)
//	ex, _ := stm.NewExecutor(stm.Config{Algorithm: stm.OUL, Workers: 8})
//	res, err := ex.Run(1000, func(tx stm.Tx, age int) {
//	    tx.Write(counter, tx.Read(counter)+1)
//	})
//
// Both front-ends drive the same execution core; see DESIGN.md. The
// word-level API (Var, Tx.Read/Tx.Write, Pipeline.Submit) remains the
// substrate and stays fully supported; the typed layer compiles down
// to it rather than replacing it (the former float64 bit-casting
// helpers are the one retirement — TVar[float64] and AddT subsume
// them). To scale past a single commit frontier, stm/shard
// runs one pipeline per data partition behind the same ordered-Submit
// surface (transactions then declare their variables via Access). To
// survive a crash, attach a write-ahead log (stm/wal) with Config.WAL
// and a Codec: the pipeline logs each committed age's input payload
// in order, and recovery deterministically replays the surviving
// prefix (SubmitPayload/SubmitEncoded, wal.Recover; typed requests
// and results go through CodecOf and SubmitPayloadT/SubmitEncodedT).
//
// Transaction bodies must access shared state only through the
// transaction handle (tx.Read/tx.Write, or ReadT/WriteT over typed
// variables), and must be deterministic functions of (age, memory):
// the executor re-executes bodies after aborts, possibly many times.
// Speculative faults (panics caused by reading an inconsistent
// snapshot) are sandboxed and retried; genuine faults are returned as
// a *Fault error.
//
// # The submit matrix
//
// Every way into a Pipeline is the product of three axes — form
// (untyped body, encoded payload, application payload), arity (one or
// batch) and context (plain or ctx-aware) — and stm and stm/shard
// expose the same grid:
//
//	                 one                      batch
//	body      Submit / SubmitCtx        SubmitBatch / SubmitBatchCtx
//	payload   SubmitPayload[Ctx]        SubmitPayloadBatch[Ctx]
//	encoded   SubmitEncoded[Ctx]        SubmitEncodedBatch[Ctx]
//
// The ctx variants are the canonical cores: every non-ctx name is a
// thin wrapper passing a nil context. A context is consulted only
// before an age is assigned (refusal wraps ErrCanceled); an accepted
// age is never withdrawn — cancel a wait, not a commitment. Batch
// variants assign consecutive ages under one stream-lock hold and
// return one ticket per element; on an early stop the unsharded forms
// return the accepted prefix, the sharded forms a full-length slice
// with nil at refused positions (their tickets are index-addressed).
// Durable pipelines (Config.WAL set) refuse the body forms with
// ErrPayloadRequired — the log must receive replayable inputs. The
// typed layer (SubmitFunc, SubmitPayloadT, ...) compiles onto the
// same grid. Package stm/serve carries the encoded forms over the
// network, preserving the same ordering and error contracts.
//
// # Algorithms
//
// The three contributions of the paper — OWB (write-back with data
// forwarding), OUL (write-through undo-log with visible readers) and
// OULSteal (OUL with write-lock stealing) — plus the ordered and
// unordered baselines it evaluates: TL2, NOrec, UndoLog with visible
// and invisible readers, STMLite, and non-instrumented sequential
// execution.
package stm

import (
	"fmt"
	"strings"

	"github.com/orderedstm/ostm/internal/core"
	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/internal/norec"
	"github.com/orderedstm/ostm/internal/stmlite"
	"github.com/orderedstm/ostm/internal/tl2"
	"github.com/orderedstm/ostm/internal/undolog"
)

// Var is a transactional variable holding one 64-bit word. Create with
// NewVar/NewVars; access inside transactions with Tx.Read/Tx.Write and
// outside (quiescent state only) with Load/Store.
type Var = meta.Var

// NewVar returns a fresh transactional variable initialized to x.
func NewVar(x uint64) *Var { return meta.NewVar(x) }

// NewVars returns n zero-initialized transactional variables allocated
// contiguously; use &vs[i] as the handle.
func NewVars(n int) []Var { return meta.NewVars(n) }

// Tx is the transaction handle passed to a Body. Implementations
// panic internally to signal aborts; bodies must not recover.
type Tx interface {
	// Read returns v's value in this transaction's view.
	Read(v *Var) uint64
	// Write updates v in this transaction's view.
	Write(v *Var, x uint64)
	// Age returns the transaction's position in the predefined order.
	Age() uint64
}

// Body is a transaction body: the code run (speculatively, possibly
// repeatedly) for the transaction at the given age.
type Body func(tx Tx, age int)

// Algorithm selects a concurrency-control engine.
type Algorithm int

// The available engines. The Ordered* and cooperative algorithms
// enforce the predefined commit order; TL2, NOrec, UndoLogVis and
// UndoLogInvis are their unordered counterparts (ages are ignored),
// used by the paper's Figure 2 comparison.
const (
	Sequential Algorithm = iota
	OWB
	OUL
	OULSteal
	TL2
	OrderedTL2
	NOrec
	OrderedNOrec
	UndoLogVis
	OrderedUndoLogVis
	UndoLogInvis
	OrderedUndoLogInvis
	STMLite
	numAlgorithms
)

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	out := make([]Algorithm, 0, int(numAlgorithms))
	for a := Sequential; a < numAlgorithms; a++ {
		out = append(out, a)
	}
	return out
}

// OrderedAlgorithms lists the algorithms that enforce the predefined
// commit order (every competitor of the paper's ordered comparison).
func OrderedAlgorithms() []Algorithm {
	return []Algorithm{OWB, OUL, OULSteal, OrderedTL2, OrderedNOrec,
		OrderedUndoLogVis, OrderedUndoLogInvis, STMLite}
}

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Sequential:
		return "Sequential"
	case OWB:
		return "OWB"
	case OUL:
		return "OUL"
	case OULSteal:
		return "OUL-Steal"
	case TL2:
		return "TL2"
	case OrderedTL2:
		return "Ordered-TL2"
	case NOrec:
		return "NOrec"
	case OrderedNOrec:
		return "Ordered-NOrec"
	case UndoLogVis:
		return "UndoLog-vis"
	case OrderedUndoLogVis:
		return "Ordered-UndoLog-vis"
	case UndoLogInvis:
		return "UndoLog-invis"
	case OrderedUndoLogInvis:
		return "Ordered-UndoLog-invis"
	case STMLite:
		return "STMLite"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Ordered reports whether the algorithm enforces the predefined commit
// order (Sequential trivially does).
func (a Algorithm) Ordered() bool {
	switch a {
	case TL2, NOrec, UndoLogVis, UndoLogInvis:
		return false
	default:
		return true
	}
}

// ParseAlgorithm resolves a paper-style name (as produced by String;
// ASCII case differences are tolerated) to an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	for a := Sequential; a < numAlgorithms; a++ {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("stm: unknown algorithm %q", name)
}

// MarshalText implements encoding.TextMarshaler with the paper's name
// for the algorithm, so configurations and benchmark flags serialize
// algorithms without hand-rolled switches.
func (a Algorithm) MarshalText() ([]byte, error) {
	if a < Sequential || a >= numAlgorithms {
		return nil, fmt.Errorf("stm: unknown algorithm %d", int(a))
	}
	return []byte(a.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via
// ParseAlgorithm; with MarshalText it makes Algorithm usable directly
// in flag.TextVar, JSON configs and similar text-keyed settings.
func (a *Algorithm) UnmarshalText(text []byte) error {
	v, err := ParseAlgorithm(string(text))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// newEngine builds a fresh engine instance for one run.
func newEngine(a Algorithm, cfg meta.EngineConfig) (meta.Engine, error) {
	switch a {
	case Sequential:
		return newSeqEngine(cfg), nil
	case OWB:
		return core.NewOWB(cfg), nil
	case OUL:
		return core.NewOUL(cfg), nil
	case OULSteal:
		return core.NewOULSteal(cfg), nil
	case TL2:
		return tl2.New(cfg), nil
	case OrderedTL2:
		return tl2.NewOrdered(cfg), nil
	case NOrec:
		return norec.New(cfg), nil
	case OrderedNOrec:
		return norec.NewOrdered(cfg), nil
	case UndoLogVis:
		return undolog.New(cfg, true, false), nil
	case OrderedUndoLogVis:
		return undolog.New(cfg, true, true), nil
	case UndoLogInvis:
		return undolog.New(cfg, false, false), nil
	case OrderedUndoLogInvis:
		return undolog.New(cfg, false, true), nil
	case STMLite:
		return stmlite.New(cfg), nil
	default:
		return nil, fmt.Errorf("stm: unknown algorithm %d", int(a))
	}
}
