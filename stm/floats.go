package stm

import "math"

func toBits(x float64) uint64   { return math.Float64bits(x) }
func fromBits(b uint64) float64 { return math.Float64frombits(b) }
