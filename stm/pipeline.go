package stm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
)

// Pipeline is the streaming front-end over the shared run-loop: a
// long-lived Submit/Future service for ordered transaction
// processing. Where Executor.Run executes a fixed batch of n
// identical-body transactions and tears everything down, a Pipeline
// accepts an unbounded stream of heterogeneous bodies — consensus
// slots arriving at a replica, iterations of an open-ended loop —
// assigns each the next age in the predefined commit order, and
// resolves the returned Ticket when that age commits.
//
// Backpressure: Submit blocks once Capacity submissions are in flight
// (submitted but not yet committed), so a fast producer is paced by
// the commit frontier instead of queueing without bound.
//
// Epochs: every EpochAges commits the pipeline drains the engine's
// stats counters into its running totals and asks the engine to
// recycle stale metadata (meta.Recycler), so an arbitrarily long
// stream runs in bounded engine state. Stats always reports
// whole-stream totals.
//
// Faults: a body panic the sandbox cannot attribute to speculation
// stops the pipeline, exactly as it stops Executor.Run. The faulting
// ticket resolves with the *Fault; every other unresolved ticket
// resolves with a *Stopped error. A *Stopped transaction has not
// committed, with one narrow exception: an attempt already inside
// its commit step when the fault landed may still complete
// concurrently with the stop (commits racing the halt are possible
// in every mode; waiters parked on the order are cancelled). Submit
// and Close report the fault afterwards.
//
// Submit and SubmitBatch may be called from any number of goroutines.
// Close is idempotent. A Pipeline must be Closed to release its
// workers.
type Pipeline struct {
	cfg   Config
	eng   meta.Engine
	order *meta.Order
	stats *meta.Stats
	l     *loop
	s     *stream

	wg    sync.WaitGroup // workers
	vdone chan struct{}  // validator goroutine exit (closed if none)
	jdone chan struct{}  // janitor goroutine exit
	jkick chan struct{}  // epoch-boundary signals to the janitor

	closeOnce sync.Once
	closeErr  error
}

// NewPipeline validates the configuration, builds a fresh engine, and
// starts the worker pool. The pipeline is immediately ready for
// Submit; ages are assigned from cfg.FirstAge upward.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Algorithm < Sequential || cfg.Algorithm >= numAlgorithms {
		return nil, fmt.Errorf("stm: unknown algorithm %d", int(cfg.Algorithm))
	}
	cfg = cfg.withDefaults()
	stats := &meta.Stats{}
	order := meta.NewOrderAt(cfg.FirstAge)
	eng, err := newEngine(cfg.Algorithm, meta.EngineConfig{
		TableBits:  cfg.TableBits,
		MaxReaders: cfg.MaxReaders,
		SpinBudget: cfg.SpinBudget,
		SigBits:    cfg.SigBits,
		Order:      order,
		Stats:      stats,
	})
	if err != nil {
		return nil, err
	}
	if eng.Mode() == meta.ModeSequential {
		// The non-instrumented engine has no concurrency control at
		// all; a single worker claiming ages in order is the only
		// correct way to drive it.
		cfg.Workers = 1
	}
	s := newStream(cfg)
	// The commit ring must cover every in-flight exposed age; in
	// steady state backpressure bounds those to Capacity, plus one
	// in-progress age per worker.
	span := uint64(cfg.Capacity + cfg.Workers + 8)
	l := newLoop(cfg, eng, order, stats, s, span, 0)
	p := &Pipeline{
		cfg:   cfg,
		eng:   eng,
		order: order,
		stats: stats,
		l:     l,
		s:     s,
		vdone: make(chan struct{}),
		jdone: make(chan struct{}),
		jkick: make(chan struct{}, 1),
	}
	s.epochKick = p.jkick
	if svc, ok := eng.(meta.Service); ok {
		svc.Start()
	}
	l.spawnWorkers(&p.wg)
	if l.mode == meta.ModeCooperative {
		go func() {
			defer close(p.vdone)
			l.validatorLoop(s.drained)
		}()
	} else {
		close(p.vdone)
	}
	go p.janitor()
	return p, nil
}

// Config returns the pipeline's effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Submit hands the pipeline the next transaction of the stream. It
// assigns the next age, blocks while Capacity submissions are already
// in flight, and returns a Ticket resolving when that age commits.
// After Close it returns ErrClosed; after a fault it returns the
// *Stopped error.
func (p *Pipeline) Submit(body Body) (*Ticket, error) {
	if body == nil {
		return nil, errors.New("stm: nil body")
	}
	s := p.s
	s.mu.Lock()
	for {
		if s.fault != nil {
			f := s.fault
			s.mu.Unlock()
			return nil, &Stopped{Fault: f}
		}
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		if s.submitted-(s.base+s.ncommitted) < uint64(s.capacity) {
			break
		}
		s.cond.Wait() // backpressure: wait for the commit frontier
	}
	t := s.post(body)
	s.cond.Broadcast() // wake claim-blocked workers
	s.mu.Unlock()
	return t, nil
}

// SubmitBatch submits the bodies as consecutive ages of the stream,
// taking the stream lock once for the whole batch instead of once per
// transaction — the batched producer path for high-throughput feeders
// (and the shard router, which otherwise serializes every submission
// through the global sequencer twice). Backpressure applies inside the
// batch: once Capacity submissions are in flight, the call blocks
// until the commit frontier advances, exactly as consecutive Submit
// calls would.
//
// It returns one Ticket per accepted body, in order. On a fault or
// after Close, submission stops at the first rejected body: the
// returned slice holds the tickets of the bodies accepted before it
// (they remain valid and resolve normally) and the error reports why
// the rest were refused.
func (p *Pipeline) SubmitBatch(bodies []Body) ([]*Ticket, error) {
	for _, b := range bodies {
		if b == nil {
			return nil, errors.New("stm: nil body")
		}
	}
	if len(bodies) == 0 {
		return nil, nil
	}
	out := make([]*Ticket, 0, len(bodies))
	s := p.s
	s.mu.Lock()
	for _, body := range bodies {
		for {
			if s.fault != nil {
				f := s.fault
				s.mu.Unlock()
				return out, &Stopped{Fault: f}
			}
			if s.closed {
				s.mu.Unlock()
				return out, ErrClosed
			}
			if s.submitted-(s.base+s.ncommitted) < uint64(s.capacity) {
				break
			}
			// Publish what the batch posted so far before parking:
			// workers drain those ages, commits advance the frontier,
			// and the broadcast from committed() wakes us again.
			s.cond.Broadcast()
			s.cond.Wait()
		}
		out = append(out, s.post(body))
	}
	s.cond.Broadcast() // wake claim-blocked workers
	s.mu.Unlock()
	return out, nil
}

// Drain blocks until every transaction submitted before the call has
// committed (or the pipeline stopped on a fault, which it returns).
// The pipeline stays open: Submit keeps working during and after a
// Drain.
func (p *Pipeline) Drain() error {
	s := p.s
	s.mu.Lock()
	target := s.submitted
	for s.fault == nil && s.base+s.ncommitted < target {
		s.cond.Wait()
	}
	f := s.fault
	s.mu.Unlock()
	if f != nil {
		return f
	}
	return nil
}

// Close drains the stream and shuts the pipeline down: no new
// submissions are accepted, everything already submitted is driven to
// commit, workers and the validator exit, background engine services
// stop. It returns the fault that stopped the pipeline, if any.
// Close is idempotent; concurrent calls return the same error.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() {
		p.s.close()
		p.l.kickMain() // a parked validator must re-check drained()
		p.wg.Wait()    // workers drain every claimable age and exit
		p.l.kickMain() // wake the validator for the exposed tail
		<-p.vdone
		if svc, ok := p.eng.(meta.Service); ok {
			svc.Stop()
		}
		close(p.jkick)
		<-p.jdone
		p.s.settle()
		if f := p.l.fault.Load(); f != nil {
			p.closeErr = f
		}
	})
	return p.closeErr
}

// WaitFrontier blocks until the commit frontier reaches age — every
// transaction with a lower age has committed — or the pipeline stops,
// whichever is first; it returns true iff the frontier arrived. It is
// the pipeline-level reachability wait: a body that must observe the
// exact sequential prefix below its own age (the shard fence protocol)
// parks here, and order-enforcing engines guarantee the frontier keeps
// advancing underneath it.
func (p *Pipeline) WaitFrontier(age uint64) bool {
	p.order.WaitReachable(age, nil)
	return p.order.Committed() >= age
}

// Stop halts the pipeline without draining, as if a transaction
// faulted: workers and waiters are cancelled, every unresolved ticket
// resolves with a *Stopped error, and Submit/Close report the stop.
// Ages not yet committed when Stop lands do not commit (with the same
// narrow racing-commit exception documented on the type). If cause is
// already a *Fault it is recorded as-is; any other value is wrapped in
// a Fault positioned at the current commit frontier. Stop is
// idempotent; the first stop (or genuine fault) wins.
func (p *Pipeline) Stop(cause any) {
	f, ok := cause.(*Fault)
	if !ok {
		f = &Fault{Age: p.order.Committed(), Value: cause}
	}
	p.l.fail(f)
}

// Fault returns the fault that stopped the pipeline, or nil while it
// is running (and after a clean Close).
func (p *Pipeline) Fault() *Fault { return p.l.fault.Load() }

// Stats returns whole-stream counters: every finished epoch plus the
// live counters of the current one.
func (p *Pipeline) Stats() meta.StatsView {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals.Plus(p.stats.View())
}

// Submitted returns the number of transactions accepted so far.
func (p *Pipeline) Submitted() uint64 {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted - s.base
}

// Committed returns the number of transactions committed so far.
func (p *Pipeline) Committed() uint64 {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ncommitted
}

// InFlight returns the number of submissions not yet committed; it
// never exceeds the configured Capacity.
func (p *Pipeline) InFlight() int {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.submitted - (s.base + s.ncommitted))
}

// Epochs returns how many recycling epochs have completed.
func (p *Pipeline) Epochs() uint64 {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

// janitor performs epoch work off the commit path: it folds the
// engine's counters into the stream totals and scrubs recyclable
// engine metadata. One goroutine per pipeline; woken at epoch
// boundaries, exits when Close closes the kick channel.
func (p *Pipeline) janitor() {
	defer close(p.jdone)
	for range p.jkick {
		p.s.foldEpoch(p.stats)
		if rec, ok := p.eng.(meta.Recycler); ok {
			rec.Recycle()
		}
	}
}

// pipeEntry is one slot of the submission ring. A slot only needs to
// survive until its age is claimed (claims are in age order, so a
// slot is always consumed before the backpressure window lets it be
// overwritten).
type pipeEntry struct {
	age  uint64
	body Body
}

// tslot is one slot of the ticket ring. Unlike submission slots,
// ticket slots live until the age *commits*, and unordered engines —
// and STMLite's concurrent write-backs — report commits out of age
// order, so an age can wrap around to a slot whose older ticket is
// still unresolved; such tickets overflow into the age-keyed map. For
// in-order engines the overflow never happens (in-flight ages span
// less than the capacity-sized ring), so the steady-state path is an
// age-tagged array slot instead of a map insert+delete per
// transaction.
type tslot struct {
	age uint64
	t   *Ticket
}

// stream implements feed for the pipeline: a bounded ring of
// submissions between the producer side (Submit/Drain/Close) and the
// run-loop's workers. All state is guarded by mu; the single cond
// covers every wait (backpressure, claim, drain) — commits broadcast
// and each waiter re-checks its own predicate.
type stream struct {
	mu   sync.Mutex
	cond *sync.Cond

	entries []pipeEntry
	emask   uint64
	tslots  []tslot            // ticket ring; same geometry as entries
	tickets map[uint64]*Ticket // overflow for out-of-order commit skew

	base       uint64 // first age of the stream
	capacity   int
	submitted  uint64 // next age to assign (starts at base)
	claimed    uint64 // next age to hand to a worker (starts at base)
	ncommitted uint64 // count of committed transactions
	closed     bool
	fault      *Fault

	epochAges  uint64
	sinceEpoch uint64
	epochs     uint64
	totals     meta.StatsView
	epochKick  chan<- struct{}
}

func newStream(cfg Config) *stream {
	size := uint64(1)
	for size < uint64(cfg.Capacity) {
		size <<= 1
	}
	s := &stream{
		entries:   make([]pipeEntry, size),
		emask:     size - 1,
		tslots:    make([]tslot, size),
		tickets:   make(map[uint64]*Ticket),
		base:      cfg.FirstAge,
		capacity:  cfg.Capacity,
		submitted: cfg.FirstAge,
		claimed:   cfg.FirstAge,
		epochAges: uint64(cfg.EpochAges),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// post assigns the next age to body and registers its ticket. Called
// with mu held and room available.
func (s *stream) post(body Body) *Ticket {
	age := s.submitted
	t := &Ticket{age: age, done: make(chan struct{})}
	s.entries[age&s.emask] = pipeEntry{age: age, body: body}
	sl := &s.tslots[age&s.emask]
	if sl.t == nil {
		sl.age, sl.t = age, t
	} else {
		s.tickets[age] = t // ring slot still held by an unresolved age
	}
	s.submitted++
	return t
}

// claim implements feed: hand out submitted ages in order, blocking
// while the stream is open but empty.
func (s *stream) claim(stop func() bool) (uint64, Body, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if stop() {
			return 0, nil, false
		}
		if s.claimed < s.submitted {
			age := s.claimed
			s.claimed++
			return age, s.entries[age&s.emask].body, true
		}
		if s.closed {
			return 0, nil, false
		}
		s.cond.Wait()
	}
}

// committed implements feed: resolve the age's ticket, advance the
// commit count (which releases backpressure), and signal the janitor
// at epoch boundaries.
func (s *stream) committed(age uint64) {
	s.mu.Lock()
	if sl := &s.tslots[age&s.emask]; sl.t != nil && sl.age == age {
		t := sl.t
		sl.t = nil
		t.resolve(nil)
	} else if t, ok := s.tickets[age]; ok {
		delete(s.tickets, age)
		t.resolve(nil)
	}
	s.ncommitted++
	s.sinceEpoch++
	if s.sinceEpoch >= s.epochAges {
		s.sinceEpoch = 0
		select {
		case s.epochKick <- struct{}{}:
		default: // janitor is behind; this epoch folds into the next
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// halted implements feed: the loop stopped on a fault before draining.
// Resolve every outstanding ticket and wake all waiters.
func (s *stream) halted(f *Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault != nil {
		return
	}
	s.fault = f
	s.resolveOutstanding(f)
	s.cond.Broadcast()
}

// resolveOutstanding resolves every unresolved ticket: the faulting
// age with the fault itself, everything else with a *Stopped error.
// Called with mu held.
func (s *stream) resolveOutstanding(f *Fault) {
	fail := func(age uint64, t *Ticket) {
		switch {
		case f != nil && age == f.Age:
			t.resolve(f)
		case f != nil:
			t.resolve(&Stopped{Fault: f})
		default:
			t.resolve(ErrClosed)
		}
	}
	for i := range s.tslots {
		if sl := &s.tslots[i]; sl.t != nil {
			t := sl.t
			sl.t = nil
			fail(sl.age, t)
		}
	}
	for age, t := range s.tickets {
		delete(s.tickets, age)
		fail(age, t)
	}
}

// drained reports that the stream is closed and every submitted age
// has committed (the validator's exit condition).
func (s *stream) drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed && s.base+s.ncommitted == s.submitted
}

// close stops accepting submissions and wakes claim-blocked workers
// so they can drain the tail and exit.
func (s *stream) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// settle resolves any ticket still unresolved at teardown (only
// possible on the fault path, where halted already ran; this is a
// backstop so no Wait can hang after Close returns).
func (s *stream) settle() {
	s.mu.Lock()
	s.resolveOutstanding(s.fault)
	s.mu.Unlock()
}

// foldEpoch rotates the engine counters and folds the delta into the
// stream totals in one critical section, so Pipeline.Stats (which
// reads totals + live counters under the same lock) never observes
// the window where counters are zeroed but the delta is unfolded.
func (s *stream) foldEpoch(st *meta.Stats) {
	s.mu.Lock()
	s.totals = s.totals.Plus(st.Rotate())
	s.epochs++
	s.mu.Unlock()
}

// Throughput is a convenience for benchmarks: committed transactions
// per second over the given elapsed time.
func Throughput(committed uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(committed) / elapsed.Seconds()
}
