package stm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/stm/obs"
)

// Pipeline is the streaming front-end over the shared run-loop: a
// long-lived Submit/Future service for ordered transaction
// processing. Where Executor.Run executes a fixed batch of n
// identical-body transactions and tears everything down, a Pipeline
// accepts an unbounded stream of heterogeneous bodies — consensus
// slots arriving at a replica, iterations of an open-ended loop —
// assigns each the next age in the predefined commit order, and
// resolves the returned Ticket when that age commits.
//
// Backpressure: Submit blocks once Capacity submissions are in flight
// (submitted but not yet committed), so a fast producer is paced by
// the commit frontier instead of queueing without bound.
//
// Epochs: every EpochAges commits the pipeline drains the engine's
// stats counters into its running totals and asks the engine to
// recycle stale metadata (meta.Recycler), so an arbitrarily long
// stream runs in bounded engine state. Stats always reports
// whole-stream totals.
//
// Faults: a body panic the sandbox cannot attribute to speculation
// stops the pipeline, exactly as it stops Executor.Run. The faulting
// ticket resolves with the *Fault; every other unresolved ticket
// resolves with a *Stopped error. A *Stopped transaction has not
// committed, with one narrow exception: an attempt already inside
// its commit step when the fault landed may still complete
// concurrently with the stop (commits racing the halt are possible
// in every mode; waiters parked on the order are cancelled). Submit
// and Close report the fault afterwards.
//
// Submit and SubmitBatch may be called from any number of goroutines.
// Close is idempotent. A Pipeline must be Closed to release its
// workers.
type Pipeline struct {
	cfg   Config
	eng   meta.Engine
	order *meta.Order
	stats *meta.Stats
	l     *loop
	s     *stream
	po    *pipeObs // nil unless Config.Obs is set

	wg    sync.WaitGroup // workers
	vdone chan struct{}  // validator goroutine exit (closed if none)
	jdone chan struct{}  // janitor goroutine exit
	jkick chan struct{}  // epoch-boundary signals to the janitor
	cdone chan struct{}  // checkpointer goroutine exit (closed if none)

	// Checkpoint machinery; zero-valued unless the WAL implements
	// CheckpointSink and a Snapshotter is configured.
	ckptMu   sync.Mutex // serializes checkpoints (auto loop + manual)
	ckptSink CheckpointSink
	lastCkpt uint64 // frontier age of the newest committed checkpoint
	ckptN    uint64 // checkpoints committed
	ckptErr  error  // first checkpoint failure; auto-checkpointing stops

	closeOnce sync.Once
	closeErr  error
}

// NewPipeline validates the configuration, builds a fresh engine, and
// starts the worker pool. The pipeline is immediately ready for
// Submit; ages are assigned from cfg.FirstAge upward.
func NewPipeline(cfg Config) (*Pipeline, error) {
	if cfg.Algorithm < Sequential || cfg.Algorithm >= numAlgorithms {
		return nil, fmt.Errorf("stm: unknown algorithm %d", int(cfg.Algorithm))
	}
	if cfg.WAL != nil && !cfg.Algorithm.Ordered() {
		// The log stores inputs keyed by age and recovery replays them
		// in age order; an unordered engine serialized the original run
		// in commit order, so replay could not reproduce its state.
		return nil, fmt.Errorf("stm: %v does not enforce the predefined commit order; durable recovery requires an ordered algorithm", cfg.Algorithm)
	}
	if cfg.WAL != nil && cfg.Codec == nil {
		return nil, errors.New("stm: Config.WAL requires Config.Codec (durable submissions are decoded payloads)")
	}
	if cfg.WaitDurable && cfg.WAL == nil {
		return nil, errors.New("stm: Config.WaitDurable requires Config.WAL")
	}
	if cfg.CheckpointEvery > 0 {
		if cfg.WAL == nil {
			return nil, errors.New("stm: Config.CheckpointEvery requires Config.WAL")
		}
		if _, ok := cfg.WAL.(CheckpointSink); !ok {
			return nil, errors.New("stm: Config.CheckpointEvery requires a WAL implementing CheckpointSink (wal.Writer does)")
		}
		if cfg.Snapshotter == nil {
			return nil, errors.New("stm: Config.CheckpointEvery requires Config.Snapshotter")
		}
	}
	cfg = cfg.withDefaults()
	stats := &meta.Stats{}
	order := meta.NewOrderAt(cfg.FirstAge)
	eng, err := newEngine(cfg.Algorithm, meta.EngineConfig{
		TableBits:  cfg.TableBits,
		MaxReaders: cfg.MaxReaders,
		SpinBudget: cfg.SpinBudget,
		SigBits:    cfg.SigBits,
		Order:      order,
		Stats:      stats,
	})
	if err != nil {
		return nil, err
	}
	if eng.Mode() == meta.ModeSequential {
		// The non-instrumented engine has no concurrency control at
		// all; a single worker claiming ages in order is the only
		// correct way to drive it.
		cfg.Workers = 1
	}
	s := newStream(cfg)
	// The commit ring must cover every in-flight exposed age; in
	// steady state backpressure bounds those to Capacity, plus one
	// in-progress age per worker.
	span := uint64(cfg.Capacity + cfg.Workers + 8)
	l := newLoop(cfg, eng, order, stats, s, span, 0)
	p := &Pipeline{
		cfg:   cfg,
		eng:   eng,
		order: order,
		stats: stats,
		l:     l,
		s:     s,
		vdone: make(chan struct{}),
		jdone: make(chan struct{}),
		jkick: make(chan struct{}, 1),
		cdone: make(chan struct{}),
	}
	s.epochKick = p.jkick
	if s.dur != nil {
		// The log reports durability progress straight into the
		// stream, which resolves WaitDurable tickets there.
		s.dur.log.Notify(s.durableTo)
	}
	if sink, ok := cfg.WAL.(CheckpointSink); ok && cfg.Snapshotter != nil {
		p.ckptSink = sink
		p.lastCkpt = cfg.FirstAge
	}
	if cfg.Obs != nil {
		p.po = newPipeObs(cfg.Obs, p)
		s.po = p.po
		l.trace = p.po.trace
	}
	if cfg.CheckpointEvery > 0 {
		s.ckptEvery = cfg.CheckpointEvery
		s.ckptKick = make(chan struct{}, 1)
		go p.ckptLoop()
	} else {
		close(p.cdone)
	}
	if svc, ok := eng.(meta.Service); ok {
		svc.Start()
	}
	l.spawnWorkers(&p.wg)
	if l.mode == meta.ModeCooperative {
		go func() {
			defer close(p.vdone)
			l.validatorLoop(s.drained)
		}()
	} else {
		close(p.vdone)
	}
	go p.janitor()
	return p, nil
}

// Config returns the pipeline's effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Submit hands the pipeline the next transaction of the stream. It
// assigns the next age, blocks while Capacity submissions are already
// in flight, and returns a Ticket resolving when that age commits.
// After Close it returns ErrClosed; after a fault it returns the
// *Stopped error. On a pipeline configured with a WAL, Submit returns
// ErrPayloadRequired — use SubmitPayload or SubmitEncoded so the log
// receives a replayable input.
func (p *Pipeline) Submit(body Body) (*Ticket, error) {
	if p.s.dur != nil {
		return nil, ErrPayloadRequired
	}
	return p.submit(nil, body, nil)
}

// SubmitCtx is Submit with a cancellable backpressure wait: while the
// pipeline is at Capacity the call parks exactly like Submit, but a
// context cancellation withdraws the submission and returns an error
// wrapping ErrCanceled (and ctx's error). Cancellation is only
// observed before an age is assigned — once SubmitCtx returns a
// Ticket the transaction owns its position in the predefined order
// and will commit regardless of what happens to ctx (use
// Ticket.WaitCtx to bound the wait instead).
func (p *Pipeline) SubmitCtx(ctx context.Context, body Body) (*Ticket, error) {
	if p.s.dur != nil {
		return nil, ErrPayloadRequired
	}
	return p.submit(ctx, body, nil)
}

// SubmitPayload encodes payload through the configured Codec, decodes
// it back into the body that will run (live execution and recovery
// replay share the decoded path by construction), and submits it.
// The encoded form is what the WAL stores once the age commits.
func (p *Pipeline) SubmitPayload(payload any) (*Ticket, error) {
	return p.submitPayload(nil, payload)
}

// SubmitPayloadCtx is SubmitPayload with SubmitCtx's cancellable
// backpressure wait and withdrawal semantics.
func (p *Pipeline) SubmitPayloadCtx(ctx context.Context, payload any) (*Ticket, error) {
	return p.submitPayload(ctx, payload)
}

// submitPayload is the shared encode → decode → submit sequence; ctx
// (nil for the uncancellable entry point) bounds the backpressure
// wait.
func (p *Pipeline) submitPayload(ctx context.Context, payload any) (*Ticket, error) {
	if p.cfg.Codec == nil {
		return nil, errors.New("stm: SubmitPayload requires Config.Codec")
	}
	data, err := p.cfg.Codec.Encode(payload)
	if err != nil {
		return nil, fmt.Errorf("stm: encode payload: %w", err)
	}
	body, err := p.cfg.Codec.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("stm: decode payload: %w", err)
	}
	return p.submit(ctx, body, data)
}

// SubmitEncoded submits a payload already in its wire form — the
// recovery-replay entry point (wal.Recovery.Replay hands surviving
// records here), also usable by feeders that hold pre-encoded inputs.
//
// The pipeline retains data only until the transaction commits (the
// log copies it as the commit frontier passes); once the submission's
// ticket has resolved, the caller may reuse the backing array. A
// closed-loop producer can therefore run the durable submit path with
// a recycled encode buffer instead of a fresh slice per transaction.
func (p *Pipeline) SubmitEncoded(data []byte) (*Ticket, error) {
	return p.SubmitEncodedCtx(nil, data)
}

// SubmitEncodedCtx is SubmitEncoded with SubmitCtx's cancellable
// backpressure wait and withdrawal semantics — the ingress path for
// servers that hold a per-request context: cancellation while the
// pipeline is at Capacity withdraws the submission; once a Ticket is
// returned the age is owned and will commit.
func (p *Pipeline) SubmitEncodedCtx(ctx context.Context, data []byte) (*Ticket, error) {
	if p.cfg.Codec == nil {
		return nil, errors.New("stm: SubmitEncoded requires Config.Codec")
	}
	body, err := p.cfg.Codec.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("stm: decode payload: %w", err)
	}
	return p.submit(ctx, body, data)
}

// submit is the shared submission core over a freshly allocated
// ticket; ctx (nil for the uncancellable entry points) bounds the
// backpressure wait.
func (p *Pipeline) submit(ctx context.Context, body Body, payload []byte) (*Ticket, error) {
	t := newTicket()
	if err := p.submitWith(ctx, t, body, payload); err != nil {
		return nil, err
	}
	return t, nil
}

// submitWith posts body onto the stream through the caller-provided
// ticket (the typed front-ends embed the Ticket inside a TicketOf so
// submission costs one allocation for the pair, not two): it applies
// backpressure, assigns the next age, registers the ticket, and (for
// durable pipelines) retains the payload until the commit frontier
// hands the age to the WAL. A non-nil ctx makes the backpressure wait
// cancellable: cancellation before an age is assigned withdraws the
// submission with an error wrapping ErrCanceled; after assignment the
// context is not consulted, so an accepted age is never lost.
func (p *Pipeline) submitWith(ctx context.Context, t *Ticket, body Body, payload []byte) error {
	if body == nil {
		return errors.New("stm: nil body")
	}
	s := p.s
	var unwatch func() bool
	defer func() {
		if unwatch != nil {
			unwatch()
		}
	}()
	var waitT0 int64
	s.mu.Lock()
	for {
		if s.fault != nil {
			f := s.fault
			s.mu.Unlock()
			return &Stopped{Fault: f}
		}
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("%w before an age was assigned: %w", ErrCanceled, err)
			}
		}
		if s.submitted-(s.base+s.ncommitted) < uint64(s.capacity) {
			break
		}
		if ctx != nil && unwatch == nil && ctx.Done() != nil {
			// The backpressure wait parks on the stream's cond, which a
			// context firing must be able to wake. Registered lazily —
			// only once a park is imminent — so the common no-wait
			// submit pays nothing; no wakeup can be lost because the
			// callback needs s.mu (held here) to broadcast.
			unwatch = context.AfterFunc(ctx, func() {
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			})
		}
		if po := p.po; po != nil && waitT0 == 0 {
			waitT0 = time.Now().UnixNano()
			po.submitWaits.Inc()
		}
		s.cond.Wait() // backpressure: wait for the commit frontier
	}
	if waitT0 != 0 {
		p.po.submitWait.Observe(time.Now().UnixNano() - waitT0)
	}
	s.post(t, body, payload)
	s.cond.Broadcast() // wake claim-blocked workers
	s.mu.Unlock()
	return nil
}

// SubmitBatch submits the bodies as consecutive ages of the stream,
// taking the stream lock once for the whole batch instead of once per
// transaction — the batched producer path for high-throughput feeders
// (and the shard router, which otherwise serializes every submission
// through the global sequencer twice). Backpressure applies inside the
// batch: once Capacity submissions are in flight, the call blocks
// until the commit frontier advances, exactly as consecutive Submit
// calls would.
//
// It returns one Ticket per accepted body, in order. On a fault or
// after Close, submission stops at the first rejected body: the
// returned slice holds the tickets of the bodies accepted before it
// (they remain valid and resolve normally) and the error reports why
// the rest were refused.
func (p *Pipeline) SubmitBatch(bodies []Body) ([]*Ticket, error) {
	return p.SubmitBatchCtx(nil, bodies)
}

// SubmitBatchCtx is SubmitBatch with a cancellable backpressure wait:
// a context cancellation while the batch is parked at Capacity stops
// submission at the first body that has not yet been assigned an age.
// The returned slice holds the tickets of the bodies accepted before
// the cancellation (they own their ages and resolve normally) and the
// error wraps ErrCanceled. As with SubmitCtx, an accepted age is never
// withdrawn.
func (p *Pipeline) SubmitBatchCtx(ctx context.Context, bodies []Body) ([]*Ticket, error) {
	if p.s.dur != nil {
		return nil, ErrPayloadRequired
	}
	return p.submitBatch(ctx, bodies, nil)
}

// SubmitPayloadBatch is SubmitBatch for durable pipelines: each
// payload is encoded, decoded into its body, and the batch submitted
// as consecutive ages under one stream lock, with the same
// partial-acceptance semantics as SubmitBatch.
func (p *Pipeline) SubmitPayloadBatch(payloads []any) ([]*Ticket, error) {
	return p.SubmitPayloadBatchCtx(nil, payloads)
}

// SubmitPayloadBatchCtx is SubmitPayloadBatch with SubmitBatchCtx's
// cancellable backpressure wait and partial-acceptance semantics.
func (p *Pipeline) SubmitPayloadBatchCtx(ctx context.Context, payloads []any) ([]*Ticket, error) {
	if p.cfg.Codec == nil {
		return nil, errors.New("stm: SubmitPayloadBatch requires Config.Codec")
	}
	bodies := make([]Body, len(payloads))
	datas := make([][]byte, len(payloads))
	for i, pl := range payloads {
		data, err := p.cfg.Codec.Encode(pl)
		if err != nil {
			return nil, fmt.Errorf("stm: encode payload %d: %w", i, err)
		}
		body, err := p.cfg.Codec.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("stm: decode payload %d: %w", i, err)
		}
		bodies[i], datas[i] = body, data
	}
	return p.submitBatch(ctx, bodies, datas)
}

// SubmitEncodedBatch is SubmitEncoded's batched form: each element is
// decoded through the Codec and the batch submitted as consecutive
// ages under one stream lock. Buffer reuse follows SubmitEncoded's
// rule per element — the pipeline retains datas[i] only until ticket
// i resolves.
func (p *Pipeline) SubmitEncodedBatch(datas [][]byte) ([]*Ticket, error) {
	return p.SubmitEncodedBatchCtx(nil, datas)
}

// SubmitEncodedBatchCtx is SubmitEncodedBatch with SubmitBatchCtx's
// cancellable backpressure wait and partial-acceptance semantics —
// the batched ingress path for servers feeding pre-encoded request
// frames under a connection context.
func (p *Pipeline) SubmitEncodedBatchCtx(ctx context.Context, datas [][]byte) ([]*Ticket, error) {
	if p.cfg.Codec == nil {
		return nil, errors.New("stm: SubmitEncodedBatch requires Config.Codec")
	}
	bodies := make([]Body, len(datas))
	for i, data := range datas {
		body, err := p.cfg.Codec.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("stm: decode payload %d: %w", i, err)
		}
		bodies[i] = body
	}
	return p.submitBatch(ctx, bodies, datas)
}

// submitBatch is the shared batched core; payloads is nil for
// non-durable pipelines, else parallel to bodies. A non-nil ctx makes
// the per-body backpressure wait cancellable with SubmitCtx's
// withdrawal rule: cancellation stops the batch before the next age
// assignment, never after one.
func (p *Pipeline) submitBatch(ctx context.Context, bodies []Body, payloads [][]byte) ([]*Ticket, error) {
	for _, b := range bodies {
		if b == nil {
			return nil, errors.New("stm: nil body")
		}
	}
	if len(bodies) == 0 {
		return nil, nil
	}
	out := make([]*Ticket, 0, len(bodies))
	s := p.s
	var unwatch func() bool
	defer func() {
		if unwatch != nil {
			unwatch()
		}
	}()
	s.mu.Lock()
	for i, body := range bodies {
		var waitT0 int64
		for {
			if s.fault != nil {
				f := s.fault
				s.mu.Unlock()
				return out, &Stopped{Fault: f}
			}
			if s.closed {
				s.mu.Unlock()
				return out, ErrClosed
			}
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					s.mu.Unlock()
					return out, fmt.Errorf("%w before an age was assigned: %w", ErrCanceled, err)
				}
			}
			if s.submitted-(s.base+s.ncommitted) < uint64(s.capacity) {
				break
			}
			if ctx != nil && unwatch == nil && ctx.Done() != nil {
				// Same lazy wakeup hook as submitWith: the park below waits
				// on the stream's cond, which a context firing must be able
				// to interrupt. Registered once per batch, only when a park
				// is imminent.
				unwatch = context.AfterFunc(ctx, func() {
					s.mu.Lock()
					s.cond.Broadcast()
					s.mu.Unlock()
				})
			}
			if po := p.po; po != nil && waitT0 == 0 {
				waitT0 = time.Now().UnixNano()
				po.submitWaits.Inc()
			}
			// Publish what the batch posted so far before parking:
			// workers drain those ages, commits advance the frontier,
			// and the broadcast from committed() wakes us again.
			s.cond.Broadcast()
			s.cond.Wait()
		}
		if waitT0 != 0 {
			p.po.submitWait.Observe(time.Now().UnixNano() - waitT0)
		}
		var data []byte
		if payloads != nil {
			data = payloads[i]
		}
		t := newTicket()
		s.post(t, body, data)
		out = append(out, t)
	}
	s.cond.Broadcast() // wake claim-blocked workers
	s.mu.Unlock()
	return out, nil
}

// Drain blocks until every transaction submitted before the call has
// committed (or the pipeline stopped on a fault, which it returns).
// The pipeline stays open: Submit keeps working during and after a
// Drain.
func (p *Pipeline) Drain() error {
	s := p.s
	s.mu.Lock()
	target := s.submitted
	for s.fault == nil && s.base+s.ncommitted < target {
		s.cond.Wait()
	}
	f := s.fault
	s.mu.Unlock()
	if f != nil {
		return f
	}
	return nil
}

// Close drains the stream and shuts the pipeline down: no new
// submissions are accepted, everything already submitted is driven to
// commit, workers and the validator exit, background engine services
// stop. It returns the fault that stopped the pipeline, if any.
// Close is idempotent; concurrent calls return the same error.
func (p *Pipeline) Close() error {
	p.closeOnce.Do(func() {
		p.s.close()
		p.l.kickMain() // a parked validator must re-check drained()
		p.wg.Wait()    // workers drain every claimable age and exit
		p.l.kickMain() // wake the validator for the exposed tail
		<-p.vdone
		if p.s.ckptKick != nil {
			// No commits can arrive anymore, so nothing else sends on
			// the kick channel; the checkpointer drains pending kicks
			// (possibly taking one final checkpoint) and exits.
			close(p.s.ckptKick)
		}
		<-p.cdone
		if svc, ok := p.eng.(meta.Service); ok {
			svc.Stop()
		}
		close(p.jkick)
		<-p.jdone
		if d := p.s.dur; d != nil {
			// Make the tail durable: everything the drain committed has
			// been appended; one final sync closes the durability gap
			// and (via the observer) resolves the WaitDurable tickets
			// still deferred. The log stays open — its owner closes it.
			err := d.log.Sync()
			p.s.mu.Lock()
			if err == nil {
				err = d.err // an append failed earlier; the prefix is frozen
			} else if d.err == nil {
				// The closing sync failed through a path that never fired
				// the durability observer (possible when the log was torn
				// down under us, and for any DurableLog that reports sync
				// errors without a notification). Latch it so settle
				// resolves the still-parked WaitDurable tickets with the
				// same DurabilityError Close reports — not ErrClosed —
				// and exactly once.
				d.err = err
			}
			p.s.mu.Unlock()
			if err != nil {
				p.closeErr = &DurabilityError{Err: err}
			}
		}
		p.s.settle()
		p.s.mu.Lock()
		if cerr := p.ckptErr; cerr != nil && p.closeErr == nil {
			p.closeErr = cerr
		}
		p.s.mu.Unlock()
		if f := p.l.fault.Load(); f != nil {
			p.closeErr = f
		}
	})
	return p.closeErr
}

// WaitFrontier blocks until the commit frontier reaches age — every
// transaction with a lower age has committed — or the pipeline stops,
// whichever is first; it returns true iff the frontier arrived. It is
// the pipeline-level reachability wait: a body that must observe the
// exact sequential prefix below its own age (the shard fence protocol)
// parks here, and order-enforcing engines guarantee the frontier keeps
// advancing underneath it.
func (p *Pipeline) WaitFrontier(age uint64) bool {
	p.order.WaitReachable(age, nil)
	return p.order.Committed() >= age
}

// Stop halts the pipeline without draining, as if a transaction
// faulted: workers and waiters are cancelled, every unresolved ticket
// resolves with a *Stopped error, and Submit/Close report the stop.
// Ages not yet committed when Stop lands do not commit (with the same
// narrow racing-commit exception documented on the type). If cause is
// already a *Fault it is recorded as-is; any other value is wrapped in
// a Fault positioned at the current commit frontier. Stop is
// idempotent; the first stop (or genuine fault) wins.
func (p *Pipeline) Stop(cause any) {
	f, ok := cause.(*Fault)
	if !ok {
		f = &Fault{Age: p.order.Committed(), Value: cause}
	}
	p.l.fail(f)
}

// Fault returns the fault that stopped the pipeline, or nil while it
// is running (and after a clean Close).
func (p *Pipeline) Fault() *Fault { return p.l.fault.Load() }

// Stats returns whole-stream counters: every finished epoch plus the
// live counters of the current one.
func (p *Pipeline) Stats() meta.StatsView {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totals.Plus(p.stats.View())
}

// Submitted returns the number of transactions accepted so far.
func (p *Pipeline) Submitted() uint64 {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitted - s.base
}

// Committed returns the number of transactions committed so far.
func (p *Pipeline) Committed() uint64 {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ncommitted
}

// InFlight returns the number of submissions not yet committed; it
// never exceeds the configured Capacity.
func (p *Pipeline) InFlight() int {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.submitted - (s.base + s.ncommitted))
}

// Durable returns the durability frontier: every age below it is on
// stable storage and will survive a crash. Without a WAL it returns
// zero.
func (p *Pipeline) Durable() uint64 {
	if p.s.dur == nil {
		return 0
	}
	return p.s.dur.log.Durable()
}

// Checkpoint takes a checkpoint now: it freezes the claim gate at the
// current claim frontier, waits for every age below it to commit (a
// never-claimed age has no speculative trace in memory, so the Vars
// then hold the exact sequential state of that prefix), serializes
// the Var space through the Snapshotter, lifts the gate, and commits
// the snapshot through the WAL's CheckpointSink — which truncates log
// history the checkpoint made redundant. It returns the checkpoint's
// frontier age.
//
// Execution only stalls between the gate and the snapshot; the
// checkpoint's own fsyncs happen after the gate lifts, concurrent
// with new commits. Requires a Snapshotter and a WAL implementing
// CheckpointSink; a repeat call at an unchanged frontier is a no-op
// returning the previous checkpoint age.
func (p *Pipeline) Checkpoint() (uint64, error) {
	if p.ckptSink == nil || p.cfg.Snapshotter == nil {
		return 0, errors.New("stm: Checkpoint requires Config.Snapshotter and a WAL implementing CheckpointSink")
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	s := p.s
	s.mu.Lock()
	if s.fault != nil {
		f := s.fault
		s.mu.Unlock()
		return p.lastCkpt, &Stopped{Fault: f}
	}
	if err := s.dur.err; err != nil {
		s.mu.Unlock()
		return p.lastCkpt, &DurabilityError{Err: err}
	}
	gate := s.claimed
	if gate <= p.lastCkpt {
		s.mu.Unlock()
		return p.lastCkpt, nil // no commits since the last checkpoint
	}
	var ckptT0 time.Time
	if p.po != nil {
		ckptT0 = time.Now()
	}
	s.gated, s.gate = true, gate
	for s.fault == nil && s.base+s.ncommitted < gate {
		s.cond.Wait()
	}
	if s.fault != nil {
		f := s.fault
		s.gated = false
		s.cond.Broadcast()
		s.mu.Unlock()
		return p.lastCkpt, &Stopped{Fault: f}
	}
	s.mu.Unlock()
	// The gate froze the grant frontier; an engine whose write-backs
	// trail its grants (STMLite) must drain them into memory before
	// the snapshot reads raw Vars.
	p.WaitStable()
	state, serr := p.cfg.Snapshotter.Snapshot()
	s.mu.Lock()
	s.gated = false
	s.cond.Broadcast()
	s.mu.Unlock()
	if serr != nil {
		err := fmt.Errorf("stm: checkpoint snapshot at age %d: %w", gate, serr)
		p.setCkptErr(err)
		return p.lastCkpt, err
	}
	if err := p.ckptSink.Checkpoint(gate, state); err != nil {
		err = fmt.Errorf("stm: checkpoint commit at age %d: %w", gate, err)
		p.setCkptErr(err)
		return p.lastCkpt, err
	}
	p.s.mu.Lock()
	p.lastCkpt = gate
	p.ckptN++
	p.s.mu.Unlock()
	if p.po != nil {
		p.po.ckptDur.Observe(time.Since(ckptT0).Nanoseconds())
	}
	return gate, nil
}

// WaitStable drains the engine's trailing write-backs into memory
// (meta.Stabilizer; only STMLite implements it — every other engine
// publishes writes before advancing the order, so this returns
// immediately). Raw Var reads observe the exact committed state only
// if the caller has otherwise frozen the commit frontier — the
// checkpointer's claim gate, or the sharded router's submission
// freeze.
func (p *Pipeline) WaitStable() {
	if st, ok := p.eng.(meta.Stabilizer); ok {
		st.WaitStable()
	}
}

// setCkptErr latches the first checkpoint failure; auto-checkpointing
// stops and Close reports it (the log itself may still be healthy —
// durability of the record stream is unaffected).
func (p *Pipeline) setCkptErr(err error) {
	p.s.mu.Lock()
	if p.ckptErr == nil {
		p.ckptErr = err
	}
	p.s.mu.Unlock()
}

// Checkpoints returns how many checkpoints the pipeline has committed.
func (p *Pipeline) Checkpoints() uint64 {
	p.s.mu.Lock()
	defer p.s.mu.Unlock()
	return p.ckptN
}

// CheckpointAge returns the frontier age of the newest committed
// checkpoint (FirstAge when none has been taken yet).
func (p *Pipeline) CheckpointAge() uint64 {
	p.s.mu.Lock()
	defer p.s.mu.Unlock()
	return p.lastCkpt
}

// ckptLoop runs automatic checkpoints off the commit path: committed()
// kicks it every CheckpointEvery commits; Close closes the kick
// channel after the last commit has landed.
func (p *Pipeline) ckptLoop() {
	defer close(p.cdone)
	for range p.s.ckptKick {
		p.s.mu.Lock()
		stop := p.ckptErr != nil
		p.s.mu.Unlock()
		if stop {
			continue // drain kicks; the failure already reported
		}
		p.Checkpoint() // errors latch via setCkptErr
	}
}

// Epochs returns how many recycling epochs have completed.
func (p *Pipeline) Epochs() uint64 {
	s := p.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs
}

// janitor performs epoch work off the commit path: it folds the
// engine's counters into the stream totals and scrubs recyclable
// engine metadata. One goroutine per pipeline; woken at epoch
// boundaries, exits when Close closes the kick channel.
func (p *Pipeline) janitor() {
	defer close(p.jdone)
	for range p.jkick {
		p.s.foldEpoch(p.stats)
		if rec, ok := p.eng.(meta.Recycler); ok {
			rec.Recycle()
		}
	}
}

// pipeEntry is one slot of the submission ring. A slot only needs to
// survive until its age is claimed (claims are in age order, so a
// slot is always consumed before the backpressure window lets it be
// overwritten).
type pipeEntry struct {
	age  uint64
	body Body
}

// tslot is one slot of the ticket ring. Unlike submission slots,
// ticket slots live until the age *commits*, and unordered engines —
// and STMLite's concurrent write-backs — report commits out of age
// order, so an age can wrap around to a slot whose older ticket is
// still unresolved; such tickets overflow into the age-keyed map. For
// in-order engines the overflow never happens (in-flight ages span
// less than the capacity-sized ring), so the steady-state path is an
// age-tagged array slot instead of a map insert+delete per
// transaction.
type tslot struct {
	age uint64
	t   *Ticket
}

// pslot is one slot of the durable payload ring; full distinguishes
// an occupied slot from a consumed one (payloads may legitimately be
// empty).
type pslot struct {
	age  uint64
	p    []byte
	full bool
}

// stream implements feed for the pipeline: a bounded ring of
// submissions between the producer side (Submit/Drain/Close) and the
// run-loop's workers. All state is guarded by mu; the single cond
// covers every wait (backpressure, claim, drain) — commits broadcast
// and each waiter re-checks its own predicate.
type stream struct {
	mu   sync.Mutex
	cond *sync.Cond

	entries []pipeEntry
	emask   uint64
	tslots  []tslot            // ticket ring; same geometry as entries
	tickets map[uint64]*Ticket // overflow for out-of-order commit skew

	base       uint64 // first age of the stream
	capacity   int
	submitted  uint64 // next age to assign (starts at base)
	claimed    uint64 // next age to hand to a worker (starts at base)
	ncommitted uint64 // count of committed transactions
	closed     bool
	fault      *Fault

	epochAges  uint64
	sinceEpoch uint64
	epochs     uint64
	totals     meta.StatsView
	epochKick  chan<- struct{}

	// Claim gate: while gated, workers may not claim ages at or above
	// gate. The checkpointer raises it to freeze a quiescent frontier
	// (no speculative execution — not even an aborted attempt's
	// in-place write — ever happens at or above a never-claimed age)
	// and always lifts it again; a worker that finds the stream closed
	// but gated therefore waits rather than exiting.
	gated bool
	gate  uint64

	ckptEvery uint64        // Config.CheckpointEvery, 0 when disabled
	sinceCkpt uint64        // commits since the last checkpoint kick
	ckptKick  chan struct{} // signals the checkpointer goroutine

	onCommit func(age uint64) // Config.OnCommit, nil when unset
	dur      *durState        // durability state, nil without a WAL
	po       *pipeObs         // observability, nil without Config.Obs
}

// durState is the stream's durability bookkeeping: payload retention
// between submit and commit, the contiguous log frontier, and the
// tickets deferred past commit by WaitDurable. All fields are guarded
// by the stream mutex.
type durState struct {
	log  DurableLog
	wait bool   // Config.WaitDurable
	next uint64 // next age to hand to the log (contiguous frontier)
	// pring retains each in-flight age's encoded payload until that
	// age commits. Like the ticket ring, slots are age-tagged with a
	// map escape: commit-order skew (unordered engines, STMLite's
	// concurrent write-backs) lets backpressure admit age+size while
	// an older age's payload still occupies the slot, so post evicts
	// the occupant into overflow instead of clobbering it. In-order
	// engines never overflow.
	pring    []pslot
	overflow map[uint64][]byte
	// pend holds payloads of ages committed out of frontier order
	// (only engines with commit-order skew put anything here; the
	// log still receives a strictly contiguous sequence).
	pend map[uint64][]byte
	// waiting holds committed tickets whose age is not yet durable
	// (WaitDurable); resolved by durableTo as sync points land.
	waiting map[uint64]*Ticket
	err     error // first log failure; the durable prefix is frozen
}

func newStream(cfg Config) *stream {
	size := uint64(1)
	for size < uint64(cfg.Capacity) {
		size <<= 1
	}
	s := &stream{
		entries:   make([]pipeEntry, size),
		emask:     size - 1,
		tslots:    make([]tslot, size),
		tickets:   make(map[uint64]*Ticket),
		base:      cfg.FirstAge,
		capacity:  cfg.Capacity,
		submitted: cfg.FirstAge,
		claimed:   cfg.FirstAge,
		epochAges: uint64(cfg.EpochAges),
		onCommit:  cfg.OnCommit,
	}
	if cfg.WAL != nil {
		s.dur = &durState{
			log:      cfg.WAL,
			wait:     cfg.WaitDurable,
			next:     cfg.FirstAge,
			pring:    make([]pslot, size),
			overflow: make(map[uint64][]byte),
			pend:     make(map[uint64][]byte),
			waiting:  make(map[uint64]*Ticket),
		}
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// post assigns the next age to body and registers the caller's
// ticket (and, on durable pipelines, retains the encoded payload
// until commit). Called with mu held and room available.
func (s *stream) post(t *Ticket, body Body, payload []byte) {
	age := s.submitted
	t.age = age
	if po := s.po; po != nil {
		if age&latSampleMask == 0 {
			t.ts = time.Now().UnixNano()
		}
		if po.trace.Sampled(age) {
			po.trace.Record(age, obs.StageSubmit)
		}
	}
	s.entries[age&s.emask] = pipeEntry{age: age, body: body}
	if d := s.dur; d != nil {
		sl := &d.pring[age&s.emask]
		if sl.full {
			// Commit-order skew: the previous tenant has not committed
			// yet; keep its payload reachable by age.
			d.overflow[sl.age] = sl.p
		}
		sl.age, sl.p, sl.full = age, payload, true
	}
	sl := &s.tslots[age&s.emask]
	if sl.t == nil {
		sl.age, sl.t = age, t
	} else {
		s.tickets[age] = t // ring slot still held by an unresolved age
	}
	s.submitted++
}

// claim implements feed: hand out submitted ages in order, blocking
// while the stream is open but empty.
func (s *stream) claim(stop func() bool) (uint64, Body, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if stop() {
			return 0, nil, false
		}
		if s.claimed < s.submitted && !(s.gated && s.claimed >= s.gate) {
			age := s.claimed
			s.claimed++
			return age, s.entries[age&s.emask].body, true
		}
		if s.closed && s.claimed == s.submitted {
			// Fully drained. (A closed-but-gated stream with entries
			// above the gate parks instead: the checkpointer always
			// lifts its gate, and the tail must still be driven to
			// commit.)
			return 0, nil, false
		}
		s.cond.Wait()
	}
}

// committed implements feed: hand the age to the durability layer,
// resolve its ticket (immediately, or once durable under
// WaitDurable), advance the commit count (which releases
// backpressure), and signal the janitor at epoch boundaries.
func (s *stream) committed(age uint64) {
	s.mu.Lock()
	var t *Ticket
	if sl := &s.tslots[age&s.emask]; sl.t != nil && sl.age == age {
		t = sl.t
		sl.t = nil
	} else if tk, ok := s.tickets[age]; ok {
		delete(s.tickets, age)
		t = tk
	}
	tk := t // survives the WaitDurable deferral below, for latency stamps
	if s.onCommit != nil {
		s.onCommit(age)
	}
	if d := s.dur; d != nil {
		s.logAge(age)
		// Only WaitDurable couples ticket resolution to the log: a
		// plain durable pipeline acknowledges at commit — even after a
		// log failure the transaction did commit, so its ticket stays
		// nil (exactly as the sharded router behaves) and the failure
		// reaches the caller through WaitDurable tickets and Close.
		// (t is always nil after a fault: halted's sweep resolved
		// every registered ticket under this same mutex.)
		if t != nil && d.wait {
			switch {
			case d.err != nil:
				// The log is dead: the transaction committed in
				// memory, but the durability promise Wait is waiting
				// on cannot be kept.
				t.resolve(&DurabilityError{Err: d.err})
				t = nil
			case age >= d.log.Durable():
				d.waiting[age] = t // resolved by durableTo at a sync point
				t = nil
			}
		}
	}
	if po := s.po; po != nil {
		// Sampled ages only (same mask as post, so a timed ticket is
		// always matched here): the frontier advance is serialized, so
		// clock reads per commit are real throughput.
		if age&latSampleMask == 0 {
			now := time.Now().UnixNano()
			po.lastCommit.Store(now)
			if tk != nil && tk.ts != 0 {
				po.commitLat.Observe(now - tk.ts)
				if t != nil {
					po.resolveLat.Observe(now - tk.ts) // resolving at commit
				}
			}
		}
		if po.trace.Sampled(age) {
			po.trace.Record(age, obs.StageCommit)
			if t != nil {
				po.trace.Record(age, obs.StageResolve)
			}
		}
	}
	if t != nil {
		t.resolve(nil)
	}
	s.ncommitted++
	s.sinceEpoch++
	if s.sinceEpoch >= s.epochAges {
		s.sinceEpoch = 0
		select {
		case s.epochKick <- struct{}{}:
		default: // janitor is behind; this epoch folds into the next
		}
	}
	if s.ckptEvery > 0 {
		s.sinceCkpt++
		if s.sinceCkpt >= s.ckptEvery {
			s.sinceCkpt = 0
			select {
			case s.ckptKick <- struct{}{}:
			default: // a checkpoint is already pending or in progress
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// logAge is the commit-frontier hook: it consumes the age's retained
// payload and extends the write-ahead log's strictly contiguous
// record sequence. Ordered engines report commits in age order, so
// the append happens right here; an out-of-order commit (unordered
// engines only) parks its payload until the frontier reaches it. An
// age above a permanent gap — a racing commit that landed past a
// fault — parks forever, which is exactly the prefix property the
// log guarantees. Called with mu held; Append only buffers (group
// commit happens in the log's syncer), so the commit path never waits
// on storage.
func (s *stream) logAge(age uint64) {
	d := s.dur
	var p []byte
	if sl := &d.pring[age&s.emask]; sl.full && sl.age == age {
		p = sl.p
		sl.p, sl.full = nil, false
	} else {
		p = d.overflow[age]
		delete(d.overflow, age)
	}
	if d.err != nil {
		return
	}
	if age != d.next {
		// Parked past this age's ticket resolution, which releases the
		// caller's buffer (the SubmitEncoded contract) — so park a
		// copy, not the caller's bytes. Only commit-order skew
		// (STMLite's concurrent write-backs) ever pays this.
		d.pend[age] = append([]byte(nil), p...)
		return
	}
	for {
		if err := d.log.Append(d.next, p); err != nil {
			d.err = err
			return
		}
		d.next++
		var ok bool
		p, ok = d.pend[d.next]
		if !ok {
			return
		}
		delete(d.pend, d.next)
	}
}

// durableTo is the log's durability observer (registered via Notify):
// every age below next is now on stable storage, so WaitDurable
// tickets up to there resolve. A log failure resolves every deferred
// ticket with the durability error instead — their transactions
// committed in memory, but the promise Wait was waiting on is broken.
func (s *stream) durableTo(next uint64, err error) {
	s.mu.Lock()
	d := s.dur
	if err != nil && d.err == nil {
		d.err = err
	}
	for age, t := range d.waiting {
		switch {
		case d.err != nil:
			delete(d.waiting, age)
			t.resolve(&DurabilityError{Err: d.err})
		case age < next:
			delete(d.waiting, age)
			if po := s.po; po != nil {
				if t.ts != 0 {
					po.resolveLat.Observe(time.Now().UnixNano() - t.ts)
				}
				if po.trace.Sampled(age) {
					po.trace.Record(age, obs.StageDurable)
					po.trace.Record(age, obs.StageResolve)
				}
			}
			t.resolve(nil)
		}
	}
	s.mu.Unlock()
}

// halted implements feed: the loop stopped on a fault before draining.
// Resolve every outstanding ticket and wake all waiters.
func (s *stream) halted(f *Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fault != nil {
		return
	}
	s.fault = f
	s.resolveOutstanding(f)
	s.cond.Broadcast()
}

// resolveOutstanding resolves every unresolved ticket: the faulting
// age with the fault itself, everything else with a *Stopped error.
// Called with mu held.
func (s *stream) resolveOutstanding(f *Fault) {
	fail := func(age uint64, t *Ticket) {
		switch {
		case f != nil && age == f.Age:
			t.resolve(f)
		case f != nil:
			t.resolve(&Stopped{Fault: f})
		default:
			t.resolve(ErrClosed)
		}
	}
	for i := range s.tslots {
		if sl := &s.tslots[i]; sl.t != nil {
			t := sl.t
			sl.t = nil
			fail(sl.age, t)
		}
	}
	for age, t := range s.tickets {
		delete(s.tickets, age)
		fail(age, t)
	}
}

// drained reports that the stream is closed and every submitted age
// has committed (the validator's exit condition).
func (s *stream) drained() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed && s.base+s.ncommitted == s.submitted
}

// close stops accepting submissions and wakes claim-blocked workers
// so they can drain the tail and exit.
func (s *stream) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// settle resolves any ticket still unresolved at teardown (only
// possible on the fault path, where halted already ran; this is a
// backstop so no Wait can hang after Close returns). On durable
// pipelines it also clears WaitDurable tickets that survived the
// closing sync: ages stranded above a fault's gap in the committed
// order can never become durable (the log's prefix property), and a
// failed log can keep no promises at all.
func (s *stream) settle() {
	s.mu.Lock()
	s.resolveOutstanding(s.fault)
	if d := s.dur; d != nil {
		for age, t := range d.waiting {
			delete(d.waiting, age)
			switch {
			case d.err != nil:
				t.resolve(&DurabilityError{Err: d.err})
			case s.fault != nil:
				t.resolve(&Stopped{Fault: s.fault})
			default:
				t.resolve(ErrClosed)
			}
		}
	}
	s.mu.Unlock()
}

// foldEpoch rotates the engine counters and folds the delta into the
// stream totals in one critical section, so Pipeline.Stats (which
// reads totals + live counters under the same lock) never observes
// the window where counters are zeroed but the delta is unfolded.
func (s *stream) foldEpoch(st *meta.Stats) {
	s.mu.Lock()
	s.totals = s.totals.Plus(st.Rotate())
	s.epochs++
	s.mu.Unlock()
}

// Throughput is a convenience for benchmarks: committed transactions
// per second over the given elapsed time.
func Throughput(committed uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(committed) / elapsed.Seconds()
}
