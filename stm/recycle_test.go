package stm_test

import (
	"testing"

	"github.com/orderedstm/ostm/stm"
)

// TestRecyclingDeterminism is the descriptor-recycling safety oracle:
// under the most aggressive reuse pressure the pipeline can produce —
// a tiny run-ahead window and capacity (so a retired descriptor is
// renewed almost immediately), a small high-contention account pool
// (so attempts constantly abort, steal locks and kill readers, leaving
// stale references in lock words and reader slots), and tiny recycling
// epochs (so the Recycle sweep runs concurrently with live traffic) —
// every ordered algorithm must still produce final memory and
// per-ticket results identical to the sequential in-age-order
// execution. Any stale-generation descriptor ever being honored (the
// ABA the generation stamps exist to prevent: a recycled descriptor's
// old reference treated as its live registration, or a claim CAS
// landing on its new life's lock) shows up here as a divergent result
// or a rolled-back-into-corruption account. Run with -race in CI.
func TestRecyclingDeterminism(t *testing.T) {
	n := 6000
	if testing.Short() {
		n = 1200
	}
	cmds := genStreamCmds(0xDECAF, n, streamAccounts)
	wantState, wantResults := runStreamSequential(t, cmds)

	for _, alg := range stm.OrderedAlgorithms() {
		for _, batched := range []bool{false, true} {
			name := alg.String()
			if batched {
				name += "/batch"
			}
			t.Run(name, func(t *testing.T) {
				accounts := stm.NewVars(streamAccounts)
				initAccounts(accounts)
				results := make([]uint64, n)
				p, err := stm.NewPipeline(stm.Config{
					Algorithm: alg,
					Workers:   4,
					Window:    4,
					EpochAges: 64,
				})
				if err != nil {
					t.Fatal(err)
				}
				tickets := make([]*stm.Ticket, 0, n)
				if batched {
					const chunk = 32
					bodies := make([]stm.Body, 0, chunk)
					for at := 0; at < n; at += chunk {
						end := at + chunk
						if end > n {
							end = n
						}
						bodies = bodies[:0]
						for i := at; i < end; i++ {
							bodies = append(bodies, streamBody(cmds[i], accounts, results, i))
						}
						tks, err := p.SubmitBatch(bodies)
						if err != nil {
							t.Fatalf("SubmitBatch at %d: %v", at, err)
						}
						tickets = append(tickets, tks...)
					}
				} else {
					for i, c := range cmds {
						tk, err := p.Submit(streamBody(c, accounts, results, i))
						if err != nil {
							t.Fatalf("Submit age %d: %v", i, err)
						}
						tickets = append(tickets, tk)
					}
				}
				if err := p.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				for i, tk := range tickets {
					if tk.Age() != uint64(i) {
						t.Fatalf("ticket %d carries age %d", i, tk.Age())
					}
					if err := tk.Wait(); err != nil {
						t.Fatalf("ticket %d: %v", i, err)
					}
				}
				gotState := snapshot(accounts)
				for i := range wantState {
					if gotState[i] != wantState[i] {
						t.Fatalf("account %d diverged under recycling: got %d want %d (stats %v)",
							i, gotState[i], wantState[i], p.Stats())
					}
				}
				for i := range wantResults {
					if results[i] != wantResults[i] {
						t.Fatalf("per-ticket result %d diverged under recycling: got %d want %d",
							i, results[i], wantResults[i])
					}
				}
			})
		}
	}
}

// TestRecyclingMatchesFresh cross-checks the recycling and
// fresh-descriptor executions of an identical stream: committed
// results must not depend on whether descriptors are reused. (Both
// sides are already checked against the sequential oracle above; this
// pins the two modes to each other on a second command stream and
// exercises the FreshDescriptors escape hatch.)
func TestRecyclingMatchesFresh(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 600
	}
	cmds := genStreamCmds(0xFEED5EED, n, streamAccounts)
	run := func(fresh bool) ([]uint64, []uint64) {
		accounts := stm.NewVars(streamAccounts)
		initAccounts(accounts)
		results := make([]uint64, n)
		p, err := stm.NewPipeline(stm.Config{
			Algorithm:        stm.OULSteal,
			Workers:          4,
			Window:           4,
			EpochAges:        64,
			FreshDescriptors: fresh,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cmds {
			if _, err := p.Submit(streamBody(c, accounts, results, i)); err != nil {
				t.Fatalf("Submit age %d: %v", i, err)
			}
		}
		if err := p.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return snapshot(accounts), results
	}
	recState, recResults := run(false)
	freshState, freshResults := run(true)
	for i := range recState {
		if recState[i] != freshState[i] {
			t.Fatalf("account %d: recycled %d != fresh %d", i, recState[i], freshState[i])
		}
	}
	for i := range recResults {
		if recResults[i] != freshResults[i] {
			t.Fatalf("result %d: recycled %d != fresh %d", i, recResults[i], freshResults[i])
		}
	}
}
