package stm_test

// Regression coverage for exactly-once DurabilityError resolution on
// the pipeline's failure paths (append failure, in-flight sync
// failure, Close) and for the wal.Degrade policy's contract: parked
// WaitDurable tickets fail fast, volatile commits keep flowing.
//
// Exactly-once is asserted structurally: Ticket.resolve closes a
// channel, so any double resolution panics the test. Every scenario
// additionally bounds each Wait with a timeout so a *lost* resolution
// (the other way exactly-once breaks) fails instead of hanging.

import (
	"errors"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/orderedstm/ostm/internal/faultfs"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/wal"
)

// waitTimeout waits on a ticket with a deadline; a hang means a
// WaitDurable resolution was lost.
func waitTimeout(t *testing.T, tk *stm.Ticket) error {
	t.Helper()
	select {
	case <-tk.Done():
		err, _ := tk.Err()
		return err
	case <-time.After(30 * time.Second):
		t.Fatalf("ticket for age %d never resolved", tk.Age())
		return nil
	}
}

// TestCloseWithInFlightSyncFailureExactlyOnce is the satellite
// regression: a persistent fsync failure lands while overlapped sync
// groups are in flight and the pipeline is closed underneath them.
// Every WaitDurable ticket must resolve exactly once — nil for ages
// the log made durable, DurabilityError for the rest — and Close must
// report the durability failure.
func TestCloseWithInFlightSyncFailureExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		// The first (explicit) fsync lands; every later one fails, and
		// the delay keeps the failing group on the wire while Close's
		// own sync is admitted — the overlapped shape under test.
		faultfs.Plan{Op: faultfs.OpSync, N: 2, Err: syscall.EIO, Count: -1, Delay: 2 * time.Millisecond},
	)
	// Sync policy "none": every durability point in this test is an
	// explicit Sync, so where the fault lands is deterministic.
	w, err := wal.Create(dir, 0, wal.Options{
		FS:               fs,
		MaxInFlightSyncs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	accounts := newAccounts(durableAccounts, 1000)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     4,
		WAL:         w,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	tickets := make([]*stm.Ticket, 0, n)
	submit := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tk, err := p.SubmitPayload(transferFor(uint64(i)))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			tickets = append(tickets, tk)
		}
	}
	// First half committed, appended, and synced: those tickets
	// resolve durable before the disk goes bad.
	submit(0, n/2)
	if !p.WaitFrontier(n / 2) {
		t.Fatal("frontier never reached n/2")
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("healthy sync failed: %v", err)
	}
	// Second half commits but only ever meets failing syncs.
	submit(n/2, n)
	if !p.WaitFrontier(n) {
		t.Fatal("frontier never reached n")
	}
	// Put a doomed sync on the wire (it parks 2ms inside the failing
	// fdatasync), then Close the pipeline underneath it so Close's own
	// final sync overlaps the in-flight failure.
	syncErr := make(chan error, 1)
	go func() { syncErr <- w.Sync() }()
	time.Sleep(500 * time.Microsecond)
	closeErr := p.Close()
	var de *stm.DurabilityError
	if !errors.As(closeErr, &de) {
		t.Fatalf("Close = %v, want DurabilityError (injected=%d log=%v)", closeErr, fs.Injected(), fs.Log())
	}
	if err := <-syncErr; err == nil {
		t.Fatal("overlapped Sync reported success after the log failed")
	}
	var durable, failed int
	for _, tk := range tickets {
		err := waitTimeout(t, tk)
		// Wait must be stable: a second read returns the same answer.
		if again, _ := tk.Err(); (again != nil) != (err != nil) {
			t.Fatalf("ticket %d: Wait unstable (%v then %v)", tk.Age(), err, again)
		}
		switch {
		case err == nil:
			durable++
			if tk.Age() >= w.Durable() {
				t.Fatalf("ticket %d resolved durable beyond the log's frontier %d", tk.Age(), w.Durable())
			}
		default:
			var de *stm.DurabilityError
			if !errors.As(err, &de) {
				t.Fatalf("ticket %d resolved with %v, want nil or DurabilityError", tk.Age(), err)
			}
			failed++
		}
	}
	if durable == 0 || failed == 0 {
		t.Fatalf("durable=%d failed=%d, want both outcomes exercised (fault fired: %d)",
			durable, failed, fs.Injected())
	}
	w.Close()
}

// muteFailLog is a DurableLog whose Sync fails without ever firing
// the durability observer — the shape that used to leave WaitDurable
// tickets parked at Close to be settled with ErrClosed instead of the
// DurabilityError Close itself reported.
type muteFailLog struct {
	mu      sync.Mutex
	next    uint64
	syncErr error
}

func (l *muteFailLog) Append(age uint64, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if age == l.next {
		l.next++
	}
	return nil
}

func (l *muteFailLog) Notify(fn func(next uint64, err error)) {}

func (l *muteFailLog) Sync() error { return l.syncErr }

func (l *muteFailLog) Durable() uint64 { return 0 }

func TestCloseSyncFailureWithoutNotifyResolvesDurabilityError(t *testing.T) {
	accounts := newAccounts(durableAccounts, 1000)
	log := &muteFailLog{syncErr: syscall.EIO}
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     2,
		WAL:         log,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]*stm.Ticket, 0, 8)
	for i := 0; i < 8; i++ {
		tk, err := p.SubmitPayload(transferFor(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	closeErr := p.Close()
	var de *stm.DurabilityError
	if !errors.As(closeErr, &de) {
		t.Fatalf("Close = %v, want DurabilityError", closeErr)
	}
	for _, tk := range tickets {
		err := waitTimeout(t, tk)
		if !errors.As(err, &de) {
			t.Fatalf("ticket %d resolved with %v, want DurabilityError (the same failure Close reported)", tk.Age(), err)
		}
	}
}

// TestAppendFailureFailsParkedTicketsFast: with sync policy "none" no
// sync point will ever fire the observer, so the append-path failure
// notification is the only thing standing between a parked
// WaitDurable ticket and a hang until Close.
func TestAppendFailureFailsParkedTicketsFast(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		// Segment roll (open #2) hits a full disk.
		faultfs.Plan{Op: faultfs.OpOpen, N: 2, Err: syscall.ENOSPC, Count: -1},
	)
	w, err := wal.Create(dir, 0, wal.Options{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	accounts := newAccounts(durableAccounts, 1000)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     2,
		WAL:         w,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]*stm.Ticket, 0, 64)
	for i := 0; i < 64; i++ {
		tk, err := p.SubmitPayload(transferFor(uint64(i)))
		if err != nil {
			break
		}
		tickets = append(tickets, tk)
	}
	// No Close, no Sync: the async failure note must resolve every
	// parked ticket on its own.
	var de *stm.DurabilityError
	for _, tk := range tickets {
		if err := waitTimeout(t, tk); !errors.As(err, &de) {
			t.Fatalf("ticket %d resolved with %v, want DurabilityError", tk.Age(), err)
		}
	}
	p.Close()
	w.Close()
}

// TestDegradeFailsTicketsFastAndKeepsCommitting: under OnFail=Degrade
// a terminal sync failure detaches the log; WaitDurable tickets —
// parked and future — fail fast with ErrDegraded while the engine
// keeps committing volatile, and the recovered log never contains
// more than the frontier the writer acknowledged durable.
func TestDegradeFailsTicketsFastAndKeepsCommitting(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil,
		faultfs.Plan{Op: faultfs.OpSync, N: 2, Err: syscall.EIO, Count: -1},
	)
	w, err := wal.Create(dir, 0, wal.Options{
		FS:         fs,
		SyncEveryN: 4,
		OnFail:     wal.Degrade,
	})
	if err != nil {
		t.Fatal(err)
	}
	accounts := newAccounts(durableAccounts, 1000)
	p, err := stm.NewPipeline(stm.Config{
		Algorithm:   stm.OUL,
		Workers:     2,
		WAL:         w,
		Codec:       tfCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	var acked []uint64 // ages acknowledged durable (ticket resolved nil)
	var degradedSeen bool
	for i := 0; i < n; i++ {
		tk, err := p.SubmitPayload(transferFor(uint64(i)))
		if err != nil {
			t.Fatalf("submit %d rejected (%v): volatile commits must keep flowing after degrade", i, err)
		}
		switch err := waitTimeout(t, tk); {
		case err == nil:
			acked = append(acked, tk.Age())
		case errors.Is(err, wal.ErrDegraded):
			degradedSeen = true
		default:
			t.Fatalf("ticket %d resolved with %v, want nil or ErrDegraded", tk.Age(), err)
		}
	}
	if !degradedSeen {
		t.Fatalf("degrade never tripped (injected=%d)", fs.Injected())
	}
	if !w.Degraded() {
		t.Fatal("writer does not report Degraded after ErrDegraded tickets")
	}
	// Every transaction committed in memory despite the dead disk.
	closeErr := p.Close()
	if !errors.Is(closeErr, wal.ErrDegraded) {
		t.Fatalf("Close = %v, want ErrDegraded via DurabilityError", closeErr)
	}
	got := snapshot(accounts)
	model := make([]uint64, durableAccounts)
	for i := range model {
		model[i] = 1000
	}
	recs := make([]wal.Record, n)
	for i := range recs {
		tf := transferFor(uint64(i))
		recs[i] = wal.Record{Age: uint64(i), Payload: encodeTransfer(tf)}
	}
	if err := applyTransfers(model, recs, 0); err != nil {
		t.Fatal(err)
	}
	if !equalState(got, model) {
		t.Fatal("in-memory state diverged from the sequential fold of all submissions")
	}
	w.Close()
	// Safety: no acknowledgment beyond the recovered log.
	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, age := range acked {
		if age >= rec.Next() {
			t.Fatalf("age %d was acknowledged durable but the recovered log ends at %d", age, rec.Next())
		}
	}
}

func encodeTransfer(tf transfer) []byte {
	b, err := tfCodec{}.Encode(tf)
	if err != nil {
		panic(err)
	}
	return b
}
