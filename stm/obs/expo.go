package obs

import (
	"bufio"
	"bytes"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), grouped by family with one
// # HELP / # TYPE header per family. Histograms render only their
// non-empty buckets plus the mandatory +Inf bucket — cumulative
// counts stay correct and the payload stays small despite the
// high-resolution internal bucketing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	metrics := r.collect()
	// Group by family, preserving registration order of families and
	// of metrics within a family.
	order := make([]string, 0, len(metrics))
	byFam := make(map[string][]*metric, len(metrics))
	for _, m := range metrics {
		if _, ok := byFam[m.family]; !ok {
			order = append(order, m.family)
		}
		byFam[m.family] = append(byFam[m.family], m)
	}
	for _, fam := range order {
		group := byFam[fam]
		if h := group[0].help; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam, escapeHelp(h))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam, group[0].k.promType())
		for _, m := range group {
			if m.k == kindHistogram {
				writeHistogram(bw, m)
				continue
			}
			fmt.Fprintf(bw, "%s %s\n", m.fullName(), formatValue(m.scalar()))
		}
	}
	return bw.Flush()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value: integral values without an
// exponent (keeps counters grep-able), others via %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeHistogram(w *bufio.Writer, m *metric) {
	s := m.h.Snapshot()
	scale := m.h.renderScale()
	name := func(suffix, extra string) string {
		labels := m.labels
		if extra != "" {
			if labels != "" {
				labels += ","
			}
			labels += extra
		}
		if labels == "" {
			return m.family + suffix
		}
		return m.family + suffix + "{" + labels + "}"
	}
	var cum uint64
	for i := range s.Buckets {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		_, hi := bucketBounds(i)
		le := strconv.FormatFloat(float64(hi)*scale, 'g', -1, 64)
		fmt.Fprintf(w, "%s %d\n", name("_bucket", `le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s %d\n", name("_bucket", `le="+Inf"`), s.Count)
	fmt.Fprintf(w, "%s %s\n", name("_sum", ""), formatValue(float64(s.Sum)*scale))
	fmt.Fprintf(w, "%s %d\n", name("_count", ""), s.Count)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format (the /metrics endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(buf.Bytes())
	})
}

// NewMux returns a mux with the full debug surface mounted: /metrics
// (Prometheus), /debug/vars (expvar) and /debug/pprof (profiles).
// Using a private mux keeps the endpoints off http.DefaultServeMux.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if tr := r.Trace(); tr != nil {
		mux.Handle("/debug/trace", tr.Handler())
	}
	return mux
}

// Serve binds addr and serves the registry's debug surface (NewMux)
// on it. The returned server is already running; shut it down with
// Close. The server's Addr field holds the bound address, so ":0"
// works for tests.
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

// ValidateExposition is a strict checker for the Prometheus text
// exposition format (the scrape side of the contract CI enforces).
// It verifies comment syntax, metric and label names, label value
// quoting, sample values, that TYPE appears at most once per family
// and before its samples, and histogram invariants: cumulative
// non-decreasing buckets, a closing le="+Inf" bucket equal to _count.
func ValidateExposition(data []byte) error {
	types := make(map[string]string)
	seenSample := make(map[string]bool)
	type histState struct {
		lastLe  float64
		lastCum uint64
		infSeen bool
		inf     uint64
		count   uint64
		hasCnt  bool
	}
	hists := make(map[string]*histState) // keyed by full labeled series sans le
	lineNo := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			fields := strings.SplitN(strings.TrimLeft(rest, " "), " ", 3)
			switch fields[0] {
			case "HELP":
				if len(fields) < 2 || !validName(fields[1]) {
					return fmt.Errorf("line %d: malformed HELP", lineNo)
				}
			case "TYPE":
				if len(fields) != 3 || !validName(fields[1]) {
					return fmt.Errorf("line %d: malformed TYPE", lineNo)
				}
				switch fields[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[2])
				}
				if _, dup := types[fields[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, fields[1])
				}
				if seenSample[fields[1]] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, fields[1])
				}
				types[fields[1]] = fields[2]
			default:
				// Plain comment: legal, ignored.
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := histFamily(name, types)
		seenSample[fam] = true
		if types[fam] == "histogram" {
			key := strings.TrimSuffix(name, "_bucket")
			key = strings.TrimSuffix(key, "_sum")
			key = strings.TrimSuffix(key, "_count")
			key += "{" + labelsSansLe(labels) + "}"
			st := hists[key]
			if st == nil {
				st = &histState{}
				hists[key] = st
			}
			if value < 0 || math.IsInf(value, 0) {
				if !strings.HasSuffix(name, "_sum") {
					return fmt.Errorf("line %d: histogram sample with non-count value", lineNo)
				}
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				cum := uint64(value)
				if le == "+Inf" {
					st.infSeen, st.inf = true, cum
					break
				}
				lef, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
				if st.lastCum > 0 || st.lastLe != 0 {
					if lef < st.lastLe {
						return fmt.Errorf("line %d: le out of order (%g after %g)", lineNo, lef, st.lastLe)
					}
					if cum < st.lastCum {
						return fmt.Errorf("line %d: bucket counts not cumulative", lineNo)
					}
				}
				st.lastLe, st.lastCum = lef, cum
			case strings.HasSuffix(name, "_count"):
				st.hasCnt, st.count = true, uint64(value)
			case strings.HasSuffix(name, "_sum"):
				// value may be any float; nothing to check
			default:
				return fmt.Errorf("line %d: histogram family %s has non-histogram sample %s", lineNo, fam, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, st := range hists {
		if !st.infSeen {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", key)
		}
		if st.lastCum > st.inf {
			return fmt.Errorf("histogram %s: +Inf bucket below last bucket", key)
		}
		if st.hasCnt && st.count != st.inf {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", key, st.count, st.inf)
		}
	}
	return nil
}

// histFamily maps a sample name to the TYPE-declared family: for
// histogram samples the family is the name with the _bucket/_sum/
// _count suffix stripped, if that family was declared.
func histFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if fam := strings.TrimSuffix(name, suf); fam != name {
			if t, ok := types[fam]; ok && (t == "histogram" || t == "summary") {
				return fam
			}
		}
	}
	return name
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name = rest[:i]
		j := strings.LastIndex(rest, "}")
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label set")
		}
		labels = rest[i+1 : j]
		rest = strings.TrimLeft(rest[j+1:], " ")
	} else {
		fs := strings.SplitN(rest, " ", 2)
		if len(fs) != 2 {
			return "", "", 0, fmt.Errorf("sample without value")
		}
		name, rest = fs[0], fs[1]
	}
	if !validName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if err := validateLabels(labels); err != nil {
		return "", "", 0, err
	}
	fs := strings.Fields(rest)
	if len(fs) < 1 || len(fs) > 2 {
		return "", "", 0, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	value, err = parsePromValue(fs[0])
	if err != nil {
		return "", "", 0, err
	}
	if len(fs) == 2 {
		if _, err := strconv.ParseInt(fs[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q", fs[1])
		}
	}
	return name, labels, value, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// validateLabels checks `k="v",k="v"` syntax with escape handling.
func validateLabels(labels string) error {
	rest := labels
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return fmt.Errorf("label without value in %q", labels)
		}
		k := rest[:eq]
		if !validName(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", labels)
		}
		rest = rest[1:]
		for {
			i := strings.IndexAny(rest, `"\`)
			if i < 0 {
				return fmt.Errorf("unterminated label value in %q", labels)
			}
			if rest[i] == '\\' {
				if i+1 >= len(rest) {
					return fmt.Errorf("dangling escape in %q", labels)
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
				default:
					return fmt.Errorf("bad escape \\%c in %q", rest[i+1], labels)
				}
				rest = rest[i+2:]
				continue
			}
			rest = rest[i+1:]
			break
		}
		if rest != "" {
			if rest[0] != ',' {
				return fmt.Errorf("junk after label value in %q", labels)
			}
			rest = rest[1:]
		}
	}
	return nil
}

// labelsSansLe strips the le pair so bucket series of one histogram
// share a key, normalizing pair order.
func labelsSansLe(labels string) string {
	if labels == "" {
		return ""
	}
	pairs := splitLabelPairs(labels)
	out := pairs[:0]
	for _, p := range pairs {
		if !strings.HasPrefix(p, "le=") {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// labelValue extracts the (unescaped-enough) value of label k.
func labelValue(labels, k string) (string, bool) {
	for _, p := range splitLabelPairs(labels) {
		if strings.HasPrefix(p, k+"=") {
			v := strings.TrimPrefix(p, k+"=")
			v = strings.TrimPrefix(v, `"`)
			v = strings.TrimSuffix(v, `"`)
			return v, true
		}
	}
	return "", false
}

// splitLabelPairs splits on commas outside quoted values.
func splitLabelPairs(labels string) []string {
	var out []string
	start, inQ := 0, false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQ {
				i++
			}
		case '"':
			inQ = !inQ
		case ',':
			if !inQ {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, labels[start:])
	return out
}
