package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestTraceRingSamplingAndOrder(t *testing.T) {
	tr := NewTraceRing(8, 100)
	if tr.SampleEvery() != 100 {
		t.Fatalf("sample = %d", tr.SampleEvery())
	}
	if !tr.Sampled(0) || !tr.Sampled(300) || tr.Sampled(1) || tr.Sampled(150) {
		t.Fatal("sampling rule broken")
	}
	for age := uint64(0); age < 12; age++ {
		tr.Record(age*100, StageSubmit)
	}
	if tr.Len() != 8 {
		t.Fatalf("len = %d", tr.Len())
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("events = %d", len(evs))
	}
	// Oldest surviving event is age 400 (12 writes into 8 slots).
	if evs[0].Age != 400 || evs[7].Age != 1100 {
		t.Fatalf("window = %d..%d", evs[0].Age, evs[7].Age)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatal("timestamps not monotone")
		}
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"stage":"submit"`) {
		t.Fatalf("json: %s", b.String())
	}
}

func TestTraceRingConcurrentRecord(t *testing.T) {
	tr := NewTraceRing(1024, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(uint64(i), Stage(i%int(numStages)))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = tr.Events()
			}
		}
	}()
	wg.Wait()
	close(done)
	if tr.Len() != 1024 {
		t.Fatalf("len = %d", tr.Len())
	}
	for _, ev := range tr.Events() {
		if ev.Stage == "unknown" {
			t.Fatal("unknown stage leaked")
		}
	}
}

func TestStageStrings(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		if s.String() == "" || s.String() == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(250).String() != "unknown" {
		t.Fatal("out-of-range stage must be unknown")
	}
}
