package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Stage is one step of a transaction's lifecycle, recorded into the
// trace ring for sampled ages.
type Stage uint8

const (
	StageSubmit  Stage = iota // age assigned, ticket issued
	StageExecute              // an execution attempt started
	StageCommit               // committed at the frontier
	StageDurable              // age covered by a completed group fsync
	StageResolve              // ticket resolved to the caller
	StageFence                // cross-shard fence body entered
	numStages
)

var stageNames = [numStages]string{
	"submit", "execute", "commit", "durable", "resolve", "fence",
}

// String returns the stage name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// traceSlot is one ring entry. Fields are individually atomic so a
// reader racing a wrapped writer sees torn events, never torn words —
// acceptable for forensics, clean under the race detector.
type traceSlot struct {
	age   atomic.Uint64
	stage atomic.Uint32
	ts    atomic.Int64
}

// TraceEvent is the exported form of one recorded lifecycle event.
type TraceEvent struct {
	Age   uint64 `json:"age"`
	Stage string `json:"stage"`
	TS    int64  `json:"ts_ns"` // UnixNano at record time
}

// TraceRing is a fixed-size, allocation-free lifecycle event ring.
// Ages are sampled deterministically (age % SampleEvery == 0) so the
// stages of one sampled transaction always appear together; recording
// is an atomic slot claim plus three atomic stores, no heap per
// event. The ring holds the most recent size events (size is rounded
// up to a power of two).
type TraceRing struct {
	sample uint64
	mask   uint64
	next   atomic.Uint64
	slots  []traceSlot
}

// NewTraceRing returns a ring holding at least size events, sampling
// every sampleEvery-th age (0 or 1 = every age).
func NewTraceRing(size int, sampleEvery uint64) *TraceRing {
	if size < 1 {
		size = 1
	}
	n := 1
	for n < size {
		n <<= 1
	}
	if sampleEvery == 0 {
		sampleEvery = 1
	}
	return &TraceRing{sample: sampleEvery, mask: uint64(n - 1), slots: make([]traceSlot, n)}
}

// SampleEvery returns the configured sampling interval.
func (t *TraceRing) SampleEvery() uint64 {
	if t == nil {
		return 0
	}
	return t.sample
}

// Sampled reports whether events for the age should be recorded.
// Nil-safe, so call sites need no separate nil branch.
func (t *TraceRing) Sampled(age uint64) bool {
	return t != nil && age%t.sample == 0
}

// Record appends one event for the age (callers normally gate on
// Sampled first; Record itself does not re-check). Nil-safe.
func (t *TraceRing) Record(age uint64, s Stage) {
	if t == nil {
		return
	}
	i := t.next.Add(1) - 1
	slot := &t.slots[i&t.mask]
	slot.age.Store(age)
	slot.stage.Store(uint32(s))
	slot.ts.Store(time.Now().UnixNano())
}

// Len returns the number of events currently held.
func (t *TraceRing) Len() int {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if n > t.mask+1 {
		n = t.mask + 1
	}
	return int(n)
}

// Events returns the held events oldest-first. Events racing the
// snapshot may be torn across fields (age from one event, timestamp
// from the next); consumers sort/filter by age anyway.
func (t *TraceRing) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	written := t.next.Load()
	n := written
	if n > t.mask+1 {
		n = t.mask + 1
	}
	out := make([]TraceEvent, 0, n)
	for k := uint64(0); k < n; k++ {
		slot := &t.slots[(written-n+k)&t.mask]
		st := Stage(slot.stage.Load())
		out = append(out, TraceEvent{
			Age:   slot.age.Load(),
			Stage: st.String(),
			TS:    slot.ts.Load(),
		})
	}
	return out
}

// WriteJSON dumps the ring as a JSON array of events, oldest first.
func (t *TraceRing) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	evs := t.Events()
	if evs == nil {
		evs = []TraceEvent{}
	}
	return enc.Encode(evs)
}

// Handler serves the ring as JSON (mounted at /debug/trace by NewMux).
func (t *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	})
}
