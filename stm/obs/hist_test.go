package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// Buckets must tile the value space: every value maps to exactly one
// bucket whose bounds contain it, and bounds are contiguous.
func TestBucketMappingContiguous(t *testing.T) {
	prevHi := int64(-1)
	for i := 0; i < numBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo=%d, want %d (gap/overlap)", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Fatalf("bucket %d: hi=%d < lo=%d", i, hi, lo)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucketIndex(%d)=%d, want %d", lo, got, i)
		}
		if got := bucketIndex(hi); got != i {
			t.Fatalf("bucketIndex(%d)=%d, want %d", hi, got, i)
		}
		prevHi = hi
	}
	// Beyond the last octave: clamp, don't panic.
	if got := bucketIndex(1 << 62); got != numBuckets-1 {
		t.Fatalf("overflow value mapped to %d, want top bucket", got)
	}
	if got := bucketIndex(-5); got != 0 {
		t.Fatalf("negative value mapped to %d, want 0", got)
	}
}

// Quantile estimates must land within one sub-bucket (12.5% relative)
// of the exact quantiles of the recorded distribution.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]int64, 0, 50_000)
	for i := 0; i < 50_000; i++ {
		// Log-uniform over ~6 decades, the shape of a latency tail.
		v := int64(1) << uint(rng.Intn(31))
		v += rng.Int63n(v)
		h.Observe(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count %d, want %d", s.Count, len(vals))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := float64(vals[int(q*float64(len(vals)))-1])
		got := s.Quantile(q)
		rel := (got - exact) / exact
		if rel < -0.13 || rel > 0.14 {
			t.Errorf("q%.3f: got %.0f, exact %.0f (rel err %.3f)", q, got, exact, rel)
		}
	}
	if m := s.Max(); m < float64(vals[len(vals)-1]) {
		t.Errorf("Max %.0f below true max %d", m, vals[len(vals)-1])
	}
}

func TestSnapshotMergeAndMean(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		b.Observe(i * 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(&sb)
	if sa.Count != 200 {
		t.Fatalf("merged count %d", sa.Count)
	}
	wantSum := int64(5050 + 5050*1000)
	if sa.Sum != wantSum {
		t.Fatalf("merged sum %d, want %d", sa.Sum, wantSum)
	}
	if got := sa.Mean(); got != float64(wantSum)/200 {
		t.Fatalf("mean %g", got)
	}
	var empty HistSnapshot
	if empty.Quantile(0.99) != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

// Race coverage for the padded cells: concurrent per-worker recording
// through private cells, default-cell recording, cell creation, and
// snapshotting must be clean under -race and lose no increments once
// writers stop.
func TestHistCellConcurrentRecordSnapshot(t *testing.T) {
	var h Histogram
	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshotter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				_ = s.Quantile(0.99)
			}
		}
	}()
	var inner sync.WaitGroup
	for w := 0; w < workers; w++ {
		inner.Add(1)
		go func(w int) {
			defer inner.Done()
			cell := h.NewCell()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					cell.Observe(int64(w*perWorker + i))
				} else {
					h.Observe(int64(i))
				}
			}
		}(w)
	}
	inner.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if want := uint64(workers * perWorker); s.Count != want {
		t.Fatalf("count %d, want %d", s.Count, want)
	}
	var bsum uint64
	for i := range s.Buckets {
		bsum += s.Buckets[i]
	}
	if bsum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bsum, s.Count)
	}
}

func TestNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot must be empty")
	}
	var c *HistCell
	c.Observe(1)
	var cnt *Counter
	cnt.Inc()
	cnt.Add(3)
	if cnt.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	var g *Gauge
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	var tr *TraceRing
	if tr.Sampled(0) {
		t.Fatal("nil ring samples nothing")
	}
	tr.Record(0, StageSubmit)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil ring holds nothing")
	}
}
