// Package obs is the engine's observability layer: a small,
// allocation-free metrics core (atomic counters, gauges, log-bucketed
// latency histograms with padded per-worker cells), Prometheus
// text-format and expvar exposition, an optional HTTP server mounting
// /metrics, /debug/vars and net/http/pprof, and a sampled
// per-transaction lifecycle trace ring for tail-latency forensics.
//
// The package is intentionally dependency-free (stdlib only) and is
// wired into the engine through optional *Registry fields on
// stm.Config, shard.Config and wal.Options. A nil registry means no
// instrument is ever touched — the hot paths stay exactly as fast as
// an uninstrumented build. With a registry attached, every record is
// a handful of atomic adds: no locks, no allocation, no time.Now
// beyond the one stamp a latency measurement needs.
//
// Naming follows Prometheus conventions: families are ostm_*,
// counters end in _total, duration histograms in _seconds (recorded
// in integer nanoseconds, scaled at exposition). Label-scoped views
// are built with With, e.g. Registry.With("shard", "3") — the sharded
// router hands each shard pipeline a scoped view so every per-shard
// family carries a shard label while sharing one underlying table.
package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; all methods are safe on a nil receiver (they
// do nothing / return zero), so call sites gated by an optional
// registry need no branches.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Like Counter, methods are
// nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered instrument under its full name
// (family plus rendered label set).
type metric struct {
	family string
	labels string // rendered `k="v",k="v"` or ""
	help   string
	k      kind
	c      *Counter
	g      *Gauge
	f      func() float64
	h      *Histogram
}

func (m *metric) fullName() string {
	if m.labels == "" {
		return m.family
	}
	return m.family + "{" + m.labels + "}"
}

// scalar returns the metric's current value for non-histogram kinds.
func (m *metric) scalar() float64 {
	switch m.k {
	case kindCounter:
		return float64(m.c.Value())
	case kindGauge:
		return float64(m.g.Value())
	case kindCounterFunc, kindGaugeFunc:
		return m.f()
	}
	return 0
}

// core is the shared state behind a Registry and all its label-scoped
// views: the ordered metric table and the optional trace ring.
type core struct {
	mu    sync.Mutex
	list  []*metric          // registration order
	index map[string]*metric // full name -> metric
	trace atomic.Pointer[TraceRing]
}

// Registry is a named collection of instruments. The zero Registry is
// not usable; construct with NewRegistry. Registration is cheap and
// idempotent: registering the same family+labels twice returns the
// first instrument, so independent components may share a registry
// without coordination. Recording through the returned handles is
// lock-free; only registration and collection take the registry lock.
type Registry struct {
	c      *core
	labels string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{c: &core{index: make(map[string]*metric)}}
}

// With returns a view of the same registry whose registrations carry
// the given label pairs in addition to any labels already on r. Pairs
// are "key, value, key, value, ..."; With panics on an odd count or
// an invalid label name. Scoped views share the underlying table:
// collection (WritePrometheus, Value, Hist, ...) always sees every
// metric regardless of which view registered it.
func (r *Registry) With(pairs ...string) *Registry {
	if len(pairs)%2 != 0 {
		panic("obs: With requires key/value pairs")
	}
	var b strings.Builder
	b.WriteString(r.labels)
	for i := 0; i < len(pairs); i += 2 {
		if !validName(pairs[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", pairs[i]))
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	return &Registry{c: r.c, labels: b.String()}
}

// validName reports whether s is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (colon allowed in metric names only;
// we accept it for both — the engine never uses it in labels).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// register adds (or finds) the metric for family under r's label
// scope. A kind mismatch on re-registration is a programming error
// and panics.
func (r *Registry) register(family, help string, k kind, build func(*metric)) *metric {
	if !validName(family) {
		panic(fmt.Sprintf("obs: invalid metric name %q", family))
	}
	probe := &metric{family: family, labels: r.labels}
	name := probe.fullName()
	r.c.mu.Lock()
	defer r.c.mu.Unlock()
	if m, ok := r.c.index[name]; ok {
		if m.k != k {
			panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, k.promType(), m.k.promType()))
		}
		return m
	}
	probe.help, probe.k = help, k
	build(probe)
	r.c.index[name] = probe
	r.c.list = append(r.c.list, probe)
	return probe
}

// Counter registers (or finds) a counter under r's label scope.
func (r *Registry) Counter(family, help string) *Counter {
	m := r.register(family, help, kindCounter, func(m *metric) { m.c = new(Counter) })
	return m.c
}

// Gauge registers (or finds) a gauge under r's label scope.
func (r *Registry) Gauge(family, help string) *Gauge {
	m := r.register(family, help, kindGauge, func(m *metric) { m.g = new(Gauge) })
	return m.g
}

// CounterFunc registers a counter whose value is pulled from f at
// collection time (for totals an engine already tracks internally).
// f must be safe to call from any goroutine.
func (r *Registry) CounterFunc(family, help string, f func() float64) {
	r.register(family, help, kindCounterFunc, func(m *metric) { m.f = f })
}

// GaugeFunc registers a gauge pulled from f at collection time.
func (r *Registry) GaugeFunc(family, help string, f func() float64) {
	r.register(family, help, kindGaugeFunc, func(m *metric) { m.f = f })
}

// Histogram registers (or finds) a unitless histogram (counts,
// bytes, group sizes) under r's label scope.
func (r *Registry) Histogram(family, help string) *Histogram {
	m := r.register(family, help, kindHistogram, func(m *metric) { m.h = &Histogram{scale: 1} })
	return m.h
}

// DurationHistogram registers (or finds) a latency histogram. Observe
// integer nanoseconds; exposition scales bucket bounds and sums to
// seconds, matching the _seconds naming convention. Quantiles from
// snapshots stay in nanoseconds.
func (r *Registry) DurationHistogram(family, help string) *Histogram {
	m := r.register(family, help, kindHistogram, func(m *metric) { m.h = &Histogram{scale: 1e-9} })
	return m.h
}

// Value returns the current value of the named non-histogram metric.
// The name is the full name including labels, e.g.
// `ostm_commits_total{shard="0"}`.
func (r *Registry) Value(name string) (float64, bool) {
	r.c.mu.Lock()
	m, ok := r.c.index[name]
	r.c.mu.Unlock()
	if !ok || m.k == kindHistogram {
		return 0, false
	}
	return m.scalar(), true
}

// Sum returns the sum of every non-histogram metric in the family
// across all label sets (e.g. total commits across shards), and
// whether any was found.
func (r *Registry) Sum(family string) (float64, bool) {
	var sum float64
	found := false
	for _, m := range r.collect() {
		if m.family == family && m.k != kindHistogram {
			sum += m.scalar()
			found = true
		}
	}
	return sum, found
}

// Hist returns the merged snapshot of every histogram in the family
// across all label sets, and whether any was found.
func (r *Registry) Hist(family string) (HistSnapshot, bool) {
	var snap HistSnapshot
	found := false
	for _, m := range r.collect() {
		if m.family == family && m.k == kindHistogram {
			s := m.h.Snapshot()
			snap.Merge(&s)
			found = true
		}
	}
	return snap, found
}

// collect snapshots the metric list under the lock; values are read
// afterwards so collection-time funcs never run under the registry
// lock held by a second collector.
func (r *Registry) collect() []*metric {
	r.c.mu.Lock()
	out := make([]*metric, len(r.c.list))
	copy(out, r.c.list)
	r.c.mu.Unlock()
	return out
}

// SetTrace attaches a trace ring; subsequent lifecycle events for
// sampled ages are recorded into it. Shared by all scoped views.
func (r *Registry) SetTrace(t *TraceRing) { r.c.trace.Store(t) }

// Trace returns the attached trace ring, or nil.
func (r *Registry) Trace() *TraceRing {
	if r == nil {
		return nil
	}
	return r.c.trace.Load()
}

// PublishExpvar publishes the registry under the given expvar name as
// a map of full metric name to value (histograms export count, sum
// and selected quantiles). Returns an error instead of panicking if
// the name is already taken, so tests and multi-registry processes
// can call it defensively.
func (r *Registry) PublishExpvar(name string) error {
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return r.expvarMap() }))
	return nil
}

func (r *Registry) expvarMap() map[string]any {
	out := make(map[string]any)
	for _, m := range r.collect() {
		if m.k == kindHistogram {
			s := m.h.Snapshot()
			out[m.fullName()] = map[string]any{
				"count": s.Count,
				"sum":   float64(s.Sum) * m.h.renderScale(),
				"p50":   s.Quantile(0.50) * m.h.renderScale(),
				"p99":   s.Quantile(0.99) * m.h.renderScale(),
				"p999":  s.Quantile(0.999) * m.h.renderScale(),
			}
			continue
		}
		out[m.fullName()] = m.scalar()
	}
	return out
}

// Families returns the distinct metric family names in registration
// order (mainly for tests and debugging).
func (r *Registry) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range r.collect() {
		if !seen[m.family] {
			seen[m.family] = true
			out = append(out, m.family)
		}
	}
	sort.Strings(out)
	return out
}
