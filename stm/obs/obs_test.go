package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRegistryCountersGaugesAndScopes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ostm_commits_total", "committed transactions")
	c.Add(41)
	c.Inc()
	if c.Value() != 42 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Idempotent registration returns the same instrument.
	if again := r.Counter("ostm_commits_total", "ignored"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("ostm_inflight", "in-flight ages")
	g.Set(10)
	g.Add(-3)
	if v, ok := r.Value("ostm_inflight"); !ok || v != 7 {
		t.Fatalf("Value(ostm_inflight) = %v %v", v, ok)
	}
	r.GaugeFunc("ostm_frontier_age", "frontier", func() float64 { return 99 })
	if v, ok := r.Value("ostm_frontier_age"); !ok || v != 99 {
		t.Fatalf("gauge func = %v %v", v, ok)
	}

	// Label-scoped views share the table; Sum folds across labels.
	for s := 0; s < 3; s++ {
		sr := r.With("shard", fmt.Sprint(s))
		sr.Counter("ostm_fences_total", "fences").Add(uint64(s + 1))
	}
	if v, ok := r.Value(`ostm_fences_total{shard="1"}`); !ok || v != 2 {
		t.Fatalf("labeled value = %v %v", v, ok)
	}
	if sum, ok := r.Sum("ostm_fences_total"); !ok || sum != 6 {
		t.Fatalf("Sum = %v %v", sum, ok)
	}
	if _, ok := r.Value("ostm_missing"); ok {
		t.Fatal("missing metric must not resolve")
	}

	// Hist merges across label sets.
	for s := 0; s < 2; s++ {
		h := r.With("shard", fmt.Sprint(s)).DurationHistogram("ostm_fence_wait_seconds", "fence wait")
		h.Observe(1000)
	}
	snap, ok := r.Hist("ostm_fence_wait_seconds")
	if !ok || snap.Count != 2 {
		t.Fatalf("Hist = %+v %v", snap.Count, ok)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ostm_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("ostm_x_total", "")
}

func TestWritePrometheusAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("ostm_commits_total", "committed transactions").Add(7)
	for s := 0; s < 2; s++ {
		sr := r.With("shard", fmt.Sprint(s))
		sr.Counter("ostm_aborts_total", "aborts by cause").Add(uint64(s))
		h := sr.DurationHistogram("ostm_commit_seconds", "submit to commit")
		for i := int64(0); i < 100; i++ {
			h.Observe(i * 1_000) // 0..99µs
		}
	}
	r.Gauge("ostm_frontier_lag", "ages submitted but not committed").Set(5)
	r.Histogram("ostm_wal_group_size", "ages per group fsync").Observe(64)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ostm_commits_total counter",
		"ostm_commits_total 7",
		`ostm_aborts_total{shard="1"} 1`,
		"# TYPE ostm_commit_seconds histogram",
		`ostm_commit_seconds_bucket{shard="0",le="+Inf"} 100`,
		`ostm_commit_seconds_count{shard="0"} 100`,
		"# TYPE ostm_frontier_lag gauge",
		"ostm_frontier_lag 5",
		`ostm_wal_group_size_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// A TYPE header appears exactly once per family.
	if n := strings.Count(out, "# TYPE ostm_aborts_total "); n != 1 {
		t.Errorf("aborts TYPE header count = %d", n)
	}
	// The histogram's seconds scaling: 100 obs of ≤99µs sum to ~4.95ms.
	if !strings.Contains(out, "ostm_commit_seconds_sum") {
		t.Error("missing histogram _sum")
	}
	// Our own output must pass our own strict validator.
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, out)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad name", "1bad_metric 1\n"},
		{"no value", "ostm_x\n"},
		{"bad value", "ostm_x one\n"},
		{"bad type", "# TYPE ostm_x rainbow\n"},
		{"dup type", "# TYPE ostm_x counter\n# TYPE ostm_x counter\n"},
		{"type after sample", "ostm_x 1\n# TYPE ostm_x counter\n"},
		{"unquoted label", "ostm_x{a=b} 1\n"},
		{"bad label name", `ostm_x{1a="b"} 1` + "\n"},
		{"unterminated labels", `ostm_x{a="b" 1` + "\n"},
		{"hist no inf", "# TYPE ostm_h histogram\nostm_h_bucket{le=\"1\"} 1\nostm_h_count 1\n"},
		{"hist count mismatch", "# TYPE ostm_h histogram\nostm_h_bucket{le=\"+Inf\"} 2\nostm_h_count 3\n"},
		{"hist non-cumulative", "# TYPE ostm_h histogram\nostm_h_bucket{le=\"1\"} 5\nostm_h_bucket{le=\"2\"} 3\nostm_h_bucket{le=\"+Inf\"} 5\nostm_h_count 5\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition([]byte(tc.in)); err == nil {
			t.Errorf("%s: validator accepted %q", tc.name, tc.in)
		}
	}
	ok := "# plain comment\n# HELP ostm_x help text\n# TYPE ostm_x counter\nostm_x 1 1700000000000\n\nostm_y{a=\"b\\\"c\",d=\"e\"} 2.5e-3\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("validator rejected legal input: %v", err)
	}
}

func TestServeMountsDebugSurface(t *testing.T) {
	r := NewRegistry()
	r.Counter("ostm_commits_total", "c").Add(3)
	tr := NewTraceRing(16, 1)
	tr.Record(0, StageSubmit)
	r.SetTrace(tr)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "ostm_commits_total 3") {
		t.Errorf("/metrics output: %q", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "cmdline") {
		t.Errorf("/debug/vars output: %q", out)
	}
	if out := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(out, "goroutine") {
		t.Errorf("pprof output: %q", out)
	}
	if out := get("/debug/trace"); !strings.Contains(out, `"stage":"submit"`) {
		t.Errorf("/debug/trace output: %q", out)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("ostm_commits_total", "c").Add(5)
	h := r.DurationHistogram("ostm_commit_seconds", "lat")
	h.Observe(int64(time.Millisecond))
	if err := r.PublishExpvar("ostm_test_registry"); err != nil {
		t.Fatal(err)
	}
	if err := r.PublishExpvar("ostm_test_registry"); err == nil {
		t.Fatal("duplicate publish must error, not panic")
	}
	m := r.expvarMap()
	if m["ostm_commits_total"] != float64(5) {
		t.Fatalf("expvar map: %v", m)
	}
	hm, ok := m["ostm_commit_seconds"].(map[string]any)
	if !ok || hm["count"] != uint64(1) {
		t.Fatalf("expvar histogram entry: %v", m["ostm_commit_seconds"])
	}
}
