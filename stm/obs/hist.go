package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Log-linear histogram: values 0..7 get one bucket each, then every
// octave [2^e, 2^(e+1)) is split into 2^histSubBits = 8 linear
// sub-buckets, giving a worst-case relative quantile error of 1/8
// across forty octaves (1ns .. ~18min when recording nanoseconds).
// The mapping is branch-light and division-free: index arithmetic is
// a bits.Len64 plus shifts, so Observe is a few atomic adds.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	histMaxExp  = 40
	// Index v for v < 8, then (exp-2)*8 + sub for octave exp >= 3:
	// continuous at the seam (v in [8,16) lands on indices 8..15) and
	// topping out at (histMaxExp-2)*8 + 7.
	numBuckets = (histMaxExp-histSubBits+1)*histSub + histSub
)

// bucketIndex maps a non-negative value to its bucket. Values beyond
// the last octave clamp into the top bucket; negative values (clock
// steps) clamp to zero.
func bucketIndex(v int64) int {
	if v < histSub {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1
	if exp > histMaxExp {
		return numBuckets - 1
	}
	sub := int(v>>(uint(exp)-histSubBits)) & (histSub - 1)
	return (exp-histSubBits+1)*histSub + sub
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < histSub {
		return int64(i), int64(i)
	}
	exp := uint(i/histSub + histSubBits - 1)
	sub := int64(i % histSub)
	width := int64(1) << (exp - histSubBits)
	lo = int64(1)<<exp + sub*width
	return lo, lo + width - 1
}

// histCellPad rounds the cell up to a whole number of cache lines so
// adjacent cells in the registry never share one (same scheme as
// meta.StatsCell).
const histCellPad = (64 - (numBuckets+2)*8%64) % 64

// HistCell is one recorder's private slice of a Histogram: all fields
// are plain atomics, so Observe never contends with other cells and a
// snapshot never blocks a recorder. Cells are created once per worker
// (Histogram.NewCell) and folded at snapshot time.
type HistCell struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	_       [histCellPad]byte
}

// Observe records one value into the cell. Nil-safe.
func (c *HistCell) Observe(v int64) {
	if c == nil {
		return
	}
	c.buckets[bucketIndex(v)].Add(1)
	c.count.Add(1)
	c.sum.Add(v)
}

// Histogram is a lock-free log-bucketed histogram. Observe on the
// histogram itself records into a shared default cell (fine for
// low-rate paths like checkpoints); hot paths take a private cell via
// NewCell. Snapshot folds the default cell and every private cell
// into an immutable HistSnapshot.
type Histogram struct {
	def   HistCell
	scale float64 // exposition multiplier (1e-9 for _seconds families)
	mu    sync.Mutex
	cells atomic.Pointer[[]*HistCell]
}

func (h *Histogram) renderScale() float64 {
	if h.scale == 0 {
		return 1
	}
	return h.scale
}

// Observe records one value into the shared default cell. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.def.Observe(v)
}

// NewCell returns a new private recording cell, registered with the
// histogram. Registration is copy-on-write so Snapshot reads the cell
// list without taking the lock recorders never hold.
func (h *Histogram) NewCell() *HistCell {
	c := new(HistCell)
	h.mu.Lock()
	old := h.cells.Load()
	var next []*HistCell
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, c)
	h.cells.Store(&next)
	h.mu.Unlock()
	return c
}

// Snapshot folds all cells into an immutable view. Concurrent
// Observes may or may not be included; each field is read atomically,
// so the view is consistent enough for monitoring (Count can lag the
// bucket sum by in-flight increments).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.foldCell(&h.def)
	if cells := h.cells.Load(); cells != nil {
		for _, c := range *cells {
			s.foldCell(c)
		}
	}
	return s
}

// HistSnapshot is a merged point-in-time view of a Histogram, in the
// recorded unit (nanoseconds for DurationHistogram families).
type HistSnapshot struct {
	Buckets [numBuckets]uint64
	Count   uint64
	Sum     int64
}

func (s *HistSnapshot) foldCell(c *HistCell) {
	for i := range c.buckets {
		s.Buckets[i] += c.buckets[i].Load()
	}
	s.Count += c.count.Load()
	s.Sum += c.sum.Load()
}

// Merge adds another snapshot into s (used to fold per-shard
// histograms into one view).
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) in the recorded
// unit, interpolating linearly inside the landing bucket. Returns 0
// for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i := range s.Buckets {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		next := cum + float64(n)
		if next >= rank {
			if lo == hi {
				return float64(lo)
			}
			frac := (rank - cum) / float64(n)
			return float64(lo) + frac*float64(hi-lo+1)
		}
		cum = next
	}
	_, hi := bucketBounds(numBuckets - 1)
	return float64(hi)
}

// Max returns the upper bound of the highest non-empty bucket (an
// upper estimate of the largest recorded value), 0 if empty.
func (s *HistSnapshot) Max() float64 {
	for i := numBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			_, hi := bucketBounds(i)
			return float64(hi)
		}
	}
	return 0
}

// Mean returns the arithmetic mean in the recorded unit, 0 if empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
