package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/obs"
	"github.com/orderedstm/ostm/stm/shard"
)

// ticket is the slice of stm.Ticket / shard.Ticket the server needs;
// both satisfy it with identical semantics (resolution at commit, or
// at durability under WaitDurable).
type ticket interface {
	Age() uint64
	Wait() error
	WaitCtx(ctx context.Context) error
}

// backend abstracts the two pipeline shapes behind the encoded-submit
// entry points the wire carries.
type backend interface {
	one(ctx context.Context, data []byte) (ticket, error)
	batch(ctx context.Context, datas [][]byte) ([]ticket, error)
}

type pipeBackend struct{ p *stm.Pipeline }

func (b pipeBackend) one(ctx context.Context, data []byte) (ticket, error) {
	t, err := b.p.SubmitEncodedCtx(ctx, data)
	if t == nil {
		return nil, err
	}
	return t, err
}

func (b pipeBackend) batch(ctx context.Context, datas [][]byte) ([]ticket, error) {
	lts, err := b.p.SubmitEncodedBatchCtx(ctx, datas)
	out := make([]ticket, len(lts))
	for i, t := range lts {
		out[i] = t
	}
	return out, err
}

type shardBackend struct{ sp *shard.ShardedPipeline }

func (b shardBackend) one(ctx context.Context, data []byte) (ticket, error) {
	t, err := b.sp.SubmitEncodedCtx(ctx, data)
	if t == nil {
		return nil, err
	}
	return t, err
}

func (b shardBackend) batch(ctx context.Context, datas [][]byte) ([]ticket, error) {
	lts, err := b.sp.SubmitEncodedBatchCtx(ctx, datas)
	out := make([]ticket, len(lts))
	for i, t := range lts {
		if t != nil {
			out[i] = t
		}
	}
	return out, err
}

// Config parameterizes a Server.
type Config struct {
	// Pipeline or Sharded is the engine behind the wire; exactly one
	// must be set. Either way it must be configured with the Codec
	// that decodes the request payloads (the server submits the raw
	// frame payloads through SubmitEncoded*).
	Pipeline *stm.Pipeline
	Sharded  *shard.ShardedPipeline

	// Obs, when non-nil, mounts the registry's exposition routes
	// (/metrics, /debug/vars, /debug/pprof/*) on the same listener.
	Obs *obs.Registry

	// State, when non-nil, serves GET /state with its bytes — a
	// snapshot hook (typically stm.SnapshotVars over the app's Vars)
	// clients use to verify replayed state. It runs on the live
	// engine; callers wanting a quiescent snapshot should drain their
	// own traffic first.
	State func() ([]byte, error)

	// Gate, when non-nil, is consulted before every submission; a
	// non-nil return refuses the request with that error instead of
	// submitting it. A replication follower installs a gate returning
	// *NotLeaderError until promotion: frames are still decoded and
	// answered in order, they just all resolve to CodeNotLeader, so a
	// stream opened against a follower fails fast without tearing the
	// connection (reads and the obs routes stay served). The gate runs
	// on the ingress path and must be cheap (an atomic load).
	Gate func() error

	// Handlers mounts extra routes on the same listener — the
	// replication shipper's stream endpoint, a frontier probe, etc.
	// Paths must not collide with the built-in routes (/submit,
	// /healthz, /state, and the obs routes when Obs is set).
	Handlers map[string]http.Handler

	// MaxFrame bounds accepted request frames (default
	// DefaultMaxFrame).
	MaxFrame int
	// MaxBatch caps how many already-buffered frames ingress
	// coalesces into one SubmitEncodedBatch call (default 64).
	MaxBatch int
}

// Server terminates the wire protocol: it owns an h2c listener,
// decodes request streams, feeds the pipeline (batching frames that
// arrived together), and writes each stream's responses in commit
// order. Create with NewServer, start with Start, stop with Shutdown.
type Server struct {
	cfg Config
	b   backend
	hs  *http.Server
	ln  net.Listener

	mu       sync.Mutex
	draining bool
	streams  sync.WaitGroup
}

// NewServer validates cfg and builds the server (not yet listening).
func NewServer(cfg Config) (*Server, error) {
	if (cfg.Pipeline == nil) == (cfg.Sharded == nil) {
		return nil, errors.New("serve: exactly one of Config.Pipeline and Config.Sharded must be set")
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	s := &Server{cfg: cfg}
	if cfg.Pipeline != nil {
		s.b = pipeBackend{cfg.Pipeline}
	} else {
		s.b = shardBackend{cfg.Sharded}
	}
	var mux *http.ServeMux
	if cfg.Obs != nil {
		mux = obs.NewMux(cfg.Obs) // /metrics, /debug/vars, /debug/pprof/*
	} else {
		mux = http.NewServeMux()
	}
	mux.HandleFunc("/submit", s.handleSubmit)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	for path, h := range cfg.Handlers {
		mux.Handle(path, h)
	}
	if cfg.State != nil {
		mux.HandleFunc("/state", func(w http.ResponseWriter, _ *http.Request) {
			data, err := cfg.State()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			_, _ = w.Write(data)
		})
	}
	s.hs = &http.Server{Handler: mux}
	// Cleartext HTTP/2 with prior knowledge: the streaming protocol
	// needs one full-duplex multiplexed connection per client, which
	// HTTP/1.1 cannot carry. HTTP/1.1 stays enabled for the scrape
	// and debug endpoints (curl without --http2-prior-knowledge).
	s.hs.Protocols = new(http.Protocols)
	s.hs.Protocols.SetHTTP1(true)
	s.hs.Protocols.SetUnencryptedHTTP2(true)
	return s, nil
}

// Start binds addr and serves in the background. The bound address
// (useful with ":0") is available as Addr afterwards.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go func() { _ = s.hs.Serve(ln) }()
	return nil
}

// Addr returns the bound listener address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains the server: new submit streams are refused with 503
// immediately, in-flight streams run until their clients half-close,
// and the HTTP server shuts down gracefully. If ctx expires first the
// listener is torn down hard and ctx's error returned. The pipeline
// itself is not touched — the owner drains/checkpoints/closes it
// after Shutdown returns (see cmd/ordersvc for the full SIGTERM
// sequence).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if err := s.hs.Shutdown(ctx); err != nil {
		_ = s.hs.Close()
		return err
	}
	return nil
}

func (s *Server) gateErr() error {
	if s.cfg.Gate == nil {
		return nil
	}
	return s.cfg.Gate()
}

// entry is one request's slot in a stream's response queue.
type entry struct {
	id     uint64
	t      ticket // nil when err is pre-resolved (submission refused)
	err    error
	ctx    context.Context // non-nil iff the request carried a deadline
	cancel context.CancelFunc
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a frame stream", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.streams.Add(1)
	s.mu.Unlock()
	defer s.streams.Done()

	rc := http.NewResponseController(w)
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush() // release headers so the client unblocks before its first frame

	ctx := r.Context()
	br := bufio.NewReaderSize(r.Body, 64<<10)
	queue := make(chan *entry, 4*s.cfg.MaxBatch)
	writerDone := make(chan struct{})
	go s.writeResponses(w, rc, queue, writerDone)

	// Ingress: decode frames in arrival order. Frames that arrived
	// together (complete in the read buffer) and carry no deadline are
	// coalesced into one batched submission — one sequencer lock per
	// run instead of per frame; a deadline-bearing frame flushes the
	// run and submits alone under its own context so cancellation has
	// a per-request scope. Submission order always equals frame order,
	// which is what makes the response stream's commit-order contract
	// hold.
	var runData [][]byte
	var runIDs []uint64
	flushRun := func() {
		if len(runData) == 0 {
			return
		}
		if gerr := s.gateErr(); gerr != nil {
			for _, id := range runIDs {
				queue <- &entry{id: id, err: gerr}
			}
			runData, runIDs = runData[:0], runIDs[:0]
			return
		}
		ts, err := s.b.batch(ctx, runData)
		for i, id := range runIDs {
			e := &entry{id: id}
			if i < len(ts) && ts[i] != nil {
				e.t = ts[i]
			} else {
				e.err = err
				if e.err == nil {
					e.err = errors.New("serve: submission refused")
				}
			}
			queue <- e
		}
		runData, runIDs = runData[:0], runIDs[:0]
	}
	for {
		frame, err := readFrame(br, s.cfg.MaxFrame)
		if err != nil {
			// io.EOF: client half-closed, clean end of stream. Anything
			// else (truncated frame, oversized, reset) also ends ingress;
			// there is no request to answer it on.
			break
		}
		id, deadlineMS, payload, err := parseRequestFrame(frame)
		if err != nil {
			flushRun()
			queue <- &entry{id: id, err: &Error{Code: CodeBadRequest, Msg: err.Error()}}
			continue
		}
		if deadlineMS == 0 {
			runData = append(runData, payload)
			runIDs = append(runIDs, id)
			if len(runData) < s.cfg.MaxBatch && frameBuffered(br) {
				continue // more frames already arrived; extend the run
			}
			flushRun()
			continue
		}
		flushRun()
		if gerr := s.gateErr(); gerr != nil {
			queue <- &entry{id: id, err: gerr}
			continue
		}
		dctx, cancel := context.WithTimeout(ctx, time.Duration(deadlineMS)*time.Millisecond)
		t, serr := s.b.one(dctx, payload)
		if serr != nil {
			cancel()
			queue <- &entry{id: id, err: serr}
			continue
		}
		queue <- &entry{id: id, t: t, ctx: dctx, cancel: cancel}
	}
	flushRun()
	close(queue)
	<-writerDone
}

// writeResponses is the per-stream egress loop: it waits each entry's
// ticket in submission order (equal to age order on this stream) and
// writes the response frames back, flushing whenever the queue runs
// dry so a paused producer still sees its tail.
func (s *Server) writeResponses(w http.ResponseWriter, rc *http.ResponseController, queue <-chan *entry, done chan<- struct{}) {
	defer close(done)
	var buf []byte
	for e := range queue {
		err := e.err
		var age uint64
		if e.t != nil {
			if e.ctx != nil {
				err = e.t.WaitCtx(e.ctx)
				e.cancel()
			} else {
				err = e.t.Wait()
			}
			age = e.t.Age()
		}
		code := CodeOf(err)
		buf = appendResponseFrame(buf[:0], e.id, age, code, wireMsg(err))
		if _, werr := w.Write(buf); werr != nil {
			// Client gone: drain remaining entries so their tickets'
			// deadline contexts are released, then quit.
			for e := range queue {
				if e.cancel != nil {
					e.cancel()
				}
			}
			return
		}
		if len(queue) == 0 {
			_ = rc.Flush()
		}
	}
	_ = rc.Flush()
}
