package serve_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/serve"
)

// startGatedServer runs a pipeline server whose gate refuses with
// NotLeader (naming leaderAddr) until opened.
func startGatedServer(t *testing.T, accounts []stm.Var, leaderAddr string) (*serve.Server, *stm.Pipeline, string, *atomic.Bool) {
	t.Helper()
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: stm.OUL,
		Workers:   4,
		Codec:     svcCodec{accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	var open atomic.Bool
	srv, err := serve.NewServer(serve.Config{
		Pipeline: p,
		Gate: func() error {
			if open.Load() {
				return nil
			}
			return &serve.NotLeaderError{Leader: leaderAddr}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return srv, p, srv.Addr().String(), &open
}

// TestGateNotLeader checks the refusal path end to end: the typed
// error round-trips the wire (errors.Is, CodeOf, and the leader hint)
// and the connection stays usable for subsequent requests.
func TestGateNotLeader(t *testing.T) {
	accounts := newSvcAccounts()
	lsrv, lp, laddr := startPipelineServer(t, accounts)
	defer lp.Close()
	defer shutdownNow(lsrv)

	fsrv, fp, faddr, _ := startGatedServer(t, newSvcAccounts(), laddr)
	defer fp.Close()
	defer shutdownNow(fsrv)

	c, err := serve.Dial(context.Background(), faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		call, err := c.Submit(transferPayload(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		_, err = call.Wait()
		if !errors.Is(err, serve.ErrNotLeader) {
			t.Fatalf("call %d: %v, want NotLeader", i, err)
		}
		if serve.CodeOf(err) != serve.CodeNotLeader {
			t.Fatalf("call %d: code %v, want CodeNotLeader", i, serve.CodeOf(err))
		}
		if hint, ok := serve.LeaderHint(err); !ok || hint != laddr {
			t.Fatalf("call %d: hint %q (ok=%v), want %q", i, hint, ok, laddr)
		}
	}
}

// TestRedialFollowsHint submits through a gated server with redial
// enabled: the call must resolve on the hinted leader, transparently.
func TestRedialFollowsHint(t *testing.T) {
	accounts := newSvcAccounts()
	lsrv, lp, laddr := startPipelineServer(t, accounts)
	defer lp.Close()
	defer shutdownNow(lsrv)

	fsrv, fp, faddr, _ := startGatedServer(t, newSvcAccounts(), laddr)
	defer fp.Close()
	defer shutdownNow(fsrv)

	c, err := serve.Dial(context.Background(), faddr, serve.WithNotLeaderRedial())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 20
	calls := make([]*serve.Call, 0, n)
	for i := 0; i < n; i++ {
		call, err := c.Submit(transferPayload(uint32(i%svcAccounts), uint32((i+1)%svcAccounts)))
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	seen := make(map[uint64]bool)
	for i, call := range calls {
		age, err := call.Wait()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if seen[age] {
			t.Fatalf("age %d resolved twice", age)
		}
		seen[age] = true
	}
	if c.Redials() == 0 {
		t.Fatal("no redials recorded despite NotLeader answers")
	}
	// All n transactions must have landed on the leader, exactly once.
	lp.WaitStable()
	if got := lp.Submitted(); got != n {
		t.Fatalf("leader saw %d submissions, want %d", got, n)
	}
}

// TestRedialExhausts bounds the chase: with the hint dead and the
// origin forever refusing, the call must fail with the underlying
// NotLeader rather than hang.
func TestRedialExhausts(t *testing.T) {
	fsrv, fp, faddr, _ := startGatedServer(t, newSvcAccounts(), "127.0.0.1:1")
	defer fp.Close()
	defer shutdownNow(fsrv)

	c, err := serve.Dial(context.Background(), faddr, serve.WithNotLeaderRedial())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	call, err := c.Submit(transferPayload(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := call.Wait(); !errors.Is(err, serve.ErrNotLeader) {
		t.Fatalf("exhausted redial resolved %v, want wrapped NotLeader", err)
	}
}
