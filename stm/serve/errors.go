package serve

import (
	"errors"
	"fmt"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

// Code is the typed wire error taxonomy: every engine error class a
// client can act on differently travels as its own single-byte code.
// The classification (CodeOf) and the client-side reconstruction
// (Error.Is) are inverses for the sentinel-backed classes, so
// errors.Is works identically on both sides of the wire.
type Code uint8

const (
	// CodeOK marks a committed transaction's response.
	CodeOK Code = 0
	// CodeCanceled: the per-request deadline expired or the request
	// context was canceled — before an age was assigned (withdrawn,
	// never ran) or while waiting for commit (the transaction still
	// commits; only the wait was abandoned). errors.Is(err,
	// stm.ErrCanceled) on the reconstructed error.
	CodeCanceled Code = 1
	// CodeStopped: the pipeline halted on another transaction's fault
	// before this age could commit. errors.Is(err, stm.ErrStopped).
	CodeStopped Code = 2
	// CodeFault: this transaction IS the fault — its body escaped the
	// speculative sandbox (nil deref outside retry, explicit panic,
	// undeclared access on a sharded router).
	CodeFault Code = 3
	// CodeClosed: the pipeline is shut down. errors.Is(err,
	// stm.ErrClosed).
	CodeClosed Code = 4
	// CodeDurability: the WAL failed this transaction's group commit
	// (write/fsync error under WaitDurable) — committed in memory,
	// not durable.
	CodeDurability Code = 5
	// CodeDegraded: the WAL exhausted its retry budget under
	// OnFail: Degrade and the engine is running non-durably.
	// errors.Is(err, wal.ErrDegraded).
	CodeDegraded Code = 6
	// CodeFenceTimeout: a cross-shard rendezvous exceeded the
	// configured FenceTimeout (a peer shard stalled).
	CodeFenceTimeout Code = 7
	// CodeBadRequest: the frame or payload was malformed (decode
	// failure, oversized frame); the request was never submitted.
	CodeBadRequest Code = 8
	// CodeInternal: any error outside the taxonomy.
	CodeInternal Code = 9
	// CodeNotLeader: this process is a replication follower and does
	// not accept writes; the request was never submitted. The response
	// msg carries the leader's address when the follower knows it, so
	// a client can redial (see WithNotLeaderRedial). errors.Is(err,
	// ErrNotLeader).
	CodeNotLeader Code = 10
)

func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeCanceled:
		return "canceled"
	case CodeStopped:
		return "stopped"
	case CodeFault:
		return "fault"
	case CodeClosed:
		return "closed"
	case CodeDurability:
		return "durability"
	case CodeDegraded:
		return "degraded"
	case CodeFenceTimeout:
		return "fence-timeout"
	case CodeBadRequest:
		return "bad-request"
	case CodeInternal:
		return "internal"
	case CodeNotLeader:
		return "not-leader"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}

// ErrNotLeader is the sentinel a NotLeader response matches through
// errors.Is, on either side of the wire.
var ErrNotLeader = errors.New("serve: not leader")

// NotLeaderError is the server-side refusal a follower's write gate
// returns: the process is replicating, not leading. Leader, when
// non-empty, is the address writes should go to; it travels as the
// response frame's msg so the far side can redial.
type NotLeaderError struct {
	Leader string
}

func (e *NotLeaderError) Error() string {
	if e.Leader == "" {
		return "serve: not leader"
	}
	return "serve: not leader (leader at " + e.Leader + ")"
}

// Is matches the ErrNotLeader sentinel.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// LeaderHint extracts the leader address carried by a NotLeader error
// — a server-side *NotLeaderError or a client-side reconstruction —
// with ok false for other errors or when no address is known.
func LeaderHint(err error) (leader string, ok bool) {
	var nl *NotLeaderError
	if errors.As(err, &nl) {
		return nl.Leader, nl.Leader != ""
	}
	var we *Error
	if errors.As(err, &we) && we.Code == CodeNotLeader {
		return we.Msg, we.Msg != ""
	}
	return "", false
}

// CodeOf classifies an error into its wire code. The order of the
// checks is load-bearing: a fence timeout surfaces wrapped in the
// fault vocabulary (*stm.Fault, or *stm.Stopped around it) and a
// degraded WAL inside *stm.DurabilityError, so the more specific
// class is tested before the wrapper it travels in. CodeOf is
// idempotent across the wire: applied to an *Error it returns the
// Error's own code.
func CodeOf(err error) Code {
	var (
		wireErr *Error
		ftErr   *shard.FenceTimeoutError
		durErr  *stm.DurabilityError
		fault   *stm.Fault
	)
	switch {
	case err == nil:
		return CodeOK
	case errors.As(err, &wireErr):
		return wireErr.Code
	case errors.Is(err, ErrNotLeader):
		return CodeNotLeader
	case errors.Is(err, stm.ErrCanceled):
		return CodeCanceled
	case errors.As(err, &ftErr):
		return CodeFenceTimeout
	case errors.Is(err, wal.ErrDegraded):
		return CodeDegraded
	case errors.As(err, &durErr):
		return CodeDurability
	case errors.Is(err, stm.ErrClosed):
		return CodeClosed
	case errors.Is(err, stm.ErrStopped):
		return CodeStopped
	case errors.As(err, &fault):
		return CodeFault
	default:
		return CodeInternal
	}
}

// Error is the client-side reconstruction of a non-OK response: the
// wire code plus the server's message. It matches the engine's
// sentinels through errors.Is, so client code written against the
// in-process API (errors.Is(err, stm.ErrCanceled), errors.Is(err,
// wal.ErrDegraded), ...) ports across the process boundary unchanged.
type Error struct {
	Code Code
	Msg  string
}

func (e *Error) Error() string {
	if e.Msg == "" {
		return "serve: " + e.Code.String()
	}
	return "serve: " + e.Code.String() + ": " + e.Msg
}

// Is maps wire codes back onto the engine sentinels.
func (e *Error) Is(target error) bool {
	switch target {
	case stm.ErrCanceled:
		return e.Code == CodeCanceled
	case stm.ErrStopped:
		return e.Code == CodeStopped
	case stm.ErrClosed:
		return e.Code == CodeClosed
	case wal.ErrDegraded:
		return e.Code == CodeDegraded
	case ErrNotLeader:
		return e.Code == CodeNotLeader
	}
	return false
}

// wireMsg chooses the msg a response frame carries for err: for
// NotLeader it is the leader hint itself (machine-consumable; the
// client rebuilds the sentence), otherwise the error text.
func wireMsg(err error) string {
	if err == nil {
		return ""
	}
	var nl *NotLeaderError
	if errors.As(err, &nl) {
		return nl.Leader
	}
	return err.Error()
}

// DecodeError reconstructs the typed error carried by a response
// frame: nil for CodeOK, else an *Error.
func DecodeError(code Code, msg string) error {
	if code == CodeOK {
		return nil
	}
	return &Error{Code: code, Msg: msg}
}
