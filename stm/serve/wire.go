// Package serve is the process boundary for an ordered-transaction
// pipeline: a reusable HTTP/2 (h2c, cleartext prior-knowledge)
// streaming server and client speaking a minimal length-prefixed
// framing, with the engine's predefined commit order as the externally
// visible contract — each connection's responses resolve in commit
// order.
//
// # Wire protocol
//
// A connection is one HTTP/2 stream: the client POSTs to /submit and
// keeps the request body open; request frames flow client→server on
// the request body and response frames server→client on the response
// body, full duplex. All integers are little-endian, matching the
// engine's WAL record layout.
//
// Request frame:
//
//	u32 len | u64 id | u32 deadline_ms | payload (len-12 bytes)
//
// id is a client-chosen correlation token echoed verbatim (the client
// in this package uses a per-connection counter). deadline_ms, when
// non-zero, bounds the request server-side: the submission's
// backpressure wait and the response wait both run under a context
// expiring that many milliseconds after the frame is decoded, and
// expiry surfaces as a CodeCanceled response. payload is the encoded
// transaction in the pipeline Codec's wire form — the same bytes the
// WAL would store.
//
// Response frame:
//
//	u32 len | u64 id | u64 age | u8 code | msg (len-17 bytes)
//
// age is the global age the submission was assigned (zero when it was
// refused before age assignment — distinguishable from a genuine age
// zero by code). code is the typed wire error (CodeOK on success; see
// Code), msg a human-readable elaboration for non-OK codes.
//
// # Ordering contract
//
// Frames on one connection are submitted in arrival order, so their
// ages are assigned monotonically, and the server writes responses in
// exactly that order after waiting each ticket — responses arrive in
// commit order. The one exception is a frame whose deadline expires
// before its age commits: its CodeCanceled response is written at its
// position in the stream (order is still preserved; the response just
// no longer attests commit). Ordering holds per connection; ages
// interleave arbitrarily across connections.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// DefaultMaxFrame bounds the length prefix accepted by both sides
// (requests and responses) unless overridden in Config.
const DefaultMaxFrame = 1 << 20

const (
	reqHeaderLen  = 12 // u64 id + u32 deadline_ms
	respHeaderLen = 17 // u64 id + u64 age + u8 code
)

// appendRequestFrame appends one request frame to dst.
func appendRequestFrame(dst []byte, id uint64, deadlineMS uint32, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(reqHeaderLen+len(payload)))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint32(dst, deadlineMS)
	return append(dst, payload...)
}

// appendResponseFrame appends one response frame to dst.
func appendResponseFrame(dst []byte, id, age uint64, code Code, msg string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(respHeaderLen+len(msg)))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint64(dst, age)
	dst = append(dst, byte(code))
	return append(dst, msg...)
}

// readFrame reads one length-prefixed frame body (the bytes after the
// u32 length) into a fresh slice. io.EOF before the first length byte
// is a clean end of stream; a truncated frame is an error.
func readFrame(br *bufio.Reader, max int) ([]byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(br, lenb[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("serve: truncated frame length: %w", err)
		}
		return nil, err // io.EOF: clean end of stream
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if int(n) > max {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds limit %d", n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("serve: truncated frame: %w", err)
	}
	return buf, nil
}

// parseRequestFrame splits a request frame body. The payload aliases
// frame (readFrame allocates per frame, so ownership transfers).
func parseRequestFrame(frame []byte) (id uint64, deadlineMS uint32, payload []byte, err error) {
	if len(frame) < reqHeaderLen {
		return 0, 0, nil, fmt.Errorf("serve: request frame of %d bytes is shorter than its %d-byte header", len(frame), reqHeaderLen)
	}
	id = binary.LittleEndian.Uint64(frame)
	deadlineMS = binary.LittleEndian.Uint32(frame[8:])
	return id, deadlineMS, frame[reqHeaderLen:], nil
}

// parseResponseFrame splits a response frame body.
func parseResponseFrame(frame []byte) (id, age uint64, code Code, msg string, err error) {
	if len(frame) < respHeaderLen {
		return 0, 0, 0, "", fmt.Errorf("serve: response frame of %d bytes is shorter than its %d-byte header", len(frame), respHeaderLen)
	}
	id = binary.LittleEndian.Uint64(frame)
	age = binary.LittleEndian.Uint64(frame[8:])
	code = Code(frame[16])
	return id, age, code, string(frame[respHeaderLen:]), nil
}

// frameBuffered reports whether br already holds a complete frame —
// the ingress batcher's lookahead: it only coalesces frames that
// arrived together, never blocking a submission to wait for more.
func frameBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 4 {
		return false
	}
	head, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := binary.LittleEndian.Uint32(head)
	return br.Buffered() >= 4+int(n)
}
