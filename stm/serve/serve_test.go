package serve_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/serve"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

const svcAccounts = 64

// Payload forms: 8 bytes = transfer(from, to); 1 byte 0xFE = stall
// (sleep, used to park the commit frontier for deadline tests); 1
// byte 0xFD = fault (panic).
func transferPayload(from, to uint32) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], from)
	binary.LittleEndian.PutUint32(b[4:8], to)
	return b[:]
}

func decodeSvcBody(accounts []stm.Var, data []byte) (stm.Body, []*stm.Var, error) {
	if len(data) == 1 {
		switch data[0] {
		case 0xFE:
			return func(tx stm.Tx, _ int) {
				time.Sleep(300 * time.Millisecond)
				_ = tx.Read(&accounts[0])
			}, []*stm.Var{&accounts[0]}, nil
		case 0xFD:
			return func(stm.Tx, int) { panic("wire fault") }, []*stm.Var{&accounts[0]}, nil
		}
	}
	if len(data) != 8 {
		return nil, nil, fmt.Errorf("bad payload length %d", len(data))
	}
	from := binary.LittleEndian.Uint32(data[0:4])
	to := binary.LittleEndian.Uint32(data[4:8])
	if int(from) >= len(accounts) || int(to) >= len(accounts) {
		return nil, nil, fmt.Errorf("transfer %d→%d out of range", from, to)
	}
	body := func(tx stm.Tx, age int) {
		amt := uint64(age%5) + 1
		bf := tx.Read(&accounts[from])
		if bf >= amt && from != to {
			tx.Write(&accounts[from], bf-amt)
			tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
		}
	}
	return body, []*stm.Var{&accounts[from], &accounts[to]}, nil
}

// svcCodec is the unsharded test codec.
type svcCodec struct{ accounts []stm.Var }

func (c svcCodec) Encode(payload any) ([]byte, error) { return payload.([]byte), nil }
func (c svcCodec) Decode(data []byte) (stm.Body, error) {
	body, _, err := decodeSvcBody(c.accounts, data)
	return body, err
}

// svcShardCodec is the sharded test codec (declares the touched Vars).
type svcShardCodec struct{ accounts []stm.Var }

func (c svcShardCodec) Encode(payload any) ([]byte, error) { return payload.([]byte), nil }
func (c svcShardCodec) Decode(data []byte) (stm.Access, stm.Body, error) {
	if len(data) == 8 {
		from := binary.LittleEndian.Uint32(data[0:4])
		to := binary.LittleEndian.Uint32(data[4:8])
		if int(from) >= len(c.accounts) || int(to) >= len(c.accounts) {
			return stm.Access{}, nil, fmt.Errorf("transfer %d→%d out of range", from, to)
		}
		body, _, err := decodeSvcBody(c.accounts, data)
		return stm.Touches(&c.accounts[from], &c.accounts[to]), body, err
	}
	body, vars, err := decodeSvcBody(c.accounts, data)
	if err != nil {
		return stm.Access{}, nil, err
	}
	return stm.Touches(vars[0]), body, nil
}

type agedPayload struct {
	age     uint64
	payload []byte
}

// foldPayloads is the sequential oracle: apply the transfer semantics
// in global-age order over plain integers.
func foldPayloads(t *testing.T, balances []uint64, recs []agedPayload) {
	t.Helper()
	sort.Slice(recs, func(i, j int) bool { return recs[i].age < recs[j].age })
	for i, r := range recs {
		if i > 0 && recs[i-1].age == r.age {
			t.Fatalf("duplicate age %d", r.age)
		}
		if len(r.payload) != 8 {
			continue
		}
		from := binary.LittleEndian.Uint32(r.payload[0:4])
		to := binary.LittleEndian.Uint32(r.payload[4:8])
		amt := uint64(r.age%5) + 1
		if balances[from] >= amt && from != to {
			balances[from] -= amt
			balances[to] += amt
		}
	}
}

func newSvcAccounts() []stm.Var {
	vs := stm.NewVars(svcAccounts)
	for i := range vs {
		vs[i].Store(1000)
	}
	return vs
}

func fetchState(t *testing.T, addr string) []uint64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/state: %s: %s", resp.Status, data)
	}
	vars := stm.NewVars(svcAccounts)
	if err := stm.RestoreVars(vars, data); err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, svcAccounts)
	for i := range vars {
		out[i] = vars[i].Load()
	}
	return out
}

func startPipelineServer(t *testing.T, accounts []stm.Var) (*serve.Server, *stm.Pipeline, string) {
	t.Helper()
	p, err := stm.NewPipeline(stm.Config{
		Algorithm: stm.OUL,
		Workers:   4,
		Codec:     svcCodec{accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{
		Pipeline: p,
		State: func() ([]byte, error) {
			p.WaitStable()
			return stm.SnapshotVars(accounts), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return srv, p, srv.Addr().String()
}

// TestServeCommitOrderMultiConn drives several concurrent connections
// and checks the full contract: every transaction commits, every
// connection sees its responses in commit order, and the union of
// (age, payload) pairs folds to exactly the server's final state.
func TestServeCommitOrderMultiConn(t *testing.T) {
	const conns, perConn = 4, 300
	accounts := newSvcAccounts()
	srv, p, addr := startPipelineServer(t, accounts)
	defer p.Close()
	defer shutdownNow(srv)

	var mu sync.Mutex
	var all []agedPayload
	var wg sync.WaitGroup
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := serve.Dial(context.Background(), addr)
			if err != nil {
				t.Error(err)
				return
			}
			calls := make([]*serve.Call, 0, perConn)
			payloads := make([][]byte, 0, perConn)
			for i := 0; i < perConn; i++ {
				k := uint64(ci*perConn + i)
				pl := transferPayload(uint32((k*7)%svcAccounts), uint32((k*13+1)%svcAccounts))
				call, err := c.Submit(pl)
				if err != nil {
					t.Error(err)
					break
				}
				calls = append(calls, call)
				payloads = append(payloads, pl)
			}
			for i, call := range calls {
				age, err := call.Wait()
				if err != nil {
					t.Errorf("conn %d call %d: %v", ci, i, err)
					continue
				}
				mu.Lock()
				all = append(all, agedPayload{age, payloads[i]})
				mu.Unlock()
			}
			if v := c.OrderViolations(); v != 0 {
				t.Errorf("conn %d: %d commit-order violations", ci, v)
			}
			if err := c.Close(); err != nil {
				t.Errorf("conn %d close: %v", ci, err)
			}
		}(ci)
	}
	wg.Wait()
	if len(all) != conns*perConn {
		t.Fatalf("committed %d of %d", len(all), conns*perConn)
	}
	model := make([]uint64, svcAccounts)
	for i := range model {
		model[i] = 1000
	}
	foldPayloads(t, model, all)
	got := fetchState(t, addr)
	for i := range model {
		if got[i] != model[i] {
			t.Fatalf("account %d: server has %d, sequential fold has %d", i, got[i], model[i])
		}
	}
}

// shutdownNow tears a test server down without waiting forever for
// streams a failing test may have left open.
func shutdownNow(srv *serve.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// TestServeDeadline submits a stalling transaction under a deadline
// far shorter than its own commit latency: the response must resolve
// early with the canceled wire error, while the transaction itself —
// whose age was assigned — still commits, keeping the rest of the
// stream live and ordered.
func TestServeDeadline(t *testing.T) {
	accounts := newSvcAccounts()
	srv, p, addr := startPipelineServer(t, accounts)
	defer p.Close()
	defer shutdownNow(srv)

	c, err := serve.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	hurried, err := c.SubmitTimeout([]byte{0xFE}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := c.Submit(transferPayload(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hurried.Wait(); !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("hurried wait = %v, want ErrCanceled", err)
	}
	var werr *serve.Error
	if _, err := hurried.Wait(); !errors.As(err, &werr) || werr.Code != serve.CodeCanceled {
		t.Fatalf("hurried error = %#v, want CodeCanceled", err)
	}
	// The canceled wait abandoned the response, not the transaction:
	// its age was assigned, so the next transaction still commits
	// after it in order.
	if _, err := relaxed.Wait(); err != nil {
		t.Fatalf("relaxed: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeFaultMapping submits a panicking body and checks the
// faulting transaction answers CodeFault while the collateral answers
// map to CodeStopped, both reconstructing the engine sentinels.
func TestServeFaultMapping(t *testing.T) {
	accounts := newSvcAccounts()
	srv, p, addr := startPipelineServer(t, accounts)
	defer p.Close()
	defer shutdownNow(srv)

	c, err := serve.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	var calls []*serve.Call
	for i := 0; i < 5; i++ {
		call, err := c.Submit(transferPayload(uint32(i), uint32(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, call)
	}
	boom, err := c.Submit([]byte{0xFD})
	if err != nil {
		t.Fatal(err)
	}
	for _, call := range calls {
		if _, err := call.Wait(); err != nil {
			t.Fatalf("pre-fault call: %v", err)
		}
	}
	_, berr := boom.Wait()
	var werr *serve.Error
	if !errors.As(berr, &werr) || werr.Code != serve.CodeFault {
		t.Fatalf("fault answered %v, want CodeFault", berr)
	}
	// Later submissions on the stopped pipeline answer CodeStopped.
	deadline := time.Now().Add(5 * time.Second)
	for {
		call, err := c.Submit(transferPayload(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		_, serr := call.Wait()
		if serr == nil {
			// Raced the stop; the age committed before the fault cut.
			if time.Now().After(deadline) {
				t.Fatal("pipeline never stopped")
			}
			continue
		}
		if !errors.Is(serr, stm.ErrStopped) {
			t.Fatalf("post-fault submit answered %v, want ErrStopped", serr)
		}
		if !errors.As(serr, &werr) || werr.Code != serve.CodeStopped {
			t.Fatalf("post-fault code = %v, want CodeStopped", serr)
		}
		break
	}
	c.Close()
}

// TestServeDrain checks Shutdown's contract: new streams are refused,
// in-flight streams keep answering until their client half-closes.
func TestServeDrain(t *testing.T) {
	accounts := newSvcAccounts()
	srv, p, addr := startPipelineServer(t, accounts)
	defer p.Close()

	c, err := serve.Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := c.Submit(transferPayload(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pre.Wait(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()

	// New connections are refused once draining.
	refused := false
	for i := 0; i < 100; i++ {
		c2, err := serve.Dial(context.Background(), addr)
		if err != nil {
			refused = true
			break
		}
		c2.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("dial kept succeeding during drain")
	}

	// The in-flight stream still answers.
	mid, err := c.Submit(transferPayload(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mid.Wait(); err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeShardedCrashRestart is the end-to-end determinism
// acceptance test: N concurrent connections against a 2-shard durable
// router with cross-shard requests, a crash-consistent WAL snapshot
// taken mid-stream ("kill"), recovery from the snapshot, a restarted
// server continuing the stream, and the final state checked against
// the sequential fold of the log — with every client observing its
// responses in commit order throughout.
func TestServeShardedCrashRestart(t *testing.T) {
	const conns, perConn = 4, 150
	dir := filepath.Join(t.TempDir(), "wal")
	snap := filepath.Join(t.TempDir(), "snap")

	accounts := newSvcAccounts()
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := shard.New(shard.Config{
		Shards:   2,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2},
		WAL:      w,
		Codec:    svcShardCodec{accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{Sharded: sp})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()

	// Phase 1: stream from all connections; snapshot the live WAL dir
	// mid-stream (the crash image a kill -9 would leave).
	var snapOnce sync.Once
	var wg sync.WaitGroup
	var mu sync.Mutex
	var phase1 []agedPayload
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := serve.Dial(context.Background(), addr)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perConn; i++ {
				k := uint64(ci*perConn + i)
				// Arbitrary pairs over the whole space: a healthy share
				// lands on both shards (cross-shard fenced requests).
				pl := transferPayload(uint32((k*17)%svcAccounts), uint32((k*29+3)%svcAccounts))
				call, err := c.Submit(pl)
				if err != nil {
					t.Error(err)
					break
				}
				age, werr := call.Wait()
				if werr != nil {
					t.Errorf("conn %d: %v", ci, werr)
					break
				}
				mu.Lock()
				phase1 = append(phase1, agedPayload{age, pl})
				mu.Unlock()
				if i == perConn/2 && ci == 0 {
					snapOnce.Do(func() { copyDirLive(t, dir, snap) })
				}
			}
			if v := c.OrderViolations(); v != 0 {
				t.Errorf("conn %d: %d commit-order violations", ci, v)
			}
			if err := c.Close(); err != nil {
				t.Error(err)
			}
		}(ci)
	}
	wg.Wait()
	snapOnce.Do(func() { copyDirLive(t, dir, snap) }) // belt and braces
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if sp.CrossShard() == 0 {
		t.Fatal("workload produced no cross-shard transactions")
	}

	// Recover the crash image: replayed state must equal the
	// sequential fold of the surviving records.
	rec, err := wal.Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() == 0 {
		t.Fatal("crash image recovered no records (snapshot too early?)")
	}
	w2, err := rec.Writer(wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	accounts2 := newSvcAccounts()
	sp2, err := shard.New(shard.Config{
		Shards:   2,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2, FirstAge: rec.First()},
		WAL:      w2,
		Codec:    svcShardCodec{accounts2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(func(_ uint64, payload []byte) error {
		_, err := sp2.SubmitEncoded(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := sp2.Drain(); err != nil {
		t.Fatal(err)
	}
	model := make([]uint64, svcAccounts)
	for i := range model {
		model[i] = 1000
	}
	var recovered []agedPayload
	for i, r := range rec.Records() {
		recovered = append(recovered, agedPayload{rec.First() + uint64(i), r.Payload})
	}
	foldPayloads(t, model, recovered)
	for i := range accounts2 {
		if got := accounts2[i].Load(); got != model[i] {
			t.Fatalf("account %d after replay: %d, fold says %d", i, got, model[i])
		}
	}

	// Restart the server on the recovered router and continue the
	// stream; the final state must fold from the full recovered log.
	srv2, err := serve.NewServer(serve.Config{Sharded: sp2})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := serve.Dial(context.Background(), srv2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var phase2 []agedPayload
	for i := 0; i < 100; i++ {
		pl := transferPayload(uint32((uint64(i)*31)%svcAccounts), uint32((uint64(i)*37+5)%svcAccounts))
		call, err := c.Submit(pl)
		if err != nil {
			t.Fatal(err)
		}
		age, werr := call.Wait()
		if werr != nil {
			t.Fatal(werr)
		}
		if age < rec.Next() {
			t.Fatalf("post-restart age %d below recovery frontier %d", age, rec.Next())
		}
		phase2 = append(phase2, agedPayload{age, pl})
	}
	if v := c.OrderViolations(); v != 0 {
		t.Fatalf("%d commit-order violations after restart", v)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sp2.Close(); err != nil {
		t.Fatal(err)
	}
	final := make([]uint64, svcAccounts)
	for i := range accounts2 {
		final[i] = accounts2[i].Load()
	}
	foldPayloads(t, model, phase2) // fold the continuation onto the replayed model
	for i := range final {
		if final[i] != model[i] {
			t.Fatalf("account %d after restart: %d, fold says %d", i, final[i], model[i])
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// copyDirLive clones a directory that may be concurrently appended to
// (torn tails in the copy are expected and welcome) — the established
// crash-image idiom from the stm durability tests.
func copyDirLive(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
