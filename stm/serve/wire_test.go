package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

func TestRequestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 4096)}
	var buf []byte
	for i, pl := range payloads {
		buf = appendRequestFrame(buf, uint64(i)<<32|7, uint32(i*250), pl)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	for i, pl := range payloads {
		if !frameBuffered(br) {
			// frameBuffered is best-effort lookahead; force a fill.
			_, _ = br.Peek(4)
		}
		frame, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		id, dl, got, err := parseRequestFrame(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if id != uint64(i)<<32|7 || dl != uint32(i*250) || !bytes.Equal(got, pl) {
			t.Fatalf("frame %d: got id=%d dl=%d payload=%q", i, id, dl, got)
		}
	}
	if _, err := readFrame(br, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	huge := appendRequestFrame(nil, 1, 0, make([]byte, 256))
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(huge)), 64); err == nil {
		t.Fatal("oversized frame accepted")
	}
	trunc := huge[:len(huge)-10]
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(trunc)), DefaultMaxFrame); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// TestWireErrorRoundTrip is the error-taxonomy contract: every engine
// error class travels as a distinct code, and the client-side
// reconstruction still matches the engine sentinels via errors.Is.
func TestWireErrorRoundTrip(t *testing.T) {
	fault := &stm.Fault{Age: 41, Value: "boom"}
	ftErr := &shard.FenceTimeoutError{Age: 9, Shard: 1, Timeout: time.Second}
	cases := []struct {
		name string
		err  error
		code Code
		is   []error // sentinels the reconstructed error must match
	}{
		{
			name: "canceled",
			err:  fmt.Errorf("%w before an age was assigned: %w", stm.ErrCanceled, context.Canceled),
			code: CodeCanceled,
			is:   []error{stm.ErrCanceled},
		},
		{
			name: "stopped",
			err:  &stm.Stopped{Fault: fault},
			code: CodeStopped,
			is:   []error{stm.ErrStopped},
		},
		{
			name: "fault",
			err:  fault,
			code: CodeFault,
		},
		{
			name: "closed",
			err:  stm.ErrClosed,
			code: CodeClosed,
			is:   []error{stm.ErrClosed},
		},
		{
			name: "durability",
			err:  &stm.DurabilityError{Err: errors.New("fsync: disk gone")},
			code: CodeDurability,
		},
		{
			name: "degraded",
			err:  &stm.DurabilityError{Err: fmt.Errorf("append: %w", wal.ErrDegraded)},
			code: CodeDegraded,
			is:   []error{wal.ErrDegraded},
		},
		{
			name: "fence-timeout-fault",
			err:  &stm.Fault{Age: 9, Value: ftErr},
			code: CodeFenceTimeout,
		},
		{
			name: "fence-timeout-stopped",
			err:  &stm.Stopped{Fault: &stm.Fault{Age: 9, Value: ftErr}},
			code: CodeFenceTimeout,
		},
		{
			name: "internal",
			err:  errors.New("something else"),
			code: CodeInternal,
		},
	}
	seen := make(map[Code]string)
	for _, tc := range cases {
		if got := CodeOf(tc.err); got != tc.code {
			t.Errorf("%s: CodeOf = %v, want %v", tc.name, got, tc.code)
		}
		// Distinctness across the five mandated classes (the two
		// fence-timeout shapes intentionally share a code).
		if prev, dup := seen[tc.code]; dup && tc.code != CodeFenceTimeout {
			t.Errorf("%s: code %v already used by %s", tc.name, tc.code, prev)
		}
		seen[tc.code] = tc.name

		// Over the wire and back.
		frame := appendResponseFrame(nil, 5, 77, CodeOf(tc.err), tc.err.Error())
		id, age, code, msg, err := parseResponseFrame(frame[4:])
		if err != nil || id != 5 || age != 77 {
			t.Fatalf("%s: parse: id=%d age=%d err=%v", tc.name, id, age, err)
		}
		rerr := DecodeError(code, msg)
		if rerr == nil {
			t.Fatalf("%s: decoded to nil", tc.name)
		}
		if got := CodeOf(rerr); got != tc.code {
			t.Errorf("%s: code not idempotent across the wire: %v", tc.name, got)
		}
		for _, sentinel := range tc.is {
			if !errors.Is(rerr, sentinel) {
				t.Errorf("%s: reconstructed error does not match %v", tc.name, sentinel)
			}
		}
		// No false positives: a reconstructed canceled must not look
		// stopped, and vice versa.
		if tc.code != CodeCanceled && errors.Is(rerr, stm.ErrCanceled) {
			t.Errorf("%s: falsely matches ErrCanceled", tc.name)
		}
	}
	if DecodeError(CodeOK, "") != nil {
		t.Error("CodeOK must decode to nil")
	}
	if CodeOf(nil) != CodeOK {
		t.Error("CodeOf(nil) must be CodeOK")
	}
}
