package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Call is one in-flight request on a Client: a future resolving when
// the server's response frame for it arrives (i.e. when the
// transaction committed, or was refused/canceled).
type Call struct {
	id      uint64
	done    chan struct{}
	age     uint64
	err     error
	payload []byte // retained only under WithNotLeaderRedial
}

// Done is closed when the response arrived.
func (c *Call) Done() <-chan struct{} { return c.done }

// Wait blocks for the response and returns the assigned global age
// and the reconstructed typed error (nil on commit; else an *Error
// matching the engine sentinels through errors.Is).
func (c *Call) Wait() (uint64, error) {
	<-c.done
	return c.age, c.err
}

// Age returns the assigned global age; valid after Done.
func (c *Call) Age() uint64 { return c.age }

// Err returns the call's error; valid after Done.
func (c *Call) Err() error { return c.err }

// Client is one wire connection: a single full-duplex HTTP/2 stream
// carrying a request frame stream out and the commit-order response
// stream back. Submit may be called from any number of goroutines;
// frames are written in Submit call order, which is the order the
// server submits (and therefore commits and answers) them. Close
// half-closes the stream and waits for the remaining responses.
type Client struct {
	pw     *io.PipeWriter
	resp   *http.Response
	tr     *http.Transport
	cancel context.CancelFunc

	wmu     sync.Mutex // serializes frame writes and id assignment
	nextID  uint64
	wbuf    []byte
	closed  bool
	writeEr error

	rmu        sync.Mutex
	pending    map[uint64]*Call
	lastAge    uint64
	haveAge    bool
	violations int

	readDone chan struct{}
	readErr  error

	rd *redirector // nil unless WithNotLeaderRedial
}

// Dial opens a connection to a Server at addr ("host:port"). ctx
// bounds the dial and header round-trip only; the stream itself lives
// until Close.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	var dc dialCfg
	for _, o := range opts {
		o(&dc)
	}
	pr, pw := io.Pipe()
	tr := &http.Transport{}
	// Prior-knowledge cleartext HTTP/2: only the unencrypted h2
	// protocol is enabled, so the transport speaks h2c directly on
	// the TCP connection (no Upgrade dance, which couldn't carry a
	// streaming request body anyway).
	tr.Protocols = new(http.Protocols)
	tr.Protocols.SetUnencryptedHTTP2(true)
	cctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, "http://"+addr+"/submit", pr)
	if err != nil {
		cancel()
		return nil, err
	}
	// The caller's ctx can abort the dial; once the response headers
	// are in, the stream detaches from it and is owned by Close.
	stop := context.AfterFunc(ctx, cancel)
	resp, err := tr.RoundTrip(req)
	stop()
	if err != nil {
		cancel()
		pr.Close()
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		pr.Close()
		return nil, fmt.Errorf("serve: dial %s: server answered %s", addr, resp.Status)
	}
	c := &Client{
		pw:       pw,
		resp:     resp,
		tr:       tr,
		cancel:   cancel,
		pending:  make(map[uint64]*Call),
		readDone: make(chan struct{}),
	}
	if dc.redial {
		c.rd = newRedirector(addr, dc.candidates)
	}
	go c.readLoop()
	return c, nil
}

// Submit sends payload (the pipeline Codec's wire form) and returns
// its Call.
func (c *Client) Submit(payload []byte) (*Call, error) {
	return c.submit(payload, 0)
}

// SubmitTimeout is Submit with a per-request deadline enforced
// server-side: if the transaction has not committed within d, the
// response resolves early with CodeCanceled (the submission is
// withdrawn if no age was assigned yet; an assigned age still
// commits — only the wait is abandoned).
func (c *Client) SubmitTimeout(payload []byte, d time.Duration) (*Call, error) {
	ms := (d + time.Millisecond - 1) / time.Millisecond
	if ms <= 0 {
		ms = 1
	}
	if ms > 1<<31 {
		return nil, fmt.Errorf("serve: deadline %v out of range", d)
	}
	return c.submit(payload, uint32(ms))
}

// SubmitMany writes the payloads as one contiguous burst of frames in
// a single write, so they reach the server together and its ingress
// batcher coalesces them into one batched submission (consecutive
// ages under one sequencer lock). Returns one Call per payload, in
// submission (= age = response) order.
func (c *Client) SubmitMany(payloads [][]byte) ([]*Call, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("serve: submit on closed connection")
	}
	if c.writeEr != nil {
		return nil, c.writeEr
	}
	calls := make([]*Call, len(payloads))
	c.wbuf = c.wbuf[:0]
	c.rmu.Lock()
	for i, pl := range payloads {
		id := c.nextID
		c.nextID++
		calls[i] = &Call{id: id, done: make(chan struct{})}
		if c.rd != nil {
			calls[i].payload = append([]byte(nil), pl...)
		}
		c.pending[id] = calls[i]
		c.wbuf = appendRequestFrame(c.wbuf, id, 0, pl)
	}
	c.rmu.Unlock()
	if _, err := c.pw.Write(c.wbuf); err != nil {
		c.rmu.Lock()
		for _, call := range calls {
			delete(c.pending, call.id)
		}
		c.rmu.Unlock()
		c.writeEr = fmt.Errorf("serve: write frames: %w", err)
		return nil, c.writeEr
	}
	return calls, nil
}

func (c *Client) submit(payload []byte, deadlineMS uint32) (*Call, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("serve: submit on closed connection")
	}
	if c.writeEr != nil {
		return nil, c.writeEr
	}
	id := c.nextID
	c.nextID++
	call := &Call{id: id, done: make(chan struct{})}
	if c.rd != nil {
		call.payload = append([]byte(nil), payload...)
	}
	c.rmu.Lock()
	c.pending[id] = call
	c.rmu.Unlock()
	c.wbuf = appendRequestFrame(c.wbuf[:0], id, deadlineMS, payload)
	if _, err := c.pw.Write(c.wbuf); err != nil {
		c.rmu.Lock()
		delete(c.pending, id)
		c.rmu.Unlock()
		c.writeEr = fmt.Errorf("serve: write frame: %w", err)
		return nil, c.writeEr
	}
	return call, nil
}

func (c *Client) readLoop() {
	defer close(c.readDone)
	br := bufio.NewReaderSize(c.resp.Body, 64<<10)
	for {
		frame, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			c.finish(err)
			return
		}
		id, age, code, msg, err := parseResponseFrame(frame)
		if err != nil {
			c.finish(err)
			return
		}
		c.rmu.Lock()
		call := c.pending[id]
		delete(c.pending, id)
		if code == CodeOK {
			// The commit-order contract, checked at the cheapest
			// possible point: committed ages on one connection must
			// arrive monotonically.
			if c.haveAge && age < c.lastAge {
				c.violations++
			}
			c.lastAge, c.haveAge = age, true
		}
		c.rmu.Unlock()
		if call != nil {
			if code == CodeNotLeader && c.rd != nil && call.payload != nil {
				// Leadership moved: hand the call to the redirector
				// instead of failing it. msg is the leader hint.
				c.rd.wg.Add(1)
				go c.rd.resubmit(call, msg)
				continue
			}
			call.age = age
			call.err = DecodeError(code, msg)
			close(call.done)
		}
	}
}

// Redials returns how many calls were resubmitted to another server
// after a NotLeader answer (0 without WithNotLeaderRedial).
func (c *Client) Redials() uint64 {
	if c.rd == nil {
		return 0
	}
	return c.rd.redials.Load()
}

// finish resolves every still-pending call with err (the stream is
// gone; no responses are coming).
func (c *Client) finish(err error) {
	if err == io.EOF {
		err = fmt.Errorf("serve: connection closed before response")
	}
	c.rmu.Lock()
	n := len(c.pending)
	for id, call := range c.pending {
		delete(c.pending, id)
		call.err = err
		close(call.done)
	}
	c.rmu.Unlock()
	if n > 0 {
		c.readErr = err
	}
}

// OrderViolations returns how many committed responses arrived with
// an age below a previously seen one — zero on a correct server, by
// the commit-order response contract.
func (c *Client) OrderViolations() int {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	return c.violations
}

// Close half-closes the request stream (the server answers everything
// in flight, then ends the response stream), waits for those
// responses, and tears the connection down. It returns an error if
// any submitted call went unanswered.
func (c *Client) Close() error {
	c.wmu.Lock()
	if c.closed {
		c.wmu.Unlock()
		<-c.readDone
		return c.readErr
	}
	c.closed = true
	c.wmu.Unlock()
	c.pw.Close()
	<-c.readDone
	if c.rd != nil {
		c.rd.close() // all redirect goroutines were spawned by readLoop
	}
	c.resp.Body.Close()
	c.cancel()
	c.tr.CloseIdleConnections()
	return c.readErr
}
