package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DialOption configures a Client at Dial time.
type DialOption func(*dialCfg)

type dialCfg struct {
	redial     bool
	candidates []string
}

// WithNotLeaderRedial makes the client chase a leader hand-off
// transparently: a call answered CodeNotLeader is not resolved with
// the error but resubmitted to the new leader — the hint address the
// response carried when present, otherwise each candidate in turn —
// and resolves with the outcome there. Resubmission is safe by the
// NotLeader contract: the refusing server never submitted the payload,
// so no age was assigned and the transaction cannot commit twice.
//
// The original connection stays open (the old server may still answer
// reads); redirected calls ride one shared secondary connection to the
// current leader. Attempts are bounded per call with backoff; when
// they run out the call resolves with the last error. Payloads are
// retained per in-flight call to make resubmission possible — the
// option's memory cost.
func WithNotLeaderRedial(candidates ...string) DialOption {
	return func(c *dialCfg) {
		c.redial = true
		c.candidates = candidates
	}
}

const (
	redialAttempts   = 6
	redialBackoff    = 10 * time.Millisecond
	redialBackoffMax = 250 * time.Millisecond
	redialTimeout    = 2 * time.Second
)

// redirector owns a client's not-leader follow-up: the shared
// connection to the current believed leader and the resubmission of
// redirected calls over it.
type redirector struct {
	origin     string // the address originally dialed (last-resort candidate)
	candidates []string

	mu   sync.Mutex
	cur  *Client // connection to the current believed leader
	next int     // round-robin cursor over candidates

	redials atomic.Uint64 // calls that were resubmitted at least once
	wg      sync.WaitGroup
}

func newRedirector(origin string, candidates []string) *redirector {
	return &redirector{origin: origin, candidates: candidates}
}

// resubmit chases one redirected call to the current leader. Runs on
// its own goroutine, spawned by the primary connection's read loop.
func (r *redirector) resubmit(call *Call, hint string) {
	defer r.wg.Done()
	r.redials.Add(1)
	backoff := redialBackoff
	var lastErr error = &Error{Code: CodeNotLeader, Msg: hint}
	for attempt := 0; attempt < redialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > redialBackoffMax {
				backoff = redialBackoffMax
			}
		}
		cl, err := r.conn(hint)
		if err != nil {
			lastErr = err
			continue
		}
		c2, err := cl.Submit(call.payload)
		if err != nil {
			lastErr = err
			r.drop(cl)
			continue
		}
		age, err := c2.Wait()
		if err == nil {
			call.age = age
			close(call.done)
			return
		}
		lastErr = err
		if errors.Is(err, ErrNotLeader) {
			// The believed leader demurred too — mid-election, or a
			// chain of hand-offs. Follow its hint (if any) and retry.
			hint, _ = LeaderHint(err)
			r.drop(cl)
			continue
		}
		// A real engine answer from the new leader (fault, canceled,
		// ...): that IS the call's outcome.
		call.age, call.err = age, err
		close(call.done)
		return
	}
	call.err = fmt.Errorf("serve: redial exhausted after %d attempts: %w", redialAttempts, lastErr)
	close(call.done)
}

// conn returns the shared leader connection, dialing if needed: the
// hint first, then each candidate (round-robin), then the origin.
func (r *redirector) conn(hint string) (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		return r.cur, nil
	}
	var targets []string
	if hint != "" {
		targets = append(targets, hint)
	}
	for i := 0; i < len(r.candidates); i++ {
		targets = append(targets, r.candidates[(r.next+i)%len(r.candidates)])
	}
	if len(r.candidates) > 0 {
		r.next = (r.next + 1) % len(r.candidates)
	}
	targets = append(targets, r.origin)
	var lastErr error
	for _, addr := range targets {
		ctx, cancel := context.WithTimeout(context.Background(), redialTimeout)
		cl, err := Dial(ctx, addr)
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		r.cur = cl
		return cl, nil
	}
	return nil, lastErr
}

// drop discards the shared connection if it is still cl (a NotLeader
// answer or write failure proved it wrong).
func (r *redirector) drop(cl *Client) {
	r.mu.Lock()
	if r.cur == cl {
		r.cur = nil
		defer cl.Close()
	}
	r.mu.Unlock()
}

// close waits out in-flight resubmissions and closes the shared
// leader connection.
func (r *redirector) close() {
	r.wg.Wait()
	r.mu.Lock()
	cur := r.cur
	r.cur = nil
	r.mu.Unlock()
	if cur != nil {
		cur.Close()
	}
}
