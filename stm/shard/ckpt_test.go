package shard_test

import (
	"testing"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

func shardSnapshotter(accounts []stm.Var) stm.Snapshotter {
	return stm.SnapshotterFuncs{
		SnapshotFunc: func() ([]byte, error) { return stm.SnapshotVars(accounts), nil },
		RestoreFunc:  func(data []byte) error { return stm.RestoreVars(accounts, data) },
	}
}

// foldPayloads folds a single-producer payload schedule (global age ==
// schedule index) over plain integers for ages [0, next) — valid even
// when the log prefix was truncated by a checkpoint.
func foldPayloads(payloads []xfer, next uint64) []uint64 {
	balances := make([]uint64, durAccounts)
	for i := range balances {
		balances[i] = 1000
	}
	for a := uint64(0); a < next; a++ {
		x := payloads[a]
		amt := a%5 + 1
		if balances[x.from] >= amt && x.from != x.to {
			balances[x.from] -= amt
			balances[x.to] += amt
		}
	}
	return balances
}

// replayCheckpointedSharded rebuilds state from a sharded recovery:
// split the checkpoint into watermarks + application snapshot, restore
// the Vars, and replay the surviving suffix through a fresh router
// seeded with the watermarks.
func replayCheckpointedSharded(t *testing.T, alg stm.Algorithm, shards int, rec *wal.Recovery) []uint64 {
	t.Helper()
	accounts := newDurAccounts()
	var locals []uint64
	if rec.HasCheckpoint() {
		ln, app, err := shard.DecodeCheckpoint(rec.CheckpointState())
		if err != nil {
			t.Fatal(err)
		}
		if len(ln) != shards {
			t.Fatalf("checkpoint froze %d shard watermarks, want %d", len(ln), shards)
		}
		locals = ln
		if err := stm.RestoreVars(accounts, app); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir() // scratch log for the replay instance
	w, err := wal.Create(dir, rec.First(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sp, err := shard.New(shard.Config{
		Shards:         shards,
		Pipeline:       stm.Config{Algorithm: alg, Workers: 2, FirstAge: rec.First()},
		WAL:            w,
		Codec:          xferCodec{accounts: accounts},
		LocalFirstAges: locals,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(func(age uint64, payload []byte) error {
		_, err := sp.SubmitEncoded(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	return stateOf(accounts)
}

// crossPayloads builds a single-producer schedule where every fourth
// transfer spans both partitions under the live instance's layout.
func crossPayloads(sp *shard.ShardedPipeline, accounts []stm.Var, n int) []xfer {
	payloads := make([]xfer, n)
	buckets := bucketsOf(sp, accounts)
	for i := range payloads {
		if i%4 == 0 && len(buckets[0]) > 0 && len(buckets[1]) > 0 {
			payloads[i] = xfer{
				from: uint32(buckets[0][i%len(buckets[0])]),
				to:   uint32(buckets[1][i%len(buckets[1])]),
			}
		} else {
			payloads[i] = xferFor(uint64(i))
		}
	}
	return payloads
}

// TestShardedCheckpointCrashRecovery: a sharded run with automatic
// checkpoints and heavy cross-shard traffic crashes at an arbitrary
// instant (live directory copy, torn files welcome); recovery restores
// the snapshot, seeds the per-shard watermarks, replays only the
// suffix, and must match the sequential fold of exactly the recovered
// prefix — for every ordered engine family.
func TestShardedCheckpointCrashRecovery(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.OUL, stm.OWB, stm.STMLite} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n, shards = 1200, 2
			dir, snapDir := t.TempDir(), t.TempDir()
			accounts := newDurAccounts()
			w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 4, SegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			sp, err := shard.New(shard.Config{
				Shards:          shards,
				Pipeline:        stm.Config{Algorithm: alg, Workers: 2},
				WAL:             w,
				Codec:           xferCodec{accounts: accounts},
				CheckpointEvery: 150,
				Snapshotter:     shardSnapshotter(accounts),
			})
			if err != nil {
				t.Fatal(err)
			}
			payloads := crossPayloads(sp, accounts, n)
			for i := 0; i < n; i++ {
				tk, err := sp.SubmitPayload(payloads[i])
				if err != nil {
					t.Fatal(err)
				}
				if i == 2*n/3 {
					if err := tk.Wait(); err != nil {
						t.Fatal(err)
					}
					copyLogDir(t, dir, snapDir)
				}
			}
			if err := sp.Close(); err != nil {
				t.Fatal(err)
			}
			if sp.CrossShard() == 0 {
				t.Fatal("workload produced no cross-shard transactions")
			}
			if sp.Checkpoints() == 0 {
				t.Fatal("run took no checkpoints")
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := wal.Recover(snapDir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Next() == 0 || rec.Next() > n {
				t.Fatalf("recovered frontier %d outside (0, %d]", rec.Next(), n)
			}
			if rec.HasCheckpoint() && rec.First() != rec.CheckpointAge() {
				t.Fatalf("First() = %d with a checkpoint at %d", rec.First(), rec.CheckpointAge())
			}
			model := foldPayloads(payloads, rec.Next())
			if got := replayCheckpointedSharded(t, alg, shards, rec); !sameState(got, model) {
				t.Fatalf("%v sharded checkpoint recovery diverges from the sequential prefix state", alg)
			}
		})
	}
}

// TestShardedCleanCloseCheckpointAndContinue: a cleanly closed
// checkpointing router leaves a replay-free log (final checkpoint at
// the full frontier); a restarted router seeded from DecodeCheckpoint
// continues the global sequence, and the combined history still folds
// to the live state.
func TestShardedCleanCloseCheckpointAndContinue(t *testing.T) {
	const n1, n2, shards = 300, 100, 2
	dir := t.TempDir()
	accounts := newDurAccounts()
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 8, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := shard.New(shard.Config{
		Shards:          shards,
		Pipeline:        stm.Config{Algorithm: stm.OUL, Workers: 2},
		WAL:             w,
		Codec:           xferCodec{accounts: accounts},
		CheckpointEvery: 100,
		Snapshotter:     shardSnapshotter(accounts),
	})
	if err != nil {
		t.Fatal(err)
	}
	payloads := crossPayloads(sp, accounts, n1+n2)
	for i := 0; i < n1; i++ {
		tk, err := sp.SubmitPayload(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	live := stateOf(accounts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint() || rec.CheckpointAge() != n1 || rec.First() != n1 || rec.Count() != 0 {
		t.Fatalf("clean close left first=%d count=%d ckptAge=%d (has=%v), want a replay-free restart at %d",
			rec.First(), rec.Count(), rec.CheckpointAge(), rec.HasCheckpoint(), n1)
	}
	locals, app, err := shard.DecodeCheckpoint(rec.CheckpointState())
	if err != nil {
		t.Fatal(err)
	}
	if len(locals) != shards {
		t.Fatalf("checkpoint froze %d watermarks, want %d", len(locals), shards)
	}
	var sum uint64
	for _, la := range locals {
		sum += la
	}
	if sum < n1 {
		t.Fatalf("watermarks sum to %d, want >= %d (every age consumes a local age per involved shard)", sum, n1)
	}
	accounts2 := newDurAccounts()
	if err := stm.RestoreVars(accounts2, app); err != nil {
		t.Fatal(err)
	}
	if !sameState(stateOf(accounts2), live) {
		t.Fatal("restored snapshot diverges from live state at close")
	}
	w2, err := rec.Writer(wal.Options{SyncEveryN: 8, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := shard.New(shard.Config{
		Shards:         shards,
		Pipeline:       stm.Config{Algorithm: stm.OUL, Workers: 2, FirstAge: rec.First()},
		WAL:            w2,
		Codec:          xferCodec{accounts: accounts2},
		LocalFirstAges: locals,
		Snapshotter:    shardSnapshotter(accounts2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := n1; i < n1+n2; i++ {
		tk, err := sp2.SubmitPayload(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Manual checkpoint on the restarted router: the global age picks
	// up exactly where the first incarnation froze.
	age, err := sp2.Checkpoint()
	if err != nil || age != n1+n2 {
		t.Fatalf("restarted Checkpoint() = %d, %v; want %d, nil", age, err, n1+n2)
	}
	if err := sp2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if want := foldPayloads(payloads, n1+n2); !sameState(stateOf(accounts2), want) {
		t.Fatal("continued sharded state diverges from the sequential fold of the full schedule")
	}
	rec2, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.HasCheckpoint() || rec2.First() != n1+n2 || rec2.Count() != 0 {
		t.Fatalf("second recovery: first=%d count=%d, want a replay-free restart at %d",
			rec2.First(), rec2.Count(), n1+n2)
	}
}

// TestShardedCheckpointConfigValidation: incomplete sharded checkpoint
// configs are rejected up front.
func TestShardedCheckpointConfigValidation(t *testing.T) {
	accounts := newDurAccounts()
	snap := shardSnapshotter(accounts)
	w, err := wal.Create(t.TempDir(), 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cases := []struct {
		name string
		cfg  shard.Config
	}{
		{"no WAL", shard.Config{Shards: 2, Pipeline: stm.Config{Algorithm: stm.OUL}, CheckpointEvery: 10, Snapshotter: snap}},
		{"no snapshotter", shard.Config{Shards: 2, Pipeline: stm.Config{Algorithm: stm.OUL}, WAL: w, Codec: xferCodec{accounts: accounts}, CheckpointEvery: 10}},
		{"bad watermarks", shard.Config{Shards: 2, Pipeline: stm.Config{Algorithm: stm.OUL}, WAL: w, Codec: xferCodec{accounts: accounts}, LocalFirstAges: []uint64{1, 2, 3}}},
	}
	for _, tc := range cases {
		if _, err := shard.New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}
	if _, _, err := shard.DecodeCheckpoint([]byte{1, 0}); err == nil {
		t.Error("DecodeCheckpoint accepted a truncated state")
	}
}
