package shard_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
)

// directTx applies a body to quiescent memory: the sequential oracle.
type directTx struct{ age uint64 }

func (d directTx) Read(v *stm.Var) uint64     { return v.Load() }
func (d directTx) Write(v *stm.Var, x uint64) { v.Store(x) }
func (d directTx) Age() uint64                { return d.age }

// xcmd is one randomized transaction of the fuzz stream: a declared
// set of variable indices (spanning 1–3 shards) and a deterministic
// body over them.
type xcmd struct {
	idx []int // indices into the shared pool, all declared
}

// buckets groups pool indices by owning shard so the generator can
// construct single-shard and deliberately cross-shard access sets.
func buckets(pool []stm.Var, shards int) [][]int {
	out := make([][]int, shards)
	for i := range pool {
		s := shard.Of(&pool[i], shards)
		out[s] = append(out[s], i)
	}
	return out
}

// genCmds builds a stream mixing ~2/3 single-shard and ~1/3
// cross-shard (2–3 shards) transactions.
func genCmds(seed uint64, n, shards int, bk [][]int) []xcmd {
	r := rng.New(seed)
	pick := func(s int) int { return bk[s][r.Intn(len(bk[s]))] }
	cmds := make([]xcmd, n)
	for i := range cmds {
		var idx []int
		switch r.Intn(6) {
		case 0, 1: // cross-shard over 2 shards
			a := r.Intn(shards)
			b := (a + 1 + r.Intn(shards-1)) % shards
			idx = []int{pick(a), pick(b), pick(a)}
		case 2: // cross-shard over up to 3 shards
			a := r.Intn(shards)
			b := (a + 1) % shards
			c := (a + 2) % shards
			idx = []int{pick(a), pick(b), pick(c)}
		default: // single-shard, 1-4 vars
			s := r.Intn(shards)
			for k := 0; k <= r.Intn(4); k++ {
				idx = append(idx, pick(s))
			}
		}
		cmds[i] = xcmd{idx: idx}
	}
	return cmds
}

// body builds the deterministic transaction for one command: read
// every declared variable, fold the values, rotate writes through the
// declared set, and record the fold as the per-ticket result.
func body(c xcmd, pool []stm.Var, results []uint64, g int) stm.Body {
	return func(tx stm.Tx, age int) {
		var sum uint64
		for _, i := range c.idx {
			sum += tx.Read(&pool[i])
		}
		for k, i := range c.idx {
			tx.Write(&pool[i], sum+uint64(g)+uint64(k))
		}
		results[g] = sum
	}
}

func access(c xcmd, pool []stm.Var) stm.Access {
	vs := make([]*stm.Var, len(c.idx))
	for k, i := range c.idx {
		vs[k] = &pool[i]
	}
	return stm.Touches(vs...)
}

const poolSize = 256

func initPool(pool []stm.Var) {
	for i := range pool {
		pool[i].Store(uint64(100 + i))
	}
}

func snapshot(pool []stm.Var) []uint64 {
	out := make([]uint64, len(pool))
	for i := range pool {
		out[i] = pool[i].Load()
	}
	return out
}

// oracle executes the commands strictly in global-age order against
// quiescent memory.
func oracle(cmds []xcmd, pool []stm.Var, results []uint64) []uint64 {
	initPool(pool)
	for g, c := range cmds {
		body(c, pool, results, g)(directTx{age: uint64(g)}, g)
	}
	return snapshot(pool)
}

// TestShardedDeterminism is the acceptance oracle: for every
// order-enforcing algorithm and S in {2,4}, a sharded run of a
// randomized mixed single/cross-shard stream produces per-ticket
// results and final memory identical to the sequential execution in
// global-age order.
func TestShardedDeterminism(t *testing.T) {
	n := 1500
	if testing.Short() {
		n = 400
	}
	algos := append(stm.OrderedAlgorithms(), stm.Sequential)
	for _, shards := range []int{2, 4} {
		pool := stm.NewVars(poolSize)
		bk := buckets(pool, shards)
		for s, b := range bk {
			if len(b) == 0 {
				t.Fatalf("shard %d owns no pool variables", s)
			}
		}
		cmds := genCmds(0xD15C0^uint64(shards), n, shards, bk)
		wantResults := make([]uint64, n)
		wantState := oracle(cmds, pool, wantResults)

		for _, alg := range algos {
			t.Run(fmt.Sprintf("S%d/%s", shards, alg), func(t *testing.T) {
				initPool(pool)
				results := make([]uint64, n)
				sp, err := shard.New(shard.Config{
					Shards:   shards,
					Pipeline: stm.Config{Algorithm: alg, Workers: 4},
				})
				if err != nil {
					t.Fatal(err)
				}
				tickets := make([]*shard.Ticket, n)
				for g, c := range cmds {
					tk, err := sp.Submit(access(c, pool), body(c, pool, results, g))
					if err != nil {
						t.Fatalf("Submit %d: %v", g, err)
					}
					if tk.Age() != uint64(g) {
						t.Fatalf("ticket age %d, want %d", tk.Age(), g)
					}
					tickets[g] = tk
				}
				if err := sp.Drain(); err != nil {
					t.Fatalf("Drain: %v", err)
				}
				for g, tk := range tickets {
					if err := tk.Wait(); err != nil {
						t.Fatalf("ticket %d: %v", g, err)
					}
					if err, ok := tk.Err(); !ok || err != nil {
						t.Fatalf("ticket %d Err peek = %v, %v after resolution", g, err, ok)
					}
				}
				if err := sp.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				gotState := snapshot(pool)
				for i := range wantState {
					if gotState[i] != wantState[i] {
						t.Fatalf("pool[%d] diverged: got %d want %d (stats %v)",
							i, gotState[i], wantState[i], sp.Stats())
					}
				}
				for g := range wantResults {
					if results[g] != wantResults[g] {
						t.Fatalf("per-ticket result %d diverged: got %d want %d",
							g, results[g], wantResults[g])
					}
				}
				if sp.CrossShard() == 0 {
					t.Fatal("stream exercised no cross-shard transactions")
				}
			})
		}
	}
}

// TestShardedCrossFault: a faulting cross-shard transaction stops all
// shards; its ticket carries the *stm.Fault at the global age, every
// later ticket resolves as *stm.Stopped with that fault, and Submit
// and Close report it. The faulter touches every shard, so all
// frontiers are fenced when it runs: every earlier ticket has
// committed and no later one can.
func TestShardedCrossFault(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.Sequential, stm.OUL, stm.OWB, stm.OrderedTL2, stm.STMLite} {
		t.Run(alg.String(), func(t *testing.T) {
			const shards, before, after = 3, 40, 40
			sp, err := shard.New(shard.Config{
				Shards:   shards,
				Pipeline: stm.Config{Algorithm: alg, Workers: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			pool := stm.NewVars(64)
			bk := buckets(pool, shards)
			var tickets []*shard.Ticket
			add := func(a stm.Access, b stm.Body) {
				tk, err := sp.Submit(a, b)
				if err != nil {
					return // the stream may stop while we submit
				}
				tickets = append(tickets, tk)
			}
			bump := func(i int) (stm.Access, stm.Body) {
				v := &pool[i]
				return stm.Touches(v), func(tx stm.Tx, age int) { tx.Write(v, tx.Read(v)+1) }
			}
			for i := 0; i < before; i++ {
				add(bump(bk[i%shards][i%len(bk[i%shards])]))
			}
			faultAge := uint64(before)
			add(stm.TouchesAll(), func(tx stm.Tx, age int) {
				if uint64(age) != faultAge || tx.Age() != faultAge {
					t.Errorf("faulter saw age %d / %d, want %d", age, tx.Age(), faultAge)
				}
				panic("boom")
			})
			for i := 0; i < after; i++ {
				add(bump(bk[i%shards][i%len(bk[i%shards])]))
			}
			err = sp.Close()
			var f *stm.Fault
			if !errors.As(err, &f) || f.Age != faultAge || f.Value != "boom" {
				t.Fatalf("Close error = %v, want fault at global age %d", err, faultAge)
			}
			for g, tk := range tickets {
				werr := tk.Wait() // must not hang
				switch {
				case uint64(g) < faultAge:
					if werr != nil {
						t.Fatalf("pre-fault ticket %d resolved with %v", g, werr)
					}
				case uint64(g) == faultAge:
					if !errors.As(werr, &f) || f.Age != faultAge {
						t.Fatalf("faulting ticket resolved with %v", werr)
					}
				default:
					var st *stm.Stopped
					if !errors.As(werr, &st) || st.Fault.Age != faultAge {
						t.Fatalf("post-fault ticket %d resolved with %v, want Stopped{%d}", g, werr, faultAge)
					}
				}
			}
			if _, err := sp.Submit(stm.Touches(&pool[0]), func(stm.Tx, int) {}); err == nil {
				t.Fatal("Submit after fault succeeded")
			} else {
				var st *stm.Stopped
				if !errors.As(err, &st) {
					t.Fatalf("Submit after fault = %v, want *Stopped", err)
				}
			}
			if sp.Fault() == nil || sp.Fault().Age != faultAge {
				t.Fatalf("Fault() = %v", sp.Fault())
			}
		})
	}
}

// TestShardedSingleFault: a genuine fault inside a single-shard
// transaction also stops every shard (the global order is cut at one
// point), not just the one that hit it.
func TestShardedSingleFault(t *testing.T) {
	const shards = 4
	sp, err := shard.New(shard.Config{
		Shards:   shards,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := stm.NewVars(64)
	bk := buckets(pool, shards)
	v0 := &pool[bk[0][0]]
	tk, err := sp.Submit(stm.Touches(v0), func(tx stm.Tx, age int) { panic("solo") })
	if err != nil {
		t.Fatal(err)
	}
	var f *stm.Fault
	if werr := tk.Wait(); !errors.As(werr, &f) || f.Age != 0 || f.Value != "solo" {
		t.Fatalf("faulting ticket resolved with %v", werr)
	}
	// Every other shard must reject new work too.
	for s := 1; s < shards; s++ {
		vs := &pool[bk[s][0]]
		var st *stm.Stopped
		if _, err := sp.Submit(stm.Touches(vs), func(stm.Tx, int) {}); !errors.As(err, &st) {
			t.Fatalf("shard %d accepted work after a global fault: %v", s, err)
		}
	}
	if err := sp.Close(); !errors.As(err, &f) || f.Value != "solo" {
		t.Fatalf("Close = %v, want the solo fault", err)
	}
}

// TestShardedUndeclaredAccess: touching a variable on a shard the
// declaration did not reserve faults with *AccessError — for both the
// single-shard checked view and the cross-shard routed view.
func TestShardedUndeclaredAccess(t *testing.T) {
	const shards = 4
	pool := stm.NewVars(64)
	bk := buckets(pool, shards)
	cases := []struct {
		name   string
		access stm.Access
	}{
		{"single", stm.Touches(&pool[bk[0][0]])},
		{"cross", stm.Touches(&pool[bk[0][0]], &pool[bk[1][0]])},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := shard.New(shard.Config{
				Shards:   shards,
				Pipeline: stm.Config{Algorithm: stm.OWB, Workers: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			outlaw := &pool[bk[2][0]] // undeclared partition
			tk, err := sp.Submit(tc.access, func(tx stm.Tx, age int) {
				tx.Read(outlaw)
			})
			if err != nil {
				t.Fatal(err)
			}
			werr := tk.Wait()
			var ae *shard.AccessError
			if !errors.As(werr, &ae) || ae.Shard != 2 || ae.Age != 0 {
				t.Fatalf("undeclared access resolved with %v, want AccessError{0, 2}", werr)
			}
			sp.Close()
		})
	}
}

// TestShardedLifecycle covers constructor validation, Drain/Close
// semantics, ErrClosed, and the one-shard degenerate case.
func TestShardedLifecycle(t *testing.T) {
	if _, err := shard.New(shard.Config{Pipeline: stm.Config{Algorithm: stm.TL2}}); err == nil {
		t.Fatal("unordered algorithm accepted")
	}
	sp, err := shard.New(shard.Config{Shards: 1, Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Shards() != 1 {
		t.Fatalf("Shards() = %d", sp.Shards())
	}
	if _, err := sp.Submit(stm.Touches(), nil); err == nil {
		t.Fatal("nil body accepted")
	}
	v := stm.NewVar(0)
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := sp.Submit(stm.TouchesAll(), func(tx stm.Tx, age int) {
			tx.Write(v, tx.Read(v)+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := v.Load(); got != n {
		t.Fatalf("v = %d, want %d", got, n)
	}
	if got := sp.Submitted(); got != n {
		t.Fatalf("Submitted() = %d, want %d", got, n)
	}
	if sv := sp.Stats(); sv.Commits != n {
		t.Fatalf("aggregate commits %d, want %d", sv.Commits, n)
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := sp.Submit(stm.TouchesAll(), func(stm.Tx, int) {}); !errors.Is(err, stm.ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := sp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestShardedFirstAge: global ages start at Pipeline.FirstAge while
// every shard's local sequence starts at zero.
func TestShardedFirstAge(t *testing.T) {
	const base = uint64(7_000_000)
	sp, err := shard.New(shard.Config{
		Shards:   2,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2, FirstAge: base},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := stm.NewVars(16)
	bk := buckets(pool, 2)
	for i := 0; i < 50; i++ {
		vi := &pool[bk[i%2][i%len(bk[i%2])]]
		want := base + uint64(i)
		tk, err := sp.Submit(stm.Touches(vi), func(tx stm.Tx, age int) {
			if uint64(age) != want || tx.Age() != want {
				t.Errorf("body saw age %d / %d, want %d", age, tx.Age(), want)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if tk.Age() != want {
			t.Fatalf("ticket age %d, want %d", tk.Age(), want)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStatsBreakdown: aggregate equals the sum of the
// per-shard breakdown, and cross-shard fences are visible as extra
// engine commits.
func TestShardedStatsBreakdown(t *testing.T) {
	const shards = 2
	sp, err := shard.New(shard.Config{
		Shards:   shards,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := stm.NewVars(32)
	bk := buckets(pool, shards)
	const singles, crosses = 60, 10
	for i := 0; i < singles; i++ {
		s := i % shards
		v := &pool[bk[s][i%len(bk[s])]]
		if _, err := sp.Submit(stm.Touches(v), func(tx stm.Tx, age int) {
			tx.Write(v, tx.Read(v)+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	a, b := &pool[bk[0][0]], &pool[bk[1][0]]
	for i := 0; i < crosses; i++ {
		if _, err := sp.Submit(stm.Touches(a, b), func(tx stm.Tx, age int) {
			tx.Write(a, tx.Read(b)+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sp.CrossShard(); got != crosses {
		t.Fatalf("CrossShard() = %d, want %d", got, crosses)
	}
	per := sp.ShardStats()
	if len(per) != shards {
		t.Fatalf("ShardStats len %d", len(per))
	}
	var sum uint64
	for _, v := range per {
		sum += v.Commits
	}
	agg := sp.Stats()
	if agg.Commits != sum {
		t.Fatalf("aggregate commits %d != per-shard sum %d", agg.Commits, sum)
	}
	// singles commit once; each cross commits one fence per shard.
	if want := uint64(singles + crosses*shards); sum != want {
		t.Fatalf("engine commits %d, want %d", sum, want)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedTicketSelect: tickets support select-based consumption
// for both single-shard and cross-shard submissions.
func TestShardedTicketSelect(t *testing.T) {
	sp, err := shard.New(shard.Config{Shards: 2, Pipeline: stm.Config{Algorithm: stm.OWB, Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	pool := stm.NewVars(16)
	bk := buckets(pool, 2)
	a, b := &pool[bk[0][0]], &pool[bk[1][0]]
	single, err := sp.Submit(stm.Touches(a), func(tx stm.Tx, age int) { tx.Write(a, 1) })
	if err != nil {
		t.Fatal(err)
	}
	cross, err := sp.Submit(stm.Touches(a, b), func(tx stm.Tx, age int) { tx.Write(b, tx.Read(a)) })
	if err != nil {
		t.Fatal(err)
	}
	<-single.Done()
	<-cross.Done()
	for _, tk := range []*shard.Ticket{single, cross} {
		if err, ok := tk.Err(); !ok || err != nil {
			t.Fatalf("ticket %d Err = %v, %v", tk.Age(), err, ok)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Load() != 1 || b.Load() != 1 {
		t.Fatalf("a=%d b=%d, want 1 1", a.Load(), b.Load())
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}
