package shard_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

const durAccounts = 96

// xfer is the sharded durable workload payload. The account pair is
// arbitrary relative to the partition layout, so a large fraction of
// transactions are genuinely cross-shard and exercise fence recovery.
type xfer struct{ from, to uint32 }

func xferFor(g uint64) xfer {
	return xfer{
		from: uint32((g * 7) % durAccounts),
		to:   uint32((g*13 + 1) % durAccounts),
	}
}

// xferCodec decodes a payload into its access declaration and body —
// the partition-aware half of the durability contract.
type xferCodec struct{ accounts []stm.Var }

func (c xferCodec) Encode(payload any) ([]byte, error) {
	x, ok := payload.(xfer)
	if !ok {
		return nil, fmt.Errorf("unexpected payload %T", payload)
	}
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:4], x.from)
	binary.LittleEndian.PutUint32(b[4:8], x.to)
	return b[:], nil
}

func (c xferCodec) Decode(data []byte) (stm.Access, stm.Body, error) {
	if len(data) != 8 {
		return stm.Access{}, nil, fmt.Errorf("bad payload length %d", len(data))
	}
	from := binary.LittleEndian.Uint32(data[0:4])
	to := binary.LittleEndian.Uint32(data[4:8])
	if int(from) >= len(c.accounts) || int(to) >= len(c.accounts) {
		return stm.Access{}, nil, fmt.Errorf("transfer %d→%d out of range", from, to)
	}
	accounts := c.accounts
	body := func(tx stm.Tx, age int) {
		amt := uint64(age%5) + 1
		bf := tx.Read(&accounts[from])
		if bf >= amt && from != to {
			tx.Write(&accounts[from], bf-amt)
			tx.Write(&accounts[to], tx.Read(&accounts[to])+amt)
		}
	}
	return stm.Touches(&accounts[from], &accounts[to]), body, nil
}

// foldModel applies the records' semantics sequentially in global-age
// order over plain integers — the ground truth every recovery must
// match.
func foldModel(t *testing.T, recs []wal.Record, first uint64) []uint64 {
	t.Helper()
	balances := make([]uint64, durAccounts)
	for i := range balances {
		balances[i] = 1000
	}
	for i, rec := range recs {
		if len(rec.Payload) != 8 {
			t.Fatalf("record %d: bad payload length %d", i, len(rec.Payload))
		}
		if want := first + uint64(i); rec.Age != want {
			t.Fatalf("record %d has age %d, want %d", i, rec.Age, want)
		}
		from := binary.LittleEndian.Uint32(rec.Payload[0:4])
		to := binary.LittleEndian.Uint32(rec.Payload[4:8])
		amt := rec.Age%5 + 1
		if balances[from] >= amt && from != to {
			balances[from] -= amt
			balances[to] += amt
		}
	}
	return balances
}

// bucketsOf groups account indices by owning shard under the live
// instance's layout (must find both partitions populated).
func bucketsOf(sp *shard.ShardedPipeline, accounts []stm.Var) [][]int {
	buckets := make([][]int, sp.Shards())
	for i := range accounts {
		s := sp.ShardOf(&accounts[i])
		buckets[s] = append(buckets[s], i)
	}
	return buckets
}

func newDurAccounts() []stm.Var {
	vs := stm.NewVars(durAccounts)
	for i := range vs {
		vs[i].Store(1000)
	}
	return vs
}

func stateOf(vs []stm.Var) []uint64 {
	out := make([]uint64, len(vs))
	for i := range vs {
		out[i] = vs[i].Load()
	}
	return out
}

func sameState(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return len(a) == len(b)
}

// replayShardedState replays a recovered log through a fresh sharded
// router with the same shard count and returns the rebuilt state.
func replayShardedState(t *testing.T, alg stm.Algorithm, shards int, rec *wal.Recovery) []uint64 {
	t.Helper()
	accounts := newDurAccounts()
	dir := t.TempDir() // scratch log for the replay instance
	w, err := wal.Create(dir, rec.First(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sp, err := shard.New(shard.Config{
		Shards:   shards,
		Pipeline: stm.Config{Algorithm: alg, Workers: 2, FirstAge: rec.First()},
		WAL:      w,
		Codec:    xferCodec{accounts: accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(func(age uint64, payload []byte) error {
		_, err := sp.SubmitEncoded(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	return stateOf(accounts)
}

// TestShardedDurableDeterminismEveryOrderedEngine: for every ordered
// engine, a sharded durable stream (with heavy cross-shard traffic),
// its WAL replayed through a fresh sharded router, and the sequential
// model all agree.
func TestShardedDurableDeterminismEveryOrderedEngine(t *testing.T) {
	for _, alg := range stm.OrderedAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n, shards = 400, 2
			dir := t.TempDir()
			accounts := newDurAccounts()
			w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			sp, err := shard.New(shard.Config{
				Shards:      shards,
				Pipeline:    stm.Config{Algorithm: alg, Workers: 2},
				WAL:         w,
				Codec:       xferCodec{accounts: accounts},
				WaitDurable: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Build the payload schedule against the live layout: every
			// fourth transfer deliberately spans both partitions (the
			// hash layout shifts with Var id allocation, so pairs
			// derived from indices alone can land anywhere — including,
			// for unlucky id bases, never crossing at all).
			payloads := make([]xfer, n)
			buckets := bucketsOf(sp, accounts)
			for i := range payloads {
				if i%4 == 0 {
					payloads[i] = xfer{
						from: uint32(buckets[0][i%len(buckets[0])]),
						to:   uint32(buckets[1][i%len(buckets[1])]),
					}
				} else {
					payloads[i] = xferFor(uint64(i))
				}
			}
			const producers = 4
			var wg sync.WaitGroup
			for c := 0; c < producers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := c; i < n; i += producers {
						tk, err := sp.SubmitPayload(payloads[i])
						if err != nil {
							t.Errorf("submit: %v", err)
							return
						}
						if err := tk.Wait(); err != nil {
							t.Errorf("wait: %v", err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			if err := sp.Close(); err != nil {
				t.Fatal(err)
			}
			if got, want := sp.Durable(), uint64(n); got != want {
				t.Fatalf("durable frontier after Close = %d, want %d", got, want)
			}
			if sp.CrossShard() == 0 {
				t.Fatal("workload produced no cross-shard transactions")
			}
			live := stateOf(accounts)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := wal.Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Count() != n {
				t.Fatalf("recovered %d records, want %d", rec.Count(), n)
			}
			model := foldModel(t, rec.Records(), 0)
			if !sameState(live, model) {
				t.Fatal("live sharded state diverges from sequential model of the log")
			}
			if got := replayShardedState(t, alg, shards, rec); !sameState(got, model) {
				t.Fatalf("%v sharded replay diverges from sequential model", alg)
			}
		})
	}
}

// TestShardedCrashPrefix snapshots the router's WAL mid-stream (a
// crash at an arbitrary instant) and asserts the recovered prefix —
// cross-shard fences included — replays to the sequential state of
// exactly that prefix.
func TestShardedCrashPrefix(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.OUL, stm.OWB, stm.STMLite} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n, shards = 1200, 2
			dir := t.TempDir()
			accounts := newDurAccounts()
			w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 4, SegmentBytes: 4096})
			if err != nil {
				t.Fatal(err)
			}
			sp, err := shard.New(shard.Config{
				Shards:   shards,
				Pipeline: stm.Config{Algorithm: alg, Workers: 2},
				WAL:      w,
				Codec:    xferCodec{accounts: accounts},
			})
			if err != nil {
				t.Fatal(err)
			}
			snapDir := t.TempDir()
			for i := 0; i < n; i++ {
				tk, err := sp.SubmitPayload(xferFor(uint64(i)))
				if err != nil {
					t.Fatal(err)
				}
				if i == n/2 {
					if err := tk.Wait(); err != nil {
						t.Fatal(err)
					}
					copyLogDir(t, dir, snapDir)
				}
			}
			if err := sp.Close(); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := wal.Recover(snapDir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Count() == 0 || rec.Count() > n {
				t.Fatalf("recovered %d records from a %d-transaction run", rec.Count(), n)
			}
			model := foldModel(t, rec.Records(), 0)
			if got := replayShardedState(t, alg, shards, rec); !sameState(got, model) {
				t.Fatalf("%v sharded crash replay diverges from sequential prefix state", alg)
			}
		})
	}
}

func copyLogDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedDurableRejectsOpaqueBodies: a WAL-backed router refuses
// submissions it cannot replay.
func TestShardedDurableRejectsOpaqueBodies(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Create(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	accounts := newDurAccounts()
	sp, err := shard.New(shard.Config{
		Shards:   2,
		Pipeline: stm.Config{Algorithm: stm.OUL},
		WAL:      w,
		Codec:    xferCodec{accounts: accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	body := func(stm.Tx, int) {}
	if _, err := sp.Submit(stm.Touches(&accounts[0]), body); !errors.Is(err, stm.ErrPayloadRequired) {
		t.Fatalf("Submit err = %v, want ErrPayloadRequired", err)
	}
	if _, err := sp.SubmitBatch([]shard.Request{{Access: stm.Touches(&accounts[0]), Body: body}}); !errors.Is(err, stm.ErrPayloadRequired) {
		t.Fatalf("SubmitBatch err = %v, want ErrPayloadRequired", err)
	}
}

// TestShardedWaitDurableDefersUntilSync: under sync policy "none", a
// cross-shard transaction's ticket resolves only once an explicit
// Sync lands its global age on stable storage.
func TestShardedWaitDurableDefersUntilSync(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Create(dir, 0, wal.Options{}) // policy none
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	accounts := newDurAccounts()
	sp, err := shard.New(shard.Config{
		Shards:      2,
		Pipeline:    stm.Config{Algorithm: stm.OUL, Workers: 2},
		WAL:         w,
		Codec:       xferCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find a pair spanning both shards so the submission is genuinely
	// cross-shard.
	var cross xfer
	found := false
	for i := 1; i < durAccounts && !found; i++ {
		if sp.ShardOf(&accounts[0]) != sp.ShardOf(&accounts[i]) {
			cross = xfer{from: 0, to: uint32(i)}
			found = true
		}
	}
	if !found {
		t.Fatal("no cross-shard pair found")
	}
	tk, err := sp.SubmitPayload(cross)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sp.Stats().Commits < 2 { // both fences committed
		if time.Now().After(deadline) {
			t.Fatal("cross-shard transaction never committed")
		}
		time.Sleep(time.Millisecond)
	}
	if err, resolved := tk.Err(); resolved {
		t.Fatalf("ticket resolved (%v) before its age was durable", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if sp.Durable() == 0 {
		t.Fatal("durability frontier did not advance")
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRecoveredRouterContinues: run, close, recover, replay
// through a WAL-attached router, submit new work, recover again — the
// global log must hold the uninterrupted sequence.
func TestShardedRecoveredRouterContinues(t *testing.T) {
	const n1, n2, shards = 150, 100, 2
	dir := t.TempDir()
	accounts := newDurAccounts()
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := shard.New(shard.Config{
		Shards:   shards,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2},
		WAL:      w,
		Codec:    xferCodec{accounts: accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n1; i++ {
		tk, err := sp.SubmitPayload(xferFor(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	preCrash := stateOf(accounts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != n1 {
		t.Fatalf("recovered %d records, want %d", rec.Count(), n1)
	}
	w2, err := rec.Writer(wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	accounts2 := newDurAccounts()
	sp2, err := shard.New(shard.Config{
		Shards:      shards,
		Pipeline:    stm.Config{Algorithm: stm.OUL, Workers: 2, FirstAge: rec.First()},
		WAL:         w2,
		Codec:       xferCodec{accounts: accounts2},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Replay(func(age uint64, payload []byte) error {
		_, err := sp2.SubmitEncoded(payload)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := sp2.Drain(); err != nil {
		t.Fatal(err)
	}
	if !sameState(stateOf(accounts2), preCrash) {
		t.Fatal("replayed sharded state diverges from pre-crash state")
	}
	for i := n1; i < n1+n2; i++ {
		tk, err := sp2.SubmitPayload(xferFor(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp2.Close(); err != nil {
		t.Fatal(err)
	}
	finalState := stateOf(accounts2)
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Count() != n1+n2 {
		t.Fatalf("final log holds %d records, want %d", rec2.Count(), n1+n2)
	}
	if model := foldModel(t, rec2.Records(), 0); !sameState(model, finalState) {
		t.Fatal("final log model diverges from live state")
	}
}
