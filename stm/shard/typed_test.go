package shard_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
)

// typedPool is the typed workload state: a TVar[uint64] pool plus the
// cached per-TVar word handles (the declaration path must not
// re-allocate them per submission).
type typedPool struct {
	vars  []stm.TVar[uint64]
	words [][]*stm.Var
}

func newTypedPool(n int) *typedPool {
	p := &typedPool{vars: stm.NewTVars[uint64](n), words: make([][]*stm.Var, n)}
	for i := range p.vars {
		p.words[i] = p.vars[i].Vars()
	}
	return p
}

func (p *typedPool) init() {
	for i := range p.vars {
		p.vars[i].Store(uint64(100 + i))
	}
}

func (p *typedPool) state() []uint64 {
	out := make([]uint64, len(p.vars))
	for i := range p.vars {
		out[i] = p.vars[i].Load()
	}
	return out
}

func (p *typedPool) access(idx []int) stm.Access {
	var vs []*stm.Var
	for _, i := range idx {
		vs = append(vs, p.words[i]...)
	}
	return stm.Touches(vs...)
}

func (p *typedPool) buckets(shards int) [][]int {
	out := make([][]int, shards)
	for i := range p.vars {
		s := shard.Of(p.words[i][0], shards)
		out[s] = append(out[s], i)
	}
	return out
}

// typedFn builds the deterministic value-returning transaction for
// one command: fold the declared variables, rotate writes through
// them, return the fold.
func typedFn(p *typedPool, idx []int, g int) stm.Func[uint64] {
	return func(tx stm.Tx, _ int) uint64 {
		var sum uint64
		for _, i := range idx {
			sum += stm.ReadT(tx, &p.vars[i])
		}
		for k, i := range idx {
			stm.WriteT(tx, &p.vars[i], sum+uint64(g)+uint64(k))
		}
		return sum
	}
}

// genTypedCmds mirrors genCmds over the typed pool's index space.
func genTypedCmds(seed uint64, n, shards int, bk [][]int) [][]int {
	r := rng.New(seed)
	pick := func(s int) int { return bk[s][r.Intn(len(bk[s]))] }
	cmds := make([][]int, n)
	for i := range cmds {
		switch r.Intn(6) {
		case 0, 1:
			a := r.Intn(shards)
			b := (a + 1 + r.Intn(shards-1)) % shards
			cmds[i] = []int{pick(a), pick(b)}
		default:
			s := r.Intn(shards)
			for k := 0; k <= r.Intn(3); k++ {
				cmds[i] = append(cmds[i], pick(s))
			}
		}
	}
	return cmds
}

// TestShardedTypedDeterminism: for every ordered algorithm and S in
// {2,4}, value-returning typed transactions routed through
// shard.SubmitFunc yield per-ticket values and final typed state
// identical to the sequential execution in global-age order.
func TestShardedTypedDeterminism(t *testing.T) {
	n := 1200
	if testing.Short() {
		n = 300
	}
	for _, shards := range []int{2, 4} {
		pool := newTypedPool(poolSize)
		bk := pool.buckets(shards)
		cmds := genTypedCmds(uint64(0xABCD+shards), n, shards, bk)

		// Sequential oracle in global-age order.
		pool.init()
		wantVals := make([]uint64, n)
		seq, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := seq.Run(n, func(tx stm.Tx, age int) {
			wantVals[age] = typedFn(pool, cmds[age], age)(tx, age)
		}); err != nil {
			t.Fatal(err)
		}
		wantState := pool.state()

		for _, alg := range stm.OrderedAlgorithms() {
			alg := alg
			t.Run(alg.String(), func(t *testing.T) {
				pool.init()
				sp, err := shard.New(shard.Config{
					Shards:   shards,
					Pipeline: stm.Config{Algorithm: alg, Workers: 2},
				})
				if err != nil {
					t.Fatal(err)
				}
				tks := make([]*shard.TicketOf[uint64], n)
				for g := 0; g < n; g++ {
					tk, err := shard.SubmitFunc(sp, pool.access(cmds[g]), typedFn(pool, cmds[g], g))
					if err != nil {
						t.Fatal(err)
					}
					tks[g] = tk
				}
				for g, tk := range tks {
					got, err := tk.Value()
					if err != nil {
						t.Fatalf("S=%d %v age %d: %v", shards, alg, g, err)
					}
					if got != wantVals[g] {
						t.Fatalf("S=%d %v age %d value %d, want %d", shards, alg, g, got, wantVals[g])
					}
				}
				if err := sp.Close(); err != nil {
					t.Fatal(err)
				}
				got := pool.state()
				for i := range got {
					if got[i] != wantState[i] {
						t.Fatalf("S=%d %v var %d state %d, want %d", shards, alg, i, got[i], wantState[i])
					}
				}
			})
		}
	}
}

// TestShardedSubmitCtxCancel covers the cancellation races the
// redesign calls out: cancels during single- and cross-shard submits
// (including mid-backpressure) must either withdraw the submission
// completely or let it commit normally — never a half-routed state —
// and the surviving stream must stay deterministic. Run with -race.
func TestShardedSubmitCtxCancel(t *testing.T) {
	const shards = 2
	rounds := 400
	if testing.Short() {
		rounds = 100
	}
	pool := newTypedPool(poolSize)
	pool.init()
	bk := pool.buckets(shards)
	sp, err := shard.New(shard.Config{
		Shards:   shards,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2, Capacity: 16},
	})
	if err != nil {
		t.Fatal(err)
	}

	type rec struct {
		idx []int
		tk  *shard.TicketOf[uint64]
	}
	var mu sync.Mutex
	byAge := map[uint64]rec{}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w)*77 + 3)
			for i := 0; i < rounds; i++ {
				var idx []int
				if r.Intn(3) == 0 { // cross-shard
					a := r.Intn(shards)
					b := (a + 1) % shards
					idx = []int{bk[a][r.Intn(len(bk[a]))], bk[b][r.Intn(len(bk[b]))]}
				} else {
					s := r.Intn(shards)
					idx = []int{bk[s][r.Intn(len(bk[s]))], bk[s][r.Intn(len(bk[s]))]}
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(r.Intn(120))*time.Microsecond)
				// The submitted fn re-reads its age from the router (the
				// value fold depends on the assigned global age), so the
				// body is built only when the age is known: SubmitFuncCtx
				// passes it through tx/age.
				tk, err := shard.SubmitFuncCtx(ctx, sp, pool.access(idx), func(tx stm.Tx, age int) uint64 {
					var sum uint64
					for _, i := range idx {
						sum += stm.ReadT(tx, &pool.vars[i])
					}
					for k, i := range idx {
						stm.WriteT(tx, &pool.vars[i], sum+uint64(age)+uint64(k))
					}
					return sum
				})
				cancel()
				if err != nil {
					if !errors.Is(err, stm.ErrCanceled) {
						t.Errorf("producer %d: %v", w, err)
						return
					}
					continue
				}
				mu.Lock()
				byAge[tk.Age()] = rec{idx: idx, tk: tk}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := sp.Drain(); err != nil {
		t.Fatal(err)
	}
	// Every accepted age must be present exactly once and resolve nil:
	// a withdrawn submission may not leave a gap.
	if uint64(len(byAge)) != sp.Submitted() {
		t.Fatalf("accepted %d tickets but router sequenced %d ages", len(byAge), sp.Submitted())
	}
	vals := make(map[uint64]uint64, len(byAge))
	for g, r := range byAge {
		v, err := r.tk.Value()
		if err != nil {
			t.Fatalf("age %d: %v", g, err)
		}
		vals[g] = v
	}
	gotState := pool.state()
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Deterministic replay: the same bodies in global-age order must
	// reproduce both the per-ticket values and the final state.
	pool.init()
	seq, err := stm.NewExecutor(stm.Config{Algorithm: stm.Sequential})
	if err != nil {
		t.Fatal(err)
	}
	nAges := len(byAge)
	if _, err := seq.Run(nAges, func(tx stm.Tx, age int) {
		r, ok := byAge[uint64(age)]
		if !ok {
			t.Errorf("age %d missing from accepted set", age)
			return
		}
		var sum uint64
		for _, i := range r.idx {
			sum += stm.ReadT(tx, &pool.vars[i])
		}
		for k, i := range r.idx {
			stm.WriteT(tx, &pool.vars[i], sum+uint64(age)+uint64(k))
		}
		if sum != vals[uint64(age)] {
			t.Errorf("age %d: sharded value %d, sequential %d", age, vals[uint64(age)], sum)
		}
	}); err != nil {
		t.Fatal(err)
	}
	wantState := pool.state()
	for i := range wantState {
		if gotState[i] != wantState[i] {
			t.Fatalf("var %d: sharded %d, sequential %d", i, gotState[i], wantState[i])
		}
	}
}

// TestShardedWaitCtx: an abandoned sharded wait keeps the ticket and
// its typed value intact, on both the single-shard (delegated) and
// cross-shard (aggregated) resolution paths.
func TestShardedWaitCtx(t *testing.T) {
	const shards = 2
	pool := newTypedPool(poolSize)
	pool.init()
	bk := pool.buckets(shards)
	sp, err := shard.New(shard.Config{
		Shards:   shards,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()

	single := []int{bk[0][0]}
	cross := []int{bk[0][1], bk[1][0]}
	for name, idx := range map[string][]int{"single": single, "cross": cross} {
		tk, err := shard.SubmitFunc(sp, pool.access(idx), func(tx stm.Tx, age int) uint64 {
			var sum uint64
			for _, i := range idx {
				sum += stm.ReadT(tx, &pool.vars[i])
			}
			return sum
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tk.WaitCtx(expired); err != nil && !errors.Is(err, stm.ErrCanceled) {
			t.Fatalf("%s: WaitCtx returned %v", name, err)
		}
		if v, err := tk.Value(); err != nil || v == 0 {
			t.Fatalf("%s: Value after abandoned wait = %d, %v", name, v, err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}
