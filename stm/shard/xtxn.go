package shard

import (
	"fmt"
	"sync"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/obs"
)

// This file is the cross-shard transaction protocol: fence bodies,
// the rendezvous, and the cross-shard Tx view. The invariants it
// leans on:
//
//  1. A fence occupies one local age on every involved shard, and its
//     body first waits until that age IS the shard's commit frontier.
//     From then until the fence commits, nothing else can commit on
//     that shard, so the shard's committed state is frozen at exactly
//     the global-order prefix below this transaction.
//  2. All reads and writes go through each shard's own live
//     transaction attempt (never around the engine), so concurrent
//     higher-age speculation on that shard is handled by the shard
//     engine's ordered conflict resolution: the fence is reachable,
//     and a reachable transaction wins every conflict the paper's
//     engines can produce.
//  3. Bodies are deterministic functions of (age, memory), and the
//     memory a fence can read is frozen by (1); therefore every
//     execution round of the body computes identical reads and
//     writes, which is what makes restarting a round after a
//     participant's attempt aborts — and replaying recorded writes
//     into a replacement attempt after the round completed — exact.
//
// The router submits the fences of one transaction to every involved
// shard before accepting the next submission, and always in ascending
// shard order, so for any two cross-shard transactions their fences
// appear in the same relative order on every shard they share: the
// rendezvous graph is cycle-free and the protocol cannot deadlock.

// AccessError is the fault value raised when a transaction touches a
// variable on a partition its Access declaration did not reserve.
// Undeclared cross-partition access cannot be executed safely (the
// owning shard's engine was never brought to the rendezvous), so the
// sharded pipeline stops instead of silently breaking isolation.
type AccessError struct {
	// Age is the global age of the offending transaction.
	Age uint64
	// Shard is the partition owning the undeclared variable.
	Shard int
}

// Error implements error.
func (e *AccessError) Error() string {
	return fmt.Sprintf("shard: transaction %d touched an undeclared variable on shard %d", e.Age, e.Shard)
}

// FenceTimeoutError is the fault value raised when a cross-shard
// rendezvous waited longer than Config.FenceTimeout for its
// participants: some involved shard stalled (a wedged body, a dead
// disk) and never brought its fence to the frontier. The system stops
// at the transaction's global age — the stall is resolved with a
// single cut in the predefined order rather than parking the healthy
// shards' frontiers forever.
type FenceTimeoutError struct {
	// Age is the global age of the timed-out transaction.
	Age uint64
	// Shard is the partition whose participant gave up waiting.
	Shard int
	// Timeout is the configured bound that elapsed.
	Timeout time.Duration
}

// Error implements error.
func (e *FenceTimeoutError) Error() string {
	return fmt.Sprintf("shard: transaction %d timed out after %v waiting for its cross-shard rendezvous (observed on shard %d)", e.Age, e.Timeout, e.Shard)
}

// stopPanic carries a global stop into a shard pipeline's sandbox: it
// is not an engine abort signal, so the run-loop treats it as a
// genuine fault and halts the shard. Ticket errors are translated
// back to the global fault before users see them.
type stopPanic struct{ f *stm.Fault }

func (s stopPanic) String() string {
	return fmt.Sprintf("shard: stopped by global fault at age %d", s.f.Age)
}

// retrySignal unwinds the home's current round after a peer's attempt
// died mid-round; the round restarts once the peer re-arrives.
type retrySignal struct{}

// part is one shard's live participation in a cross-shard
// transaction: the transaction handle its parked fence contributed,
// plus the death notice the home leaves when an operation on that
// handle aborted.
type part struct {
	txn   stm.Tx
	dead  bool
	cause any
}

// xtxn coordinates one cross-shard transaction.
type xtxn struct {
	sp       *ShardedPipeline
	g        uint64 // global age
	body     stm.Body
	involved []int // ascending shard indices; involved[0] is the home
	home     int

	mu          sync.Mutex
	cond        *sync.Cond
	live        map[int]*part // arrived, usable participants
	roundActive bool          // home is executing the body right now
	done        bool          // body completed; outcome is fixed
	failed      *stm.Fault    // global stop reached this transaction
	expired     bool          // Config.FenceTimeout elapsed since the first arrival
	timer       *time.Timer   // armed at the first arrival when a timeout is set

	// wlog records, per shard, the final value written to each
	// variable. Only the home goroutine writes it (successive rounds
	// may run on different goroutines, ordered by mu at round
	// boundaries); participants read their slice only after observing
	// done under mu. A participant whose commit step aborts after done
	// replays its slice into a fresh attempt — the frontier cannot
	// move until that fence commits, so the replay is exact.
	wlog map[int]map[*stm.Var]uint64
}

func newXtxn(sp *ShardedPipeline, g uint64, involved []int, body stm.Body) *xtxn {
	x := &xtxn{
		sp:       sp,
		g:        g,
		body:     body,
		involved: involved,
		home:     involved[0],
		live:     make(map[int]*part, len(involved)),
		wlog:     make(map[int]map[*stm.Var]uint64, len(involved)),
	}
	x.cond = sync.NewCond(&x.mu)
	return x
}

// fail releases every parked participant with a global stop. Once the
// body has completed the outcome is fixed and the stop no longer
// takes the transaction back (its fences race the halt exactly like
// any commit racing a pipeline stop).
func (x *xtxn) fail(f *stm.Fault) {
	x.mu.Lock()
	if x.failed == nil && !x.done {
		x.failed = f
		x.cond.Broadcast()
	}
	x.mu.Unlock()
}

// armTimeout starts the rendezvous clock at the first participant's
// arrival. One timer covers the whole transaction: expiry only ever
// matters to fences still parked, and a formed rendezvous (round
// running, or done) ignores it. Called with x.mu held; idempotent.
func (x *xtxn) armTimeout() {
	if x.sp.fenceTimeout <= 0 || x.timer != nil || x.done || x.failed != nil {
		return
	}
	x.timer = time.AfterFunc(x.sp.fenceTimeout, func() {
		x.mu.Lock()
		x.expired = true
		x.cond.Broadcast()
		x.mu.Unlock()
	})
}

// disarm stops the rendezvous clock; a late firing on a finished
// transaction is harmless (expired is only consulted by parked
// fences), this just releases the timer promptly.
func (x *xtxn) disarm() {
	x.mu.Lock()
	if x.timer != nil {
		x.timer.Stop()
	}
	x.mu.Unlock()
}

// timeoutFault raises the fence-timeout fault for the participant on
// shard s: stop the world at this transaction's global age. Called
// WITHOUT x.mu held (sp.fail re-enters x.fail). The panic carries
// whichever global fault won the race to stop the system.
func (x *xtxn) timeoutFault(s int) {
	x.sp.fail(&stm.Fault{Age: x.g, Value: &FenceTimeoutError{
		Age:     x.g,
		Shard:   s,
		Timeout: x.sp.fenceTimeout,
	}})
	panic(stopPanic{x.sp.fault.Load()})
}

func (x *xtxn) allLive() bool {
	for _, s := range x.involved {
		if x.live[s] == nil {
			return false
		}
	}
	return true
}

// killRound aborts every surviving participant of a round that must
// restart, and clears the round's write log. A restart may only run
// over virgin attempts: a surviving handle still buffers (write-back
// engines) or has applied (write-through engines) the aborted round's
// writes, and re-running the body over that read-your-own-writes state
// would compound them — the restarted round would read a balance the
// dead round already debited and debit it again. Each killed
// participant re-raises the abort under its own sandbox, abandons the
// attempt, and re-arrives with a fresh descriptor; determinism over
// the frozen prefix then makes the fresh round exact. Called with x.mu
// held, with no round active.
func (x *xtxn) killRound() {
	for s, h := range x.live {
		h.dead, h.cause = true, meta.AbortSignal(meta.CauseValidation)
		delete(x.live, s)
	}
	x.wlog = make(map[int]map[*stm.Var]uint64, len(x.involved))
	x.cond.Broadcast()
}

// fenceBody builds the body submitted to shard s for this
// transaction. The local age the pipeline assigns arrives as the
// body's age parameter.
func (sp *ShardedPipeline) fenceBody(x *xtxn, s int) stm.Body {
	pipe := sp.pipes[s]
	var fh *obs.Histogram
	var tr *obs.TraceRing
	if sp.so != nil {
		fh = sp.so.fenceWait[s]
		tr = sp.so.trace
	}
	return func(tx stm.Tx, lage int) {
		var t0 int64
		if fh != nil {
			t0 = time.Now().UnixNano()
		}
		if !pipe.WaitFrontier(uint64(lage)) {
			// The shard stopped while we held its queue. Every stop is
			// supposed to reach us through the coordinator first; the
			// fail call is a backstop for stops that originated below
			// the sharded layer, and a no-op otherwise.
			sp.fail(&stm.Fault{Age: x.g, Value: fmt.Sprintf("shard %d stopped under a fence", s)})
			panic(stopPanic{sp.fault.Load()})
		}
		if st, ok := tx.(meta.Stabilizer); ok {
			// Engines that advance the frontier before their
			// write-backs land (STMLite) must settle memory before the
			// rendezvous reads the frozen prefix.
			st.WaitStable()
		}
		if s == x.home {
			x.runHome(tx)
		} else {
			x.runPeer(tx, s)
		}
		// Aborted attempts unwind past this point; only a fence that
		// completed its hold is recorded.
		if fh != nil {
			fh.Observe(time.Now().UnixNano() - t0)
			if tr.Sampled(x.g) {
				tr.Record(x.g, obs.StageFence)
			}
		}
	}
}

// runPeer contributes this shard's transaction handle to the
// rendezvous and parks while the home drives the body, holding the
// shard's commit frontier exactly at this transaction's slot.
func (x *xtxn) runPeer(tx stm.Tx, s int) {
	x.mu.Lock()
	if x.failed != nil {
		f := x.failed
		x.mu.Unlock()
		panic(stopPanic{f})
	}
	if x.done {
		// A previous attempt of this fence was part of the completed
		// round but aborted during its commit step; redo this shard's
		// writes on the fresh attempt and commit it.
		wl := x.wlog[s]
		x.mu.Unlock()
		for v, val := range wl {
			tx.Write(v, val)
		}
		return
	}
	h := &part{txn: tx}
	x.live[s] = h
	x.armTimeout()
	x.cond.Broadcast()
	// A timeout only releases a peer whose rendezvous never formed: once
	// a round is running the home owns our handle and completion (done,
	// dead, or a failure) is coming.
	for !x.done && x.failed == nil && !h.dead && !(x.expired && !x.roundActive) {
		x.cond.Wait()
	}
	switch {
	case h.dead:
		cause := h.cause
		x.mu.Unlock()
		// An operation the home ran on our handle aborted our attempt.
		// Re-raise the cause on our own goroutine: the shard sandbox
		// abandons the attempt and re-executes this fence, which
		// re-arrives with a fresh descriptor.
		panic(cause)
	case x.done:
		delete(x.live, s)
		x.mu.Unlock()
		return // writes already landed through our handle; commit
	case x.failed != nil:
		// Wait out any round still running so the home cannot touch
		// our descriptor after the sandbox abandons it.
		for x.roundActive {
			x.cond.Wait()
		}
		f := x.failed
		delete(x.live, s)
		x.mu.Unlock()
		panic(stopPanic{f})
	default: // expired with no round active: the rendezvous never formed
		delete(x.live, s)
		x.mu.Unlock()
		x.timeoutFault(s)
	}
}

// runHome waits for every involved shard to arrive, then executes the
// user body against the cross-shard view. A round that dies — a peer
// or the home's own attempt aborted underneath it — is killed whole
// (killRound) and every fence re-executes on a fresh descriptor;
// determinism makes the restarted round exact: it reads the same
// frozen prefix and therefore issues the same writes.
func (x *xtxn) runHome(tx stm.Tx) {
	x.mu.Lock()
	if x.done {
		// Our own previous attempt completed the body but aborted
		// while committing; replay the home slice of the writes.
		wl := x.wlog[x.home]
		x.mu.Unlock()
		for v, val := range wl {
			tx.Write(v, val)
		}
		return
	}
	if x.failed != nil {
		f := x.failed
		x.mu.Unlock()
		panic(stopPanic{f})
	}
	x.live[x.home] = &part{txn: tx}
	x.armTimeout()
	for x.failed == nil && !x.allLive() && !x.expired {
		x.cond.Wait()
	}
	if x.failed != nil {
		f := x.failed
		delete(x.live, x.home)
		x.mu.Unlock()
		panic(stopPanic{f})
	}
	if !x.allLive() {
		// Timed out with the rendezvous still short a participant: some
		// involved shard stalled below its fence. Resolve the round with
		// a fence-timeout fault instead of holding every involved
		// frontier forever.
		delete(x.live, x.home)
		x.mu.Unlock()
		x.timeoutFault(x.home)
	}
	snap := make(map[int]*part, len(x.involved))
	for s, h := range x.live {
		snap[s] = h
	}
	x.roundActive = true
	x.mu.Unlock()

	retry, rec := x.runRound(&crossTx{x: x, home: tx, snap: snap})

	x.mu.Lock()
	x.roundActive = false
	x.cond.Broadcast()
	if rec != nil {
		// Either our own shard's engine aborted this attempt (the
		// sandbox must see it and retry the fence) or the body
		// itself faulted (stop the world, then let the sandbox
		// see a genuine fault). A speculative abort restarts the
		// round, so the surviving peers must restart fresh too —
		// their handles carry this round's writes (see killRound).
		genuine := !speculative(rec, tx) && !x.sp.retryUnknown
		if !genuine {
			x.killRound()
		}
		delete(x.live, x.home)
		x.mu.Unlock()
		if genuine {
			x.sp.fail(&stm.Fault{Age: x.g, Value: rec})
		}
		panic(rec)
	}
	if retry {
		// A peer died mid-round. Our own attempt — and every
		// surviving peer's — already absorbed this round's writes,
		// so nobody may carry them into the restart: kill the
		// round and abandon our attempt; the re-executed fences
		// re-rendezvous on virgin descriptors.
		x.killRound()
		delete(x.live, x.home)
		x.mu.Unlock()
		meta.PanicAbort(meta.CauseValidation)
	}
	x.done = true
	x.cond.Broadcast()
	x.mu.Unlock()
}

// runRound executes one attempt of the body, separating the home's
// round-restart signal from panics that must unwind further.
func (x *xtxn) runRound(ct *crossTx) (retry bool, rec any) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(retrySignal); ok {
				retry = true
				return
			}
			rec = r
		}
	}()
	x.body(ct, int(x.g))
	return false, nil
}

// logWrite records the final value of a write for post-completion
// replay. Home goroutine only; see wlog.
func (x *xtxn) logWrite(s int, v *stm.Var, val uint64) {
	wl := x.wlog[s]
	if wl == nil {
		wl = make(map[*stm.Var]uint64)
		x.wlog[s] = wl
	}
	wl[v] = val
}

// crossTx is the cross-shard Tx view the body executes against: each
// Read/Write routes to the live transaction handle of the shard
// owning the variable, so every access runs under that shard's own
// concurrency control.
type crossTx struct {
	x    *xtxn
	home stm.Tx
	snap map[int]*part // this round's participants
}

// Age implements stm.Tx with the global age.
func (c *crossTx) Age() uint64 { return c.x.g }

func (c *crossTx) route(v *stm.Var) (int, *part) {
	s := meta.ShardOf(v.ID(), c.x.sp.shards)
	h := c.snap[s]
	if h == nil {
		panic(&AccessError{Age: c.x.g, Shard: s})
	}
	return s, h
}

// Read implements stm.Tx.
func (c *crossTx) Read(v *stm.Var) uint64 {
	s, h := c.route(v)
	if s == c.x.home {
		return c.home.Read(v) // our own engine: aborts unwind to our sandbox
	}
	var out uint64
	c.peerOp(s, h, func(t stm.Tx) { out = t.Read(v) })
	return out
}

// Write implements stm.Tx.
func (c *crossTx) Write(v *stm.Var, val uint64) {
	s, h := c.route(v)
	c.x.logWrite(s, v, val)
	if s == c.x.home {
		c.home.Write(v, val)
		return
	}
	c.peerOp(s, h, func(t stm.Tx) { t.Write(v, val) })
}

// peerOp runs one operation on a peer shard's handle. The operation
// executes on the home's goroutine, so an abort the peer's engine
// raises lands here instead of in the peer's sandbox: hand the cause
// back to the peer (it re-raises under its own sandbox, abandons the
// attempt and re-executes its fence) and restart the round.
func (c *crossTx) peerOp(s int, h *part, op func(stm.Tx)) {
	rec := runProtected(h.txn, op)
	if rec == nil {
		return
	}
	x := c.x
	x.mu.Lock()
	h.dead, h.cause = true, rec
	delete(x.live, s)
	x.cond.Broadcast()
	x.mu.Unlock()
	panic(retrySignal{})
}

func runProtected(tx stm.Tx, op func(stm.Tx)) (rec any) {
	defer func() { rec = recover() }()
	op(tx)
	return nil
}

// checkedTx wraps a shard pipeline's handle for a single-shard
// submission: it reports the global age and enforces the partition
// boundary — touching a variable owned by another shard would bypass
// that shard's engine entirely, so it faults instead.
type checkedTx struct {
	tx     stm.Tx
	shards int
	shard  int
	g      uint64
}

func (c *checkedTx) check(v *stm.Var) {
	if s := meta.ShardOf(v.ID(), c.shards); s != c.shard {
		panic(&AccessError{Age: c.g, Shard: s})
	}
}

// Read implements stm.Tx.
func (c *checkedTx) Read(v *stm.Var) uint64 { c.check(v); return c.tx.Read(v) }

// Write implements stm.Tx.
func (c *checkedTx) Write(v *stm.Var, x uint64) { c.check(v); c.tx.Write(v, x) }

// Age implements stm.Tx with the global age.
func (c *checkedTx) Age() uint64 { return c.g }

// speculative reports whether a recovered panic is attributable to
// speculation on tx's shard, mirroring the run-loop sandbox's tests:
// an engine abort signal, a doomed attempt, or an invalid read set.
func speculative(rec any, tx stm.Tx) bool {
	if _, ok := meta.AbortCause(rec); ok {
		return true
	}
	if mt, ok := tx.(meta.Txn); ok && mt.Doomed() {
		return true
	}
	if rv, ok := tx.(meta.Revalidator); ok && !rv.ReadSetValid() {
		return true
	}
	return false
}
