package shard_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
	"github.com/orderedstm/ostm/stm/wal"
)

// TestShardSubmitPayloadBatchDurable: the batched durable submit path
// (payload and encoded forms, heavy cross-shard traffic, WaitDurable)
// produces the same state as the sequential fold of its WAL, and a
// fresh router replaying that WAL rebuilds it — i.e. the batch path
// writes exactly the same log the one-at-a-time path would.
func TestShardSubmitPayloadBatchDurable(t *testing.T) {
	const n, shards, batch = 384, 2, 16
	dir := t.TempDir()
	accounts := newDurAccounts()
	w, err := wal.Create(dir, 0, wal.Options{SyncEveryN: 8, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := shard.New(shard.Config{
		Shards:      shards,
		Pipeline:    stm.Config{Algorithm: stm.OUL, Workers: 2},
		WAL:         w,
		Codec:       xferCodec{accounts: accounts},
		WaitDurable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Schedule against the live layout: every fourth transfer spans
	// both partitions, so each batch carries single- and cross-shard
	// requests interleaved.
	buckets := bucketsOf(sp, accounts)
	payloads := make([]xfer, n)
	for i := range payloads {
		if i%4 == 0 {
			payloads[i] = xfer{
				from: uint32(buckets[0][i%len(buckets[0])]),
				to:   uint32(buckets[1][i%len(buckets[1])]),
			}
		} else {
			payloads[i] = xferFor(uint64(i))
		}
	}

	const producers = 3
	var wg sync.WaitGroup
	per := n / producers
	for c := 0; c < producers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := payloads[c*per : (c+1)*per]
			for off := 0; off < len(mine); off += batch {
				end := off + batch
				if end > len(mine) {
					end = len(mine)
				}
				var tks []*shard.Ticket
				var err error
				if c%2 == 0 {
					chunk := make([]any, end-off)
					for i := range chunk {
						chunk[i] = mine[off+i]
					}
					tks, err = sp.SubmitPayloadBatch(chunk)
				} else {
					// The encoded form: pre-encode through the same codec.
					datas := make([][]byte, end-off)
					for i := range datas {
						datas[i], err = xferCodec{}.Encode(mine[off+i])
						if err != nil {
							t.Errorf("encode: %v", err)
							return
						}
					}
					tks, err = sp.SubmitEncodedBatch(datas)
				}
				if err != nil {
					t.Errorf("batch submit: %v", err)
					return
				}
				// Batch ages are consecutive — one sequencer hold.
				for i := 1; i < len(tks); i++ {
					if tks[i].Age() != tks[i-1].Age()+1 {
						t.Errorf("batch ages not consecutive: %d then %d", tks[i-1].Age(), tks[i].Age())
						return
					}
				}
				for _, tk := range tks {
					if err := tk.Wait(); err != nil {
						t.Errorf("wait: %v", err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sp.Durable(); got != uint64(producers*per) {
		t.Fatalf("durable frontier after Close = %d, want %d", got, producers*per)
	}
	if sp.CrossShard() == 0 {
		t.Fatal("workload produced no cross-shard transactions")
	}
	live := stateOf(accounts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := wal.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Count() != producers*per {
		t.Fatalf("recovered %d records, want %d", rec.Count(), producers*per)
	}
	model := foldModel(t, rec.Records(), 0)
	if !sameState(live, model) {
		t.Fatal("live state diverges from sequential model of the batch-written log")
	}
	if got := replayShardedState(t, stm.OUL, shards, rec); !sameState(got, model) {
		t.Fatal("replayed state diverges from the model")
	}
}

// TestShardSubmitBatchCtxCanceled: a pre-canceled context refuses the
// whole batch before any age is assigned, and the router stays fully
// usable afterwards.
func TestShardSubmitBatchCtxCanceled(t *testing.T) {
	dir := t.TempDir()
	accounts := newDurAccounts()
	w, err := wal.Create(dir, 0, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sp, err := shard.New(shard.Config{
		Shards:   2,
		Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 2},
		WAL:      w,
		Codec:    xferCodec{accounts: accounts},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The sharded batch result is index-preserving: refused positions
	// are nil in a full-length slice. Pre-canceled ⇒ all nil.
	out, err := sp.SubmitPayloadBatchCtx(ctx, []any{xferFor(0), xferFor(1)})
	if !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("pre-canceled payload batch: %v", err)
	}
	for i, tk := range out {
		if tk != nil {
			t.Fatalf("pre-canceled batch accepted request %d", i)
		}
	}
	if _, err := sp.SubmitPayloadCtx(ctx, xferFor(0)); !errors.Is(err, stm.ErrCanceled) {
		t.Fatalf("pre-canceled SubmitPayloadCtx: %v", err)
	}
	if got := sp.Submitted(); got != 0 {
		t.Fatalf("refused submissions consumed ages: %d", got)
	}

	tks, err := sp.SubmitPayloadBatchCtx(context.Background(), []any{xferFor(0), xferFor(1), xferFor(2)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tks {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sp.Submitted(); got != 3 {
		t.Fatalf("Submitted = %d, want 3", got)
	}
}
