package shard

import (
	"sync"

	"github.com/orderedstm/ostm/stm"
)

// Codec is the sharded sibling of stm.Codec: because the router needs
// the access declaration to route a replayed transaction to the same
// shards it originally ran on, Decode reconstructs both the
// declaration and the body from the wire form. Routing is a pure
// function of (declaration, shard count), so replaying the same
// payload sequence through a router with the same Shards rebuilds the
// exact per-shard local age sequences — which is what makes one
// global-age log at the router sufficient to recover cross-shard
// fences consistently.
type Codec interface {
	// Encode serializes payload into its durable wire form.
	Encode(payload any) ([]byte, error)
	// Decode reconstructs the access declaration and body from the
	// wire form. It must be deterministic.
	Decode(data []byte) (stm.Access, stm.Body, error)
}

// durRouter is the router's durability state: one global-age
// write-ahead log fed by per-shard commit events.
//
// Every local submission (single-shard body or cross-shard fence) is
// mapped to its global age up front, under the router lock, before
// the per-shard pipeline can possibly commit it. Each shard pipeline
// reports local commits through its commit-frontier hook
// (stm.Config.OnCommit); a global age completes when all its local
// submissions committed — one for a single-shard transaction, one
// fence per involved shard for a cross-shard one. Shards drain
// independently, so completions arrive out of global order; the log
// still receives a strictly contiguous global-age sequence, because
// advance only appends at the frontier.
type durRouter struct {
	sp   *ShardedPipeline
	log  stm.DurableLog
	wait bool

	mu      sync.Mutex
	cond    *sync.Cond // broadcast when next advances, the log fails, or the system faults
	next    uint64     // next global age to append (contiguous frontier)
	entries map[uint64]*durEntry
	local   []map[uint64]uint64 // per shard: local age → global age
	waiting map[uint64]*Ticket  // appended, not yet durable (WaitDurable)
	err     error               // first log failure; the durable prefix is frozen

	// Automatic checkpoint trigger; zero unless Config.CheckpointEvery
	// is set. advance counts appended ages and kicks the checkpointer
	// once enough have landed since the last checkpoint.
	ckptEvery uint64
	sinceCkpt uint64        // guarded by mu
	ckptKick  chan struct{} // capacity 1
}

// durEntry tracks one global age from submission to its log append.
type durEntry struct {
	g         uint64
	payload   []byte
	remaining int     // local commits still outstanding
	done      bool    // committed on every involved shard
	t         *Ticket // router-resolved ticket (WaitDurable), nil otherwise
}

func newDurRouter(sp *ShardedPipeline, log stm.DurableLog, wait bool, first uint64, shards int) *durRouter {
	dr := &durRouter{
		sp:      sp,
		log:     log,
		wait:    wait,
		next:    first,
		entries: make(map[uint64]*durEntry),
		local:   make([]map[uint64]uint64, shards),
		waiting: make(map[uint64]*Ticket),
	}
	for s := range dr.local {
		dr.local[s] = make(map[uint64]uint64)
	}
	dr.cond = sync.NewCond(&dr.mu)
	return dr
}

// add registers a global age before any of its local submissions can
// commit. Called with sp.mu held. The returned ticket is non-nil in
// WaitDurable mode (the router owns its resolution).
func (dr *durRouter) add(g uint64, payload []byte, involved int) *Ticket {
	e := &durEntry{g: g, payload: payload, remaining: involved}
	var t *Ticket
	if dr.wait {
		t = &Ticket{g: g, sp: dr.sp, done: make(chan struct{})}
		e.t = t
	}
	dr.mu.Lock()
	dr.entries[g] = e
	dr.mu.Unlock()
	return t
}

// mapLocal records that shard s's local age la carries global age g.
// Called with sp.mu held, before the local submission, so a commit can
// never observe an unmapped age.
func (dr *durRouter) mapLocal(s int, la, g uint64) {
	dr.mu.Lock()
	dr.local[s][la] = g
	dr.mu.Unlock()
}

// unmapLocal backs out a mapping whose submission was refused (the
// local age was never consumed and will be reassigned).
func (dr *durRouter) unmapLocal(s int, la uint64) {
	dr.mu.Lock()
	delete(dr.local[s], la)
	dr.mu.Unlock()
}

// drop abandons an entry whose submission failed entirely; its ticket
// (if any) is resolved by the caller's error path.
func (dr *durRouter) drop(g uint64) {
	dr.mu.Lock()
	delete(dr.entries, g)
	dr.mu.Unlock()
}

// localCommit is the per-shard commit hook: shard s committed its
// local age la. Runs on the shard's commit path (its stream lock is
// held) — it only updates counters and, at the global frontier,
// buffers log appends.
func (dr *durRouter) localCommit(s int, la uint64) {
	dr.mu.Lock()
	g, ok := dr.local[s][la]
	if !ok {
		dr.mu.Unlock()
		return // not tracked (registration backed out on a refused submit)
	}
	delete(dr.local[s], la)
	if e := dr.entries[g]; e != nil {
		if e.remaining--; e.remaining == 0 {
			e.done = true
			dr.advance()
		}
	}
	dr.mu.Unlock()
}

// advance extends the contiguous global frontier: appends every
// completed age at the front of the entries map to the log, resolving
// or parking WaitDurable tickets. Called with dr.mu held.
func (dr *durRouter) advance() {
	start := dr.next
	defer func() {
		if dr.next == start {
			return
		}
		dr.cond.Broadcast()
		if dr.ckptEvery > 0 {
			if dr.sinceCkpt += dr.next - start; dr.sinceCkpt >= dr.ckptEvery {
				dr.sinceCkpt = 0
				select {
				case dr.ckptKick <- struct{}{}:
				default: // a kick is already pending
				}
			}
		}
	}()
	for {
		e := dr.entries[dr.next]
		if e == nil || !e.done {
			return
		}
		if dr.err == nil {
			if err := dr.log.Append(e.g, e.payload); err != nil {
				dr.err = err
			}
		}
		if e.t != nil {
			switch {
			case dr.err != nil:
				resolveTicket(e.t, &stm.DurabilityError{Err: dr.err})
			case e.g < dr.log.Durable():
				resolveTicket(e.t, nil)
			default:
				dr.waiting[e.g] = e.t // resolved by durableTo at a sync point
			}
			e.t = nil
		}
		delete(dr.entries, dr.next)
		dr.next++
	}
}

// durableTo is the log's durability observer: every global age below
// next is on stable storage.
func (dr *durRouter) durableTo(next uint64, err error) {
	dr.mu.Lock()
	if err != nil && dr.err == nil {
		dr.err = err
		dr.cond.Broadcast() // release any frontier wait; the log is dead
	}
	for g, t := range dr.waiting {
		switch {
		case dr.err != nil:
			delete(dr.waiting, g)
			resolveTicket(t, &stm.DurabilityError{Err: dr.err})
		case g < next:
			delete(dr.waiting, g)
			resolveTicket(t, nil)
		}
	}
	dr.mu.Unlock()
}

// resolveErr resolves the router-owned ticket for g with err (a
// cross-shard aggregator surfacing a fence failure). No-op if the
// ticket already resolved elsewhere.
func (dr *durRouter) resolveErr(g uint64, err error) {
	dr.mu.Lock()
	if e := dr.entries[g]; e != nil && e.t != nil {
		resolveTicket(e.t, err)
		e.t = nil
	} else if t, ok := dr.waiting[g]; ok {
		delete(dr.waiting, g)
		resolveTicket(t, err)
	}
	dr.mu.Unlock()
}

// sweepFail resolves every router-owned ticket that can no longer
// commit: the system stopped at a fault, so entries still tracked
// (not yet appended at the frontier, or never completed) resolve in
// the global fault vocabulary. Tickets already appended and merely
// awaiting durability stay parked — their transactions committed
// below the fault and become durable at the closing sync.
func (dr *durRouter) sweepFail(f *stm.Fault) {
	dr.mu.Lock()
	for _, e := range dr.entries {
		if e.t == nil {
			continue
		}
		if f != nil && e.g == f.Age {
			resolveTicket(e.t, f)
		} else {
			resolveTicket(e.t, &stm.Stopped{Fault: f})
		}
		e.t = nil
	}
	dr.cond.Broadcast() // the fault is visible; release any frontier wait
	dr.mu.Unlock()
}

// frontier returns the contiguous global commit frontier: every
// global age below it committed on all its shards.
func (dr *durRouter) frontier() uint64 {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return dr.next
}

// waitFrontier blocks until the contiguous global frontier reaches g
// (every age below g completed on all its shards and was appended to
// the log), the log fails, or the system faults. It returns nil only
// in the first case.
func (dr *durRouter) waitFrontier(g uint64) error {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	for dr.next < g && dr.err == nil && dr.sp.fault.Load() == nil {
		dr.cond.Wait()
	}
	if dr.err != nil {
		return &stm.DurabilityError{Err: dr.err}
	}
	if f := dr.sp.fault.Load(); f != nil && dr.next < g {
		return &stm.Stopped{Fault: f}
	}
	return nil
}

// settle is the teardown backstop after the closing sync: nothing may
// stay unresolved once Close returns.
func (dr *durRouter) settle(f *stm.Fault) {
	dr.mu.Lock()
	fail := func(t *Ticket, g uint64) {
		switch {
		case dr.err != nil:
			resolveTicket(t, &stm.DurabilityError{Err: dr.err})
		case f != nil && g == f.Age:
			resolveTicket(t, f)
		case f != nil:
			resolveTicket(t, &stm.Stopped{Fault: f})
		default:
			resolveTicket(t, stm.ErrClosed)
		}
	}
	for g, t := range dr.waiting {
		delete(dr.waiting, g)
		fail(t, g)
	}
	for _, e := range dr.entries {
		if e.t != nil {
			fail(e.t, e.g)
			e.t = nil
		}
	}
	dr.mu.Unlock()
}

// lastErr returns the latched log failure, if any.
func (dr *durRouter) lastErr() error {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return dr.err
}

// resolveTicket completes a router-owned ticket. All callers hold
// dr.mu and clear their reference, so a ticket resolves at most once.
func resolveTicket(t *Ticket, err error) {
	t.err = err
	close(t.done)
}
