package shard

import (
	"errors"
	"fmt"
	"time"

	"github.com/orderedstm/ostm/stm"
)

// Sharded checkpoints. A checkpoint of the sharded system must freeze
// one instant of the *global* age sequence: a frontier G such that
// every age below G has committed on all its shards and no age at or
// above G has been accepted anywhere. Checkpoint gets that instant by
// holding the router lock (the single sequencer — no new global age
// can be assigned) while waiting for the contiguous global frontier to
// reach the freeze point. Because every engine publishes a
// transaction's write-back before its commit is reported to the
// router's frontier hook, frontier == G implies raw Var reads observe
// exactly the sequential state after ages [first, G) — no engine-level
// stabilization is needed (and none is possible for the final
// checkpoint, which runs after the shard pipelines have shut down).
//
// The snapshot embeds the per-shard local-age watermarks next to the
// application state: replaying the log suffix above a checkpoint
// requires each shard's local sequence to resume at the value it had
// at the freeze, and routing alone cannot recover those (the prefix
// that produced them was truncated away). DecodeCheckpoint splits the
// two back apart for recovery.

// encodeCheckpoint prefixes the application snapshot with the frozen
// local-age watermarks: u32 shard count, then one u64 watermark per
// shard, all little-endian, then the application bytes.
func encodeCheckpoint(localNext []uint64, app []byte) []byte {
	buf := make([]byte, 4+8*len(localNext)+len(app))
	s := uint32(len(localNext))
	for b := 0; b < 4; b++ {
		buf[b] = byte(s >> (8 * b))
	}
	for i, w := range localNext {
		for b := 0; b < 8; b++ {
			buf[4+8*i+b] = byte(w >> (8 * b))
		}
	}
	copy(buf[4+8*len(localNext):], app)
	return buf
}

// DecodeCheckpoint splits a sharded checkpoint state (as stored by the
// WAL and returned from wal.Recovery.CheckpointState) into the
// per-shard local-age watermarks and the application snapshot. Feed
// the watermarks to Config.LocalFirstAges (with Pipeline.FirstAge set
// to the recovery's First()) and the application bytes to the
// Snapshotter's Restore before replaying the log suffix.
func DecodeCheckpoint(state []byte) (localNext []uint64, app []byte, err error) {
	if len(state) < 4 {
		return nil, nil, errors.New("shard: checkpoint state too short for shard count")
	}
	var s uint32
	for b := 0; b < 4; b++ {
		s |= uint32(state[b]) << (8 * b)
	}
	if s == 0 || len(state) < 4+8*int(s) {
		return nil, nil, fmt.Errorf("shard: checkpoint state truncated (%d shards, %d bytes)", s, len(state))
	}
	localNext = make([]uint64, s)
	for i := range localNext {
		for b := 0; b < 8; b++ {
			localNext[i] |= uint64(state[4+8*i+b]) << (8 * b)
		}
	}
	return localNext, state[4+8*int(s):], nil
}

// Checkpoint freezes the sharded system at the current global frontier
// and commits a durable checkpoint through the WAL's CheckpointSink:
// submissions stall while the already-accepted suffix drains on every
// shard, the Var space plus the per-shard watermarks are serialized,
// and the sink persists the snapshot and truncates log history below
// it. Returns the checkpoint's global age. If nothing was accepted
// since the last checkpoint it is a no-op returning that age. The
// write of the checkpoint files happens after submissions resume —
// only the quiesce itself stalls the stream.
func (sp *ShardedPipeline) Checkpoint() (uint64, error) {
	if sp.ckptSink == nil {
		return 0, errors.New("shard: Checkpoint requires a WAL implementing stm.CheckpointSink and Config.Snapshotter")
	}
	sp.ckptMu.Lock()
	defer sp.ckptMu.Unlock()
	sp.mu.Lock()
	if f := sp.fault.Load(); f != nil {
		sp.mu.Unlock()
		return 0, &stm.Stopped{Fault: f}
	}
	g := sp.nextG
	if g <= sp.lastCkpt {
		last := sp.lastCkpt
		sp.mu.Unlock()
		return last, nil
	}
	var ckptT0 time.Time
	if sp.so != nil {
		ckptT0 = time.Now()
	}
	locals := make([]uint64, sp.shards)
	copy(locals, sp.localNext)
	// Wait for the global frontier with the router lock held: the
	// router is the sole age assigner, so no age >= g can appear, and
	// commit progress needs only the shard pipelines and dr.mu.
	if err := sp.dr.waitFrontier(g); err != nil {
		sp.mu.Unlock()
		return 0, err
	}
	state, err := sp.snap.Snapshot()
	sp.mu.Unlock()
	if err != nil {
		err = fmt.Errorf("shard: checkpoint snapshot: %w", err)
		sp.setCkptErr(err)
		return 0, err
	}
	if err := sp.ckptSink.Checkpoint(g, encodeCheckpoint(locals, state)); err != nil {
		werr := &stm.DurabilityError{Err: err}
		sp.setCkptErr(werr)
		return 0, werr
	}
	sp.mu.Lock()
	if g > sp.lastCkpt {
		sp.lastCkpt = g
	}
	sp.ckptN++
	sp.mu.Unlock()
	if sp.so != nil {
		sp.so.ckptDur.Observe(time.Since(ckptT0).Nanoseconds())
	}
	return g, nil
}

// setCkptErr latches the first checkpoint failure; Close surfaces it.
func (sp *ShardedPipeline) setCkptErr(err error) {
	sp.mu.Lock()
	if sp.ckptErr == nil {
		sp.ckptErr = err
	}
	sp.mu.Unlock()
}

// ckptLoop services automatic checkpoint kicks from the durability
// router and takes one final checkpoint at close (after every shard
// drained), so a cleanly closed system restarts without replay.
func (sp *ShardedPipeline) ckptLoop() {
	defer close(sp.ckdone)
	for range sp.dr.ckptKick {
		sp.mu.Lock()
		dead := sp.ckptErr != nil
		sp.mu.Unlock()
		if dead {
			continue // keep draining kicks; the failure is latched
		}
		sp.Checkpoint() // errors latch via setCkptErr
	}
	sp.mu.Lock()
	dead := sp.ckptErr != nil
	sp.mu.Unlock()
	if !dead && sp.fault.Load() == nil {
		sp.Checkpoint()
	}
}

// Checkpoints returns how many checkpoints have committed.
func (sp *ShardedPipeline) Checkpoints() uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.ckptN
}

// CheckpointAge returns the global age of the newest committed
// checkpoint (every age below it is captured by the snapshot), or
// FirstAge if none has committed yet.
func (sp *ShardedPipeline) CheckpointAge() uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.lastCkpt
}
