package shard_test

import (
	"errors"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
)

// TestFenceTimeoutResolvesStalledRendezvous: a single-shard
// transaction wedges shard 1 below a cross-shard fence, so the
// rendezvous can never form. With FenceTimeout set, the waiting
// participant must raise a *FenceTimeoutError fault (stopping the
// world at that global age) instead of parking both shards forever.
func TestFenceTimeoutResolvesStalledRendezvous(t *testing.T) {
	for _, alg := range stm.OrderedAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			pool := stm.NewVars(poolSize)
			initPool(pool)
			bk := buckets(pool, 2)
			v0, v1 := &pool[bk[0][0]], &pool[bk[1][0]]

			sp, err := shard.New(shard.Config{
				Shards: 2,
				Pipeline: stm.Config{
					Algorithm: alg,
					Workers:   2,
				},
				FenceTimeout: 50 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Wedge shard 1: a body that blocks until released, holding
			// that shard's commit frontier below everything after it.
			release := make(chan struct{})
			blocked, err := sp.Submit(stm.Touches(v1), func(tx stm.Tx, age int) {
				tx.Read(v1)
				<-release
			})
			if err != nil {
				t.Fatal(err)
			}
			// The cross-shard transaction: its shard-0 fence reaches the
			// frontier immediately and waits for shard 1, which is stuck
			// behind the blocked body.
			cross, err := sp.Submit(stm.Touches(v0, v1), func(tx stm.Tx, age int) {
				tx.Write(v0, tx.Read(v1))
			})
			if err != nil {
				t.Fatal(err)
			}
			werr := cross.Wait()
			if werr == nil {
				t.Fatal("cross-shard transaction committed against a wedged shard")
			}
			f := sp.Fault()
			if f == nil {
				t.Fatal("no global fault recorded after the fence timeout")
			}
			if f.Age != cross.Age() {
				t.Fatalf("fault at age %d, want the timed-out transaction's age %d", f.Age, cross.Age())
			}
			fte, ok := f.Value.(*shard.FenceTimeoutError)
			if !ok {
				t.Fatalf("fault value %T (%v), want *FenceTimeoutError", f.Value, f.Value)
			}
			if fte.Age != cross.Age() || fte.Timeout != 50*time.Millisecond {
				t.Fatalf("FenceTimeoutError = %+v, want age %d, timeout 50ms", fte, cross.Age())
			}
			// The wedged body is still running; let it finish so Close
			// can drain the shard.
			close(release)
			blocked.Wait()
			closeErr := sp.Close()
			if closeErr == nil {
				t.Fatal("Close = nil, want the fence-timeout fault")
			}
			var gotF *stm.Fault
			if !errors.As(closeErr, &gotF) || gotF != f {
				t.Fatalf("Close = %v, want the recorded fault %v", closeErr, f)
			}
		})
	}
}

// TestFenceTimeoutLeavesHealthyRendezvousAlone: with a generous
// timeout and healthy shards, cross-shard traffic commits exactly as
// without one — the timer must never fire on a forming rendezvous.
func TestFenceTimeoutLeavesHealthyRendezvousAlone(t *testing.T) {
	for _, alg := range stm.OrderedAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			pool := stm.NewVars(poolSize)
			initPool(pool)
			bk := buckets(pool, 2)
			v0, v1 := &pool[bk[0][0]], &pool[bk[1][0]]

			sp, err := shard.New(shard.Config{
				Shards: 2,
				Pipeline: stm.Config{
					Algorithm: alg,
					Workers:   2,
				},
				FenceTimeout: 5 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 200
			tickets := make([]*shard.Ticket, 0, n)
			for i := 0; i < n; i++ {
				var tk *shard.Ticket
				var err error
				if i%3 == 0 {
					tk, err = sp.Submit(stm.Touches(v0, v1), func(tx stm.Tx, age int) {
						tx.Write(v1, tx.Read(v0)+1)
					})
				} else {
					tk, err = sp.Submit(stm.Touches(v0), func(tx stm.Tx, age int) {
						tx.Write(v0, tx.Read(v0)+1)
					})
				}
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				tickets = append(tickets, tk)
			}
			for i, tk := range tickets {
				if err := tk.Wait(); err != nil {
					t.Fatalf("ticket %d: %v", i, err)
				}
			}
			if err := sp.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if f := sp.Fault(); f != nil {
				t.Fatalf("healthy run recorded fault %v", f)
			}
		})
	}
}

func TestNegativeFenceTimeoutRejected(t *testing.T) {
	_, err := shard.New(shard.Config{
		Shards:       2,
		Pipeline:     stm.Config{Algorithm: stm.OUL},
		FenceTimeout: -time.Second,
	})
	if err == nil {
		t.Fatal("negative FenceTimeout accepted")
	}
}
