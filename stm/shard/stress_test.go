package shard

// Internal-package stress test: the closed-loop shape cmd/streambench
// drives at scale, kept here with access to the per-shard pipelines so
// a stall produces a diagnosable report instead of a test timeout.
// This workload (many pipelines in one process, epoch recycling on)
// is what exposed the flat-combining validator parking race fixed in
// the run-loop's validatorLoop.

import (
	"sync"
	"testing"
	"time"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

func TestShardedClosedLoopStress(t *testing.T) {
	rounds, perClient := 4, 4000
	if testing.Short() {
		rounds, perClient = 1, 800
	}
	for round := 0; round < rounds; round++ {
		const shards, clients = 4, 16
		sp, err := New(Config{Shards: shards, Pipeline: stm.Config{Algorithm: stm.OUL, Workers: 4, EpochAges: 2048}})
		if err != nil {
			t.Fatal(err)
		}
		pool := stm.NewVars(4096)
		buckets := make([][]*stm.Var, shards)
		for i := range pool {
			s := sp.ShardOf(&pool[i])
			buckets[s] = append(buckets[s], &pool[i])
		}
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := rng.New(uint64(round*clients+c)*77 + 1)
				for i := 0; i < perClient; i++ {
					s := r.Intn(shards)
					bk := buckets[s]
					a, b := bk[r.Intn(len(bk))], bk[r.Intn(len(bk))]
					tk, err := sp.Submit(stm.Touches(a, b), func(tx stm.Tx, age int) {
						cur := tx.Read(a)
						if cur > 3 {
							tx.Write(a, cur-3)
							tx.Write(b, tx.Read(b)+3)
						}
					})
					if err != nil {
						t.Error(err)
						return
					}
					select {
					case <-tk.Done():
					case <-time.After(60 * time.Second):
						for si, p := range sp.pipes {
							t.Logf("pipe %d: submitted=%d committed=%d inflight=%d fault=%v",
								si, p.Submitted(), p.Committed(), p.InFlight(), p.Fault())
						}
						t.Errorf("round %d: client %d stalled on global age %d (local %d)",
							round, c, tk.Age(), tk.local.Age())
						return
					}
				}
			}(c)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for i := range pool {
			total += pool[i].Load()
		}
		if total != 0 {
			// Pool starts at zero and transfers conserve: total must stay 0.
			t.Fatalf("round %d: conservation broken, total=%d", round, total)
		}
	}
}
