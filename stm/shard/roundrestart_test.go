package shard_test

import (
	"testing"

	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/shard"
)

// TestCrossRoundRestartDeterminism is the regression test for the
// round-restart compounding bug: when a cross-shard round restarted
// after a participant's attempt died (frequent under Ordered-TL2,
// whose fence attempts carry stale read versions), the surviving
// participants' handles still held the dead round's writes, and the
// re-run body read its own previous writes — debiting an account
// twice while crediting the peer once. The fix (xtxn.killRound)
// restarts every participant on virgin descriptors.
//
// The workload needs single-shard traffic interleaved on the *peer*
// shard (so fences rendezvous under concurrent speculation) and at
// least two workers; Ordered-TL2 reproduced the divergence on nearly
// every run before the fix.
func TestCrossRoundRestartDeterminism(t *testing.T) {
	for _, alg := range stm.OrderedAlgorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			const n, shards = 400, 2
			accounts := newDurAccounts()
			sp, err := shard.New(shard.Config{
				Shards:   shards,
				Pipeline: stm.Config{Algorithm: alg, Workers: 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			buckets := bucketsOf(sp, accounts)
			payloads := make([]xfer, n)
			for i := range payloads {
				if i%4 == 0 {
					payloads[i] = xfer{
						from: uint32(buckets[0][i%len(buckets[0])]),
						to:   uint32(buckets[1][i%len(buckets[1])]),
					}
				} else {
					payloads[i] = xferFor(uint64(i))
				}
			}
			codec := xferCodec{accounts: accounts}
			tks := make([]*shard.Ticket, n)
			for i := range payloads {
				data, err := codec.Encode(payloads[i])
				if err != nil {
					t.Fatal(err)
				}
				access, body, err := codec.Decode(data)
				if err != nil {
					t.Fatal(err)
				}
				tk, err := sp.Submit(access, body)
				if err != nil {
					t.Fatal(err)
				}
				tks[i] = tk
			}
			for _, tk := range tks {
				if err := tk.Wait(); err != nil {
					t.Fatal(err)
				}
			}
			if err := sp.Close(); err != nil {
				t.Fatal(err)
			}
			live := stateOf(accounts)

			balances := make([]uint64, durAccounts)
			for i := range balances {
				balances[i] = 1000
			}
			for g, x := range payloads {
				amt := uint64(g%5) + 1
				if balances[x.from] >= amt && x.from != x.to {
					balances[x.from] -= amt
					balances[x.to] += amt
				}
			}
			for i := range live {
				if live[i] != balances[i] {
					t.Errorf("account %d (shard %d): live=%d model=%d",
						i, sp.ShardOf(&accounts[i]), live[i], balances[i])
				}
			}
		})
	}
}
