// Package shard implements partition-parallel ordered execution: S
// independent stm.Pipeline engines, each owning a hash-partition of
// the Var space, behind a single Submit front-end that preserves the
// global predefined commit order.
//
// The Age-based Commit Order model caps throughput at what one commit
// frontier can sustain; sharding is the scaling path past it. A
// ShardedPipeline assigns every submission a global age, routes
// single-partition transactions (the common case, and the only ones a
// partitionable workload produces) to their shard's local age
// sequence, and handles multi-partition transactions in the
// deterministic, queue-oriented style of Calvin and QueCC: a fence is
// inserted at the equivalent local age on every involved shard, the
// participating shards rendezvous when those fences reach their
// commit frontiers, and the lowest involved shard executes the body
// against a cross-shard Tx view while the others hold their
// frontiers. No two-phase commit is needed: a fence at the frontier
// is reachable, and a reachable transaction in this system always
// commits.
//
// Determinism contract: because every shard commits its slice of the
// global age sequence in local-age order, and cross-shard
// transactions freeze every involved shard at exactly the global
// prefix below them, a sharded run produces per-ticket results and
// final memory identical to executing all bodies sequentially in
// global-age order — for any order-enforcing algorithm and any shard
// count.
//
// Transactions must declare the variables they may touch
// (stm.Access); the declaration is a superset promise, and violating
// it is a fault, not a silent isolation leak.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/stm"
	"github.com/orderedstm/ostm/stm/obs"
)

// Config parameterizes a ShardedPipeline.
type Config struct {
	// Shards is the number of partitions S (default 2). Each partition
	// runs an independent stm.Pipeline owning the Vars that hash to it
	// (meta's stable shard mapping; see Of).
	Shards int

	// Pipeline parameterizes every per-shard pipeline. Algorithm must
	// enforce the predefined commit order (the unordered baselines
	// cannot provide sharded determinism and are rejected). Workers,
	// Window, Capacity and EpochAges are per shard. FirstAge is the
	// global age of the first submission; the per-shard local age
	// sequences always start at zero. TableBits left zero defaults to
	// a per-shard table shrunk by log2(Shards) — each engine sees only
	// its slice of the variable space, so the aggregate lock-table
	// footprint matches a single unsharded engine. Pipeline.WAL,
	// Pipeline.Codec, Pipeline.WaitDurable and Pipeline.OnCommit must
	// be unset: sharded durability is configured at the router (the
	// fields below), which logs global ages through one WAL.
	Pipeline stm.Config

	// WAL attaches one global-age write-ahead log at the router: as
	// the *global* commit frontier advances (an age is done once every
	// involved shard committed its slice), the encoded payload of each
	// age is appended in global-age order. A WAL-backed router only
	// accepts submissions through SubmitPayload/SubmitEncoded.
	// Recovery replays the surviving records through SubmitEncoded of
	// a fresh router with the same Shards count — routing is
	// deterministic in (declaration, Shards), so every shard rebuilds
	// exactly its local sequence, cross-shard fences included.
	WAL stm.DurableLog
	// Codec encodes durable submission payloads and decodes them back
	// into (access, body) pairs. Required when WAL is set.
	Codec Codec
	// WaitDurable defers ticket resolution until the transaction's
	// global age is durable, not merely committed on its shards.
	// Requires WAL.
	WaitDurable bool

	// CheckpointEvery, when > 0, checkpoints the sharded system every
	// that many appended global ages: the router freezes submissions,
	// waits for the global frontier to reach the freeze point,
	// serializes the Var space plus the per-shard local-age watermarks,
	// and commits the snapshot through the WAL's CheckpointSink (which
	// truncates redundant log history). Requires WAL (implementing
	// stm.CheckpointSink) and Snapshotter.
	CheckpointEvery uint64
	// Snapshotter serializes the application's Var space for
	// checkpoints. Required when CheckpointEvery is set; with it set
	// (and a CheckpointSink WAL), manual Checkpoint calls work even
	// when CheckpointEvery is zero.
	Snapshotter stm.Snapshotter
	// LocalFirstAges seeds each shard's local age sequence when
	// recovering from a checkpoint: DecodeCheckpoint returns the
	// watermarks the checkpoint froze, and a router rebuilt with them
	// (plus Pipeline.FirstAge = the checkpoint's global age) assigns
	// replayed suffix records exactly the local ages they carried
	// originally. Nil (fresh start, or full replay from age zero)
	// means every local sequence starts at zero.
	LocalFirstAges []uint64

	// Obs, when non-nil, attaches the observability registry to the
	// whole sharded system: every shard pipeline gets a shard-labeled
	// view of it (so per-shard commits, aborts, frontier and latency
	// families carry a shard label), and the router adds the
	// cross-shard families — fence-wait histograms, cross-transaction
	// count, global frontier, checkpoint duration. Set it here, not on
	// Pipeline.Obs: the router owns the per-shard scoping. nil (the
	// default) means zero overhead.
	Obs *obs.Registry

	// FenceTimeout bounds how long a cross-shard rendezvous may wait
	// for its participants. Zero (the default) waits forever — correct
	// when every shard is healthy, since a fence at the frontier always
	// commits. With a timeout set, a participant parked longer than
	// this (its peer shard stalled, wedged on a blocked body or a dead
	// disk) raises a *FenceTimeoutError fault: the round is resolved by
	// stopping the world at that transaction's global age — the same
	// single-cut semantics as any genuine fault — instead of holding
	// the involved shards' frontiers hostage forever. Negative values
	// are rejected.
	FenceTimeout time.Duration
}

// ShardedPipeline is the sharded streaming front-end. Submit may be
// called from any number of goroutines; Close must be called to
// release the per-shard workers. See the package documentation for
// the execution model.
type ShardedPipeline struct {
	shards       int
	pipes        []*stm.Pipeline
	retryUnknown bool
	codec        Codec
	dr           *durRouter // router-level durability, nil without a WAL
	so           *shardObs  // router-level observability, nil without Config.Obs
	ncross       atomic.Uint64

	mu        sync.Mutex // router: serializes age assignment and routing
	nextG     uint64
	localNext []uint64 // next local age each shard will assign
	closed    bool

	// Checkpoint machinery; zero-valued unless configured.
	ckptMu   sync.Mutex // serializes checkpoints (auto loop + manual)
	ckptSink stm.CheckpointSink
	snap     stm.Snapshotter
	ckdone   chan struct{} // checkpointer goroutine exit (closed if none)
	lastCkpt uint64        // guarded by mu
	ckptN    uint64        // guarded by mu
	ckptErr  error         // guarded by mu; first checkpoint failure

	fault atomic.Pointer[stm.Fault] // first global fault

	xmu   sync.Mutex
	xcond *sync.Cond
	xlive map[uint64]*xtxn // cross-shard transactions not yet resolved
	xout  int
	xwg   sync.WaitGroup

	fenceTimeout time.Duration // Config.FenceTimeout

	firstAge  uint64
	closeOnce sync.Once
	closeErr  error
}

// New validates the configuration and starts one pipeline per shard.
func New(cfg Config) (*ShardedPipeline, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if !cfg.Pipeline.Algorithm.Ordered() {
		return nil, fmt.Errorf("shard: %v does not enforce the predefined commit order; sharded determinism requires an ordered algorithm", cfg.Pipeline.Algorithm)
	}
	if cfg.Pipeline.WAL != nil || cfg.Pipeline.Codec != nil || cfg.Pipeline.WaitDurable || cfg.Pipeline.OnCommit != nil {
		return nil, errors.New("shard: configure durability on shard.Config (router-level), not on the per-shard Pipeline config")
	}
	if cfg.Pipeline.Obs != nil {
		return nil, errors.New("shard: set observability on shard.Config.Obs (router-level); the router scopes per-shard views itself")
	}
	if cfg.WAL != nil && cfg.Codec == nil {
		return nil, errors.New("shard: Config.WAL requires Config.Codec")
	}
	if cfg.WaitDurable && cfg.WAL == nil {
		return nil, errors.New("shard: Config.WaitDurable requires Config.WAL")
	}
	if cfg.CheckpointEvery > 0 {
		if cfg.WAL == nil || cfg.Snapshotter == nil {
			return nil, errors.New("shard: Config.CheckpointEvery requires Config.WAL and Config.Snapshotter")
		}
		if _, ok := cfg.WAL.(stm.CheckpointSink); !ok {
			return nil, errors.New("shard: Config.CheckpointEvery requires a WAL implementing stm.CheckpointSink (wal.Writer does)")
		}
	}
	if cfg.LocalFirstAges != nil && len(cfg.LocalFirstAges) != cfg.Shards {
		return nil, fmt.Errorf("shard: LocalFirstAges has %d entries for %d shards", len(cfg.LocalFirstAges), cfg.Shards)
	}
	if cfg.FenceTimeout < 0 {
		return nil, errors.New("shard: negative FenceTimeout")
	}
	pcfg := cfg.Pipeline
	first := pcfg.FirstAge
	pcfg.FirstAge = 0
	if pcfg.TableBits == 0 {
		pcfg.TableBits = meta.ShardTableBits(meta.DefaultTableBits, cfg.Shards)
	}
	sp := &ShardedPipeline{
		shards:       cfg.Shards,
		retryUnknown: pcfg.RetryUnknownPanics,
		codec:        cfg.Codec,
		nextG:        first,
		localNext:    make([]uint64, cfg.Shards),
		firstAge:     first,
		lastCkpt:     first,
		xlive:        make(map[uint64]*xtxn),
		ckdone:       make(chan struct{}),
		fenceTimeout: cfg.FenceTimeout,
	}
	if cfg.LocalFirstAges != nil {
		copy(sp.localNext, cfg.LocalFirstAges)
	}
	sp.xcond = sync.NewCond(&sp.xmu)
	if cfg.WAL != nil {
		sp.dr = newDurRouter(sp, cfg.WAL, cfg.WaitDurable, first, cfg.Shards)
		cfg.WAL.Notify(sp.dr.durableTo)
	}
	if sink, ok := cfg.WAL.(stm.CheckpointSink); ok && cfg.Snapshotter != nil {
		sp.ckptSink = sink
		sp.snap = cfg.Snapshotter
	}
	if cfg.CheckpointEvery > 0 {
		sp.dr.ckptEvery = cfg.CheckpointEvery
		sp.dr.ckptKick = make(chan struct{}, 1)
		go sp.ckptLoop()
	} else {
		close(sp.ckdone)
	}
	if cfg.Obs != nil {
		sp.so = newShardObs(cfg.Obs, sp)
	}
	for s := 0; s < cfg.Shards; s++ {
		scfg := pcfg
		if cfg.Obs != nil {
			scfg.Obs = cfg.Obs.With("shard", strconv.Itoa(s))
		}
		if cfg.LocalFirstAges != nil {
			// Recovery from a checkpoint: the shard's local sequence
			// resumes at its frozen watermark, so replayed suffix
			// records land on exactly their original local ages.
			scfg.FirstAge = cfg.LocalFirstAges[s]
		}
		if sp.dr != nil {
			// The per-shard commit-frontier hook feeds the router's
			// global frontier tracker.
			s := s
			scfg.OnCommit = func(la uint64) { sp.dr.localCommit(s, la) }
		}
		p, err := stm.NewPipeline(scfg)
		if err != nil {
			for _, q := range sp.pipes {
				q.Close()
			}
			return nil, err
		}
		sp.pipes = append(sp.pipes, p)
	}
	return sp, nil
}

// Submit hands the sharded pipeline the next transaction of the
// global stream. access declares the variables body may touch; body
// receives the global age (Tx.Age is global too). Submit assigns the
// next global age, routes the transaction to the involved shards, and
// returns a Ticket resolving when it commits everywhere it ran.
// After Close it returns stm.ErrClosed; after a fault, the
// *stm.Stopped error. On a router configured with a WAL, Submit
// returns stm.ErrPayloadRequired — use SubmitPayload or SubmitEncoded
// so the log receives a replayable input.
func (sp *ShardedPipeline) Submit(access stm.Access, body stm.Body) (*Ticket, error) {
	if sp.dr != nil {
		return nil, stm.ErrPayloadRequired
	}
	return sp.route(nil, access, body, nil)
}

// SubmitCtx is Submit with a cancellable backpressure wait, the
// sharded equivalent of stm.Pipeline.SubmitCtx. Cancellation is only
// observed while the submission can still be withdrawn without
// leaving a gap in any (global or local) age sequence: before any
// involved shard has accepted work for it. A cancellation inside that
// window returns an error wrapping stm.ErrCanceled and the router
// state is exactly as if the Submit never happened; past the window
// the context is not consulted and the call completes normally, so an
// accepted transaction never loses its position (bound the wait with
// Ticket.WaitCtx instead).
func (sp *ShardedPipeline) SubmitCtx(ctx context.Context, access stm.Access, body stm.Body) (*Ticket, error) {
	if sp.dr != nil {
		return nil, stm.ErrPayloadRequired
	}
	return sp.route(ctx, access, body, nil)
}

// SubmitPayload encodes payload through the configured Codec, decodes
// it back into the (access, body) pair that will run, and submits it.
// The encoded form is what the router's WAL stores once the global
// age commits on every involved shard.
func (sp *ShardedPipeline) SubmitPayload(payload any) (*Ticket, error) {
	return sp.SubmitPayloadCtx(nil, payload)
}

// SubmitPayloadCtx is SubmitPayload with SubmitCtx's cancellable
// backpressure wait and withdrawal semantics: cancellation inside the
// withdrawal window (before any involved shard accepted work) returns
// an error wrapping stm.ErrCanceled and leaves the router exactly as
// if the submission never happened.
func (sp *ShardedPipeline) SubmitPayloadCtx(ctx context.Context, payload any) (*Ticket, error) {
	if sp.codec == nil {
		return nil, errors.New("shard: SubmitPayload requires Config.Codec")
	}
	data, err := sp.codec.Encode(payload)
	if err != nil {
		return nil, fmt.Errorf("shard: encode payload: %w", err)
	}
	return sp.submitEncodedOwned(ctx, data)
}

// SubmitEncoded submits a payload already in its wire form — the
// recovery-replay entry point (wal.Recovery.Replay hands surviving
// records here). Replay requires the same Shards count the log was
// written under; routing is then deterministic and every shard
// rebuilds exactly its original local sequence.
//
// Unlike the unsharded Pipeline, the router may retain the payload
// past this submission's ticket resolution (the global-age log
// appends only when every lower global age completed, which can lag
// a single shard's commit), so data is copied here and the caller may
// reuse its buffer immediately. Recovery replay pays that one copy
// per record — bounded by the log size, and only on the rare restart
// path.
func (sp *ShardedPipeline) SubmitEncoded(data []byte) (*Ticket, error) {
	return sp.SubmitEncodedCtx(nil, data)
}

// SubmitEncodedCtx is SubmitEncoded with SubmitCtx's cancellable
// backpressure wait and withdrawal semantics — the ingress path for
// servers feeding pre-encoded request frames under a per-request
// context. Like SubmitEncoded it copies data, so the caller may reuse
// its buffer immediately.
func (sp *ShardedPipeline) SubmitEncodedCtx(ctx context.Context, data []byte) (*Ticket, error) {
	return sp.submitEncodedOwned(ctx, append([]byte(nil), data...))
}

// submitEncodedOwned is SubmitEncoded for payload bytes the router
// may keep (freshly encoded, or recovery records); ctx (nil for the
// uncancellable entry points) bounds the shard-side backpressure wait.
func (sp *ShardedPipeline) submitEncodedOwned(ctx context.Context, data []byte) (*Ticket, error) {
	if sp.dr == nil {
		return nil, errors.New("shard: SubmitEncoded requires Config.WAL")
	}
	access, body, err := sp.codec.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("shard: decode payload: %w", err)
	}
	return sp.route(ctx, access, body, data)
}

// route is the shared submission core; ctx (nil for the uncancellable
// entry points) bounds the shard-side backpressure wait, and data is
// nil on non-durable routers, else the encoded payload the WAL will
// store. On cancellation the assigned global age is rolled back —
// safe because sp.mu is held from assignment to rollback, so the age
// was never observable.
func (sp *ShardedPipeline) route(ctx context.Context, access stm.Access, body stm.Body, data []byte) (*Ticket, error) {
	if body == nil {
		return nil, errors.New("shard: nil body")
	}
	involved, err := sp.partitions(access)
	if err != nil {
		return nil, err
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if f := sp.fault.Load(); f != nil {
		return nil, &stm.Stopped{Fault: f}
	}
	if sp.closed {
		return nil, stm.ErrClosed
	}
	g := sp.nextG
	sp.nextG++
	var t *Ticket
	if len(involved) == 1 {
		t, err = sp.submitLocal(ctx, g, involved[0], body, data)
	} else {
		t, err = sp.submitCross(ctx, g, involved, body, data)
	}
	if err != nil && errors.Is(err, stm.ErrCanceled) {
		sp.nextG-- // withdrawn before any shard accepted it; reuse the age
		return nil, err
	}
	if err == nil && len(involved) > 1 {
		sp.ncross.Add(1)
	}
	return t, err
}

// Request pairs a declared access set with a transaction body for
// batched submission.
type Request struct {
	Access stm.Access
	Body   stm.Body
}

// SubmitBatch submits the requests as consecutive global ages, taking
// the router's sequencer lock once for the whole batch. Single-shard
// runs are forwarded to their shard's Pipeline.SubmitBatch (one
// per-shard stream lock per run instead of one per transaction);
// cross-shard requests flush the pending runs of their involved shards
// first, so every shard still receives its slice of the global age
// sequence in order — the invariant the determinism argument rests on.
//
// It returns one Ticket per request. On a fault or after Close the
// batch stops early: accepted requests keep their (valid) tickets,
// refused positions are nil, and the error reports why. Backpressure
// applies inside the batch exactly as for consecutive Submits. On a
// router configured with a WAL it returns stm.ErrPayloadRequired —
// use SubmitPayloadBatch or SubmitEncodedBatch so the log receives
// replayable inputs.
func (sp *ShardedPipeline) SubmitBatch(reqs []Request) ([]*Ticket, error) {
	if sp.dr != nil {
		return nil, stm.ErrPayloadRequired
	}
	return sp.submitBatch(nil, reqs, nil)
}

// SubmitBatchCtx is SubmitBatch with a cancellable wait: cancellation
// is observed between requests — before the next global age is
// assigned — stopping the batch there with an error wrapping
// stm.ErrCanceled (accepted requests keep their tickets). It is not
// consulted inside a shard's backpressure park once a flush began, so
// an assigned age is never withdrawn.
func (sp *ShardedPipeline) SubmitBatchCtx(ctx context.Context, reqs []Request) ([]*Ticket, error) {
	if sp.dr != nil {
		return nil, stm.ErrPayloadRequired
	}
	return sp.submitBatch(ctx, reqs, nil)
}

// SubmitPayloadBatch is SubmitBatch for durable routers: each payload
// is encoded, decoded into its (access, body) pair, and the batch
// submitted as consecutive global ages, with SubmitBatch's
// partial-acceptance semantics. The encoded forms reach the WAL in
// global-age order as the global frontier passes them.
func (sp *ShardedPipeline) SubmitPayloadBatch(payloads []any) ([]*Ticket, error) {
	return sp.SubmitPayloadBatchCtx(nil, payloads)
}

// SubmitPayloadBatchCtx is SubmitPayloadBatch with SubmitBatchCtx's
// between-requests cancellation rule.
func (sp *ShardedPipeline) SubmitPayloadBatchCtx(ctx context.Context, payloads []any) ([]*Ticket, error) {
	if sp.codec == nil {
		return nil, errors.New("shard: SubmitPayloadBatch requires Config.Codec")
	}
	datas := make([][]byte, len(payloads))
	for i, pl := range payloads {
		data, err := sp.codec.Encode(pl)
		if err != nil {
			return nil, fmt.Errorf("shard: encode payload %d: %w", i, err)
		}
		datas[i] = data
	}
	return sp.submitEncodedBatchOwned(ctx, datas)
}

// SubmitEncodedBatch is SubmitEncoded's batched form: each element is
// decoded through the Codec and the batch submitted as consecutive
// global ages. Like SubmitEncoded (and unlike the unsharded
// Pipeline's SubmitEncodedBatch) every element is copied, because the
// router may retain payloads past ticket resolution; callers may
// reuse their buffers immediately.
func (sp *ShardedPipeline) SubmitEncodedBatch(datas [][]byte) ([]*Ticket, error) {
	return sp.SubmitEncodedBatchCtx(nil, datas)
}

// SubmitEncodedBatchCtx is SubmitEncodedBatch with SubmitBatchCtx's
// between-requests cancellation rule — the batched ingress path for
// servers feeding pre-encoded frames under a connection context.
func (sp *ShardedPipeline) SubmitEncodedBatchCtx(ctx context.Context, datas [][]byte) ([]*Ticket, error) {
	owned := make([][]byte, len(datas))
	for i, d := range datas {
		owned[i] = append([]byte(nil), d...)
	}
	return sp.submitEncodedBatchOwned(ctx, owned)
}

// submitEncodedBatchOwned decodes owned payload bytes into requests
// and runs the shared batch core with the payloads attached.
func (sp *ShardedPipeline) submitEncodedBatchOwned(ctx context.Context, datas [][]byte) ([]*Ticket, error) {
	if sp.dr == nil {
		return nil, errors.New("shard: SubmitEncodedBatch requires Config.WAL")
	}
	reqs := make([]Request, len(datas))
	for i, data := range datas {
		access, body, err := sp.codec.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("shard: decode payload %d: %w", i, err)
		}
		reqs[i] = Request{Access: access, Body: body}
	}
	return sp.submitBatch(ctx, reqs, datas)
}

// submitBatch is the shared batch core; datas is nil on non-durable
// routers, else parallel to reqs (owned encoded payloads). On durable
// routers each single-shard request registers its global age and
// local-age mapping at queue time — before any shard sees it — so the
// commit hook can never observe an unmapped age, exactly like
// submitLocal; a flush refusal unwinds the registrations of the
// refused suffix. A non-nil ctx is consulted between requests only.
func (sp *ShardedPipeline) submitBatch(ctx context.Context, reqs []Request, datas [][]byte) ([]*Ticket, error) {
	parts := make([][]int, len(reqs))
	for i := range reqs {
		if reqs[i].Body == nil {
			return nil, errors.New("shard: nil body")
		}
		p, err := sp.partitions(reqs[i].Access)
		if err != nil {
			return nil, err
		}
		parts[i] = p
	}
	out := make([]*Ticket, len(reqs))
	pend := make([][]stm.Body, sp.shards) // per-shard run of wrapped bodies
	pendIdx := make([][]int, sp.shards)   // request index per pending body
	pendAge := make([][]uint64, sp.shards)
	var pendRT [][]*Ticket // WaitDurable: router-owned ticket per pending body
	if sp.dr != nil {
		pendRT = make([][]*Ticket, sp.shards)
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	flush := func(s int) error {
		if len(pend[s]) == 0 {
			return nil
		}
		lts, err := sp.pipes[s].SubmitBatch(pend[s])
		base := sp.localNext[s]
		sp.localNext[s] += uint64(len(lts))
		for k := range lts {
			idx := pendIdx[s][k]
			if sp.dr != nil && pendRT[s][k] != nil {
				out[idx] = pendRT[s][k] // WaitDurable: resolved by the router
			} else {
				out[idx] = &Ticket{g: pendAge[s][k], sp: sp, local: lts[k]}
			}
		}
		if sp.dr != nil {
			// Refused suffix: those ages can never complete; unwind their
			// registrations so the frontier tracker never waits on them.
			for k := len(lts); k < len(pend[s]); k++ {
				sp.dr.unmapLocal(s, base+uint64(k))
				sp.dr.drop(pendAge[s][k])
			}
			pendRT[s] = pendRT[s][:0]
		}
		pend[s], pendIdx[s], pendAge[s] = pend[s][:0], pendIdx[s][:0], pendAge[s][:0]
		return err
	}
	flushAll := func() error {
		var first error
		for s := 0; s < sp.shards; s++ {
			if err := flush(s); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	// batchErr rewrites a shard-local refusal into the global
	// vocabulary without a specific faulting age.
	batchErr := func(err error) error {
		if f := sp.fault.Load(); f != nil {
			return &stm.Stopped{Fault: f}
		}
		return err
	}
	for i := range reqs {
		if f := sp.fault.Load(); f != nil {
			flushAll()
			return out, &stm.Stopped{Fault: f}
		}
		if sp.closed {
			flushAll()
			return out, stm.ErrClosed
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				flushAll()
				return out, fmt.Errorf("%w before an age was assigned: %w", stm.ErrCanceled, err)
			}
		}
		g := sp.nextG
		sp.nextG++
		if len(parts[i]) == 1 {
			s := parts[i][0]
			body := reqs[i].Body
			wrapped := func(tx stm.Tx, _ int) {
				defer sp.guard(g, tx)
				body(&checkedTx{tx: tx, shards: sp.shards, shard: s, g: g}, int(g))
			}
			if sp.dr != nil {
				rt := sp.dr.add(g, datas[i], 1)
				sp.dr.mapLocal(s, sp.localNext[s]+uint64(len(pend[s])), g)
				pendRT[s] = append(pendRT[s], rt)
			}
			pend[s] = append(pend[s], wrapped)
			pendIdx[s] = append(pendIdx[s], i)
			pendAge[s] = append(pendAge[s], g)
			continue
		}
		// Cross-shard: its fences must reach every involved shard after
		// the locals already assigned lower global ages there.
		for _, s := range parts[i] {
			if err := flush(s); err != nil {
				flushAll()
				return out, batchErr(err)
			}
		}
		sp.ncross.Add(1)
		var data []byte
		if datas != nil {
			data = datas[i]
		}
		t, err := sp.submitCross(nil, g, parts[i], reqs[i].Body, data)
		if err != nil {
			flushAll()
			return out, batchErr(err)
		}
		out[i] = t
	}
	if err := flushAll(); err != nil {
		return out, batchErr(err)
	}
	return out, nil
}

// partitions resolves an access declaration to the ascending list of
// involved shards. An empty declaration is ordered on (and confined
// to) partition 0.
func (sp *ShardedPipeline) partitions(a stm.Access) ([]int, error) {
	if sp.shards == 1 {
		return []int{0}, nil
	}
	if a.All() {
		all := make([]int, sp.shards)
		for s := range all {
			all[s] = s
		}
		return all, nil
	}
	seen := make([]bool, sp.shards)
	var out []int
	for _, v := range a.Vars() {
		if v == nil {
			return nil, errors.New("shard: nil Var in access declaration")
		}
		if s := meta.ShardOf(v.ID(), sp.shards); !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return []int{0}, nil
	}
	sort.Ints(out)
	return out, nil
}

// submitLocal routes a single-shard transaction straight to its
// shard's local age sequence. Called with sp.mu held; the per-shard
// Submit may block on that shard's backpressure, which paces the
// whole router — the global sequencer is intentionally the one
// serialization point (and what makes route's cancellation rollback
// sound). On durable routers the global age and its local mapping are
// registered *before* the shard sees the submission, so the commit
// hook can never observe an unmapped age.
func (sp *ShardedPipeline) submitLocal(ctx context.Context, g uint64, s int, body stm.Body, data []byte) (*Ticket, error) {
	wrapped := func(tx stm.Tx, _ int) {
		defer sp.guard(g, tx)
		body(&checkedTx{tx: tx, shards: sp.shards, shard: s, g: g}, int(g))
	}
	var rt *Ticket
	if sp.dr != nil {
		rt = sp.dr.add(g, data, 1)
		sp.dr.mapLocal(s, sp.localNext[s], g)
	}
	lt, err := sp.pipes[s].SubmitCtx(ctx, wrapped)
	if err != nil {
		if sp.dr != nil {
			sp.dr.unmapLocal(s, sp.localNext[s])
			sp.dr.drop(g)
		}
		if errors.Is(err, stm.ErrCanceled) {
			return nil, err // withdrawn whole; route rolls the age back
		}
		return nil, sp.translate(g, err)
	}
	sp.localNext[s]++
	if rt != nil {
		// WaitDurable: the router resolves rt at durability (or via
		// sweepFail/settle), and lt is dropped — safe because every
		// shard fault reaches sp.fail before resolving local tickets
		// (body faults unwind through sp.guard, fence faults through
		// fenceBody), so lt's own resolution carries no information
		// the router does not already have.
		return rt, nil
	}
	return &Ticket{g: g, sp: sp, local: lt}, nil
}

// guard mirrors the run-loop sandbox's fault classification one level
// up: a genuine fault must stop every shard, not just the one that
// hit it, so the global predefined order is cut at a single point.
func (sp *ShardedPipeline) guard(g uint64, tx stm.Tx) {
	rec := recover()
	if rec == nil {
		return
	}
	if !speculative(rec, tx) && !sp.retryUnknown {
		sp.fail(&stm.Fault{Age: g, Value: rec})
	}
	panic(rec)
}

// submitCross registers the coordination state and fences every
// involved shard. Called with sp.mu held. On durable routers every
// fence's local age is mapped to g before it is submitted; the
// global age completes (and its payload reaches the WAL) once all
// fences committed — which is exactly "committed on every involved
// shard". Cancellation (non-nil ctx) is honored only on the first
// fence: once any shard accepted a fence the transaction owns local
// ages that cannot be withdrawn, so the remaining fences submit
// uncancellably and the call completes.
func (sp *ShardedPipeline) submitCross(ctx context.Context, g uint64, involved []int, body stm.Body, data []byte) (*Ticket, error) {
	x := newXtxn(sp, g, involved, body)
	var t *Ticket
	routerOwned := false
	if sp.dr != nil {
		if rt := sp.dr.add(g, data, len(involved)); rt != nil {
			t = rt // WaitDurable: the router resolves it at durability
			routerOwned = true
		}
	}
	if t == nil {
		t = &Ticket{g: g, sp: sp, done: make(chan struct{})}
	}
	sp.xmu.Lock()
	sp.xlive[g] = x
	sp.xout++
	sp.xmu.Unlock()
	fences := make([]*stm.Ticket, 0, len(involved))
	for i, s := range involved {
		if sp.dr != nil {
			sp.dr.mapLocal(s, sp.localNext[s], g)
		}
		fctx := ctx
		if i > 0 {
			fctx = nil // past the withdrawal window (see above)
		}
		ft, err := sp.pipes[s].SubmitCtx(fctx, sp.fenceBody(x, s))
		if err != nil {
			if errors.Is(err, stm.ErrCanceled) {
				// First fence, nothing accepted anywhere: withdraw the
				// whole submission. The ticket never escaped, so it is
				// dropped unresolved; route rolls the global age back.
				if sp.dr != nil {
					sp.dr.unmapLocal(s, sp.localNext[s])
					sp.dr.drop(g)
				}
				sp.xfinish(g)
				return nil, err
			}
			// A shard refused the fence, which only happens when the
			// system is stopping (Close cannot interleave: it takes
			// sp.mu before closing pipelines). Fences already in
			// flight must be released here too: sp.fail's xlive sweep
			// can race our registration — if its snapshot predates
			// it, nobody else will ever fail this xtxn, and a fence
			// already parked in the rendezvous would strand its worker
			// and deadlock Close.
			if sp.dr != nil {
				sp.dr.unmapLocal(s, sp.localNext[s])
			}
			if f := sp.fault.Load(); f != nil {
				x.fail(f)
			}
			terr := sp.translate(g, err)
			if routerOwned {
				sp.dr.resolveErr(g, terr)
			} else {
				t.err = err
				close(t.done)
			}
			if sp.dr != nil {
				// Mirror submitLocal's cleanup: the refused age can
				// never complete, so stop tracking it (fences already
				// in flight find no entry, which localCommit tolerates;
				// the frontier stays frozen below the fault either way).
				sp.dr.drop(g)
			}
			sp.xfinish(g)
			return nil, terr
		}
		sp.localNext[s]++
		fences = append(fences, ft)
	}
	sp.xwg.Add(1)
	go func() {
		defer sp.xwg.Done()
		var err error
		for _, ft := range fences {
			if e := ft.Wait(); e != nil && err == nil {
				err = e
			}
		}
		if routerOwned {
			// The router resolves the ticket at durability; the
			// aggregator only surfaces fence failures (a fault on any
			// involved shard).
			if err != nil {
				sp.dr.resolveErr(g, sp.translate(g, err))
			}
		} else {
			t.err = err
			close(t.done)
		}
		sp.xfinish(g)
	}()
	return t, nil
}

func (sp *ShardedPipeline) xfinish(g uint64) {
	sp.xmu.Lock()
	if x := sp.xlive[g]; x != nil {
		x.disarm()
	}
	delete(sp.xlive, g)
	sp.xout--
	sp.xcond.Broadcast()
	sp.xmu.Unlock()
}

// fail records the first global fault and stops the world: every
// shard pipeline halts (resolving its outstanding local tickets) and
// every in-flight cross-shard rendezvous is released. Never called
// with sp.mu held — a router blocked in a shard's backpressure wait
// is unblocked by the pipeline stops this performs.
func (sp *ShardedPipeline) fail(f *stm.Fault) {
	if !sp.fault.CompareAndSwap(nil, f) {
		return
	}
	for _, p := range sp.pipes {
		p.Stop(f)
	}
	sp.xmu.Lock()
	xs := make([]*xtxn, 0, len(sp.xlive))
	for _, x := range sp.xlive {
		xs = append(xs, x)
	}
	sp.xmu.Unlock()
	for _, x := range xs {
		x.fail(f)
	}
	if sp.dr != nil {
		sp.dr.sweepFail(f)
	}
}

// translate rewrites a shard-local error into the global vocabulary:
// after a global fault, the faulting transaction's ticket resolves
// with the *stm.Fault itself (carrying the global age) and every
// other unresolved ticket with *stm.Stopped around it, regardless of
// which local error the shard reported.
func (sp *ShardedPipeline) translate(g uint64, err error) error {
	if err == nil {
		return nil
	}
	if f := sp.fault.Load(); f != nil {
		if f.Age == g {
			return f
		}
		return &stm.Stopped{Fault: f}
	}
	return err
}

// Drain blocks until every transaction submitted before the call has
// committed on all its shards and its ticket resolved (or the system
// stopped on a fault, which it returns). The pipeline stays open.
func (sp *ShardedPipeline) Drain() error {
	for _, p := range sp.pipes {
		if p.Drain() != nil {
			break // the global fault is reported below
		}
	}
	sp.xmu.Lock()
	for sp.xout > 0 && sp.fault.Load() == nil {
		sp.xcond.Wait()
	}
	sp.xmu.Unlock()
	if f := sp.fault.Load(); f != nil {
		return f
	}
	return nil
}

// Close drains and shuts down every shard pipeline and waits for all
// cross-shard bookkeeping to settle. It returns the global fault that
// stopped the system, if any. Close is idempotent.
func (sp *ShardedPipeline) Close() error {
	sp.closeOnce.Do(func() {
		sp.mu.Lock()
		sp.closed = true
		sp.mu.Unlock()
		// Closing shard by shard is safe: a draining shard's fences
		// only need their peers' workers, and later shards stay live
		// until their own Close.
		var first error
		for _, p := range sp.pipes {
			if err := p.Close(); err != nil && first == nil {
				first = err
			}
		}
		sp.xwg.Wait()
		if sp.dr != nil && sp.dr.ckptKick != nil {
			// Stop the checkpointer after every shard drained; its
			// final checkpoint sees the complete frontier and leaves a
			// log that restarts without replay.
			close(sp.dr.ckptKick)
			<-sp.ckdone
		}
		if sp.dr != nil {
			// Make the tail durable; the sync's observer resolves the
			// WaitDurable tickets still parked, and settle clears
			// anything stranded above a fault's gap. The log stays
			// open — its owner closes it.
			err := sp.dr.log.Sync()
			if err == nil {
				err = sp.dr.lastErr()
			}
			if err != nil && first == nil {
				first = &stm.DurabilityError{Err: err}
			}
			sp.dr.settle(sp.fault.Load())
		}
		sp.closeErr = first
		if sp.closeErr == nil {
			sp.mu.Lock()
			sp.closeErr = sp.ckptErr
			sp.mu.Unlock()
		}
		if f := sp.fault.Load(); f != nil {
			sp.closeErr = f
		}
	})
	return sp.closeErr
}

// Shards returns the partition count.
func (sp *ShardedPipeline) Shards() int { return sp.shards }

// PipelineConfig returns the effective per-shard pipeline
// configuration (defaults resolved), as every shard runs it.
func (sp *ShardedPipeline) PipelineConfig() stm.Config {
	return sp.pipes[0].Config()
}

// ShardOf returns the partition owning v under this pipeline's shard
// count.
func (sp *ShardedPipeline) ShardOf(v *stm.Var) int {
	return meta.ShardOf(v.ID(), sp.shards)
}

// Of returns the partition owning v among `shards` partitions — the
// same stable mapping every ShardedPipeline uses, exposed so
// workloads can be laid out partition-locally up front.
func Of(v *stm.Var, shards int) int { return meta.ShardOf(v.ID(), shards) }

// Submitted returns the number of transactions accepted so far.
func (sp *ShardedPipeline) Submitted() uint64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.nextG - sp.firstAge
}

// CrossShard returns how many accepted transactions involved more
// than one shard.
func (sp *ShardedPipeline) CrossShard() uint64 {
	return sp.ncross.Load()
}

// Fault returns the global fault that stopped the system, or nil.
func (sp *ShardedPipeline) Fault() *stm.Fault { return sp.fault.Load() }

// Durable returns the global durability frontier: every global age
// below it is on stable storage and survives a crash of the whole
// sharded system. Without a WAL it returns zero.
func (sp *ShardedPipeline) Durable() uint64 {
	if sp.dr == nil {
		return 0
	}
	return sp.dr.log.Durable()
}

// Stats returns engine counters aggregated across every shard
// (commits, aborts, retries and quiesces summed). Note that each
// cross-shard transaction commits one fence per involved shard, so
// engine-level commits exceed Submitted when cross-shard traffic is
// present.
func (sp *ShardedPipeline) Stats() meta.StatsView {
	var out meta.StatsView
	for _, p := range sp.pipes {
		out = out.Plus(p.Stats())
	}
	return out
}

// ShardStats returns the per-shard engine counter breakdown, indexed
// by shard.
func (sp *ShardedPipeline) ShardStats() []meta.StatsView {
	out := make([]meta.StatsView, len(sp.pipes))
	for s, p := range sp.pipes {
		out[s] = p.Stats()
	}
	return out
}
