package shard

import (
	"context"
	"errors"
	"fmt"

	"github.com/orderedstm/ostm/stm"
)

// Ticket tracks one submission through the sharded pipeline. Age is
// the transaction's position in the global predefined order. A ticket
// resolves with nil once the transaction committed on every involved
// shard, with the *stm.Fault itself if this transaction faulted, or
// with a *stm.Stopped error (carrying the global fault) if the system
// stopped before this transaction could commit.
//
// Resolution guarantees the per-shard prefix property: on each shard
// the transaction touched, every transaction with a lower global age
// that also touched that shard has committed. (Transactions at lower
// global ages confined to other shards may still be in flight — that
// independence is exactly where the sharded throughput comes from; the
// cross-shard fences re-synchronize wherever data could actually
// flow, which is what keeps results equal to the sequential order.)
type Ticket struct {
	g  uint64
	sp *ShardedPipeline

	// Exactly one of the two is used: single-shard tickets delegate to
	// the owning pipeline's ticket (no extra goroutine per
	// transaction); cross-shard tickets are resolved by an aggregator
	// once every involved shard's fence committed.
	local *stm.Ticket
	done  chan struct{}
	err   error // written once before done is closed (cross-shard)
}

// Age returns the transaction's global predefined-order position.
func (t *Ticket) Age() uint64 { return t.g }

// Done returns a channel closed when the ticket resolves.
func (t *Ticket) Done() <-chan struct{} {
	if t.local != nil {
		return t.local.Done()
	}
	return t.done
}

// Wait blocks until the ticket resolves and returns its outcome.
func (t *Ticket) Wait() error {
	if t.local != nil {
		return t.sp.translate(t.g, t.local.Wait())
	}
	<-t.done
	return t.sp.translate(t.g, t.err)
}

// WaitCtx is Wait with a caller-side deadline (stm.Ticket.WaitCtx's
// semantics): it returns the ticket's outcome, or an error wrapping
// stm.ErrCanceled if the context ends first. Cancellation abandons
// only this wait — the transaction keeps its global age and the
// ticket resolves normally for any later waiter.
func (t *Ticket) WaitCtx(ctx context.Context) error {
	if t.local != nil {
		err := t.local.WaitCtx(ctx)
		if errors.Is(err, stm.ErrCanceled) {
			// The caller gave up; do not rewrite the cancellation into
			// the global fault vocabulary (the ticket is unresolved) —
			// but do speak global ages, not the inner shard-local age.
			return fmt.Errorf("%w waiting for global age %d: %w", stm.ErrCanceled, t.g, ctx.Err())
		}
		return t.sp.translate(t.g, err)
	}
	select {
	case <-t.done:
		return t.sp.translate(t.g, t.err)
	case <-ctx.Done():
		return fmt.Errorf("%w waiting for global age %d: %w", stm.ErrCanceled, t.g, ctx.Err())
	}
}

// Err is a non-blocking peek at the outcome: resolved=false while the
// transaction is in flight, otherwise the error Wait would return.
func (t *Ticket) Err() (err error, resolved bool) {
	if t.local != nil {
		err, resolved = t.local.Err()
		if !resolved {
			return nil, false
		}
		return t.sp.translate(t.g, err), true
	}
	select {
	case <-t.done:
		return t.sp.translate(t.g, t.err), true
	default:
		return nil, false
	}
}
