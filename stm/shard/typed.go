package shard

import (
	"context"
	"errors"

	"github.com/orderedstm/ostm/stm"
)

// TicketOf tracks one value-returning sharded submission: the sharded
// sibling of stm.TicketOf. It wraps the ordinary Ticket (Age, Done,
// Err, Wait, WaitCtx all apply) and latches the transaction's typed
// result exactly once, at commit, under the same value-latching rule
// (DESIGN.md §10): attempts of one global age never overlap — worker
// retries, validator re-executions and cross-shard round restarts all
// run the body serially, with a happens-before edge from the final
// execution to ticket resolution — so the value visible after
// resolution is exactly the committing attempt's, and Value refuses
// to read before resolution.
type TicketOf[R any] struct {
	*Ticket
	fn  stm.Func[R]
	cur R
}

// run adapts the typed Func to the router's Body contract.
func (t *TicketOf[R]) run(tx stm.Tx, age int) { t.cur = t.fn(tx, age) }

// Value blocks until the ticket resolves and returns the committed
// attempt's result, or the zero R and the resolution error if the
// transaction did not commit.
func (t *TicketOf[R]) Value() (R, error) {
	if err := t.Ticket.Wait(); err != nil {
		var zero R
		return zero, err
	}
	return t.cur, nil
}

// ValueCtx is Value with a caller-side deadline (WaitCtx semantics:
// cancellation abandons this wait only, never the transaction or its
// latched value).
func (t *TicketOf[R]) ValueCtx(ctx context.Context) (R, error) {
	if err := t.Ticket.WaitCtx(ctx); err != nil {
		var zero R
		return zero, err
	}
	return t.cur, nil
}

// SubmitFunc submits a value-returning transaction to the sharded
// pipeline: access declares the variables fn may touch (every word of
// every typed variable — stm.Touches(v.Vars()...) for a TVar), fn
// runs under the global predefined order exactly like a Submit body
// (single-shard or cross-shard per the declaration), and the returned
// TicketOf resolves when the transaction committed on every involved
// shard, carrying the committing attempt's result.
func SubmitFunc[R any](sp *ShardedPipeline, access stm.Access, fn stm.Func[R]) (*TicketOf[R], error) {
	return SubmitFuncCtx[R](nil, sp, access, fn)
}

// SubmitFuncCtx is SubmitFunc with SubmitCtx's cancellable
// backpressure wait and withdrawal semantics (nil ctx never cancels).
func SubmitFuncCtx[R any](ctx context.Context, sp *ShardedPipeline, access stm.Access, fn stm.Func[R]) (*TicketOf[R], error) {
	if fn == nil {
		return nil, errors.New("shard: nil func")
	}
	if sp.dr != nil {
		return nil, stm.ErrPayloadRequired
	}
	t := &TicketOf[R]{fn: fn}
	tk, err := sp.route(ctx, access, t.run, nil)
	if err != nil {
		return nil, err
	}
	t.Ticket = tk
	return t, nil
}
