package shard

import (
	"strconv"

	"github.com/orderedstm/ostm/stm/obs"
)

// shardObs bundles the router's observability instruments. Handles
// are resolved once at New, so the fence and checkpoint paths touch
// plain pointers — never the registry. A nil *shardObs (no
// Config.Obs) keeps every instrumented path on one predictable
// branch.
type shardObs struct {
	fenceWait []*obs.Histogram // per shard: ns a fence held that shard's frontier
	ckptDur   *obs.Histogram   // ns per committed sharded checkpoint
	trace     *obs.TraceRing   // sampled lifecycle events (may be nil)
}

// newShardObs registers the router-level metric families on r and
// returns the resolved handles. Per-shard engine lifecycle families
// come from the shard pipelines themselves (each gets a
// shard-labeled view of r); the router adds only what no single
// shard can see — cross-shard traffic, the global frontier, fence
// holds, and checkpoint duration.
func newShardObs(r *obs.Registry, sp *ShardedPipeline) *shardObs {
	so := &shardObs{trace: r.Trace()}
	so.ckptDur = r.DurationHistogram("ostm_checkpoint_seconds",
		"wall time of one sharded checkpoint, freeze to sink commit")
	so.fenceWait = make([]*obs.Histogram, sp.shards)
	for s := range so.fenceWait {
		so.fenceWait[s] = r.With("shard", strconv.Itoa(s)).DurationHistogram(
			"ostm_fence_wait_seconds",
			"time a cross-shard fence held this shard's commit frontier (frontier wait + rendezvous + body)")
	}
	r.CounterFunc("ostm_cross_txns_total",
		"accepted transactions that involved more than one shard",
		func() float64 { return float64(sp.ncross.Load()) })
	if sp.dr != nil {
		r.GaugeFunc("ostm_global_frontier_age",
			"contiguous global commit frontier: every age below it committed on all its shards",
			func() float64 { return float64(sp.dr.frontier()) })
	}
	return so
}
