package stm_test

import (
	"runtime"
	"testing"
	"testing/quick"

	"github.com/orderedstm/ostm/internal/rng"
	"github.com/orderedstm/ostm/stm"
)

// TestQuickACOEquivalence is the property-based form of the central
// oracle: for arbitrary seeds, a random transactional program run by
// a randomly chosen ordered engine with a random worker count leaves
// memory identical to the sequential run.
func TestQuickACOEquivalence(t *testing.T) {
	ordered := stm.OrderedAlgorithms()
	prop := func(seed uint64, algPick, workerPick uint8) bool {
		alg := ordered[int(algPick)%len(ordered)]
		workers := []int{2, 3, 5, 8}[workerPick%4]
		vars := stm.NewVars(10)
		body := yieldingBody(seed, vars, 6)

		mustRun(t, stm.Config{Algorithm: stm.Sequential}, 60, body)
		want := snapshot(vars)

		resetVars(vars)
		mustRun(t, stm.Config{Algorithm: alg, Workers: workers}, 60, body)
		got := snapshot(vars)
		for i := range want {
			if got[i] != want[i] {
				t.Logf("alg=%v workers=%d seed=%d: var %d %#x != %#x",
					alg, workers, seed, i, got[i], want[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotonicCounter: arbitrary per-age increments must sum
// exactly, under an arbitrary ordered engine.
func TestQuickMonotonicCounter(t *testing.T) {
	ordered := stm.OrderedAlgorithms()
	prop := func(seed uint64, algPick uint8) bool {
		alg := ordered[int(algPick)%len(ordered)]
		v := stm.NewVar(0)
		r := rng.New(seed)
		increments := make([]uint64, 80)
		var want uint64
		for i := range increments {
			increments[i] = r.Uint64n(1000)
			want += increments[i]
		}
		mustRun(t, stm.Config{Algorithm: alg, Workers: 4}, len(increments), func(tx stm.Tx, age int) {
			tx.Write(v, tx.Read(v)+increments[age])
			runtime.Gosched()
		})
		return v.Load() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSwapChain: each transaction swaps two random variables; the
// multiset of values is invariant under swaps, and the exact
// arrangement must match the sequential order.
func TestQuickSwapChain(t *testing.T) {
	prop := func(seed uint64) bool {
		const nVars, nTx = 8, 100
		vars := stm.NewVars(nVars)
		for i := range vars {
			vars[i].Store(uint64(i) * 111)
		}
		body := func(tx stm.Tx, age int) {
			r := rng.New(seed ^ rng.Mix64(uint64(age)))
			i, j := r.Intn(nVars), r.Intn(nVars)
			a, b := tx.Read(&vars[i]), tx.Read(&vars[j])
			tx.Write(&vars[i], b)
			tx.Write(&vars[j], a)
			runtime.Gosched()
		}
		mustRun(t, stm.Config{Algorithm: stm.Sequential}, nTx, body)
		want := snapshot(vars)
		for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal} {
			for i := range vars {
				vars[i].Store(uint64(i) * 111)
			}
			mustRun(t, stm.Config{Algorithm: alg, Workers: 6}, nTx, body)
			got := snapshot(vars)
			for k := range want {
				if got[k] != want[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestFaultDuringReachableReexecution: a body that faults only when a
// guard is in a specific committed state must surface the fault even
// if it first appears during a validator re-execution.
func TestFaultDuringReachableReexecution(t *testing.T) {
	// Deterministic fault at a fixed age: whatever path executes age
	// 25 (worker or validator re-execution), the fault is genuine and
	// must be reported once.
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL} {
		v := stm.NewVar(0)
		ex, err := stm.NewExecutor(stm.Config{Algorithm: alg, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		_, err = ex.Run(60, func(tx stm.Tx, age int) {
			tx.Write(v, tx.Read(v)+1)
			runtime.Gosched()
			if age == 25 {
				var zero int
				_ = 1 / zero // deterministic division by zero
			}
		})
		if err == nil {
			t.Fatalf("%v: fault swallowed", alg)
		}
	}
}

// TestOrderedCommitOrderObserved records commit order via a side
// channel (safe: one append per final commit through an ordered
// variable read) and checks it is exactly 0..n-1.
func TestOrderedCommitOrderObserved(t *testing.T) {
	const n = 120
	for _, alg := range stm.OrderedAlgorithms() {
		chain := stm.NewVar(0)
		violated := stm.NewVar(0)
		mustRun(t, stm.Config{Algorithm: alg, Workers: 6}, n, func(tx stm.Tx, age int) {
			// chain must equal age at commit time: each transaction
			// increments it by exactly one in order.
			if tx.Read(chain) != uint64(age) {
				tx.Write(violated, 1)
			}
			tx.Write(chain, uint64(age)+1)
			runtime.Gosched()
		})
		if chain.Load() != n {
			t.Fatalf("%v: chain = %d, want %d", alg, chain.Load(), n)
		}
		if violated.Load() != 0 {
			t.Fatalf("%v: a transaction observed an out-of-order chain value", alg)
		}
	}
}

// TestHugeWindowAndTinyTable: extreme configurations must still be
// correct.
func TestHugeWindowAndTinyTable(t *testing.T) {
	vars := stm.NewVars(16)
	body := yieldingBody(3, vars, 5)
	mustRun(t, stm.Config{Algorithm: stm.Sequential}, 150, body)
	want := snapshot(vars)
	for _, alg := range []stm.Algorithm{stm.OWB, stm.OUL, stm.OULSteal} {
		resetVars(vars)
		mustRun(t, stm.Config{
			Algorithm: alg, Workers: 4, Window: 10000, TableBits: 4, SpinBudget: 2,
		}, 150, body)
		got := snapshot(vars)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: diverged at var %d", alg, i)
			}
		}
	}
}
