package stm_test

import (
	"errors"
	"testing"
	"time"

	"github.com/orderedstm/ostm/stm"
)

// TestTicketErrPeek: Err never blocks, reports resolved=false while in
// flight, and returns the Wait outcome once resolved.
func TestTicketErrPeek(t *testing.T) {
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OUL, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	gate := stm.NewVar(0)
	tk, err := p.Submit(func(tx stm.Tx, age int) {
		tx.Read(gate)
		<-release
	})
	if err != nil {
		t.Fatal(err)
	}
	if err, ok := tk.Err(); ok || err != nil {
		t.Fatalf("in-flight Err = %v, %v; want nil, false", err, ok)
	}
	close(release)
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if err, ok := tk.Err(); !ok || err != nil {
		t.Fatalf("resolved Err = %v, %v; want nil, true", err, ok)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineWaitFrontier: WaitFrontier observes the exact commit
// prefix for cooperative, blocked, lite and sequential modes.
func TestPipelineWaitFrontier(t *testing.T) {
	for _, alg := range []stm.Algorithm{stm.OUL, stm.OrderedNOrec, stm.STMLite, stm.Sequential} {
		t.Run(alg.String(), func(t *testing.T) {
			p, err := stm.NewPipeline(stm.Config{Algorithm: alg, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			const n = 64
			v := stm.NewVar(0)
			for i := 0; i < n; i++ {
				if _, err := p.Submit(func(tx stm.Tx, age int) {
					tx.Write(v, tx.Read(v)+1)
				}); err != nil {
					t.Fatal(err)
				}
			}
			if !p.WaitFrontier(n) {
				t.Fatal("WaitFrontier returned false on a healthy stream")
			}
			// All n ages committed; for write-through and settled
			// write-back engines the memory reflects it. (STMLite's
			// write-backs may still be landing; Drain settles them.)
			if err := p.Drain(); err != nil {
				t.Fatal(err)
			}
			if got := v.Load(); got != n {
				t.Fatalf("v = %d after frontier %d", got, n)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPipelineStop: a forced stop resolves outstanding tickets as
// *Stopped, rejects new submissions, and is reported by Close and
// Fault.
func TestPipelineStop(t *testing.T) {
	p, err := stm.NewPipeline(stm.Config{Algorithm: stm.OWB, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Fault() != nil {
		t.Fatal("fresh pipeline reports a fault")
	}
	release := make(chan struct{})
	blocker, err := p.Submit(func(tx stm.Tx, age int) { <-release })
	if err != nil {
		t.Fatal(err)
	}
	var parked []*stm.Ticket
	for i := 0; i < 20; i++ {
		tk, err := p.Submit(func(tx stm.Tx, age int) {})
		if err != nil {
			t.Fatal(err)
		}
		parked = append(parked, tk)
	}
	p.Stop("shutdown requested")
	close(release) // the in-flight body may still finish; that is fine
	var st *stm.Stopped
	for i, tk := range parked {
		werr := tk.Wait() // must not hang
		if werr != nil && !errors.As(werr, &st) {
			t.Fatalf("ticket %d resolved with %v", i, werr)
		}
	}
	_ = blocker
	if _, err := p.Submit(func(stm.Tx, int) {}); err == nil {
		t.Fatal("Submit accepted after Stop")
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close reported nil after Stop")
	}
	f := p.Fault()
	if f == nil || f.Value != "shutdown requested" {
		t.Fatalf("Fault() = %v", f)
	}
	// WaitFrontier must not hang on a stopped pipeline.
	done := make(chan bool, 1)
	go func() { done <- p.WaitFrontier(1 << 30) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("WaitFrontier reported an unreachable frontier")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitFrontier hung on a stopped pipeline")
	}
}

// TestAccessDeclaration covers the Access API surface.
func TestAccessDeclaration(t *testing.T) {
	v1, v2 := stm.NewVar(0), stm.NewVar(0)
	a := stm.Touches(v1, v2)
	if a.All() {
		t.Fatal("Touches reports All")
	}
	if vs := a.Vars(); len(vs) != 2 || vs[0] != v1 || vs[1] != v2 {
		t.Fatalf("Vars() = %v", vs)
	}
	all := stm.TouchesAll()
	if !all.All() || all.Vars() != nil {
		t.Fatal("TouchesAll malformed")
	}
	var zero stm.Access
	if zero.All() || len(zero.Vars()) != 0 {
		t.Fatal("zero Access malformed")
	}
}

// TestFaultUnwrap: errors.As reaches an error-typed panic value
// through the Fault.
func TestFaultUnwrap(t *testing.T) {
	sentinel := errors.New("bad business rule")
	ex, err := stm.NewExecutor(stm.Config{Algorithm: stm.OUL, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := ex.Run(10, func(tx stm.Tx, age int) {
		if age == 5 {
			panic(sentinel)
		}
	})
	if !errors.Is(rerr, sentinel) {
		t.Fatalf("run error %v does not unwrap to the sentinel", rerr)
	}
}
