package stm

import (
	"sync"
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
	"github.com/orderedstm/ostm/stm/obs"
)

// This file is the shared execution core behind both front-ends:
// Executor.Run (one-shot batch) and Pipeline (open-ended stream). It
// is the paper's thread execution model (Algorithm 5) — a pool of
// workers speculatively executes transactions; for the cooperative
// engines a flat-combining validator role commits exposed transactions
// strictly in age order, re-executing reachable failures inline, and a
// cleaner step reclaims metadata; a run-ahead window throttles workers
// that get too far ahead of the commit frontier — with two batch-era
// assumptions removed: the loop has no fixed transaction count, and
// every age carries its own Body.
//
// The steady-state path is allocation-free: each loop goroutine owns a
// wctx bundling a descriptor pool (meta.TxnPool — recycled descriptors
// with generation stamps) and a padded stats cell, and the commit ring
// embeds its cells in place (a seq-stamped slot per age instead of a
// freshly allocated exposedCell per expose).

// feed supplies work to the shared run-loop and observes its progress.
// batchFeed (executor.go) serves a fixed count of one shared body;
// stream (pipeline.go) serves an unbounded sequence of heterogeneous
// submissions.
type feed interface {
	// claim hands the calling worker the next age and its body. It may
	// block while more work can still arrive; a blocked claim must
	// return when stop() becomes true. ok=false tells the worker to
	// exit: the feed is exhausted (batch done, or stream closed and
	// fully claimed).
	claim(stop func() bool) (age uint64, body Body, ok bool)
	// committed reports that age reached its final commit. Cooperative
	// and blocked engines report in strict age order; unordered engines
	// report in commit order, which can differ from age order.
	committed(age uint64)
	// halted reports that the loop stopped before draining (a body
	// faulted). The feed must wake anything blocked in claim or in a
	// producer-side wait.
	halted(f *Fault)
}

// ringSlot holds one exposed transaction in the commit ring, embedded
// in place. stamp is age+1 while the slot is full (0 empty/consumed);
// it is the only synchronization between the exposing worker and the
// validator: the worker writes txn/body before storing the stamp, the
// validator reads them only after loading a matching stamp, and clears
// the slot before advancing the commit frontier — the frontier advance
// is what lets a later age's worker write the slot again, so the
// plain-field accesses never overlap. The body rides along so the
// validator can re-execute a reachable failure without assuming every
// age runs the same code.
type ringSlot struct {
	stamp atomic.Uint64
	txn   meta.Txn
	body  Body
}

// wctx is one loop goroutine's execution context: its descriptor
// source and its stats cell. Pools and cells are not shared across
// goroutines (that is the point); descriptors themselves circulate
// freely — the validator retires attempts that workers allocated, and
// the engine-side depot rebalances the freelists.
type wctx struct {
	src  meta.TxnPool
	cell *meta.StatsCell
}

// freshSource is the no-recycling descriptor source: one fresh
// descriptor per attempt (engines without pool support, and the
// Config.FreshDescriptors escape hatch).
type freshSource struct{ eng meta.Engine }

func (f freshSource) NewTxn(age uint64) meta.Txn { return f.eng.NewTxn(age) }
func (f freshSource) Retire(meta.Txn)            {}

// loop is the engine-driving state shared by one batch run or one
// pipeline. The commit ring covers the in-flight window only, so its
// size is independent of how many transactions will ever flow through.
type loop struct {
	cfg     Config
	eng     meta.Engine
	mode    meta.Mode
	order   *meta.Order
	stats   *meta.Stats
	feed    feed
	base    uint64 // first age of the stream (Config.FirstAge; 0 for batch)
	workers int

	stopf   func() bool    // hoisted l.stop closure (avoids per-call method-value allocs)
	trace   *obs.TraceRing // sampled lifecycle trace; nil without Config.Obs
	ring    []ringSlot
	mask    uint64
	vtok    atomic.Bool
	gate    atomic.Bool
	stopped atomic.Bool
	fault   atomic.Pointer[Fault]
	kick    chan struct{}
}

// newLoop wires a loop over a fresh engine. span bounds how many ages
// can be in flight at once (window + one in-progress age per worker,
// plus slack); the cooperative commit ring is sized to cover it.
// ringCap, when nonzero, caps the ring at the next power of two ≥
// ringCap (a batch of n transactions never needs more than n slots).
func newLoop(cfg Config, eng meta.Engine, order *meta.Order, stats *meta.Stats, f feed, span, ringCap uint64) *loop {
	workers := cfg.Workers
	if eng.Mode() == meta.ModeLite && workers > 1 {
		workers-- // the TCM goroutine counts as one of the paper's threads
	}
	l := &loop{
		cfg:     cfg,
		eng:     eng,
		mode:    eng.Mode(),
		order:   order,
		stats:   stats,
		feed:    f,
		base:    cfg.FirstAge,
		workers: workers,
		kick:    make(chan struct{}, 1),
	}
	l.stopf = l.stop
	if l.mode == meta.ModeCooperative {
		size := uint64(1)
		for size < 4*span {
			size <<= 1
		}
		if ringCap != 0 && size > ringCap {
			rounded := uint64(1)
			for rounded < ringCap {
				rounded <<= 1
			}
			size = rounded
		}
		l.ring = make([]ringSlot, size)
		l.mask = size - 1
	}
	return l
}

func (l *loop) stop() bool { return l.stopped.Load() }

// newCtx builds the per-goroutine execution context: a recycling
// descriptor pool when the engine supports one (and the configuration
// does not opt out), plus a fresh stats cell.
func (l *loop) newCtx() *wctx {
	w := &wctx{cell: l.stats.NewCell()}
	if pe, ok := l.eng.(meta.PoolEngine); ok && !l.cfg.FreshDescriptors {
		w.src = pe.NewPool()
	} else {
		w.src = freshSource{eng: l.eng}
	}
	return w
}

// fail records the first fault, stops the loop, and wakes everything
// that could be waiting: order waiters (including blocked engines
// parked in WaitTurn, via Halt), the validator, and the feed.
func (l *loop) fail(f *Fault) {
	l.fault.CompareAndSwap(nil, f)
	l.stopped.Store(true)
	l.order.Halt()
	l.kickMain()
	l.feed.halted(l.fault.Load())
}

func (l *loop) kickMain() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// spawnWorkers starts the worker pool; callers wait on wg.
func (l *loop) spawnWorkers(wg *sync.WaitGroup) {
	for w := 0; w < l.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.worker()
		}()
	}
}

// validatorLoop keeps the validator role alive on the calling
// goroutine so commits never stall while all workers sit in the
// throttle window. drained reports that every age the feed will ever
// produce has committed. Only cooperative engines need it.
//
// The loop must never park while a committable cell sits in the ring:
// validate() can lose the token to a worker whose own scan read the
// ring just before the frontier cell was exposed — that worker finds
// nothing, the exposing worker's validate() loses the same CAS, and
// the expose's kick was already consumed by the receive that led
// here. Parking then would strand the frontier forever (every later
// commit needs this one first), so re-poll until the token frees up.
func (l *loop) validatorLoop(drained func() bool) {
	w := l.newCtx()
	spin := 0
	for !l.stop() && !drained() {
		l.validate(w)
		if l.stop() || drained() {
			return
		}
		if l.committable() {
			spin++
			meta.Pause(spin + 3) // token contended; retry, yielding the CPU
			continue
		}
		spin = 0
		<-l.kick
	}
}

// committable reports whether the age at the commit frontier is
// exposed in the ring (the validator has work). Exposes store the
// stamp after the fields and kick afterwards, so a false result here
// followed by a park on the kick channel cannot miss work: any later
// expose leaves either the stamp (seen by the next poll) or a kick
// token (unparking us).
func (l *loop) committable() bool {
	if l.mask == 0 {
		return false
	}
	next := l.order.Committed()
	return l.ring[next&l.mask].stamp.Load() == next+1
}

// worker is Algorithm 5's per-thread loop.
func (l *loop) worker() {
	defer l.kickMain() // wake the validator loop on exit
	w := l.newCtx()
	window := uint64(l.cfg.Window)
	for !l.stop() {
		age, body, ok := l.feed.claim(l.stopf)
		if !ok {
			return
		}
		if l.mode == meta.ModeCooperative && age >= l.base+window {
			// Throttle: stay within the run-ahead window of the commit
			// frontier (Algorithm 5 lines 18–24).
			l.order.WaitReachable(age-window, l.stopf)
		}
		if !l.runOne(w, age, body) {
			return
		}
		if l.mode == meta.ModeCooperative {
			l.validate(w) // flat combining: opportunistically take the role
		}
	}
}

// runOne drives one age to its exposed (cooperative) or committed
// (other modes) state, retrying aborted attempts with recycled
// descriptors. Returns false if the loop stopped.
func (l *loop) runOne(w *wctx, age uint64, body Body) bool {
	for attempt := 0; ; attempt++ {
		if l.stop() {
			return false
		}
		for spin := 0; l.gate.Load() && !l.stop(); spin++ {
			meta.Pause(spin) // validator quiesce in progress
		}
		if attempt > 0 {
			w.cell.Retry()
			// Algorithm 5 line 18: a transaction aborted more than
			// LIMIT times waits for the commit frontier to close in
			// (first to a small gap, then all the way to
			// reachability), which starves out retry storms under
			// heavy conflicts. Blocked and lite engines get the same
			// treatment (the bounded-buffer stalling of the paper's
			// blocking baselines).
			switch {
			case l.mode == meta.ModeUnordered:
				// no order to wait on
			case l.mode == meta.ModeLite:
				// A denied STMLite transaction re-executes right at
				// the commit frontier: grants are in age order anyway,
				// and retrying far from the frontier just feeds the
				// signature false-conflict loop.
				l.order.WaitReachable(age, l.stopf)
			case attempt >= 6:
				l.order.WaitReachable(age, l.stopf)
			case attempt >= 3:
				gap := uint64(2 * l.workers)
				if age > l.base+gap {
					l.order.WaitReachable(age-gap, l.stopf)
				}
			}
		}
		if l.trace.Sampled(age) {
			l.trace.Record(age, obs.StageExecute)
		}
		txn := w.src.NewTxn(age)
		if !l.sandbox(w, txn, body) {
			continue
		}
		if !txn.TryCommit() {
			w.src.Retire(txn)
			continue
		}
		if l.mode == meta.ModeCooperative {
			slot := &l.ring[age&l.mask]
			slot.txn, slot.body = txn, body
			slot.stamp.Store(age + 1)
			l.kickMain()
		} else {
			w.cell.Commit()
			l.feed.committed(age)
			w.src.Retire(txn)
		}
		return true
	}
}

// sandbox runs the body, containing speculative faults: an abort
// signal or a doomed/invalid snapshot leads to a retry; anything else
// is a genuine fault and stops the loop. Abandoned attempts are
// retired into the calling goroutine's pool.
func (l *loop) sandbox(w *wctx, txn meta.Txn, body Body) (ok bool) {
	w.cell.Start()
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		ok = false
		// Classify before abandoning: AbandonAttempt dooms the attempt,
		// so the Doomed probe must see the pre-abandon state.
		if _, isAbort := meta.AbortCause(rec); isAbort || txn.Doomed() {
			txn.AbandonAttempt()
			w.src.Retire(txn)
			return
		}
		if rv, can := txn.(meta.Revalidator); can && !rv.ReadSetValid() {
			txn.AbandonAttempt()
			w.src.Retire(txn)
			return
		}
		if l.cfg.RetryUnknownPanics {
			txn.AbandonAttempt()
			w.src.Retire(txn)
			return
		}
		txn.AbandonAttempt()
		fault := &Fault{Age: txn.Age(), Value: rec}
		w.src.Retire(txn)
		l.fail(fault)
	}()
	body(txn, int(txn.Age()))
	return true
}

// validate is the flat-combining validator role (Algorithm 5 lines
// 2–17): whoever wins the token commits exposed transactions in age
// order; a commit-pending transaction that fails its final validation
// is re-executed inline — it is reachable, so the re-execution wins
// every conflict and commits.
func (l *loop) validate(w *wctx) {
	if !l.vtok.CompareAndSwap(false, true) {
		return
	}
	defer l.vtok.Store(false)
	for !l.stop() {
		next := l.order.Committed()
		slot := &l.ring[next&l.mask]
		if slot.stamp.Load() != next+1 {
			return // not exposed yet (or past the end of the stream)
		}
		txn, body := slot.txn, slot.body
		slot.txn, slot.body = nil, nil
		slot.stamp.Store(0)
		if txn.Commit() {
			l.order.Complete(next)
			w.cell.Commit()
			txn.Cleanup() // cleaner role
			w.src.Retire(txn)
			l.feed.committed(next)
			continue
		}
		w.src.Retire(txn) // the exposed attempt aborted; re-drive the age
		l.reexecute(w, next, body)
	}
}

// reexecute drives the reachable transaction at the given age to
// commit, gating new exposes (quiesce) if higher-age transactions keep
// invalidating it; see DESIGN.md §5.
func (l *loop) reexecute(w *wctx, age uint64, body Body) {
	gated := false
	defer func() {
		if gated {
			l.gate.Store(false)
		}
	}()
	for attempt := 0; !l.stop(); attempt++ {
		if attempt >= l.cfg.QuiesceAfter && !gated {
			gated = true
			l.gate.Store(true)
			w.cell.Quiesce()
		}
		w.cell.Retry()
		txn := w.src.NewTxn(age)
		if !l.sandbox(w, txn, body) {
			continue
		}
		if !txn.TryCommit() {
			w.src.Retire(txn)
			continue
		}
		if txn.Commit() {
			l.order.Complete(age)
			w.cell.Commit()
			txn.Cleanup()
			w.src.Retire(txn)
			l.feed.committed(age)
			return
		}
		w.src.Retire(txn)
	}
}
