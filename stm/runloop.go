package stm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/orderedstm/ostm/internal/meta"
)

// This file is the shared execution core behind both front-ends:
// Executor.Run (one-shot batch) and Pipeline (open-ended stream). It
// is the paper's thread execution model (Algorithm 5) — a pool of
// workers speculatively executes transactions; for the cooperative
// engines a flat-combining validator role commits exposed transactions
// strictly in age order, re-executing reachable failures inline, and a
// cleaner step reclaims metadata; a run-ahead window throttles workers
// that get too far ahead of the commit frontier — with two batch-era
// assumptions removed: the loop has no fixed transaction count, and
// every age carries its own Body.

// feed supplies work to the shared run-loop and observes its progress.
// batchFeed (executor.go) serves a fixed count of one shared body;
// stream (pipeline.go) serves an unbounded sequence of heterogeneous
// submissions.
type feed interface {
	// claim hands the calling worker the next age and its body. It may
	// block while more work can still arrive; a blocked claim must
	// return when stop() becomes true. ok=false tells the worker to
	// exit: the feed is exhausted (batch done, or stream closed and
	// fully claimed).
	claim(stop func() bool) (age uint64, body Body, ok bool)
	// committed reports that age reached its final commit. Cooperative
	// and blocked engines report in strict age order; unordered engines
	// report in commit order, which can differ from age order.
	committed(age uint64)
	// halted reports that the loop stopped before draining (a body
	// faulted). The feed must wake anything blocked in claim or in a
	// producer-side wait.
	halted(f *Fault)
}

// exposedCell holds one exposed transaction in the commit ring; the
// age tag detects slot reuse. The body rides along so the validator
// can re-execute a reachable failure without assuming every age runs
// the same code.
type exposedCell struct {
	age  uint64
	txn  meta.Txn
	body Body
}

// loop is the engine-driving state shared by one batch run or one
// pipeline. The commit ring covers the in-flight window only, so its
// size is independent of how many transactions will ever flow through.
type loop struct {
	cfg     Config
	eng     meta.Engine
	mode    meta.Mode
	order   *meta.Order
	stats   *meta.Stats
	feed    feed
	base    uint64 // first age of the stream (Config.FirstAge; 0 for batch)
	workers int

	ring    []atomic.Pointer[exposedCell]
	mask    uint64
	vtok    atomic.Bool
	gate    atomic.Bool
	stopped atomic.Bool
	fault   atomic.Pointer[Fault]
	kick    chan struct{}
}

// newLoop wires a loop over a fresh engine. span bounds how many ages
// can be in flight at once (window + one in-progress age per worker,
// plus slack); the cooperative commit ring is sized to cover it.
// ringCap, when nonzero, caps the ring at the next power of two ≥
// ringCap (a batch of n transactions never needs more than n slots).
func newLoop(cfg Config, eng meta.Engine, order *meta.Order, stats *meta.Stats, f feed, span, ringCap uint64) *loop {
	workers := cfg.Workers
	if eng.Mode() == meta.ModeLite && workers > 1 {
		workers-- // the TCM goroutine counts as one of the paper's threads
	}
	l := &loop{
		cfg:     cfg,
		eng:     eng,
		mode:    eng.Mode(),
		order:   order,
		stats:   stats,
		feed:    f,
		base:    cfg.FirstAge,
		workers: workers,
		kick:    make(chan struct{}, 1),
	}
	if l.mode == meta.ModeCooperative {
		size := uint64(1)
		for size < 4*span {
			size <<= 1
		}
		if ringCap != 0 && size > ringCap {
			rounded := uint64(1)
			for rounded < ringCap {
				rounded <<= 1
			}
			size = rounded
		}
		l.ring = make([]atomic.Pointer[exposedCell], size)
		l.mask = size - 1
	}
	return l
}

func (l *loop) stop() bool { return l.stopped.Load() }

// fail records the first fault, stops the loop, and wakes everything
// that could be waiting: order waiters (including blocked engines
// parked in WaitTurn, via Halt), the validator, and the feed.
func (l *loop) fail(f *Fault) {
	l.fault.CompareAndSwap(nil, f)
	l.stopped.Store(true)
	l.order.Halt()
	l.kickMain()
	l.feed.halted(l.fault.Load())
}

func (l *loop) kickMain() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// spawnWorkers starts the worker pool; callers wait on wg.
func (l *loop) spawnWorkers(wg *sync.WaitGroup) {
	for w := 0; w < l.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.worker()
		}()
	}
}

// validatorLoop keeps the validator role alive on the calling
// goroutine so commits never stall while all workers sit in the
// throttle window. drained reports that every age the feed will ever
// produce has committed. Only cooperative engines need it.
//
// The loop must never park while a committable cell sits in the ring:
// validate() can lose the token to a worker whose own scan read the
// ring just before the frontier cell was exposed — that worker finds
// nothing, the exposing worker's validate() loses the same CAS, and
// the expose's kick was already consumed by the receive that led
// here. Parking then would strand the frontier forever (every later
// commit needs this one first), so re-poll until the token frees up.
func (l *loop) validatorLoop(drained func() bool) {
	for !l.stop() && !drained() {
		l.validate()
		if l.stop() || drained() {
			return
		}
		if l.committable() {
			runtime.Gosched() // token contended; retry, yielding the CPU
			continue
		}
		<-l.kick
	}
}

// committable reports whether the age at the commit frontier is
// exposed in the ring (the validator has work). Exposes store the
// cell before kicking, so a false result here followed by a park on
// the kick channel cannot miss work: any later expose leaves either
// the cell (seen by the next poll) or a kick token (unparking us).
func (l *loop) committable() bool {
	if l.mask == 0 {
		return false
	}
	next := l.order.Committed()
	cell := l.ring[next&l.mask].Load()
	return cell != nil && cell.age == next
}

// worker is Algorithm 5's per-thread loop.
func (l *loop) worker() {
	defer l.kickMain() // wake the validator loop on exit
	window := uint64(l.cfg.Window)
	for !l.stop() {
		age, body, ok := l.feed.claim(l.stop)
		if !ok {
			return
		}
		if l.mode == meta.ModeCooperative && age >= l.base+window {
			// Throttle: stay within the run-ahead window of the commit
			// frontier (Algorithm 5 lines 18–24).
			l.order.WaitReachable(age-window, l.stop)
		}
		if !l.runOne(age, body) {
			return
		}
		if l.mode == meta.ModeCooperative {
			l.validate() // flat combining: opportunistically take the role
		}
	}
}

// runOne drives one age to its exposed (cooperative) or committed
// (other modes) state, retrying aborted attempts with fresh
// descriptors. Returns false if the loop stopped.
func (l *loop) runOne(age uint64, body Body) bool {
	for attempt := 0; ; attempt++ {
		if l.stop() {
			return false
		}
		for l.gate.Load() && !l.stop() {
			runtime.Gosched() // validator quiesce in progress
		}
		if attempt > 0 {
			l.stats.Retry()
			// Algorithm 5 line 18: a transaction aborted more than
			// LIMIT times waits for the commit frontier to close in
			// (first to a small gap, then all the way to
			// reachability), which starves out retry storms under
			// heavy conflicts. Blocked and lite engines get the same
			// treatment (the bounded-buffer stalling of the paper's
			// blocking baselines).
			switch {
			case l.mode == meta.ModeUnordered:
				// no order to wait on
			case l.mode == meta.ModeLite:
				// A denied STMLite transaction re-executes right at
				// the commit frontier: grants are in age order anyway,
				// and retrying far from the frontier just feeds the
				// signature false-conflict loop.
				l.order.WaitReachable(age, l.stop)
			case attempt >= 6:
				l.order.WaitReachable(age, l.stop)
			case attempt >= 3:
				gap := uint64(2 * l.workers)
				if age > l.base+gap {
					l.order.WaitReachable(age-gap, l.stop)
				}
			}
		}
		txn := l.eng.NewTxn(age)
		if !l.sandbox(txn, body) {
			continue
		}
		if !txn.TryCommit() {
			continue
		}
		if l.mode == meta.ModeCooperative {
			l.ring[age&l.mask].Store(&exposedCell{age: age, txn: txn, body: body})
			l.kickMain()
		} else {
			l.stats.Commit()
			l.feed.committed(age)
		}
		return true
	}
}

// sandbox runs the body, containing speculative faults: an abort
// signal or a doomed/invalid snapshot leads to a retry; anything else
// is a genuine fault and stops the loop.
func (l *loop) sandbox(txn meta.Txn, body Body) (ok bool) {
	l.stats.Start()
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		ok = false
		if _, isAbort := meta.AbortCause(rec); isAbort || txn.Doomed() {
			txn.AbandonAttempt()
			return
		}
		if rv, can := txn.(meta.Revalidator); can && !rv.ReadSetValid() {
			txn.AbandonAttempt()
			return
		}
		if l.cfg.RetryUnknownPanics {
			txn.AbandonAttempt()
			return
		}
		txn.AbandonAttempt()
		l.fail(&Fault{Age: txn.Age(), Value: rec})
	}()
	body(txn, int(txn.Age()))
	return true
}

// validate is the flat-combining validator role (Algorithm 5 lines
// 2–17): whoever wins the token commits exposed transactions in age
// order; a commit-pending transaction that fails its final validation
// is re-executed inline — it is reachable, so the re-execution wins
// every conflict and commits.
func (l *loop) validate() {
	if !l.vtok.CompareAndSwap(false, true) {
		return
	}
	defer l.vtok.Store(false)
	for !l.stop() {
		next := l.order.Committed()
		cell := l.ring[next&l.mask].Load()
		if cell == nil || cell.age != next {
			return // not exposed yet (or past the end of the stream)
		}
		if cell.txn.Commit() {
			l.order.Complete(next)
			l.stats.Commit()
			cell.txn.Cleanup() // cleaner role
			l.feed.committed(next)
			continue
		}
		l.reexecute(next, cell.body)
	}
}

// reexecute drives the reachable transaction at the given age to
// commit, gating new exposes (quiesce) if higher-age transactions keep
// invalidating it; see DESIGN.md §5.
func (l *loop) reexecute(age uint64, body Body) {
	gated := false
	defer func() {
		if gated {
			l.gate.Store(false)
		}
	}()
	for attempt := 0; !l.stop(); attempt++ {
		if attempt >= l.cfg.QuiesceAfter && !gated {
			gated = true
			l.gate.Store(true)
			l.stats.Quiesce()
		}
		l.stats.Retry()
		txn := l.eng.NewTxn(age)
		if !l.sandbox(txn, body) {
			continue
		}
		if !txn.TryCommit() {
			continue
		}
		if txn.Commit() {
			l.ring[age&l.mask].Store(&exposedCell{age: age, txn: txn, body: body})
			l.order.Complete(age)
			l.stats.Commit()
			txn.Cleanup()
			l.feed.committed(age)
			return
		}
	}
}
