package stm

// Access declares which transactional variables a submission may touch
// before it runs. The paper's model executes bodies blind — conflicts
// are discovered, not declared — but partition-parallel front-ends
// (stm/shard) need the touched set up front to route a transaction to
// the pipelines owning its data, exactly as queue-oriented and
// deterministic systems (QueCC, Calvin) require declared read/write
// sets for partitioned scheduling.
//
// A declaration is a superset promise: the body may touch fewer
// variables than declared, but touching an undeclared variable whose
// partition was not reserved is a fault (the sharded executor stops
// rather than silently break isolation). Declaring more than needed
// costs parallelism (extra partitions rendezvous), never correctness.
//
// The zero Access declares nothing; a body submitted with it may not
// touch any shared variable at all (useful for pure control commands).
type Access struct {
	vars []*Var
	all  bool
}

// Touches declares that the transaction may read or write exactly the
// given variables. The slice is retained; callers must not mutate it
// after submission.
func Touches(vs ...*Var) Access { return Access{vars: vs} }

// TouchesAll declares that the transaction may touch any variable.
// A sharded executor treats it as involving every partition — a
// global barrier transaction — so it serializes against everything
// and should be reserved for occasional whole-state work (snapshots,
// audits, schema-style changes).
func TouchesAll() Access { return Access{all: true} }

// All reports whether the declaration covers every variable.
func (a Access) All() bool { return a.all }

// Vars returns the declared variables (nil for TouchesAll or an empty
// declaration). The returned slice is the declaration's backing store;
// treat it as read-only.
func (a Access) Vars() []*Var { return a.vars }
