package stm

import (
	"context"
	"errors"
	"fmt"
)

// ErrClosed is returned by Pipeline.Submit after Close has been
// called.
var ErrClosed = errors.New("stm: pipeline closed")

// ErrStopped is the sentinel a *Stopped resolution matches through
// errors.Is: callers that only care whether the pipeline stopped —
// not which transaction stopped it — test errors.Is(err, ErrStopped)
// instead of type-asserting *Stopped.
var ErrStopped = errors.New("stm: pipeline stopped")

// ErrCanceled is the sentinel wrapped by every context-cancellation
// error the package returns (SubmitCtx, WaitCtx and their sharded
// equivalents): errors.Is(err, ErrCanceled) distinguishes "the caller
// gave up" from every transaction outcome. The returned errors also
// wrap the context's own error, so errors.Is(err, context.Canceled) /
// context.DeadlineExceeded keep working.
//
// Cancellation never loses an already-assigned age: SubmitCtx only
// observes the context while the submission can still be withdrawn
// without leaving a gap in the predefined order (the backpressure
// wait), and WaitCtx abandons only the caller's wait — the ticket
// stays registered and resolves with the transaction's real outcome.
var ErrCanceled = errors.New("stm: canceled")

// Stopped is the error resolving tickets whose age can no longer
// commit because the pipeline stopped on a fault, and the error
// Submit returns once the pipeline has stopped. Fault identifies the
// transaction that stopped the stream. errors.As(err, **Fault) works
// through it, and errors.Is(err, ErrStopped) matches it.
type Stopped struct {
	Fault *Fault
}

// Error implements error.
func (s *Stopped) Error() string {
	return fmt.Sprintf("stm: pipeline stopped by fault at age %d", s.Fault.Age)
}

// Unwrap exposes the underlying fault.
func (s *Stopped) Unwrap() error { return s.Fault }

// Is reports that a *Stopped matches the ErrStopped sentinel.
func (s *Stopped) Is(target error) bool { return target == ErrStopped }

// Ticket tracks one submitted transaction through the pipeline. It is
// resolved exactly once: with nil when its age commits, with the
// *Fault itself if this transaction faulted non-speculatively, or
// with a *Stopped error if the pipeline stopped before this age could
// commit.
type Ticket struct {
	age  uint64
	done chan struct{}
	err  error // written once before done is closed
	ts   int64  // UnixNano at age assignment; 0 unless Config.Obs is set
}

// newTicket returns an unposted ticket (age is assigned at post).
func newTicket() *Ticket {
	return &Ticket{done: make(chan struct{})}
}

// Age returns the commit-order position (consensus slot, loop index)
// the pipeline assigned to this submission.
func (t *Ticket) Age() uint64 { return t.age }

// Done returns a channel closed when the ticket resolves; use it to
// select across tickets and other events.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Err is a non-blocking peek at the ticket's outcome: resolved=false
// while the transaction is still in flight, otherwise the error Wait
// would return (nil for a commit). It lets a server poll tickets — or
// combine Done with an immediate outcome read — without parking a
// goroutine in Wait.
func (t *Ticket) Err() (err error, resolved bool) {
	select {
	case <-t.done:
		return t.err, true
	default:
		return nil, false
	}
}

// Wait blocks until the ticket resolves and returns its outcome: nil
// once the transaction committed (its effects are visible and every
// lower age has committed, for ordered algorithms), or the error the
// ticket was resolved with.
func (t *Ticket) Wait() error {
	<-t.done
	return t.err
}

// WaitCtx is Wait with a caller-side deadline: it returns the
// ticket's outcome, or an error wrapping ErrCanceled (and ctx's own
// error) if the context ends first. Cancellation abandons only this
// wait — the transaction keeps its age, still commits, and the ticket
// resolves normally for any other waiter (and for a later Wait).
func (t *Ticket) WaitCtx(ctx context.Context) error {
	select {
	case <-t.done:
		return t.err
	default:
	}
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		return fmt.Errorf("%w waiting for age %d: %w", ErrCanceled, t.age, ctx.Err())
	}
}

// resolve completes the ticket. Callers serialize through the
// stream's mutex and clear their reference afterwards, so a ticket is
// resolved at most once.
func (t *Ticket) resolve(err error) {
	t.err = err
	close(t.done)
}
