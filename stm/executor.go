package stm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
)

// Executor runs batches of ordered transactions under a configured
// algorithm. It implements the paper's thread execution model
// (Algorithm 5): a pool of workers speculatively executes transactions
// pulled from a work queue; for the cooperative engines a
// flat-combining validator role commits exposed transactions strictly
// in age order, re-executing reachable failures inline, and a cleaner
// step reclaims metadata; a run-ahead window throttles workers that
// get too far ahead of the commit frontier.
//
// An Executor is immutable and safe for concurrent use; every Run gets
// fresh engine state.
type Executor struct {
	cfg Config
}

// NewExecutor validates the configuration and returns an executor.
func NewExecutor(cfg Config) (*Executor, error) {
	if cfg.Algorithm < Sequential || cfg.Algorithm >= numAlgorithms {
		return nil, fmt.Errorf("stm: unknown algorithm %d", int(cfg.Algorithm))
	}
	return &Executor{cfg: cfg.withDefaults()}, nil
}

// Config returns the executor's effective configuration.
func (e *Executor) Config() Config { return e.cfg }

// Run executes n transactions with ages 0..n-1. For order-enforcing
// algorithms the run is externally indistinguishable from running the
// bodies sequentially in age order; unordered algorithms provide plain
// serializability. Run returns a *Fault error if a body faulted
// non-speculatively.
func (e *Executor) Run(n int, body Body) (Result, error) {
	if n < 0 {
		return Result{}, fmt.Errorf("stm: negative transaction count %d", n)
	}
	if body == nil {
		return Result{}, fmt.Errorf("stm: nil body")
	}
	cfg := e.cfg
	stats := &meta.Stats{}
	order := meta.NewOrder()
	eng, err := newEngine(cfg.Algorithm, meta.EngineConfig{
		TableBits:  cfg.TableBits,
		MaxReaders: cfg.MaxReaders,
		SpinBudget: cfg.SpinBudget,
		SigBits:    cfg.SigBits,
		Order:      order,
		Stats:      stats,
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	var ferr error
	if eng.Mode() == meta.ModeSequential || n == 0 {
		ferr = runSequential(n, body, eng, stats)
	} else {
		r := newRun(cfg, eng, order, stats, body, n)
		ferr = r.runParallel()
	}
	view := stats.View()
	res := Result{
		Algorithm: cfg.Algorithm,
		Workers:   cfg.Workers,
		N:         int(view.Commits),
		Elapsed:   time.Since(start),
		Stats:     view,
	}
	return res, ferr
}

// runSequential executes bodies one at a time in age order.
func runSequential(n int, body Body, eng meta.Engine, stats *meta.Stats) error {
	for i := 0; i < n; i++ {
		txn := eng.NewTxn(uint64(i))
		stats.Start()
		if err := callBody(body, txn); err != nil {
			return err
		}
		stats.Commit()
	}
	return nil
}

func callBody(body Body, txn meta.Txn) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &Fault{Age: txn.Age(), Value: rec}
		}
	}()
	body(txn, int(txn.Age()))
	return nil
}

// exposedCell holds one exposed transaction in the commit ring; the
// age tag detects slot reuse.
type exposedCell struct {
	age uint64
	txn meta.Txn
}

// run is the state of one parallel execution.
type run struct {
	cfg     Config
	eng     meta.Engine
	order   *meta.Order
	stats   *meta.Stats
	body    Body
	n       uint64
	workers int

	next    atomic.Uint64
	ring    []atomic.Pointer[exposedCell]
	mask    uint64
	vtok    atomic.Bool
	gate    atomic.Bool
	stopped atomic.Bool
	fault   atomic.Pointer[Fault]
	kick    chan struct{}
}

func newRun(cfg Config, eng meta.Engine, order *meta.Order, stats *meta.Stats, body Body, n int) *run {
	workers := cfg.Workers
	if eng.Mode() == meta.ModeLite && workers > 1 {
		workers-- // the TCM goroutine counts as one of the paper's threads
	}
	r := &run{
		cfg:     cfg,
		eng:     eng,
		order:   order,
		stats:   stats,
		body:    body,
		n:       uint64(n),
		workers: workers,
		kick:    make(chan struct{}, 1),
	}
	if eng.Mode() == meta.ModeCooperative {
		// The commit ring must cover every in-flight age: the window
		// bounds run-ahead, plus one in-progress age per worker.
		span := uint64(cfg.Window + workers + 8)
		size := uint64(1)
		for size < 4*span {
			size <<= 1
		}
		if size > uint64(n) {
			rounded := uint64(1)
			for rounded < uint64(n) {
				rounded <<= 1
			}
			size = rounded
		}
		r.ring = make([]atomic.Pointer[exposedCell], size)
		r.mask = size - 1
	}
	return r
}

func (r *run) stop() bool { return r.stopped.Load() }

func (r *run) fail(f *Fault) {
	r.fault.CompareAndSwap(nil, f)
	r.stopped.Store(true)
	r.order.Kick()
	r.kickMain()
}

func (r *run) kickMain() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

func (r *run) runParallel() error {
	if svc, ok := r.eng.(meta.Service); ok {
		svc.Start()
		defer svc.Stop()
	}
	mode := r.eng.Mode()
	var wg sync.WaitGroup
	for w := 0; w < r.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.worker(mode)
		}()
	}
	if mode == meta.ModeCooperative {
		// The main goroutine keeps the validator role alive so commits
		// never stall while all workers sit in the throttle window.
		for !r.stop() && r.order.Committed() < r.n {
			r.validate()
			if r.stop() || r.order.Committed() >= r.n {
				break
			}
			<-r.kick
		}
	}
	wg.Wait()
	if f := r.fault.Load(); f != nil {
		return f
	}
	return nil
}

// worker is Algorithm 5's per-thread loop.
func (r *run) worker(mode meta.Mode) {
	defer r.kickMain() // wake the validator loop on exit
	window := uint64(r.cfg.Window)
	for !r.stop() {
		age := r.next.Add(1) - 1
		if age >= r.n {
			return
		}
		if mode == meta.ModeCooperative && age >= window {
			// Throttle: stay within the run-ahead window of the commit
			// frontier (Algorithm 5 lines 18–24).
			r.order.WaitReachable(age-window, r.stop)
		}
		if !r.runOne(age, mode) {
			return
		}
		if mode == meta.ModeCooperative {
			r.validate() // flat combining: opportunistically take the role
		}
	}
}

// runOne drives one age to its exposed (cooperative) or committed
// (other modes) state, retrying aborted attempts with fresh
// descriptors. Returns false if the run stopped.
func (r *run) runOne(age uint64, mode meta.Mode) bool {
	for attempt := 0; ; attempt++ {
		if r.stop() {
			return false
		}
		for r.gate.Load() && !r.stop() {
			runtime.Gosched() // validator quiesce in progress
		}
		if attempt > 0 {
			r.stats.Retry()
			// Algorithm 5 line 18: a transaction aborted more than
			// LIMIT times waits for the commit frontier to close in
			// (first to a small gap, then all the way to
			// reachability), which starves out retry storms under
			// heavy conflicts. Blocked and lite engines get the same
			// treatment (the bounded-buffer stalling of the paper's
			// blocking baselines).
			switch {
			case mode == meta.ModeUnordered:
				// no order to wait on
			case mode == meta.ModeLite:
				// A denied STMLite transaction re-executes right at
				// the commit frontier: grants are in age order anyway,
				// and retrying far from the frontier just feeds the
				// signature false-conflict loop.
				r.order.WaitReachable(age, r.stop)
			case attempt >= 6:
				r.order.WaitReachable(age, r.stop)
			case attempt >= 3:
				gap := uint64(2 * r.workers)
				if age > gap {
					r.order.WaitReachable(age-gap, r.stop)
				}
			}
		}
		txn := r.eng.NewTxn(age)
		if !r.sandbox(txn) {
			continue
		}
		if !txn.TryCommit() {
			continue
		}
		if mode == meta.ModeCooperative {
			r.ring[age&r.mask].Store(&exposedCell{age: age, txn: txn})
			r.kickMain()
		} else {
			r.stats.Commit()
		}
		return true
	}
}

// sandbox runs the body, containing speculative faults: an abort
// signal or a doomed/invalid snapshot leads to a retry; anything else
// is a genuine fault and stops the run.
func (r *run) sandbox(txn meta.Txn) (ok bool) {
	r.stats.Start()
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		ok = false
		if _, isAbort := meta.AbortCause(rec); isAbort || txn.Doomed() {
			txn.AbandonAttempt()
			return
		}
		if rv, can := txn.(meta.Revalidator); can && !rv.ReadSetValid() {
			txn.AbandonAttempt()
			return
		}
		if r.cfg.RetryUnknownPanics {
			txn.AbandonAttempt()
			return
		}
		txn.AbandonAttempt()
		r.fail(&Fault{Age: txn.Age(), Value: rec})
	}()
	r.body(txn, int(txn.Age()))
	return true
}

// validate is the flat-combining validator role (Algorithm 5 lines
// 2–17): whoever wins the token commits exposed transactions in age
// order; a commit-pending transaction that fails its final validation
// is re-executed inline — it is reachable, so the re-execution wins
// every conflict and commits.
func (r *run) validate() {
	if !r.vtok.CompareAndSwap(false, true) {
		return
	}
	defer r.vtok.Store(false)
	for !r.stop() {
		next := r.order.Committed()
		if next >= r.n {
			return
		}
		cell := r.ring[next&r.mask].Load()
		if cell == nil || cell.age != next {
			return // not exposed yet
		}
		if cell.txn.Commit() {
			r.order.Complete(next)
			r.stats.Commit()
			cell.txn.Cleanup() // cleaner role
			continue
		}
		r.reexecute(next)
	}
}

// reexecute drives the reachable transaction at the given age to
// commit, gating new exposes (quiesce) if higher-age transactions keep
// invalidating it; see DESIGN.md §5.
func (r *run) reexecute(age uint64) {
	gated := false
	defer func() {
		if gated {
			r.gate.Store(false)
		}
	}()
	for attempt := 0; !r.stop(); attempt++ {
		if attempt >= r.cfg.QuiesceAfter && !gated {
			gated = true
			r.gate.Store(true)
			r.stats.Quiesce()
		}
		r.stats.Retry()
		txn := r.eng.NewTxn(age)
		if !r.sandbox(txn) {
			continue
		}
		if !txn.TryCommit() {
			continue
		}
		if txn.Commit() {
			r.ring[age&r.mask].Store(&exposedCell{age: age, txn: txn})
			r.order.Complete(age)
			r.stats.Commit()
			txn.Cleanup()
			return
		}
	}
}
