package stm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/orderedstm/ostm/internal/meta"
)

// Executor runs batches of ordered transactions under a configured
// algorithm: n transactions, ages 0..n-1, one shared Body. It is the
// batch front-end over the shared run-loop (runloop.go); Pipeline is
// the streaming front-end over the same core.
//
// An Executor is immutable and safe for concurrent use; every Run gets
// fresh engine state.
type Executor struct {
	cfg Config
}

// NewExecutor validates the configuration and returns an executor.
func NewExecutor(cfg Config) (*Executor, error) {
	if cfg.Algorithm < Sequential || cfg.Algorithm >= numAlgorithms {
		return nil, fmt.Errorf("stm: unknown algorithm %d", int(cfg.Algorithm))
	}
	return &Executor{cfg: cfg.withDefaults()}, nil
}

// Config returns the executor's effective configuration.
func (e *Executor) Config() Config { return e.cfg }

// Run executes n transactions with ages 0..n-1. For order-enforcing
// algorithms the run is externally indistinguishable from running the
// bodies sequentially in age order; unordered algorithms provide plain
// serializability. Run returns a *Fault error if a body faulted
// non-speculatively; the returned Result is still meaningful then —
// compare Result.N against Result.Requested to see how far the run
// got before it stopped.
func (e *Executor) Run(n int, body Body) (Result, error) {
	if n < 0 {
		return Result{}, fmt.Errorf("stm: negative transaction count %d", n)
	}
	if body == nil {
		return Result{}, fmt.Errorf("stm: nil body")
	}
	cfg := e.cfg
	cfg.FirstAge = 0 // batch ages are always 0..n-1
	stats := &meta.Stats{}
	order := meta.NewOrder()
	eng, err := newEngine(cfg.Algorithm, meta.EngineConfig{
		TableBits:  cfg.TableBits,
		MaxReaders: cfg.MaxReaders,
		SpinBudget: cfg.SpinBudget,
		SigBits:    cfg.SigBits,
		Order:      order,
		Stats:      stats,
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	var ferr error
	if eng.Mode() == meta.ModeSequential || n == 0 {
		ferr = runSequential(n, body, eng, stats)
	} else {
		ferr = runBatch(cfg, eng, order, stats, body, uint64(n))
	}
	view := stats.View()
	res := Result{
		Algorithm: cfg.Algorithm,
		Workers:   cfg.Workers,
		N:         int(view.Commits),
		Requested: n,
		Elapsed:   time.Since(start),
		Stats:     view,
	}
	return res, ferr
}

// runSequential executes bodies one at a time in age order.
func runSequential(n int, body Body, eng meta.Engine, stats *meta.Stats) error {
	for i := 0; i < n; i++ {
		txn := eng.NewTxn(uint64(i))
		stats.Start()
		if err := callBody(body, txn); err != nil {
			return err
		}
		stats.Commit()
	}
	return nil
}

func callBody(body Body, txn meta.Txn) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &Fault{Age: txn.Age(), Value: rec}
		}
	}()
	body(txn, int(txn.Age()))
	return nil
}

// batchFeed adapts the fixed-size, shared-body batch to the run-loop's
// feed contract: claiming is a lock-free counter bump, and nothing
// blocks because the whole work list exists up front.
type batchFeed struct {
	n    uint64
	body Body
	next atomic.Uint64
}

func (b *batchFeed) claim(func() bool) (uint64, Body, bool) {
	age := b.next.Add(1) - 1
	if age >= b.n {
		return 0, nil, false
	}
	return age, b.body, true
}

func (b *batchFeed) committed(uint64) {}
func (b *batchFeed) halted(*Fault)    {}

// runBatch drives one parallel batch over the shared run-loop.
func runBatch(cfg Config, eng meta.Engine, order *meta.Order, stats *meta.Stats, body Body, n uint64) error {
	f := &batchFeed{n: n, body: body}
	// The commit ring must cover every in-flight age: the window bounds
	// run-ahead, plus one in-progress age per worker — but never more
	// slots than the batch has transactions.
	span := uint64(cfg.Window + cfg.Workers + 8)
	l := newLoop(cfg, eng, order, stats, f, span, n)
	if svc, ok := eng.(meta.Service); ok {
		svc.Start()
		defer svc.Stop()
	}
	var wg sync.WaitGroup
	l.spawnWorkers(&wg)
	if l.mode == meta.ModeCooperative {
		l.validatorLoop(func() bool { return order.Committed() >= n })
	}
	wg.Wait()
	if f := l.fault.Load(); f != nil {
		return f
	}
	return nil
}
