package stm

import "github.com/orderedstm/ostm/internal/meta"

// seqEngine is the non-instrumented sequential baseline (the paper's
// green line): bodies run one at a time, in age order, on a single
// goroutine; reads and writes go straight to memory.
type seqEngine struct {
	cfg meta.EngineConfig
}

func newSeqEngine(cfg meta.EngineConfig) *seqEngine {
	return &seqEngine{cfg: cfg.Normalize()}
}

// Name implements meta.Engine.
func (e *seqEngine) Name() string { return "Sequential" }

// Mode implements meta.Engine.
func (e *seqEngine) Mode() meta.Mode { return meta.ModeSequential }

// Stats implements meta.Engine.
func (e *seqEngine) Stats() *meta.Stats { return e.cfg.Stats }

// NewTxn implements meta.Engine.
func (e *seqEngine) NewTxn(age uint64) meta.Txn { return &seqTxn{age: age} }

type seqTxn struct{ age uint64 }

func (t *seqTxn) Read(v *meta.Var) uint64     { return v.Load() }
func (t *seqTxn) Write(v *meta.Var, x uint64) { v.Store(x) }
func (t *seqTxn) Age() uint64                 { return t.age }
func (t *seqTxn) TryCommit() bool             { return true }
func (t *seqTxn) Commit() bool                { return true }
func (t *seqTxn) Cleanup()                    {}
func (t *seqTxn) AbandonAttempt()             {}
func (t *seqTxn) Doomed() bool                { return false }
