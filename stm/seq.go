package stm

import "github.com/orderedstm/ostm/internal/meta"

// seqEngine is the non-instrumented sequential baseline (the paper's
// green line): bodies run one at a time, in age order, on a single
// goroutine; reads and writes go straight to memory.
type seqEngine struct {
	cfg meta.EngineConfig
}

func newSeqEngine(cfg meta.EngineConfig) *seqEngine {
	return &seqEngine{cfg: cfg.Normalize()}
}

// Name implements meta.Engine.
func (e *seqEngine) Name() string { return "Sequential" }

// Mode implements meta.Engine.
func (e *seqEngine) Mode() meta.Mode { return meta.ModeSequential }

// Stats implements meta.Engine.
func (e *seqEngine) Stats() *meta.Stats { return e.cfg.Stats }

// NewTxn implements meta.Engine.
func (e *seqEngine) NewTxn(age uint64) meta.Txn {
	return &seqTxn{age: age, order: e.cfg.Order}
}

// NewPool implements meta.PoolEngine: the single sequential worker can
// reuse one descriptor forever (nothing is ever shared or retained).
func (e *seqEngine) NewPool() meta.TxnPool {
	return &seqPool{t: &seqTxn{order: e.cfg.Order}}
}

type seqPool struct{ t *seqTxn }

func (p *seqPool) NewTxn(age uint64) meta.Txn {
	p.t.age = age
	return p.t
}

func (p *seqPool) Retire(meta.Txn) {}

type seqTxn struct {
	age   uint64
	order *meta.Order
}

func (t *seqTxn) Read(v *meta.Var) uint64     { return v.Load() }
func (t *seqTxn) Write(v *meta.Var, x uint64) { v.Store(x) }
func (t *seqTxn) Age() uint64                 { return t.age }

// TryCommit advances the commit frontier. The single sequential worker
// claims and commits ages strictly in order, so Complete(age) always
// matches; keeping the Order current lets frontier observers
// (Pipeline.WaitFrontier, the shard fence protocol) work uniformly
// across every mode. Executor.Run's sequential fast path bypasses
// TryCommit entirely and is unaffected.
func (t *seqTxn) TryCommit() bool {
	t.order.Complete(t.age)
	return true
}
func (t *seqTxn) Commit() bool    { return true }
func (t *seqTxn) Cleanup()        {}
func (t *seqTxn) AbandonAttempt() {}
func (t *seqTxn) Doomed() bool    { return false }
